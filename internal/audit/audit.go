// Package audit is the simulator's runtime invariant auditor. It attaches
// to a wired system (driver, device, host VM, link, injector) and checks,
// at every batch boundary and at end of run, the conservation laws the
// model must obey no matter the workload or configuration:
//
//   - fault accounting: unique pages plus duplicates equals raw faults,
//     and the per-SM / per-VABlock histograms sum back to the raw count;
//   - residency vs capacity: chunks in use never exceed capacity, resident
//     pages are populated and chunk-backed, and chunk ownership is a
//     bijection between live chunks and blocks;
//   - host exclusivity: no page is GPU-resident and CPU-mapped at once;
//   - eviction consistency: an evicted block holds no chunk and no
//     resident pages (unless the same batch re-serviced it);
//   - link conservation: bytes the link carried to the GPU equal the batch
//     migration totals plus explicit copies plus injected-retry traffic,
//     and bytes to the host equal eviction writeback;
//   - injection conservation: per category, injected faults equal retried
//     plus unrecovered, with the device's drop counters agreeing.
//
// Violations surface as typed *ViolationError values through the
// engine's Fail path — the auditor never panics. The same per-batch hook
// also snapshots FNV-1a digests of every model's canonical state, which
// the determinism verifier compares across runs to find the first
// divergent batch.
package audit

import (
	"errors"
	"fmt"

	"guvm/internal/digest"
	"guvm/internal/faultinject"
	"guvm/internal/gpu"
	"guvm/internal/gpumem"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
	"guvm/internal/uvm"
)

// Config enables and tunes the auditor.
type Config struct {
	// Enabled turns on invariant checking at every batch boundary and at
	// end of run.
	Enabled bool
	// Interval, when positive, snapshots every model's state digest each
	// Interval batches (the determinism verifier uses 1). Zero disables
	// snapshots; the final digest is always recorded.
	Interval int
	// KeepDumps retains a human-readable state dump in every snapshot so
	// a divergence can be diagnosed field by field (memory-heavy; meant
	// for the determinism verifier).
	KeepDumps bool
}

// Active reports whether an auditor should be attached at all.
func (c Config) Active() bool { return c.Enabled || c.Interval > 0 }

// Options adapt the checks to how the system is wired.
type Options struct {
	// SharedHost disables the host-exclusivity check: in a multi-GPU
	// system every driver has its own VA space but all share one host VM,
	// so block IDs alias across devices and residency cannot be compared
	// against CPU mappings per driver.
	SharedHost bool
	// SharedInjector disables the cross-layer injection equalities: with
	// one injector serving several devices, per-device counters are each
	// a fraction of the injector's totals.
	SharedInjector bool
	// SharedHardware likewise disables the cross-layer hardware-injection
	// equality (driver link-retry count vs injected transfer drops) when
	// one HardwareInjector serves several links.
	SharedHardware bool
}

// ErrViolation is the sentinel matched by errors.Is for any invariant
// violation. The concrete error is always a *ViolationError.
var ErrViolation = errors.New("audit: invariant violated")

// ViolationError describes one invariant violation: which check failed,
// at which batch (or -1 for an end-of-run check), and how.
type ViolationError struct {
	// Check names the violated invariant, e.g. "fault-accounting".
	Check string
	// Batch is the batch the violation was detected at, -1 at end of run.
	Batch int
	// At is the virtual time of detection.
	At sim.Time
	// Detail states the failed relation with its observed values.
	Detail string
}

func (e *ViolationError) Error() string {
	where := fmt.Sprintf("batch %d", e.Batch)
	if e.Batch < 0 {
		where = "end of run"
	}
	return fmt.Sprintf("audit: %s violated at %s (virtual time %d ns): %s",
		e.Check, where, e.At, e.Detail)
}

// Unwrap lets errors.Is(err, ErrViolation) match.
func (e *ViolationError) Unwrap() error { return ErrViolation }

// Snapshot is one per-batch digest of every model's canonical state.
type Snapshot struct {
	// Batch is the batch ID the snapshot was taken after.
	Batch int
	// At is the virtual time of the batch end.
	At sim.Time

	Driver uint64
	Device uint64
	Host   uint64
	Link   uint64
	// Combined folds the four component digests into one word.
	Combined uint64

	// Dump is the concatenated human-readable state (only with
	// Config.KeepDumps).
	Dump string
}

// Report is the auditor's outcome, carried on guvm.Result.
type Report struct {
	// BatchesAudited counts batch boundaries the auditor observed.
	BatchesAudited int
	// ChecksRun counts individual invariant evaluations.
	ChecksRun int
	// Snapshots holds the periodic digest snapshots, in batch order.
	Snapshots []Snapshot
	// Violations holds every detected violation, in detection order. The
	// engine stops on the first one, so more than one entry only occurs
	// when end-of-run checks follow a clean run.
	Violations []*ViolationError
	// FinalDigest is the combined digest of the final system state.
	FinalDigest uint64
}

// Err returns the first violation, or nil.
func (r *Report) Err() error {
	if r == nil || len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// Auditor watches one driver/device pair (plus the host VM, link and
// injector they are wired to) and checks invariants at batch boundaries.
type Auditor struct {
	cfg  Config
	opt  Options
	eng  *sim.Engine
	drv  *uvm.Driver
	dev  *gpu.Device
	vm   *hostos.VM
	link *interconnect.Link
	inj  *faultinject.Injector
	hw   *faultinject.HardwareInjector

	// Running link-conservation ledgers, accumulated per observed batch.
	sumMigrated uint64
	sumEvicted  uint64

	rep Report
}

// New builds an auditor for an assembled system. Call Attach before the
// run starts so every batch is observed.
func New(cfg Config, opt Options, eng *sim.Engine, drv *uvm.Driver, dev *gpu.Device, vm *hostos.VM, inj *faultinject.Injector) *Auditor {
	return &Auditor{
		cfg:  cfg,
		opt:  opt,
		eng:  eng,
		drv:  drv,
		dev:  dev,
		vm:   vm,
		link: drv.Link(),
		inj:  inj,
	}
}

// SetHardware attaches the hardware fault-domain injector so its
// conservation ledgers are audited too. A nil injector (the default)
// skips the hardware checks.
func (a *Auditor) SetHardware(hw *faultinject.HardwareInjector) { a.hw = hw }

// Attach registers the auditor as the driver's batch observer.
func (a *Auditor) Attach() { a.drv.AddBatchObserver(a.onBatch) }

// onBatch runs at every batch end, after the record was collected and the
// arbiter released, before the next batch starts.
func (a *Auditor) onBatch(id int, rec *trace.BatchRecord) {
	a.rep.BatchesAudited++
	if a.cfg.Interval > 0 && id%a.cfg.Interval == 0 {
		a.rep.Snapshots = append(a.rep.Snapshots, a.snapshot(id))
	}
	if !a.cfg.Enabled {
		return
	}
	if v := a.checkBatch(id, rec); v != nil {
		a.violate(v)
	}
}

// violate records v and stops the engine with it (first error wins).
func (a *Auditor) violate(v *ViolationError) {
	a.rep.Violations = append(a.rep.Violations, v)
	a.eng.Fail(v)
}

// Finish records the final digest, runs the end-of-run checks when the
// run itself completed cleanly, and returns the report. Violations found
// here are appended to the report; the caller surfaces them as errors.
func (a *Auditor) Finish(runErr error) *Report {
	a.rep.FinalDigest = a.combined()
	if a.cfg.Enabled && runErr == nil {
		for _, v := range a.CheckNow() {
			a.rep.Violations = append(a.rep.Violations, v)
		}
		for _, v := range a.finalChecks() {
			a.rep.Violations = append(a.rep.Violations, v)
		}
	}
	return &a.rep
}

// checkBatch evaluates all per-batch invariants and returns the first
// violation found.
func (a *Auditor) checkBatch(id int, rec *trace.BatchRecord) *ViolationError {
	a.rep.ChecksRun++
	if v := a.stamp(CheckBatchRecordParallel(rec, a.drv.Config().ServiceWorkers), id); v != nil {
		return v
	}
	dst := a.drv.AuditState()
	if v := a.stamp(a.checkDriverState(&dst), id); v != nil {
		return v
	}
	if v := a.stamp(a.checkEvictions(rec, &dst), id); v != nil {
		return v
	}
	a.sumMigrated += rec.BytesMigrated
	a.sumEvicted += rec.EvictedBytes
	if v := a.stamp(a.checkLinkConservation(&dst.Stats), id); v != nil {
		return v
	}
	if v := a.stamp(a.checkInjection(&dst.Stats), id); v != nil {
		return v
	}
	if v := a.stamp(a.checkHardware(&dst.Stats), id); v != nil {
		return v
	}
	if v := a.stamp(a.checkPageConservation(&dst), id); v != nil {
		return v
	}
	return nil
}

// stamp fills in the detection context of a violation.
func (a *Auditor) stamp(v *ViolationError, batch int) *ViolationError {
	if v != nil {
		v.Batch = batch
		v.At = a.eng.Now()
	}
	return v
}

// CheckNow evaluates every state invariant against the current model
// state. It is valid at any batch boundary (and after the run); tests use
// it to probe deliberately corrupted systems.
func (a *Auditor) CheckNow() []*ViolationError {
	var vs []*ViolationError
	dst := a.drv.AuditState()
	if v := a.stamp(a.checkDriverState(&dst), -1); v != nil {
		vs = append(vs, v)
	}
	if v := a.stamp(a.checkInjection(&dst.Stats), -1); v != nil {
		vs = append(vs, v)
	}
	if v := a.stamp(a.checkHardware(&dst.Stats), -1); v != nil {
		vs = append(vs, v)
	}
	if v := a.stamp(a.checkPageConservation(&dst), -1); v != nil {
		vs = append(vs, v)
	}
	return vs
}

// finalChecks evaluates the invariants that only hold once the event
// queue drained cleanly: device quiescence and link conservation over the
// whole run.
func (a *Auditor) finalChecks() []*ViolationError {
	var vs []*ViolationError
	dev := a.dev.AuditState()
	a.rep.ChecksRun++
	if dev.Killed && !a.drv.Dead() {
		vs = append(vs, a.stamp(&ViolationError{
			Check:  "page-conservation",
			Detail: "device killed but driver never re-homed (not marked dead)",
		}, -1))
	}
	if dev.Running || dev.BufferLen != 0 || dev.TotalPending() != 0 || dev.LiveBlocks != 0 {
		vs = append(vs, a.stamp(&ViolationError{
			Check: "device-quiescence",
			Detail: fmt.Sprintf("running=%v bufferLen=%d pendingFaults=%d liveBlocks=%d after clean drain",
				dev.Running, dev.BufferLen, dev.TotalPending(), dev.LiveBlocks),
		}, -1))
	}
	st := a.drv.Stats()
	if v := a.stamp(a.checkLinkConservation(&st), -1); v != nil {
		vs = append(vs, v)
	}
	return vs
}

// checkLinkConservation reconciles the link's byte counters against the
// driver-side ledgers: every byte to the GPU is a batch migration, an
// explicit bulk copy, injected-retry traffic, or a re-carried transfer
// the hardware domain dropped; every byte to the host is eviction
// writeback, a dropped writeback attempt, or device-loss re-homing.
func (a *Auditor) checkLinkConservation(st *uvm.Stats) *ViolationError {
	a.rep.ChecksRun++
	ls := a.link.Stats()
	wantToGPU := a.sumMigrated + st.ExplicitBytes + st.InjMigRetryBytes + st.HWRetryToGPUBytes
	if ls.BytesToGPU != wantToGPU {
		return &ViolationError{
			Check: "link-conservation",
			Detail: fmt.Sprintf("BytesToGPU = %d, want %d (batches %d + explicit %d + injected retries %d + hw re-carries %d)",
				ls.BytesToGPU, wantToGPU, a.sumMigrated, st.ExplicitBytes, st.InjMigRetryBytes, st.HWRetryToGPUBytes),
		}
	}
	wantToHost := a.sumEvicted + st.HWRetryToHostBytes + st.RehomedBytes
	if ls.BytesToHost != wantToHost {
		return &ViolationError{
			Check: "link-conservation",
			Detail: fmt.Sprintf("BytesToHost = %d, want %d (eviction writeback %d + hw re-carries %d + re-homed %d)",
				ls.BytesToHost, wantToHost, a.sumEvicted, st.HWRetryToHostBytes, st.RehomedBytes),
		}
	}
	return nil
}

// checkHardware verifies the hardware fault domain's conservation
// ledgers: every injected transfer drop is either retried or
// unrecovered, recoveries never exceed retries, and (single-link wiring
// only) the driver's retry count equals the injected drops.
func (a *Auditor) checkHardware(st *uvm.Stats) *ViolationError {
	if a.hw == nil {
		return nil
	}
	a.rep.ChecksRun++
	hs := a.hw.Stats()
	n := hs.LinkTransfer
	if n.Injected != n.Retried+n.Unrecovered {
		return &ViolationError{
			Check: "hw-injection-conservation",
			Detail: fmt.Sprintf("link-transfer: injected %d != retried %d + unrecovered %d",
				n.Injected, n.Retried, n.Unrecovered),
		}
	}
	if n.Recovered > n.Retried {
		return &ViolationError{
			Check:  "hw-injection-conservation",
			Detail: fmt.Sprintf("link-transfer: recovered %d > retried %d", n.Recovered, n.Retried),
		}
	}
	if a.opt.SharedHardware {
		return nil
	}
	if uint64(st.HWLinkRetries) != n.Injected {
		return &ViolationError{
			Check: "hw-injection-conservation",
			Detail: fmt.Sprintf("driver link re-carries %d != injected transfer drops %d",
				st.HWLinkRetries, n.Injected),
		}
	}
	return nil
}

// checkPageConservation verifies device-loss recovery: a dead driver
// holds no chunks and no resident pages, its victim-scan list is empty,
// and the pages it re-homed to the host account exactly for everything
// resident at the instant of death — no page lost, none invented.
func (a *Auditor) checkPageConservation(dst *uvm.AuditState) *ViolationError {
	if !dst.Dead {
		return nil
	}
	a.rep.ChecksRun++
	for i := range dst.Blocks {
		b := &dst.Blocks[i]
		if b.HasChunk || b.Resident.Any() {
			return &ViolationError{
				Check: "page-conservation",
				Detail: fmt.Sprintf("dead driver: block %d still holds chunk=%v, %d resident pages",
					b.ID, b.HasChunk, b.Resident.Count()),
			}
		}
	}
	if dst.ChunksInUse != 0 || len(dst.AllocatedOrder) != 0 {
		return &ViolationError{
			Check: "page-conservation",
			Detail: fmt.Sprintf("dead driver: %d chunks in use, %d blocks in victim scan",
				dst.ChunksInUse, len(dst.AllocatedOrder)),
		}
	}
	st := &dst.Stats
	if st.RehomedPages != st.ResidentAtKill {
		return &ViolationError{
			Check: "page-conservation",
			Detail: fmt.Sprintf("re-homed %d pages but %d were resident at kill",
				st.RehomedPages, st.ResidentAtKill),
		}
	}
	if st.RehomedBytes != uint64(st.RehomedPages)*mem.PageSize {
		return &ViolationError{
			Check: "page-conservation",
			Detail: fmt.Sprintf("re-homed bytes %d != %d pages * %d",
				st.RehomedBytes, st.RehomedPages, mem.PageSize),
		}
	}
	return nil
}

// checkInjection verifies the per-category injection ledgers. Every
// injected fault is either retried or unrecovered, recoveries never
// exceed retries, and (single-injector wiring only) the device and driver
// counters match the injector's.
func (a *Auditor) checkInjection(st *uvm.Stats) *ViolationError {
	a.rep.ChecksRun++
	is := a.inj.Stats()
	for _, c := range []faultinject.Category{faultinject.BufferDrop, faultinject.Migrate, faultinject.HostAlloc} {
		n := is.Of(c)
		if n.Injected != n.Retried+n.Unrecovered {
			return &ViolationError{
				Check: "injection-conservation",
				Detail: fmt.Sprintf("%s: injected %d != retried %d + unrecovered %d",
					c, n.Injected, n.Retried, n.Unrecovered),
			}
		}
		if n.Recovered > n.Retried {
			return &ViolationError{
				Check:  "injection-conservation",
				Detail: fmt.Sprintf("%s: recovered %d > retried %d", c, n.Recovered, n.Retried),
			}
		}
	}
	ds := a.dev.Stats()
	if ds.InjectedDrops != ds.InjectedDropRetries+ds.InjectedDropsLost {
		return &ViolationError{
			Check: "injection-conservation",
			Detail: fmt.Sprintf("device: injected drops %d != retries %d + lost %d",
				ds.InjectedDrops, ds.InjectedDropRetries, ds.InjectedDropsLost),
		}
	}
	if a.opt.SharedInjector {
		return nil
	}
	if uint64(ds.InjectedDrops) != is.BufferDrop.Injected {
		return &ViolationError{
			Check: "injection-conservation",
			Detail: fmt.Sprintf("device drops %d != injector buffer-drop injections %d",
				ds.InjectedDrops, is.BufferDrop.Injected),
		}
	}
	if uint64(st.MigRetries) != is.Migrate.Injected {
		return &ViolationError{
			Check: "injection-conservation",
			Detail: fmt.Sprintf("driver migration retries %d != injector migrate injections %d",
				st.MigRetries, is.Migrate.Injected),
		}
	}
	if uint64(st.HostAllocFailures) != is.HostAlloc.Injected {
		return &ViolationError{
			Check: "injection-conservation",
			Detail: fmt.Sprintf("driver host-alloc failures %d != injector host-alloc injections %d",
				st.HostAllocFailures, is.HostAlloc.Injected),
		}
	}
	return nil
}

// checkDriverState verifies residency-vs-capacity, the chunk-ownership
// bijection, and (single-host wiring only) host exclusivity.
func (a *Auditor) checkDriverState(dst *uvm.AuditState) *ViolationError {
	a.rep.ChecksRun++
	if dst.ChunksInUse > dst.CapacityBlocks {
		return &ViolationError{
			Check:  "residency-capacity",
			Detail: fmt.Sprintf("%d chunks in use > capacity %d", dst.ChunksInUse, dst.CapacityBlocks),
		}
	}
	owners := make(map[gpumem.ChunkID]mem.VABlockID, dst.ChunksInUse)
	withChunk := 0
	for i := range dst.Blocks {
		b := &dst.Blocks[i]
		for w := range b.Resident {
			if b.Resident[w]&^b.Populated[w] != 0 {
				return &ViolationError{
					Check:  "residency-capacity",
					Detail: fmt.Sprintf("block %d has resident pages that were never populated", b.ID),
				}
			}
		}
		if b.Resident.Any() && !b.HasChunk {
			return &ViolationError{
				Check:  "residency-capacity",
				Detail: fmt.Sprintf("block %d has %d resident pages but no chunk", b.ID, b.Resident.Count()),
			}
		}
		if b.HasChunk {
			withChunk++
			if prev, dup := owners[b.Chunk]; dup {
				return &ViolationError{
					Check:  "chunk-bijection",
					Detail: fmt.Sprintf("chunk %d claimed by both block %d and block %d", b.Chunk, prev, b.ID),
				}
			}
			owners[b.Chunk] = b.ID
			owner, ok := a.drv.ChunkOwner(b.Chunk)
			if !ok || owner != b.ID {
				return &ViolationError{
					Check:  "chunk-bijection",
					Detail: fmt.Sprintf("block %d holds chunk %d, but the allocator records owner (%d, live=%v)", b.ID, b.Chunk, owner, ok),
				}
			}
		}
		if !a.opt.SharedHost {
			mp := a.vm.MappedPages(b.ID)
			for w := range mp {
				if mp[w]&b.Resident[w] != 0 {
					return &ViolationError{
						Check:  "host-exclusivity",
						Detail: fmt.Sprintf("block %d has pages both GPU-resident and CPU-mapped", b.ID),
					}
				}
			}
		}
	}
	if withChunk != dst.ChunksInUse {
		return &ViolationError{
			Check:  "residency-capacity",
			Detail: fmt.Sprintf("%d blocks hold chunks but the allocator reports %d in use", withChunk, dst.ChunksInUse),
		}
	}
	if len(dst.AllocatedOrder) != withChunk {
		return &ViolationError{
			Check:  "residency-capacity",
			Detail: fmt.Sprintf("victim-scan list has %d entries for %d chunk-backed blocks", len(dst.AllocatedOrder), withChunk),
		}
	}
	return nil
}

// checkEvictions verifies that every block this batch evicted — and did
// not re-service afterwards — ended the batch with no chunk and no
// resident pages.
func (a *Auditor) checkEvictions(rec *trace.BatchRecord, dst *uvm.AuditState) *ViolationError {
	a.rep.ChecksRun++
	if rec.Evictions != len(rec.EvictedBlocks) {
		return &ViolationError{
			Check:  "eviction-consistency",
			Detail: fmt.Sprintf("Evictions = %d but %d evicted blocks recorded", rec.Evictions, len(rec.EvictedBlocks)),
		}
	}
	if len(rec.EvictedBlocks) == 0 {
		return nil
	}
	serviced := make(map[mem.VABlockID]bool, len(rec.ServicedBlocks))
	for _, bid := range rec.ServicedBlocks {
		serviced[bid] = true
	}
	blocks := make(map[mem.VABlockID]*uvm.BlockAudit, len(dst.Blocks))
	for i := range dst.Blocks {
		blocks[dst.Blocks[i].ID] = &dst.Blocks[i]
	}
	for _, bid := range rec.EvictedBlocks {
		if serviced[bid] {
			// Evicted and serviced in the same batch (last-resort victim
			// or re-fault): the final state is whatever the later of the
			// two operations left.
			continue
		}
		b, ok := blocks[bid]
		if !ok {
			return &ViolationError{
				Check:  "eviction-consistency",
				Detail: fmt.Sprintf("evicted block %d is unknown to the driver", bid),
			}
		}
		if b.HasChunk || b.Resident.Any() {
			return &ViolationError{
				Check: "eviction-consistency",
				Detail: fmt.Sprintf("evicted block %d still holds chunk=%v, %d resident pages",
					bid, b.HasChunk, b.Resident.Count()),
			}
		}
	}
	return nil
}

// snapshot digests every model's canonical state.
func (a *Auditor) snapshot(batch int) Snapshot {
	s := Snapshot{
		Batch:  batch,
		At:     a.eng.Now(),
		Driver: a.drv.Digest(),
		Device: a.dev.Digest(),
		Host:   a.vm.Digest(),
		Link:   a.link.Digest(),
	}
	s.Combined = digest.Combine(s.Driver, s.Device, s.Host, s.Link)
	if a.cfg.KeepDumps {
		drv := a.drv.AuditState()
		dev := a.dev.AuditState()
		host := a.vm.AuditState()
		s.Dump = drv.Dump() + dev.Dump() + host.Dump() + a.link.AuditState().Dump()
	}
	return s
}

// combined returns the current combined digest of all four models.
func (a *Auditor) combined() uint64 {
	return digest.Combine(a.drv.Digest(), a.dev.Digest(), a.vm.Digest(), a.link.Digest())
}
