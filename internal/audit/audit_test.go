package audit

import (
	"errors"
	"strings"
	"testing"

	"guvm/internal/faultinject"
	"guvm/internal/gpu"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
	"guvm/internal/uvm"
)

// validRecord builds a batch record that passes every self-consistency
// check; tests corrupt one field at a time.
func validRecord() trace.BatchRecord {
	return trace.BatchRecord{
		ID:    3,
		Start: 1000,
		End:   11000,

		RawFaults:   10,
		Type1Dups:   2,
		Type2Dups:   1,
		UniquePages: 7,
		StalePages:  1,
		VABlocks:    2,

		PagesMigrated: 6,
		BytesMigrated: 6 * mem.PageSize,

		TFetch:    2000,
		TPopulate: 3000,
		TTransfer: 1000,

		ServicedBlocks: []mem.VABlockID{4, 9},
		FaultsPerSM:    []uint16{4, 6},
		VABlockFaults:  []uint16{7, 3},
	}
}

func TestCheckBatchRecordValid(t *testing.T) {
	rec := validRecord()
	if v := CheckBatchRecord(&rec); v != nil {
		t.Fatalf("valid record rejected: %v", v)
	}
}

func TestCheckBatchRecordCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(r *trace.BatchRecord)
		check   string
	}{
		{"dedup sum broken", func(r *trace.BatchRecord) { r.UniquePages++ }, "fault-accounting"},
		{"stale exceeds unique", func(r *trace.BatchRecord) { r.StalePages = r.UniquePages + 1 }, "fault-accounting"},
		{"per-SM histogram broken", func(r *trace.BatchRecord) { r.FaultsPerSM[0]++ }, "fault-accounting"},
		{"per-VABlock histogram broken", func(r *trace.BatchRecord) { r.VABlockFaults[1]-- }, "fault-accounting"},
		{"more fault blocks than histogram", func(r *trace.BatchRecord) { r.VABlocks = 3 }, "fault-accounting"},
		{"serviced list too short", func(r *trace.BatchRecord) { r.ServicedBlocks = r.ServicedBlocks[:1] }, "fault-accounting"},
		{"block serviced twice", func(r *trace.BatchRecord) { r.ServicedBlocks[1] = r.ServicedBlocks[0] }, "fault-accounting"},
		{"bytes disagree with pages", func(r *trace.BatchRecord) { r.BytesMigrated++ }, "fault-accounting"},
		{"batch ends before start", func(r *trace.BatchRecord) { r.End = r.Start - 1 }, "batch-times"},
		{"negative component", func(r *trace.BatchRecord) { r.TUnmap = -1 }, "batch-times"},
		{"components exceed duration", func(r *trace.BatchRecord) { r.TReplay = r.Duration() }, "batch-times"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := validRecord()
			tc.corrupt(&rec)
			v := CheckBatchRecord(&rec)
			if v == nil {
				t.Fatal("corruption not detected")
			}
			if v.Check != tc.check {
				t.Fatalf("reported check %q, want %q (%v)", v.Check, tc.check, v)
			}
			if !errors.Is(v, ErrViolation) {
				t.Fatal("violation does not match ErrViolation")
			}
		})
	}
}

// TestCheckBatchRecordParallelWorkers: with ServiceWorkers > 1 the time
// components record aggregate work across workers, so the sum bound is
// workers x duration — a record that is over-budget serially must pass
// at the matching concurrency, and still fail past it.
func TestCheckBatchRecordParallelWorkers(t *testing.T) {
	rec := validRecord()
	rec.TPopulate = 3 * rec.Duration() / 2 // sum > 1x duration, < 2x
	if v := CheckBatchRecord(&rec); v == nil || v.Check != "batch-times" {
		t.Fatalf("over-budget serial record not flagged: %v", v)
	}
	if v := CheckBatchRecordParallel(&rec, 2); v != nil {
		t.Fatalf("2-worker batch wrongly flagged: %v", v)
	}
	rec.TPopulate = 3 * rec.Duration()
	if v := CheckBatchRecordParallel(&rec, 2); v == nil || v.Check != "batch-times" {
		t.Fatalf("record past 2x duration not flagged: %v", v)
	}
}

// TestCheckBatchRecordSaturatedHistograms verifies the uint16 clamp guard:
// a batch at the histogram saturation point must not be failed for lossy
// cells.
func TestCheckBatchRecordSaturatedHistograms(t *testing.T) {
	rec := validRecord()
	rec.RawFaults = 70000
	rec.UniquePages = 70000
	rec.Type1Dups, rec.Type2Dups = 0, 0
	rec.StalePages = 0
	// Histograms saturate at 65535 per cell and no longer sum back.
	rec.FaultsPerSM = []uint16{65535}
	rec.VABlockFaults = []uint16{65535, 100}
	if v := CheckBatchRecord(&rec); v != nil {
		t.Fatalf("saturated histograms must be exempt: %v", v)
	}
}

func TestViolationErrorMessages(t *testing.T) {
	v := &ViolationError{Check: "link-conservation", Batch: 12, At: 99, Detail: "off by one"}
	if !strings.Contains(v.Error(), "batch 12") || !strings.Contains(v.Error(), "link-conservation") {
		t.Fatalf("bad message: %s", v.Error())
	}
	v.Batch = -1
	if !strings.Contains(v.Error(), "end of run") {
		t.Fatalf("end-of-run violation not labeled: %s", v.Error())
	}
}

func TestReportErr(t *testing.T) {
	var nilRep *Report
	if nilRep.Err() != nil {
		t.Fatal("nil report must have nil error")
	}
	rep := &Report{}
	if rep.Err() != nil {
		t.Fatal("clean report must have nil error")
	}
	first := &ViolationError{Check: "a"}
	rep.Violations = append(rep.Violations, first, &ViolationError{Check: "b"})
	if rep.Err() != first {
		t.Fatal("Err must return the first violation")
	}
}

func TestConfigActive(t *testing.T) {
	if (Config{}).Active() {
		t.Fatal("zero config must be inactive")
	}
	if !(Config{Enabled: true}).Active() || !(Config{Interval: 4}).Active() {
		t.Fatal("enabled or snapshotting config must be active")
	}
}

func TestCompareSnapshots(t *testing.T) {
	mk := func(batch int, combined uint64) Snapshot {
		return Snapshot{Batch: batch, Combined: combined}
	}
	t.Run("identical", func(t *testing.T) {
		a := []Snapshot{mk(0, 10), mk(1, 20)}
		rep := CompareSnapshots(a, []Snapshot{mk(0, 10), mk(1, 20)})
		if !rep.Match || rep.Compared != 2 || rep.FirstDivergentBatch != -1 {
			t.Fatalf("identical streams: %+v", rep)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if rep := CompareSnapshots(nil, nil); !rep.Match {
			t.Fatalf("empty streams must match: %+v", rep)
		}
	})
	t.Run("digest differs", func(t *testing.T) {
		a := []Snapshot{mk(0, 10), mk(1, 20), mk(2, 30)}
		b := []Snapshot{mk(0, 10), mk(1, 99), mk(2, 30)}
		rep := CompareSnapshots(a, b)
		if rep.Match || rep.FirstDivergentBatch != 1 {
			t.Fatalf("divergence at batch 1 missed: %+v", rep)
		}
		if rep.A.Combined != 20 || rep.B.Combined != 99 {
			t.Fatalf("divergent pair not captured: %+v", rep)
		}
	})
	t.Run("length differs", func(t *testing.T) {
		a := []Snapshot{mk(0, 10)}
		b := []Snapshot{mk(0, 10), mk(1, 20)}
		rep := CompareSnapshots(a, b)
		if rep.Match || rep.FirstDivergentBatch != 1 {
			t.Fatalf("unpaired snapshot missed: %+v", rep)
		}
	})
}

// testSystem wires a minimal real system (no workload run needed) so the
// state checks can be probed directly.
func testSystem(t *testing.T) *Auditor {
	t.Helper()
	eng := sim.NewEngine()
	vm := hostos.NewVM(hostos.DefaultCostModel())
	link := interconnect.NewLink(interconnect.DefaultPCIe3x16())
	drv, err := uvm.NewDriver(uvm.DefaultConfig(), eng, vm, link)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := gpu.NewDevice(gpu.DefaultTitanV(), eng, drv)
	if err != nil {
		t.Fatal(err)
	}
	drv.Attach(dev)
	inj, err := faultinject.New(faultinject.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Enabled: true, Interval: 1}, Options{}, eng, drv, dev, vm, inj)
}

// TestCheckNowCleanSystem: a freshly wired, never-run system satisfies
// every state invariant.
func TestCheckNowCleanSystem(t *testing.T) {
	a := testSystem(t)
	if vs := a.CheckNow(); len(vs) != 0 {
		t.Fatalf("clean system violates invariants: %v", vs[0])
	}
}

// TestCheckDriverStateCorruptions forges driver audit states that break
// each structural invariant and verifies the right check trips. The forged
// states never come from a real driver — they are the states a buggy
// driver would expose.
func TestCheckDriverStateCorruptions(t *testing.T) {
	blockWithChunk := func(id mem.VABlockID) uvm.BlockAudit {
		b := uvm.BlockAudit{ID: id, HasChunk: true, Chunk: 0}
		b.Resident.Set(0)
		b.Populated.Set(0)
		return b
	}
	cases := []struct {
		name  string
		state uvm.AuditState
		check string
	}{
		{
			"capacity exceeded",
			uvm.AuditState{ChunksInUse: 5, CapacityBlocks: 4},
			"residency-capacity",
		},
		{
			"resident but never populated",
			func() uvm.AuditState {
				b := uvm.BlockAudit{ID: 1, HasChunk: true}
				b.Resident.Set(3) // populated stays empty
				return uvm.AuditState{Blocks: []uvm.BlockAudit{b}, ChunksInUse: 1, CapacityBlocks: 4}
			}(),
			"residency-capacity",
		},
		{
			"resident without a chunk",
			func() uvm.AuditState {
				b := uvm.BlockAudit{ID: 1}
				b.Resident.Set(3)
				b.Populated.Set(3)
				return uvm.AuditState{Blocks: []uvm.BlockAudit{b}, CapacityBlocks: 4}
			}(),
			"residency-capacity",
		},
		{
			"one chunk claimed twice",
			uvm.AuditState{
				Blocks:         []uvm.BlockAudit{blockWithChunk(1), blockWithChunk(2)},
				AllocatedOrder: []mem.VABlockID{1, 2},
				ChunksInUse:    2, CapacityBlocks: 4,
			},
			"chunk-bijection",
		},
		{
			"chunk unknown to the allocator",
			uvm.AuditState{
				Blocks:         []uvm.BlockAudit{blockWithChunk(1)},
				AllocatedOrder: []mem.VABlockID{1},
				ChunksInUse:    1, CapacityBlocks: 4,
			},
			"chunk-bijection",
		},
		{
			"chunk count disagrees with allocator",
			uvm.AuditState{ChunksInUse: 1, CapacityBlocks: 4},
			"residency-capacity",
		},
		{
			"victim list out of sync",
			uvm.AuditState{AllocatedOrder: []mem.VABlockID{1}, CapacityBlocks: 4},
			"residency-capacity",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := testSystem(t)
			st := tc.state
			v := a.checkDriverState(&st)
			if v == nil {
				t.Fatal("corrupt state not detected")
			}
			if v.Check != tc.check {
				t.Fatalf("reported check %q, want %q (%v)", v.Check, tc.check, v)
			}
		})
	}
}

// TestCheckLinkConservation: the auditor's migration ledger must reconcile
// with the link's counters; a phantom migration (ledger ahead of the link)
// trips the check.
func TestCheckLinkConservation(t *testing.T) {
	a := testSystem(t)
	var st uvm.Stats
	if v := a.checkLinkConservation(&st); v != nil {
		t.Fatalf("idle link flagged: %v", v)
	}
	a.sumMigrated = mem.PageSize
	v := a.checkLinkConservation(&st)
	if v == nil {
		t.Fatal("phantom migration not detected")
	}
	if v.Check != "link-conservation" {
		t.Fatalf("reported check %q, want link-conservation", v.Check)
	}
}

// TestCheckInjectionCleanSystem: the injection ledgers of an idle injector
// reconcile trivially.
func TestCheckInjectionCleanSystem(t *testing.T) {
	a := testSystem(t)
	var st uvm.Stats
	if v := a.checkInjection(&st); v != nil {
		t.Fatalf("idle injector flagged: %v", v)
	}
	// A driver counter with no injector-side injections breaks the
	// cross-layer equality.
	st.MigRetries = 3
	v := a.checkInjection(&st)
	if v == nil {
		t.Fatal("driver/injector mismatch not detected")
	}
	if v.Check != "injection-conservation" {
		t.Fatalf("reported check %q, want injection-conservation", v.Check)
	}
}

// TestSharedOptionsSkipCrossLayerChecks: multi-GPU wiring must not fail
// the per-device reconciliations that aliasing invalidates.
func TestSharedOptionsSkipCrossLayerChecks(t *testing.T) {
	a := testSystem(t)
	a.opt = Options{SharedHost: true, SharedInjector: true}
	var st uvm.Stats
	st.MigRetries = 3 // would trip the single-injector equality
	if v := a.checkInjection(&st); v != nil {
		t.Fatalf("SharedInjector did not skip cross-layer check: %v", v)
	}
}
