package audit

import (
	"fmt"

	"guvm/internal/mem"
	"guvm/internal/trace"
)

// CheckBatchRecord validates the self-consistency of one batch record —
// the invariants that hold for the record alone, with no model state:
// fault accounting, histogram sums, byte/page agreement and time-component
// sanity. It assumes serial VABlock servicing; use CheckBatchRecordParallel
// when the driver runs ServiceWorkers > 1. It returns the violation with
// Batch and At unset (the caller stamps detection context), or nil.
func CheckBatchRecord(rec *trace.BatchRecord) *ViolationError {
	return CheckBatchRecordParallel(rec, 1)
}

// CheckBatchRecordParallel is CheckBatchRecord with the driver's servicing
// concurrency made explicit: time components record aggregate work across
// workers while the batch duration is the parallel makespan, so the sum
// bound relaxes to workers x duration (any work-conserving schedule has
// makespan >= total work / workers).
func CheckBatchRecordParallel(rec *trace.BatchRecord, workers int) *ViolationError {
	if workers < 1 {
		workers = 1
	}
	if got := rec.UniquePages + rec.Type1Dups + rec.Type2Dups; got != rec.RawFaults {
		return &ViolationError{
			Check: "fault-accounting",
			Detail: fmt.Sprintf("unique %d + type1 dups %d + type2 dups %d = %d, want raw faults %d",
				rec.UniquePages, rec.Type1Dups, rec.Type2Dups, got, rec.RawFaults),
		}
	}
	if rec.StalePages > rec.UniquePages {
		return &ViolationError{
			Check:  "fault-accounting",
			Detail: fmt.Sprintf("stale pages %d > unique pages %d", rec.StalePages, rec.UniquePages),
		}
	}
	// The histograms store uint16 cells; a batch at or past the clamp
	// point cannot be summed back losslessly, so only audit below it.
	if rec.RawFaults < 65535 {
		sum := 0
		for _, n := range rec.FaultsPerSM {
			sum += int(n)
		}
		if len(rec.FaultsPerSM) > 0 && sum != rec.RawFaults {
			return &ViolationError{
				Check:  "fault-accounting",
				Detail: fmt.Sprintf("per-SM histogram sums to %d, want raw faults %d", sum, rec.RawFaults),
			}
		}
		sum = 0
		for _, n := range rec.VABlockFaults {
			sum += int(n)
		}
		if sum != rec.RawFaults {
			return &ViolationError{
				Check:  "fault-accounting",
				Detail: fmt.Sprintf("per-VABlock histogram sums to %d, want raw faults %d", sum, rec.RawFaults),
			}
		}
	}
	// VABlocks counts the distinct blocks serviced for faults; the raw
	// histogram may cover more (all-stale blocks), the serviced list may
	// cover more (cross-block prefetch), and the serviced list must not
	// repeat a block.
	if rec.VABlocks > len(rec.VABlockFaults) {
		return &ViolationError{
			Check:  "fault-accounting",
			Detail: fmt.Sprintf("%d serviced fault blocks > %d blocks with raw faults", rec.VABlocks, len(rec.VABlockFaults)),
		}
	}
	if len(rec.ServicedBlocks) < rec.VABlocks {
		return &ViolationError{
			Check:  "fault-accounting",
			Detail: fmt.Sprintf("%d serviced blocks recorded, want at least %d", len(rec.ServicedBlocks), rec.VABlocks),
		}
	}
	seen := make(map[mem.VABlockID]bool, len(rec.ServicedBlocks))
	for _, bid := range rec.ServicedBlocks {
		if seen[bid] {
			return &ViolationError{
				Check:  "fault-accounting",
				Detail: fmt.Sprintf("block %d serviced twice in one batch", bid),
			}
		}
		seen[bid] = true
	}
	if want := uint64(rec.PagesMigrated) * mem.PageSize; rec.BytesMigrated != want {
		return &ViolationError{
			Check:  "fault-accounting",
			Detail: fmt.Sprintf("migrated %d bytes, want %d pages x %d", rec.BytesMigrated, rec.PagesMigrated, mem.PageSize),
		}
	}
	return checkBatchTimes(rec, workers)
}

// checkBatchTimes verifies the timer components: none negative, and their
// sum within workers x the batch duration (the remainder is batch setup
// and replay issue, per the trace contract).
func checkBatchTimes(rec *trace.BatchRecord, workers int) *ViolationError {
	if rec.End < rec.Start {
		return &ViolationError{
			Check:  "batch-times",
			Detail: fmt.Sprintf("batch ends at %d ns before it starts at %d ns", rec.End, rec.Start),
		}
	}
	components := []struct {
		name string
		t    int64
	}{
		{"TFetch", int64(rec.TFetch)}, {"TDedup", int64(rec.TDedup)},
		{"TBlockMgmt", int64(rec.TBlockMgmt)}, {"TPopulate", int64(rec.TPopulate)},
		{"TPageTable", int64(rec.TPageTable)}, {"TDMAMap", int64(rec.TDMAMap)},
		{"TUnmap", int64(rec.TUnmap)}, {"TTransfer", int64(rec.TTransfer)},
		{"TEvict", int64(rec.TEvict)}, {"TReplay", int64(rec.TReplay)},
	}
	var sum int64
	for _, c := range components {
		if c.t < 0 {
			return &ViolationError{
				Check:  "batch-times",
				Detail: fmt.Sprintf("%s is negative: %d ns", c.name, c.t),
			}
		}
		sum += c.t
	}
	if d := int64(rec.Duration()); sum > int64(workers)*d {
		return &ViolationError{
			Check: "batch-times",
			Detail: fmt.Sprintf("time components sum to %d ns > batch duration %d ns x %d workers",
				sum, d, workers),
		}
	}
	return nil
}
