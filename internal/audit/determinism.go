package audit

// DeterminismReport is the outcome of comparing the digest-snapshot
// streams of two runs of the same configuration and workload.
type DeterminismReport struct {
	// Match is true when every compared snapshot pair agreed and both
	// runs produced the same number of snapshots.
	Match bool
	// Compared is the number of snapshot pairs examined.
	Compared int
	// FirstDivergentBatch is the batch ID of the first disagreeing
	// snapshot, or -1 when the runs match.
	FirstDivergentBatch int
	// A and B are the first divergent snapshot pair (zero values when the
	// runs match). With Config.KeepDumps their Dump fields hold the full
	// states for field-by-field diagnosis.
	A, B Snapshot
}

// CompareSnapshots walks two snapshot streams in order and reports the
// first divergence: a differing digest at the same position, or one run
// producing snapshots the other did not (a diverging batch count).
func CompareSnapshots(a, b []Snapshot) DeterminismReport {
	rep := DeterminismReport{Match: true, FirstDivergentBatch: -1}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		rep.Compared++
		if a[i].Batch != b[i].Batch || a[i].Combined != b[i].Combined {
			rep.Match = false
			rep.FirstDivergentBatch = a[i].Batch
			if b[i].Batch < a[i].Batch {
				rep.FirstDivergentBatch = b[i].Batch
			}
			rep.A, rep.B = a[i], b[i]
			return rep
		}
	}
	if len(a) != len(b) {
		rep.Match = false
		// One run kept batching past the other's end: the divergence is
		// the first unpaired snapshot.
		if len(a) > n {
			rep.A = a[n]
			rep.FirstDivergentBatch = a[n].Batch
		} else {
			rep.B = b[n]
			rep.FirstDivergentBatch = b[n].Batch
		}
	}
	return rep
}
