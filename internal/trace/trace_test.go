package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

func TestBatchRecordDerivedMetrics(t *testing.T) {
	b := BatchRecord{
		Start:     1000,
		End:       11000,
		Type1Dups: 3,
		Type2Dups: 2,
		TTransfer: 2500,
		TUnmap:    1000,
		TDMAMap:   500,
	}
	if b.Duration() != 10000 {
		t.Fatalf("Duration = %d", b.Duration())
	}
	if b.DupFaults() != 5 {
		t.Fatalf("DupFaults = %d", b.DupFaults())
	}
	if got := b.TransferFraction(); got != 0.25 {
		t.Fatalf("TransferFraction = %v", got)
	}
	if got := b.UnmapFraction(); got != 0.1 {
		t.Fatalf("UnmapFraction = %v", got)
	}
	if got := b.DMAFraction(); got != 0.05 {
		t.Fatalf("DMAFraction = %v", got)
	}
}

func TestBatchRecordZeroDuration(t *testing.T) {
	var b BatchRecord
	if b.TransferFraction() != 0 || b.UnmapFraction() != 0 || b.DMAFraction() != 0 {
		t.Fatal("zero-duration fractions not zero")
	}
}

func TestCollectorAddBatchAssignsIDs(t *testing.T) {
	c := &Collector{}
	for i := 0; i < 5; i++ {
		id := c.AddBatch(BatchRecord{Start: sim.Time(i), End: sim.Time(i + 1)})
		if id != i {
			t.Fatalf("AddBatch id = %d, want %d", id, i)
		}
	}
	if len(c.Batches) != 5 {
		t.Fatalf("batches = %d", len(c.Batches))
	}
}

func TestCollectorSpanRetention(t *testing.T) {
	spans := []mem.Span{{First: 0, Count: 4}}
	c := &Collector{}
	c.AddBatch(BatchRecord{ServicedSpans: spans})
	if c.Batches[0].ServicedSpans != nil {
		t.Fatal("spans retained without KeepSpans")
	}
	c2 := &Collector{KeepSpans: true}
	c2.AddBatch(BatchRecord{ServicedSpans: spans})
	if len(c2.Batches[0].ServicedSpans) != 1 {
		t.Fatal("spans dropped despite KeepSpans")
	}
}

func TestCollectorFaultRetention(t *testing.T) {
	c := &Collector{}
	c.AddFaults(0, []gpu.Fault{{Page: 1}})
	if len(c.Faults) != 0 {
		t.Fatal("faults retained without KeepFaults")
	}
	c.KeepFaults = true
	c.AddFaults(1, []gpu.Fault{{Page: 1}, {Page: 2}})
	if len(c.Faults) != 2 || len(c.FaultBatch) != 2 || c.FaultBatch[1] != 1 {
		t.Fatalf("fault retention wrong: %v %v", c.Faults, c.FaultBatch)
	}
}

func TestCollectorTotals(t *testing.T) {
	c := &Collector{}
	c.AddBatch(BatchRecord{Start: 0, End: 10, BytesMigrated: 100, RawFaults: 3})
	c.AddBatch(BatchRecord{Start: 20, End: 50, BytesMigrated: 200, RawFaults: 5})
	if c.TotalBatchTime() != 40 {
		t.Fatalf("TotalBatchTime = %d", c.TotalBatchTime())
	}
	if c.TotalBytesMigrated() != 300 {
		t.Fatalf("TotalBytesMigrated = %d", c.TotalBytesMigrated())
	}
	if c.TotalFaults() != 8 {
		t.Fatalf("TotalFaults = %d", c.TotalFaults())
	}
}

func TestWriteBatchesCSV(t *testing.T) {
	batches := []BatchRecord{
		{ID: 0, Start: 100, End: 400, RawFaults: 10, BytesMigrated: 4096},
		{ID: 1, Start: 500, End: 900, Type1Dups: 2},
	}
	var sb strings.Builder
	if err := WriteBatchesCSV(&sb, batches); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,start_ns") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,100,400,300,10,") {
		t.Fatalf("row 0 wrong: %s", lines[1])
	}
	// Column count matches header.
	if got, want := strings.Count(lines[1], ","), strings.Count(lines[0], ","); got != want {
		t.Fatalf("row has %d commas, header %d", got, want)
	}
}

func TestWriteFaultsJSONL(t *testing.T) {
	faults := []gpu.Fault{
		{Time: 100, Page: 42, SM: 3, UTLB: 1, Kind: gpu.AccessRead},
		{Time: 200, Page: 43, Kind: gpu.AccessWrite, Dup: true},
	}
	var sb strings.Builder
	if err := WriteFaultsJSONL(&sb, faults, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var rec map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["page"].(float64) != 42 || rec["kind"].(string) != "read" {
		t.Fatalf("record = %v", rec)
	}
	var rec2 map[string]interface{}
	if err := json.Unmarshal([]byte(lines[1]), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2["dup"].(bool) != true || rec2["batch"].(float64) != 1 {
		t.Fatalf("record2 = %v", rec2)
	}
}

func TestWriteFaultsJSONLMisaligned(t *testing.T) {
	var sb strings.Builder
	if err := WriteFaultsJSONL(&sb, []gpu.Fault{{}}, nil); err == nil {
		t.Fatal("misaligned inputs accepted")
	}
}
