// Package trace defines the telemetry records the instrumented driver
// emits: one record per fault batch with the targeted high-resolution
// timers and event counters of the paper's modified nvidia-uvm driver,
// plus optional per-fault records for fine-grain fault-behaviour plots
// (Figures 3-5, 16c, 17c).
package trace

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// BatchRecord is the per-batch metadata logged at the end of each batch.
type BatchRecord struct {
	ID    int
	Start sim.Time // first fetch of the batch
	End   sim.Time // replay completion

	// Fault composition.
	RawFaults   int // fault records fetched from the GPU buffer
	Type1Dups   int // duplicates from the same µTLB (§4.2 type 1)
	Type2Dups   int // duplicates across µTLBs (§4.2 type 2)
	UniquePages int // distinct pages after dedup
	StalePages  int // faulted pages already resident on arrival
	VABlocks    int // distinct VABlocks touched

	// Work performed.
	PagesMigrated   int
	BytesMigrated   uint64
	PrefetchedPages int // migrated pages beyond the faulted set
	Evictions       int // VABlocks evicted
	EvictedBytes    uint64
	UnmapPages      int // CPU pages unmapped via unmap_mapping_range
	NewDMABlocks    int // VABlocks that paid first-touch DMA mapping setup

	// Injected-fault recovery work (zero unless fault injection is on;
	// absent from the default CSV export to keep uninjected runs
	// bit-identical — WriteBatchesCSVWith opts in).
	InjMigFailures    int // transient migration transfer failures retried
	InjHostAllocFails int // host allocation failures degraded around

	// Time components (sum <= End-Start; the remainder is batch setup
	// and replay issue).
	TFetch     sim.Time
	TDedup     sim.Time
	TBlockMgmt sim.Time
	TPopulate  sim.Time
	TPageTable sim.Time
	TDMAMap    sim.Time
	TUnmap     sim.Time
	TTransfer  sim.Time
	TEvict     sim.Time
	TReplay    sim.Time

	// Footprint for fault-behaviour plots: the page spans migrated in
	// and the blocks evicted.
	ServicedSpans []mem.Span
	EvictedBlocks []mem.VABlockID
	// ServicedBlocks lists the distinct VABlocks this batch migrated
	// pages into (faulted blocks plus cross-block prefetch targets), in
	// service order. Always retained: the audit subsystem needs it to
	// reconcile evictions against same-batch re-servicing.
	ServicedBlocks []mem.VABlockID

	// FaultsPerSM[sm] counts this batch's raw faults per SM of origin
	// (Table 2).
	FaultsPerSM []uint16
	// VABlockFaults holds the raw fault count of each distinct VABlock
	// in the batch, in ascending block order (Table 3).
	VABlockFaults []uint16
}

// Duration returns the wall-clock (virtual) batch time.
func (b *BatchRecord) Duration() sim.Time { return b.End - b.Start }

// DupFaults returns the total duplicate faults in the batch.
func (b *BatchRecord) DupFaults() int { return b.Type1Dups + b.Type2Dups }

// TransferFraction returns the share of batch time spent in data
// transfer (Figure 7).
func (b *BatchRecord) TransferFraction() float64 {
	d := b.Duration()
	if d <= 0 {
		return 0
	}
	return float64(b.TTransfer) / float64(d)
}

// UnmapFraction returns the share of batch time spent unmapping CPU
// pages (Figure 11).
func (b *BatchRecord) UnmapFraction() float64 {
	d := b.Duration()
	if d <= 0 {
		return 0
	}
	return float64(b.TUnmap) / float64(d)
}

// DMAFraction returns the share of batch time spent creating DMA
// mappings (Figure 14's "GPU VABlock state initialization").
func (b *BatchRecord) DMAFraction() float64 {
	d := b.Duration()
	if d <= 0 {
		return 0
	}
	return float64(b.TDMAMap) / float64(d)
}

// Collector accumulates batch and (optionally) fault records.
type Collector struct {
	// KeepFaults retains every fetched fault (memory-heavy; enable for
	// fault-timeline experiments only).
	KeepFaults bool
	// KeepSpans retains per-batch serviced page spans.
	KeepSpans bool

	Batches []BatchRecord
	Faults  []gpu.Fault
	// FaultBatch[i] is the batch ID that fetched Faults[i].
	FaultBatch []int
}

// AddBatch appends a batch record, assigning its ID, and returns the ID.
func (c *Collector) AddBatch(b BatchRecord) int {
	b.ID = len(c.Batches)
	if !c.KeepSpans {
		b.ServicedSpans = nil
	}
	c.Batches = append(c.Batches, b)
	return b.ID
}

// AddFaults appends the fetched faults of batch id.
func (c *Collector) AddFaults(id int, faults []gpu.Fault) {
	if !c.KeepFaults {
		return
	}
	c.Faults = append(c.Faults, faults...)
	for range faults {
		c.FaultBatch = append(c.FaultBatch, id)
	}
}

// TotalBatchTime sums all batch durations (the "Batch" column of Table 4).
func (c *Collector) TotalBatchTime() sim.Time {
	var t sim.Time
	for i := range c.Batches {
		t += c.Batches[i].Duration()
	}
	return t
}

// TotalBytesMigrated sums to-GPU migration volume across batches.
func (c *Collector) TotalBytesMigrated() uint64 {
	var n uint64
	for i := range c.Batches {
		n += c.Batches[i].BytesMigrated
	}
	return n
}

// TotalFaults sums raw fetched faults across batches.
func (c *Collector) TotalFaults() int {
	n := 0
	for i := range c.Batches {
		n += c.Batches[i].RawFaults
	}
	return n
}
