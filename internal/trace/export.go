package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"guvm/internal/gpu"
)

// batchCSVHeader lists the exported per-batch columns.
const batchCSVHeader = "id,start_ns,end_ns,duration_ns,raw_faults,unique_pages," +
	"type1_dups,type2_dups,stale_pages,vablocks,pages_migrated,bytes_migrated," +
	"prefetched_pages,evictions,evicted_bytes,unmap_pages,new_dma_blocks," +
	"t_fetch_ns,t_dedup_ns,t_blockmgmt_ns,t_populate_ns,t_pagetable_ns," +
	"t_dmamap_ns,t_unmap_ns,t_transfer_ns,t_evict_ns,t_replay_ns\n"

// injectCSVColumns are the opt-in injected-fault columns appended by
// WriteBatchesCSVWith; the default export omits them so existing consumers
// see a bit-identical file.
const injectCSVColumns = ",inj_mig_failures,inj_host_alloc_fails"

// WriteBatchesCSV streams batch records as CSV — the same per-batch log
// the paper's instrumented driver emitted to the system log, in a form
// external plotting tools consume directly.
func WriteBatchesCSV(w io.Writer, batches []BatchRecord) error {
	return WriteBatchesCSVWith(w, batches, false)
}

// WriteBatchesCSVWith is WriteBatchesCSV with optional injected-fault
// columns (per-batch injected migration failures and host allocation
// failures). With injectCols false the output is byte-identical to
// WriteBatchesCSV.
func WriteBatchesCSVWith(w io.Writer, batches []BatchRecord, injectCols bool) error {
	header := batchCSVHeader
	if injectCols {
		header = batchCSVHeader[:len(batchCSVHeader)-1] + injectCSVColumns + "\n"
	}
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	for i := range batches {
		b := &batches[i]
		_, err := fmt.Fprintf(w,
			"%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			b.ID, b.Start, b.End, b.Duration(), b.RawFaults, b.UniquePages,
			b.Type1Dups, b.Type2Dups, b.StalePages, b.VABlocks, b.PagesMigrated,
			b.BytesMigrated, b.PrefetchedPages, b.Evictions, b.EvictedBytes,
			b.UnmapPages, b.NewDMABlocks,
			b.TFetch, b.TDedup, b.TBlockMgmt, b.TPopulate, b.TPageTable,
			b.TDMAMap, b.TUnmap, b.TTransfer, b.TEvict, b.TReplay)
		if err != nil {
			return err
		}
		if injectCols {
			if _, err := fmt.Fprintf(w, ",%d,%d", b.InjMigFailures, b.InjHostAllocFails); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// faultJSON is the export shape of one fault record.
type faultJSON struct {
	Batch int    `json:"batch"`
	Time  int64  `json:"time_ns"`
	Page  uint64 `json:"page"`
	SM    int    `json:"sm"`
	UTLB  int    `json:"utlb"`
	Warp  int    `json:"warp"`
	Block int    `json:"block"`
	Kind  string `json:"kind"`
	Dup   bool   `json:"dup"`
}

// WriteFaultsJSONL streams fault records as JSON lines (one object per
// fault), paired with the batch that fetched each. faultBatch must align
// with faults, as produced by a Collector with KeepFaults.
func WriteFaultsJSONL(w io.Writer, faults []gpu.Fault, faultBatch []int) error {
	if len(faults) != len(faultBatch) {
		return fmt.Errorf("trace: %d faults but %d batch ids", len(faults), len(faultBatch))
	}
	enc := json.NewEncoder(w)
	for i, f := range faults {
		rec := faultJSON{
			Batch: faultBatch[i],
			Time:  int64(f.Time),
			Page:  uint64(f.Page),
			SM:    f.SM,
			UTLB:  f.UTLB,
			Warp:  f.Warp,
			Block: f.Block,
			Kind:  f.Kind.String(),
			Dup:   f.Dup,
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return nil
}
