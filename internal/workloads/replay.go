package workloads

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// TraceOp is one operation of a recorded access trace.
type TraceOp struct {
	// Block is the thread block executing the op.
	Block int
	// Kind is "r" (read), "w" (write), "p" (prefetch) or "c" (compute).
	Kind string
	// Alloc indexes the trace's allocation list; Page is the page offset
	// within it. Ignored for computes.
	Alloc int
	Page  uint64
	// Count is the page run length (memory ops) or the duration in
	// nanoseconds (computes).
	Count uint64
}

// Replay executes a recorded page-access trace as a workload: the
// bring-your-own-trace path for studying applications the built-in models
// don't cover. Each block's ops run in order with dependent pacing
// (reads feed the next compute).
type Replay struct {
	// TraceName labels the workload.
	TraceName string
	// AllocBytes sizes each allocation referenced by the trace.
	AllocBytes []uint64
	// HostInit marks allocations initialized by the CPU.
	HostInit []bool
	// Ops is the trace in program order (per block).
	Ops []TraceOp
}

// Name implements Workload.
func (w *Replay) Name() string {
	if w.TraceName == "" {
		return "replay"
	}
	return "replay-" + w.TraceName
}

// Allocs implements Workload.
func (w *Replay) Allocs() []Alloc {
	allocs := make([]Alloc, len(w.AllocBytes))
	for i, b := range w.AllocBytes {
		allocs[i] = Alloc{Name: fmt.Sprintf("alloc%d", i), Bytes: b}
		if i < len(w.HostInit) && w.HostInit[i] {
			allocs[i].HostInit = true
			allocs[i].HostThreads = 1
		}
	}
	return allocs
}

// Phases implements Workload.
func (w *Replay) Phases(bases []mem.Addr) []Phase {
	perBlock := map[int][]TraceOp{}
	maxBlock := 0
	for _, op := range w.Ops {
		perBlock[op.Block] = append(perBlock[op.Block], op)
		if op.Block > maxBlock {
			maxBlock = op.Block
		}
	}
	return []Phase{{
		Name: "replay",
		Kernel: gpu.Kernel{NumBlocks: maxBlock + 1, BlockProgram: func(blk int) []gpu.Program {
			var prog gpu.Program
			for _, op := range perBlock[blk] {
				switch op.Kind {
				case "c":
					prog = append(prog, gpu.Compute(sim.Time(op.Count), 0))
					continue
				}
				base := mem.PageOf(bases[op.Alloc]) + mem.PageID(op.Page)
				pages := gpu.PageRange(base, int(op.Count))
				switch op.Kind {
				case "r":
					prog = append(prog, gpu.Read(0, pages...))
				case "w":
					prog = append(prog, gpu.Write(nil, pages...))
				case "p":
					prog = append(prog, gpu.Prefetch(pages...))
				}
			}
			if len(prog) == 0 {
				return nil
			}
			return []gpu.Program{prog}
		}},
	}}
}

// ParseTrace reads the plain-text trace format:
//
//	# comment
//	alloc <bytes> [hostinit]
//	<block> r|w|p <allocIdx> <pageOff> <count>
//	<block> c <duration_ns>
//
// Lines are whitespace-separated; allocations must precede ops.
func ParseTrace(r io.Reader) (*Replay, error) {
	w := &Replay{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "alloc" {
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace line %d: alloc needs a size", lineNo)
			}
			bytes, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil || bytes == 0 {
				return nil, fmt.Errorf("trace line %d: bad alloc size %q", lineNo, fields[1])
			}
			w.AllocBytes = append(w.AllocBytes, bytes)
			w.HostInit = append(w.HostInit, len(fields) > 2 && fields[2] == "hostinit")
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace line %d: too few fields", lineNo)
		}
		block, err := strconv.Atoi(fields[0])
		if err != nil || block < 0 {
			return nil, fmt.Errorf("trace line %d: bad block %q", lineNo, fields[0])
		}
		kind := fields[1]
		switch kind {
		case "c":
			dur, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad duration %q", lineNo, fields[2])
			}
			w.Ops = append(w.Ops, TraceOp{Block: block, Kind: "c", Count: dur})
		case "r", "w", "p":
			if len(fields) < 5 {
				return nil, fmt.Errorf("trace line %d: memory op needs alloc, page, count", lineNo)
			}
			alloc, err := strconv.Atoi(fields[2])
			if err != nil || alloc < 0 || alloc >= len(w.AllocBytes) {
				return nil, fmt.Errorf("trace line %d: bad alloc index %q", lineNo, fields[2])
			}
			page, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad page %q", lineNo, fields[3])
			}
			count, err := strconv.ParseUint(fields[4], 10, 64)
			if err != nil || count == 0 {
				return nil, fmt.Errorf("trace line %d: bad count %q", lineNo, fields[4])
			}
			maxPages := mem.AlignUp(w.AllocBytes[alloc], mem.PageSize) / mem.PageSize
			if page+count > maxPages {
				return nil, fmt.Errorf("trace line %d: pages [%d,%d) exceed alloc %d (%d pages)",
					lineNo, page, page+count, alloc, maxPages)
			}
			w.Ops = append(w.Ops, TraceOp{Block: block, Kind: kind, Alloc: alloc, Page: page, Count: count})
		default:
			return nil, fmt.Errorf("trace line %d: unknown op kind %q", lineNo, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(w.AllocBytes) == 0 {
		return nil, fmt.Errorf("trace: no allocations declared")
	}
	return w, nil
}

// WriteTrace emits the trace in the ParseTrace format (round-trippable).
func (w *Replay) WriteTrace(out io.Writer) error {
	for i, b := range w.AllocBytes {
		suffix := ""
		if i < len(w.HostInit) && w.HostInit[i] {
			suffix = " hostinit"
		}
		if _, err := fmt.Fprintf(out, "alloc %d%s\n", b, suffix); err != nil {
			return err
		}
	}
	for _, op := range w.Ops {
		var err error
		if op.Kind == "c" {
			_, err = fmt.Fprintf(out, "%d c %d\n", op.Block, op.Count)
		} else {
			_, err = fmt.Fprintf(out, "%d %s %d %d %d\n", op.Block, op.Kind, op.Alloc, op.Page, op.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
