package workloads

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// FFT models cuFFT's out-of-place Stockham-style passes over a complex
// array: log2(N/elementsPerChunk) passes, each reading the source at two
// strided offsets and writing contiguously. Early passes are contiguous;
// later passes stride beyond VABlock size, spreading each batch across
// many VABlocks with few faults per block — the Table 3 cufft signature
// (25 VABlocks/batch, ~3 faults each).
type FFT struct {
	// Elements is the transform length (complex64: 8 bytes each).
	Elements int
	// Blocks is the thread-block count per pass.
	Blocks int
	// ChunkPages is the contiguous work unit per op.
	ChunkPages int
	// ComputePerChunk is the dependent butterfly time per chunk.
	ComputePerChunk sim.Time
}

// NewFFT returns an FFT over n complex64 elements.
func NewFFT(n, blocks int) *FFT {
	return &FFT{Elements: n, Blocks: blocks, ChunkPages: 2, ComputePerChunk: 30 * sim.Microsecond}
}

// Name implements Workload.
func (w *FFT) Name() string { return "cufft" }

const fftElemBytes = 8 // complex64

func (w *FFT) arrayBytes() uint64 { return uint64(w.Elements) * fftElemBytes }

// Allocs implements Workload: ping-pong buffers.
func (w *FFT) Allocs() []Alloc {
	return []Alloc{
		{Name: "src", Bytes: w.arrayBytes(), HostInit: true, HostThreads: 1},
		{Name: "dst", Bytes: w.arrayBytes()},
	}
}

// Phases implements Workload.
func (w *FFT) Phases(bases []mem.Addr) []Phase {
	totalPages := int(w.arrayBytes() / mem.PageSize)
	passes := 0
	for n := totalPages; n > 1; n /= 2 {
		passes++
	}
	if passes > 8 {
		passes = 8 // cap pass count: locality signature saturates
	}
	var phases []Phase
	for p := 0; p < passes; p++ {
		src := mem.PageOf(bases[p%2])
		dst := mem.PageOf(bases[(p+1)%2])
		// Read stride in pages doubles each pass; reads gather from
		// idx and idx+stride, writes are contiguous.
		stride := totalPages >> (p + 1)
		if stride < w.ChunkPages {
			stride = w.ChunkPages
		}
		per := (totalPages/2 + w.Blocks - 1) / w.Blocks
		chunk := w.ChunkPages
		phases = append(phases, Phase{
			Name: "fft-pass",
			Kernel: gpu.Kernel{NumBlocks: w.Blocks, BlockProgram: func(blk int) []gpu.Program {
				lo := blk * per
				hi := lo + per
				if hi > totalPages/2 {
					hi = totalPages / 2
				}
				if lo >= hi {
					return nil
				}
				var prog gpu.Program
				for i := lo; i < hi; i += chunk {
					n := chunk
					if i+n > hi {
						n = hi - i
					}
					loIdx := mem.PageID(i % stride)
					base := mem.PageID(i/stride) * mem.PageID(stride) * 2
					prog = append(prog,
						gpu.Read(0, gpu.PageRange(src+base+loIdx, n)...),
						gpu.Read(1, gpu.PageRange(src+base+loIdx+mem.PageID(stride), n)...),
						gpu.Compute(w.ComputePerChunk, 0, 1),
						gpu.Write(nil, gpu.PageRange(dst+mem.PageID(2*i), n)...),
						gpu.Write(nil, gpu.PageRange(dst+mem.PageID(2*i)+mem.PageID(n), n)...),
					)
				}
				return []gpu.Program{prog}
			}},
		})
	}
	return phases
}
