// Package workloads models the memory-access geometry of the paper's
// benchmarks (Table 1) plus its synthetic kernels: page-granular GPU
// access patterns that drive the UVM driver the way the real applications
// do. The paper's fault-level results depend on access geometry — spatial
// locality, VABlock spread, reuse, host-side initialization — not on
// computed values, so each workload reproduces geometry only.
package workloads

import (
	"sort"

	"guvm/internal/gpu"
	"guvm/internal/mem"
)

// Alloc describes one managed allocation a workload needs.
type Alloc struct {
	Name  string
	Bytes uint64
	// HostInit: the CPU initializes the data before the first kernel
	// (live CPU mappings -> unmap on first GPU touch).
	HostInit bool
	// HostThreads is the number of CPU threads performing that
	// initialization (Figure 11 contrasts 1 vs many).
	HostThreads int
}

// HostTouch is a CPU-side phase re-touching a range (e.g. host work
// between GPU kernels), restoring live CPU mappings on non-resident pages.
type HostTouch struct {
	Base    mem.Addr
	Bytes   uint64
	Threads int
}

// Phase is one step of a workload: optional host touches followed by an
// optional kernel (Kernel.NumBlocks == 0 means a host-only phase).
type Phase struct {
	Name        string
	HostTouches []HostTouch
	Kernel      gpu.Kernel
}

// Workload is a benchmark: allocations plus a phase list.
type Workload interface {
	Name() string
	Allocs() []Alloc
	// Phases binds the workload to its allocation base addresses, in
	// the order returned by Allocs.
	Phases(bases []mem.Addr) []Phase
}

// pagesIn returns the distinct pages covering bytes [off, off+length) of
// the allocation at base.
func pagesIn(base mem.Addr, off, length uint64) []mem.PageID {
	if length == 0 {
		return nil
	}
	first := mem.PageOf(base + mem.Addr(off))
	last := mem.PageOf(base + mem.Addr(off+length-1))
	return gpu.PageRange(first, int(last-first)+1)
}

// dedupPages sorts and deduplicates a page list in place.
func dedupPages(pages []mem.PageID) []mem.PageID {
	if len(pages) < 2 {
		return pages
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	out := pages[:1]
	for _, p := range pages[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// chunked appends ops reading (and optionally writing) pages in chunks of
// chunk pages, alternating registers so reads stay non-blocking.
func chunked(prog gpu.Program, pages []mem.PageID, chunk int, write bool) gpu.Program {
	for lo := 0; lo < len(pages); lo += chunk {
		hi := lo + chunk
		if hi > len(pages) {
			hi = len(pages)
		}
		if write {
			prog = append(prog, gpu.Write(nil, pages[lo:hi]...))
		} else {
			prog = append(prog, gpu.Read(0, pages[lo:hi]...))
		}
	}
	return prog
}
