package workloads

import (
	"strings"
	"testing"
	"testing/quick"

	"guvm/internal/gpu"
	"guvm/internal/mem"
)

const sampleTrace = `
# two allocations, three blocks
alloc 4194304 hostinit
alloc 2097152
0 r 0 0 8
0 c 5000
0 w 1 0 4
1 r 0 512 16
1 p 0 0 32
2 c 1000
`

func TestParseTrace(t *testing.T) {
	w, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.AllocBytes) != 2 || !w.HostInit[0] || w.HostInit[1] {
		t.Fatalf("allocs = %v hostinit %v", w.AllocBytes, w.HostInit)
	}
	if len(w.Ops) != 6 {
		t.Fatalf("ops = %d", len(w.Ops))
	}
	if w.Ops[0].Kind != "r" || w.Ops[0].Count != 8 {
		t.Fatalf("op0 = %+v", w.Ops[0])
	}
	if w.Ops[1].Kind != "c" || w.Ops[1].Count != 5000 {
		t.Fatalf("op1 = %+v", w.Ops[1])
	}
}

func TestReplayPhases(t *testing.T) {
	w, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	bases := fakeBases(w.Allocs())
	phases := w.Phases(bases)
	if len(phases) != 1 {
		t.Fatalf("phases = %d", len(phases))
	}
	k := phases[0].Kernel
	if k.NumBlocks != 3 {
		t.Fatalf("blocks = %d, want 3", k.NumBlocks)
	}
	// Block 0: read(8), compute, write(4).
	prog := k.BlockProgram(0)[0]
	if len(prog) != 3 || prog[0].Kind != gpu.OpRead || prog[1].Kind != gpu.OpCompute ||
		prog[2].Kind != gpu.OpWrite {
		t.Fatalf("block 0 prog = %+v", prog)
	}
	if prog[2].Pages[0] != mem.PageOf(bases[1]) {
		t.Fatalf("write targets page %d, want alloc-1 base", prog[2].Pages[0])
	}
	// Block 1 prefetch op present.
	prog1 := k.BlockProgram(1)[0]
	if prog1[1].Kind != gpu.OpPrefetch || len(prog1[1].Pages) != 32 {
		t.Fatalf("block 1 prefetch = %+v", prog1[1])
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"0 r 0 0 8",                       // op before alloc
		"alloc 0",                         // zero size
		"alloc abc",                       // bad size
		"alloc 4096\n0 r 0 0 2",           // pages exceed alloc
		"alloc 4096\n0 x 0 0 1",           // unknown kind
		"alloc 4096\n0 r 1 0 1",           // alloc index out of range
		"alloc 4096\nnope r 0 0 1",        // bad block
		"alloc 4096\n0 c notanumber",      // bad duration
		"alloc 4096\n0 r 0",               // too few fields
		"alloc 4194304\n0 r 0 99999999 1", // page out of range
	}
	for i, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	w, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := w.WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	w2, err := ParseTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, sb.String())
	}
	if len(w2.Ops) != len(w.Ops) {
		t.Fatalf("ops %d != %d", len(w2.Ops), len(w.Ops))
	}
	for i := range w.Ops {
		if w.Ops[i] != w2.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, w.Ops[i], w2.Ops[i])
		}
	}
}

// Property: any generated trace round-trips through write+parse.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(blocks []uint8, kinds []uint8) bool {
		w := &Replay{AllocBytes: []uint64{8 << 20}, HostInit: []bool{true}}
		n := len(blocks)
		if len(kinds) < n {
			n = len(kinds)
		}
		for i := 0; i < n; i++ {
			kind := []string{"r", "w", "p", "c"}[kinds[i]%4]
			op := TraceOp{Block: int(blocks[i] % 8), Kind: kind}
			if kind == "c" {
				op.Count = uint64(kinds[i])*100 + 1
			} else {
				op.Page = uint64(blocks[i]) % 2000
				op.Count = uint64(kinds[i]%16) + 1
			}
			w.Ops = append(w.Ops, op)
		}
		var sb strings.Builder
		if err := w.WriteTrace(&sb); err != nil {
			return false
		}
		w2, err := ParseTrace(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(w2.Ops) != len(w.Ops) {
			return false
		}
		for i := range w.Ops {
			if w.Ops[i] != w2.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReplayName(t *testing.T) {
	if (&Replay{}).Name() != "replay" {
		t.Fatal("default name wrong")
	}
	if (&Replay{TraceName: "bfs"}).Name() != "replay-bfs" {
		t.Fatal("named trace wrong")
	}
}
