package workloads

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// SpMV models sparse matrix-vector multiply in CSR format, the canonical
// irregular HPC kernel: streaming reads of the row pointers and value/
// column arrays, but data-dependent gathers into the dense vector x. The
// gather destroys spatial locality in x — exactly the access pattern for
// which the paper's related work shows UVM prefetching misbehaves.
type SpMV struct {
	// Rows is the matrix dimension.
	Rows int
	// NnzPerRow is the average nonzeros per row.
	NnzPerRow int
	// Blocks is the thread-block count.
	Blocks int
	// ChunkRows is the rows processed per dependent step.
	ChunkRows int
	// ComputePerChunk paces the multiply-accumulate per chunk.
	ComputePerChunk sim.Time
	// Seed drives the column (gather) distribution.
	Seed uint64
	// Skew in [0,1): 0 = uniform gathers; near 1 concentrates gathers
	// on low columns (power-law-ish locality).
	Skew float64
}

// NewSpMV returns an SpMV over an n x n matrix with ~nnzPerRow nonzeros
// per row.
func NewSpMV(n, nnzPerRow int, seed uint64) *SpMV {
	return &SpMV{
		Rows: n, NnzPerRow: nnzPerRow, Blocks: 16, ChunkRows: 64,
		ComputePerChunk: 20 * sim.Microsecond, Seed: seed, Skew: 0.5,
	}
}

// Name implements Workload.
func (w *SpMV) Name() string { return "spmv" }

const (
	spmvValBytes = 4 // float32 values
	spmvColBytes = 4 // int32 column indices
	spmvVecBytes = 4 // float32 x and y
)

func (w *SpMV) nnz() int { return w.Rows * w.NnzPerRow }

// Allocs implements Workload: values, column indices, x, y.
func (w *SpMV) Allocs() []Alloc {
	return []Alloc{
		{Name: "vals", Bytes: uint64(w.nnz()) * spmvValBytes, HostInit: true, HostThreads: 1},
		{Name: "cols", Bytes: uint64(w.nnz()) * spmvColBytes, HostInit: true, HostThreads: 1},
		{Name: "x", Bytes: uint64(w.Rows) * spmvVecBytes, HostInit: true, HostThreads: 1},
		{Name: "y", Bytes: uint64(w.Rows) * spmvVecBytes},
	}
}

// gatherPage picks the x-page one nonzero gathers from.
func (w *SpMV) gatherPage(rng *sim.RNG, xFirst mem.PageID, xPages uint64) mem.PageID {
	if rng.Float64() < w.Skew {
		// Local/hub access: one of the first few pages.
		hub := xPages / 16
		if hub == 0 {
			hub = 1
		}
		return xFirst + mem.PageID(rng.Uint64n(hub))
	}
	return xFirst + mem.PageID(rng.Uint64n(xPages))
}

// Phases implements Workload.
func (w *SpMV) Phases(bases []mem.Addr) []Phase {
	vals, cols, x, y := bases[0], bases[1], bases[2], bases[3]
	xPages := mem.AlignUp(uint64(w.Rows)*spmvVecBytes, mem.PageSize) / mem.PageSize
	rowsPerBlock := (w.Rows + w.Blocks - 1) / w.Blocks
	return []Phase{{
		Name: "spmv",
		Kernel: gpu.Kernel{NumBlocks: w.Blocks, BlockProgram: func(blk int) []gpu.Program {
			rng := sim.NewRNG(w.Seed + uint64(blk)*0x51ed)
			r0 := blk * rowsPerBlock
			r1 := r0 + rowsPerBlock
			if r1 > w.Rows {
				r1 = w.Rows
			}
			var prog gpu.Program
			for r := r0; r < r1; r += w.ChunkRows {
				rows := w.ChunkRows
				if r+rows > r1 {
					rows = r1 - r
				}
				nnzOff := uint64(r) * uint64(w.NnzPerRow) * spmvValBytes
				nnzLen := uint64(rows) * uint64(w.NnzPerRow) * spmvValBytes
				// Streaming reads: values and column indices.
				valPages := pagesIn(vals, nnzOff, nnzLen)
				colPages := pagesIn(cols, nnzOff, nnzLen)
				// Data-dependent gathers into x: a handful of
				// distinct pages per chunk.
				gathers := rows * w.NnzPerRow / 16
				if gathers < 1 {
					gathers = 1
				}
				if gathers > 8 {
					gathers = 8
				}
				var xps []mem.PageID
				for g := 0; g < gathers; g++ {
					xps = append(xps, w.gatherPage(rng, mem.PageOf(x), xPages))
				}
				xps = dedupPages(xps)
				prog = append(prog,
					gpu.Read(0, valPages...),
					gpu.Read(1, colPages...),
					gpu.Read(2, xps...),
					gpu.Compute(w.ComputePerChunk, 0, 1, 2),
					gpu.Write(nil, pagesIn(y, uint64(r)*spmvVecBytes, uint64(rows)*spmvVecBytes)...),
				)
			}
			return []gpu.Program{prog}
		}},
	}}
}
