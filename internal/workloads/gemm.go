package workloads

import (
	"fmt"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// GEMM models cuBLAS [sd]gemm access geometry: C = A×B over N×N matrices
// in row-major layout, tiled so each thread block owns one C tile and
// sweeps the K dimension in panels. Row panels of A are contiguous pages;
// column panels of B stride across rows; blocks in the same tile row share
// A panels (cross-SM duplicate faults), blocks in the same tile column
// share B panels. The "phases" the paper observes in sgemm batch profiles
// (Figure 8) come from this tile-panel structure.
type GEMM struct {
	// N is the matrix dimension in elements.
	N int
	// Elem is the element size: 4 for sgemm, 8 for dgemm.
	Elem int
	// Tile is the square tile edge in elements.
	Tile int
	// ChunkPages is the coalesced page window a block loads at once
	// while staging a panel into shared memory.
	ChunkPages int
	// ComputePerChunk is the dependent staging/FMA time per chunk,
	// modeling the bounded per-warp ILP window.
	ComputePerChunk sim.Time
}

// NewSGEMM returns a single-precision GEMM of dimension n.
func NewSGEMM(n int) *GEMM {
	return &GEMM{N: n, Elem: 4, Tile: 256, ChunkPages: 8, ComputePerChunk: 40 * sim.Microsecond}
}

// NewDGEMM returns a double-precision GEMM of dimension n (Figure 15).
func NewDGEMM(n int) *GEMM {
	return &GEMM{N: n, Elem: 8, Tile: 256, ChunkPages: 8, ComputePerChunk: 80 * sim.Microsecond}
}

// Name implements Workload.
func (w *GEMM) Name() string {
	if w.Elem == 8 {
		return "dgemm"
	}
	return "sgemm"
}

// MatrixBytes returns the size of one matrix.
func (w *GEMM) MatrixBytes() uint64 { return uint64(w.N) * uint64(w.N) * uint64(w.Elem) }

// Allocs implements Workload.
func (w *GEMM) Allocs() []Alloc {
	b := w.MatrixBytes()
	return []Alloc{
		{Name: "A", Bytes: b, HostInit: true, HostThreads: 1},
		{Name: "B", Bytes: b, HostInit: true, HostThreads: 1},
		{Name: "C", Bytes: b},
	}
}

// panelPages returns the distinct pages of the sub-matrix
// rows [r0, r0+nr) x cols [c0, c0+nc) of the row-major matrix at base.
func (w *GEMM) panelPages(base mem.Addr, r0, nr, c0, nc int) []mem.PageID {
	rowBytes := uint64(w.N) * uint64(w.Elem)
	var pages []mem.PageID
	for r := r0; r < r0+nr; r++ {
		off := uint64(r)*rowBytes + uint64(c0)*uint64(w.Elem)
		pages = append(pages, pagesIn(base, off, uint64(nc)*uint64(w.Elem))...)
	}
	return dedupPages(pages)
}

// Phases implements Workload.
func (w *GEMM) Phases(bases []mem.Addr) []Phase {
	if w.N%w.Tile != 0 {
		panic(fmt.Sprintf("workloads: GEMM N=%d not divisible by tile %d", w.N, w.Tile))
	}
	a, b, c := bases[0], bases[1], bases[2]
	tiles := w.N / w.Tile
	nblocks := tiles * tiles
	return []Phase{{
		Name: w.Name(),
		Kernel: gpu.Kernel{NumBlocks: nblocks, BlockProgram: func(blk int) []gpu.Program {
			ti := blk / tiles // tile row
			tj := blk % tiles // tile col
			var prog gpu.Program
			for k := 0; k < tiles; k++ {
				aPages := w.panelPages(a, ti*w.Tile, w.Tile, k*w.Tile, w.Tile)
				bPages := w.panelPages(b, k*w.Tile, w.Tile, tj*w.Tile, w.Tile)
				// Stage the panels chunk by chunk: each chunk's loads
				// must land before the dependent math lets the next
				// chunk issue (shared-memory double-buffer pacing).
				n := len(aPages)
				if len(bPages) > n {
					n = len(bPages)
				}
				for lo := 0; lo < n; lo += w.ChunkPages {
					hi := lo + w.ChunkPages
					op := gpu.Compute(w.ComputePerChunk)
					if lo < len(aPages) {
						ha := hi
						if ha > len(aPages) {
							ha = len(aPages)
						}
						prog = append(prog, gpu.Read(0, aPages[lo:ha]...))
						op.Deps = append(op.Deps, 0)
					}
					if lo < len(bPages) {
						hb := hi
						if hb > len(bPages) {
							hb = len(bPages)
						}
						prog = append(prog, gpu.Read(1, bPages[lo:hb]...))
						op.Deps = append(op.Deps, 1)
					}
					prog = append(prog, op)
				}
			}
			cPages := w.panelPages(c, ti*w.Tile, w.Tile, tj*w.Tile, w.Tile)
			prog = append(prog, gpu.Write(nil, cPages...))
			return []gpu.Program{prog}
		}},
	}}
}
