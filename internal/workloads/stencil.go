package workloads

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// GaussSeidel models a red-black Gauss-Seidel smoother over a 2-D grid:
// repeated sweeps where each thread block owns a band of rows, reads the
// band plus halo rows, and writes the band in place. The grid is reused
// every iteration — high spatial locality per VABlock (Table 3: 2.3
// VABlocks/batch, 22 faults each) and, under oversubscription, the
// sweep-eviction-prefetch interplay of Figure 16.
type GaussSeidel struct {
	// Rows and Cols define the grid of float32 cells.
	Rows, Cols int
	// Iterations is the number of full sweeps.
	Iterations int
	// BandRows is the row count processed per dependent step.
	BandRows int
	// Stripes is the thread-block count; Gauss-Seidel's row-order data
	// dependence keeps concurrency low (each stripe sweeps its bands
	// sequentially), concentrating each batch in a couple of VABlocks
	// (Table 3: 2.31 VABlocks/batch).
	Stripes int
	// ChunkPages is the coalesced page window per step.
	ChunkPages int
	// ComputePerChunk paces the stencil math per chunk.
	ComputePerChunk sim.Time
}

// NewGaussSeidel returns a square Gauss-Seidel smoother.
func NewGaussSeidel(n, iterations int) *GaussSeidel {
	return &GaussSeidel{
		Rows: n, Cols: n, Iterations: iterations,
		BandRows: 32, Stripes: 3, ChunkPages: 16,
		ComputePerChunk: 15 * sim.Microsecond,
	}
}

// Name implements Workload.
func (w *GaussSeidel) Name() string { return "gauss-seidel" }

// GridBytes returns the grid footprint.
func (w *GaussSeidel) GridBytes() uint64 { return uint64(w.Rows) * uint64(w.Cols) * 4 }

// Allocs implements Workload.
func (w *GaussSeidel) Allocs() []Alloc {
	return []Alloc{{Name: "grid", Bytes: w.GridBytes(), HostInit: true, HostThreads: 1}}
}

// Phases implements Workload.
func (w *GaussSeidel) Phases(bases []mem.Addr) []Phase {
	base := bases[0]
	rowBytes := uint64(w.Cols) * 4
	bands := (w.Rows + w.BandRows - 1) / w.BandRows
	perStripe := (bands + w.Stripes - 1) / w.Stripes
	var phases []Phase
	for it := 0; it < w.Iterations; it++ {
		phases = append(phases, Phase{
			Name: "sweep",
			Kernel: gpu.Kernel{NumBlocks: w.Stripes, BlockProgram: func(blk int) []gpu.Program {
				var prog gpu.Program
				for bi := blk * perStripe; bi < (blk+1)*perStripe && bi < bands; bi++ {
					r0 := bi * w.BandRows
					r1 := r0 + w.BandRows
					if r1 > w.Rows {
						r1 = w.Rows
					}
					// Halo: one row above and below.
					h0, h1 := r0-1, r1+1
					if h0 < 0 {
						h0 = 0
					}
					if h1 > w.Rows {
						h1 = w.Rows
					}
					readPages := dedupPages(pagesIn(base, uint64(h0)*rowBytes, uint64(h1-h0)*rowBytes))
					writePages := dedupPages(pagesIn(base, uint64(r0)*rowBytes, uint64(r1-r0)*rowBytes))
					// Row-order dependence: each chunk's loads feed
					// the stencil math before the next chunk issues.
					for lo := 0; lo < len(readPages); lo += w.ChunkPages {
						hi := lo + w.ChunkPages
						if hi > len(readPages) {
							hi = len(readPages)
						}
						prog = append(prog,
							gpu.Read(0, readPages[lo:hi]...),
							gpu.Compute(w.ComputePerChunk, 0),
						)
					}
					for lo := 0; lo < len(writePages); lo += w.ChunkPages {
						hi := lo + w.ChunkPages
						if hi > len(writePages) {
							hi = len(writePages)
						}
						prog = append(prog, gpu.Write([]int{0}, writePages[lo:hi]...))
					}
				}
				return []gpu.Program{prog}
			}},
		})
	}
	return phases
}

// HPGMG models the geometric multigrid proxy app (HPGMG-FV): V-cycles over
// a hierarchy of grid levels — smooth on the fine level, restrict down the
// hierarchy, smooth the coarse levels, prolong back up — with CPU-side
// work between cycles touching the fine grid from OpenMP-style threads.
// That host phase is the Figure-11 mechanism: multithreaded touching makes
// the driver's unmap_mapping_range calls far more expensive.
type HPGMG struct {
	// FineBytes is the finest-level grid footprint.
	FineBytes uint64
	// Levels is the V-cycle depth.
	Levels int
	// VCycles is how many V-cycles to run.
	VCycles int
	// HostThreads is the OpenMP-style CPU thread count for the host
	// phases between cycles (1 in Figure 11a, many in 11b).
	HostThreads int
	// HostTouchFraction is the share of the fine grid the host phase
	// re-touches between cycles.
	HostTouchFraction float64
	// SmoothsPerLevel is the smoother applications per level visit.
	SmoothsPerLevel int
	// Blocks is the thread-block count on the finest level. Box-order
	// dependences keep it low, concentrating batches in few VABlocks.
	Blocks int
	// ChunkPages is the coalesced page window per dependent step.
	ChunkPages int
	// ComputePerChunk paces the per-box stencil math.
	ComputePerChunk sim.Time
}

// NewHPGMG returns an HPGMG proxy with the given fine-level footprint.
func NewHPGMG(fineBytes uint64, hostThreads int) *HPGMG {
	return &HPGMG{
		FineBytes:         fineBytes,
		Levels:            4,
		VCycles:           3,
		HostThreads:       hostThreads,
		HostTouchFraction: 0.5,
		SmoothsPerLevel:   2,
		Blocks:            4,
		ChunkPages:        12,
		ComputePerChunk:   12 * sim.Microsecond,
	}
}

// Name implements Workload.
func (w *HPGMG) Name() string { return "hpgmg" }

// levelBytes returns level l's footprint: each coarser level is 1/8 the
// size (3-D refinement), floored at one VABlock.
func (w *HPGMG) levelBytes(l int) uint64 {
	b := w.FineBytes >> (3 * uint(l))
	if b < mem.VABlockSize {
		b = mem.VABlockSize
	}
	return b
}

// Allocs implements Workload: one grid per level, fine level host-
// initialized by HostThreads.
func (w *HPGMG) Allocs() []Alloc {
	allocs := make([]Alloc, w.Levels)
	for l := 0; l < w.Levels; l++ {
		allocs[l] = Alloc{
			Name:        "level",
			Bytes:       w.levelBytes(l),
			HostInit:    true,
			HostThreads: w.HostThreads,
		}
	}
	return allocs
}

// smoothKernel sweeps a level: blocks stream bands with read-modify-write.
func (w *HPGMG) smoothKernel(base mem.Addr, bytes uint64, blocks int) gpu.Kernel {
	totalPages := int(bytes / mem.PageSize)
	if blocks > totalPages {
		blocks = totalPages
	}
	per := (totalPages + blocks - 1) / blocks
	first := mem.PageOf(base)
	return gpu.Kernel{NumBlocks: blocks, BlockProgram: func(blk int) []gpu.Program {
		lo := blk * per
		hi := lo + per
		if hi > totalPages {
			hi = totalPages
		}
		if lo >= hi {
			return nil
		}
		var prog gpu.Program
		for p := lo; p < hi; p += w.ChunkPages {
			n := w.ChunkPages
			if p+n > hi {
				n = hi - p
			}
			pages := gpu.PageRange(first+mem.PageID(p), n)
			prog = append(prog,
				gpu.Read(0, pages...),
				gpu.Compute(w.ComputePerChunk, 0),
				gpu.Write(nil, pages...),
			)
		}
		return []gpu.Program{prog}
	}}
}

// transferKernel reads src and writes dst (restriction or prolongation).
func (w *HPGMG) transferKernel(src, dst mem.Addr, srcBytes, dstBytes uint64, blocks int) gpu.Kernel {
	srcPages := int(srcBytes / mem.PageSize)
	dstPages := int(dstBytes / mem.PageSize)
	if blocks > dstPages {
		blocks = dstPages
	}
	perDst := (dstPages + blocks - 1) / blocks
	ratio := srcPages / dstPages
	if ratio < 1 {
		ratio = 1
	}
	s, d := mem.PageOf(src), mem.PageOf(dst)
	return gpu.Kernel{NumBlocks: blocks, BlockProgram: func(blk int) []gpu.Program {
		lo := blk * perDst
		hi := lo + perDst
		if hi > dstPages {
			hi = dstPages
		}
		if lo >= hi {
			return nil
		}
		var prog gpu.Program
		for p := lo; p < hi; p += w.ChunkPages {
			n := w.ChunkPages
			if p+n > hi {
				n = hi - p
			}
			srcLo := p * ratio
			srcN := n * ratio
			if srcLo+srcN > srcPages {
				srcN = srcPages - srcLo
			}
			if srcN > 0 {
				prog = append(prog,
					gpu.Read(0, gpu.PageRange(s+mem.PageID(srcLo), srcN)...),
					gpu.Compute(w.ComputePerChunk, 0),
				)
			}
			prog = append(prog, gpu.Write([]int{0}, gpu.PageRange(d+mem.PageID(p), n)...))
		}
		return []gpu.Program{prog}
	}}
}

// Phases implements Workload.
func (w *HPGMG) Phases(bases []mem.Addr) []Phase {
	var phases []Phase
	for cyc := 0; cyc < w.VCycles; cyc++ {
		if cyc > 0 {
			// Host phase between cycles: OpenMP threads touch part
			// of the fine grid (norm computation, boundary work).
			phases = append(phases, Phase{
				Name: "host-work",
				HostTouches: []HostTouch{{
					Base:    bases[0],
					Bytes:   uint64(float64(w.FineBytes) * w.HostTouchFraction),
					Threads: w.HostThreads,
				}},
			})
		}
		// Down-sweep: smooth and restrict.
		for l := 0; l < w.Levels-1; l++ {
			blocks := w.Blocks >> uint(l)
			if blocks < 4 {
				blocks = 4
			}
			for s := 0; s < w.SmoothsPerLevel; s++ {
				phases = append(phases, Phase{
					Name:   "smooth-down",
					Kernel: w.smoothKernel(bases[l], w.levelBytes(l), blocks),
				})
			}
			phases = append(phases, Phase{
				Name: "restrict",
				Kernel: w.transferKernel(bases[l], bases[l+1],
					w.levelBytes(l), w.levelBytes(l+1), blocks),
			})
		}
		// Coarse solve.
		phases = append(phases, Phase{
			Name:   "coarse-solve",
			Kernel: w.smoothKernel(bases[w.Levels-1], w.levelBytes(w.Levels-1), 4),
		})
		// Up-sweep: prolong and smooth.
		for l := w.Levels - 2; l >= 0; l-- {
			blocks := w.Blocks >> uint(l)
			if blocks < 4 {
				blocks = 4
			}
			phases = append(phases, Phase{
				Name: "prolong",
				Kernel: w.transferKernel(bases[l+1], bases[l],
					w.levelBytes(l+1), w.levelBytes(l), blocks),
			})
			for s := 0; s < w.SmoothsPerLevel; s++ {
				phases = append(phases, Phase{
					Name:   "smooth-up",
					Kernel: w.smoothKernel(bases[l], w.levelBytes(l), blocks),
				})
			}
		}
	}
	return phases
}
