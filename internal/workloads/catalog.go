package workloads

import "fmt"

// CatalogNames lists the workloads constructible by name through ByName,
// in a stable order (for error messages and API listings).
func CatalogNames() []string {
	return []string{"stream", "regular", "random", "sgemm", "gauss-seidel", "hpgmg", "spmv"}
}

// ByName builds the named workload from the shared sweep knobs: mb is the
// footprint in MiB (stream/regular/random/hpgmg), n the problem dimension
// (sgemm/gauss-seidel/spmv), seed the workload RNG seed (random/spmv).
// The returned constructor is reusable — each call builds a fresh
// workload with fresh seeded RNG state, so one grid point never perturbs
// another. Both cmd/uvmsweep and the sweepd service resolve sweep points
// through this catalog, which keeps their config digests comparable.
func ByName(name string, mb uint64, n int, seed uint64) (func() Workload, error) {
	switch name {
	case "stream":
		return func() Workload { return NewStream(mb<<20, 24) }, nil
	case "regular":
		return func() Workload { return NewRegular(mb<<20, 160) }, nil
	case "random":
		return func() Workload { return NewRandom(mb<<20, 160, 300, seed) }, nil
	case "sgemm":
		return func() Workload { return NewSGEMM(n) }, nil
	case "gauss-seidel":
		return func() Workload { return NewGaussSeidel(n, 3) }, nil
	case "hpgmg":
		return func() Workload { return NewHPGMG(mb<<20, 1) }, nil
	case "spmv":
		return func() Workload { return NewSpMV(n*n/64, 16, seed) }, nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (valid: %v)", name, CatalogNames())
}
