package workloads

import (
	"testing"

	"guvm/internal/gpu"
	"guvm/internal/mem"
)

// allWorkloads returns one small instance of every workload.
func allWorkloads() []Workload {
	return []Workload{
		NewVecAddPaper(),
		NewVecAddPrefetch(),
		NewRegular(16<<20, 32),
		NewRandom(16<<20, 16, 50, 42),
		NewStream(8<<20, 16),
		NewSGEMM(1024),
		NewDGEMM(512),
		NewFFT(1<<20, 16),
		NewGaussSeidel(1024, 2),
		NewHPGMG(16<<20, 4),
		NewSpMV(1<<16, 8, 3),
	}
}

// fakeBases assigns VABlock-aligned, non-overlapping bases like the driver.
func fakeBases(allocs []Alloc) []mem.Addr {
	bases := make([]mem.Addr, len(allocs))
	next := mem.Addr(mem.VABlockSize)
	for i, a := range allocs {
		bases[i] = next
		next += mem.Addr(mem.AlignUp(a.Bytes, mem.VABlockSize))
	}
	return bases
}

// collectPages walks every op of every phase, returning all touched pages.
func collectPages(t *testing.T, w Workload, bases []mem.Addr) []mem.PageID {
	t.Helper()
	var pages []mem.PageID
	for _, ph := range w.Phases(bases) {
		k := ph.Kernel
		for b := 0; b < k.NumBlocks; b++ {
			for _, prog := range k.BlockProgram(b) {
				for _, op := range prog {
					pages = append(pages, op.Pages...)
				}
			}
		}
	}
	return pages
}

func TestAllWorkloadsWellFormed(t *testing.T) {
	for _, w := range allWorkloads() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			allocs := w.Allocs()
			if len(allocs) == 0 {
				t.Fatal("no allocations")
			}
			var lo, hi mem.PageID
			bases := fakeBases(allocs)
			lo = mem.PageOf(bases[0])
			last := len(allocs) - 1
			hi = mem.PageOf(bases[last] + mem.Addr(mem.AlignUp(allocs[last].Bytes, mem.VABlockSize)))
			phases := w.Phases(bases)
			if len(phases) == 0 {
				t.Fatal("no phases")
			}
			pages := collectPages(t, w, bases)
			if len(pages) == 0 {
				t.Fatal("workload touches no pages")
			}
			for _, p := range pages {
				if p < lo || p >= hi {
					t.Fatalf("page %d outside allocations [%d, %d)", p, lo, hi)
				}
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, mk := range []func() Workload{
		func() Workload { return NewRandom(8<<20, 8, 30, 7) },
		func() Workload { return NewSGEMM(512) },
		func() Workload { return NewHPGMG(8<<20, 2) },
	} {
		a, b := mk(), mk()
		ba := fakeBases(a.Allocs())
		bb := fakeBases(b.Allocs())
		pa := collectPages(t, a, ba)
		pb := collectPages(t, b, bb)
		if len(pa) != len(pb) {
			t.Fatalf("%s: nondeterministic page count %d vs %d", a.Name(), len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: page %d differs", a.Name(), i)
			}
		}
	}
}

func TestVecAddPaperShape(t *testing.T) {
	w := NewVecAddPaper()
	bases := fakeBases(w.Allocs())
	phases := w.Phases(bases)
	if len(phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(phases))
	}
	progs := phases[0].Kernel.BlockProgram(0)
	if len(progs) != 1 {
		t.Fatalf("warps = %d, want 1", len(progs))
	}
	prog := progs[0]
	if len(prog) != 9 { // 3 iterations x (read, read, write)
		t.Fatalf("ops = %d, want 9", len(prog))
	}
	for i, op := range prog {
		if len(op.Pages) != 32 {
			t.Fatalf("op %d touches %d pages, want 32", i, len(op.Pages))
		}
		switch i % 3 {
		case 0, 1:
			if op.Kind != gpu.OpRead {
				t.Fatalf("op %d kind = %v, want read", i, op.Kind)
			}
		case 2:
			if op.Kind != gpu.OpWrite || len(op.Deps) != 2 {
				t.Fatalf("op %d not a 2-dep write", i)
			}
		}
	}
	// Each op's pages are all distinct (one page per thread).
	seen := map[mem.PageID]bool{}
	for _, p := range prog[0].Pages {
		if seen[p] {
			t.Fatal("duplicate page within warp op")
		}
		seen[p] = true
	}
}

func TestVecAddPrefetchShape(t *testing.T) {
	w := NewVecAddPrefetch()
	bases := fakeBases(w.Allocs())
	prog := w.Phases(bases)[0].Kernel.BlockProgram(0)[0]
	npf := 0
	for _, op := range prog {
		if op.Kind == gpu.OpPrefetch {
			npf++
			if len(op.Pages) != 256 {
				t.Fatalf("prefetch op touches %d pages, want 256", len(op.Pages))
			}
		}
	}
	if npf != 3 {
		t.Fatalf("prefetch ops = %d, want 3", npf)
	}
}

func TestRegularPartitionsCoverArray(t *testing.T) {
	w := NewRegular(8<<20, 16)
	bases := fakeBases(w.Allocs())
	pages := collectPages(t, w, bases)
	distinct := map[mem.PageID]bool{}
	for _, p := range pages {
		distinct[p] = true
	}
	want := int(w.Bytes / mem.PageSize)
	if len(distinct) != want {
		t.Fatalf("regular covers %d pages, want %d", len(distinct), want)
	}
	// Sequential access: no page repeats at all.
	if len(pages) != want {
		t.Fatalf("regular touched %d accesses, want %d (no reuse)", len(pages), want)
	}
}

func TestRandomSpreadsAcrossBlocks(t *testing.T) {
	w := NewRandom(64<<20, 32, 100, 1)
	bases := fakeBases(w.Allocs())
	pages := collectPages(t, w, bases)
	blocks := map[mem.VABlockID]bool{}
	for _, p := range pages {
		blocks[p.VABlock()] = true
	}
	// 3200 uniform accesses over 32 VABlocks: all blocks hit.
	if len(blocks) != 32 {
		t.Fatalf("random hit %d blocks, want 32", len(blocks))
	}
}

func TestGEMMPanelSharing(t *testing.T) {
	w := NewSGEMM(1024) // 4x4 tiles of 256
	bases := fakeBases(w.Allocs())
	k := w.Phases(bases)[0].Kernel
	if k.NumBlocks != 16 {
		t.Fatalf("blocks = %d, want 16", k.NumBlocks)
	}
	// Blocks 0 and 1 are in the same tile row: same A panels.
	aPages := func(b int) map[mem.PageID]bool {
		set := map[mem.PageID]bool{}
		prog := k.BlockProgram(b)[0]
		if prog[0].Kind != gpu.OpRead {
			t.Fatal("first op not a read")
		}
		for _, p := range prog[0].Pages {
			set[p] = true
		}
		return set
	}
	a0, a1 := aPages(0), aPages(1)
	sharedRow := 0
	for p := range a0 {
		if a1[p] {
			sharedRow++
		}
	}
	if sharedRow == 0 {
		t.Fatal("same-tile-row blocks share no A pages")
	}
}

func TestGEMMWritesCoverC(t *testing.T) {
	w := NewSGEMM(512)
	bases := fakeBases(w.Allocs())
	k := w.Phases(bases)[0].Kernel
	writes := map[mem.PageID]bool{}
	for b := 0; b < k.NumBlocks; b++ {
		for _, op := range k.BlockProgram(b)[0] {
			if op.Kind == gpu.OpWrite {
				for _, p := range op.Pages {
					writes[p] = true
				}
			}
		}
	}
	cBase := mem.PageOf(bases[2])
	cPages := int(w.MatrixBytes() / mem.PageSize)
	for i := 0; i < cPages; i++ {
		if !writes[cBase+mem.PageID(i)] {
			t.Fatalf("C page %d never written", i)
		}
	}
}

func TestGEMMPanicsOnBadTile(t *testing.T) {
	w := NewSGEMM(1000) // not divisible by 256
	bases := fakeBases(w.Allocs())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Phases(bases)
}

func TestFFTPassesAlternateBuffers(t *testing.T) {
	w := NewFFT(1<<21, 16) // 16 MB: 4096 pages
	bases := fakeBases(w.Allocs())
	phases := w.Phases(bases)
	if len(phases) < 2 {
		t.Fatalf("fft has %d passes, want >= 2", len(phases))
	}
	// Pass 0 reads src (alloc 0), pass 1 reads dst (alloc 1).
	srcOf := func(ph Phase) mem.VABlockID {
		prog := ph.Kernel.BlockProgram(0)[0]
		return prog[0].Pages[0].VABlock()
	}
	a0 := mem.VABlockOf(bases[0])
	a1 := mem.VABlockOf(bases[1])
	nBlocks := mem.VABlockID(mem.AlignUp(w.arrayBytes(), mem.VABlockSize) / mem.VABlockSize)
	in0 := srcOf(phases[0])
	in1 := srcOf(phases[1])
	if !(in0 >= a0 && in0 < a0+nBlocks) {
		t.Fatalf("pass 0 reads block %d, want in src", in0)
	}
	if !(in1 >= a1 && in1 < a1+nBlocks) {
		t.Fatalf("pass 1 reads block %d, want in dst", in1)
	}
}

func TestGaussSeidelReusesGrid(t *testing.T) {
	w := NewGaussSeidel(512, 3)
	bases := fakeBases(w.Allocs())
	phases := w.Phases(bases)
	if len(phases) != 3 {
		t.Fatalf("phases = %d, want 3 iterations", len(phases))
	}
	// Same pages each sweep.
	p0 := map[mem.PageID]bool{}
	for b := 0; b < phases[0].Kernel.NumBlocks; b++ {
		for _, op := range phases[0].Kernel.BlockProgram(b)[0] {
			for _, p := range op.Pages {
				p0[p] = true
			}
		}
	}
	for b := 0; b < phases[1].Kernel.NumBlocks; b++ {
		for _, op := range phases[1].Kernel.BlockProgram(b)[0] {
			for _, p := range op.Pages {
				if !p0[p] {
					t.Fatalf("sweep 2 touches new page %d", p)
				}
			}
		}
	}
}

func TestHPGMGHostPhasesBetweenCycles(t *testing.T) {
	w := NewHPGMG(16<<20, 8)
	bases := fakeBases(w.Allocs())
	phases := w.Phases(bases)
	hostPhases := 0
	for _, ph := range phases {
		if len(ph.HostTouches) > 0 {
			hostPhases++
			if ph.HostTouches[0].Threads != 8 {
				t.Fatalf("host touch threads = %d, want 8", ph.HostTouches[0].Threads)
			}
		}
	}
	if hostPhases != w.VCycles-1 {
		t.Fatalf("host phases = %d, want %d", hostPhases, w.VCycles-1)
	}
}

func TestHPGMGLevelsShrink(t *testing.T) {
	w := NewHPGMG(64<<20, 1)
	allocs := w.Allocs()
	if len(allocs) != w.Levels {
		t.Fatalf("allocs = %d, want %d levels", len(allocs), w.Levels)
	}
	for l := 1; l < len(allocs); l++ {
		if allocs[l].Bytes > allocs[l-1].Bytes {
			t.Fatalf("level %d larger than level %d", l, l-1)
		}
	}
	if allocs[1].Bytes*8 != allocs[0].Bytes {
		t.Fatalf("level 1 not 1/8 of fine: %d vs %d", allocs[1].Bytes, allocs[0].Bytes)
	}
}

func TestPagesInHelper(t *testing.T) {
	base := mem.Addr(mem.VABlockSize)
	if got := pagesIn(base, 0, 0); got != nil {
		t.Fatal("zero-length range returned pages")
	}
	got := pagesIn(base, 100, 10) // within one page
	if len(got) != 1 || got[0] != mem.PageOf(base) {
		t.Fatalf("single-page range = %v", got)
	}
	got = pagesIn(base, mem.PageSize-1, 2) // crosses a page boundary
	if len(got) != 2 {
		t.Fatalf("boundary range = %v", got)
	}
}

func TestDedupPages(t *testing.T) {
	got := dedupPages([]mem.PageID{5, 3, 5, 1, 3})
	want := []mem.PageID{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedup = %v, want %v", got, want)
		}
	}
	if got := dedupPages(nil); got != nil {
		t.Fatal("dedup(nil) != nil")
	}
}

func TestSpMVWellFormed(t *testing.T) {
	w := NewSpMV(1<<16, 16, 7)
	bases := fakeBases(w.Allocs())
	pages := collectPages(t, w, bases)
	if len(pages) == 0 {
		t.Fatal("spmv touches no pages")
	}
	// Gathers into x land inside x's allocation only.
	xLo := mem.PageOf(bases[2])
	xHi := mem.PageOf(bases[3])
	yHi := xHi + mem.PageID(mem.AlignUp(w.Allocs()[3].Bytes, mem.VABlockSize)/mem.PageSize)
	for _, p := range pages {
		if p >= yHi {
			t.Fatalf("page %d beyond allocations", p)
		}
	}
	_ = xLo
}

func TestSpMVSkewConcentratesGathers(t *testing.T) {
	// Measure the fraction of gather accesses landing in the hub (the
	// first 1/16 of x): high skew concentrates them there.
	hubFraction := func(skew float64) float64 {
		w := NewSpMV(1<<18, 16, 7)
		w.Skew = skew
		bases := fakeBases(w.Allocs())
		xLo := mem.PageOf(bases[2])
		xPages := mem.PageID(mem.AlignUp(w.Allocs()[2].Bytes, mem.PageSize) / mem.PageSize)
		hubHi := xLo + xPages/16
		total, hub := 0, 0
		for _, p := range collectPages(t, w, bases) {
			if p >= xLo && p < xLo+xPages {
				total++
				if p < hubHi {
					hub++
				}
			}
		}
		if total == 0 {
			t.Fatal("no gathers observed")
		}
		return float64(hub) / float64(total)
	}
	skewed, uniform := hubFraction(0.95), hubFraction(0.0)
	if skewed < 2*uniform {
		t.Fatalf("hub fraction skewed %.2f vs uniform %.2f: want >= 2x", skewed, uniform)
	}
}

func TestSpMVDeterministic(t *testing.T) {
	mk := func() Workload { return NewSpMV(1<<16, 8, 3) }
	a, b := mk(), mk()
	pa := collectPages(t, a, fakeBases(a.Allocs()))
	pb := collectPages(t, b, fakeBases(b.Allocs()))
	if len(pa) != len(pb) {
		t.Fatal("nondeterministic")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("page stream differs")
		}
	}
}

func TestVecAddCoalescedShape(t *testing.T) {
	w := NewVecAddCoalesced()
	bases := fakeBases(w.Allocs())
	progs := w.Phases(bases)[0].Kernel.BlockProgram(0)
	if len(progs) != 4 {
		t.Fatalf("warps = %d, want 4", len(progs))
	}
	for _, prog := range progs {
		if len(prog) != 3 || prog[2].Kind != gpu.OpWrite || len(prog[2].Deps) != 2 {
			t.Fatalf("warp prog shape wrong: %+v", prog)
		}
	}
}
