package workloads

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// VecAddPaper is the paper's Listing 1: one 32-thread warp computing
// c = a + b three times, each thread one page apart, so every access is a
// distinct page. It exposes the µTLB outstanding-fault limit (the 56-fault
// first batch of Figure 3) and the scoreboard serialization of writes.
type VecAddPaper struct {
	// Threads per warp (the paper uses 32).
	Threads int
	// Iterations (the paper uses 3).
	Iterations int
}

// NewVecAddPaper returns the exact Listing-1 configuration.
func NewVecAddPaper() *VecAddPaper { return &VecAddPaper{Threads: 32, Iterations: 3} }

// Name implements Workload.
func (w *VecAddPaper) Name() string { return "vecadd-listing1" }

// Allocs implements Workload: a, b, c sized so each thread-iteration
// touches its own page.
func (w *VecAddPaper) Allocs() []Alloc {
	bytes := uint64(w.Threads*w.Iterations) * mem.PageSize
	return []Alloc{
		{Name: "a", Bytes: bytes, HostInit: true, HostThreads: 1},
		{Name: "b", Bytes: bytes, HostInit: true, HostThreads: 1},
		{Name: "c", Bytes: bytes},
	}
}

// Phases implements Workload.
func (w *VecAddPaper) Phases(bases []mem.Addr) []Phase {
	a, b, c := mem.PageOf(bases[0]), mem.PageOf(bases[1]), mem.PageOf(bases[2])
	var prog gpu.Program
	for it := 0; it < w.Iterations; it++ {
		off := mem.PageID(it * w.Threads)
		prog = append(prog,
			gpu.Read(0, gpu.PageRange(a+off, w.Threads)...),
			gpu.Read(1, gpu.PageRange(b+off, w.Threads)...),
			// The FADD's scoreboard stall: the store cannot issue
			// until both loads complete (Listing 2).
			gpu.Write([]int{0, 1}, gpu.PageRange(c+off, w.Threads)...),
		)
	}
	return []Phase{{
		Name: "vecadd",
		Kernel: gpu.Kernel{NumBlocks: 1, BlockProgram: func(int) []gpu.Program {
			return []gpu.Program{prog}
		}},
	}}
}

// VecAddPrefetch is the §3.2 prefetch variant: prefetch.global.L2-style
// instructions fetch a, b and c up front, bypassing the scoreboard, the
// µTLB fault limit and the SM throttle — a single warp fills whole
// 256-fault batches (Figure 5).
type VecAddPrefetch struct {
	// PagesPerVector is the page count of each vector (256 in Figure 5).
	PagesPerVector int
}

// NewVecAddPrefetch returns the Figure-5 configuration.
func NewVecAddPrefetch() *VecAddPrefetch { return &VecAddPrefetch{PagesPerVector: 256} }

// Name implements Workload.
func (w *VecAddPrefetch) Name() string { return "vecadd-prefetch" }

// Allocs implements Workload.
func (w *VecAddPrefetch) Allocs() []Alloc {
	bytes := uint64(w.PagesPerVector) * mem.PageSize
	return []Alloc{
		{Name: "a", Bytes: bytes, HostInit: true, HostThreads: 1},
		{Name: "b", Bytes: bytes, HostInit: true, HostThreads: 1},
		{Name: "c", Bytes: bytes},
	}
}

// Phases implements Workload.
func (w *VecAddPrefetch) Phases(bases []mem.Addr) []Phase {
	a, b, c := mem.PageOf(bases[0]), mem.PageOf(bases[1]), mem.PageOf(bases[2])
	prog := gpu.Program{
		gpu.Prefetch(gpu.PageRange(a, w.PagesPerVector)...),
		gpu.Prefetch(gpu.PageRange(b, w.PagesPerVector)...),
		gpu.Prefetch(gpu.PageRange(c, w.PagesPerVector)...),
		gpu.Compute(10 * sim.Microsecond),
	}
	return []Phase{{
		Name: "prefetch-vecadd",
		Kernel: gpu.Kernel{NumBlocks: 1, BlockProgram: func(int) []gpu.Program {
			return []gpu.Program{prog}
		}},
	}}
}

// Regular is the synthetic sequential-access benchmark of Tables 2/3:
// many blocks each streaming a contiguous partition of a large array.
type Regular struct {
	Bytes      uint64
	Partitions int
	ChunkPages int
}

// NewRegular returns a regular workload over bytes with p partitions.
func NewRegular(bytes uint64, p int) *Regular {
	return &Regular{Bytes: bytes, Partitions: p, ChunkPages: 8}
}

// Name implements Workload.
func (w *Regular) Name() string { return "regular" }

// Allocs implements Workload.
func (w *Regular) Allocs() []Alloc {
	return []Alloc{{Name: "data", Bytes: w.Bytes, HostInit: true, HostThreads: 1}}
}

// Phases implements Workload.
func (w *Regular) Phases(bases []mem.Addr) []Phase {
	first := mem.PageOf(bases[0])
	total := int(w.Bytes / mem.PageSize)
	per := (total + w.Partitions - 1) / w.Partitions
	chunk := w.ChunkPages
	return []Phase{{
		Name: "stream-read",
		Kernel: gpu.Kernel{NumBlocks: w.Partitions, BlockProgram: func(b int) []gpu.Program {
			lo := b * per
			hi := lo + per
			if hi > total {
				hi = total
			}
			if lo >= hi {
				return nil
			}
			prog := chunked(nil, gpu.PageRange(first+mem.PageID(lo), hi-lo), chunk, false)
			return []gpu.Program{prog}
		}},
	}}
}

// Random is the synthetic uniform-random benchmark of Tables 2/3: blocks
// issue single-page accesses spread across the whole array, so nearly
// every fault in a batch lands in its own VABlock.
type Random struct {
	Bytes          uint64
	Blocks         int
	AccessesPerBlk int
	Seed           uint64
}

// NewRandom returns a random workload over bytes.
func NewRandom(bytes uint64, blocks, accesses int, seed uint64) *Random {
	return &Random{Bytes: bytes, Blocks: blocks, AccessesPerBlk: accesses, Seed: seed}
}

// Name implements Workload.
func (w *Random) Name() string { return "random" }

// Allocs implements Workload.
func (w *Random) Allocs() []Alloc {
	return []Alloc{{Name: "data", Bytes: w.Bytes, HostInit: true, HostThreads: 1}}
}

// Phases implements Workload.
func (w *Random) Phases(bases []mem.Addr) []Phase {
	first := mem.PageOf(bases[0])
	totalPages := uint64(w.Bytes / mem.PageSize)
	seed := w.Seed
	return []Phase{{
		Name: "random-read",
		Kernel: gpu.Kernel{NumBlocks: w.Blocks, BlockProgram: func(b int) []gpu.Program {
			rng := sim.NewRNG(seed + uint64(b)*0x9e37)
			var prog gpu.Program
			for i := 0; i < w.AccessesPerBlk; i++ {
				p := first + mem.PageID(rng.Uint64n(totalPages))
				prog = append(prog, gpu.Read(0, p))
			}
			return []gpu.Program{prog}
		}},
	}}
}

// Stream is the BabelStream triad of Table 1: a[i] = b[i] + s*c[i]. The
// grid-stride loop of the real benchmark makes the access frontier advance
// front-to-back through the arrays — resident blocks cooperatively sweep —
// and warp-level coalescing bounds the pages a block has in flight, so
// steady-state fault generation is far below the synthetic benchmarks'
// (Table 2: 0.75 faults/SM/batch vs regular's 3.06).
type Stream struct {
	BytesPerArray uint64
	// Blocks is the resident thread-block count sweeping the arrays.
	Blocks int
	// ChunkPages is the coalesced page window a block faults at once.
	ChunkPages int
	// ComputePerChunk is the dependent FMA time pacing each chunk,
	// modeling the bounded per-warp ILP window of the real kernel.
	ComputePerChunk sim.Time
	// Iterations repeats the triad (re-touching the same arrays).
	Iterations int
	// ShadowWarps adds warps per block re-touching the lead page of
	// each chunk: the intra-block sharing that makes multiple warps
	// issue the same fault (§4.2 type-1 duplicates).
	ShadowWarps int
}

// NewStream returns a triad over three arrays of the given size.
func NewStream(bytesPerArray uint64, blocks int) *Stream {
	return &Stream{
		BytesPerArray:   bytesPerArray,
		Blocks:          blocks,
		ChunkPages:      2,
		ComputePerChunk: 60 * sim.Microsecond,
		Iterations:      1,
		ShadowWarps:     1,
	}
}

// Name implements Workload.
func (w *Stream) Name() string { return "stream" }

// Allocs implements Workload.
func (w *Stream) Allocs() []Alloc {
	return []Alloc{
		{Name: "a", Bytes: w.BytesPerArray},
		{Name: "b", Bytes: w.BytesPerArray, HostInit: true, HostThreads: 1},
		{Name: "c", Bytes: w.BytesPerArray, HostInit: true, HostThreads: 1},
	}
}

// Phases implements Workload.
func (w *Stream) Phases(bases []mem.Addr) []Phase {
	a, b, c := mem.PageOf(bases[0]), mem.PageOf(bases[1]), mem.PageOf(bases[2])
	total := int(w.BytesPerArray / mem.PageSize)
	chunk := w.ChunkPages
	stride := w.Blocks * chunk
	var phases []Phase
	for it := 0; it < w.Iterations; it++ {
		phases = append(phases, Phase{
			Name: "triad",
			Kernel: gpu.Kernel{NumBlocks: w.Blocks, BlockProgram: func(blk int) []gpu.Program {
				var prog, shadow gpu.Program
				// Grid-stride: block blk handles chunks blk, blk+B,
				// blk+2B, ... so all blocks advance one frontier.
				for p := blk * chunk; p < total; p += stride {
					n := chunk
					if p+n > total {
						n = total - p
					}
					off := mem.PageID(p)
					prog = append(prog,
						gpu.Read(0, gpu.PageRange(b+off, n)...),
						gpu.Read(1, gpu.PageRange(c+off, n)...),
						gpu.Compute(w.ComputePerChunk, 0, 1),
						gpu.Write(nil, gpu.PageRange(a+off, n)...),
					)
					// Sibling warps coalesce onto the chunk's lead
					// pages, re-issuing the same faults.
					shadow = append(shadow,
						gpu.Read(0, b+off),
						gpu.Read(1, c+off),
						gpu.Compute(w.ComputePerChunk, 0, 1),
					)
				}
				progs := []gpu.Program{prog}
				for s := 0; s < w.ShadowWarps; s++ {
					progs = append(progs, shadow)
				}
				return progs
			}},
		})
	}
	return phases
}

// VecAddCoalesced is the §3.2 "coalescing version" of the vector addition:
// consecutive threads touch consecutive elements, so a warp's 32 lanes
// coalesce into few pages — but the scoreboard still forces each warp
// through at least two full fault rounds (reads, then writes), since the
// store needs both loads.
type VecAddCoalesced struct {
	// PagesPerVector is each vector's page count.
	PagesPerVector int
	// Warps is the number of independent warps (each owns a slice).
	Warps int
}

// NewVecAddCoalesced returns a coalesced vecadd.
func NewVecAddCoalesced() *VecAddCoalesced {
	return &VecAddCoalesced{PagesPerVector: 32, Warps: 4}
}

// Name implements Workload.
func (w *VecAddCoalesced) Name() string { return "vecadd-coalesced" }

// Allocs implements Workload.
func (w *VecAddCoalesced) Allocs() []Alloc {
	bytes := uint64(w.PagesPerVector) * mem.PageSize
	return []Alloc{
		{Name: "a", Bytes: bytes, HostInit: true, HostThreads: 1},
		{Name: "b", Bytes: bytes, HostInit: true, HostThreads: 1},
		{Name: "c", Bytes: bytes},
	}
}

// Phases implements Workload.
func (w *VecAddCoalesced) Phases(bases []mem.Addr) []Phase {
	a, b, c := mem.PageOf(bases[0]), mem.PageOf(bases[1]), mem.PageOf(bases[2])
	per := w.PagesPerVector / w.Warps
	return []Phase{{
		Name: "vecadd-coalesced",
		Kernel: gpu.Kernel{NumBlocks: 1, BlockProgram: func(int) []gpu.Program {
			progs := make([]gpu.Program, w.Warps)
			for wi := 0; wi < w.Warps; wi++ {
				off := mem.PageID(wi * per)
				progs[wi] = gpu.Program{
					gpu.Read(0, gpu.PageRange(a+off, per)...),
					gpu.Read(1, gpu.PageRange(b+off, per)...),
					gpu.Write([]int{0, 1}, gpu.PageRange(c+off, per)...),
				}
			}
			return progs
		}},
	}}
}
