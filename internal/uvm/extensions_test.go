package uvm

import (
	"testing"
	"testing/quick"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

func TestMakespanSerialEqualsSum(t *testing.T) {
	costs := []sim.Time{10, 20, 30}
	if got := makespan(costs, 1, false, 100); got != 60 {
		t.Fatalf("serial makespan = %d, want 60", got)
	}
	if got := makespan(nil, 4, true, 100); got != 0 {
		t.Fatalf("empty makespan = %d", got)
	}
}

func TestMakespanParallelBounds(t *testing.T) {
	costs := []sim.Time{40, 10, 10, 10, 10, 10}
	// 2 workers, arrival order: w0={40,10,10}=60? greedy least-loaded:
	// 40->w0, 10->w1, 10->w1, 10->w1, 10->w1(40=w0: w1 has 30<40 so w1),
	// -> w1=50, w0=40 -> 50 + sync.
	got := makespan(costs, 2, false, 5)
	if got != 50+5 {
		t.Fatalf("greedy makespan = %d, want 55", got)
	}
	// LPT gives the same here but never worse than arrival order for
	// this skewed case.
	lpt := makespan(costs, 2, true, 5)
	if lpt > got {
		t.Fatalf("LPT %d worse than arrival %d", lpt, got)
	}
}

func TestMakespanImbalanceDominatedByLargestBlock(t *testing.T) {
	// The paper's point: one huge VABlock bounds the parallel batch.
	costs := []sim.Time{1000, 1, 1, 1}
	got := makespan(costs, 4, true, 0)
	if got != 1000 {
		t.Fatalf("imbalanced makespan = %d, want 1000", got)
	}
}

// Property: makespan with w workers is between sum/w and sum (ignoring
// sync), and never below the largest element.
func TestMakespanProperty(t *testing.T) {
	f := func(raw []uint16, w uint8) bool {
		workers := int(w%7) + 1
		costs := make([]sim.Time, len(raw))
		var sum, max sim.Time
		for i, r := range raw {
			costs[i] = sim.Time(r)
			sum += costs[i]
			if costs[i] > max {
				max = costs[i]
			}
		}
		for _, lpt := range []bool{false, true} {
			got := makespan(costs, workers, lpt, 0)
			if len(costs) == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			if got < max || got > sum {
				return false
			}
			if workers == 1 && got != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParallelServicingSpeedsUpScatteredBatches(t *testing.T) {
	// Random access scatters faults over many VABlocks: parallel
	// servicing helps. One worker vs four.
	mk := func(workers int) sim.Time {
		ucfg := noPrefetch()
		ucfg.ServiceWorkers = workers
		eng, drv, dev := newSystem(smallGPU(), ucfg)
		base := drv.Alloc(16 * mem.VABlockSize)
		first := mem.PageOf(base)
		rng := sim.NewRNG(5)
		runKernel(t, eng, dev, gpu.Kernel{
			NumBlocks: 8,
			BlockProgram: func(int) []gpu.Program {
				var prog gpu.Program
				for i := 0; i < 100; i++ {
					prog = append(prog, gpu.Read(0, first+mem.PageID(rng.Uint64n(16*512))))
				}
				return []gpu.Program{prog}
			},
		})
		var total sim.Time
		for _, b := range drv.Collector.Batches {
			total += b.Duration()
		}
		return total
	}
	serial := mk(1)
	parallel := mk(4)
	if parallel >= serial {
		t.Fatalf("4-worker batch time %d not below serial %d", parallel, serial)
	}
}

func TestAdaptiveBatchShrinksOnDuplicates(t *testing.T) {
	ucfg := noPrefetch()
	ucfg.AdaptiveBatch = true
	ucfg.AdaptiveMin = 32
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(mem.VABlockSize)
	shared := gpu.PageRange(mem.PageOf(base), 16)
	// Many blocks hammering the same pages -> dup-heavy batches.
	runKernel(t, eng, dev, gpu.Kernel{
		NumBlocks: 16,
		BlockProgram: func(int) []gpu.Program {
			return []gpu.Program{{gpu.Read(0, shared...)}}
		},
	})
	if got := drv.EffectiveBatchSize(); got >= drv.Config().BatchSize {
		t.Fatalf("adaptive batch did not shrink: %d", got)
	}
	if got := drv.EffectiveBatchSize(); got < 32 {
		t.Fatalf("adaptive batch below floor: %d", got)
	}
}

func TestAdaptiveBatchGrowsBack(t *testing.T) {
	d := &Driver{cfg: Config{AdaptiveBatch: true, AdaptiveMin: 32, BatchSize: 256}, effBatch: 64}
	rec := batchRec(64, 2) // full batch, 3% dups
	adaptiveSizer{}.Update(d, rec)
	if d.effBatch != 128 {
		t.Fatalf("effBatch = %d, want 128", d.effBatch)
	}
	adaptiveSizer{}.Update(d, batchRec(128, 3))
	if d.effBatch != 256 {
		t.Fatalf("effBatch = %d, want 256 (capped)", d.effBatch)
	}
	adaptiveSizer{}.Update(d, batchRec(256, 4))
	if d.effBatch != 256 {
		t.Fatalf("effBatch = %d, want to stay at max", d.effBatch)
	}
	// A dup-heavy batch halves it.
	adaptiveSizer{}.Update(d, batchRec(256, 200))
	if d.effBatch != 128 {
		t.Fatalf("effBatch = %d, want 128 after dup storm", d.effBatch)
	}
}

func batchRec(raw, dups int) *trace.BatchRecord {
	return &trace.BatchRecord{RawFaults: raw, Type1Dups: dups}
}

func TestAsyncUnmapMovesCostOffFaultPath(t *testing.T) {
	mkRun := func(async bool) (*Driver, sim.Time) {
		ucfg := noPrefetch()
		ucfg.AsyncUnmap = async
		eng, drv, dev := newSystem(smallGPU(), ucfg)
		base := drv.Alloc(2*mem.VABlockSize, WithHostInit(8))
		if async {
			drv.PreUnmapAllocations()
		}
		runKernel(t, eng, dev, streamKernel(base, 2*mem.PagesPerVABlock))
		var unmap sim.Time
		for _, b := range drv.Collector.Batches {
			unmap += b.TUnmap
		}
		return drv, unmap
	}
	_, syncUnmap := mkRun(false)
	asyncDrv, asyncUnmap := mkRun(true)
	if syncUnmap <= 0 {
		t.Fatal("baseline paid no fault-path unmap")
	}
	if asyncUnmap != 0 {
		t.Fatalf("async run still paid %d fault-path unmap", asyncUnmap)
	}
	st := asyncDrv.Stats()
	if st.AsyncUnmapCalls != 2 || st.AsyncUnmapTime <= 0 {
		t.Fatalf("async stats = %+v", st)
	}
}

func TestCrossBlockPrefetchEliminatesFirstTouches(t *testing.T) {
	ucfg := DefaultConfig()
	ucfg.CrossBlockPrefetch = 2
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(6 * mem.VABlockSize)
	// Touch only the first block; cross-block prefetch should walk the
	// allocation forward.
	runKernel(t, eng, dev, streamKernel(base, mem.PagesPerVABlock))
	if drv.Stats().CrossBlockPages == 0 {
		t.Fatal("no cross-block prefetch pages")
	}
	if drv.ResidentPages() <= mem.PagesPerVABlock {
		t.Fatalf("resident = %d, want beyond the faulted block", drv.ResidentPages())
	}
	// Prefetch never leaves the allocation.
	if drv.ResidentPages() > 6*mem.PagesPerVABlock {
		t.Fatalf("prefetch escaped allocation: %d pages", drv.ResidentPages())
	}
}

func TestCrossBlockPrefetchStopsAtAllocationEnd(t *testing.T) {
	ucfg := DefaultConfig()
	ucfg.CrossBlockPrefetch = 8
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(2 * mem.VABlockSize) // short allocation
	drv.Alloc(4 * mem.VABlockSize)         // neighbour must stay cold
	runKernel(t, eng, dev, streamKernel(base, mem.PagesPerVABlock))
	if got := drv.ResidentPages(); got > 2*mem.PagesPerVABlock {
		t.Fatalf("prefetch crossed into the next allocation: %d pages", got)
	}
}

func TestEvictionPolicies(t *testing.T) {
	for _, pol := range []EvictionPolicy{EvictLRU, EvictFIFO, EvictRandom, EvictLFU} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			ucfg := noPrefetch()
			ucfg.GPUMemBytes = 2 * mem.VABlockSize
			ucfg.Eviction = pol
			eng, drv, dev := newSystem(smallGPU(), ucfg)
			npages := 6 * mem.PagesPerVABlock
			base := drv.Alloc(uint64(npages) * mem.PageSize)
			runKernel(t, eng, dev, streamKernel(base, npages))
			if drv.Stats().Evictions < 4 {
				t.Fatalf("%s: evictions = %d", pol, drv.Stats().Evictions)
			}
			if drv.ChunksInUse() > 2 {
				t.Fatalf("%s: capacity exceeded", pol)
			}
		})
	}
}

func TestEvictionPolicyString(t *testing.T) {
	if EvictLRU.String() != "lru" || EvictFIFO.String() != "fifo" ||
		EvictRandom.String() != "random" || EvictLFU.String() != "lfu" ||
		EvictionPolicy("clock").String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}

func TestMemoryStatsExposed(t *testing.T) {
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(4 * mem.VABlockSize)
	runKernel(t, eng, dev, streamKernel(base, 4*mem.PagesPerVABlock))
	ms := drv.MemoryStats()
	if ms.FailedAllocs == 0 {
		t.Fatal("no failed allocations under oversubscription")
	}
	if ms.PeakInUse != 2 {
		t.Fatalf("peak = %d, want 2", ms.PeakInUse)
	}
}

func TestLFUKeepsHotBlock(t *testing.T) {
	// Two-chunk GPU; block H is accessed repeatedly (hot), blocks C1..C3
	// stream through cold. LFU must never evict H once hot, while LRU
	// (blind to hits) evicts it as its migration ages.
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	ucfg.Eviction = EvictLFU
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(4 * mem.VABlockSize)
	hot := mem.PageOf(base)
	hotBlock := hot.VABlock()

	// Dependent computes serialize the sequence, so hot-block re-reads
	// hit (and count) before each cold stream forces an eviction.
	prog := gpu.Program{
		gpu.Read(0, gpu.PageRange(hot, 32)...),
		gpu.Compute(sim.Microsecond, 0),
	}
	for c := 1; c <= 3; c++ {
		cold := hot + mem.PageID(c*mem.PagesPerVABlock)
		prog = append(prog,
			gpu.Read(0, gpu.PageRange(hot, 32)...), // hits
			gpu.Compute(sim.Microsecond, 0),
			gpu.Read(1, gpu.PageRange(cold, 64)...),
			gpu.Compute(sim.Microsecond, 1),
			gpu.Read(0, gpu.PageRange(hot, 32)...), // more hits
			gpu.Compute(sim.Microsecond, 0),
		)
	}
	runKernel(t, eng, dev, gpu.Kernel{NumBlocks: 1, BlockProgram: func(int) []gpu.Program {
		return []gpu.Program{prog}
	}})
	if drv.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
	for _, b := range drv.Collector.Batches {
		for _, eb := range b.EvictedBlocks {
			if eb == hotBlock {
				t.Fatal("LFU evicted the hot block despite counter hits")
			}
		}
	}
	if dev.Counters.Total() == 0 {
		t.Fatal("counters never recorded hits")
	}
}
