package uvm

import (
	"testing"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/obs"
	"guvm/internal/trace"
)

// BenchmarkBatchService measures the driver's whole batch-servicing
// pipeline: a streaming kernel over 16 MB forces ~2 pages per fault batch
// slot, so each op services dozens of 256-fault batches end to end
// (dedup, grouping, allocation, DMA setup, migration, replay). Run with
// -benchmem: the per-batch map/slice and per-event allocations are what
// the hot-path allocation diet targets.
func BenchmarkBatchService(b *testing.B) {
	const bytes = 16 << 20
	nPages := int(bytes / mem.PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, drv, dev := newSystem(smallGPU(), noPrefetch())
		base := drv.Alloc(bytes)
		k := streamKernel(base, nPages)
		done := false
		if err := dev.LaunchKernel(k, func() { done = true }); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("kernel never completed")
		}
		if drv.Stats().Batches == 0 {
			b.Fatal("no batches serviced")
		}
	}
}

// BenchmarkBatchServiceObserved is BenchmarkBatchService with a batch
// observer attached — the incremental cost of the observability hook
// itself (one indirect call per batch). Compare against the base
// benchmark: with observers disabled, the driver pays only a nil-slice
// length check, which the allocation guard test pins at zero extra
// allocations.
func BenchmarkBatchServiceObserved(b *testing.B) {
	const bytes = 16 << 20
	nPages := int(bytes / mem.PageSize)
	b.ReportAllocs()
	observed := 0
	for i := 0; i < b.N; i++ {
		eng, drv, dev := newSystem(smallGPU(), noPrefetch())
		drv.AddBatchObserver(func(id int, rec *trace.BatchRecord) { observed++ })
		base := drv.Alloc(bytes)
		k := streamKernel(base, nPages)
		done := false
		if err := dev.LaunchKernel(k, func() { done = true }); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("kernel never completed")
		}
		if observed == 0 {
			b.Fatal("observer never ran")
		}
	}
}

// BenchmarkBatchServiceProfiled is BenchmarkBatchService with the
// fault-lifecycle profiler attached through the driver's profiler seam —
// the full record path: lifecycle marks per fault, stage attribution per
// batch, block-step accounting per VABlock, and heat updates per page.
// The budget is ≤10% over BenchmarkBatchService; with the profiler
// detached the pipeline pays only nil checks, which the allocation guard
// pins.
func BenchmarkBatchServiceProfiled(b *testing.B) {
	const bytes = 16 << 20
	nPages := int(bytes / mem.PageSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, drv, dev := newSystem(smallGPU(), noPrefetch())
		prof := obs.NewProfiler(nil, obs.NewRegistry())
		drv.SetProfiler(prof)
		base := drv.Alloc(bytes)
		k := streamKernel(base, nPages)
		done := false
		if err := dev.LaunchKernel(k, func() { done = true }); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("kernel never completed")
		}
		if len(prof.Batches()) == 0 {
			b.Fatal("profiler recorded no batches")
		}
	}
}

// BenchmarkLargeWorkingSet stresses the block directories at the paper's
// real evaluation scale: a 4 GB managed allocation (2048 VABlocks)
// touched one page per block, so residency probes, eviction scans, and
// audit walks traverse per-block state two orders of magnitude wider
// than the 16 MB streaming benchmark. With map-backed block state this
// working set paid a hash per probe and a sort per audit; the sparse
// two-level directory keeps probes as array indexes and iteration
// linear in populated segments.
func BenchmarkLargeWorkingSet(b *testing.B) {
	const blocks = 2048 // 4 GB of managed VA
	const perSMBlock = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ucfg := noPrefetch()
		ucfg.GPUMemBytes = (blocks + 8) * mem.VABlockSize
		eng, drv, dev := newSystem(smallGPU(), ucfg)
		base := drv.Alloc(blocks * mem.VABlockSize)
		first := mem.PageOf(base)
		k := gpu.Kernel{
			NumBlocks: blocks / perSMBlock,
			BlockProgram: func(bi int) []gpu.Program {
				pages := make([]mem.PageID, perSMBlock)
				for j := range pages {
					pages[j] = first + mem.PageID((bi*perSMBlock+j)*mem.PagesPerVABlock)
				}
				return []gpu.Program{{gpu.Read(0, pages...)}}
			},
		}
		done := false
		if err := dev.LaunchKernel(k, func() { done = true }); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("kernel never completed")
		}
		if got := drv.ResidentPages(); got != blocks {
			b.Fatalf("resident pages = %d, want %d", got, blocks)
		}
	}
}
