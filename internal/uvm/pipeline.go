package uvm

// pipeline.go — the staged batch-servicing pipeline.
//
// The driver services each fault batch through an explicit sequence of
// stages mirroring the paper's phase decomposition (§2.2/§5):
//
//	fetch (fetch.go, async)        — drain the fault buffer
//	dedup (dedup.go)               — duplicate classification (§4.2),
//	                                 stale filtering, VABlock grouping
//	service (this file)            — per-VABlock block pipeline
//	cross-block (prefetchplan.go)  — eager whole-block migration (§6)
//	replay (replay.go)             — makespan, batch sizing, replay issue
//
// Within the service stage, each VABlock runs through a second pipeline
// of block steps:
//
//	residency (residency.go)       — chunk allocation/eviction, DMA map,
//	                                 CPU unmap (§4.4, §5.1, §5.4)
//	prefetch-plan (prefetchplan.go)— migration set planning (§5.2)
//	populate (transfer.go)         — first-touch zero-fill (§5.1)
//	transfer (transfer.go)         — span coalescing, link transfer,
//	                                 page-table update
//
// Stage costs flow into the existing trace.BatchRecord fields (TFetch,
// TDedup, TBlockMgmt, TDMAMap, TUnmap, TPopulate, TTransfer, TPageTable,
// TEvict, TReplay) and the obs span taxonomy derived from them —
// unchanged from the monolithic driver, and bit-identical batch for
// batch (testdata/digests_*.golden is the proof).
//
// Ownership rules for the shared per-batch state: batchCtx and blockCtx
// are pooled on the Driver and valid only while inBatch is true; stages
// are stateless singletons and receive everything through the contexts.
// The batchScratch buffers inside batchCtx are owned by exactly one
// stage at a time (see the field comments in driver.go); nothing
// retained past the batch — trace records, observer arguments — may
// alias them.

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// batchCtx carries one batch through the pipeline: the raw faults and
// fetch cost from the async front-end, the record under construction,
// the accumulated virtual-time cost, and the pooled scratch.
type batchCtx struct {
	start  sim.Time
	faults []gpu.Fault
	tFetch sim.Time
	rec    trace.BatchRecord
	total  sim.Time
	sc     *batchScratch
}

// blockCtx carries one VABlock through the block steps. For an eager
// cross-block migration (§6) pages is nil and eager is set: the plan
// step selects the whole block and the transfer step accounts the pages
// as cross-block prefetched.
type blockCtx struct {
	bid       mem.VABlockID
	pages     []mem.PageID
	eager     bool
	b         *blockState
	faulted   mem.PageSet
	toMigrate mem.PageSet
	cost      sim.Time
	// done, when set by a step, short-circuits the remaining block steps:
	// the block was fully serviced early (e.g. remote-mapped by the
	// access-counter gate instead of migrated).
	done bool
}

// stage is one batch-level phase. A stage reads and mutates the batch
// context; a returned error aborts the run (injection-fatal paths).
type stage interface {
	name() string
	run(d *Driver, bc *batchCtx) error
}

// blockStep is one VABlock-level phase within the service stage.
type blockStep interface {
	name() string
	run(d *Driver, bc *batchCtx, blk *blockCtx) error
}

// The stage and block-step orders are no longer fixed here: the selected
// architecture (arch.go) declares them, and the driver dispatches through
// d.arch. Stages stay stateless singletons shared by every driver.

// serviceBatch runs the batch through the stage pipeline. It is entered
// from the fetch front-end with the engine clock at batch start +
// BatchSetup + tFetch; the replay stage schedules the remainder of the
// batch's virtual cost.
func (d *Driver) serviceBatch(start sim.Time, faults []gpu.Fault, tFetch sim.Time) {
	bc := &d.batch
	bc.start = start
	bc.faults = faults
	bc.tFetch = tFetch
	bc.rec = trace.BatchRecord{
		Start:     start,
		RawFaults: len(faults),
		TFetch:    tFetch,
	}
	if d.dev != nil {
		bc.rec.FaultsPerSM = make([]uint16, d.dev.Config().NumSMs)
	}
	bc.total = 0
	bc.sc = &d.scratch
	bc.sc.reset(len(faults))
	if d.prof != nil {
		d.prof.BeginBatch(start, d.eng.Now(), faults)
	}
	for _, st := range d.arch.stages {
		if err := st.run(d, bc); err != nil {
			d.fail(err)
			return
		}
	}
}

// serviceStage runs the block pipeline over each serviced VABlock: the
// sorted non-stale pages make every block a contiguous run, processed in
// ascending block order exactly as the monolithic driver did.
type serviceStage struct{}

func (serviceStage) name() string { return "service" }

func (serviceStage) run(d *Driver, bc *batchCtx) error {
	sc := bc.sc
	for lo := 0; lo < len(sc.nonStale); {
		bid := sc.nonStale[lo].VABlock()
		hi := lo + 1
		for hi < len(sc.nonStale) && sc.nonStale[hi].VABlock() == bid {
			hi++
		}
		c, err := d.runBlock(bid, sc.nonStale[lo:hi], false, bc)
		if err != nil {
			return err
		}
		sc.blockCosts = append(sc.blockCosts, c)
		lo = hi
	}
	return nil
}

// runBlock services one VABlock through the block steps and returns its
// virtual-time cost. eager marks a cross-block whole-block migration.
func (d *Driver) runBlock(bid mem.VABlockID, pages []mem.PageID, eager bool, bc *batchCtx) (sim.Time, error) {
	blk := &d.block
	blk.bid = bid
	blk.pages = pages
	blk.eager = eager
	blk.b = nil
	blk.faulted.Reset()
	blk.toMigrate.Reset()
	blk.cost = d.cfg.Costs.PerVABlock
	blk.done = false
	bc.rec.TBlockMgmt += d.cfg.Costs.PerVABlock
	if d.prof == nil {
		for _, st := range d.arch.blockSteps {
			if err := st.run(d, bc, blk); err != nil {
				return blk.cost, err
			}
			if blk.done {
				break
			}
		}
		return blk.cost, nil
	}
	// Profiled path: identical step sequence, but the per-step cost
	// deltas are captured for attribution (the steps themselves only add
	// to blk.cost, so before/after differencing is exact). stepCosts is
	// driver-held scratch sliced to the architecture's step count.
	steps := d.stepCosts[:len(d.arch.blockSteps)]
	for i := range steps {
		steps[i] = 0
	}
	for i, st := range d.arch.blockSteps {
		before := blk.cost
		if err := st.run(d, bc, blk); err != nil {
			return blk.cost, err
		}
		steps[i] = blk.cost - before
		if blk.done {
			break
		}
	}
	d.prof.BlockServiced(bid, len(pages), eager, steps, blk.cost)
	return blk.cost, nil
}

// fail aborts the run with err as its terminal error, releasing the
// shared service slot so diagnostics from other drivers stay coherent.
func (d *Driver) fail(err error) {
	d.inBatch = false
	if d.arbiter != nil {
		d.arbiter.Release()
	}
	d.eng.Fail(err)
}
