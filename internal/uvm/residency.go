package uvm

// residency.go — the residency block step (backing-chunk allocation with
// eviction under pressure, first-touch DMA mapping, CPU unmapping) and
// the registered eviction strategies (§5.1, §5.4, §4.4).
//
// Profiler attribution: everything this step adds to blk.cost — chunk
// allocation, evictions it forces (evictOne's writeback), DMA map and
// CPU unmap — lands in the residency slot of the per-block step
// decomposition; the batch-level stage table still splits the same cost
// into dma_map/unmap/evict via the record's phase timers.

import (
	"fmt"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

// residencyStep establishes the VABlock's device-side footing: the block
// record, a backing 2 MB chunk (evicting victims while device memory is
// full), the compulsory first-touch DMA mapping (§5.2, dominated by
// radix-tree work in hostos), and unmap_mapping_range for pages the CPU
// still maps (§4.4).
type residencyStep struct{}

func (residencyStep) name() string { return "residency" }

func (residencyStep) run(d *Driver, bc *batchCtx, blk *blockCtx) error {
	b := d.blocks.Lookup(blk.bid)
	if b == nil {
		b = &blockState{id: blk.bid}
		d.blocks.Set(blk.bid, b)
	}
	blk.b = b

	// Backing chunk: allocate, evicting if device memory is full.
	if !b.hasChunk {
		id, ok := d.pmm.Alloc(blk.bid)
		for !ok {
			c, err := d.evictOne(blk.bid, bc)
			blk.cost += c
			if err != nil {
				return err
			}
			id, ok = d.pmm.Alloc(blk.bid)
		}
		b.hasChunk = true
		b.chunk = id
		b.allocSeq = d.nextSeq
		d.nextSeq++
		d.allocated = append(d.allocated, b)
	}
	b.lastTouch = d.batchCount

	// Compulsory first-touch DMA mapping setup for the whole block.
	if !b.dmaMapped {
		t := d.vm.MapDMA(blk.bid)
		blk.cost += t
		bc.rec.TDMAMap += t
		bc.rec.NewDMABlocks++
		b.dmaMapped = true
	}

	// CPU unmapping: the GPU touched a block partially resident on the
	// host.
	if d.vm.CPUMappedPages(blk.bid) > 0 {
		t, n := d.vm.UnmapMappingRange(blk.bid)
		blk.cost += t
		bc.rec.TUnmap += t
		bc.rec.UnmapPages += n
	}
	return nil
}

// counterGateStep is the access-counter architecture's delayed-migration
// gate, run before the standard steps. A faulting block below the access
// threshold is serviced by remote mapping: the pages stay in host memory
// (populated and DMA-mapped, GPU PTEs pointing across the link) and the
// remaining steps are skipped. Once the device's access counter for the
// block crosses the threshold the gate promotes it: the remote-mapped
// pages join the migration set and the block falls through to the
// standard residency/transfer pipeline, which makes it GPU-resident.
type counterGateStep struct{}

func (counterGateStep) name() string { return "counter-gate" }

func (counterGateStep) run(d *Driver, bc *batchCtx, blk *blockCtx) error {
	if blk.eager {
		return nil // cross-block migrations bypass the gate
	}
	b := d.blocks.Lookup(blk.bid)
	if b == nil {
		b = &blockState{id: blk.bid}
		d.blocks.Set(blk.bid, b)
	}
	blk.b = b

	if d.dev.Counters.Read(blk.bid) >= uint64(d.cfg.AccessCounterThreshold) {
		// Promote: the remote-mapped pages join this batch's migration
		// set and the standard steps migrate them alongside the faults.
		if b.remoteMapped.Any() {
			blk.toMigrate.Union(&b.remoteMapped)
			d.stats.CounterPromotions++
		}
		d.dev.Counters.Clear(blk.bid)
		return nil
	}

	// Below threshold: service the faults by remote mapping. First-touch
	// DMA setup and population still happen (the data must exist in host
	// memory for the GPU to reach it), then fresh GPU PTEs are installed
	// pointing at host memory.
	for _, p := range blk.pages {
		blk.faulted.Set(p.IndexInBlock())
	}
	if !b.dmaMapped {
		t := d.vm.MapDMA(blk.bid)
		blk.cost += t
		bc.rec.TDMAMap += t
		bc.rec.NewDMABlocks++
		b.dmaMapped = true
	}
	var newPages mem.PageSet
	newPages.Union(&blk.faulted)
	newPages.Subtract(&b.populated)
	if n := newPages.Count(); n > 0 {
		t, err := d.populateWithRetry(blk.bid, n, bc)
		blk.cost += t
		if err != nil {
			return err
		}
	}
	var fresh mem.PageSet
	fresh.Union(&blk.faulted)
	fresh.Subtract(&b.remoteMapped)
	if n := fresh.Count(); n > 0 {
		pt := sim.Time(n) * d.cfg.Costs.PageTablePerPage
		blk.cost += pt
		bc.rec.TPageTable += pt
		d.stats.RemoteMappedPages += n
	}
	b.remoteMapped.Union(&blk.faulted)
	b.populated.Union(&blk.faulted)
	blk.done = true
	return nil
}

// hasEvictionCandidate reports whether any allocated block other than
// current could be evicted.
func (d *Driver) hasEvictionCandidate(current mem.VABlockID) bool {
	for _, b := range d.allocated {
		if b.id != current {
			return true
		}
	}
	return false
}

// evictOne evicts one block chosen by the configured strategy and
// returns the eviction cost. Blocks being serviced in the current batch
// are only victims of last resort (evicting them would immediately
// re-fault), and the block currently allocating is never evicted; if
// that leaves no victim, the error wraps ErrCapacityExhausted.
func (d *Driver) evictOne(current mem.VABlockID, bc *batchCtx) (sim.Time, error) {
	pick := func(avoidBatch bool) (*blockState, int) {
		var candidates []int
		for i, b := range d.allocated {
			if b.id == current {
				continue
			}
			if avoidBatch && bc.sc.inBatch(b.id) {
				continue
			}
			candidates = append(candidates, i)
		}
		if len(candidates) == 0 {
			return nil, -1
		}
		vi := d.evict.Pick(d, candidates)
		return d.allocated[vi], vi
	}
	victim, vi := pick(true)
	if victim == nil {
		victim, vi = pick(false)
	}
	if victim == nil {
		return 0, fmt.Errorf("uvm: cannot evict: capacity %d blocks all pinned: %w",
			d.cfg.CapacityBlocks(), ErrCapacityExhausted)
	}

	cost := d.cfg.Costs.EvictBase
	sc := bc.sc
	sc.evictPages = victim.resident.Pages(sc.evictPages[:0], victim.id)
	if len(sc.evictPages) > 0 {
		// Write back resident pages to the host. The data lands in
		// host memory but is NOT remapped to the CPU: a later GPU
		// re-fetch pays no unmap cost (Figure 13's cost levels). Under
		// the hardware fault domain the writeback retries flap drops
		// like any other transfer.
		spans := mem.CoalescePagesInto(sc.evictSpans[:0], sc.evictPages)
		sc.evictSpans = spans
		t, err := d.carryOverLink(victim.id, spans, false)
		cost += t
		if err != nil {
			return cost, err
		}
		cost += sim.Time(len(sc.evictPages)) * d.cfg.Costs.EvictPerPage
		bc.rec.EvictedBytes += uint64(len(sc.evictPages)) * mem.PageSize
	}
	victim.resident.Reset()
	victim.hasChunk = false
	d.dev.Counters.Clear(victim.id)
	d.pmm.Release(victim.chunk)
	victim.evictions++
	d.allocated = append(d.allocated[:vi], d.allocated[vi+1:]...)

	bc.rec.Evictions++
	bc.rec.EvictedBlocks = append(bc.rec.EvictedBlocks, victim.id)
	bc.rec.TEvict += cost
	d.stats.Evictions++
	return cost, nil
}

// lruStrategy evicts the block with the oldest last-migration batch,
// breaking ties by allocation order — the shipped driver's policy, which
// §5.4 notes "essentially evicts the data that was migrated into GPU
// memory the earliest".
type lruStrategy struct{}

func (lruStrategy) Pick(d *Driver, candidates []int) int {
	vi := candidates[0]
	for _, i := range candidates[1:] {
		b, v := d.allocated[i], d.allocated[vi]
		if b.lastTouch < v.lastTouch ||
			(b.lastTouch == v.lastTouch && b.allocSeq < v.allocSeq) {
			vi = i
		}
	}
	return vi
}

// fifoStrategy evicts in chunk allocation order.
type fifoStrategy struct{}

func (fifoStrategy) Pick(d *Driver, candidates []int) int {
	vi := candidates[0]
	for _, i := range candidates[1:] {
		if d.allocated[i].allocSeq < d.allocated[vi].allocSeq {
			vi = i
		}
	}
	return vi
}

// randomStrategy evicts a uniformly random candidate from the driver's
// seeded eviction RNG (deterministic across runs).
type randomStrategy struct{}

func (randomStrategy) Pick(d *Driver, candidates []int) int {
	return candidates[d.evictRNG.Intn(len(candidates))]
}

// lfuStrategy evicts the block with the fewest GPU access-counter hits
// (ties by allocation order) — the page-hit information §5.4 says the
// shipped LRU lacks. Attach enables the device counters for it.
type lfuStrategy struct{}

func (lfuStrategy) Pick(d *Driver, candidates []int) int {
	read := func(i int) uint64 { return d.dev.Counters.Read(d.allocated[i].id) }
	vi := candidates[0]
	for _, i := range candidates[1:] {
		if read(i) < read(vi) ||
			(read(i) == read(vi) && d.allocated[i].allocSeq < d.allocated[vi].allocSeq) {
			vi = i
		}
	}
	return vi
}
