package uvm

// rehome.go — device-loss recovery. When the hardware fault domain
// kills a device, its driver evacuates every GPU-resident page back to
// host memory over the (still physically present) link before the link
// itself is declared dead, releases all device chunks, and parks
// forever. The protocol guarantees page conservation: the number of
// pages re-homed must equal the number resident at the instant of
// death, which the audit subsystem's page-conservation invariant
// checks. The evacuation uses the link's guaranteed-delivery path — an
// emergency drain ignores flap drops, as a real driver's teardown DMA
// retries until completion — and its cost is charged to the virtual
// clock by the caller.

import (
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// RehomeReport summarizes one device-loss evacuation.
type RehomeReport struct {
	// Blocks is how many chunk-backed VABlocks were torn down; Pages
	// and Bytes the resident data written back to the host.
	Blocks int
	Pages  int
	Bytes  uint64
	// Cost is the virtual time of the writeback transfers; the caller
	// schedules it so the run's total time covers the recovery drain.
	Cost sim.Time
}

// RehomeToHost evacuates every GPU-resident page of this driver back to
// host memory and marks the driver dead. Call only at a batch boundary
// (no batch in flight) after killing the device; a second call is a
// no-op. The evacuated data lands in host memory without CPU remapping,
// exactly like eviction writeback.
func (d *Driver) RehomeToHost() RehomeReport {
	if d.dead {
		return RehomeReport{}
	}
	d.dead = true
	d.sleeping = true
	d.stats.ResidentAtKill = d.ResidentPages()

	var rep RehomeReport
	// Walk the chunk-backed blocks in allocation order (deterministic);
	// blocks without a chunk hold no resident pages by invariant.
	for _, b := range d.allocated {
		pages := b.resident.Pages(nil, b.id)
		if len(pages) > 0 {
			spans := mem.CoalescePagesInto(nil, pages)
			rep.Cost += d.link.TransferSpans(spans, false)
			rep.Pages += len(pages)
		}
		b.resident.Reset()
		b.hasChunk = false
		if d.dev != nil {
			d.dev.Counters.Clear(b.id)
		}
		d.pmm.Release(b.chunk)
		rep.Blocks++
	}
	d.allocated = d.allocated[:0]
	rep.Bytes = uint64(rep.Pages) * mem.PageSize

	d.stats.RehomedBlocks = rep.Blocks
	d.stats.RehomedPages = rep.Pages
	d.stats.RehomedBytes = rep.Bytes
	return rep
}
