package uvm

import "errors"

// ErrCapacityExhausted is the sentinel for device-memory exhaustion the
// driver cannot service: an explicit copy larger than device memory, or an
// eviction request with every chunk pinned.
var ErrCapacityExhausted = errors.New("uvm: device memory capacity exhausted")

// ErrMigrationFailed is the sentinel for a migration whose transfer
// attempts (including the bounded retry budget) all failed. It is only
// reachable with fault injection enabled.
var ErrMigrationFailed = errors.New("uvm: migration failed")

// ErrLinkFailed is the sentinel for a link transfer the hardware fault
// domain made unserviceable: either the link is dead (its device was
// killed) or a flapping link dropped every attempt in the retry budget.
// It is only reachable with the hardware fault domain enabled.
var ErrLinkFailed = errors.New("uvm: interconnect link failed")
