package uvm

import "errors"

// ErrCapacityExhausted is the sentinel for device-memory exhaustion the
// driver cannot service: an explicit copy larger than device memory, or an
// eviction request with every chunk pinned.
var ErrCapacityExhausted = errors.New("uvm: device memory capacity exhausted")

// ErrMigrationFailed is the sentinel for a migration whose transfer
// attempts (including the bounded retry budget) all failed. It is only
// reachable with fault injection enabled.
var ErrMigrationFailed = errors.New("uvm: migration failed")
