// Package uvm implements the modeled UVM driver — the paper's subject of
// study. The driver is the host-side fault-servicing engine: it drains the
// GPU fault buffer into batches (the fundamental unit of work, §3.2),
// services each batch VABlock by VABlock (dedup, allocation, eviction,
// population, DMA mapping, CPU unmapping, migration, page-table update),
// then flushes the buffer and issues a fault replay. Per-batch telemetry
// mirrors the paper's instrumented driver.
package uvm

import (
	"fmt"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

// CostModel holds the driver-side virtual-time costs. Host-OS costs
// (unmap, populate, DMA-map) live in hostos.CostModel; link costs in
// interconnect.Config.
type CostModel struct {
	// WakeupLatency is the delay from interrupt delivery to the worker
	// thread starting its fetch (scheduler latency).
	WakeupLatency sim.Time
	// BatchSetup is the fixed overhead to open a batch.
	BatchSetup sim.Time
	// FetchPerFault is the cost to read one fault record from the GPU
	// fault buffer (MMIO/BAR reads are slow).
	FetchPerFault sim.Time
	// DedupPerFault is the per-fault cost of duplicate filtering.
	DedupPerFault sim.Time
	// PerVABlock is the fixed management cost per distinct VABlock in a
	// batch; each VABlock is a separate processing step (§2.2).
	PerVABlock sim.Time
	// PageTablePerPage is the GPU page-table update cost per migrated
	// page.
	PageTablePerPage sim.Time
	// ReplayCost is the cost of the buffer flush plus replay issue.
	ReplayCost sim.Time
	// EvictBase is the fixed cost per VABlock eviction: failed
	// allocation, candidate selection, and migration restart (§5.1).
	EvictBase sim.Time
	// EvictPerPage is the per-resident-page eviction cost beyond the
	// writeback transfer itself (GPU PTE teardown).
	EvictPerPage sim.Time
}

// DefaultCostModel returns the calibrated driver cost constants.
func DefaultCostModel() CostModel {
	return CostModel{
		WakeupLatency:    20 * sim.Microsecond,
		BatchSetup:       30 * sim.Microsecond,
		FetchPerFault:    1500 * sim.Nanosecond,
		DedupPerFault:    150 * sim.Nanosecond,
		PerVABlock:       6 * sim.Microsecond,
		PageTablePerPage: 150 * sim.Nanosecond,
		ReplayCost:       40 * sim.Microsecond,
		EvictBase:        15 * sim.Microsecond,
		EvictPerPage:     100 * sim.Nanosecond,
	}
}

// EvictionPolicy names a registered VABlock replacement policy. The
// shipped driver uses LRU, which (with no page-hit information) degrades
// to earliest-allocated order (§5.4); the alternatives exist because the
// paper notes "this LRU policy may not be optimal". The value is a
// registry key (see registry.go): the empty string resolves to EvictLRU,
// anything else must name a registered policy or Validate rejects it with
// an UnknownPolicyError.
type EvictionPolicy string

const (
	// EvictLRU evicts the block with the oldest last-migration batch.
	EvictLRU EvictionPolicy = "lru"
	// EvictFIFO evicts in chunk allocation order.
	EvictFIFO EvictionPolicy = "fifo"
	// EvictRandom evicts a seeded-random resident block.
	EvictRandom EvictionPolicy = "random"
	// EvictLFU evicts the block with the fewest recorded resident-access
	// hits, using the GPU's access counters — the hit information §5.4
	// says the shipped LRU lacks. Enabling it turns the counters on.
	EvictLFU EvictionPolicy = "lfu"
)

// String names the policy ("unknown" for unregistered names).
func (p EvictionPolicy) String() string {
	if p == "" {
		return string(EvictLRU)
	}
	if _, ok := evictionRegistry.lookup(string(p)); ok {
		return string(p)
	}
	return "unknown"
}

// Config describes the driver policies under study. Beyond the shipped
// UVM behaviour, it exposes the improvements §6 of the paper proposes so
// they can be evaluated: parallel VABlock servicing, duplicate-adaptive
// batch sizing, asynchronous pre-unmapping, and cross-VABlock prefetch.
type Config struct {
	// BatchSize is the maximum faults fetched per batch. UVM's default
	// is 256; Figure 9 sweeps it up to 6144.
	BatchSize int
	// GPUMemBytes is the device memory capacity available to managed
	// allocations; exceeding it triggers VABlock-granular eviction.
	GPUMemBytes uint64
	// PrefetchEnabled enables the density (tree-based) prefetcher.
	PrefetchEnabled bool
	// PrefetchThreshold is the subtree occupancy fraction above which
	// the whole subtree is prefetched. UVM's default is 0.51.
	PrefetchThreshold float64
	// Upgrade64K migrates whole 64 KB regions per fault when prefetching
	// is enabled (the x86 4KB->64KB upgrade, §2.2).
	Upgrade64K bool

	// ServiceWorkers parallelizes per-VABlock servicing across this
	// many driver workers (1 = the shipped serial driver). The paper's
	// §6 "Driver Serialization" discussion proposes this and predicts
	// workload imbalance; the ablation experiments measure it.
	ServiceWorkers int
	// LoadBalanceLPT assigns blocks to workers longest-processing-time-
	// first instead of arrival order when ServiceWorkers > 1.
	LoadBalanceLPT bool
	// WorkerSync is the per-batch synchronization overhead paid per
	// additional worker.
	WorkerSync sim.Time

	// AdaptiveBatch tunes the effective batch size from the previous
	// batch's duplicate rate (§6: "tune batch size based on the number
	// of duplicate faults received"), within [AdaptiveMin, BatchSize].
	AdaptiveBatch bool
	// AdaptiveMin floors the adaptive batch size (default 64).
	AdaptiveMin int
	// BatchSizing, when non-empty, names the registered batch-sizing
	// policy directly, for policies the boolean knobs cannot derive
	// (e.g. "degraded-aware"). Empty derives the name from
	// AdaptiveBatch as before.
	BatchSizing string

	// AsyncUnmap performs CPU page unmapping preemptively at kernel
	// launch instead of on the fault path (§6: "performing these
	// operations asynchronously and preemptively may be preferable when
	// an application shifts to GPU compute").
	AsyncUnmap bool

	// CrossBlockPrefetch extends the prefetcher beyond a single VABlock
	// (§6: "increasing the prefetching scope"): when a faulting block
	// becomes fully resident, up to N following blocks of the same
	// allocation are migrated eagerly in the same batch.
	CrossBlockPrefetch int

	// Eviction selects the replacement policy (default LRU, as shipped).
	Eviction EvictionPolicy
	// EvictionSeed seeds EvictRandom.
	EvictionSeed uint64

	// Architecture names the registered UVM architecture (the stage graph
	// itself — see arch.go). Empty resolves to "host-driven", the paper's
	// design; anything else must name a registered architecture or
	// Validate rejects it with an UnknownPolicyError.
	Architecture string
	// AccessCounterThreshold is the per-block remote-access count at which
	// the access-counter architecture promotes a remote-mapped block to
	// GPU residency (0 lets the architecture apply its default).
	AccessCounterThreshold int

	// Costs are the driver-side time constants.
	Costs CostModel
}

// DefaultConfig returns UVM's default (shipped-driver) policies with a
// capacity suitable for scaled experiments (see DESIGN.md §1 on scaling).
func DefaultConfig() Config {
	return Config{
		BatchSize:         256,
		GPUMemBytes:       256 << 20,
		PrefetchEnabled:   true,
		PrefetchThreshold: 0.51,
		Upgrade64K:        true,
		ServiceWorkers:    1,
		WorkerSync:        3 * sim.Microsecond,
		AdaptiveMin:       64,
		Eviction:          EvictLRU,
		EvictionSeed:      1,
		Costs:             DefaultCostModel(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BatchSize < 1:
		return fmt.Errorf("uvm: BatchSize = %d, need >= 1", c.BatchSize)
	case c.GPUMemBytes < mem.VABlockSize:
		return fmt.Errorf("uvm: GPUMemBytes = %d, need >= one VABlock (%d)",
			c.GPUMemBytes, mem.VABlockSize)
	case c.PrefetchEnabled && (c.PrefetchThreshold <= 0 || c.PrefetchThreshold > 1):
		return fmt.Errorf("uvm: PrefetchThreshold = %v, need in (0, 1]", c.PrefetchThreshold)
	case c.ServiceWorkers < 1:
		return fmt.Errorf("uvm: ServiceWorkers = %d, need >= 1", c.ServiceWorkers)
	case c.AdaptiveBatch && (c.AdaptiveMin < 1 || c.AdaptiveMin > c.BatchSize):
		return fmt.Errorf("uvm: AdaptiveMin = %d, need in [1, BatchSize]", c.AdaptiveMin)
	case c.CrossBlockPrefetch < 0:
		return fmt.Errorf("uvm: CrossBlockPrefetch = %d, need >= 0", c.CrossBlockPrefetch)
	case c.AccessCounterThreshold < 0:
		return fmt.Errorf("uvm: AccessCounterThreshold = %d, need >= 0", c.AccessCounterThreshold)
	}
	if c.Architecture != "" {
		if _, ok := architectureRegistry.lookup(c.Architecture); !ok {
			return architectureRegistry.unknown(c.Architecture)
		}
	}
	if c.Eviction != "" {
		if _, ok := evictionRegistry.lookup(string(c.Eviction)); !ok {
			return evictionRegistry.unknown(string(c.Eviction))
		}
	}
	if c.BatchSizing != "" {
		if _, ok := sizingRegistry.lookup(c.BatchSizing); !ok {
			return sizingRegistry.unknown(c.BatchSizing)
		}
	}
	return nil
}

// PrefetchPolicyName derives the registry name matching the prefetch
// knobs: "off" (no prefetching), "tree" (the shipped density prefetcher),
// or "cross-block" (density prefetching plus eager whole-block migration
// beyond the faulting VABlock).
func (c Config) PrefetchPolicyName() string {
	switch {
	case c.CrossBlockPrefetch > 0:
		return "cross-block"
	case c.PrefetchEnabled:
		return "tree"
	default:
		return "off"
	}
}

// BatchSizingName derives the registry name matching the batch-sizing
// knobs: the explicit BatchSizing override when set, else "adaptive"
// (duplicate-driven resizing) or "fixed".
func (c Config) BatchSizingName() string {
	if c.BatchSizing != "" {
		return c.BatchSizing
	}
	if c.AdaptiveBatch {
		return "adaptive"
	}
	return "fixed"
}

// ArchitectureName returns the effective architecture registry name
// ("host-driven" when the field is empty).
func (c Config) ArchitectureName() string {
	if c.Architecture == "" {
		return "host-driven"
	}
	return c.Architecture
}

// CapacityBlocks returns how many 2 MB chunks fit in GPU memory.
func (c Config) CapacityBlocks() int {
	return int(c.GPUMemBytes / mem.VABlockSize)
}
