package uvm

// prefetchplan.go — migration-set planning: the prefetch-plan block step
// (which pages of the block migrate beyond the faulted ones, §5.2), the
// registered PrefetchPlanner implementations, and the cross-block stage
// (eager whole-block migration beyond the faulting VABlock, §6).
//
// Profiler attribution: planning itself is free in the cost model, so
// the prefetch-plan slot of the step decomposition is structurally zero
// today — the profiler keeps the slot so a future planner with a
// modeled cost shows up without a seam change. Blocks the cross-block
// stage migrates report BlockServiced with eager=true and zero faulted
// pages.

import "guvm/internal/mem"

// prefetchPlanStep builds the block's migration set: the deduplicated
// faulted pages plus whatever the configured planner adds. An eager
// cross-block migration plans the whole block unconditionally.
type prefetchPlanStep struct{}

func (prefetchPlanStep) name() string { return "prefetch-plan" }

func (prefetchPlanStep) run(d *Driver, bc *batchCtx, blk *blockCtx) error {
	if blk.eager {
		blk.toMigrate.SetAll()
		return nil
	}
	for _, p := range blk.pages {
		blk.faulted.Set(p.IndexInBlock())
	}
	blk.toMigrate.Union(&blk.faulted)
	extra := d.planner.PlanBlock(d, &blk.b.resident, &blk.faulted)
	nExtra := extra.Count()
	bc.rec.PrefetchedPages += nExtra
	d.stats.PrefetchedPages += nExtra
	blk.toMigrate.Union(&extra)
	return nil
}

// treePlanner is the shipped density ("tree-based") prefetcher: promote
// any subtree whose occupancy reaches the configured threshold (§5.2).
type treePlanner struct{}

func (treePlanner) PlanBlock(d *Driver, resident, faulted *mem.PageSet) mem.PageSet {
	return PrefetchPages(resident, faulted, d.cfg.PrefetchThreshold, d.cfg.Upgrade64K)
}

func (treePlanner) CrossBlockScope(d *Driver) int { return d.cfg.CrossBlockPrefetch }

// offPlanner migrates only the deduplicated faulted pages.
//
// Both planners read the cross-block scope from the config rather than
// hard-coding it, so legacy knob combinations (e.g. PrefetchEnabled off
// with CrossBlockPrefetch set) keep their exact historical behaviour.
type offPlanner struct{}

func (offPlanner) PlanBlock(d *Driver, resident, faulted *mem.PageSet) mem.PageSet {
	return mem.PageSet{}
}

func (offPlanner) CrossBlockScope(d *Driver) int { return d.cfg.CrossBlockPrefetch }

// crossBlockStage extends prefetching beyond a single VABlock (§6:
// "increasing the prefetching scope"): after the serviced blocks, up to
// scope whole blocks following each fully-resident faulting block of the
// same allocation are migrated eagerly through the block pipeline. This
// trades upfront work (and possible evictions — the §5.3 hazard) for
// eliminating future first-touch batches.
type crossBlockStage struct{}

func (crossBlockStage) name() string { return "cross-block" }

func (crossBlockStage) run(d *Driver, bc *batchCtx) error {
	scope := d.planner.CrossBlockScope(d)
	if scope <= 0 {
		return nil
	}
	sc := bc.sc
	for _, bid := range sc.blockOrder {
		b := d.blocks.Lookup(bid)
		if b == nil || !b.resident.Full() {
			continue
		}
		sp, ok := d.spanOf(bid)
		if !ok {
			continue
		}
		for n := 1; n <= scope; n++ {
			next := bid + mem.VABlockID(n)
			if next > sp.last {
				break
			}
			nb := d.blocks.Lookup(next)
			if nb != nil && nb.resident.Any() {
				break // already (partially) resident: stop the run
			}
			if sc.inBatch(next) {
				break
			}
			c, err := d.runBlock(next, nil, true, bc)
			if err != nil {
				return err
			}
			sc.blockCosts = append(sc.blockCosts, c)
			sc.inBatchExtra = append(sc.inBatchExtra, next)
		}
	}
	return nil
}
