package uvm

// flags.go — the shared CLI policy flag block. Every CLI (uvmsim,
// faultviz, paperfigs, sweepd, uvmsweep) selects driver policies along
// the same registry dimensions; this file is the single definition of
// those flags, mirroring obs.RegisterFlags for the observability block.
// Single-choice tools register PolicyFlags; grid tools (uvmsweep, the
// sweepd defaults) register PolicyListFlags, whose comma lists expand to
// a deterministic cross product of selections.

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
)

// PolicyFlags binds the single-choice policy selection flags (-evict,
// -prefetch-policy, -batch-sizing, -arch) plus -list-policies. Empty
// selections defer to the config defaults, so a command line that never
// names a policy behaves exactly as before the flags existed.
type PolicyFlags struct {
	Eviction     string
	Prefetch     string
	BatchSizing  string
	Architecture string
	List         bool
}

// RegisterPolicyFlags registers the shared policy flag block on fs and
// returns the parsed destination.
func RegisterPolicyFlags(fs *flag.FlagSet) *PolicyFlags {
	pf := &PolicyFlags{}
	fs.StringVar(&pf.Eviction, "evict", "", "eviction policy by registry name (see -list-policies)")
	fs.StringVar(&pf.Prefetch, "prefetch-policy", "", "prefetch policy by registry name (see -list-policies)")
	fs.StringVar(&pf.BatchSizing, "batch-sizing", "", "batch-sizing policy by registry name (see -list-policies)")
	fs.StringVar(&pf.Architecture, "arch", "", "UVM architecture by registry name (see -list-policies)")
	fs.BoolVar(&pf.List, "list-policies", false, "list registered driver policies and exit")
	return pf
}

// Selection converts the parsed flags into a PolicySelection.
func (pf *PolicyFlags) Selection() PolicySelection {
	return PolicySelection{
		Eviction:     pf.Eviction,
		Prefetch:     pf.Prefetch,
		BatchSizing:  pf.BatchSizing,
		Architecture: pf.Architecture,
	}
}

// HandleList writes the policy listing to w and reports whether
// -list-policies was given (the caller exits afterwards).
func (pf *PolicyFlags) HandleList(w io.Writer) bool {
	if !pf.List {
		return false
	}
	WritePolicies(w)
	return true
}

// WritePolicies writes every registered policy grouped by kind. Kinds
// keep registration order (eviction first — tooling greps for it); names
// within a kind are sorted, so the listing is deterministic however
// future registrations shuffle init order.
func WritePolicies(w io.Writer) {
	var kinds []PolicyKind
	byKind := map[PolicyKind][]PolicyInfo{}
	for _, p := range Policies() {
		if _, ok := byKind[p.Kind]; !ok {
			kinds = append(kinds, p.Kind)
		}
		byKind[p.Kind] = append(byKind[p.Kind], p)
	}
	for i, k := range kinds {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s:\n", k)
		ps := byKind[k]
		sort.Slice(ps, func(a, b int) bool { return ps[a].Name < ps[b].Name })
		for _, p := range ps {
			fmt.Fprintf(w, "  %-14s %s\n", p.Name, p.Description)
		}
	}
}

// PolicyListFlags binds the comma-separated sweep variants of the same
// dimensions (-evict, -prefetch, -batch-sizing, -arch as lists) plus
// -list-policies, for the grid tools.
type PolicyListFlags struct {
	Eviction     string
	Prefetch     string
	BatchSizing  string
	Architecture string
	List         bool
}

// RegisterPolicyListFlags registers the sweep policy flag block on fs.
// The defaults reproduce the historical single-point sweeps (lru,
// on/off prefetch, fixed sizing, host-driven architecture).
func RegisterPolicyListFlags(fs *flag.FlagSet) *PolicyListFlags {
	pf := &PolicyListFlags{}
	fs.StringVar(&pf.Eviction, "evict", "lru", "eviction policies to sweep, by registry name (comma-separated)")
	fs.StringVar(&pf.Prefetch, "prefetch", "on,off", "prefetch policies to sweep, by registry name (on/off accepted as aliases of tree/off)")
	fs.StringVar(&pf.BatchSizing, "batch-sizing", "fixed", "batch-sizing policies to sweep, by registry name (comma-separated)")
	fs.StringVar(&pf.Architecture, "arch", "host-driven", "UVM architectures to sweep, by registry name (comma-separated)")
	fs.BoolVar(&pf.List, "list-policies", false, "list registered driver policies and exit")
	return pf
}

// HandleList writes the policy listing to w and reports whether
// -list-policies was given (the caller exits afterwards).
func (pf *PolicyListFlags) HandleList(w io.Writer) bool {
	if !pf.List {
		return false
	}
	WritePolicies(w)
	return true
}

// NormalizePrefetch maps the legacy prefetch aliases the sweep tools
// accept onto registry names: "on" means "tree", "" means "off".
func NormalizePrefetch(name string) string {
	name = strings.TrimSpace(name)
	switch name {
	case "on":
		return "tree"
	case "":
		return "off"
	}
	return name
}

// Selections expands the comma lists into the full cross product in
// deterministic order (prefetch outermost, then eviction, batch sizing,
// architecture innermost), validating every name against the registry so
// an unknown policy is rejected — with the valid options — before any
// simulation runs.
func (pf *PolicyListFlags) Selections() ([]PolicySelection, error) {
	var out []PolicySelection
	for _, p := range strings.Split(pf.Prefetch, ",") {
		for _, ev := range strings.Split(pf.Eviction, ",") {
			for _, sz := range strings.Split(pf.BatchSizing, ",") {
				for _, ar := range strings.Split(pf.Architecture, ",") {
					sel := PolicySelection{
						Eviction:     strings.TrimSpace(ev),
						Prefetch:     NormalizePrefetch(p),
						BatchSizing:  strings.TrimSpace(sz),
						Architecture: strings.TrimSpace(ar),
					}
					var probe Config
					if err := sel.Apply(&probe); err != nil {
						return nil, err
					}
					out = append(out, sel)
				}
			}
		}
	}
	return out, nil
}
