package uvm

import "guvm/internal/mem"

// PrefetchPages implements UVM's density ("tree-based") prefetcher
// (§5.2; described in detail in the paper's refs [2, 14, 21]). Its scope
// is a single VABlock and it is purely reactive: it only promotes pages of
// the block currently being serviced.
//
// The block's 512 pages form a binary tree whose leaves are the 32 64 KB
// regions. Bottom-up, any node whose occupancy — resident pages plus pages
// about to migrate — reaches threshold is promoted: every page it spans is
// scheduled for migration, up to the full VABlock at the root.
//
// resident is the block's current GPU residency, faulted the deduped
// faulted pages of this batch, upgrade64K whether each faulted 64 KB
// region migrates in full before tree evaluation (the x86 4KB->64KB
// upgrade). The returned set contains only the additional pages to
// migrate (excluding resident and faulted ones).
func PrefetchPages(resident, faulted *mem.PageSet, threshold float64, upgrade64K bool) mem.PageSet {
	// target = pages that will be resident after this batch's mandatory
	// migrations.
	var target mem.PageSet
	target.Union(resident)
	target.Union(faulted)

	if upgrade64K {
		for r := 0; r < mem.RegionsPerBlock; r++ {
			lo := r * mem.PagesPerRegion
			hi := lo + mem.PagesPerRegion
			if faulted.CountRange(lo, hi) > 0 {
				for i := lo; i < hi; i++ {
					target.Set(i)
				}
			}
		}
	}

	// Tree pass: levels of span 16, 32, 64, ..., 512 pages. (The 64 KB
	// leaves were handled by the upgrade; start one level up when the
	// upgrade is off so leaves still get density treatment.)
	startSpan := mem.PagesPerRegion
	if upgrade64K {
		startSpan = 2 * mem.PagesPerRegion
	}
	for span := startSpan; span <= mem.PagesPerVABlock; span *= 2 {
		for lo := 0; lo < mem.PagesPerVABlock; lo += span {
			hi := lo + span
			occ := target.CountRange(lo, hi)
			if occ == 0 || occ == span {
				continue
			}
			if float64(occ) >= threshold*float64(span) {
				for i := lo; i < hi; i++ {
					target.Set(i)
				}
			}
		}
	}

	target.Subtract(resident)
	target.Subtract(faulted)
	return target
}
