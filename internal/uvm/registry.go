package uvm

// registry.go — the named driver-policy registry.
//
// The paper's driver analysis ends on policy questions ("this LRU policy
// may not be optimal", §5.4; batch sizing and prefetch scope, §6). The
// registry makes each of those decision points a named, pluggable policy
// attached at a stage seam of the batch pipeline (pipeline.go):
//
//	eviction     — victim selection in the residency stage (residency.go)
//	prefetch     — migration planning in the prefetch-plan stage
//	               (prefetchplan.go), including cross-block scope
//	batch-sizing — effective-batch adjustment in the replay stage
//	               (replay.go)
//	architecture — the stage graph itself: fault-observation point, stage
//	               list, and mapping-state owner (arch.go)
//
// Policies are resolved by string name from guvm.SystemConfig, the CLI
// flags, and the experiment ablations; an unregistered name is rejected
// with an UnknownPolicyError that names the valid options.

import (
	"errors"
	"fmt"
	"strings"

	"guvm/internal/mem"
	"guvm/internal/trace"
)

// PolicyKind names one of the driver's pluggable decision points.
type PolicyKind string

const (
	KindEviction     PolicyKind = "eviction"
	KindPrefetch     PolicyKind = "prefetch"
	KindBatchSizing  PolicyKind = "batch-sizing"
	KindArchitecture PolicyKind = "architecture"
)

// PolicyInfo describes one registered policy for listings.
type PolicyInfo struct {
	Kind        PolicyKind
	Name        string
	Description string
}

// ErrUnknownPolicy is the sentinel wrapped by every UnknownPolicyError.
var ErrUnknownPolicy = errors.New("unknown policy")

// UnknownPolicyError reports a policy name absent from the registry. It
// carries (and prints) the valid options so callers can surface them.
type UnknownPolicyError struct {
	Kind  PolicyKind
	Name  string
	Valid []string
}

func (e *UnknownPolicyError) Error() string {
	return fmt.Sprintf("uvm: unknown %s policy %q (valid: %s)",
		e.Kind, e.Name, strings.Join(e.Valid, ", "))
}

func (e *UnknownPolicyError) Unwrap() error { return ErrUnknownPolicy }

// EvictionStrategy picks the victim VABlock under memory pressure. Pick
// receives the candidate indices into the driver's allocation-ordered
// block list (never empty) and returns the chosen one. Implementations
// must be deterministic given the driver state (EvictRandom draws from
// the driver's seeded RNG).
type EvictionStrategy interface {
	Pick(d *Driver, candidates []int) int
}

// PrefetchPlanner decides which pages beyond the deduplicated faulted set
// migrate. PlanBlock returns the extra in-block pages (excluding resident
// and faulted ones); CrossBlockScope returns how many whole VABlocks
// following a fully-resident faulting block to migrate eagerly in the
// same batch (0 disables the §6 cross-block extension).
type PrefetchPlanner interface {
	PlanBlock(d *Driver, resident, faulted *mem.PageSet) mem.PageSet
	CrossBlockScope(d *Driver) int
}

// BatchSizer adjusts the driver's effective batch size after each
// completed batch (the §6 "tune batch size based on the number of
// duplicate faults received" seam).
type BatchSizer interface {
	Update(d *Driver, rec *trace.BatchRecord)
}

// policyEntry is one registered policy; payload holds the kind-specific
// implementation (EvictionStrategy, prefetch applier, or sizingPayload).
type policyEntry struct {
	info    PolicyInfo
	payload any
}

// policyTable is one kind's registry. Entries keep registration order so
// listings (and the ablation sweeps built on them) are deterministic.
type policyTable struct {
	kind    PolicyKind
	entries []policyEntry
}

func (t *policyTable) register(name, desc string, payload any) {
	if _, ok := t.lookup(name); ok {
		panic(fmt.Sprintf("uvm: duplicate %s policy %q", t.kind, name))
	}
	t.entries = append(t.entries, policyEntry{
		info:    PolicyInfo{Kind: t.kind, Name: name, Description: desc},
		payload: payload,
	})
}

func (t *policyTable) lookup(name string) (policyEntry, bool) {
	for _, e := range t.entries {
		if e.info.Name == name {
			return e, true
		}
	}
	return policyEntry{}, false
}

func (t *policyTable) names() []string {
	out := make([]string, len(t.entries))
	for i, e := range t.entries {
		out[i] = e.info.Name
	}
	return out
}

func (t *policyTable) unknown(name string) *UnknownPolicyError {
	return &UnknownPolicyError{Kind: t.kind, Name: name, Valid: t.names()}
}

// sizingPayload pairs a batch-sizing policy's config normalization with
// its runtime sizer.
type sizingPayload struct {
	apply func(*Config)
	sizer BatchSizer
}

var (
	evictionRegistry = &policyTable{kind: KindEviction}
	prefetchRegistry = &policyTable{kind: KindPrefetch}
	sizingRegistry   = &policyTable{kind: KindBatchSizing}
)

func init() {
	evictionRegistry.register(string(EvictLRU),
		"evict the least-recently-migrated block (shipped driver; degrades to earliest-allocated, §5.4)",
		lruStrategy{})
	evictionRegistry.register(string(EvictFIFO),
		"evict in chunk allocation order",
		fifoStrategy{})
	evictionRegistry.register(string(EvictRandom),
		"evict a seeded-random resident block",
		randomStrategy{})
	evictionRegistry.register(string(EvictLFU),
		"evict the block with the fewest GPU access-counter hits (the page-hit signal §5.4 says LRU lacks)",
		lfuStrategy{})

	prefetchRegistry.register("tree",
		"density (tree-based) prefetching within the faulting VABlock (shipped driver, §5.2)",
		func(c *Config) {
			c.PrefetchEnabled = true
			c.CrossBlockPrefetch = 0
		})
	prefetchRegistry.register("off",
		"no prefetching: migrate only deduplicated faulted pages",
		func(c *Config) {
			c.PrefetchEnabled = false
			c.Upgrade64K = false
			c.CrossBlockPrefetch = 0
		})
	prefetchRegistry.register("cross-block",
		"tree prefetching plus eager whole-block migration beyond the faulting VABlock (§6 proposal)",
		func(c *Config) {
			c.PrefetchEnabled = true
			if c.CrossBlockPrefetch < 1 {
				c.CrossBlockPrefetch = 2
			}
		})

	sizingRegistry.register("fixed",
		"fixed effective batch size (shipped driver: BatchSize faults per batch)",
		sizingPayload{
			apply: func(c *Config) {
				c.AdaptiveBatch = false
				c.BatchSizing = ""
			},
			sizer: fixedSizer{},
		})
	sizingRegistry.register("adaptive",
		"duplicate-adaptive batch sizing within [AdaptiveMin, BatchSize] (§6 proposal)",
		sizingPayload{
			apply: func(c *Config) {
				c.AdaptiveBatch = true
				c.BatchSizing = ""
				if c.AdaptiveMin < 1 {
					c.AdaptiveMin = 64
				}
				if c.AdaptiveMin > c.BatchSize {
					c.AdaptiveMin = c.BatchSize
				}
			},
			sizer: adaptiveSizer{},
		})

	sizingRegistry.register("degraded-aware",
		"adaptive sizing that halves the batch while the interconnect is degraded, flapping or dead",
		sizingPayload{
			apply: func(c *Config) {
				c.AdaptiveBatch = true
				c.BatchSizing = "degraded-aware"
				if c.AdaptiveMin < 1 {
					c.AdaptiveMin = 64
				}
				if c.AdaptiveMin > c.BatchSize {
					c.AdaptiveMin = c.BatchSize
				}
			},
			sizer: degradedSizer{},
		})
}

// RegisterEvictionPolicy adds a victim-selection strategy to the registry
// under a new name, making it selectable everywhere eviction policies are
// resolved by string (SystemConfig, CLI flags, sweeps). It errors on an
// empty name or a duplicate.
func RegisterEvictionPolicy(name, description string, s EvictionStrategy) error {
	if name == "" || s == nil {
		return fmt.Errorf("uvm: eviction policy needs a name and a strategy")
	}
	if _, ok := evictionRegistry.lookup(name); ok {
		return fmt.Errorf("uvm: eviction policy %q already registered", name)
	}
	evictionRegistry.register(name, description, s)
	return nil
}

// Policies lists every registered policy of every kind, in registration
// order (eviction, then prefetch, then batch sizing, then architecture).
func Policies() []PolicyInfo {
	var out []PolicyInfo
	for _, t := range []*policyTable{evictionRegistry, prefetchRegistry, sizingRegistry, architectureRegistry} {
		for _, e := range t.entries {
			out = append(out, e.info)
		}
	}
	return out
}

// PoliciesOf lists the registered policies of one kind.
func PoliciesOf(kind PolicyKind) []PolicyInfo {
	var out []PolicyInfo
	for _, p := range Policies() {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// ResolveEviction maps a policy name to its typed config value. The empty
// string resolves to the shipped default (LRU); an unregistered name
// returns an UnknownPolicyError listing the valid options.
func ResolveEviction(name string) (EvictionPolicy, error) {
	if name == "" {
		return EvictLRU, nil
	}
	if _, ok := evictionRegistry.lookup(name); !ok {
		return "", evictionRegistry.unknown(name)
	}
	return EvictionPolicy(name), nil
}

// PolicySelection selects driver policies by registry name. Empty fields
// leave the corresponding Config knobs untouched, so the zero value is a
// no-op and legacy knob-based configuration keeps working unchanged.
type PolicySelection struct {
	Eviction     string
	Prefetch     string
	BatchSizing  string
	Architecture string
}

// Apply resolves each named policy and rewrites c's typed knobs to the
// canonical settings of that policy. Parameters that are not policy
// identity (PrefetchThreshold, Upgrade64K under "tree"/"cross-block",
// AdaptiveMin, EvictionSeed) are preserved.
func (s PolicySelection) Apply(c *Config) error {
	if s.Eviction != "" {
		pol, err := ResolveEviction(s.Eviction)
		if err != nil {
			return err
		}
		c.Eviction = pol
	}
	if s.Prefetch != "" {
		e, ok := prefetchRegistry.lookup(s.Prefetch)
		if !ok {
			return prefetchRegistry.unknown(s.Prefetch)
		}
		e.payload.(func(*Config))(c)
	}
	if s.BatchSizing != "" {
		e, ok := sizingRegistry.lookup(s.BatchSizing)
		if !ok {
			return sizingRegistry.unknown(s.BatchSizing)
		}
		e.payload.(sizingPayload).apply(c)
	}
	if s.Architecture != "" {
		if _, ok := architectureRegistry.lookup(s.Architecture); !ok {
			return architectureRegistry.unknown(s.Architecture)
		}
		// Architecture-specific config rewrites (cost model, thresholds)
		// happen in NewDriver, so direct Config.Architecture assignment and
		// registry selection behave identically.
		c.Architecture = s.Architecture
	}
	return nil
}

// resolveEvictionStrategy returns the runtime strategy for a validated
// config ("" defaults to LRU).
func resolveEvictionStrategy(p EvictionPolicy) EvictionStrategy {
	name := string(p)
	if name == "" {
		name = string(EvictLRU)
	}
	e, ok := evictionRegistry.lookup(name)
	if !ok {
		// Validate rejects unregistered names before a Driver is built.
		panic(evictionRegistry.unknown(name))
	}
	return e.payload.(EvictionStrategy)
}

// resolvePrefetchPlanner returns the runtime planner for the configured
// knobs. The planner identity follows PrefetchEnabled; the cross-block
// scope is read from the config by both planners, so legacy knob
// combinations keep their exact historical behaviour.
func resolvePrefetchPlanner(c Config) PrefetchPlanner {
	if c.PrefetchEnabled {
		return treePlanner{}
	}
	return offPlanner{}
}

// resolveBatchSizer returns the runtime sizer for the configured knobs.
func resolveBatchSizer(c Config) BatchSizer {
	name := c.BatchSizingName()
	e, ok := sizingRegistry.lookup(name)
	if !ok {
		panic(sizingRegistry.unknown(name))
	}
	return e.payload.(sizingPayload).sizer
}
