package uvm

import (
	"errors"
	"reflect"
	"testing"

	"guvm/internal/faultinject"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// mustInjector builds an injector or fails the test.
func mustInjector(t *testing.T, cfg faultinject.Config) *faultinject.Injector {
	t.Helper()
	in, err := faultinject.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestMigrationRetryRecovers drives transfers through a lossy link model:
// each injected failure re-pays the transfer plus exponential backoff, and
// the kernel still completes with every retry accounted.
func TestMigrationRetryRecovers(t *testing.T) {
	icfg := faultinject.DefaultConfig()
	icfg.MigrateFailRate = 0.3
	icfg.MigrateMaxRetries = 10 // deep budget: no migration goes fatal
	in := mustInjector(t, icfg)

	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	drv.SetInjector(in)
	dev.SetInjector(in)
	base := drv.Alloc(2 * mem.VABlockSize)
	runKernel(t, eng, dev, streamKernel(base, 600))

	st := drv.Stats()
	if st.MigratedPages != 600 {
		t.Fatalf("migrated %d pages, want 600", st.MigratedPages)
	}
	if st.MigRetries == 0 {
		t.Fatal("no migration retries at 30% fail rate")
	}
	is := in.Stats()
	if is.Migrate.Injected == 0 || is.Migrate.Recovered == 0 {
		t.Fatalf("migrate counters = %+v", is.Migrate)
	}
	if is.Migrate.Unrecovered != 0 {
		t.Fatalf("%d migrations went fatal under a deep retry budget", is.Migrate.Unrecovered)
	}
}

// TestMigrationRetryCostsVirtualTime verifies retries are not free: the
// same kernel under a lossy link finishes strictly later than baseline.
func TestMigrationRetryCostsVirtualTime(t *testing.T) {
	run := func(in *faultinject.Injector) sim.Time {
		eng, drv, dev := newSystem(smallGPU(), noPrefetch())
		drv.SetInjector(in)
		dev.SetInjector(in)
		base := drv.Alloc(2 * mem.VABlockSize)
		runKernel(t, eng, dev, streamKernel(base, 600))
		return eng.Now()
	}
	baseline := run(nil)
	icfg := faultinject.DefaultConfig()
	icfg.MigrateFailRate = 0.5
	icfg.MigrateMaxRetries = 12
	lossy := run(mustInjector(t, icfg))
	if lossy <= baseline {
		t.Fatalf("lossy end %d not later than baseline %d", lossy, baseline)
	}
}

// TestMigrationExhaustionFails forces every transfer attempt to fail: the
// run must stop with a typed error, not hang or panic.
func TestMigrationExhaustionFails(t *testing.T) {
	icfg := faultinject.DefaultConfig()
	icfg.MigrateFailRate = 1.0
	icfg.MigrateMaxRetries = 2
	in := mustInjector(t, icfg)

	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	drv.SetInjector(in)
	dev.SetInjector(in)
	base := drv.Alloc(mem.VABlockSize)
	if err := dev.LaunchKernel(streamKernel(base, 64), func() {}); err != nil {
		t.Fatalf("launch: %v", err)
	}
	_, err := eng.Run()
	if !errors.Is(err, ErrMigrationFailed) {
		t.Fatalf("engine error = %v, want ErrMigrationFailed", err)
	}
	if in.Stats().Migrate.Unrecovered == 0 {
		t.Fatal("fatal migration not counted as unrecovered")
	}
}

// TestHostAllocDegradation injects population failures and checks the
// driver degrades gracefully — shrinking its batch cap and retrying —
// rather than failing the run.
func TestHostAllocDegradation(t *testing.T) {
	icfg := faultinject.DefaultConfig()
	icfg.HostAllocFailRate = 0.3
	icfg.HostAllocMaxRetries = 20
	in := mustInjector(t, icfg)

	ucfg := noPrefetch()
	ucfg.AdaptiveMin = 16
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	drv.SetInjector(in)
	dev.SetInjector(in)
	base := drv.Alloc(2 * mem.VABlockSize)
	runKernel(t, eng, dev, streamKernel(base, 600))

	st := drv.Stats()
	if st.HostAllocFailures == 0 {
		t.Fatal("no host allocation failures at 30% fail rate")
	}
	if st.BatchShrinks == 0 {
		t.Fatal("no batch shrinks despite population failures")
	}
	if drv.EffectiveBatchSize() >= DefaultConfig().BatchSize {
		t.Fatalf("effective batch %d did not shrink", drv.EffectiveBatchSize())
	}
	if st.MigratedPages != 600 {
		t.Fatalf("migrated %d pages, want 600", st.MigratedPages)
	}
	is := in.Stats()
	if is.HostAlloc.Recovered == 0 || is.HostAlloc.Unrecovered != 0 {
		t.Fatalf("host-alloc counters = %+v", is.HostAlloc)
	}
}

// TestHostAllocExhaustionFails drains the retry budget: the run must
// surface the wrapped hostos allocation error through the engine.
func TestHostAllocExhaustionFails(t *testing.T) {
	icfg := faultinject.DefaultConfig()
	icfg.HostAllocFailRate = 1.0
	icfg.HostAllocMaxRetries = 3
	in := mustInjector(t, icfg)

	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	drv.SetInjector(in)
	dev.SetInjector(in)
	base := drv.Alloc(mem.VABlockSize)
	if err := dev.LaunchKernel(streamKernel(base, 64), func() {}); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("run succeeded with a 100% population fail rate")
	}
	if in.Stats().HostAlloc.Unrecovered == 0 {
		t.Fatal("exhausted population not counted as unrecovered")
	}
}

// TestInertInjectorBitIdentical checks the disabled-injection guarantee at
// the driver level: a run with an all-rates-zero injector produces exactly
// the telemetry of a run with no injector at all.
func TestInertInjectorBitIdentical(t *testing.T) {
	run := func(in *faultinject.Injector) ([]sim.Time, Stats) {
		eng, drv, dev := newSystem(smallGPU(), noPrefetch())
		if in != nil {
			drv.SetInjector(in)
			dev.SetInjector(in)
		}
		base := drv.Alloc(2 * mem.VABlockSize)
		runKernel(t, eng, dev, streamKernel(base, 600))
		var durs []sim.Time
		for _, b := range drv.Collector.Batches {
			durs = append(durs, b.Duration())
		}
		return durs, drv.Stats()
	}
	bareDurs, bareStats := run(nil)
	inertDurs, inertStats := run(mustInjector(t, faultinject.DefaultConfig()))
	if !reflect.DeepEqual(bareDurs, inertDurs) {
		t.Fatalf("batch durations diverge: %v vs %v", bareDurs, inertDurs)
	}
	if bareStats != inertStats {
		t.Fatalf("stats diverge:\nbare  %+v\ninert %+v", bareStats, inertStats)
	}
}

// TestExplicitCopyCapacityTyped pins the typed error for explicit
// oversubscription at the driver level.
func TestExplicitCopyCapacityTyped(t *testing.T) {
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	_, drv, _ := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(4 * mem.VABlockSize)
	_, err := drv.ExplicitCopyToGPU(base, 4*mem.VABlockSize)
	if !errors.Is(err, ErrCapacityExhausted) {
		t.Fatalf("err = %v, want ErrCapacityExhausted", err)
	}
}
