package uvm

import (
	"fmt"
	"strings"

	"guvm/internal/digest"
	"guvm/internal/gpumem"
	"guvm/internal/mem"
)

// BlockAudit is the audit view of one VABlock's driver-side state.
type BlockAudit struct {
	ID        mem.VABlockID
	Resident  mem.PageSet
	Populated mem.PageSet
	HasChunk  bool
	Chunk     gpumem.ChunkID
	DMAMapped bool
	LastTouch int
	AllocSeq  int
	Evictions int
	// RemoteMapped marks pages GPU-mapped into host memory (the
	// access-counter architecture); always empty elsewhere.
	RemoteMapped mem.PageSet
}

// AuditState is the canonical snapshot of the driver: every known VABlock
// (ascending ID), the chunk-allocation order, capacity accounting, the
// adaptive batch state, and the accumulated statistics.
type AuditState struct {
	Blocks []BlockAudit
	// AllocatedOrder is d.allocated in order: the LRU/FIFO victim scan
	// sequence. Every listed block must hold a chunk.
	AllocatedOrder []mem.VABlockID
	ChunksInUse    int
	CapacityBlocks int
	EffBatch       int
	BatchCount     int
	NextSeq        int
	Sleeping       bool
	InBatch        bool
	// Dead reports device-loss: the driver re-homed its pages and parked
	// (rehome.go). Dead drivers must hold no chunks.
	Dead  bool
	Stats Stats
}

// ResidentPages sums GPU-resident pages across blocks.
func (st *AuditState) ResidentPages() int {
	n := 0
	for i := range st.Blocks {
		n += st.Blocks[i].Resident.Count()
	}
	return n
}

// ChunkOwner reports the VABlock backing a live chunk, resolving through
// the physical allocator (for the chunk-ownership bijection check).
func (d *Driver) ChunkOwner(id gpumem.ChunkID) (mem.VABlockID, bool) {
	return d.pmm.Owner(id)
}

// AuditState captures the canonical driver state for auditing.
func (d *Driver) AuditState() AuditState {
	st := AuditState{
		ChunksInUse:    d.pmm.InUse(),
		CapacityBlocks: d.cfg.CapacityBlocks(),
		EffBatch:       d.effBatch,
		BatchCount:     d.batchCount,
		NextSeq:        d.nextSeq,
		Sleeping:       d.sleeping,
		InBatch:        d.inBatch,
		Dead:           d.dead,
		Stats:          d.stats,
	}
	st.Blocks = make([]BlockAudit, 0, d.blocks.Len())
	// BlockDir ranges in ascending ID order — exactly the canonical
	// order the former sorted-keys walk produced.
	d.blocks.Range(func(_ mem.VABlockID, b *blockState) bool {
		st.Blocks = append(st.Blocks, BlockAudit{
			ID:           b.id,
			Resident:     b.resident,
			Populated:    b.populated,
			HasChunk:     b.hasChunk,
			Chunk:        b.chunk,
			DMAMapped:    b.dmaMapped,
			LastTouch:    b.lastTouch,
			AllocSeq:     b.allocSeq,
			Evictions:    b.evictions,
			RemoteMapped: b.remoteMapped,
		})
		return true
	})
	for _, b := range d.allocated {
		st.AllocatedOrder = append(st.AllocatedOrder, b.id)
	}
	return st
}

// Digest returns the FNV-1a digest of the canonical driver state.
func (d *Driver) Digest() uint64 {
	st := d.AuditState()
	h := digest.New()
	h = h.Int(len(st.Blocks))
	for i := range st.Blocks {
		b := &st.Blocks[i]
		h = h.Uint64(uint64(b.ID))
		h = h.Words(b.Resident[:])
		h = h.Words(b.Populated[:])
		h = h.Bool(b.HasChunk)
		if b.HasChunk {
			h = h.Int(int(b.Chunk))
		}
		h = h.Bool(b.DMAMapped)
		h = h.Int(b.LastTouch).Int(b.AllocSeq).Int(b.Evictions)
		// Remote mappings fold in only when present, keeping host-driven
		// digests bit-identical to their pre-lift goldens.
		if b.RemoteMapped.Any() {
			h = h.Words(b.RemoteMapped[:])
		}
	}
	h = h.Int(len(st.AllocatedOrder))
	for _, id := range st.AllocatedOrder {
		h = h.Uint64(uint64(id))
	}
	h = h.Int(st.ChunksInUse).Int(st.CapacityBlocks)
	h = h.Int(st.EffBatch).Int(st.BatchCount).Int(st.NextSeq)
	h = h.Bool(st.Sleeping).Bool(st.InBatch)
	s := st.Stats
	h = h.Int(s.Batches).Int(s.TotalFaults).Int(s.StaleFaults).Int(s.Evictions)
	h = h.Int(s.PrefetchedPages).Int(s.CrossBlockPages).Int(s.MigratedPages)
	h = h.Int(s.WakeUps).Int(s.SpuriousWakeUps)
	h = h.Int(s.AsyncUnmapCalls).Int64(int64(s.AsyncUnmapTime))
	h = h.Int(s.MigRetries).Int(s.HostAllocFailures).Int(s.BatchShrinks)
	h = h.Uint64(s.ExplicitBytes).Uint64(s.InjMigRetryBytes)
	// Architecture telemetry folds in only when non-zero (host-driven
	// runs never touch it).
	if s.RemoteMappedPages != 0 || s.CounterPromotions != 0 {
		h = h.Int(s.RemoteMappedPages).Int(s.CounterPromotions)
	}
	// Hardware fault-domain state folds in only when the domain is
	// attached, so default runs keep their historical digests.
	if d.hw != nil {
		h = h.Bool(st.Dead)
		h = h.Int(s.HWLinkRetries).Int(s.DegradedShrinks)
		h = h.Uint64(s.HWRetryToGPUBytes).Uint64(s.HWRetryToHostBytes)
		h = h.Int(s.RehomedBlocks).Int(s.RehomedPages).Uint64(s.RehomedBytes)
		h = h.Int(s.ResidentAtKill)
	}
	return h.Sum()
}

// Dump renders the audit state for divergence diagnostics.
func (st AuditState) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "uvm: %d blocks known, %d/%d chunks in use, effBatch %d, batch %d, stats %+v\n",
		len(st.Blocks), st.ChunksInUse, st.CapacityBlocks, st.EffBatch, st.BatchCount, st.Stats)
	for i := range st.Blocks {
		blk := &st.Blocks[i]
		fmt.Fprintf(&b, "  block %d: resident %d, populated %d, chunk %v",
			blk.ID, blk.Resident.Count(), blk.Populated.Count(), blk.HasChunk)
		if blk.HasChunk {
			fmt.Fprintf(&b, " (#%d)", blk.Chunk)
		}
		if n := blk.RemoteMapped.Count(); n > 0 {
			fmt.Fprintf(&b, ", remote %d", n)
		}
		fmt.Fprintf(&b, ", dma %v, lastTouch %d, seq %d, evictions %d\n",
			blk.DMAMapped, blk.LastTouch, blk.AllocSeq, blk.Evictions)
	}
	return b.String()
}
