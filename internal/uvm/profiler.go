package uvm

// profiler.go — the driver side of the fault-lifecycle attribution
// profiler (the obs layer implements it; this file only defines the seam
// so internal/uvm keeps its import layering: uvm must not import obs).
//
// The driver reports four kinds of events, all on the simulation
// goroutine and all *after* the model state they describe is final:
//
//	FetchInstallment — one fault-buffer drain installment completed
//	BeginBatch       — the batch entered the synchronous stage pipeline
//	BlockServiced    — one VABlock finished the block-step pipeline,
//	                   with its per-step cost decomposition
//	EndBatch         — the batch record landed in the collector
//
// The zero-perturbation contract of the obs layer extends through this
// seam: a profiler may only read the arguments during the call (the
// fault slices are driver-owned scratch) and must not schedule events,
// draw randomness, or mutate model state. With no profiler attached the
// hot path pays one nil check per hook — the allocation guard and the
// digest goldens pin that the disabled path is bit-identical.

import (
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// PipelineProfiler observes the fault-servicing pipeline at stage
// granularity. Implementations must not retain the slices or pointers
// passed in — copy what outlives the call.
type PipelineProfiler interface {
	// FetchInstallment reports one buffer-drain installment: faults were
	// read from the fault buffer and their MMIO read cost elapses at
	// done. Called once per installment, in batch order.
	FetchInstallment(done sim.Time, faults []gpu.Fault)
	// BeginBatch reports the batch entering the synchronous stage
	// pipeline: start is when the batch opened (before the fixed setup
	// cost), entered is the engine clock at pipeline entry
	// (start + BatchSetup + TFetch).
	BeginBatch(start, entered sim.Time, faults []gpu.Fault)
	// BlockServiced reports one VABlock completing the block-step
	// pipeline. steps holds the per-step virtual-time costs in the
	// architecture's declared block-step order (ArchitectureInfo.BlockSteps
	// is the label contract); its length is fixed for the driver's
	// lifetime but driver-owned — copy, don't retain. total is the block's
	// full cost including the fixed per-VABlock management charge. pages
	// counts the faulted pages serviced (0 for an eager cross-block
	// migration); eager marks cross-block whole-block migrations.
	BlockServiced(bid mem.VABlockID, pages int, eager bool, steps []sim.Time, total sim.Time)
	// EndBatch reports the batch record landing in the collector, before
	// the batch observers run — profiler-derived metrics are current by
	// the time the obs sampler reads the registry.
	EndBatch(id int, rec *trace.BatchRecord)
}

// SetProfiler attaches a pipeline profiler to the batch-servicing hot
// path. Call before Run; a nil profiler (the default) keeps every hook a
// single pointer check.
func (d *Driver) SetProfiler(p PipelineProfiler) { d.prof = p }
