package uvm

// driver.go — the driver core: per-VABlock bookkeeping, driver-level
// counters, managed allocation, explicit management, residency queries,
// and construction/wiring. The fault-servicing pipeline itself lives in
// the stage files (see pipeline.go for the stage graph).

import (
	"fmt"

	"guvm/internal/faultinject"
	"guvm/internal/gpu"
	"guvm/internal/gpumem"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// blockState is the driver's per-VABlock bookkeeping.
type blockState struct {
	id mem.VABlockID
	// resident marks pages currently in GPU memory.
	resident mem.PageSet
	// populated marks pages that ever became GPU-resident: first-time
	// residency pays the page-population (zero-fill) cost.
	populated mem.PageSet
	// hasChunk: a 2 MB GPU chunk backs the block; chunk identifies it.
	hasChunk bool
	chunk    gpumem.ChunkID
	// dmaMapped: the block paid its compulsory first-touch DMA setup.
	dmaMapped bool
	// lastTouch is the batch counter of the last migration into the
	// block; LRU eviction picks the minimum ("essentially earliest
	// allocated", §5.4).
	lastTouch int
	// allocSeq orders chunk allocations for FIFO eviction and
	// deterministic LRU ties.
	allocSeq int
	// evictions counts how many times this block was evicted.
	evictions int
	// remoteMapped marks pages mapped for GPU access while staying in
	// host memory (access-counter architecture); always empty elsewhere.
	remoteMapped mem.PageSet
}

// Stats aggregates driver-level counters beyond per-batch records.
type Stats struct {
	Batches         int
	TotalFaults     int
	StaleFaults     int
	Evictions       int
	PrefetchedPages int
	// CrossBlockPages counts pages migrated by cross-VABlock prefetch.
	CrossBlockPages int
	MigratedPages   int
	WakeUps         int
	SpuriousWakeUps int
	// AsyncUnmapCalls/Time account preemptive unmapping performed off
	// the fault path at kernel launch.
	AsyncUnmapCalls int
	AsyncUnmapTime  sim.Time
	// MigRetries counts migration transfer attempts repeated after an
	// injected transient failure.
	MigRetries int
	// HostAllocFailures counts injected host allocation failures the
	// driver degraded around.
	HostAllocFailures int
	// BatchShrinks counts effective-batch-size halvings forced by host
	// allocation pressure.
	BatchShrinks int
	// ExplicitBytes counts bytes bulk-copied outside the fault path
	// (cudaMemcpy-style management); the audit subsystem reconciles it
	// against link accounting.
	ExplicitBytes uint64
	// InjMigRetryBytes counts bytes re-carried by injected transient
	// migration failures: the link charged them, but no batch record
	// counts them as migrated.
	InjMigRetryBytes uint64
	// RemoteMappedPages counts pages serviced by remote mapping instead
	// of migration; CounterPromotions counts blocks promoted to GPU
	// residency after their access counter crossed the threshold. Both
	// are only non-zero under the access-counter architecture.
	RemoteMappedPages int
	CounterPromotions int

	// Hardware fault-domain telemetry (all zero unless a hardware
	// injector is attached; see SetHardware).
	//
	// HWLinkRetries counts transfer attempts dropped by a flapping
	// link (each drop triggers a retry unless the budget is exhausted);
	// HWRetryToGPUBytes/HWRetryToHostBytes count the bytes those
	// dropped attempts carried (charged by the link, but not counted by
	// any batch record).
	HWLinkRetries      int
	HWRetryToGPUBytes  uint64
	HWRetryToHostBytes uint64
	// DegradedShrinks counts effective-batch halvings forced by the
	// degraded-aware batch-sizing policy observing an unhealthy link.
	DegradedShrinks int
	// RehomedBlocks/RehomedPages/RehomedBytes account the emergency
	// evacuation of GPU-resident pages to the host after device death;
	// ResidentAtKill is the resident-page count at the instant of death
	// (the page-conservation invariant requires RehomedPages to match).
	RehomedBlocks  int
	RehomedPages   int
	RehomedBytes   uint64
	ResidentAtKill int
}

// allocSpan records one managed allocation's VABlock range.
type allocSpan struct {
	first, last mem.VABlockID // inclusive
}

// batchScratch holds the per-batch working structures of the fault
// servicing pipeline. serviceBatch used to rebuild all of them for every
// 256-fault batch, which dominated the hot path's allocation profile;
// instead they are pooled here and cleared (never carried over, never
// shared) at the start of each batch. Nothing in a batch record may alias
// these buffers — everything retained by the trace.Collector is copied.
//
// Ownership across the stage pipeline: keys/uniq/nonStale/blockOrder
// are written by the dedup stage and read-only afterwards; inBatchExtra
// is appended by the cross-block stage, and inBatch() (blockOrder plus
// inBatchExtra) is read by eviction; blockCosts accumulates across the
// service and cross-block stages and is consumed by replay;
// pageIdx/migrate/spans are the transfer step's staging and
// evictPages/evictSpans eviction's (a separate pair because an eviction
// firing while a block's migration list is being staged is impossible
// today, but the split keeps the lifetimes trivially disjoint).
type batchScratch struct {
	// keys holds the dedup stage's packed (page, arrival) sort keys —
	// the struct-of-arrays replacement for the old per-batch maps.
	keys []uint64
	// uniq collects deduplicated pages (ascending); nonStale is uniq
	// minus already-resident pages, so per-VABlock groups are contiguous
	// runs and need no map.
	uniq     []mem.PageID
	nonStale []mem.PageID
	// blockOrder lists serviced VABlocks in ascending order; it doubles
	// as the eviction-avoidance set (inBatch), with inBatchExtra holding
	// the blocks the cross-block stage adds after dedup.
	blockOrder   []mem.VABlockID
	inBatchExtra []mem.VABlockID
	blockCosts   []sim.Time
	// pageIdx/migrate/spans are the transfer step's migration staging;
	// evictPages/evictSpans are evictOne's writeback staging.
	pageIdx    []int
	migrate    []mem.PageID
	spans      []mem.Span
	evictPages []mem.PageID
	evictSpans []mem.Span
}

// reset clears every buffer for a new batch, keeping capacity.
func (sc *batchScratch) reset(faults int) {
	sc.keys = sc.keys[:0]
	sc.uniq = sc.uniq[:0]
	sc.nonStale = sc.nonStale[:0]
	sc.blockOrder = sc.blockOrder[:0]
	sc.inBatchExtra = sc.inBatchExtra[:0]
	sc.blockCosts = sc.blockCosts[:0]
}

// Driver is the modeled nvidia-uvm driver: one worker servicing the fault
// buffer of one device, backed by the host OS and the interconnect.
type Driver struct {
	cfg  Config
	eng  *sim.Engine
	vm   *hostos.VM
	link *interconnect.Link
	dev  *gpu.Device
	pmm  *gpumem.Allocator

	// blocks is the per-VABlock state directory. A sparse two-level
	// structure instead of a map: GB-scale working sets touch thousands
	// of blocks and the residency probe is on the device's every memory
	// access, so lookups must be array indexes, not hashes. Entries are
	// *blockState, so d.allocated's pointers stay valid forever.
	blocks    mem.BlockDir[*blockState]
	allocated []*blockState // blocks holding GPU chunks, in alloc order
	nextSeq   int

	nextAlloc mem.Addr
	spans     []allocSpan

	sleeping   bool
	inBatch    bool
	batchCount int

	// effBatch is the adaptive effective batch size (== BatchSize when
	// AdaptiveBatch is off).
	effBatch int

	// evict/planner/sizer are the policies resolved from the registry at
	// construction (registry.go): victim selection, migration planning,
	// and effective-batch-size adjustment. arch is the resolved
	// architecture payload — the stage graph plus device wiring (arch.go);
	// stepCosts is the profiled path's per-step scratch (a fixed array so
	// construction stays allocation-neutral; architectures declare at
	// most maxBlockSteps steps).
	evict     EvictionStrategy
	planner   PrefetchPlanner
	sizer     BatchSizer
	arch      *archPayload
	stepCosts [maxBlockSteps]sim.Time

	evictRNG *sim.RNG
	inj      *faultinject.Injector

	// hw, when set, is the hardware fault domain: the transfer paths
	// retry flap-dropped link operations against it, and dead latches
	// once the device behind this driver was killed and its pages
	// re-homed (rehome.go).
	hw   *faultinject.HardwareInjector
	dead bool

	// arbiter, when set, serializes batch servicing with other drivers
	// sharing the host (multi-GPU).
	arbiter *Arbiter

	// onBatch holds the observers of every completed batch (audit and
	// observability hooks). They run in registration order after the
	// batch record lands in the Collector and before the next batch
	// starts. Empty in the common case, so the hot path pays only a
	// length check.
	onBatch []func(id int, rec *trace.BatchRecord)

	// prof, when set, receives stage-granularity pipeline events
	// (profiler.go); nil by default so the hot path pays one pointer
	// check per hook.
	prof PipelineProfiler

	// scratch/batch/block are the pooled per-batch working state of the
	// stage pipeline; batches never overlap on one driver (inBatch
	// guards), so reuse is safe. Stages own them only between
	// serviceBatch entry and the replay completion callback.
	scratch batchScratch
	batch   batchCtx
	block   blockCtx

	Collector *trace.Collector
	stats     Stats
}

// NewDriver builds a driver. Call Attach to wire it to a device before
// launching kernels; the driver is the device's ResidencyChecker. An
// invalid configuration is an error.
func NewDriver(cfg Config, eng *sim.Engine, vm *hostos.VM, link *interconnect.Link) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arch, err := resolveArchitecture(cfg.Architecture)
	if err != nil {
		return nil, err
	}
	if arch.configure != nil {
		// Architecture-specific config rewrites (cost model, threshold
		// defaults) apply to this driver's copy only.
		arch.configure(&cfg)
	}
	pmm := gpumem.New(cfg.GPUMemBytes)
	pmm.SetManager(arch.info.MappingOwner)
	return &Driver{
		cfg:       cfg,
		arch:      arch,
		eng:       eng,
		vm:        vm,
		link:      link,
		pmm:       pmm,
		nextAlloc: mem.VABlockSize, // keep address 0 unused
		sleeping:  true,
		effBatch:  cfg.BatchSize,
		evict:     resolveEvictionStrategy(cfg.Eviction),
		planner:   resolvePrefetchPlanner(cfg),
		sizer:     resolveBatchSizer(cfg),
		evictRNG:  sim.NewRNG(cfg.EvictionSeed),
		Collector: &trace.Collector{},
	}, nil
}

// Attach wires the driver to its device and registers the interrupt
// handler.
func (d *Driver) Attach(dev *gpu.Device) {
	d.dev = dev
	dev.SetInterruptHandler(d.onInterrupt)
	if d.cfg.Eviction == EvictLFU || d.arch.counters {
		dev.Counters.Enable()
	}
	if d.arch.counters {
		dev.Counters.SetThreshold(uint64(d.cfg.AccessCounterThreshold))
	}
	if d.arch.directObs {
		dev.SetDirectObservation()
	}
}

// SetArbiter makes the driver contend for the shared host service slot
// before each batch (multi-GPU configurations).
func (d *Driver) SetArbiter(a *Arbiter) { d.arbiter = a }

// AddBatchObserver registers fn to run at the end of every batch, after
// its record is collected. Observers run in registration order; the audit
// subsystem checks invariants and snapshots state digests here, and the
// observability layer derives phase spans and metric samples.
func (d *Driver) AddBatchObserver(fn func(id int, rec *trace.BatchRecord)) {
	d.onBatch = append(d.onBatch, fn)
}

// SetInjector attaches a fault injector to the driver's migration and
// host-allocation paths (and to the backing host VM). A nil injector (the
// default) disables injection.
func (d *Driver) SetInjector(in *faultinject.Injector) {
	d.inj = in
	d.vm.SetInjector(in)
}

// SetHardware attaches the hardware fault domain: link transfers become
// fallible (retried with deterministic backoff) and the driver can lose
// its device (RehomeToHost). A nil injector (the default) keeps every
// transfer on the guaranteed path, bit-identical to the pre-fault-domain
// model.
func (d *Driver) SetHardware(hw *faultinject.HardwareInjector) { d.hw = hw }

// Hardware returns the attached hardware fault domain (nil by default).
func (d *Driver) Hardware() *faultinject.HardwareInjector { return d.hw }

// Dead reports whether this driver's device was killed and its resident
// pages re-homed to the host.
func (d *Driver) Dead() bool { return d.dead }

// Config returns the driver configuration.
func (d *Driver) Config() Config { return d.cfg }

// Stats returns a copy of the driver counters.
func (d *Driver) Stats() Stats { return d.stats }

// HostVM returns the backing host OS model.
func (d *Driver) HostVM() *hostos.VM { return d.vm }

// Link returns the backing interconnect.
func (d *Driver) Link() *interconnect.Link { return d.link }

// AllocOption configures a managed allocation.
type AllocOption func(*allocOpts)

type allocOpts struct {
	hostInit    bool
	hostThreads int
}

// WithHostInit marks the allocation's pages as initialized by `threads`
// CPU threads: every page acquires a live CPU mapping, so the first GPU
// touch of each VABlock pays unmap_mapping_range (§4.4).
func WithHostInit(threads int) AllocOption {
	return func(o *allocOpts) {
		o.hostInit = true
		if threads < 1 {
			threads = 1
		}
		o.hostThreads = threads
	}
}

// Alloc reserves a managed (cudaMallocManaged-style) allocation of the
// given size, rounded up to whole VABlocks, and returns its base address.
func (d *Driver) Alloc(bytes uint64, opts ...AllocOption) mem.Addr {
	if bytes == 0 {
		panic("uvm: zero-byte allocation")
	}
	var o allocOpts
	for _, opt := range opts {
		opt(&o)
	}
	base := d.nextAlloc
	size := mem.Addr(mem.AlignUp(bytes, mem.VABlockSize))
	d.nextAlloc += size
	d.spans = append(d.spans, allocSpan{
		first: mem.VABlockOf(base),
		last:  mem.VABlockOf(base + size - 1),
	})
	if o.hostInit {
		nblocks := int(size / mem.VABlockSize)
		pagesLeft := int(mem.AlignUp(bytes, mem.PageSize) / mem.PageSize)
		for b := 0; b < nblocks; b++ {
			block := mem.VABlockOf(base) + mem.VABlockID(b)
			n := mem.PagesPerVABlock
			if pagesLeft < n {
				n = pagesLeft
			}
			for i := 0; i < n; i++ {
				d.vm.TouchCPU(block, i, i%o.hostThreads)
			}
			pagesLeft -= n
		}
	}
	return base
}

// TouchHost re-touches an allocation range from the CPU side with the
// given thread count: pages regain live CPU mappings (e.g. host phases
// between GPU kernels). GPU-resident pages are not affected.
func (d *Driver) TouchHost(base mem.Addr, bytes uint64, threads int) {
	if threads < 1 {
		threads = 1
	}
	first := mem.PageOf(base)
	n := int(mem.AlignUp(bytes, mem.PageSize) / mem.PageSize)
	for i := 0; i < n; i++ {
		p := first + mem.PageID(i)
		b := d.blocks.Lookup(p.VABlock())
		if b != nil && b.resident.Has(p.IndexInBlock()) {
			continue
		}
		d.vm.TouchCPU(p.VABlock(), p.IndexInBlock(), i%threads)
	}
}

// ExplicitCopyToGPU models explicit (cudaMemcpy-style) management of the
// range [base, base+bytes): one bulk transfer outside the fault path. All
// covered blocks become fully resident; the returned cost is the transfer
// time, which the caller must account to the virtual clock. It returns an
// error wrapping ErrCapacityExhausted if device memory cannot hold the
// data — explicit management cannot oversubscribe.
func (d *Driver) ExplicitCopyToGPU(base mem.Addr, bytes uint64) (sim.Time, error) {
	nblocks := int(mem.AlignUp(bytes, mem.VABlockSize) / mem.VABlockSize)
	if d.pmm.InUse()+nblocks > d.pmm.Capacity() {
		return 0, fmt.Errorf("uvm: explicit copy of %d blocks (%d in use of %d): %w",
			nblocks, d.pmm.InUse(), d.pmm.Capacity(), ErrCapacityExhausted)
	}
	first := mem.VABlockOf(base)
	for i := 0; i < nblocks; i++ {
		bid := first + mem.VABlockID(i)
		b := d.blocks.Lookup(bid)
		if b == nil {
			b = &blockState{id: bid}
			d.blocks.Set(bid, b)
		}
		if !b.hasChunk {
			id, ok := d.pmm.Alloc(bid)
			if !ok {
				return 0, fmt.Errorf("uvm: explicit copy allocation of block %d: %w",
					bid, ErrCapacityExhausted)
			}
			b.hasChunk = true
			b.chunk = id
			b.allocSeq = d.nextSeq
			d.nextSeq++
			d.allocated = append(d.allocated, b)
		}
		b.resident.SetAll()
		b.populated.SetAll()
		b.dmaMapped = true
		b.lastTouch = d.batchCount
	}
	d.stats.ExplicitBytes += bytes
	return d.link.TransferBytes(bytes, true), nil
}

// IsResidentOnGPU implements gpu.ResidencyChecker.
func (d *Driver) IsResidentOnGPU(p mem.PageID) bool {
	b := d.blocks.Lookup(p.VABlock())
	return b != nil && b.resident.Has(p.IndexInBlock())
}

// ResidentPages returns the count of GPU-resident pages (diagnostics).
func (d *Driver) ResidentPages() int {
	n := 0
	d.blocks.Range(func(_ mem.VABlockID, b *blockState) bool {
		n += b.resident.Count()
		return true
	})
	return n
}

// ChunksInUse returns how many 2 MB GPU chunks are allocated.
func (d *Driver) ChunksInUse() int { return d.pmm.InUse() }

// MemoryStats returns the physical allocator statistics.
func (d *Driver) MemoryStats() gpumem.Stats { return d.pmm.Stats() }
