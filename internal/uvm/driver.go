package uvm

import (
	"fmt"
	"sort"

	"guvm/internal/faultinject"
	"guvm/internal/gpu"
	"guvm/internal/gpumem"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// blockState is the driver's per-VABlock bookkeeping.
type blockState struct {
	id mem.VABlockID
	// resident marks pages currently in GPU memory.
	resident mem.PageSet
	// populated marks pages that ever became GPU-resident: first-time
	// residency pays the page-population (zero-fill) cost.
	populated mem.PageSet
	// hasChunk: a 2 MB GPU chunk backs the block; chunk identifies it.
	hasChunk bool
	chunk    gpumem.ChunkID
	// dmaMapped: the block paid its compulsory first-touch DMA setup.
	dmaMapped bool
	// lastTouch is the batch counter of the last migration into the
	// block; LRU eviction picks the minimum ("essentially earliest
	// allocated", §5.4).
	lastTouch int
	// allocSeq orders chunk allocations for FIFO eviction and
	// deterministic LRU ties.
	allocSeq int
	// evictions counts how many times this block was evicted.
	evictions int
}

// Stats aggregates driver-level counters beyond per-batch records.
type Stats struct {
	Batches         int
	TotalFaults     int
	StaleFaults     int
	Evictions       int
	PrefetchedPages int
	// CrossBlockPages counts pages migrated by cross-VABlock prefetch.
	CrossBlockPages int
	MigratedPages   int
	WakeUps         int
	SpuriousWakeUps int
	// AsyncUnmapCalls/Time account preemptive unmapping performed off
	// the fault path at kernel launch.
	AsyncUnmapCalls int
	AsyncUnmapTime  sim.Time
	// MigRetries counts migration transfer attempts repeated after an
	// injected transient failure.
	MigRetries int
	// HostAllocFailures counts injected host allocation failures the
	// driver degraded around.
	HostAllocFailures int
	// BatchShrinks counts effective-batch-size halvings forced by host
	// allocation pressure.
	BatchShrinks int
	// ExplicitBytes counts bytes bulk-copied outside the fault path
	// (cudaMemcpy-style management); the audit subsystem reconciles it
	// against link accounting.
	ExplicitBytes uint64
	// InjMigRetryBytes counts bytes re-carried by injected transient
	// migration failures: the link charged them, but no batch record
	// counts them as migrated.
	InjMigRetryBytes uint64
}

// allocSpan records one managed allocation's VABlock range.
type allocSpan struct {
	first, last mem.VABlockID // inclusive
}

// batchScratch holds the per-batch working structures of the fault
// servicing pipeline. serviceBatch used to rebuild all of them for every
// 256-fault batch, which dominated the hot path's allocation profile;
// instead they are pooled here and cleared (never carried over, never
// shared) at the start of each batch. Nothing in a batch record may alias
// these buffers — everything retained by the trace.Collector is copied.
type batchScratch struct {
	// seen maps each unique faulted page to the µTLB of its first fault,
	// for duplicate classification (§4.2).
	seen map[mem.PageID]int
	// rawPerBlock counts raw (duplicate-inclusive) faults per VABlock.
	rawPerBlock map[mem.VABlockID]int
	// inThisBatch marks VABlocks being serviced by the current batch, so
	// eviction avoids immediately re-faulting victims.
	inThisBatch map[mem.VABlockID]bool
	// uniq collects deduplicated pages; nonStale is uniq minus
	// already-resident pages, sorted, so per-VABlock groups are
	// contiguous runs and need no map.
	uniq     []mem.PageID
	nonStale []mem.PageID
	// blockOrder lists serviced VABlocks in ascending order.
	blockOrder []mem.VABlockID
	rawBlocks  []mem.VABlockID
	blockCosts []sim.Time
	// pageIdx/migrate/spans are serviceBlock's migration staging;
	// evictPages/evictSpans are evictOne's writeback staging (a separate
	// pair because evictions fire while a block's migration list is
	// being staged is impossible today, but the split keeps the
	// lifetimes trivially disjoint).
	pageIdx    []int
	migrate    []mem.PageID
	spans      []mem.Span
	evictPages []mem.PageID
	evictSpans []mem.Span
}

// reset clears every buffer for a new batch, keeping capacity.
func (sc *batchScratch) reset(faults int) {
	if sc.seen == nil {
		sc.seen = make(map[mem.PageID]int, faults)
		sc.rawPerBlock = make(map[mem.VABlockID]int)
		sc.inThisBatch = make(map[mem.VABlockID]bool)
	}
	clear(sc.seen)
	clear(sc.rawPerBlock)
	clear(sc.inThisBatch)
	sc.uniq = sc.uniq[:0]
	sc.nonStale = sc.nonStale[:0]
	sc.blockOrder = sc.blockOrder[:0]
	sc.rawBlocks = sc.rawBlocks[:0]
	sc.blockCosts = sc.blockCosts[:0]
}

// Driver is the modeled nvidia-uvm driver: one worker servicing the fault
// buffer of one device, backed by the host OS and the interconnect.
type Driver struct {
	cfg  Config
	eng  *sim.Engine
	vm   *hostos.VM
	link *interconnect.Link
	dev  *gpu.Device
	pmm  *gpumem.Allocator

	blocks    map[mem.VABlockID]*blockState
	allocated []*blockState // blocks holding GPU chunks, in alloc order
	nextSeq   int

	nextAlloc mem.Addr
	spans     []allocSpan

	sleeping   bool
	inBatch    bool
	batchCount int

	// effBatch is the adaptive effective batch size (== BatchSize when
	// AdaptiveBatch is off).
	effBatch int

	evictRNG *sim.RNG
	inj      *faultinject.Injector

	// arbiter, when set, serializes batch servicing with other drivers
	// sharing the host (multi-GPU).
	arbiter *Arbiter

	// onBatch holds the observers of every completed batch (audit and
	// observability hooks). They run in registration order after the
	// batch record lands in the Collector and before the next batch
	// starts. Empty in the common case, so the hot path pays only a
	// length check.
	onBatch []func(id int, rec *trace.BatchRecord)

	// scratch is the pooled per-batch working state; batches never
	// overlap on one driver (inBatch guards), so reuse is safe.
	scratch batchScratch

	Collector *trace.Collector
	stats     Stats
}

// NewDriver builds a driver. Call Attach to wire it to a device before
// launching kernels; the driver is the device's ResidencyChecker. An
// invalid configuration is an error.
func NewDriver(cfg Config, eng *sim.Engine, vm *hostos.VM, link *interconnect.Link) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Driver{
		cfg:       cfg,
		eng:       eng,
		vm:        vm,
		link:      link,
		pmm:       gpumem.New(cfg.GPUMemBytes),
		blocks:    make(map[mem.VABlockID]*blockState),
		nextAlloc: mem.VABlockSize, // keep address 0 unused
		sleeping:  true,
		effBatch:  cfg.BatchSize,
		evictRNG:  sim.NewRNG(cfg.EvictionSeed),
		Collector: &trace.Collector{},
	}, nil
}

// Attach wires the driver to its device and registers the interrupt
// handler.
func (d *Driver) Attach(dev *gpu.Device) {
	d.dev = dev
	dev.SetInterruptHandler(d.onInterrupt)
	if d.cfg.Eviction == EvictLFU {
		dev.Counters.Enable()
	}
}

// SetArbiter makes the driver contend for the shared host service slot
// before each batch (multi-GPU configurations).
func (d *Driver) SetArbiter(a *Arbiter) { d.arbiter = a }

// AddBatchObserver registers fn to run at the end of every batch, after
// its record is collected. Observers run in registration order; the audit
// subsystem checks invariants and snapshots state digests here, and the
// observability layer derives phase spans and metric samples.
func (d *Driver) AddBatchObserver(fn func(id int, rec *trace.BatchRecord)) {
	d.onBatch = append(d.onBatch, fn)
}

// SetInjector attaches a fault injector to the driver's migration and
// host-allocation paths (and to the backing host VM). A nil injector (the
// default) disables injection.
func (d *Driver) SetInjector(in *faultinject.Injector) {
	d.inj = in
	d.vm.SetInjector(in)
}

// Config returns the driver configuration.
func (d *Driver) Config() Config { return d.cfg }

// Stats returns a copy of the driver counters.
func (d *Driver) Stats() Stats { return d.stats }

// HostVM returns the backing host OS model.
func (d *Driver) HostVM() *hostos.VM { return d.vm }

// Link returns the backing interconnect.
func (d *Driver) Link() *interconnect.Link { return d.link }

// AllocOption configures a managed allocation.
type AllocOption func(*allocOpts)

type allocOpts struct {
	hostInit    bool
	hostThreads int
}

// WithHostInit marks the allocation's pages as initialized by `threads`
// CPU threads: every page acquires a live CPU mapping, so the first GPU
// touch of each VABlock pays unmap_mapping_range (§4.4).
func WithHostInit(threads int) AllocOption {
	return func(o *allocOpts) {
		o.hostInit = true
		if threads < 1 {
			threads = 1
		}
		o.hostThreads = threads
	}
}

// Alloc reserves a managed (cudaMallocManaged-style) allocation of the
// given size, rounded up to whole VABlocks, and returns its base address.
func (d *Driver) Alloc(bytes uint64, opts ...AllocOption) mem.Addr {
	if bytes == 0 {
		panic("uvm: zero-byte allocation")
	}
	var o allocOpts
	for _, opt := range opts {
		opt(&o)
	}
	base := d.nextAlloc
	size := mem.Addr(mem.AlignUp(bytes, mem.VABlockSize))
	d.nextAlloc += size
	d.spans = append(d.spans, allocSpan{
		first: mem.VABlockOf(base),
		last:  mem.VABlockOf(base + size - 1),
	})
	if o.hostInit {
		nblocks := int(size / mem.VABlockSize)
		pagesLeft := int(mem.AlignUp(bytes, mem.PageSize) / mem.PageSize)
		for b := 0; b < nblocks; b++ {
			block := mem.VABlockOf(base) + mem.VABlockID(b)
			n := mem.PagesPerVABlock
			if pagesLeft < n {
				n = pagesLeft
			}
			for i := 0; i < n; i++ {
				d.vm.TouchCPU(block, i, i%o.hostThreads)
			}
			pagesLeft -= n
		}
	}
	return base
}

// TouchHost re-touches an allocation range from the CPU side with the
// given thread count: pages regain live CPU mappings (e.g. host phases
// between GPU kernels). GPU-resident pages are not affected.
func (d *Driver) TouchHost(base mem.Addr, bytes uint64, threads int) {
	if threads < 1 {
		threads = 1
	}
	first := mem.PageOf(base)
	n := int(mem.AlignUp(bytes, mem.PageSize) / mem.PageSize)
	for i := 0; i < n; i++ {
		p := first + mem.PageID(i)
		b := d.blocks[p.VABlock()]
		if b != nil && b.resident.Has(p.IndexInBlock()) {
			continue
		}
		d.vm.TouchCPU(p.VABlock(), p.IndexInBlock(), i%threads)
	}
}

// ExplicitCopyToGPU models explicit (cudaMemcpy-style) management of the
// range [base, base+bytes): one bulk transfer outside the fault path. All
// covered blocks become fully resident; the returned cost is the transfer
// time, which the caller must account to the virtual clock. It returns an
// error wrapping ErrCapacityExhausted if device memory cannot hold the
// data — explicit management cannot oversubscribe.
func (d *Driver) ExplicitCopyToGPU(base mem.Addr, bytes uint64) (sim.Time, error) {
	nblocks := int(mem.AlignUp(bytes, mem.VABlockSize) / mem.VABlockSize)
	if d.pmm.InUse()+nblocks > d.pmm.Capacity() {
		return 0, fmt.Errorf("uvm: explicit copy of %d blocks (%d in use of %d): %w",
			nblocks, d.pmm.InUse(), d.pmm.Capacity(), ErrCapacityExhausted)
	}
	first := mem.VABlockOf(base)
	for i := 0; i < nblocks; i++ {
		bid := first + mem.VABlockID(i)
		b := d.blocks[bid]
		if b == nil {
			b = &blockState{id: bid}
			d.blocks[bid] = b
		}
		if !b.hasChunk {
			id, ok := d.pmm.Alloc(bid)
			if !ok {
				return 0, fmt.Errorf("uvm: explicit copy allocation of block %d: %w",
					bid, ErrCapacityExhausted)
			}
			b.hasChunk = true
			b.chunk = id
			b.allocSeq = d.nextSeq
			d.nextSeq++
			d.allocated = append(d.allocated, b)
		}
		b.resident.SetAll()
		b.populated.SetAll()
		b.dmaMapped = true
		b.lastTouch = d.batchCount
	}
	d.stats.ExplicitBytes += bytes
	return d.link.TransferBytes(bytes, true), nil
}

// IsResidentOnGPU implements gpu.ResidencyChecker.
func (d *Driver) IsResidentOnGPU(p mem.PageID) bool {
	b := d.blocks[p.VABlock()]
	return b != nil && b.resident.Has(p.IndexInBlock())
}

// ResidentPages returns the count of GPU-resident pages (diagnostics).
func (d *Driver) ResidentPages() int {
	n := 0
	for _, b := range d.blocks {
		n += b.resident.Count()
	}
	return n
}

// ChunksInUse returns how many 2 MB GPU chunks are allocated.
func (d *Driver) ChunksInUse() int { return d.pmm.InUse() }

// MemoryStats returns the physical allocator statistics.
func (d *Driver) MemoryStats() gpumem.Stats { return d.pmm.Stats() }

// onInterrupt is the device's interrupt line: wake the worker if asleep.
func (d *Driver) onInterrupt() {
	if !d.sleeping {
		d.stats.SpuriousWakeUps++
		return
	}
	d.sleeping = false
	d.stats.WakeUps++
	d.eng.Schedule(d.cfg.Costs.WakeupLatency, d.startBatch)
}

// startBatch opens a batch: acquire the (possibly shared) service slot,
// charge setup, then drain the buffer.
func (d *Driver) startBatch() {
	if d.inBatch {
		return
	}
	if d.dev.Buffer.Len() == 0 {
		d.sleeping = true
		return
	}
	d.inBatch = true
	if d.arbiter != nil {
		d.arbiter.Acquire(d.beginBatch)
		return
	}
	d.beginBatch()
}

// beginBatch runs once the service slot is held.
func (d *Driver) beginBatch() {
	start := d.eng.Now()
	d.eng.Schedule(d.cfg.Costs.BatchSetup, func() {
		d.fetchLoop(start, nil, 0)
	})
}

// fetchLoop reads fault records until the batch limit is reached or the
// buffer stays empty — the default retrieval policy (§2.2). Reading takes
// time, so faults arriving during the drain extend the batch.
func (d *Driver) fetchLoop(start sim.Time, faults []gpu.Fault, tFetch sim.Time) {
	got := d.dev.Buffer.Fetch(d.effBatch - len(faults))
	faults = append(faults, got...)
	cost := sim.Time(len(got)) * d.cfg.Costs.FetchPerFault
	tFetch += cost
	d.eng.Schedule(cost, func() {
		if len(faults) < d.effBatch && d.dev.Buffer.Len() > 0 {
			d.fetchLoop(start, faults, tFetch)
			return
		}
		d.serviceBatch(start, faults, tFetch)
	})
}

// serviceBatch performs the whole servicing pipeline, computes its
// virtual-time cost, and schedules the replay at batch end.
func (d *Driver) serviceBatch(start sim.Time, faults []gpu.Fault, tFetch sim.Time) {
	rec := trace.BatchRecord{
		Start:     start,
		RawFaults: len(faults),
		TFetch:    tFetch,
	}
	if d.dev != nil {
		rec.FaultsPerSM = make([]uint16, d.dev.Config().NumSMs)
	}

	// --- Dedup (§4.2): classify duplicates by µTLB of origin. ---
	sc := &d.scratch
	sc.reset(len(faults))
	for _, f := range faults {
		rec.FaultsPerSM[f.SM]++
		if firstUTLB, ok := sc.seen[f.Page]; ok {
			if f.UTLB == firstUTLB {
				rec.Type1Dups++
			} else {
				rec.Type2Dups++
			}
			continue
		}
		sc.seen[f.Page] = f.UTLB
		sc.uniq = append(sc.uniq, f.Page)
	}
	rec.TDedup = sim.Time(len(faults)) * d.cfg.Costs.DedupPerFault
	rec.UniquePages = len(sc.uniq)

	// Group unique, non-stale pages by VABlock, in ascending order: the
	// driver processes all batch faults within one VABlock together.
	// Sorted pages make each VABlock's group a contiguous run of
	// nonStale, so no per-block map is needed.
	sort.Slice(sc.uniq, func(i, j int) bool { return sc.uniq[i] < sc.uniq[j] })
	for _, p := range sc.uniq {
		if d.IsResidentOnGPU(p) {
			rec.StalePages++
			d.stats.StaleFaults++
			continue
		}
		if b := p.VABlock(); len(sc.blockOrder) == 0 || sc.blockOrder[len(sc.blockOrder)-1] != b {
			sc.blockOrder = append(sc.blockOrder, b)
		}
		sc.nonStale = append(sc.nonStale, p)
	}
	rec.VABlocks = len(sc.blockOrder)

	// Raw fault distribution over VABlocks (Table 3): counts include
	// duplicates, in ascending block order.
	for _, f := range faults {
		sc.rawPerBlock[f.Page.VABlock()]++
	}
	for b := range sc.rawPerBlock {
		sc.rawBlocks = append(sc.rawBlocks, b)
	}
	sort.Slice(sc.rawBlocks, func(i, j int) bool { return sc.rawBlocks[i] < sc.rawBlocks[j] })
	rec.VABlockFaults = make([]uint16, len(sc.rawBlocks))
	for i, b := range sc.rawBlocks {
		n := sc.rawPerBlock[b]
		if n > 65535 {
			n = 65535
		}
		rec.VABlockFaults[i] = uint16(n)
	}

	// --- Per-VABlock servicing. ---
	for _, bid := range sc.blockOrder {
		sc.inThisBatch[bid] = true
	}
	rec.ServicedBlocks = append(rec.ServicedBlocks, sc.blockOrder...)
	var total sim.Time
	total += d.cfg.Costs.BatchSetup + tFetch + rec.TDedup
	for lo := 0; lo < len(sc.nonStale); {
		bid := sc.nonStale[lo].VABlock()
		hi := lo + 1
		for hi < len(sc.nonStale) && sc.nonStale[hi].VABlock() == bid {
			hi++
		}
		c, err := d.serviceBlock(bid, sc.nonStale[lo:hi], sc.inThisBatch, &rec)
		if err != nil {
			d.fail(err)
			return
		}
		sc.blockCosts = append(sc.blockCosts, c)
		lo = hi
	}
	// Cross-VABlock prefetch (§6 extension): eagerly migrate blocks
	// following fully-resident faulting blocks.
	if d.cfg.CrossBlockPrefetch > 0 {
		cs, err := d.crossBlockPrefetch(sc.blockOrder, sc.inThisBatch, &rec)
		if err != nil {
			d.fail(err)
			return
		}
		sc.blockCosts = append(sc.blockCosts, cs...)
	}
	// The shipped driver services blocks serially; with ServiceWorkers
	// > 1 the batch's block time is the parallel makespan (§6's proposed
	// parallelization — imbalance across VABlocks limits the gain).
	total += makespan(sc.blockCosts, d.cfg.ServiceWorkers, d.cfg.LoadBalanceLPT, d.cfg.WorkerSync)

	// --- Replay. ---
	rec.TReplay = d.cfg.Costs.ReplayCost
	total += rec.TReplay

	d.eng.Schedule(total-tFetch-d.cfg.Costs.BatchSetup, func() {
		d.dev.Buffer.Flush()
		d.dev.Replay()
		rec.End = d.eng.Now()
		id := d.Collector.AddBatch(rec)
		d.Collector.AddFaults(id, faults)
		d.updateAdaptiveBatch(&rec)
		d.batchCount++
		d.stats.Batches++
		d.stats.TotalFaults += len(faults)
		d.inBatch = false
		if d.arbiter != nil {
			d.arbiter.Release()
		}
		for _, fn := range d.onBatch {
			fn(id, &d.Collector.Batches[id])
		}
		// Service the next batch if faults are already waiting;
		// otherwise sleep until the next interrupt.
		d.startBatch()
	})
}

// fail aborts the run with err as its terminal error, releasing the
// shared service slot so diagnostics from other drivers stay coherent.
func (d *Driver) fail(err error) {
	d.inBatch = false
	if d.arbiter != nil {
		d.arbiter.Release()
	}
	d.eng.Fail(err)
}

// serviceBlock services one VABlock's faulted pages and returns its cost.
func (d *Driver) serviceBlock(bid mem.VABlockID, pages []mem.PageID, inThisBatch map[mem.VABlockID]bool, rec *trace.BatchRecord) (sim.Time, error) {
	cost := d.cfg.Costs.PerVABlock
	rec.TBlockMgmt += d.cfg.Costs.PerVABlock

	b := d.blocks[bid]
	if b == nil {
		b = &blockState{id: bid}
		d.blocks[bid] = b
	}

	// Backing chunk: allocate, evicting if device memory is full.
	if !b.hasChunk {
		id, ok := d.pmm.Alloc(bid)
		for !ok {
			c, err := d.evictOne(bid, inThisBatch, rec)
			cost += c
			if err != nil {
				return cost, err
			}
			id, ok = d.pmm.Alloc(bid)
		}
		b.hasChunk = true
		b.chunk = id
		b.allocSeq = d.nextSeq
		d.nextSeq++
		d.allocated = append(d.allocated, b)
	}
	b.lastTouch = d.batchCount

	// Compulsory first-touch DMA mapping setup for the whole block
	// (§5.2), dominated by radix-tree work in hostos.
	if !b.dmaMapped {
		t := d.vm.MapDMA(bid)
		cost += t
		rec.TDMAMap += t
		rec.NewDMABlocks++
		b.dmaMapped = true
	}

	// CPU unmapping: the GPU touched a block partially resident on the
	// host (§4.4).
	if d.vm.CPUMappedPages(bid) > 0 {
		t, n := d.vm.UnmapMappingRange(bid)
		cost += t
		rec.TUnmap += t
		rec.UnmapPages += n
	}

	// Faulted page set within the block.
	var faulted mem.PageSet
	for _, p := range pages {
		faulted.Set(p.IndexInBlock())
	}

	// Prefetch within the block (§5.2).
	var toMigrate mem.PageSet
	toMigrate.Union(&faulted)
	if d.cfg.PrefetchEnabled {
		extra := PrefetchPages(&b.resident, &faulted, d.cfg.PrefetchThreshold, d.cfg.Upgrade64K)
		nExtra := extra.Count()
		rec.PrefetchedPages += nExtra
		d.stats.PrefetchedPages += nExtra
		toMigrate.Union(&extra)
	}

	// Page population: zero-fill pages becoming resident for the first
	// time (§5.1).
	var newPages mem.PageSet
	newPages.Union(&toMigrate)
	newPages.Subtract(&b.populated)
	if n := newPages.Count(); n > 0 {
		t, err := d.populateWithRetry(bid, n, inThisBatch, rec)
		cost += t
		if err != nil {
			return cost, err
		}
	}

	// Migration: coalesce into spans and move over the link. The staging
	// buffers are batch scratch: nothing below retains them (the record
	// copies span values), and no eviction can fire past this point.
	sc := &d.scratch
	sc.pageIdx = toMigrate.Indices(sc.pageIdx[:0])
	sc.migrate = sc.migrate[:0]
	for _, pi := range sc.pageIdx {
		sc.migrate = append(sc.migrate, bid.PageAt(pi))
	}
	migrating := sc.migrate
	spans := mem.CoalescePagesInto(sc.spans[:0], migrating)
	sc.spans = spans
	t, err := d.transferWithRetry(bid, spans, rec)
	cost += t
	if err != nil {
		return cost, err
	}
	rec.TTransfer += t
	rec.PagesMigrated += len(migrating)
	rec.BytesMigrated += uint64(len(migrating)) * mem.PageSize
	d.stats.MigratedPages += len(migrating)
	rec.ServicedSpans = append(rec.ServicedSpans, spans...)

	// GPU page-table updates.
	pt := sim.Time(len(migrating)) * d.cfg.Costs.PageTablePerPage
	cost += pt
	rec.TPageTable += pt

	// Mark residency.
	b.resident.Union(&toMigrate)
	b.populated.Union(&toMigrate)
	return cost, nil
}

// populateWithRetry asks the host OS to populate n pages of block bid,
// degrading gracefully on injected allocation failures: each failure
// shrinks the effective batch size and sheds one device chunk (relieving
// the memory pressure the failure models) before retrying, up to the
// injector's budget. The accumulated cost includes the forced evictions.
func (d *Driver) populateWithRetry(bid mem.VABlockID, n int, inThisBatch map[mem.VABlockID]bool, rec *trace.BatchRecord) (sim.Time, error) {
	var cost, popCost sim.Time
	budget := d.inj.HostAllocRetryBudget()
	for attempt := 0; ; attempt++ {
		t, err := d.vm.Populate(n)
		cost += t
		popCost += t
		if err == nil {
			if attempt > 0 {
				d.inj.NoteRecovered(faultinject.HostAlloc)
			}
			// Forced-eviction cost is already in rec.TEvict; only the
			// population time lands in TPopulate.
			rec.TPopulate += popCost
			return cost, nil
		}
		d.stats.HostAllocFailures++
		rec.InjHostAllocFails++
		if attempt >= budget {
			d.inj.NoteUnrecovered(faultinject.HostAlloc)
			return cost, fmt.Errorf("uvm: populating %d pages of block %d (attempt %d): %w",
				n, bid, attempt+1, err)
		}
		d.inj.NoteRetried(faultinject.HostAlloc)
		d.shrinkBatch()
		if d.hasEvictionCandidate(bid) {
			c, eerr := d.evictOne(bid, inThisBatch, rec)
			cost += c
			if eerr != nil {
				return cost, eerr
			}
		}
	}
}

// shrinkBatch halves the effective batch size down to the adaptive floor,
// the driver's batch-pressure response to host allocation failure. With
// AdaptiveBatch enabled, later duplicate-light batches grow it back.
func (d *Driver) shrinkBatch() {
	floor := d.cfg.AdaptiveMin
	if floor < 1 {
		floor = 1
	}
	if d.effBatch <= floor {
		return
	}
	d.effBatch /= 2
	if d.effBatch < floor {
		d.effBatch = floor
	}
	d.stats.BatchShrinks++
}

// hasEvictionCandidate reports whether any allocated block other than
// current could be evicted.
func (d *Driver) hasEvictionCandidate(current mem.VABlockID) bool {
	for _, b := range d.allocated {
		if b.id != current {
			return true
		}
	}
	return false
}

// transferWithRetry migrates spans of block bid over the link. Each
// injected transient failure re-pays the full transfer cost (the link
// carried the bytes before failing) plus an exponential virtual-time
// backoff; exhausting the retry budget is fatal. Only the final
// successful attempt counts toward the batch's migrated bytes.
func (d *Driver) transferWithRetry(bid mem.VABlockID, spans []mem.Span, rec *trace.BatchRecord) (sim.Time, error) {
	failures, fatal := d.inj.MigrateFailures()
	var cost sim.Time
	for i := 0; i < failures; i++ {
		cost += d.link.TransferSpans(spans, true)
		cost += d.inj.MigrateBackoffFor(i)
		for _, sp := range spans {
			d.stats.InjMigRetryBytes += sp.Bytes()
		}
		d.stats.MigRetries++
		rec.InjMigFailures++
	}
	if fatal {
		return cost, fmt.Errorf("uvm: migrating block %d: %d transfer attempts failed: %w",
			bid, failures, ErrMigrationFailed)
	}
	return cost + d.link.TransferSpans(spans, true), nil
}

// evictOne evicts the least-recently-touched block and returns the
// eviction cost. Blocks being serviced in the current batch are only
// victims of last resort (evicting them would immediately re-fault), and
// the block currently allocating is never evicted; if that leaves no
// victim, the error wraps ErrCapacityExhausted.
func (d *Driver) evictOne(current mem.VABlockID, inThisBatch map[mem.VABlockID]bool, rec *trace.BatchRecord) (sim.Time, error) {
	pick := func(avoidBatch bool) (*blockState, int) {
		var candidates []int
		for i, b := range d.allocated {
			if b.id == current {
				continue
			}
			if avoidBatch && inThisBatch[b.id] {
				continue
			}
			candidates = append(candidates, i)
		}
		if len(candidates) == 0 {
			return nil, -1
		}
		vi := candidates[0]
		switch d.cfg.Eviction {
		case EvictRandom:
			vi = candidates[d.evictRNG.Intn(len(candidates))]
		case EvictFIFO:
			for _, i := range candidates[1:] {
				if d.allocated[i].allocSeq < d.allocated[vi].allocSeq {
					vi = i
				}
			}
		case EvictLFU:
			read := func(i int) uint64 { return d.dev.Counters.Read(d.allocated[i].id) }
			for _, i := range candidates[1:] {
				if read(i) < read(vi) ||
					(read(i) == read(vi) && d.allocated[i].allocSeq < d.allocated[vi].allocSeq) {
					vi = i
				}
			}
		default: // EvictLRU
			for _, i := range candidates[1:] {
				b, v := d.allocated[i], d.allocated[vi]
				if b.lastTouch < v.lastTouch ||
					(b.lastTouch == v.lastTouch && b.allocSeq < v.allocSeq) {
					vi = i
				}
			}
		}
		return d.allocated[vi], vi
	}
	victim, vi := pick(true)
	if victim == nil {
		victim, vi = pick(false)
	}
	if victim == nil {
		return 0, fmt.Errorf("uvm: cannot evict: capacity %d blocks all pinned: %w",
			d.cfg.CapacityBlocks(), ErrCapacityExhausted)
	}

	cost := d.cfg.Costs.EvictBase
	sc := &d.scratch
	sc.evictPages = victim.resident.Pages(sc.evictPages[:0], victim.id)
	if len(sc.evictPages) > 0 {
		// Write back resident pages to the host. The data lands in
		// host memory but is NOT remapped to the CPU: a later GPU
		// re-fetch pays no unmap cost (Figure 13's cost levels).
		spans := mem.CoalescePagesInto(sc.evictSpans[:0], sc.evictPages)
		sc.evictSpans = spans
		cost += d.link.TransferSpans(spans, false)
		cost += sim.Time(len(sc.evictPages)) * d.cfg.Costs.EvictPerPage
		rec.EvictedBytes += uint64(len(sc.evictPages)) * mem.PageSize
	}
	victim.resident.Reset()
	victim.hasChunk = false
	d.dev.Counters.Clear(victim.id)
	d.pmm.Release(victim.chunk)
	victim.evictions++
	d.allocated = append(d.allocated[:vi], d.allocated[vi+1:]...)

	rec.Evictions++
	rec.EvictedBlocks = append(rec.EvictedBlocks, victim.id)
	rec.TEvict += cost
	d.stats.Evictions++
	return cost, nil
}
