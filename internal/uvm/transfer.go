package uvm

// transfer.go — the populate and transfer block steps: first-touch page
// population (§5.1), span coalescing, the link transfer, and GPU
// page-table updates, including the injected-failure retry paths.
//
// Profiler attribution: the populate step's cost (including injected
// host-allocation recovery) fills the populate slot of the per-block
// step decomposition; the transfer step's — link transfer, retries,
// page-table update — fills the transfer slot.

import (
	"errors"
	"fmt"

	"guvm/internal/faultinject"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// populateStep zero-fills the pages of the migration set becoming
// resident for the first time (§5.1), degrading gracefully on injected
// host allocation failures.
type populateStep struct{}

func (populateStep) name() string { return "populate" }

func (populateStep) run(d *Driver, bc *batchCtx, blk *blockCtx) error {
	var newPages mem.PageSet
	newPages.Union(&blk.toMigrate)
	newPages.Subtract(&blk.b.populated)
	if n := newPages.Count(); n > 0 {
		t, err := d.populateWithRetry(blk.bid, n, bc)
		blk.cost += t
		if err != nil {
			return err
		}
	}
	return nil
}

// transferStep coalesces the migration set into spans, moves them over
// the link (retrying injected transient failures), charges the GPU
// page-table updates, and marks residency. The staging buffers are batch
// scratch: nothing below retains them (the record copies span values),
// and no eviction can fire past this point in the block.
type transferStep struct{}

func (transferStep) name() string { return "transfer" }

func (transferStep) run(d *Driver, bc *batchCtx, blk *blockCtx) error {
	sc := bc.sc
	rec := &bc.rec
	sc.pageIdx = blk.toMigrate.Indices(sc.pageIdx[:0])
	sc.migrate = sc.migrate[:0]
	for _, pi := range sc.pageIdx {
		sc.migrate = append(sc.migrate, blk.bid.PageAt(pi))
	}
	migrating := sc.migrate
	spans := mem.CoalescePagesInto(sc.spans[:0], migrating)
	sc.spans = spans
	t, err := d.transferWithRetry(blk.bid, spans, rec)
	blk.cost += t
	if err != nil {
		return err
	}
	rec.TTransfer += t
	rec.PagesMigrated += len(migrating)
	rec.BytesMigrated += uint64(len(migrating)) * mem.PageSize
	d.stats.MigratedPages += len(migrating)
	rec.ServicedSpans = append(rec.ServicedSpans, spans...)
	if blk.eager {
		// Cross-block migrations account their pages as prefetched and
		// record the block as serviced (it had no faults of its own).
		rec.PrefetchedPages += mem.PagesPerVABlock
		rec.ServicedBlocks = append(rec.ServicedBlocks, blk.bid)
		d.stats.PrefetchedPages += mem.PagesPerVABlock
		d.stats.CrossBlockPages += mem.PagesPerVABlock
	}

	// GPU page-table updates.
	pt := sim.Time(len(migrating)) * d.cfg.Costs.PageTablePerPage
	blk.cost += pt
	rec.TPageTable += pt

	// Mark residency. Migrated pages stop being remote-mapped (the
	// access-counter promotion path); the subtract is a no-op elsewhere.
	blk.b.resident.Union(&blk.toMigrate)
	blk.b.populated.Union(&blk.toMigrate)
	blk.b.remoteMapped.Subtract(&blk.toMigrate)
	return nil
}

// populateWithRetry asks the host OS to populate n pages of block bid,
// degrading gracefully on injected allocation failures: each failure
// shrinks the effective batch size and sheds one device chunk (relieving
// the memory pressure the failure models) before retrying, up to the
// injector's budget. The accumulated cost includes the forced evictions.
func (d *Driver) populateWithRetry(bid mem.VABlockID, n int, bc *batchCtx) (sim.Time, error) {
	var cost, popCost sim.Time
	budget := d.inj.HostAllocRetryBudget()
	for attempt := 0; ; attempt++ {
		t, err := d.vm.Populate(n)
		cost += t
		popCost += t
		if err == nil {
			if attempt > 0 {
				d.inj.NoteRecovered(faultinject.HostAlloc)
			}
			// Forced-eviction cost is already in rec.TEvict; only the
			// population time lands in TPopulate.
			bc.rec.TPopulate += popCost
			return cost, nil
		}
		d.stats.HostAllocFailures++
		bc.rec.InjHostAllocFails++
		if attempt >= budget {
			d.inj.NoteUnrecovered(faultinject.HostAlloc)
			return cost, fmt.Errorf("uvm: populating %d pages of block %d (attempt %d): %w",
				n, bid, attempt+1, err)
		}
		d.inj.NoteRetried(faultinject.HostAlloc)
		d.shrinkBatch()
		if d.hasEvictionCandidate(bid) {
			c, eerr := d.evictOne(bid, bc)
			cost += c
			if eerr != nil {
				return cost, eerr
			}
		}
	}
}

// shrinkBatch halves the effective batch size down to the adaptive floor,
// the driver's batch-pressure response to host allocation failure. With
// AdaptiveBatch enabled, later duplicate-light batches grow it back.
func (d *Driver) shrinkBatch() {
	floor := d.cfg.AdaptiveMin
	if floor < 1 {
		floor = 1
	}
	if d.effBatch <= floor {
		return
	}
	d.effBatch /= 2
	if d.effBatch < floor {
		d.effBatch = floor
	}
	d.stats.BatchShrinks++
}

// transferWithRetry migrates spans of block bid over the link. Each
// injected transient failure re-pays the full transfer cost (the link
// carried the bytes before failing) plus an exponential virtual-time
// backoff; exhausting the retry budget is fatal. Only the final
// successful attempt counts toward the batch's migrated bytes.
func (d *Driver) transferWithRetry(bid mem.VABlockID, spans []mem.Span, rec *trace.BatchRecord) (sim.Time, error) {
	failures, fatal := d.inj.MigrateFailures()
	var cost sim.Time
	for i := 0; i < failures; i++ {
		cost += d.link.TransferSpans(spans, true)
		cost += d.inj.MigrateBackoffFor(i)
		for _, sp := range spans {
			d.stats.InjMigRetryBytes += sp.Bytes()
		}
		d.stats.MigRetries++
		rec.InjMigFailures++
	}
	if fatal {
		return cost, fmt.Errorf("uvm: migrating block %d: %d transfer attempts failed: %w",
			bid, failures, ErrMigrationFailed)
	}
	t, err := d.carryOverLink(bid, spans, true)
	return cost + t, err
}

// carryOverLink moves spans over the link, surviving the hardware fault
// domain: a flap-dropped operation is retried with deterministic
// exponential backoff up to the domain's budget, with the dropped
// attempts' bytes accounted as HW retry traffic (the link charged them,
// but no batch record counts them). Without a hardware domain this is
// exactly one guaranteed TransferSpans — the default hot path pays a
// single nil check.
func (d *Driver) carryOverLink(bid mem.VABlockID, spans []mem.Span, toGPU bool) (sim.Time, error) {
	if d.hw == nil {
		return d.link.TransferSpans(spans, toGPU), nil
	}
	limit := d.hw.RetryLimit()
	var cost sim.Time
	for attempt := 0; ; attempt++ {
		t, err := d.link.AttemptSpans(spans, toGPU)
		cost += t
		if err == nil {
			if attempt > 0 {
				d.hw.NoteTransferRecovered()
			}
			return cost, nil
		}
		if errors.Is(err, interconnect.ErrLinkDown) {
			return cost, fmt.Errorf("uvm: transferring block %d over dead link: %w", bid, ErrLinkFailed)
		}
		var bytes uint64
		for _, sp := range spans {
			bytes += sp.Bytes()
		}
		if toGPU {
			d.stats.HWRetryToGPUBytes += bytes
		} else {
			d.stats.HWRetryToHostBytes += bytes
		}
		d.stats.HWLinkRetries++
		if attempt >= limit {
			d.hw.NoteTransferUnrecovered()
			return cost, fmt.Errorf("uvm: transferring block %d: %d flapping-link attempts failed: %w",
				bid, attempt+1, ErrLinkFailed)
		}
		d.hw.NoteTransferRetried()
		cost += d.hw.RetryBackoffFor(attempt)
	}
}
