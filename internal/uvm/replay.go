package uvm

// replay.go — the final batch stage: schedule the batch's remaining
// virtual cost, flush the fault buffer, issue the replay, land the batch
// record, and run the batch sizer and observers. The registered
// BatchSizer implementations live here too.

import (
	"guvm/internal/interconnect"
	"guvm/internal/trace"
)

// replayStage folds the per-block costs into the batch total (serial sum
// or parallel makespan, §6's proposed parallelization — imbalance across
// VABlocks limits the gain), adds the replay cost, and schedules batch
// completion. The engine clock already sits at start + BatchSetup +
// tFetch when the pipeline runs, so only the remainder is scheduled.
type replayStage struct{}

func (replayStage) name() string { return "replay" }

func (replayStage) run(d *Driver, bc *batchCtx) error {
	bc.total += makespan(bc.sc.blockCosts, d.cfg.ServiceWorkers, d.cfg.LoadBalanceLPT, d.cfg.WorkerSync)
	bc.rec.TReplay = d.cfg.Costs.ReplayCost
	bc.total += bc.rec.TReplay

	d.eng.Schedule(bc.total-bc.tFetch-d.cfg.Costs.BatchSetup, func() {
		d.dev.Buffer.Flush()
		d.dev.Replay()
		bc.rec.End = d.eng.Now()
		id := d.Collector.AddBatch(bc.rec)
		d.Collector.AddFaults(id, bc.faults)
		d.sizer.Update(d, &bc.rec)
		d.batchCount++
		d.stats.Batches++
		d.stats.TotalFaults += len(bc.faults)
		d.inBatch = false
		if d.arbiter != nil {
			d.arbiter.Release()
		}
		if d.prof != nil {
			// Before the observers: profiler-derived metrics must be
			// current when the obs sampler reads the registry.
			d.prof.EndBatch(id, &d.Collector.Batches[id])
		}
		for _, fn := range d.onBatch {
			fn(id, &d.Collector.Batches[id])
		}
		// Service the next batch if faults are already waiting;
		// otherwise sleep until the next interrupt.
		d.startBatch()
	})
	return nil
}

// fixedSizer keeps the effective batch size at the configured maximum
// (the shipped driver's behaviour).
type fixedSizer struct{}

func (fixedSizer) Update(d *Driver, rec *trace.BatchRecord) {}

// adaptiveSizer adjusts the effective batch size after each batch,
// implementing the paper's "tune batch size based on the number of
// duplicate faults received": a duplicate-heavy batch shrinks the cap
// (fetching dups is wasted work), a duplicate-light full batch grows it
// back toward the configured maximum.
type adaptiveSizer struct{}

func (adaptiveSizer) Update(d *Driver, rec *trace.BatchRecord) {
	if !d.cfg.AdaptiveBatch || rec.RawFaults == 0 {
		return
	}
	dupFrac := float64(rec.DupFaults()) / float64(rec.RawFaults)
	switch {
	case dupFrac > 0.5:
		d.effBatch /= 2
		if d.effBatch < d.cfg.AdaptiveMin {
			d.effBatch = d.cfg.AdaptiveMin
		}
	case dupFrac < 0.2 && rec.RawFaults >= d.effBatch:
		d.effBatch *= 2
		if d.effBatch > d.cfg.BatchSize {
			d.effBatch = d.cfg.BatchSize
		}
	}
}

// degradedSizer shrinks the effective batch while the interconnect is
// unhealthy — smaller batches mean smaller transfers, so a flap drop
// re-carries less and a degraded link holds the service slot for less
// time — and falls back to duplicate-adaptive behaviour on a healthy
// link. The health query is a stateless hash draw, so consulting it
// perturbs nothing.
type degradedSizer struct{}

func (degradedSizer) Update(d *Driver, rec *trace.BatchRecord) {
	if d.link.Health() != interconnect.Healthy {
		floor := d.cfg.AdaptiveMin
		if floor < 1 {
			floor = 1
		}
		if d.effBatch > floor {
			d.effBatch /= 2
			if d.effBatch < floor {
				d.effBatch = floor
			}
			d.stats.DegradedShrinks++
		}
		return
	}
	adaptiveSizer{}.Update(d, rec)
}
