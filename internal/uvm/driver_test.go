package uvm

import (
	"testing"

	"guvm/internal/gpu"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// newSystem wires engine + host VM + link + driver + device.
func newSystem(gcfg gpu.Config, ucfg Config) (*sim.Engine, *Driver, *gpu.Device) {
	eng := sim.NewEngine()
	eng.MaxEvents = 200_000_000
	vm := hostos.NewVM(hostos.DefaultCostModel())
	link := interconnect.NewLink(interconnect.DefaultPCIe3x16())
	drv, err := NewDriver(ucfg, eng, vm, link)
	if err != nil {
		panic(err)
	}
	dev, err := gpu.NewDevice(gcfg, eng, drv)
	if err != nil {
		panic(err)
	}
	drv.Attach(dev)
	return eng, drv, dev
}

func smallGPU() gpu.Config {
	c := gpu.DefaultTitanV()
	c.NumSMs = 4
	return c
}

func runKernel(t *testing.T, eng *sim.Engine, dev *gpu.Device, k gpu.Kernel) sim.Time {
	t.Helper()
	done := false
	var dur sim.Time
	start := eng.Now()
	if err := dev.LaunchKernel(k, func() { done = true; dur = eng.Now() - start }); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !done {
		t.Fatal("kernel never completed")
	}
	return dur
}

// streamKernel builds a simple streaming read kernel over nPages starting
// at base, one block per 64-page slice.
func streamKernel(base mem.Addr, nPages int) gpu.Kernel {
	const per = 64
	blocks := (nPages + per - 1) / per
	first := mem.PageOf(base)
	return gpu.Kernel{
		NumBlocks: blocks,
		BlockProgram: func(b int) []gpu.Program {
			lo := b * per
			hi := lo + per
			if hi > nPages {
				hi = nPages
			}
			return []gpu.Program{{gpu.Read(0, gpu.PageRange(first+mem.PageID(lo), hi-lo)...)}}
		},
	}
}

func noPrefetch() Config {
	c := DefaultConfig()
	c.PrefetchEnabled = false
	c.Upgrade64K = false
	return c
}

func TestDriverServicesSimpleKernel(t *testing.T) {
	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	base := drv.Alloc(2 * mem.VABlockSize)
	runKernel(t, eng, dev, streamKernel(base, 600))
	st := drv.Stats()
	if st.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	if st.MigratedPages != 600 {
		t.Fatalf("migrated %d pages, want 600 (no prefetch)", st.MigratedPages)
	}
	if got := drv.ResidentPages(); got != 600 {
		t.Fatalf("resident pages = %d, want 600", got)
	}
	// Every record respects the batch size cap and accounting sanity.
	for _, b := range drv.Collector.Batches {
		if b.RawFaults > drv.Config().BatchSize {
			t.Fatalf("batch %d has %d faults > cap %d", b.ID, b.RawFaults, drv.Config().BatchSize)
		}
		if b.Duration() <= 0 {
			t.Fatalf("batch %d has non-positive duration", b.ID)
		}
		if b.UniquePages > b.RawFaults {
			t.Fatalf("batch %d unique %d > raw %d", b.ID, b.UniquePages, b.RawFaults)
		}
	}
}

func TestResidencyCheckerBeforeAnyFault(t *testing.T) {
	_, drv, _ := newSystem(smallGPU(), noPrefetch())
	if drv.IsResidentOnGPU(123456) {
		t.Fatal("unfaulted page resident")
	}
	if drv.ResidentPages() != 0 || drv.ChunksInUse() != 0 {
		t.Fatal("fresh driver has residency")
	}
}

func TestAllocRoundsToVABlocks(t *testing.T) {
	_, drv, _ := newSystem(smallGPU(), noPrefetch())
	a := drv.Alloc(100) // 100 bytes -> 1 block
	b := drv.Alloc(mem.VABlockSize + 1)
	if mem.VABlockOf(b)-mem.VABlockOf(a) != 1 {
		t.Fatalf("allocations not block-aligned: a=%v b=%v", a, b)
	}
	c := drv.Alloc(1)
	if mem.VABlockOf(c)-mem.VABlockOf(b) != 2 {
		t.Fatalf("second allocation did not span 2 blocks: b=%v c=%v", b, c)
	}
}

func TestAllocPanicsOnZero(t *testing.T) {
	_, drv, _ := newSystem(smallGPU(), noPrefetch())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	drv.Alloc(0)
}

func TestFirstTouchPaysDMAAndUnmap(t *testing.T) {
	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	base := drv.Alloc(mem.VABlockSize, WithHostInit(1))
	runKernel(t, eng, dev, streamKernel(base, 512))

	var dmaBlocks, unmapPages int
	var tDMA, tUnmap sim.Time
	for _, b := range drv.Collector.Batches {
		dmaBlocks += b.NewDMABlocks
		unmapPages += b.UnmapPages
		tDMA += b.TDMAMap
		tUnmap += b.TUnmap
	}
	if dmaBlocks != 1 {
		t.Fatalf("NewDMABlocks = %d, want 1", dmaBlocks)
	}
	if tDMA <= 0 {
		t.Fatal("no DMA mapping time recorded")
	}
	if unmapPages != 512 {
		t.Fatalf("unmapped %d pages, want 512", unmapPages)
	}
	if tUnmap <= 0 {
		t.Fatal("no unmap time recorded")
	}
}

func TestNoUnmapWithoutHostInit(t *testing.T) {
	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	base := drv.Alloc(mem.VABlockSize) // device-first allocation
	runKernel(t, eng, dev, streamKernel(base, 512))
	for _, b := range drv.Collector.Batches {
		if b.UnmapPages != 0 || b.TUnmap != 0 {
			t.Fatalf("batch %d paid unmap for never-CPU-touched block", b.ID)
		}
	}
}

func TestPrefetchReducesBatches(t *testing.T) {
	gcfg := smallGPU()
	npages := 4 * mem.PagesPerVABlock

	engOff, drvOff, devOff := newSystem(gcfg, noPrefetch())
	baseOff := drvOff.Alloc(uint64(npages) * mem.PageSize)
	runKernel(t, engOff, devOff, streamKernel(baseOff, npages))

	on := DefaultConfig()
	engOn, drvOn, devOn := newSystem(gcfg, on)
	baseOn := drvOn.Alloc(uint64(npages) * mem.PageSize)
	runKernel(t, engOn, devOn, streamKernel(baseOn, npages))

	bOff, bOn := drvOff.Stats().Batches, drvOn.Stats().Batches
	if bOn*2 >= bOff {
		t.Fatalf("prefetch did not cut batches >2x: off=%d on=%d", bOff, bOn)
	}
	if drvOn.Stats().PrefetchedPages == 0 {
		t.Fatal("no pages prefetched")
	}
	// Same data ends up resident either way.
	if drvOn.ResidentPages() != drvOff.ResidentPages() {
		t.Fatalf("resident mismatch: on=%d off=%d", drvOn.ResidentPages(), drvOff.ResidentPages())
	}
}

func TestOversubscriptionEvicts(t *testing.T) {
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 4 * mem.VABlockSize // 4-block GPU
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	// Working set: 6 blocks, 150% oversubscription.
	npages := 6 * mem.PagesPerVABlock
	base := drv.Alloc(uint64(npages) * mem.PageSize)
	runKernel(t, eng, dev, streamKernel(base, npages))

	st := drv.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under oversubscription")
	}
	if drv.ChunksInUse() > 4 {
		t.Fatalf("chunks in use %d > capacity 4", drv.ChunksInUse())
	}
	if st.MigratedPages < npages {
		t.Fatalf("migrated %d < working set %d", st.MigratedPages, npages)
	}
	var evBytes uint64
	for _, b := range drv.Collector.Batches {
		if b.Evictions > 0 && b.TEvict <= 0 {
			t.Fatalf("batch %d evicted without time cost", b.ID)
		}
		evBytes += b.EvictedBytes
	}
	if evBytes == 0 {
		t.Fatal("no bytes written back on eviction")
	}
}

func TestLRUEvictsEarliestTouched(t *testing.T) {
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(3 * mem.VABlockSize)
	firstBlock := mem.VABlockOf(base)

	// Touch blocks 0, 1, 2 strictly in order (one block per kernel).
	for i := 0; i < 3; i++ {
		b := mem.Addr(i) * mem.VABlockSize
		runKernel(t, eng, dev, streamKernel(base+b, mem.PagesPerVABlock))
	}
	// Block 2's allocation must have evicted block 0 (earliest touched).
	var evicted []mem.VABlockID
	for _, b := range drv.Collector.Batches {
		evicted = append(evicted, b.EvictedBlocks...)
	}
	if len(evicted) == 0 {
		t.Fatal("no eviction recorded")
	}
	if evicted[0] != firstBlock {
		t.Fatalf("first eviction = block %d, want earliest %d", evicted[0], firstBlock)
	}
}

func TestEvictedBlockSkipsUnmapOnRefetch(t *testing.T) {
	// Figure 13's levels: a block evicted and re-fetched pays no
	// unmap_mapping_range, because eviction does not remap to the CPU.
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(3*mem.VABlockSize, WithHostInit(1))

	// Pass 1 touches blocks 0,1,2 (block 0 evicted); pass 2 re-touches
	// block 0.
	for _, blk := range []int{0, 1, 2, 0} {
		runKernel(t, eng, dev, streamKernel(base+mem.Addr(blk)*mem.VABlockSize, mem.PagesPerVABlock))
	}
	// Unmap happened exactly once per block (first touch): 3*512 pages.
	unmap := 0
	for _, b := range drv.Collector.Batches {
		unmap += b.UnmapPages
	}
	if unmap != 3*512 {
		t.Fatalf("unmapped %d pages, want %d (no unmap on re-fetch)", unmap, 3*512)
	}
}

func TestTouchHostRestoresUnmapCost(t *testing.T) {
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	base := drv.Alloc(3*mem.VABlockSize, WithHostInit(1))
	for _, blk := range []int{0, 1, 2} {
		runKernel(t, eng, dev, streamKernel(base+mem.Addr(blk)*mem.VABlockSize, mem.PagesPerVABlock))
	}
	// CPU re-touches evicted block 0, then GPU faults it again.
	drv.TouchHost(base, mem.VABlockSize, 4)
	runKernel(t, eng, dev, streamKernel(base, mem.PagesPerVABlock))
	unmap := 0
	for _, b := range drv.Collector.Batches {
		unmap += b.UnmapPages
	}
	if unmap != 4*512 {
		t.Fatalf("unmapped %d pages, want %d (host re-touch restores cost)", unmap, 4*512)
	}
}

func TestDuplicateClassification(t *testing.T) {
	// Two blocks on SMs sharing a µTLB read the same pages -> type-1;
	// with 4 SMs (2 µTLBs), blocks 0/1 share µTLB0 and 2/3 share µTLB1,
	// so four blocks reading the same pages also produce type-2.
	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	base := drv.Alloc(mem.VABlockSize)
	first := mem.PageOf(base)
	shared := gpu.PageRange(first, 32)
	runKernel(t, eng, dev, gpu.Kernel{
		NumBlocks: 4,
		BlockProgram: func(int) []gpu.Program {
			return []gpu.Program{{gpu.Read(0, shared...)}}
		},
	})
	t1, t2 := 0, 0
	for _, b := range drv.Collector.Batches {
		t1 += b.Type1Dups
		t2 += b.Type2Dups
	}
	if t2 == 0 {
		t.Fatal("no type-2 (cross-µTLB) duplicates for shared pages")
	}
	// Resident set is still just the 32 shared pages.
	if drv.ResidentPages() != 32 {
		t.Fatalf("resident = %d, want 32", drv.ResidentPages())
	}
}

func TestBatchTimeComponentsSumWithinDuration(t *testing.T) {
	eng, drv, dev := newSystem(smallGPU(), DefaultConfig())
	base := drv.Alloc(4*mem.VABlockSize, WithHostInit(2))
	runKernel(t, eng, dev, streamKernel(base, 4*mem.PagesPerVABlock))
	for _, b := range drv.Collector.Batches {
		sum := b.TFetch + b.TDedup + b.TBlockMgmt + b.TPopulate + b.TPageTable +
			b.TDMAMap + b.TUnmap + b.TTransfer + b.TEvict + b.TReplay
		if sum > b.Duration() {
			t.Fatalf("batch %d: components %d > duration %d", b.ID, sum, b.Duration())
		}
		// Components account for most of the batch (only setup is
		// outside them).
		if float64(sum) < 0.5*float64(b.Duration()) {
			t.Fatalf("batch %d: components %d < 50%% of duration %d", b.ID, sum, b.Duration())
		}
	}
}

func TestBatchSizeCapSweep(t *testing.T) {
	for _, bs := range []int{32, 256, 1024} {
		ucfg := noPrefetch()
		ucfg.BatchSize = bs
		eng, drv, dev := newSystem(smallGPU(), ucfg)
		base := drv.Alloc(2 * mem.VABlockSize)
		runKernel(t, eng, dev, streamKernel(base, 2*mem.PagesPerVABlock))
		for _, b := range drv.Collector.Batches {
			if b.RawFaults > bs {
				t.Fatalf("batchSize=%d: batch with %d faults", bs, b.RawFaults)
			}
		}
		if drv.ResidentPages() != 2*mem.PagesPerVABlock {
			t.Fatalf("batchSize=%d: incomplete migration", bs)
		}
	}
}

func TestLargerBatchSizeFewerBatches(t *testing.T) {
	// Figure 9's mechanism: larger batches amortize per-batch overhead.
	counts := map[int]int{}
	for _, bs := range []int{64, 512} {
		ucfg := noPrefetch()
		ucfg.BatchSize = bs
		eng, drv, dev := newSystem(gpu.DefaultTitanV(), ucfg)
		base := drv.Alloc(8 * mem.VABlockSize)
		runKernel(t, eng, dev, streamKernel(base, 8*mem.PagesPerVABlock))
		counts[bs] = drv.Stats().Batches
	}
	if counts[512] >= counts[64] {
		t.Fatalf("batch 512 used %d batches, batch 64 used %d; want fewer",
			counts[512], counts[64])
	}
}

func TestWakeupAccounting(t *testing.T) {
	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	base := drv.Alloc(mem.VABlockSize)
	runKernel(t, eng, dev, streamKernel(base, 128))
	st := drv.Stats()
	if st.WakeUps == 0 {
		t.Fatal("no wakeups recorded")
	}
	if st.Batches < st.WakeUps {
		t.Fatalf("batches %d < wakeups %d", st.Batches, st.WakeUps)
	}
}

func TestCollectorFaultRetention(t *testing.T) {
	eng, drv, dev := newSystem(smallGPU(), noPrefetch())
	drv.Collector.KeepFaults = true
	base := drv.Alloc(mem.VABlockSize)
	runKernel(t, eng, dev, streamKernel(base, 100))
	if len(drv.Collector.Faults) == 0 {
		t.Fatal("KeepFaults retained nothing")
	}
	if len(drv.Collector.Faults) != len(drv.Collector.FaultBatch) {
		t.Fatal("fault/batch arrays misaligned")
	}
	if got := drv.Collector.TotalFaults(); got != len(drv.Collector.Faults) {
		t.Fatalf("TotalFaults %d != retained %d", got, len(drv.Collector.Faults))
	}
}

func TestForwardProgressUnderHeavyThrash(t *testing.T) {
	// Working set 4x capacity: the driver must still finish.
	ucfg := noPrefetch()
	ucfg.GPUMemBytes = 2 * mem.VABlockSize
	eng, drv, dev := newSystem(smallGPU(), ucfg)
	npages := 8 * mem.PagesPerVABlock
	base := drv.Alloc(uint64(npages) * mem.PageSize)
	runKernel(t, eng, dev, streamKernel(base, npages))
	if drv.Stats().Evictions < 6 {
		t.Fatalf("evictions = %d, want >= 6", drv.Stats().Evictions)
	}
}
