package uvm

// fetch.go — the asynchronous front-end of the batch pipeline: interrupt
// wake-up, service-slot arbitration, and the fault-buffer drain loop
// (§2.2's default retrieval policy). Fetch is the one phase that is not
// a synchronous stage: reading the buffer takes virtual time, so faults
// arriving during the drain extend the batch, and the drain re-schedules
// itself until the batch limit is reached or the buffer stays empty.

import (
	"guvm/internal/gpu"
	"guvm/internal/sim"
)

// onInterrupt is the device's interrupt line: wake the worker if asleep.
func (d *Driver) onInterrupt() {
	if d.dead {
		return
	}
	if !d.sleeping {
		d.stats.SpuriousWakeUps++
		return
	}
	d.sleeping = false
	d.stats.WakeUps++
	d.eng.Schedule(d.cfg.Costs.WakeupLatency, d.startBatch)
}

// startBatch opens a batch: acquire the (possibly shared) service slot,
// charge setup, then drain the buffer.
func (d *Driver) startBatch() {
	if d.inBatch || d.dead {
		return
	}
	if d.dev.Buffer.Len() == 0 {
		d.sleeping = true
		return
	}
	d.inBatch = true
	if d.arbiter != nil {
		d.arbiter.Acquire(d.beginBatch)
		return
	}
	d.beginBatch()
}

// beginBatch runs once the service slot is held.
func (d *Driver) beginBatch() {
	start := d.eng.Now()
	d.eng.Schedule(d.cfg.Costs.BatchSetup, func() {
		d.fetchLoop(start, nil, 0)
	})
}

// fetchLoop reads fault records until the batch limit is reached or the
// buffer stays empty. Reading takes time (MMIO/BAR reads are slow), so
// the loop re-checks the buffer after each drain installment and hands
// the completed batch to the stage pipeline.
func (d *Driver) fetchLoop(start sim.Time, faults []gpu.Fault, tFetch sim.Time) {
	got := d.dev.Buffer.Fetch(d.effBatch - len(faults))
	faults = append(faults, got...)
	cost := sim.Time(len(got)) * d.cfg.Costs.FetchPerFault
	tFetch += cost
	if d.prof != nil && len(got) > 0 {
		d.prof.FetchInstallment(d.eng.Now()+cost, got)
	}
	d.eng.Schedule(cost, func() {
		if len(faults) < d.effBatch && d.dev.Buffer.Len() > 0 {
			d.fetchLoop(start, faults, tFetch)
			return
		}
		d.serviceBatch(start, faults, tFetch)
	})
}
