package uvm

import (
	"errors"
	"flag"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestWritePoliciesSortedListing locks the -list-policies contract:
// kinds appear in registration order (eviction first — tooling greps for
// it), and names within each kind are sorted.
func TestWritePoliciesSortedListing(t *testing.T) {
	var b strings.Builder
	WritePolicies(&b)
	out := b.String()
	var kinds []string
	var names []string
	flushKind := func() {
		if len(names) > 0 && !sort.StringsAreSorted(names) {
			t.Fatalf("kind %q names not sorted: %v", kinds[len(kinds)-1], names)
		}
		names = nil
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(line, ":") {
			flushKind()
			kinds = append(kinds, strings.TrimSuffix(line, ":"))
			continue
		}
		if f := strings.Fields(line); len(f) > 0 {
			names = append(names, f[0])
		}
	}
	flushKind()
	want := []string{"eviction", "prefetch", "batch-sizing", "architecture"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kind order %v, want %v", kinds, want)
	}
	if !strings.HasPrefix(out, "eviction:") {
		t.Fatalf("listing does not start with the eviction group:\n%s", out)
	}
	for _, name := range []string{"access-counter", "gpu-driven", "host-driven"} {
		if !strings.Contains(out, name) {
			t.Fatalf("listing is missing architecture %q:\n%s", name, out)
		}
	}
}

// TestArchitectureUnknownNameListsOptions requires the architecture
// registry's rejection to carry the valid options in registration order.
func TestArchitectureUnknownNameListsOptions(t *testing.T) {
	_, err := ArchitectureByName("speculative")
	if err == nil {
		t.Fatal("unknown architecture accepted")
	}
	var upe *UnknownPolicyError
	if !errors.As(err, &upe) {
		t.Fatalf("error is %T, want *UnknownPolicyError", err)
	}
	want := []string{"host-driven", "gpu-driven", "access-counter"}
	if !reflect.DeepEqual(upe.Valid, want) {
		t.Fatalf("valid options %v, want %v", upe.Valid, want)
	}
	if !strings.Contains(err.Error(), "host-driven, gpu-driven, access-counter") {
		t.Fatalf("error %q does not list the options", err)
	}
}

// TestArchitectureLabelContract pins the declared stage/step labels to
// the stage graph itself: registerArchitecture derives them from the
// name() methods, so a drifting label is a registration-time change.
func TestArchitectureLabelContract(t *testing.T) {
	host, err := ArchitectureByName("host-driven")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"dedup", "service", "cross-block", "replay"}; !reflect.DeepEqual(host.Stages, want) {
		t.Fatalf("host-driven stages %v, want %v", host.Stages, want)
	}
	if want := []string{"residency", "prefetch-plan", "populate", "transfer"}; !reflect.DeepEqual(host.BlockSteps, want) {
		t.Fatalf("host-driven block steps %v, want %v", host.BlockSteps, want)
	}
	ac, err := ArchitectureByName("access-counter")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"counter-gate", "residency", "prefetch-plan", "populate", "transfer"}; !reflect.DeepEqual(ac.BlockSteps, want) {
		t.Fatalf("access-counter block steps %v, want %v", ac.BlockSteps, want)
	}
	if len(ac.BlockSteps) > maxBlockSteps {
		t.Fatalf("access-counter declares %d block steps, cap is %d", len(ac.BlockSteps), maxBlockSteps)
	}
}

// TestPolicyListFlagsSelections covers the sweep flag expansion: alias
// normalization, deterministic cross-product order with the architecture
// innermost, and rejection of unknown names with the valid options.
func TestPolicyListFlagsSelections(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	pf := RegisterPolicyListFlags(fs)
	if err := fs.Parse([]string{"-prefetch", "on,off", "-evict", "lru", "-arch", "host-driven,gpu-driven"}); err != nil {
		t.Fatal(err)
	}
	sels, err := pf.Selections()
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 4 {
		t.Fatalf("got %d selections, want 4 (2 prefetch x 2 arch)", len(sels))
	}
	if sels[0].Prefetch != "tree" {
		t.Fatalf("alias 'on' not normalized to tree: %+v", sels[0])
	}
	if sels[0].Architecture != "host-driven" || sels[1].Architecture != "gpu-driven" {
		t.Fatalf("architecture is not the innermost dimension: %+v", sels[:2])
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	pf = RegisterPolicyListFlags(fs)
	if err := fs.Parse([]string{"-arch", "warp-speed"}); err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Selections(); err == nil || !strings.Contains(err.Error(), "host-driven") {
		t.Fatalf("unknown architecture not rejected with options: %v", err)
	}
}
