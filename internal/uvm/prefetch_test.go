package uvm

import (
	"testing"
	"testing/quick"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

func TestPrefetchSingleFaultUpgradesRegion(t *testing.T) {
	var resident, faulted mem.PageSet
	faulted.Set(5) // one fault in region 0
	extra := PrefetchPages(&resident, &faulted, 0.51, true)
	// The 4KB->64KB upgrade migrates the full 16-page region minus the
	// faulted page; with only 1/32 regions occupied, no tree node fires.
	if got := extra.Count(); got != 15 {
		t.Fatalf("extra pages = %d, want 15 (region upgrade)", got)
	}
	for i := 0; i < 16; i++ {
		if i != 5 && !extra.Has(i) {
			t.Fatalf("page %d of faulted region not prefetched", i)
		}
	}
	if extra.Has(16) {
		t.Fatal("prefetch leaked outside the faulted region")
	}
}

func TestPrefetchDenseFaultsPromoteWholeBlock(t *testing.T) {
	var resident, faulted mem.PageSet
	// Fault one page in 60% of the regions: after upgrade, occupancy is
	// ~60% at the root, above the 51% threshold → full block.
	for r := 0; r < 20; r++ {
		faulted.Set(r * mem.PagesPerRegion)
	}
	extra := PrefetchPages(&resident, &faulted, 0.51, true)
	var all mem.PageSet
	all.Union(&extra)
	all.Union(&faulted)
	if !all.Full() {
		t.Fatalf("dense faults migrated %d/512 pages, want full block", all.Count())
	}
}

func TestPrefetchSparseFaultsStayLocal(t *testing.T) {
	var resident, faulted mem.PageSet
	// Two faults in distant regions: only their regions upgrade.
	faulted.Set(0)
	faulted.Set(31 * mem.PagesPerRegion)
	extra := PrefetchPages(&resident, &faulted, 0.51, true)
	if got := extra.Count(); got != 30 {
		t.Fatalf("extra = %d, want 30 (two region upgrades)", got)
	}
}

func TestPrefetchUsesResidencyForDensity(t *testing.T) {
	var resident, faulted mem.PageSet
	// Half the block already resident; one new fault adjacent to it
	// pushes the bottom subtree over threshold.
	for i := 0; i < 256; i++ {
		resident.Set(i)
	}
	faulted.Set(256)
	extra := PrefetchPages(&resident, &faulted, 0.51, true)
	// After the region upgrade (16 pages), the 512-span root occupancy
	// is (256+16)/512 = 53% >= 51% → whole block promoted.
	var all mem.PageSet
	all.Union(&extra)
	all.Union(&faulted)
	all.Union(&resident)
	if !all.Full() {
		t.Fatalf("expected full-block promotion, got %d/512", all.Count())
	}
	// And the returned set never includes already-resident or faulted
	// pages.
	for i := 0; i < 256; i++ {
		if extra.Has(i) {
			t.Fatalf("resident page %d returned as prefetch", i)
		}
	}
	if extra.Has(256) {
		t.Fatal("faulted page returned as prefetch")
	}
}

func TestPrefetchDisabledUpgradeStillDensityAtLeaf(t *testing.T) {
	var resident, faulted mem.PageSet
	// upgrade64K=false: a 9/16 dense faulted region crosses the leaf
	// threshold and promotes the region.
	for i := 0; i < 9; i++ {
		faulted.Set(i)
	}
	extra := PrefetchPages(&resident, &faulted, 0.51, false)
	if got := extra.Count(); got != 7 {
		t.Fatalf("extra = %d, want 7 (leaf promotion)", got)
	}
}

func TestPrefetchThresholdOne(t *testing.T) {
	var resident, faulted mem.PageSet
	faulted.Set(0)
	extra := PrefetchPages(&resident, &faulted, 1.0, false)
	if extra.Any() {
		t.Fatalf("threshold 1.0 prefetched %d pages", extra.Count())
	}
}

// Property: prefetch output is disjoint from resident and faulted inputs,
// and monotone: it never returns pages when everything is resident.
func TestPrefetchDisjointProperty(t *testing.T) {
	f := func(faultIdx []uint16, resIdx []uint16) bool {
		var resident, faulted mem.PageSet
		for _, i := range resIdx {
			resident.Set(int(i) % 512)
		}
		for _, i := range faultIdx {
			p := int(i) % 512
			if !resident.Has(p) {
				faulted.Set(p)
			}
		}
		extra := PrefetchPages(&resident, &faulted, 0.51, true)
		for _, i := range extra.Indices(nil) {
			if resident.Has(i) || faulted.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{BatchSize: 0, GPUMemBytes: 4 << 20},
		{BatchSize: 256, GPUMemBytes: 1 << 20},
		{BatchSize: 256, GPUMemBytes: 4 << 20, PrefetchEnabled: true, PrefetchThreshold: 0},
		{BatchSize: 256, GPUMemBytes: 4 << 20, PrefetchEnabled: true, PrefetchThreshold: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCapacityBlocks(t *testing.T) {
	c := Config{GPUMemBytes: 16 << 20}
	if c.CapacityBlocks() != 8 {
		t.Fatalf("CapacityBlocks = %d, want 8", c.CapacityBlocks())
	}
}

func TestDefaultCostModelPositive(t *testing.T) {
	cm := DefaultCostModel()
	for name, v := range map[string]sim.Time{
		"WakeupLatency":    cm.WakeupLatency,
		"BatchSetup":       cm.BatchSetup,
		"FetchPerFault":    cm.FetchPerFault,
		"DedupPerFault":    cm.DedupPerFault,
		"PerVABlock":       cm.PerVABlock,
		"PageTablePerPage": cm.PageTablePerPage,
		"ReplayCost":       cm.ReplayCost,
		"EvictBase":        cm.EvictBase,
		"EvictPerPage":     cm.EvictPerPage,
	} {
		if v <= 0 {
			t.Errorf("%s = %d, want positive", name, v)
		}
	}
}
