package uvm

import (
	"sort"

	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// This file implements the driver improvements §6 of the paper proposes:
// parallel per-VABlock servicing, duplicate-adaptive batch sizing,
// preemptive (asynchronous) CPU unmapping, and prefetching beyond the
// VABlock scope. Each sits behind a Config knob, defaults to the shipped
// driver's behaviour, and has a matching ablation experiment.

// makespan schedules per-block service costs onto `workers` parallel
// driver workers and returns the batch's block-servicing wall time:
// arrival-order assignment to the least-loaded worker, or LPT (longest
// processing time first) when lpt is set. One worker degenerates to the
// serial sum. Each extra worker charges sync overhead once per batch.
func makespan(costs []sim.Time, workers int, lpt bool, syncCost sim.Time) sim.Time {
	if len(costs) == 0 {
		return 0
	}
	if workers <= 1 {
		var sum sim.Time
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	order := costs
	if lpt {
		order = append([]sim.Time(nil), costs...)
		sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	}
	loads := make([]sim.Time, workers)
	for _, c := range order {
		li := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[li] {
				li = i
			}
		}
		loads[li] += c
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max + sim.Time(workers-1)*syncCost
}

// updateAdaptiveBatch adjusts the effective batch size after a batch,
// implementing the paper's "tune batch size based on the number of
// duplicate faults received": a duplicate-heavy batch shrinks the cap
// (fetching dups is wasted work), a duplicate-light full batch grows it
// back toward the configured maximum.
func (d *Driver) updateAdaptiveBatch(rec *trace.BatchRecord) {
	if !d.cfg.AdaptiveBatch || rec.RawFaults == 0 {
		return
	}
	dupFrac := float64(rec.DupFaults()) / float64(rec.RawFaults)
	switch {
	case dupFrac > 0.5:
		d.effBatch /= 2
		if d.effBatch < d.cfg.AdaptiveMin {
			d.effBatch = d.cfg.AdaptiveMin
		}
	case dupFrac < 0.2 && rec.RawFaults >= d.effBatch:
		d.effBatch *= 2
		if d.effBatch > d.cfg.BatchSize {
			d.effBatch = d.cfg.BatchSize
		}
	}
}

// EffectiveBatchSize returns the current adaptive batch cap.
func (d *Driver) EffectiveBatchSize() int { return d.effBatch }

// PreUnmapAllocations preemptively unmaps every managed allocation's live
// CPU mappings, off the fault path — the §6 "asynchronous and preemptive"
// alternative invoked when the application shifts to GPU compute. The
// work overlaps kernel launch, so its cost is recorded in Stats rather
// than charged to batches. It returns the total overlapped cost.
func (d *Driver) PreUnmapAllocations() sim.Time {
	var total sim.Time
	for _, sp := range d.spans {
		for bid := sp.first; bid <= sp.last; bid++ {
			if d.vm.CPUMappedPages(bid) == 0 {
				continue
			}
			cost, _ := d.vm.UnmapMappingRange(bid)
			total += cost
			d.stats.AsyncUnmapCalls++
		}
	}
	d.stats.AsyncUnmapTime += total
	return total
}

// spanOf returns the allocation span containing bid, if any.
func (d *Driver) spanOf(bid mem.VABlockID) (allocSpan, bool) {
	for _, sp := range d.spans {
		if bid >= sp.first && bid <= sp.last {
			return sp, true
		}
	}
	return allocSpan{}, false
}

// crossBlockPrefetch migrates up to CrossBlockPrefetch whole blocks
// following each fully-resident faulting block of the batch, within the
// same allocation. It returns the per-block costs of the eager
// migrations. This trades upfront work (and possible evictions — the
// §5.3 hazard) for eliminating future first-touch batches.
func (d *Driver) crossBlockPrefetch(blockOrder []mem.VABlockID, inThisBatch map[mem.VABlockID]bool, rec *trace.BatchRecord) ([]sim.Time, error) {
	var costs []sim.Time
	for _, bid := range blockOrder {
		b := d.blocks[bid]
		if b == nil || !b.resident.Full() {
			continue
		}
		sp, ok := d.spanOf(bid)
		if !ok {
			continue
		}
		for n := 1; n <= d.cfg.CrossBlockPrefetch; n++ {
			next := bid + mem.VABlockID(n)
			if next > sp.last {
				break
			}
			nb := d.blocks[next]
			if nb != nil && nb.resident.Any() {
				break // already (partially) resident: stop the run
			}
			if inThisBatch[next] {
				break
			}
			c, err := d.migrateWholeBlock(next, inThisBatch, rec)
			if err != nil {
				return costs, err
			}
			costs = append(costs, c)
			inThisBatch[next] = true
		}
	}
	return costs, nil
}

// migrateWholeBlock eagerly migrates all 512 pages of a block, paying the
// same pipeline a faulting block would (allocation/eviction, DMA setup,
// unmapping, population, transfer, page tables) and accounting the pages
// as prefetched.
func (d *Driver) migrateWholeBlock(bid mem.VABlockID, inThisBatch map[mem.VABlockID]bool, rec *trace.BatchRecord) (sim.Time, error) {
	cost := d.cfg.Costs.PerVABlock
	rec.TBlockMgmt += d.cfg.Costs.PerVABlock

	b := d.blocks[bid]
	if b == nil {
		b = &blockState{id: bid}
		d.blocks[bid] = b
	}
	if !b.hasChunk {
		id, ok := d.pmm.Alloc(bid)
		for !ok {
			c, err := d.evictOne(bid, inThisBatch, rec)
			cost += c
			if err != nil {
				return cost, err
			}
			id, ok = d.pmm.Alloc(bid)
		}
		b.hasChunk = true
		b.chunk = id
		b.allocSeq = d.nextSeq
		d.nextSeq++
		d.allocated = append(d.allocated, b)
	}
	b.lastTouch = d.batchCount
	if !b.dmaMapped {
		t := d.vm.MapDMA(bid)
		cost += t
		rec.TDMAMap += t
		rec.NewDMABlocks++
		b.dmaMapped = true
	}
	if d.vm.CPUMappedPages(bid) > 0 {
		t, n := d.vm.UnmapMappingRange(bid)
		cost += t
		rec.TUnmap += t
		rec.UnmapPages += n
	}
	var newPages mem.PageSet
	newPages.SetAll()
	newPages.Subtract(&b.populated)
	if n := newPages.Count(); n > 0 {
		t, err := d.populateWithRetry(bid, n, inThisBatch, rec)
		cost += t
		if err != nil {
			return cost, err
		}
	}
	spans := []mem.Span{{First: bid.FirstPage(), Count: mem.PagesPerVABlock}}
	t, err := d.transferWithRetry(bid, spans, rec)
	cost += t
	if err != nil {
		return cost, err
	}
	rec.TTransfer += t
	rec.PagesMigrated += mem.PagesPerVABlock
	rec.BytesMigrated += mem.VABlockSize
	rec.PrefetchedPages += mem.PagesPerVABlock
	rec.ServicedSpans = append(rec.ServicedSpans, spans...)
	rec.ServicedBlocks = append(rec.ServicedBlocks, bid)
	d.stats.MigratedPages += mem.PagesPerVABlock
	d.stats.PrefetchedPages += mem.PagesPerVABlock
	d.stats.CrossBlockPages += mem.PagesPerVABlock

	pt := sim.Time(mem.PagesPerVABlock) * d.cfg.Costs.PageTablePerPage
	cost += pt
	rec.TPageTable += pt

	b.resident.SetAll()
	b.populated.SetAll()
	return cost, nil
}
