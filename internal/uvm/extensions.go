package uvm

import (
	"sort"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

// This file implements the driver improvements §6 of the paper proposes:
// parallel per-VABlock servicing, duplicate-adaptive batch sizing,
// preemptive (asynchronous) CPU unmapping, and prefetching beyond the
// VABlock scope. Each sits behind a Config knob, defaults to the shipped
// driver's behaviour, and has a matching ablation experiment.

// makespan schedules per-block service costs onto `workers` parallel
// driver workers and returns the batch's block-servicing wall time:
// arrival-order assignment to the least-loaded worker, or LPT (longest
// processing time first) when lpt is set. One worker degenerates to the
// serial sum. Each extra worker charges sync overhead once per batch.
func makespan(costs []sim.Time, workers int, lpt bool, syncCost sim.Time) sim.Time {
	if len(costs) == 0 {
		return 0
	}
	if workers <= 1 {
		var sum sim.Time
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	order := costs
	if lpt {
		order = append([]sim.Time(nil), costs...)
		sort.Slice(order, func(i, j int) bool { return order[i] > order[j] })
	}
	loads := make([]sim.Time, workers)
	for _, c := range order {
		li := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[li] {
				li = i
			}
		}
		loads[li] += c
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max + sim.Time(workers-1)*syncCost
}

// EffectiveBatchSize returns the current adaptive batch cap.
func (d *Driver) EffectiveBatchSize() int { return d.effBatch }

// PreUnmapAllocations preemptively unmaps every managed allocation's live
// CPU mappings, off the fault path — the §6 "asynchronous and preemptive"
// alternative invoked when the application shifts to GPU compute. The
// work overlaps kernel launch, so its cost is recorded in Stats rather
// than charged to batches. It returns the total overlapped cost.
func (d *Driver) PreUnmapAllocations() sim.Time {
	var total sim.Time
	for _, sp := range d.spans {
		for bid := sp.first; bid <= sp.last; bid++ {
			if d.vm.CPUMappedPages(bid) == 0 {
				continue
			}
			cost, _ := d.vm.UnmapMappingRange(bid)
			total += cost
			d.stats.AsyncUnmapCalls++
		}
	}
	d.stats.AsyncUnmapTime += total
	return total
}

// spanOf returns the allocation span containing bid, if any.
func (d *Driver) spanOf(bid mem.VABlockID) (allocSpan, bool) {
	for _, sp := range d.spans {
		if bid >= sp.first && bid <= sp.last {
			return sp, true
		}
	}
	return allocSpan{}, false
}
