package uvm

import (
	"testing"

	"guvm/internal/gpu"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/sim"
)

func TestArbiterImmediateGrantWhenIdle(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArbiter(eng)
	ran := false
	a.Acquire(func() { ran = true })
	if !ran {
		t.Fatal("idle arbiter did not grant immediately")
	}
	st := a.Stats()
	if st.Grants != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArbiterQueuesAndOrdersWaiters(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArbiter(eng)
	var order []int
	a.Acquire(func() { order = append(order, 0) })
	a.Acquire(func() { order = append(order, 1); a.Release() })
	a.Acquire(func() { order = append(order, 2); a.Release() })
	// Holder 0 releases at t=100.
	eng.Schedule(100, a.Release)
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order = %v", order)
	}
	st := a.Stats()
	if st.Queued != 2 {
		t.Fatalf("queued = %d, want 2", st.Queued)
	}
	if st.TotalWait < 200 { // both waited >= 100
		t.Fatalf("total wait = %d, want >= 200", st.TotalWait)
	}
}

func TestArbiterReleasePanicsWhenIdle(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArbiter(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Release()
}

// newSystemShared wires a driver + device onto an existing engine, so
// multiple systems can share virtual time (multi-GPU tests).
func newSystemShared(eng *sim.Engine, gcfg gpu.Config, ucfg Config) (*Driver, *gpu.Device) {
	vm := hostos.NewVM(hostos.DefaultCostModel())
	link := interconnect.NewLink(interconnect.DefaultPCIe3x16())
	drv, err := NewDriver(ucfg, eng, vm, link)
	if err != nil {
		panic(err)
	}
	dev, err := gpu.NewDevice(gcfg, eng, drv)
	if err != nil {
		panic(err)
	}
	drv.Attach(dev)
	return drv, dev
}

func TestArbiterSerializesTwoDrivers(t *testing.T) {
	// Two drivers sharing one arbiter: their batch intervals must not
	// overlap.
	eng := sim.NewEngine()
	eng.MaxEvents = 100_000_000
	arb := NewArbiter(eng)

	mk := func() *Driver {
		ucfg := noPrefetch()
		drv, dev := newSystemShared(eng, smallGPU(), ucfg)
		drv.SetArbiter(arb)
		base := drv.Alloc(2 << 21)
		dev.LaunchKernel(streamKernel(base, 1024), func() {})
		return drv
	}
	d1 := mk()
	d2 := mk()
	eng.Run()
	if d1.Stats().Batches == 0 || d2.Stats().Batches == 0 {
		t.Fatal("a driver serviced no batches")
	}
	// Collect all batch intervals across both drivers and check for
	// overlap.
	type iv struct{ s, e sim.Time }
	var ivs []iv
	for _, d := range []*Driver{d1, d2} {
		for _, b := range d.Collector.Batches {
			// Exclude fetch start before slot grant: Start is set at
			// grant, so intervals reflect slot occupancy.
			ivs = append(ivs, iv{b.Start, b.End})
		}
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			a, b := ivs[i], ivs[j]
			if a.s < b.e && b.s < a.e {
				t.Fatalf("overlapping batch service: [%d,%d] vs [%d,%d]", a.s, a.e, b.s, b.e)
			}
		}
	}
	if arb.Stats().Queued == 0 {
		t.Fatal("no contention recorded despite concurrent clients")
	}
}
