package uvm

// arch.go — the lifted stage graph. The PR-5 registry swaps per-stage
// policies inside one fixed pipeline; this file lifts the pipeline itself
// into the registry, so an architecture entry decides who observes
// faults, which stages run, and where mapping state lives. The paper's
// host-driven driver is re-expressed as the default entry, bit-identical
// to the pre-lift pipeline; the two alternatives model competing designs
// from the related work:
//
//	host-driven    — the paper's §2 design: the device raises a host
//	                 interrupt, the host driver fetches, dedups, services
//	                 and replays, and owns all mapping state.
//	gpu-driven     — GPUVM-style on-device paging: a page-management unit
//	                 on the GPU observes the fault buffer directly and
//	                 runs the same logical pipeline at device-local
//	                 latencies, eliminating the host round-trip.
//	access-counter — delayed migration: faults are first serviced by
//	                 mapping the page remotely (it stays in host memory,
//	                 accessed across the link), and migration is deferred
//	                 until the block's access counter crosses a threshold.
//
// Stage implementations stay architecture-agnostic: they never branch on
// the selected architecture. All dispatch goes through the stage and
// block-step lists the registry entry declares.

import "guvm/internal/mem"

// ArchitectureInfo describes one registered UVM architecture — the
// declarative contract a registry entry states about itself.
type ArchitectureInfo struct {
	// Name is the registry key (the -arch flag / Config.Architecture value).
	Name string
	// Description is the one-line -list-policies text.
	Description string
	// FaultObservation names who observes the fault buffer and at what
	// latency: "host-interrupt" (driver woken across PCIe) or "device"
	// (on-device page management watches the buffer directly).
	FaultObservation string
	// MappingOwner names the layer that owns mapping state: "host-driver"
	// (page tables and residency live with the host driver) or "device"
	// (the GPU's page-management unit updates them locally).
	MappingOwner string
	// Stages and BlockSteps are the profiler label contract: the batch
	// stage list and the per-block step list this architecture runs, in
	// execution order. The obs profiler labels its per-step attribution
	// columns from BlockSteps.
	Stages     []string
	BlockSteps []string
}

// archPayload is the executable half of an architecture entry: the stage
// graph itself plus the wiring the driver applies at construction.
type archPayload struct {
	info       ArchitectureInfo
	stages     []stage
	blockSteps []blockStep
	// configure rewrites the driver config at construction (cost model,
	// thresholds); nil leaves it untouched. host-driven keeps a nil
	// configure so the default architecture cannot perturb the config.
	configure func(*Config)
	// counters enables the device access counters regardless of the
	// eviction policy; remote marks remote (host-pinned) mappings as
	// architectural state the device must consult on every access.
	counters bool
	remote   bool
	// directObs makes the device notify the fault observer at its
	// device-local latency instead of the host interrupt latency.
	directObs bool
}

// The shipped stage graphs. host-driven and gpu-driven run the paper's
// pipeline; access-counter prepends the gate that decides remote-map vs
// migrate for each faulting block.
var (
	hostBatchStages = []stage{dedupStage{}, serviceStage{}, crossBlockStage{}, replayStage{}}
	hostBlockSteps  = []blockStep{residencyStep{}, prefetchPlanStep{}, populateStep{}, transferStep{}}

	counterBlockSteps = []blockStep{counterGateStep{}, residencyStep{}, prefetchPlanStep{}, populateStep{}, transferStep{}}
)

func stageLabels(ss []stage) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name()
	}
	return out
}

func blockStepLabels(ss []blockStep) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name()
	}
	return out
}

var architectureRegistry = &policyTable{kind: KindArchitecture}

// maxBlockSteps bounds an architecture's block-step count: the driver's
// per-step profiling scratch is a fixed array of this size (mirrored by
// the obs profiler's retention cap).
const maxBlockSteps = 8

// registerArchitecture fills in the label contract from the stage graph
// itself, so the declared labels can never drift from what runs.
func registerArchitecture(p *archPayload) {
	if len(p.blockSteps) > maxBlockSteps {
		panic("uvm: architecture " + p.info.Name + " declares too many block steps")
	}
	p.info.Stages = stageLabels(p.stages)
	p.info.BlockSteps = blockStepLabels(p.blockSteps)
	architectureRegistry.register(p.info.Name, p.info.Description, p)
}

func init() {
	registerArchitecture(&archPayload{
		info: ArchitectureInfo{
			Name:             "host-driven",
			Description:      "the paper's driver: interrupt-woken host services fault batches (default)",
			FaultObservation: "host-interrupt",
			MappingOwner:     "host-driver",
		},
		stages:     hostBatchStages,
		blockSteps: hostBlockSteps,
	})

	registerArchitecture(&archPayload{
		info: ArchitectureInfo{
			Name:             "gpu-driven",
			Description:      "GPUVM-style on-device paging: no host round-trip, device-local service latencies",
			FaultObservation: "device",
			MappingOwner:     "device",
		},
		stages:     hostBatchStages,
		blockSteps: hostBlockSteps,
		directObs:  true,
		configure: func(c *Config) {
			// The same logical pipeline, run by an on-device page-management
			// unit: no PCIe interrupt plus driver wakeup, no per-fault PCIe
			// read-back, and a local TLB shootdown instead of a host-issued
			// replay doorbell. Values follow the GPUVM paper's observation
			// that on-device handling removes the ~20-40 µs host costs.
			c.Costs.WakeupLatency = 1000 // buffer poll notice, not a wakeup
			c.Costs.BatchSetup = 3000    // device-local queue setup
			c.Costs.FetchPerFault = 100  // local SRAM read, not PCIe
			c.Costs.ReplayCost = 10000   // local replay doorbell
		},
	})

	registerArchitecture(&archPayload{
		info: ArchitectureInfo{
			Name:             "access-counter",
			Description:      "delayed migration: remote-map faults first, migrate when the block's access counter crosses the threshold",
			FaultObservation: "host-interrupt",
			MappingOwner:     "host-driver",
		},
		stages:     hostBatchStages,
		blockSteps: counterBlockSteps,
		counters:   true,
		remote:     true,
		configure: func(c *Config) {
			if c.AccessCounterThreshold == 0 {
				c.AccessCounterThreshold = 16
			}
		},
	})
}

// Architectures lists the registered UVM architectures in registration
// order (host-driven first).
func Architectures() []ArchitectureInfo {
	out := make([]ArchitectureInfo, 0, len(architectureRegistry.entries))
	for _, e := range architectureRegistry.entries {
		out = append(out, e.payload.(*archPayload).info)
	}
	return out
}

// ArchitectureByName returns the declarative contract of one registered
// architecture. The empty string resolves to the default (host-driven).
func ArchitectureByName(name string) (ArchitectureInfo, error) {
	p, err := resolveArchitecture(name)
	if err != nil {
		return ArchitectureInfo{}, err
	}
	return p.info, nil
}

// Architecture returns the declarative contract of the architecture this
// driver runs (resolved at construction; the default is host-driven).
func (d *Driver) Architecture() ArchitectureInfo { return d.arch.info }

// RemoteMappingActive reports whether the selected architecture services
// faults by remote mapping (access-counter). The device uses it as a
// capability gate: when false, the remote check never enters the access
// hot path.
func (d *Driver) RemoteMappingActive() bool { return d.arch.remote }

// IsRemoteOnGPU reports whether the page is remote-mapped: GPU-accessible
// across the link while its data stays in host memory.
func (d *Driver) IsRemoteOnGPU(p mem.PageID) bool {
	b := d.blocks.Lookup(p.VABlock())
	return b != nil && b.remoteMapped.Has(p.IndexInBlock())
}

// resolveArchitecture maps a name to its payload; "" is the default.
func resolveArchitecture(name string) (*archPayload, error) {
	if name == "" {
		name = "host-driven"
	}
	e, ok := architectureRegistry.lookup(name)
	if !ok {
		return nil, architectureRegistry.unknown(name)
	}
	return e.payload.(*archPayload), nil
}
