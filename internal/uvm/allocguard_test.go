package uvm

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBatchServiceAllocGuard pins the observability layer's inertness
// contract from the hot-path side: with no batch observers attached (the
// default), BenchmarkBatchService must allocate what the frozen PR-3
// baseline measured. A regression here means instrumentation leaked into
// the batch-service path.
func TestBatchServiceAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs the batch-service benchmark; skipped in -short")
	}
	raw, err := os.ReadFile("../../BENCH_pr3.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Measured map[string]struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"measured"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	baseline := doc.Measured["BenchmarkBatchService"].AllocsPerOp
	if baseline <= 0 {
		t.Fatal("BENCH_pr3.json has no measured BenchmarkBatchService allocs_per_op")
	}

	res := testing.Benchmark(BenchmarkBatchService)
	got := float64(res.AllocsPerOp())
	// The pipeline is deterministic, so allocs/op barely moves between
	// runs; 5% headroom absorbs map-growth jitter across Go versions.
	if got > baseline*1.05 {
		t.Fatalf("disabled-observability allocs/op regressed: %.0f, baseline %.0f (+%.1f%%)",
			got, baseline, 100*(got/baseline-1))
	}
	// The staged-pipeline refactor (PR 5) must not cost allocations: pin
	// the post-refactor count to at most the frozen PR-3 absolute. The
	// pooled per-batch/per-block contexts actually shave ~40 allocs/op
	// (the BatchRecord no longer heap-escapes per batch), so this is an
	// exact ceiling, not a headroom bound.
	const pr3AbsolutePin = 39444
	if got > pr3AbsolutePin {
		t.Fatalf("staged pipeline allocs/op %.0f exceeds the frozen PR-3 pin %d", got, pr3AbsolutePin)
	}
	t.Logf("allocs/op %.0f vs baseline %.0f (pin %d)", got, baseline, pr3AbsolutePin)
}
