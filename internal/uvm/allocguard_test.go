package uvm

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBatchServiceAllocGuard pins the hot-path allocation diet: with no
// batch observers attached (the default), BenchmarkBatchService must
// allocate what the frozen PR-8 measurement recorded — the level after
// the calendar-queue engine swap, the struct-of-arrays dedup stage, and
// the pooled GPU event path. A regression here means map churn or
// per-event allocation leaked back into the batch-service path.
func TestBatchServiceAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs the batch-service benchmark; skipped in -short")
	}
	raw, err := os.ReadFile("../../BENCH_pr8.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Measured map[string]struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"measured"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	baseline := doc.Measured["BenchmarkBatchService"].AllocsPerOp
	if baseline <= 0 {
		t.Fatal("BENCH_pr8.json has no measured BenchmarkBatchService allocs_per_op")
	}

	res := testing.Benchmark(BenchmarkBatchService)
	got := float64(res.AllocsPerOp())
	// The pipeline is deterministic, so allocs/op barely moves between
	// runs; 5% headroom absorbs map-growth jitter across Go versions.
	if got > baseline*1.05 {
		t.Fatalf("disabled-observability allocs/op regressed: %.0f, baseline %.0f (+%.1f%%)",
			got, baseline, 100*(got/baseline-1))
	}
	// Hard ceiling: the pre-diet PR-5 freeze. Drifting anywhere near it
	// means the struct-of-arrays work has been undone wholesale, not
	// jittered — fail regardless of what the PR-8 file says.
	const pr5AbsolutePin = 39404
	if got >= pr5AbsolutePin {
		t.Fatalf("allocs/op %.0f reached the pre-diet PR-5 pin %d", got, pr5AbsolutePin)
	}
	t.Logf("allocs/op %.0f vs baseline %.0f (absolute pin %d)", got, baseline, pr5AbsolutePin)
}
