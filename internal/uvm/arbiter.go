package uvm

import "guvm/internal/sim"

// Arbiter serializes batch servicing across multiple drivers (devices).
// The paper's §2.1 architecture is client-server: one host driver services
// page faults for all clients, and §6 identifies the driver as "a serial
// bottleneck for the parallel batch workloads created by the GPU". With
// several GPUs sharing the host driver, batches queue here — the
// multi-device interference the paper positions as follow-on work.
//
// The zero value is ready to use.
type Arbiter struct {
	busy  bool
	queue []func()

	// Stats.
	grants    int
	queued    int
	waitTotal sim.Time

	eng *sim.Engine
}

// NewArbiter returns an arbiter on the given engine.
func NewArbiter(eng *sim.Engine) *Arbiter { return &Arbiter{eng: eng} }

// ArbiterStats reports service-queue contention.
type ArbiterStats struct {
	Grants    int      // service slots granted
	Queued    int      // grants that had to wait
	TotalWait sim.Time // summed queueing delay
}

// Stats returns a copy of the contention counters.
func (a *Arbiter) Stats() ArbiterStats {
	return ArbiterStats{Grants: a.grants, Queued: a.queued, TotalWait: a.waitTotal}
}

// Acquire runs fn as soon as the service slot is free: immediately if
// idle, else after the current holder (and earlier waiters) release.
func (a *Arbiter) Acquire(fn func()) {
	a.grants++
	if !a.busy {
		a.busy = true
		fn()
		return
	}
	a.queued++
	enq := a.eng.Now()
	a.queue = append(a.queue, func() {
		a.waitTotal += a.eng.Now() - enq
		fn()
	})
}

// Release frees the slot, handing it to the next waiter (same virtual
// instant). It panics if the slot is not held — a driver bug.
func (a *Arbiter) Release() {
	if !a.busy {
		panic("uvm: arbiter release without acquire")
	}
	if len(a.queue) == 0 {
		a.busy = false
		return
	}
	next := a.queue[0]
	a.queue = a.queue[1:]
	a.eng.Schedule(0, next)
}
