package uvm

import "guvm/internal/sim"

// Arbiter serializes batch servicing across multiple drivers (devices).
// The paper's §2.1 architecture is client-server: one host driver services
// page faults for all clients, and §6 identifies the driver as "a serial
// bottleneck for the parallel batch workloads created by the GPU". With
// several GPUs sharing the host driver, batches queue here — the
// multi-device interference the paper positions as follow-on work.
//
// The zero value is ready to use.
//
// The arbiter is also the system-level ledger for device-loss recovery:
// when a device dies and its driver re-homes resident pages to the host
// (rehome.go), the event is recorded here so audits and post-mortems can
// account for every page across the fault domain.
type Arbiter struct {
	busy  bool
	queue []func()

	// Stats.
	grants    int
	queued    int
	waitTotal sim.Time

	rehomes []RehomeRecord

	eng *sim.Engine
}

// NewArbiter returns an arbiter on the given engine.
func NewArbiter(eng *sim.Engine) *Arbiter { return &Arbiter{eng: eng} }

// ArbiterStats reports service-queue contention.
type ArbiterStats struct {
	Grants    int      // service slots granted
	Queued    int      // grants that had to wait
	TotalWait sim.Time // summed queueing delay
}

// Stats returns a copy of the contention counters.
func (a *Arbiter) Stats() ArbiterStats {
	return ArbiterStats{Grants: a.grants, Queued: a.queued, TotalWait: a.waitTotal}
}

// RehomeRecord is one audited device-loss recovery: device Device died
// after Batch completed batches and its driver evacuated Pages resident
// pages (Bytes bytes) across Blocks VABlocks back to host memory at
// virtual time At.
type RehomeRecord struct {
	Device int
	Batch  int
	Blocks int
	Pages  int
	Bytes  uint64
	At     sim.Time
}

// NoteRehome records a device-loss recovery in the system ledger.
func (a *Arbiter) NoteRehome(r RehomeRecord) {
	a.rehomes = append(a.rehomes, r)
}

// Rehomes returns the recorded device-loss recoveries in event order.
func (a *Arbiter) Rehomes() []RehomeRecord {
	out := make([]RehomeRecord, len(a.rehomes))
	copy(out, a.rehomes)
	return out
}

// Acquire runs fn as soon as the service slot is free: immediately if
// idle, else after the current holder (and earlier waiters) release.
func (a *Arbiter) Acquire(fn func()) {
	a.grants++
	if !a.busy {
		a.busy = true
		fn()
		return
	}
	a.queued++
	enq := a.eng.Now()
	a.queue = append(a.queue, func() {
		a.waitTotal += a.eng.Now() - enq
		fn()
	})
}

// Release frees the slot, handing it to the next waiter (same virtual
// instant). It panics if the slot is not held — a driver bug.
func (a *Arbiter) Release() {
	if !a.busy {
		panic("uvm: arbiter release without acquire")
	}
	if len(a.queue) == 0 {
		a.busy = false
		return
	}
	next := a.queue[0]
	a.queue = a.queue[1:]
	a.eng.Schedule(0, next)
}
