package uvm

// dedup.go — duplicate classification and VABlock grouping, the first
// synchronous stage of the batch pipeline (§4.2).
//
// Profiler attribution: the whole stage is one serial charge
// (rec.TDedup); the lifecycle profiler anchors its "deduped" mark at
// pipeline entry + TDedup and treats stale-filtered faults as serviced
// at that instant (no block ever runs for them).

import (
	"slices"
	"sort"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

// dedupStage classifies duplicate faults by µTLB of origin, filters
// stale (already-resident) pages, groups the remainder by VABlock in
// ascending order, and builds the raw per-block fault histogram
// (Table 3). It also charges the batch's fixed front-end costs into the
// batch total: setup, fetch, and dedup.
//
// The stage is a struct-of-arrays sort-scan rather than the obvious
// hash-map pass: each fault is packed into a single integer key
// (page<<16 | arrival index), the keys are sorted once, and every
// product of the old map pass falls out of one linear scan — page runs
// are the unique pages (already ascending), the run head is the first
// arrival whose µTLB classifies the later duplicates as type-1/type-2,
// and VABlock run lengths are the raw histogram. A 256-fault batch
// fires thousands of times per simulated second, so the map hashing and
// the comparator sort this replaces were the driver's top profile
// entries.
type dedupStage struct{}

func (dedupStage) name() string { return "dedup" }

// dedupPackBits is the arrival-index width inside a packed key. The
// packed fast path needs every index under 1<<dedupPackBits and every
// page below 1<<(64-dedupPackBits-1); batches are capped far below 64Ki
// faults and pages live in a 48-bit VA, so the comparator fallback is
// for adversarial configs only.
const dedupPackBits = 16

func (dedupStage) run(d *Driver, bc *batchCtx) error {
	sc := bc.sc
	rec := &bc.rec

	// Per-SM fault histogram: order-independent counters.
	for i := range bc.faults {
		rec.FaultsPerSM[bc.faults[i].SM]++
	}

	n := len(bc.faults)
	keys := sc.keys[:0]
	packed := n <= 1<<dedupPackBits
	if packed {
		for i, f := range bc.faults {
			if uint64(f.Page) >= 1<<(63-dedupPackBits) {
				packed = false
				break
			}
			keys = append(keys, uint64(f.Page)<<dedupPackBits|uint64(i))
		}
	}
	if packed {
		slices.Sort(keys)
	} else {
		keys = keys[:0]
		for i := range bc.faults {
			keys = append(keys, uint64(i))
		}
		sort.Slice(keys, func(a, b int) bool {
			fa, fb := &bc.faults[keys[a]], &bc.faults[keys[b]]
			if fa.Page != fb.Page {
				return fa.Page < fb.Page
			}
			return keys[a] < keys[b]
		})
	}
	sc.keys = keys
	pageOf := func(k uint64) mem.PageID {
		if packed {
			return mem.PageID(k >> dedupPackBits)
		}
		return bc.faults[k].Page
	}
	idxOf := func(k uint64) int {
		if packed {
			return int(k & (1<<dedupPackBits - 1))
		}
		return int(k)
	}

	// Duplicate classification (§4.2): within each page run the head key
	// carries the smallest arrival index — the first fault, whose µTLB
	// is the reference. A repeat from the same µTLB is a type-1
	// duplicate, from a different µTLB type-2.
	var curPage mem.PageID
	var firstUTLB int
	for ki, k := range keys {
		p := pageOf(k)
		if ki == 0 || p != curPage {
			curPage = p
			firstUTLB = bc.faults[idxOf(k)].UTLB
			sc.uniq = append(sc.uniq, p)
			continue
		}
		if bc.faults[idxOf(k)].UTLB == firstUTLB {
			rec.Type1Dups++
		} else {
			rec.Type2Dups++
		}
	}
	rec.TDedup = sim.Time(n) * d.cfg.Costs.DedupPerFault
	rec.UniquePages = len(sc.uniq)

	// Group unique, non-stale pages by VABlock: uniq is already sorted
	// ascending (it mirrors the key order), so each VABlock's group is a
	// contiguous run of nonStale and blockOrder stays ascending.
	for _, p := range sc.uniq {
		if d.IsResidentOnGPU(p) {
			rec.StalePages++
			d.stats.StaleFaults++
			continue
		}
		if b := p.VABlock(); len(sc.blockOrder) == 0 || sc.blockOrder[len(sc.blockOrder)-1] != b {
			sc.blockOrder = append(sc.blockOrder, b)
		}
		sc.nonStale = append(sc.nonStale, p)
	}
	rec.VABlocks = len(sc.blockOrder)

	// Raw fault distribution over VABlocks (Table 3): counts include
	// duplicates, in ascending block order — VABlock runs are contiguous
	// in the sorted keys, so the histogram is their run lengths.
	var curBlk mem.VABlockID
	for ki, k := range keys {
		b := pageOf(k).VABlock()
		if ki == 0 || b != curBlk {
			curBlk = b
			rec.VABlockFaults = append(rec.VABlockFaults, 0)
		}
		if last := len(rec.VABlockFaults) - 1; rec.VABlockFaults[last] < 65535 {
			rec.VABlockFaults[last]++
		}
	}

	rec.ServicedBlocks = append(rec.ServicedBlocks, sc.blockOrder...)
	bc.total += d.cfg.Costs.BatchSetup + bc.tFetch + rec.TDedup
	return nil
}

// inBatch reports whether bid is being serviced by the current batch —
// eviction's "don't immediately re-fault the victim" check. Serviced
// blocks live in two places: blockOrder (sorted ascending, from dedup)
// and inBatchExtra (the handful the cross-block stage adds afterwards).
func (sc *batchScratch) inBatch(bid mem.VABlockID) bool {
	if _, ok := slices.BinarySearch(sc.blockOrder, bid); ok {
		return true
	}
	for _, b := range sc.inBatchExtra {
		if b == bid {
			return true
		}
	}
	return false
}
