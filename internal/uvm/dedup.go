package uvm

// dedup.go — duplicate classification and VABlock grouping, the first
// synchronous stage of the batch pipeline (§4.2).

import (
	"sort"

	"guvm/internal/sim"
)

// dedupStage classifies duplicate faults by µTLB of origin, filters
// stale (already-resident) pages, groups the remainder by VABlock in
// ascending order, and builds the raw per-block fault histogram
// (Table 3). It also charges the batch's fixed front-end costs into the
// batch total: setup, fetch, and dedup.
type dedupStage struct{}

func (dedupStage) name() string { return "dedup" }

func (dedupStage) run(d *Driver, bc *batchCtx) error {
	sc := bc.sc
	rec := &bc.rec

	// Duplicate classification (§4.2): a repeat of a page from the same
	// µTLB is a type-1 duplicate, from a different µTLB type-2.
	for _, f := range bc.faults {
		rec.FaultsPerSM[f.SM]++
		if firstUTLB, ok := sc.seen[f.Page]; ok {
			if f.UTLB == firstUTLB {
				rec.Type1Dups++
			} else {
				rec.Type2Dups++
			}
			continue
		}
		sc.seen[f.Page] = f.UTLB
		sc.uniq = append(sc.uniq, f.Page)
	}
	rec.TDedup = sim.Time(len(bc.faults)) * d.cfg.Costs.DedupPerFault
	rec.UniquePages = len(sc.uniq)

	// Group unique, non-stale pages by VABlock, in ascending order: the
	// driver processes all batch faults within one VABlock together.
	// Sorted pages make each VABlock's group a contiguous run of
	// nonStale, so no per-block map is needed.
	sort.Slice(sc.uniq, func(i, j int) bool { return sc.uniq[i] < sc.uniq[j] })
	for _, p := range sc.uniq {
		if d.IsResidentOnGPU(p) {
			rec.StalePages++
			d.stats.StaleFaults++
			continue
		}
		if b := p.VABlock(); len(sc.blockOrder) == 0 || sc.blockOrder[len(sc.blockOrder)-1] != b {
			sc.blockOrder = append(sc.blockOrder, b)
		}
		sc.nonStale = append(sc.nonStale, p)
	}
	rec.VABlocks = len(sc.blockOrder)

	// Raw fault distribution over VABlocks (Table 3): counts include
	// duplicates, in ascending block order.
	for _, f := range bc.faults {
		sc.rawPerBlock[f.Page.VABlock()]++
	}
	for b := range sc.rawPerBlock {
		sc.rawBlocks = append(sc.rawBlocks, b)
	}
	sort.Slice(sc.rawBlocks, func(i, j int) bool { return sc.rawBlocks[i] < sc.rawBlocks[j] })
	rec.VABlockFaults = make([]uint16, len(sc.rawBlocks))
	for i, b := range sc.rawBlocks {
		n := sc.rawPerBlock[b]
		if n > 65535 {
			n = 65535
		}
		rec.VABlockFaults[i] = uint16(n)
	}

	// Mark the serviced blocks so eviction avoids immediately re-faulting
	// victims, and record them.
	for _, bid := range sc.blockOrder {
		sc.inThisBatch[bid] = true
	}
	rec.ServicedBlocks = append(rec.ServicedBlocks, sc.blockOrder...)
	bc.total += d.cfg.Costs.BatchSetup + bc.tFetch + rec.TDedup
	return nil
}
