package experiments

import (
	"fmt"

	"guvm"
	"guvm/internal/report"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// Ablations evaluates the §6 "Discussion" improvements the paper proposes
// but does not build. Each ablation turns exactly one knob against the
// shipped-driver baseline.

// AblParallel evaluates parallel per-VABlock servicing. Paper §6: "The
// current architecture would lend itself towards straightforward
// parallelization among VABlocks, but our workload analysis shows this
// would create a very imbalanced workload." Expectation: scattered
// workloads (random) scale; concentrated ones (gauss-seidel) barely move;
// LPT load balancing recovers a little.
func AblParallel() (*Artifact, error) {
	a := &Artifact{ID: "abl-parallel", Title: "Parallel VABlock servicing (§6 proposal)"}
	t := &report.Table{
		Title:   "Batch time (ms) by driver worker count",
		Headers: []string{"workload", "serial", "2w", "4w", "4w_LPT", "speedup_4w"},
	}
	cases := []struct {
		name string
		mk   func() workloads.Workload
	}{
		{"random", func() workloads.Workload { return workloads.NewRandom(256<<20, 160, 200, 11) }},
		{"gauss-seidel", func() workloads.Workload { return workloads.NewGaussSeidel(3072, 2) }},
	}
	type cfgVariant struct {
		workers int
		lpt     bool
	}
	variants := []cfgVariant{{1, false}, {2, false}, {4, false}, {4, true}}
	speedups := map[string]float64{}
	for _, c := range cases {
		var batchMs []float64
		for _, v := range variants {
			cfg := noPrefetch(baseConfig())
			cfg.Driver.GPUMemBytes = 512 << 20
			cfg.Driver.ServiceWorkers = v.workers
			cfg.Driver.LoadBalanceLPT = v.lpt
			res, err := run(cfg, c.mk())
			if err != nil {
				return nil, err
			}
			batchMs = append(batchMs, ms(res.BatchTime()))
		}
		sp := batchMs[0] / batchMs[2]
		speedups[c.name] = sp
		t.AddRow(c.name, batchMs[0], batchMs[1], batchMs[2], batchMs[3], sp)
	}
	a.Tables = append(a.Tables, t)
	a.Notef("paper: per-VABlock parallelism is limited by workload imbalance; measured 4-worker batch-time speedup %.2fx for scattered random vs %.2fx for concentrated gauss-seidel",
		speedups["random"], speedups["gauss-seidel"])
	return a, nil
}

// AblAdaptiveBatch evaluates duplicate-adaptive batch sizing. Paper §6:
// "A simple improvement could be to tune batch size based on the number
// of duplicate faults received."
func AblAdaptiveBatch() (*Artifact, error) {
	a := &Artifact{ID: "abl-adaptive", Title: "Duplicate-adaptive batch sizing (§6 proposal)"}
	t := &report.Table{
		Title:   "Fixed vs adaptive batch size (dup-heavy sgemm)",
		Headers: []string{"policy", "kernel_ms", "batches", "dups_fetched", "final_eff_batch"},
	}
	mk := func() workloads.Workload {
		w := workloads.NewSGEMM(2048) // fine tiles: dup-heavy panel sharing
		return w
	}
	var kernels []float64
	for _, sizing := range []string{"fixed", "adaptive"} {
		cfg := noPrefetch(baseConfig())
		cfg.Driver.BatchSize = 1024
		cfg.Policies.BatchSizing = sizing
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: abl-adaptive: %w", err)
		}
		res, err := s.Run(mk())
		if err != nil {
			return nil, fmt.Errorf("experiments: abl-adaptive: %w", err)
		}
		dups := 0
		for _, b := range res.Batches {
			dups += b.DupFaults()
		}
		name := "fixed-1024"
		if sizing == "adaptive" {
			name = "adaptive"
		}
		t.AddRow(name, ms(res.KernelTime), len(res.Batches), dups, s.Driver.EffectiveBatchSize())
		kernels = append(kernels, ms(res.KernelTime))
	}
	a.Tables = append(a.Tables, t)
	a.Notef("adaptive batch sizing vs fixed large cap on a duplicate-heavy workload: %.1fms vs %.1fms kernel (%.0f%% change)",
		kernels[1], kernels[0], 100*(kernels[0]-kernels[1])/kernels[0])
	return a, nil
}

// AblAsyncUnmap evaluates preemptive unmapping. Paper §6: "performing
// these operations asynchronously and preemptively may be preferable when
// an application shifts to GPU compute." Expectation: the Figure-11
// multithreaded HPGMG penalty largely disappears.
func AblAsyncUnmap() (*Artifact, error) {
	a := &Artifact{ID: "abl-asyncunmap", Title: "Preemptive CPU unmapping (§6 proposal)"}
	t := &report.Table{
		Title:   "HPGMG, 32 host threads: fault-path vs preemptive unmapping",
		Headers: []string{"policy", "kernel_ms", "faultpath_unmap_ms", "preemptive_unmap_ms"},
	}
	mk := func() workloads.Workload {
		w := workloads.NewHPGMG(64<<20, 32)
		w.Blocks = 16
		w.ChunkPages = 16
		w.HostTouchFraction = 1.0
		return w
	}
	var kernels []float64
	for _, async := range []bool{false, true} {
		cfg := baseConfig()
		cfg.Driver.AsyncUnmap = async
		res, err := run(cfg, mk())
		if err != nil {
			return nil, err
		}
		var unmap float64
		for _, b := range res.Batches {
			unmap += us(b.TUnmap)
		}
		name := "fault-path"
		if async {
			name = "preemptive"
		}
		t.AddRow(name, ms(res.KernelTime), unmap/1000, float64(res.DriverStats.AsyncUnmapTime)/1e6)
		kernels = append(kernels, ms(res.KernelTime))
	}
	a.Tables = append(a.Tables, t)
	a.Notef("moving unmap_mapping_range off the fault path cuts multithreaded HPGMG kernel time %.1fms -> %.1fms (%.2fx)",
		kernels[0], kernels[1], kernels[0]/kernels[1])
	return a, nil
}

// AblCrossBlockPrefetch evaluates prefetch scope beyond one VABlock.
// Paper §6: "increasing the prefetching scope to more than one allocation
// ... could mitigate these issues but may also complicate eviction."
// Expectation: sequential streams gain (first-touch batches are
// pre-paid); oversubscribed irregular workloads lose (eviction interplay).
func AblCrossBlockPrefetch() (*Artifact, error) {
	a := &Artifact{ID: "abl-xblock", Title: "Cross-VABlock prefetch scope (§6 proposal)"}
	t := &report.Table{
		Title:   "Prefetch scope: within-block (shipped) vs +2 blocks ahead",
		Headers: []string{"scenario", "scope", "kernel_ms", "batches", "evictions"},
	}
	type scenario struct {
		name  string
		capMB uint64
		mk    func() workloads.Workload
	}
	scenarios := []scenario{
		{"stream in-core", 256, func() workloads.Workload {
			return workloads.NewStream(32<<20, 12)
		}},
		{"random oversubscribed", 48, func() workloads.Workload {
			return workloads.NewRandom(96<<20, 80, 200, 3)
		}},
	}
	gains := map[string]float64{}
	for _, sc := range scenarios {
		var kernels []float64
		// "tree" is the shipped within-block prefetcher; "cross-block" is
		// the §6 proposal with the registry's default +2-block scope.
		for _, pol := range []string{"tree", "cross-block"} {
			cfg := baseConfig()
			cfg.Driver.GPUMemBytes = sc.capMB << 20
			cfg.Policies.Prefetch = pol
			res, err := run(cfg, sc.mk())
			if err != nil {
				return nil, err
			}
			label := "within-block"
			if pol == "cross-block" {
				label = "+2 blocks"
			}
			t.AddRow(sc.name, label, ms(res.KernelTime), len(res.Batches), res.DriverStats.Evictions)
			kernels = append(kernels, ms(res.KernelTime))
		}
		gains[sc.name] = kernels[0] / kernels[1]
	}
	a.Tables = append(a.Tables, t)
	a.Notef("cross-block prefetch: sequential stream %.2fx, oversubscribed random %.2fx (values <1 mean it hurts — the predicted eviction interplay)",
		gains["stream in-core"], gains["random oversubscribed"])
	return a, nil
}

// AblEvictionPolicy compares replacement policies. Paper §5.4: "This LRU
// policy may not be optimal, as some evicted pages are needed shortly and
// must again be migrated back."
func AblEvictionPolicy() (*Artifact, error) {
	a := &Artifact{ID: "abl-eviction", Title: "VABlock eviction policy"}
	t := &report.Table{
		Title:   "Eviction policy under cyclic reuse (gauss-seidel, ~116% oversub)",
		Headers: []string{"policy", "kernel_ms", "evictions", "bytes_rewritten_MB"},
	}
	// Sweep every registered eviction policy by name (registration order:
	// lru, fifo, random, lfu), so policies added via RegisterEvictionPolicy
	// join the ablation automatically.
	for _, pol := range uvm.PoliciesOf(uvm.KindEviction) {
		cfg := baseConfig()
		cfg.Driver.GPUMemBytes = 32 << 20
		cfg.Policies.Eviction = pol.Name
		res, err := run(cfg, workloads.NewGaussSeidel(3072, 3))
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.Name, ms(res.KernelTime), res.DriverStats.Evictions,
			float64(res.LinkStats.BytesToHost)/(1<<20))
	}
	a.Tables = append(a.Tables, t)
	a.Notes = append(a.Notes,
		"paper: LRU degrades to earliest-allocated under dense access and re-evicts soon-needed data; sequential sweeps make LRU pathological (evicts exactly what the next sweep needs first), which random placement partially avoids",
		"lfu uses the GPU access counters (the page-hit information §5.4 notes the shipped driver lacks)")
	return a, nil
}
