package experiments

import (
	"guvm"
	"guvm/internal/mem"
	"guvm/internal/report"
	"guvm/internal/sim"
	"guvm/internal/stats"
	"guvm/internal/workloads"
)

// tableWorkloads are the seven benchmarks of Tables 2 and 3. The synthetic
// regular/random benchmarks are page-strided fault hammers (saturating the
// batch limit like the paper's); the applications carry coalescing and
// ILP-bounded pacing, so they fault far more slowly. Random spans a large
// sparse array so nearly every fault lands in its own VABlock.
func tableWorkloads() []workloads.Workload {
	sgemm := workloads.NewSGEMM(2048)
	sgemm.Tile = 512
	sgemm.ChunkPages = 4
	sgemm.ComputePerChunk = 60 * sim.Microsecond
	return []workloads.Workload{
		workloads.NewRegular(128<<20, 160),
		workloads.NewRandom(2<<30, 160, 300, 11),
		sgemm,
		workloads.NewStream(32<<20, 12),
		workloads.NewFFT(4<<20, 10),
		workloads.NewGaussSeidel(3072, 2),
		workloads.NewHPGMG(64<<20, 1),
	}
}

// tableRunCache memoizes the shared Table 2/3 workload runs with
// single-flight semantics: concurrent generators that need the set (e.g.
// table2 and table3 under the parallel runner) compute it exactly once,
// and readers treat the map and its Results as immutable.
var tableRunCache memo[map[string]*guvm.Result]

// ResetCache discards all memoized cross-experiment state so benchmarks
// can time full regenerations. Today that is exactly the table-workload
// run set; any future package-level memo must be a memo cell reset here
// (see singleflight.go). Safe to call concurrently.
func ResetCache() { tableRunCache.Reset() }

// tableRuns executes the Table 2/3 workload set once (no prefetching, so
// the fault statistics reflect raw demand faults; in-core on a 4 GB
// capacity like the paper's in-core table runs) and memoizes results.
// Nothing is cached on failure, so a retry starts clean.
func tableRuns() (map[string]*guvm.Result, error) {
	return tableRunCache.Do(func() (map[string]*guvm.Result, error) {
		runs := make(map[string]*guvm.Result)
		for _, w := range tableWorkloads() {
			cfg := noPrefetch(baseConfig())
			cfg.Driver.GPUMemBytes = 4 << 30
			res, err := run(cfg, w)
			if err != nil {
				return nil, err
			}
			runs[w.Name()] = res
		}
		return runs, nil
	})
}

// Table2 reproduces Table 2: per-SM fault counts per batch. The paper's
// claims: batches mix faults from nearly all SMs; synthetic regular and
// random saturate at 256/80 = 3.2 faults per SM per batch, while real
// applications stay well below one-to-few faults per SM.
func Table2() (*Artifact, error) {
	a := &Artifact{ID: "table2", Title: "Per-SM source statistics in each batch"}
	numSMs := float64(baseConfig().GPU.NumSMs)

	t := &report.Table{
		Title:   "Table 2: per-SM faults per batch",
		Headers: []string{"benchmark", "avg_faults_per_sm", "std_dev", "min", "max"},
	}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	order := []string{"regular", "random", "sgemm", "stream", "cufft", "gauss-seidel", "hpgmg"}
	maxSynthetic, maxApp := 0.0, 0.0
	for _, name := range order {
		res := runs[name]
		perBatch := make([]float64, 0, len(res.Batches))
		for _, b := range res.Batches {
			perBatch = append(perBatch, float64(b.RawFaults)/numSMs)
		}
		s := stats.Summarize(perBatch)
		t.AddRow(name, s.Mean, s.StdDev, s.Min, s.Max)
		if name == "regular" || name == "random" {
			if s.Mean > maxSynthetic {
				maxSynthetic = s.Mean
			}
		} else if s.Mean > maxApp {
			maxApp = s.Mean
		}
	}
	a.Tables = append(a.Tables, t)
	a.Notef("paper: regular/random average ~3.0 faults/SM (cap 3.20 = 256/80); measured synthetic max avg %.2f", maxSynthetic)
	a.Notef("paper: applications average <1 fault/SM per batch; measured app max avg %.2f", maxApp)
	return a, nil
}

// Table3 reproduces Table 3: the distribution of batch faults over
// VABlocks. Claims: random spreads ~1 fault per block over hundreds of
// blocks; streaming/stencil codes concentrate tens of faults in a few
// blocks; the per-block variance is large for real applications, which is
// why per-VABlock driver parallelism would be imbalanced.
func Table3() (*Artifact, error) {
	a := &Artifact{ID: "table3", Title: "VABlock source statistics in a batch"}
	t := &report.Table{
		Title:   "Table 3: faults over VABlocks",
		Headers: []string{"benchmark", "vablocks_per_batch", "faults_per_vablock", "std_dev", "min", "max"},
	}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	order := []string{"regular", "random", "sgemm", "stream", "cufft", "gauss-seidel", "hpgmg"}
	var randomBlocks, stencilBlocks float64
	for _, name := range order {
		res := runs[name]
		var blocksPerBatch []float64
		var faultsPerBlock []float64
		for _, b := range res.Batches {
			blocksPerBatch = append(blocksPerBatch, float64(len(b.VABlockFaults)))
			for _, c := range b.VABlockFaults {
				faultsPerBlock = append(faultsPerBlock, float64(c))
			}
		}
		sb := stats.Summarize(blocksPerBatch)
		sf := stats.Summarize(faultsPerBlock)
		t.AddRow(name, sb.Mean, sf.Mean, sf.StdDev, sf.Min, sf.Max)
		switch name {
		case "random":
			randomBlocks = sb.Mean
		case "gauss-seidel":
			stencilBlocks = sb.Mean
		}
	}
	a.Tables = append(a.Tables, t)
	a.Notef("paper: random touches ~233 VABlocks/batch at ~1 fault each; measured %.1f blocks/batch", randomBlocks)
	a.Notef("paper: gauss-seidel concentrates faults in ~2.3 blocks/batch; measured %.1f", stencilBlocks)
	return a, nil
}

// table4Scenario holds one Table 4 row pair's configuration.
type table4Scenario struct {
	name     string
	capacity uint64
	make     func() workloads.Workload
}

// Table4 reproduces Table 4: total batch and kernel times for Gauss-Seidel
// and HPGMG under modest oversubscription, with and without prefetching.
// The paper measures 3.39x (Gauss-Seidel) and 2.72x (HPGMG) kernel
// speedups from prefetching, with batch time strictly below kernel time.
func Table4() (*Artifact, error) {
	a := &Artifact{ID: "table4", Title: "Batch and kernel times, prefetch off/on"}
	scenarios := []table4Scenario{
		{
			name:     "Gauss-Seidel",
			capacity: 32 << 20, // grid 36 MB -> ~116% of capacity
			make:     func() workloads.Workload { return workloads.NewGaussSeidel(3072, 3) },
		},
		{
			name:     "HPGMG",
			capacity: 40 << 20, // levels sum ~50 MB -> ~125% of capacity
			make:     func() workloads.Workload { return workloads.NewHPGMG(40<<20, 1) },
		},
	}
	t := &report.Table{
		Title: "Table 4: batch and kernel execution times (ms)",
		Headers: []string{"benchmark", "noPF_batch_ms", "noPF_kernel_ms",
			"PF_batch_ms", "PF_kernel_ms", "kernel_speedup"},
	}
	var speedups []float64
	for _, sc := range scenarios {
		cfg := baseConfig()
		cfg.Driver.GPUMemBytes = sc.capacity
		off, err := run(noPrefetch(cfg), sc.make())
		if err != nil {
			return nil, err
		}
		on, err := run(cfg, sc.make())
		if err != nil {
			return nil, err
		}
		speedup := float64(off.KernelTime) / float64(on.KernelTime)
		speedups = append(speedups, speedup)
		t.AddRow(sc.name,
			ms(off.BatchTime()), ms(off.KernelTime),
			ms(on.BatchTime()), ms(on.KernelTime), speedup)
		if off.DriverStats.Evictions == 0 || on.DriverStats.Evictions == 0 {
			a.Notef("WARNING: %s did not evict (off=%d on=%d evictions)",
				sc.name, off.DriverStats.Evictions, on.DriverStats.Evictions)
		}
	}
	a.Tables = append(a.Tables, t)
	a.Notef("paper: prefetching speeds up Gauss-Seidel 3.39x and HPGMG 2.72x under modest oversubscription; measured %.2fx and %.2fx",
		speedups[0], speedups[1])
	a.Notef("paper: aggregate batch time is below kernel time (batching excludes interrupt + in-memory GPU work)")
	return a, nil
}

// blockCount converts a byte size to VABlocks (rounding up).
func blockCount(bytes uint64) int {
	return int(mem.AlignUp(bytes, mem.VABlockSize) / mem.VABlockSize)
}
