package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"guvm"
	"guvm/internal/workloads"
)

// renderProfile runs one profiled workload and serializes every profiler
// CSV artifact (breakdown, lifecycle, batches, heat) into one string —
// the byte stream `uvmsim -profile-dir` would write for that run.
func renderProfile(t *testing.T, cfg guvm.SystemConfig, w workloads.Workload) string {
	t.Helper()
	cfg.Obs.Profile = true
	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(w); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p := s.Obs.Profiler
	for _, write := range []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return p.WriteBreakdownCSV(b) },
		func(b *bytes.Buffer) error { return p.WriteLifecycleCSV(b) },
		func(b *bytes.Buffer) error { return p.WriteBatchesCSV(b) },
		func(b *bytes.Buffer) error { return p.WriteHeatCSV(b) },
	} {
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestProfileArtifactsJobsInvariant pins that profiled simulations fanned
// out on the worker pool produce byte-identical profile CSV artifacts at
// -jobs 1 and -jobs 8: the profiler holds only per-simulation state, so
// concurrency must not leak into any artifact.
func TestProfileArtifactsJobsInvariant(t *testing.T) {
	const n = 8
	mk := func(i int) workloads.Workload {
		if i%2 == 0 {
			return workloads.NewVecAddPaper()
		}
		return workloads.NewStream(8<<20, 12)
	}
	render := func(jobs int) []string {
		out := make([]string, n)
		err := ForEachOrdered(nil, n, jobs, func(i int) string {
			return renderProfile(t, baseConfig(), mk(i))
		}, func(i int, s string) { out[i] = s })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, parallel := render(1), render(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("profile artifacts for run %d differ between -jobs 1 and -jobs 8", i)
		}
		if len(serial[i]) == 0 {
			t.Fatalf("empty profile artifacts for run %d", i)
		}
	}
}

// TestBreakdownExperimentDeterministic pins that the breakdown generator
// itself renders byte-identical tables across runs (it feeds paperfigs
// artifacts that are diffed in CI).
func TestBreakdownExperimentDeterministic(t *testing.T) {
	render := func() string {
		a, err := Breakdown()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range a.Tables {
			buf.WriteString(tb.CSV())
		}
		for _, n := range a.Notes {
			fmt.Fprintln(&buf, n)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("two breakdown runs rendered different artifacts")
	}
	if a == "" {
		t.Fatal("breakdown rendered nothing")
	}
}
