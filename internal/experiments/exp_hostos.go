package experiments

import (
	"guvm"
	"guvm/internal/report"
	"guvm/internal/workloads"
)

// Fig11 reproduces Figure 11: the same HPGMG problem with single-threaded
// vs default (multi-threaded) host-side OpenMP work. Claims: the
// single-threaded configuration runs roughly twice as fast, and the gap is
// attributable to unmap_mapping_range on the fault path — multithreaded
// host touching makes CPU page unmapping far more expensive.
func Fig11() (*Artifact, error) {
	a := &Artifact{ID: "fig11", Title: "HPGMG host threading vs unmap cost"}
	cfg := baseConfig()

	mk := func(threads int) workloads.Workload {
		w := workloads.NewHPGMG(64<<20, threads)
		// Figure 11's NVIDIA HPGMG build runs many boxes concurrently
		// and re-touches most of the fine grid between cycles.
		w.Blocks = 16
		w.ChunkPages = 16
		w.HostTouchFraction = 1.0
		return w
	}
	single, err := run(cfg, mk(1))
	if err != nil {
		return nil, err
	}
	multi, err := run(cfg, mk(32))
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Figure 11: HPGMG, 1 host thread vs 32",
		Headers: []string{"config", "kernel_ms", "batch_ms", "unmap_ms", "mean_unmap_fraction"},
	}
	series := &report.Series{
		Title:   "fig11",
		Columns: []string{"threads", "batch_id", "batch_us", "unmap_fraction"},
	}
	row := func(name string, threads int, res *guvm.Result) (kernel, unmapMs float64) {
		var unmap, frac float64
		for _, b := range res.Batches {
			unmap += us(b.TUnmap)
			frac += b.UnmapFraction()
			series.AddRow(float64(threads), float64(b.ID), us(b.Duration()), b.UnmapFraction())
		}
		n := float64(len(res.Batches))
		t.AddRow(name, ms(res.KernelTime), ms(res.BatchTime()), unmap/1000, frac/n)
		return ms(res.KernelTime), unmap / 1000
	}
	kSingle, uSingle := row("1-thread", 1, single)
	kMulti, uMulti := row("32-thread", 32, multi)
	a.Tables = append(a.Tables, t)
	a.Series = append(a.Series, series)

	a.Notef("paper: single-threaded host config shows roughly twice the performance; measured multi/single kernel ratio %.2fx", kMulti/kSingle)
	a.Notef("paper: multithreading exaggerates per-batch unmap share; measured unmap time %.1fms (1t) vs %.1fms (32t)", uSingle, uMulti)
	return a, nil
}
