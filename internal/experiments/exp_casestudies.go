package experiments

import (
	"guvm"
	"guvm/internal/mem"
	"guvm/internal/report"
	"guvm/internal/workloads"
)

// caseStudy runs one §5.4 case study (prefetching on, modest
// oversubscription) and renders its three panels: batch profile with
// prefetching, batch profile with evictions, and the fine-grain fault
// behaviour (page ranges allocated and evicted per batch).
func caseStudy(id, title string, capacity uint64, w workloads.Workload, paperLRUNote string) (*Artifact, error) {
	a := &Artifact{ID: id, Title: title}
	cfg := baseConfig()
	cfg.Driver.GPUMemBytes = capacity
	cfg.KeepSpans = true
	res, err := run(cfg, w)
	if err != nil {
		return nil, err
	}

	// Panels (a)+(b): batch profile with prefetch and eviction counts.
	profile := &report.Series{
		Title:   id + "-profile",
		Columns: []string{"batch_id", "batch_us", "migrated_KB", "prefetched_pages", "evictions"},
	}
	for _, b := range res.Batches {
		profile.AddRow(float64(b.ID), us(b.Duration()), float64(b.BytesMigrated)/1024,
			float64(b.PrefetchedPages), float64(b.Evictions))
	}
	a.Series = append(a.Series, profile)

	// Panel (c): fault behaviour — serviced page ranges and evicted
	// block ranges per batch.
	behaviour := &report.Series{
		Title:   id + "-faults",
		Columns: []string{"batch_id", "kind(0=alloc,1=evict)", "first_page", "last_page"},
	}
	for _, b := range res.Batches {
		for _, sp := range b.ServicedSpans {
			behaviour.AddRow(float64(b.ID), 0, float64(sp.First), float64(sp.End()-1))
		}
		for _, eb := range b.EvictedBlocks {
			behaviour.AddRow(float64(b.ID), 1, float64(eb.FirstPage()),
				float64(eb.FirstPage())+float64(mem.PagesPerVABlock-1))
		}
	}
	a.Series = append(a.Series, behaviour)

	addCaseStudyNotes(a, res, paperLRUNote)
	return a, nil
}

// addCaseStudyNotes verifies the §5.4 claims on a case-study result.
func addCaseStudyNotes(a *Artifact, res *guvm.Result, paperLRUNote string) {
	// Claim: eviction creates new prefetching opportunities — batches
	// after the first eviction still prefetch.
	firstEvict := -1
	prefetchAfter := 0
	for _, b := range res.Batches {
		if firstEvict < 0 && b.Evictions > 0 {
			firstEvict = b.ID
		}
		if firstEvict >= 0 && b.ID > firstEvict && b.PrefetchedPages > 0 {
			prefetchAfter++
		}
	}
	a.Notef("paper: eviction re-opens prefetch opportunities (freshly paged-in VABlocks re-trigger prefetching); measured %d prefetching batches after the first eviction (batch %d)",
		prefetchAfter, firstEvict)

	// Claim: LRU eviction targets the earliest-allocated pages first.
	// Measure: among the first quarter of evictions, what fraction hit
	// the earliest-allocated half of the blocks ever evicted?
	type evictEvent struct{ block mem.VABlockID }
	var evicts []evictEvent
	firstAlloc := map[mem.VABlockID]int{}
	for _, b := range res.Batches {
		for _, sp := range b.ServicedSpans {
			blk := sp.First.VABlock()
			if _, ok := firstAlloc[blk]; !ok {
				firstAlloc[blk] = b.ID
			}
		}
		for _, eb := range b.EvictedBlocks {
			evicts = append(evicts, evictEvent{eb})
		}
	}
	if len(evicts) > 4 {
		quarter := len(evicts) / 4
		early := 0
		// Median first-allocation batch over evicted blocks.
		var allocBatches []int
		for _, e := range evicts {
			allocBatches = append(allocBatches, firstAlloc[e.block])
		}
		median := medianInt(allocBatches)
		for _, e := range evicts[:quarter] {
			if firstAlloc[e.block] <= median {
				early++
			}
		}
		a.Notef("%s; measured %d/%d of the first quarter of evictions target earliest-allocated blocks",
			paperLRUNote, early, quarter)
	}
	a.Notef("run summary: %d batches, %d evictions, %d prefetched pages, kernel %.1fms",
		len(res.Batches), res.DriverStats.Evictions, res.DriverStats.PrefetchedPages, ms(res.KernelTime))
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	for i := 1; i < len(sorted); i++ { // insertion sort: inputs are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

// Fig16 reproduces Figure 16: Gauss-Seidel at ~16% oversubscription with
// prefetching.
func Fig16() (*Artifact, error) {
	// Grid 3072^2 x 4B = 36 MB on a 32 MB GPU: ~116% (paper: ~16%).
	return caseStudy("fig16", "Gauss-Seidel case study (~16% oversubscription)",
		32<<20, workloads.NewGaussSeidel(3072, 3),
		"paper: evictions proceed in earliest-allocated order (LRU with no hit information)")
}

// Fig17 reproduces Figure 17: HPGMG at ~25% oversubscription with
// prefetching.
func Fig17() (*Artifact, error) {
	// Levels sum ~50 MB on a 40 MB GPU: ~125% (paper: ~25%).
	return caseStudy("fig17", "HPGMG case study (~25% oversubscription)",
		40<<20, workloads.NewHPGMG(40<<20, 1),
		"paper: the first large eviction wave targets the first allocated pages (green band at plot start)")
}
