package experiments

import (
	"runtime"
	"time"
)

// RunResult is the outcome of one generator under the parallel runner.
type RunResult struct {
	Index    int
	Gen      Generator
	Artifact *Artifact
	Err      error
	// Elapsed is the wall-clock run time of the generator alone (it
	// excludes time spent queued behind a busy worker pool).
	Elapsed time.Duration
}

// RunParallel executes gens on up to jobs workers and delivers each
// result to collect in generator order, whatever order they finish in.
// jobs <= 0 means GOMAXPROCS.
//
// Determinism contract: every generator drives its own sim.Engine, so
// runs are independent; the only cross-generator state is the
// single-flight memo caches (see singleflight.go), which compute a value
// once and share it read-only. Collection in index order therefore makes
// the artifact stream — and anything written from it — byte-identical at
// any jobs value. collect runs on the calling goroutine.
func RunParallel(gens []Generator, jobs int, collect func(RunResult)) {
	ForEachOrdered(len(gens), jobs, func(i int) RunResult {
		start := time.Now()
		a, err := gens[i].Run()
		return RunResult{
			Index:    i,
			Gen:      gens[i],
			Artifact: a,
			Err:      err,
			Elapsed:  time.Since(start),
		}
	}, func(_ int, r RunResult) { collect(r) })
}

// ForEachOrdered runs fn(0..n-1) on up to jobs workers, delivering
// results to collect in index order on the calling goroutine. It is the
// generic fan-out/ordered-collect primitive behind RunParallel, also used
// by cmd/uvmsweep for its parameter grid. jobs <= 0 means GOMAXPROCS;
// jobs == 1 degenerates to a plain sequential loop.
func ForEachOrdered[T any](n, jobs int, fn func(int) T, collect func(int, T)) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			collect(i, fn(i))
		}
		return
	}

	// Workers pull indices from feed and post into per-index slots, so a
	// fast worker never blocks on a slow predecessor and the collector
	// waits on exactly the next index it needs.
	feed := make(chan int)
	slots := make([]chan T, n)
	for i := range slots {
		slots[i] = make(chan T, 1)
	}
	for w := 0; w < jobs; w++ {
		go func() {
			for i := range feed {
				slots[i] <- fn(i)
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			feed <- i
		}
		close(feed)
	}()
	for i := 0; i < n; i++ {
		collect(i, <-slots[i])
	}
}
