package experiments

import (
	"context"
	"runtime"
	"time"
)

// RunResult is the outcome of one generator under the parallel runner.
type RunResult struct {
	Index    int
	Gen      Generator
	Artifact *Artifact
	Err      error
	// Elapsed is the wall-clock run time of the generator alone (it
	// excludes time spent queued behind a busy worker pool).
	Elapsed time.Duration
}

// RunParallel executes gens on up to jobs workers and delivers each
// result to collect in generator order, whatever order they finish in.
// jobs <= 0 means GOMAXPROCS.
//
// Cancellation granularity is one generator: when ctx is canceled,
// generators already started run to completion and are still collected,
// generators not yet started are skipped, and RunParallel returns
// ctx.Err(). This is the graceful-drain contract the CLIs and the sweepd
// service build their SIGTERM handling on — partial output is always a
// clean prefix of the full run.
//
// Determinism contract: every generator drives its own sim.Engine, so
// runs are independent; the only cross-generator state is the
// single-flight memo caches (see singleflight.go), which compute a value
// once and share it read-only. Collection in index order therefore makes
// the artifact stream — and anything written from it — byte-identical at
// any jobs value. collect runs on the calling goroutine.
func RunParallel(ctx context.Context, gens []Generator, jobs int, collect func(RunResult)) error {
	return ForEachOrdered(ctx, len(gens), jobs, func(i int) RunResult {
		start := time.Now()
		a, err := gens[i].Run()
		return RunResult{
			Index:    i,
			Gen:      gens[i],
			Artifact: a,
			Err:      err,
			Elapsed:  time.Since(start),
		}
	}, func(_ int, r RunResult) { collect(r) })
}

// ForEachOrdered runs fn(0..n-1) on up to jobs workers, delivering
// results to collect in index order on the calling goroutine. It is the
// generic fan-out/ordered-collect primitive behind RunParallel, also used
// by cmd/uvmsweep for its parameter grid and by the sweepd service for
// sharding sweep points. jobs <= 0 means GOMAXPROCS; jobs == 1
// degenerates to a plain sequential loop.
//
// A canceled ctx stops the fan-out at item granularity: indices already
// handed to a worker finish and are collected (the collected set is
// always the contiguous prefix 0..k-1 of started items), indices never
// started are skipped, and ForEachOrdered returns ctx.Err(). A nil ctx
// means context.Background(). fn does not receive ctx — callers whose
// work is itself interruptible capture the context in fn.
func ForEachOrdered[T any](ctx context.Context, n, jobs int, fn func(int) T, collect func(int, T)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			collect(i, fn(i))
		}
		return nil
	}

	// Workers pull indices from feed and post into per-index slots, so a
	// fast worker never blocks on a slow predecessor and the collector
	// waits on exactly the next index it needs. The feeder stops handing
	// out indices once ctx is canceled and reports how many it fed; every
	// fed index is guaranteed a slot value, so the collector can always
	// drain exactly the fed prefix.
	feed := make(chan int)
	slots := make([]chan T, n)
	for i := range slots {
		slots[i] = make(chan T, 1)
	}
	for w := 0; w < jobs; w++ {
		go func() {
			for i := range feed {
				slots[i] <- fn(i)
			}
		}()
	}
	fedc := make(chan int, 1)
	go func() {
		fed := 0
		defer func() {
			close(feed)
			fedc <- fed
		}()
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			select {
			case feed <- i:
				fed++
			case <-ctx.Done():
				return
			}
		}
	}()

	fed, known := n, false
collection:
	for i := 0; i < n; i++ {
		if known {
			if i >= fed {
				break
			}
			collect(i, <-slots[i])
			continue
		}
		select {
		case v := <-slots[i]:
			collect(i, v)
		case f := <-fedc:
			fed, known = f, true
			if i >= fed {
				break collection
			}
			collect(i, <-slots[i])
		}
	}
	if !known {
		fed = <-fedc
	}
	if fed < n {
		return ctx.Err()
	}
	return nil
}
