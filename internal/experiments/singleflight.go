package experiments

import "sync"

// memo is a concurrency-safe, single-flight memoization cell. The first
// caller of Do computes the value while concurrent callers block on the
// same in-flight computation; once it completes successfully, every later
// Do returns the cached value without calling fn. A failed computation is
// not cached, so a retry starts clean. The cached value is shared across
// callers and must be treated as immutable.
//
// All package-level memo state in this package must live in a memo (and
// be wired into ResetCache): parallel generators share these caches, and
// bare package variables were a data race under the worker pool.
type memo[T any] struct {
	mu   sync.Mutex
	call *memoCall[T]
}

type memoCall[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Do returns the memoized value, computing it via fn at most once per
// cache generation (Reset starts a new generation). Callers that joined
// an in-flight computation before a Reset still receive that
// computation's result.
func (m *memo[T]) Do(fn func() (T, error)) (T, error) {
	m.mu.Lock()
	c := m.call
	if c != nil {
		m.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c = &memoCall[T]{done: make(chan struct{})}
	m.call = c
	m.mu.Unlock()

	c.val, c.err = fn()
	if c.err != nil {
		m.mu.Lock()
		if m.call == c {
			m.call = nil
		}
		m.mu.Unlock()
	}
	close(c.done)
	return c.val, c.err
}

// Reset discards the cached value. Safe to call concurrently with Do; an
// in-flight computation completes and serves its joined waiters, but new
// Do calls recompute.
func (m *memo[T]) Reset() {
	m.mu.Lock()
	m.call = nil
	m.mu.Unlock()
}
