package experiments

import (
	"fmt"

	"guvm"
	"guvm/internal/report"
	"guvm/internal/workloads"
)

// ExtMultiGPU measures multi-device interference through the shared host
// driver — the follow-on direction the paper stakes out (§1: "a base and
// foundation for studying the interactions among multiple devices on the
// same systems"; §6: the driver is a serial bottleneck). Each GPU runs an
// identical fault-bound stream; the host's single fault-servicing slot
// serializes their batches, inflating every device's kernel time.
func ExtMultiGPU() (*Artifact, error) {
	a := &Artifact{ID: "ext-multigpu", Title: "Multi-GPU interference through the shared driver"}
	t := &report.Table{
		Title:   "Per-device kernel time vs device count (identical streams)",
		Headers: []string{"devices", "kernel_ms_per_dev", "slowdown_vs_solo", "arbiter_queued", "mean_queue_wait_us"},
	}
	mk := func() workloads.Workload {
		s := workloads.NewStream(16<<20, 24)
		s.ComputePerChunk = 0 // fault-bound: maximal driver pressure
		return s
	}
	var solo float64
	slowdowns := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		cfg := baseConfig()
		m, err := guvm.NewMultiSimulator(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-multigpu %d devices: %w", n, err)
		}
		ws := make([]workloads.Workload, n)
		for i := range ws {
			ws[i] = mk()
		}
		results, err := m.RunConcurrent(ws)
		if err != nil {
			return nil, fmt.Errorf("experiments: ext-multigpu %d devices: %w", n, err)
		}
		var kernel float64
		for _, r := range results {
			kernel += ms(r.KernelTime)
		}
		kernel /= float64(n)
		if n == 1 {
			solo = kernel
		}
		st := m.Arbiter.Stats()
		var meanWait float64
		if st.Queued > 0 {
			meanWait = us(st.TotalWait) / float64(st.Queued)
		}
		slowdowns[n] = kernel / solo
		t.AddRow(n, kernel, kernel/solo, st.Queued, meanWait)
	}
	a.Tables = append(a.Tables, t)
	a.Notef("the serial host driver is the shared bottleneck: per-device kernel time grows %.2fx at 2 GPUs and %.2fx at 4 GPUs for fault-bound streams",
		slowdowns[2], slowdowns[4])
	a.Notes = append(a.Notes,
		"paper §6: \"any vendor implementing HMM for parallel devices will encounter similar concerns and delays\" — with several devices the concern compounds, motivating driver parallelism (see abl-parallel)")
	return a, nil
}
