package experiments

import (
	"fmt"

	"guvm"
	"guvm/internal/report"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// ArchitectureComparison runs the §3 vector-addition microbenchmark under
// every registered UVM architecture (host-driven, gpu-driven,
// access-counter) with the fault-lifecycle profiler attached, and emits a
// figure-08-style comparison: one summary table across architectures plus
// a per-architecture batch-time breakdown by pipeline stage. Each case is
// an independent simulation, so the artifact is byte-identical at any
// -jobs value.
func ArchitectureComparison() (*Artifact, error) {
	a := &Artifact{ID: "exp_architectures", Title: "UVM architecture comparison (vecadd)"}
	summary := &report.Table{
		Title: "Architecture comparison: vecadd (Listing 1)",
		Headers: []string{"arch", "observation", "mapping_owner", "kernel_ms", "batch_ms",
			"batches", "faults", "migrated_mb", "remote_pages", "promotions"},
	}
	var breakdowns []*report.Table
	for _, arch := range uvm.Architectures() {
		cfg := baseConfig()
		cfg.Obs.Profile = true
		cfg.Policies.Architecture = arch.Name
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: architectures %s: %w", arch.Name, err)
		}
		res, err := s.Run(workloads.NewVecAddPaper())
		if err != nil {
			return nil, fmt.Errorf("experiments: architectures %s: %w", arch.Name, err)
		}
		summary.AddRow(arch.Name, arch.FaultObservation, arch.MappingOwner,
			res.KernelTime.Millis(), res.BatchTime().Millis(),
			len(res.Batches), res.DriverStats.TotalFaults,
			float64(res.BytesMigrated())/(1<<20),
			res.DriverStats.RemoteMappedPages, res.DriverStats.CounterPromotions)

		t := &report.Table{
			Title:   fmt.Sprintf("Batch-time breakdown: %s (%d batches)", arch.Name, len(res.Batches)),
			Headers: []string{"stage", "total_ns", "share_pct", "batches", "p50_us", "p95_us"},
		}
		for _, r := range s.Obs.Profiler.BreakdownRows() {
			t.AddRow(r.Stage, r.TotalNS, r.SharePct, r.Batches, r.P50US, r.P95US)
		}
		breakdowns = append(breakdowns, t)
		a.Notef("%s: observation=%s owner=%s, kernel %.3f ms over %d batches (%.1f MiB migrated, %d remote-mapped pages)",
			arch.Name, arch.FaultObservation, arch.MappingOwner,
			res.KernelTime.Millis(), len(res.Batches),
			float64(res.BytesMigrated())/(1<<20), res.DriverStats.RemoteMappedPages)
	}
	a.Tables = append(a.Tables, summary)
	a.Tables = append(a.Tables, breakdowns...)
	a.Notef("expected shape: gpu-driven cuts batch time by removing the host round-trip; access-counter trades migration volume for remote-access latency until counters promote hot blocks")
	return a, nil
}
