package experiments

import (
	"guvm/internal/report"
	"guvm/internal/stats"
	"guvm/internal/workloads"
)

// Fig14 reproduces Figure 14: sgemm with prefetching enabled. Claims: the
// batch count collapses (93% fewer than the Figure-7 run), batch sizes
// inflate with prefetched regions, and the high-cost outliers are batches
// paying compulsory first-touch DMA-mapping setup — up to ~64% of batch
// time, driven by radix-tree work — which prefetching cannot eliminate.
func Fig14() (*Artifact, error) {
	a := &Artifact{ID: "fig14", Title: "sgemm with prefetching: profile and DMA outliers"}
	res, err := run(baseConfig(), workloads.NewSGEMM(2048))
	if err != nil {
		return nil, err
	}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	noPF := runs["sgemm"]

	s := &report.Series{
		Title:   "fig14",
		Columns: []string{"batch_id", "batch_us", "migrated_KB", "dma_fraction", "new_dma_blocks"},
	}
	var dmaFracs []float64
	for _, b := range res.Batches {
		s.AddRow(float64(b.ID), us(b.Duration()), float64(b.BytesMigrated)/1024,
			b.DMAFraction(), float64(b.NewDMABlocks))
		dmaFracs = append(dmaFracs, b.DMAFraction())
	}
	a.Series = append(a.Series, s)

	reduction := 1 - float64(len(res.Batches))/float64(len(noPF.Batches))
	maxDMA := stats.Summarize(dmaFracs).Max

	t := &report.Table{
		Title:   "Figure 14: prefetching effects",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("batches_noPF", len(noPF.Batches))
	t.AddRow("batches_PF", len(res.Batches))
	t.AddRow("batch_reduction_pct", reduction*100)
	t.AddRow("max_DMA_fraction_pct", maxDMA*100)
	t.AddRow("prefetched_pages", res.DriverStats.PrefetchedPages)
	a.Tables = append(a.Tables, t)

	a.Notef("paper: prefetching cuts sgemm batches by ~93%%; measured %.0f%%", reduction*100)
	a.Notef("paper: outlier batches spend up to ~64%% of time in VABlock DMA state init; measured max %.0f%%", maxDMA*100)
	return a, nil
}

// Fig15 reproduces Figure 15: dgemm with eviction and prefetching
// combined, shown against migration size and as a time series. Claims:
// (1) prefetching stays active and drives large batches; (2) evictions
// cluster later in execution with batch sizes echoing the non-prefetching
// range; (3) new-VABlock batches pay CPU unmapping, diminishing late in
// the run; (4) DMA-mapping setup recurs intermittently throughout.
func Fig15() (*Artifact, error) {
	a := &Artifact{ID: "fig15", Title: "dgemm with eviction + prefetching"}
	cfg := baseConfig()
	cfg.Driver.GPUMemBytes = 84 << 20 // dgemm 2048: 96 MB working set -> ~116%
	res, err := run(cfg, workloads.NewDGEMM(2048))
	if err != nil {
		return nil, err
	}

	s := &report.Series{
		Title: "fig15",
		Columns: []string{"batch_id", "batch_us", "migrated_KB", "prefetched_pages",
			"evictions", "unmap_us", "dma_us"},
	}
	var (
		firstEvict, lastUnmap   = -1, -1
		evictions, dmaBatches   int
		prefetchedAfterEviction int
	)
	for _, b := range res.Batches {
		s.AddRow(float64(b.ID), us(b.Duration()), float64(b.BytesMigrated)/1024,
			float64(b.PrefetchedPages), float64(b.Evictions), us(b.TUnmap), us(b.TDMAMap))
		if b.Evictions > 0 {
			evictions += b.Evictions
			if firstEvict < 0 {
				firstEvict = b.ID
			}
			if b.PrefetchedPages > 0 {
				prefetchedAfterEviction++
			}
		}
		if b.UnmapPages > 0 {
			lastUnmap = b.ID
		}
		if b.NewDMABlocks > 0 {
			dmaBatches++
		}
	}
	a.Series = append(a.Series, s)

	t := &report.Table{
		Title:   "Figure 15: combined-feature summary",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("batches", len(res.Batches))
	t.AddRow("total_evictions", evictions)
	t.AddRow("first_eviction_batch", firstEvict)
	t.AddRow("last_unmap_batch", lastUnmap)
	t.AddRow("batches_with_DMA_setup", dmaBatches)
	t.AddRow("prefetched_pages", res.DriverStats.PrefetchedPages)
	a.Tables = append(a.Tables, t)

	a.Notef("paper: prefetching remains active under eviction; measured %d prefetched pages with %d evictions",
		res.DriverStats.PrefetchedPages, evictions)
	a.Notef("paper: evictions occur later in execution; measured first eviction at batch %d of %d", firstEvict, len(res.Batches))
	a.Notef("paper: unmapping diminishes after every VABlock's first GPU touch; measured last unmap at batch %d of %d", lastUnmap, len(res.Batches))
	a.Notef("paper: DMA setup recurs intermittently; measured %d batches paying first-touch DMA setup", dmaBatches)
	return a, nil
}
