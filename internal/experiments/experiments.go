// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulator. Each generator runs the paper's workload
// scenario (scaled per DESIGN.md §1), extracts the same statistic the
// paper plots, and records paper-vs-measured notes for EXPERIMENTS.md.
//
// Absolute numbers are not expected to match the authors' Titan V testbed;
// the *shape* claims (who wins, by what factor, where the crossovers and
// cost levels fall) are what each generator checks.
package experiments

import (
	"fmt"

	"guvm"
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/report"
	"guvm/internal/sim"
	"guvm/internal/trace"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// Artifact is the output of one experiment: tables and/or figure series
// plus observations comparing against the paper.
type Artifact struct {
	ID     string
	Title  string
	Tables []*report.Table
	Series []*report.Series
	Notes  []string
}

// Notef appends a formatted observation.
func (a *Artifact) Notef(format string, args ...interface{}) {
	a.Notes = append(a.Notes, fmt.Sprintf(format, args...))
}

// Generator names one experiment. Run returns an error instead of
// panicking when a simulation fails, so one broken experiment never takes
// down a whole sweep.
type Generator struct {
	ID    string
	Title string
	Run   func() (*Artifact, error)
}

// All returns every experiment in paper order.
func All() []Generator {
	return []Generator{
		{"fig01", "Access latency: explicit vs UVM vs UVM oversubscribed", Fig01},
		{"fig03", "Vector-addition faults as a relative time series (Listing 1)", Fig03},
		{"fig04", "Vector-addition faults with real-time arrival timestamps", Fig04},
		{"fig05", "Prefetch instructions fill whole fault batches from one warp", Fig05},
		{"table2", "Per-SM source statistics in each batch", Table2},
		{"fig06", "Best fit of batch time vs data migrated", Fig06},
		{"fig07", "Share of batch time spent in data transfer (sgemm)", Fig07},
		{"fig08", "Batch sizes over time, raw vs deduplicated (stream, sgemm)", Fig08},
		{"fig09", "Performance vs fault batch size (sgemm)", Fig09},
		{"table3", "VABlock source statistics in a batch", Table3},
		{"fig10", "Batch time vs migration size, by VABlock count", Fig10},
		{"fig11", "HPGMG host-thread count vs CPU unmapping cost", Fig11},
		{"fig12", "sgemm under oversubscription and eviction", Fig12},
		{"fig13", "stream under oversubscription: eviction cost levels", Fig13},
		{"fig14", "sgemm with prefetching: batch profile and DMA outliers", Fig14},
		{"fig15", "dgemm with eviction + prefetching: combined profile", Fig15},
		{"table4", "Batch and kernel times with and without prefetching", Table4},
		{"fig16", "Gauss-Seidel case study (~16% oversubscription)", Fig16},
		{"fig17", "HPGMG case study (~25% oversubscription)", Fig17},
		// Profiler-measured batch-time attribution (not a paper figure).
		{"breakdown", "Batch-time breakdown by pipeline stage (profiler)", Breakdown},
		// Registered UVM architectures compared on one workload (not a
		// paper figure; the paper's driver is the host-driven entry).
		{"exp_architectures", "UVM architecture comparison (vecadd)", ArchitectureComparison},
		// Ablations of the §6 proposed improvements (not paper figures).
		{"abl-parallel", "Ablation: parallel VABlock servicing", AblParallel},
		{"abl-adaptive", "Ablation: duplicate-adaptive batch sizing", AblAdaptiveBatch},
		{"abl-asyncunmap", "Ablation: preemptive CPU unmapping", AblAsyncUnmap},
		{"abl-xblock", "Ablation: cross-VABlock prefetch scope", AblCrossBlockPrefetch},
		{"abl-eviction", "Ablation: eviction policy", AblEvictionPolicy},
		{"abl-hardware", "Ablation: GPU fault-generation constraints", AblHardware},
		// Extension beyond the paper's single-GPU scope.
		{"ext-multigpu", "Extension: multi-GPU interference via the shared driver", ExtMultiGPU},
	}
}

// Find returns the generator with the given ID.
func Find(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// policyOverride is the process-wide policy selection applied to every
// experiment's base profile (see SetPolicies). Individual experiments that
// ablate a policy dimension overwrite the corresponding field afterwards,
// so an override never silently invalidates an ablation's own sweep.
var policyOverride uvm.PolicySelection

// SetPolicies installs a named policy selection into the shared experiment
// profile; empty fields keep the per-experiment defaults. It validates the
// names against the registry so callers (paperfigs) can reject an unknown
// policy with the valid options before any experiment runs.
func SetPolicies(p uvm.PolicySelection) error {
	var probe uvm.Config
	if err := p.Apply(&probe); err != nil {
		return err
	}
	policyOverride = p
	return nil
}

// baseConfig is the shared experiment profile: the paper's 80-SM Titan-V
// GPU with a scaled memory capacity that individual experiments override.
// The invariant auditor rides along on every experiment run, so the whole
// evaluation doubles as a model self-check.
func baseConfig() guvm.SystemConfig {
	cfg := guvm.DefaultConfig()
	cfg.Driver.GPUMemBytes = 256 << 20
	cfg.Audit.Enabled = true
	cfg.Audit.Interval = 8
	cfg.Policies = policyOverride
	return cfg
}

// noPrefetch disables the prefetcher and the 64K upgrade.
func noPrefetch(cfg guvm.SystemConfig) guvm.SystemConfig {
	cfg.Driver.PrefetchEnabled = false
	cfg.Driver.Upgrade64K = false
	return cfg
}

// run executes a workload under UVM demand paging.
func run(cfg guvm.SystemConfig, w workloads.Workload) (*guvm.Result, error) {
	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", w.Name(), err)
	}
	res, err := s.Run(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", w.Name(), err)
	}
	return res, nil
}

// runExplicit executes the explicit-management baseline.
func runExplicit(cfg guvm.SystemConfig, w workloads.Workload) (*guvm.Result, error) {
	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: explicit %s: %w", w.Name(), err)
	}
	res, err := s.RunExplicit(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: explicit %s: %w", w.Name(), err)
	}
	return res, nil
}

// accessesOf counts page accesses a workload performs (for per-access
// latency metrics).
func accessesOf(w workloads.Workload, bases []mem.Addr) int {
	n := 0
	for _, ph := range w.Phases(bases) {
		k := ph.Kernel
		for b := 0; b < k.NumBlocks; b++ {
			for _, prog := range k.BlockProgram(b) {
				for _, op := range prog {
					n += len(op.Pages)
				}
			}
		}
	}
	return n
}

// batchDurationsMs extracts per-batch durations in milliseconds.
func batchDurationsMs(batches []trace.BatchRecord) []float64 {
	out := make([]float64, len(batches))
	for i := range batches {
		out[i] = batches[i].Duration().Millis()
	}
	return out
}

// ms converts virtual time to milliseconds.
func ms(t sim.Time) float64 { return t.Millis() }

// us converts virtual time to microseconds.
func us(t sim.Time) float64 { return t.Micros() }

// faultKindName maps gpu fault kinds to short names.
func faultKindName(k gpu.AccessKind) string { return k.String() }
