package experiments

import (
	"fmt"

	"guvm"
	"guvm/internal/report"
	"guvm/internal/workloads"
)

// Breakdown runs representative workloads with the fault-lifecycle
// profiler attached and emits the paper-style batch-time breakdown: for
// every pipeline stage (setup, fetch, dedup, block management, DMA map,
// unmap, populate, transfer, page table, evict, replay), its total
// virtual time, share, and per-batch p50/p95. This is the profiler's
// counterpart to Fig07's transfer-share estimate — measured from the
// pipeline itself instead of reconstructed from batch records.
func Breakdown() (*Artifact, error) {
	a := &Artifact{ID: "breakdown", Title: "Batch-time breakdown by pipeline stage (profiler)"}
	cases := []struct {
		name  string
		capMB uint64 // GPU capacity override (0 = base profile)
		mk    func() workloads.Workload
	}{
		// The §3 microbenchmark, a bandwidth-bound streamer, and the
		// compute kernel whose transfer share Fig07 analyzes — the last
		// under ~120% oversubscription (40 MB cap, 48 MB working set) so
		// the evict stage is exercised too.
		{"vecadd", 0, func() workloads.Workload { return workloads.NewVecAddPaper() }},
		{"stream", 0, func() workloads.Workload { return workloads.NewStream(16<<20, 24) }},
		{"sgemm", 40, func() workloads.Workload { return workloads.NewSGEMM(2048) }},
	}
	for _, c := range cases {
		cfg := baseConfig()
		cfg.Obs.Profile = true
		if c.capMB > 0 {
			cfg.Driver.GPUMemBytes = c.capMB << 20
		}
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: breakdown %s: %w", c.name, err)
		}
		res, err := s.Run(c.mk())
		if err != nil {
			return nil, fmt.Errorf("experiments: breakdown %s: %w", c.name, err)
		}
		p := s.Obs.Profiler
		t := &report.Table{
			Title:   fmt.Sprintf("Batch-time breakdown: %s (%d batches)", c.name, len(res.Batches)),
			Headers: []string{"stage", "total_ns", "share_pct", "batches", "p50_us", "p95_us"},
		}
		var top string
		var topShare float64
		for _, r := range p.BreakdownRows() {
			t.AddRow(r.Stage, r.TotalNS, r.SharePct, r.Batches, r.P50US, r.P95US)
			if r.SharePct > topShare {
				top, topShare = r.Stage, r.SharePct
			}
		}
		a.Tables = append(a.Tables, t)
		a.Notef("%s: %s dominates batch time at %.1f%% across %d batches",
			c.name, top, topShare, len(res.Batches))
	}
	a.Notef("paper §4–5: data movement (map/populate/transfer) should dominate batch time, with replay and dedup as fixed overheads")
	return a, nil
}
