package experiments

import (
	"guvm"
	"guvm/internal/report"
	"guvm/internal/sim"
	"guvm/internal/stats"
	"guvm/internal/workloads"
)

// Fig06 reproduces Figure 6: best-fit lines of per-batch cost against the
// amount of data migrated, one per application. Claim: average batch cost
// rises linearly with data moved, with application-dependent intercepts
// and high per-application variance.
func Fig06() (*Artifact, error) {
	a := &Artifact{ID: "fig06", Title: "Batch time vs data migrated: linear fits"}
	t := &report.Table{
		Title:   "Figure 6: least-squares fit of batch time (us) vs data migrated (KB)",
		Headers: []string{"benchmark", "slope_us_per_KB", "intercept_us", "r2", "batches"},
	}
	scatter := &report.Series{
		Title:   "fig06",
		Columns: []string{"bench_idx", "migrated_KB", "batch_us"},
	}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	order := []string{"regular", "sgemm", "stream", "cufft", "gauss-seidel", "hpgmg"}
	positive := 0
	fitted := 0
	for bi, name := range order {
		res := runs[name]
		var xs, ys []float64
		for _, b := range res.Batches {
			if b.PagesMigrated == 0 {
				continue
			}
			x := float64(b.BytesMigrated) / 1024
			y := us(b.Duration())
			xs = append(xs, x)
			ys = append(ys, y)
			scatter.AddRow(float64(bi), x, y)
		}
		// Synthetic benchmarks produce near-identical batches; a
		// regression over a constant x is meaningless, so mark it n/a.
		sx := stats.Summarize(xs)
		if sx.StdDev < 0.02*sx.Mean {
			t.AddRow(name, "n/a (uniform batches)", "-", "-", len(xs))
			continue
		}
		fitted++
		fit := stats.FitLine(xs, ys)
		t.AddRow(name, fit.Slope, fit.Intercept, fit.R2, len(xs))
		if fit.Slope > 0 {
			positive++
		}
	}
	a.Tables = append(a.Tables, t)
	a.Series = append(a.Series, scatter)
	a.Notef("paper: batch cost rises linearly with migrated data for all applications; measured positive slope in %d/%d fittable benchmarks", positive, fitted)
	a.Notes = append(a.Notes,
		"note: the strided FFT anticorrelates migration size with VABlock count (small scattered batches are the expensive ones), confounding its univariate fit — Figure 10's joint fit separates the terms")
	return a, nil
}

// Fig07 reproduces Figure 7: the share of each sgemm batch spent in data
// transfer. Claim: at most ~25%% of batch time is the transfer itself —
// management, not movement, dominates.
func Fig07() (*Artifact, error) {
	a := &Artifact{ID: "fig07", Title: "Transfer share of batch time (sgemm)"}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	res := runs["sgemm"]

	s := &report.Series{
		Title:   "fig07",
		Columns: []string{"batch_id", "migrated_KB", "transfer_fraction"},
	}
	var fracs []float64
	for _, b := range res.Batches {
		f := b.TransferFraction()
		fracs = append(fracs, f)
		s.AddRow(float64(b.ID), float64(b.BytesMigrated)/1024, f)
	}
	a.Series = append(a.Series, s)

	sum := stats.Summarize(fracs)
	t := &report.Table{
		Title:   "Figure 7: transfer fraction summary",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("mean", sum.Mean)
	t.AddRow("p95", stats.Percentile(fracs, 95))
	t.AddRow("max", sum.Max)
	a.Tables = append(a.Tables, t)

	a.Notef("paper: transfer is at most ~25%% of batch time and typically far lower; measured mean %.0f%%, max %.0f%%",
		sum.Mean*100, sum.Max*100)
	return a, nil
}

// Fig08 reproduces Figure 8: batch sizes over an application's lifetime,
// raw vs with duplicate faults removed, for stream and sgemm. Claims: the
// workload is application-driven (sgemm shows phases, stream is uniform),
// and dedup substantially shrinks batches for both.
func Fig08() (*Artifact, error) {
	a := &Artifact{ID: "fig08", Title: "Batch size time series, raw vs deduplicated"}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"stream", "sgemm"} {
		res := runs[name]
		s := &report.Series{
			Title:   "fig08-" + name,
			Columns: []string{"batch_id", "raw_faults", "unique_faults"},
		}
		var raw, uniq float64
		for _, b := range res.Batches {
			s.AddRow(float64(b.ID), float64(b.RawFaults), float64(b.UniquePages))
			raw += float64(b.RawFaults)
			uniq += float64(b.UniquePages)
		}
		a.Series = append(a.Series, s)
		a.Notef("%s: dedup removes %.0f%% of faults (%d batches)", name,
			(1-uniq/raw)*100, len(res.Batches))
	}
	a.Notes = append(a.Notes,
		"paper: filtering duplicates greatly alters average batch size for both applications, non-uniformly across and within applications")
	return a, nil
}

// Fig09 reproduces Figure 9: sgemm performance across fault batch size
// limits. Claims: larger batches beat the 256 default despite carrying
// more duplicates, with diminishing returns — beyond ~1024 the unique
// faults available per batch (bounded by flush + fault-generation limits)
// stop growing.
func Fig09() (*Artifact, error) {
	a := &Artifact{ID: "fig09", Title: "Performance vs fault batch size (sgemm)"}
	t := &report.Table{
		Title:   "Figure 9: batch size sweep",
		Headers: []string{"batch_size", "kernel_ms", "batches", "avg_unique_per_batch", "avg_dups_per_batch"},
	}
	s := &report.Series{Title: "fig09", Columns: []string{"batch_size", "kernel_ms", "avg_unique"}}
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 6144}
	kernels := map[int]float64{}
	uniques := map[int]float64{}
	for _, bs := range sizes {
		cfg := noPrefetch(baseConfig())
		cfg.Driver.BatchSize = bs
		// A wide-ILP sgemm: cuBLAS keeps hundreds of unique pages in
		// flight, so the batch cap binds and raising it pays off.
		w := workloads.NewSGEMM(4096)
		w.Tile = 1024
		w.ChunkPages = 32
		w.ComputePerChunk = 10 * sim.Microsecond
		res, err := run(cfg, w)
		if err != nil {
			return nil, err
		}
		var uniq, dups float64
		for _, b := range res.Batches {
			uniq += float64(b.UniquePages)
			dups += float64(b.DupFaults())
		}
		n := float64(len(res.Batches))
		t.AddRow(bs, ms(res.KernelTime), len(res.Batches), uniq/n, dups/n)
		s.AddRow(float64(bs), ms(res.KernelTime), uniq/n)
		kernels[bs] = ms(res.KernelTime)
		uniques[bs] = uniq / n
	}
	a.Tables = append(a.Tables, t)
	a.Series = append(a.Series, s)
	a.Notef("paper: performance improves with batch size; measured kernel %.1fms @128 -> %.1fms @1024 -> %.1fms @6144",
		kernels[128], kernels[1024], kernels[6144])
	a.Notef("paper: diminishing returns past ~1024 as unique faults/batch saturate (~500); measured avg unique %.0f @1024 vs %.0f @6144",
		uniques[1024], uniques[6144])
	return a, nil
}

// Fig10 reproduces Figure 10: batch time against migration size, grouped
// by the number of VABlocks in the batch. Claim: for similar migration
// sizes, batches spanning more VABlocks cost more (each block is a
// separate processing step).
func Fig10() (*Artifact, error) {
	a := &Artifact{ID: "fig10", Title: "Batch time vs migration size by VABlock count"}
	s := &report.Series{
		Title:   "fig10",
		Columns: []string{"bench_idx", "migrated_KB", "batch_us", "vablocks"},
	}
	runs, err := tableRuns()
	if err != nil {
		return nil, err
	}
	order := []string{"regular", "sgemm", "cufft", "gauss-seidel"}
	for bi, name := range order {
		for _, b := range runs[name].Batches {
			s.AddRow(float64(bi), float64(b.BytesMigrated)/1024, us(b.Duration()), float64(b.VABlocks))
		}
	}
	a.Series = append(a.Series, s)

	// Quantify the claim with a two-predictor regression over the pooled
	// application batches: batch_time ~ B1*bytes + B2*vablocks. A
	// positive B2 is the paper's "more VABlocks at the same size costs
	// more", with B1 capturing the per-byte component.
	var bytesKB, blocks, times []float64
	for _, name := range order {
		for _, b := range runs[name].Batches {
			if b.PagesMigrated == 0 {
				continue
			}
			bytesKB = append(bytesKB, float64(b.BytesMigrated)/1024)
			blocks = append(blocks, float64(b.VABlocks))
			times = append(times, us(b.Duration()))
		}
	}
	fit := stats.FitPlane(bytesKB, blocks, times)
	t := &report.Table{
		Title:   "Figure 10: joint fit batch_us ~ migrated_KB + VABlocks (pooled)",
		Headers: []string{"term", "coefficient"},
	}
	t.AddRow("us_per_KB", fit.B1)
	t.AddRow("us_per_VABlock", fit.B2)
	t.AddRow("intercept_us", fit.Intercept)
	t.AddRow("batches", len(times))
	a.Tables = append(a.Tables, t)
	a.Notef("paper: for the same migration size, more VABlocks incur higher cost; measured marginal cost %.1fus per additional VABlock (per-KB term %.2fus)", fit.B2, fit.B1)
	return a, nil
}

// avgBatchDuration helps several figures.
func avgBatchDuration(res *guvm.Result) float64 {
	if len(res.Batches) == 0 {
		return 0
	}
	return us(res.BatchTime()) / float64(len(res.Batches))
}
