package experiments

import (
	"context"
	"testing"

	"guvm"
	"guvm/internal/digest"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// policyCombo is one named-policy configuration of the §6 driver
// extensions: parallel VABlock servicing (ServiceWorkers) and the
// registry-selected eviction/prefetch/batch-sizing policies.
type policyCombo struct {
	name    string
	workers int
	pols    uvm.PolicySelection
}

// interplayCombos pairs each §6 extension with at least one named policy
// combination: parallel VABlock servicing under fifo+tree+fixed, adaptive
// batch sizing under lru+off, and both extensions together under
// lfu+cross-block+adaptive.
func interplayCombos() []policyCombo {
	return []policyCombo{
		{"parallel/fifo+tree+fixed", 4,
			uvm.PolicySelection{Eviction: "fifo", Prefetch: "tree", BatchSizing: "fixed"}},
		{"adaptive/lru+off+adaptive", 1,
			uvm.PolicySelection{Eviction: "lru", Prefetch: "off", BatchSizing: "adaptive"}},
		{"both/lfu+cross-block+adaptive", 2,
			uvm.PolicySelection{Eviction: "lfu", Prefetch: "cross-block", BatchSizing: "adaptive"}},
	}
}

// comboOutcome is what one combo run reduces to: the folded per-batch
// digest stream plus the counters that prove the policies were exercised.
// It carries any run error instead of failing inline, because runCombo
// executes on ForEachOrdered worker goroutines where t.Fatal is illegal.
type comboOutcome struct {
	hash      digest.Hash
	batches   int
	evictions int
	err       error
}

// runCombo executes one combo on an oversubscribed stream (eviction
// active) and folds every per-batch state digest into one hash.
func runCombo(c policyCombo) comboOutcome {
	cfg := guvm.DefaultConfig()
	cfg.Driver.GPUMemBytes = 12 << 20 // 3x16 MB stream: eviction active
	cfg.Driver.ServiceWorkers = c.workers
	cfg.Policies = c.pols
	cfg.Audit.Enabled = true
	cfg.Audit.Interval = 1
	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		return comboOutcome{err: err}
	}
	res, err := s.Run(workloads.NewStream(16<<20, 24))
	if err != nil {
		return comboOutcome{err: err}
	}
	h := digest.New()
	for _, snap := range res.Audit.Snapshots {
		h = h.Int(snap.Batch).Uint64(snap.Combined)
	}
	h = h.Uint64(res.Audit.FinalDigest)
	return comboOutcome{
		hash:      h,
		batches:   len(res.Batches),
		evictions: res.DriverStats.Evictions,
	}
}

// TestPolicyInterplayDigestsAcrossJobs runs every extension-x-policy combo
// through the harness worker pool at -jobs 1 and -jobs 8 and requires the
// per-batch digest streams to be byte-identical: neither the parallel
// servicing extension, the named policies, nor harness concurrency may
// perturb simulation state.
func TestPolicyInterplayDigestsAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("interplay digests are integration-scale")
	}
	combos := interplayCombos()
	at := func(jobs int) []comboOutcome {
		var out []comboOutcome
		ForEachOrdered(context.Background(), len(combos), jobs, func(i int) comboOutcome {
			return runCombo(combos[i])
		}, func(i int, o comboOutcome) {
			if o.err != nil {
				t.Fatalf("%s (jobs=%d): %v", combos[i].name, jobs, o.err)
			}
			out = append(out, o)
		})
		return out
	}
	seq := at(1)
	par := at(8)
	for i, c := range combos {
		if seq[i].batches == 0 {
			t.Errorf("%s: produced no batches", c.name)
		}
		if seq[i].evictions == 0 {
			t.Errorf("%s: oversubscribed run exercised no evictions — the %s policy never ran",
				c.name, c.pols.Eviction)
		}
		if seq[i].hash != par[i].hash {
			t.Errorf("%s: digest stream differs between -jobs 1 (%x) and -jobs 8 (%x)",
				c.name, seq[i].hash, par[i].hash)
		}
	}
}

// TestAdaptiveSizingChangesBatching is the negative control for the combo
// digests: the named "adaptive" batch-sizing policy must actually change
// driver behaviour versus "fixed" on a duplicate-heavy workload, so
// identical digests above cannot mean the policy never engaged.
func TestAdaptiveSizingChangesBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("interplay digests are integration-scale")
	}
	run := func(sizing string) digest.Hash {
		cfg := guvm.DefaultConfig()
		cfg.Driver.GPUMemBytes = 64 << 20
		cfg.Driver.BatchSize = 1024
		cfg.Policies = uvm.PolicySelection{Prefetch: "off", BatchSizing: sizing}
		cfg.Audit.Enabled = true
		cfg.Audit.Interval = 1
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workloads.NewSGEMM(1024))
		if err != nil {
			t.Fatal(err)
		}
		h := digest.New()
		for _, snap := range res.Audit.Snapshots {
			h = h.Uint64(snap.Combined)
		}
		return h
	}
	if run("fixed") == run("adaptive") {
		t.Fatal("fixed and adaptive batch sizing produced identical digest streams — the adaptive policy never engaged")
	}
}
