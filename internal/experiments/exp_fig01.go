package experiments

import (
	"guvm/internal/mem"
	"guvm/internal/report"
	"guvm/internal/workloads"
)

// fakeBases assigns the same VABlock-aligned bases the driver would, so a
// workload's phases can be materialized without a simulator (e.g. to
// count accesses).
func fakeBases(w workloads.Workload) []mem.Addr {
	allocs := w.Allocs()
	bases := make([]mem.Addr, len(allocs))
	next := mem.Addr(mem.VABlockSize)
	for i, al := range allocs {
		bases[i] = next
		next += mem.Addr(mem.AlignUp(al.Bytes, mem.VABlockSize))
	}
	return bases
}

// countAccesses materializes a workload once to count its page accesses.
func countAccesses(w workloads.Workload) int {
	return accessesOf(w, fakeBases(w))
}

// Fig01 reproduces Figure 1: per-access latency under explicit direct
// management, UVM demand paging in-core, and UVM with oversubscription.
// The paper's claim: the abstracted unified space costs one or more
// orders of magnitude per access, and out-of-core costs far more still.
func Fig01() (*Artifact, error) {
	a := &Artifact{ID: "fig01", Title: "Access latency by management strategy"}

	cfg := baseConfig() // 256 MB capacity
	// Pure memory-bound probes (no compute pacing), like the paper's
	// access-latency microbenchmark.
	mkInCore := func() *workloads.Stream {
		s := workloads.NewStream(32<<20, 160)
		s.ComputePerChunk = 0
		s.Iterations = 2 // same reuse as the out-of-core probe
		return s
	}
	mkOver := func() *workloads.Stream { // 3x108 MB = 127% of capacity
		s := workloads.NewStream(108<<20, 160)
		s.ComputePerChunk = 0
		// A second pass re-faults evicted data: the out-of-core probe
		// has reuse, which is what makes oversubscription prohibitive.
		s.Iterations = 2
		return s
	}

	expRes, err := runExplicit(cfg, mkInCore())
	if err != nil {
		return nil, err
	}
	pfRes, err := run(cfg, mkInCore())
	if err != nil {
		return nil, err
	}
	demandRes, err := run(noPrefetch(cfg), mkInCore())
	if err != nil {
		return nil, err
	}
	overRes, err := run(noPrefetch(cfg), mkOver())
	if err != nil {
		return nil, err
	}

	accInCore := float64(countAccesses(mkInCore()))
	accOver := float64(countAccesses(mkOver()))

	// Per-access latency in ns = kernel time (plus the upfront copy for
	// explicit management) / page accesses.
	lExp := (float64(expRes.KernelTime) + float64(expRes.LinkStats.TransferTime)) / accInCore
	lPF := float64(pfRes.KernelTime) / accInCore
	lDemand := float64(demandRes.KernelTime) / accInCore
	lOver := float64(overRes.KernelTime) / accOver

	t := &report.Table{
		Title:   "Figure 1: average access latency (ns/page-access)",
		Headers: []string{"strategy", "latency_ns", "vs_explicit"},
	}
	t.AddRow("explicit", lExp, 1.0)
	t.AddRow("uvm-prefetch", lPF, lPF/lExp)
	t.AddRow("uvm-demand", lDemand, lDemand/lExp)
	t.AddRow("uvm-oversubscribed", lOver, lOver/lExp)
	a.Tables = append(a.Tables, t)

	s := &report.Series{Title: "fig01", Columns: []string{"strategy_idx", "latency_ns"}}
	s.AddRow(0, lExp)
	s.AddRow(1, lPF)
	s.AddRow(2, lDemand)
	s.AddRow(3, lOver)
	a.Series = append(a.Series, s)

	a.Notef("paper: the unified space raises access latency by >=1 order of magnitude over explicit; measured demand paging %.1fx, prefetching %.1fx", lDemand/lExp, lPF/lExp)
	a.Notef("paper: out-of-core is far costlier still; measured oversubscribed demand paging %.1fx explicit", lOver/lExp)
	return a, nil
}
