package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"guvm/internal/digest"
)

// artifactDigest folds an artifact's rendered output — everything
// cmd/paperfigs writes to disk, plus the notes — into one FNV-1a hash,
// the same digest machinery the determinism verifier uses for simulator
// state.
func artifactDigest(a *Artifact) digest.Hash {
	h := digest.New().String(a.ID).String(a.Title)
	for _, tb := range a.Tables {
		h = h.String(tb.String()).String(tb.CSV())
	}
	for _, s := range a.Series {
		h = h.String(s.Title).String(s.CSV())
	}
	for _, n := range a.Notes {
		h = h.String(n)
	}
	return h
}

// TestParallelDeterminism runs fig08 plus the table generators (which
// share the memoized table-run set through the single-flight cache) at
// -jobs 1 and -jobs 8 and requires byte-identical artifacts: identical
// rendered bytes imply identical digests in identical collection order.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	ids := []string{"fig08", "table2", "table3"}
	var gens []Generator
	for _, id := range ids {
		g, ok := Find(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		gens = append(gens, g)
	}

	runAt := func(jobs int) []digest.Hash {
		ResetCache() // force full recomputation, not a cached replay
		var digests []digest.Hash
		if err := RunParallel(context.Background(), gens, jobs, func(r RunResult) {
			if r.Err != nil {
				t.Errorf("jobs=%d: %s failed: %v", jobs, r.Gen.ID, r.Err)
				return
			}
			if r.Index != len(digests) {
				t.Errorf("jobs=%d: collected index %d out of order (want %d)",
					jobs, r.Index, len(digests))
			}
			digests = append(digests, artifactDigest(r.Artifact))
		}); err != nil {
			t.Errorf("jobs=%d: RunParallel returned %v with live context", jobs, err)
		}
		return digests
	}

	seq := runAt(1)
	par := runAt(8)
	if len(seq) != len(ids) || len(par) != len(ids) {
		t.Fatalf("collected %d/%d artifacts, want %d", len(seq), len(par), len(ids))
	}
	for i, id := range ids {
		if seq[i] != par[i] {
			t.Errorf("%s: artifact digest differs between -jobs 1 (%x) and -jobs 8 (%x)",
				id, seq[i], par[i])
		}
	}
}

// TestForEachOrderedCollectsInOrder checks the ordered-collection
// contract at several worker counts, including jobs > n and jobs <= 0.
func TestForEachOrderedCollectsInOrder(t *testing.T) {
	const n = 100
	for _, jobs := range []int{-1, 1, 3, 8, n + 7} {
		var got []int
		ForEachOrdered(context.Background(), n, jobs, func(i int) int { return i * i }, func(i, v int) {
			if v != i*i {
				t.Fatalf("jobs=%d: index %d got %d, want %d", jobs, i, v, i*i)
			}
			got = append(got, i)
		})
		if len(got) != n {
			t.Fatalf("jobs=%d: collected %d results, want %d", jobs, len(got), n)
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("jobs=%d: collection order %v not ascending", jobs, got[:i+1])
			}
		}
	}
}

// TestSingleFlightHammer hammers one memo cell from 16 goroutines: every
// caller of one cache generation must observe the same value, and the
// compute function must run exactly once per generation no matter how
// many callers pile in. Run under -race (scripts/check.sh does) this is
// the regression test for the old unguarded tableRunCache map.
func TestSingleFlightHammer(t *testing.T) {
	const (
		goroutines = 16
		iters      = 200
	)
	var m memo[int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, err := m.Do(func() (int, error) {
					return int(calls.Add(1)), nil
				})
				if err != nil {
					t.Errorf("unexpected error: %v", err)
					return
				}
				if v < 1 || v > int(calls.Load()) {
					t.Errorf("value %d outside generation range", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times for one generation, want 1", got)
	}

	// Reset storms from many goroutines must stay race-free and every
	// generation must still compute through the single-flight path.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					m.Reset()
					continue
				}
				if _, err := m.Do(func() (int, error) {
					return int(calls.Add(1)), nil
				}); err != nil {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// ResetCache itself must be callable concurrently (it was a bare map
	// write before the single-flight rework).
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ResetCache()
			}
		}()
	}
	wg.Wait()
}

// TestSingleFlightErrorNotCached verifies a failed computation is retried
// while a successful one is cached.
func TestSingleFlightErrorNotCached(t *testing.T) {
	var m memo[string]
	boom := errors.New("boom")
	calls := 0
	fail := func() (string, error) { calls++; return "", fmt.Errorf("attempt %d: %w", calls, boom) }
	if _, err := m.Do(fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := m.Do(fail); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("failed compute cached: ran %d times, want 2", calls)
	}
	ok := func() (string, error) { calls++; return "v", nil }
	if v, err := m.Do(ok); err != nil || v != "v" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if v, err := m.Do(ok); err != nil || v != "v" {
		t.Fatalf("cached Do = %q, %v", v, err)
	}
	if calls != 3 {
		t.Fatalf("successful compute not cached: ran %d times, want 3", calls)
	}
}

// TestForEachOrderedCancellation checks the graceful-drain contract: a
// cancellation mid-run collects a contiguous prefix of started items
// (in-flight work finishes, unstarted work is skipped) and returns the
// context error; a pre-canceled context starts nothing.
func TestForEachOrderedCancellation(t *testing.T) {
	const n = 64
	for _, jobs := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		var collected []int
		err := ForEachOrdered(ctx, n, jobs, func(i int) int {
			if started.Add(1) == 5 {
				cancel() // cancel mid-run from a worker
			}
			return i
		}, func(i, v int) {
			collected = append(collected, i)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if len(collected) == n {
			t.Fatalf("jobs=%d: cancellation collected the full set", jobs)
		}
		for i, idx := range collected {
			if idx != i {
				t.Fatalf("jobs=%d: collected %v is not a contiguous prefix", jobs, collected)
			}
		}
		// Everything started must have been collected: no lost in-flight work.
		if int32(len(collected)) != started.Load() {
			t.Fatalf("jobs=%d: started %d items but collected %d", jobs, started.Load(), len(collected))
		}
	}

	// Pre-canceled context: nothing runs at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachOrdered(ctx, 8, 4, func(i int) int { ran = true; return i },
		func(int, int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err = %v", err)
	}
	if ran {
		t.Fatal("pre-canceled context still ran work")
	}

	// A nil context behaves as context.Background().
	count := 0
	if err := ForEachOrdered(nil, 8, 4, func(i int) int { return i },
		func(int, int) { count++ }); err != nil || count != 8 {
		t.Fatalf("nil ctx: err=%v count=%d", err, count)
	}
}
