package experiments

import (
	"guvm"
	"guvm/internal/mem"
	"guvm/internal/report"
	"guvm/internal/workloads"
)

// vecAddFaultRun executes the Listing-1 microbenchmark with full fault
// retention and classifies each fetched fault by source vector. The
// prefetcher is off so the raw fault mechanics are visible, as in the
// paper's per-fault-instrumented driver runs.
func vecAddFaultRun() (*guvm.Result, func(p mem.PageID) string, error) {
	cfg := noPrefetch(baseConfig())
	cfg.KeepFaults = true
	w := workloads.NewVecAddPaper()
	res, err := run(cfg, w)
	if err != nil {
		return nil, nil, err
	}
	classify := func(p mem.PageID) string {
		switch {
		case p >= mem.PageOf(res.Bases[2]):
			return "c"
		case p >= mem.PageOf(res.Bases[1]):
			return "b"
		default:
			return "a"
		}
	}
	return res, classify, nil
}

// Fig03 reproduces Figure 3: the Listing-1 vector addition's faults in
// arrival order, separated by batch. Key claims: the first batch holds
// exactly 56 faults (the µTLB outstanding limit — all A reads and most B
// reads), and writes never fault before all 64 prerequisite reads of the
// iteration are fulfilled.
func Fig03() (*Artifact, error) {
	a := &Artifact{ID: "fig03", Title: "Listing-1 faults as a relative series by batch"}
	res, classify, err := vecAddFaultRun()
	if err != nil {
		return nil, err
	}

	s := &report.Series{
		Title:   "fig03",
		Columns: []string{"fault_idx", "batch_id", "vector(0=a,1=b,2=c)", "page_in_vector", "is_write"},
	}
	vecIdx := map[string]float64{"a": 0, "b": 1, "c": 2}
	for i, f := range res.Faults {
		v := classify(f.Page)
		base := res.Bases[int(vecIdx[v])]
		isWrite := 0.0
		if f.Kind.String() == "write" {
			isWrite = 1
		}
		s.AddRow(float64(i), float64(res.FaultBatch[i]), vecIdx[v],
			float64(f.Page-mem.PageOf(base)), isWrite)
	}
	a.Series = append(a.Series, s)

	t := &report.Table{
		Title:   "Figure 3: batch composition",
		Headers: []string{"batch", "faults", "reads", "writes"},
	}
	type counts struct{ faults, reads, writes int }
	perBatch := map[int]*counts{}
	maxBatch := 0
	for i, f := range res.Faults {
		b := res.FaultBatch[i]
		if perBatch[b] == nil {
			perBatch[b] = &counts{}
		}
		perBatch[b].faults++
		if f.Kind.String() == "write" {
			perBatch[b].writes++
		} else {
			perBatch[b].reads++
		}
		if b > maxBatch {
			maxBatch = b
		}
	}
	for b := 0; b <= maxBatch; b++ {
		c := perBatch[b]
		if c == nil {
			continue
		}
		t.AddRow(b, c.faults, c.reads, c.writes)
	}
	a.Tables = append(a.Tables, t)

	first := perBatch[0]
	a.Notef("paper: first batch contains exactly 56 faults (µTLB limit); measured %d", first.faults)
	a.Notef("paper: first batch is reads only (all A + most B); measured %d reads, %d writes",
		first.reads, first.writes)
	// Verify scoreboard ordering: per iteration, writes after 64 reads.
	reads, writes, violation := 0, 0, false
	for i, f := range res.Faults {
		_ = i
		if f.Kind.String() == "write" {
			writes++
			if reads < 64*((writes+31)/32) {
				violation = true
			}
		} else {
			reads++
		}
	}
	a.Notef("paper: no write faults until all 64 prerequisite reads fulfilled; violations measured: %v", violation)
	return a, nil
}

// Fig04 reproduces Figure 4: the same faults with real (virtual-clock)
// arrival timestamps. Faults from one warp arrive in rapid succession;
// tight vertical clusters are batches; batch servicing gaps dominate.
func Fig04() (*Artifact, error) {
	a := &Artifact{ID: "fig04", Title: "Listing-1 faults with arrival timestamps"}
	res, classify, err := vecAddFaultRun()
	if err != nil {
		return nil, err
	}

	s := &report.Series{
		Title:   "fig04",
		Columns: []string{"time_us", "batch_id", "vector(0=a,1=b,2=c)", "page_in_vector"},
	}
	vecIdx := map[string]float64{"a": 0, "b": 1, "c": 2}
	for i, f := range res.Faults {
		v := classify(f.Page)
		base := res.Bases[int(vecIdx[v])]
		s.AddRow(us(f.Time), float64(res.FaultBatch[i]), vecIdx[v],
			float64(f.Page-mem.PageOf(base)))
	}
	a.Series = append(a.Series, s)

	// Within-batch arrival spread vs between-batch gaps.
	var maxSpread, minGap float64
	batchTimes := map[int][2]float64{} // batch -> [first, last] arrival us
	for i, f := range res.Faults {
		b := res.FaultBatch[i]
		tt := us(f.Time)
		if cur, ok := batchTimes[b]; !ok {
			batchTimes[b] = [2]float64{tt, tt}
		} else {
			if tt < cur[0] {
				cur[0] = tt
			}
			if tt > cur[1] {
				cur[1] = tt
			}
			batchTimes[b] = cur
		}
	}
	minGap = -1
	for b, span := range batchTimes {
		if spread := span[1] - span[0]; spread > maxSpread {
			maxSpread = spread
		}
		if next, ok := batchTimes[b+1]; ok {
			if gap := next[0] - span[1]; minGap < 0 || gap < minGap {
				minGap = gap
			}
		}
	}
	a.Notef("paper: faults of a batch arrive tightly clustered, with servicing gaps between batches; measured max within-batch spread %.1fus vs min between-batch gap %.1fus", maxSpread, minGap)
	return a, nil
}

// Fig05 reproduces Figure 5: instruction-level prefetching escapes both
// the µTLB outstanding-fault limit and the SM rate throttle, so a single
// warp generates faults up to the 256-fault software batch limit; faults
// beyond the limit are dropped at the flush and re-fault.
func Fig05() (*Artifact, error) {
	a := &Artifact{ID: "fig05", Title: "Prefetch-instruction fault batches"}
	cfg := baseConfig()
	cfg.KeepFaults = true
	res, err := run(cfg, workloads.NewVecAddPrefetch())
	if err != nil {
		return nil, err
	}

	s := &report.Series{Title: "fig05", Columns: []string{"fault_idx", "batch_id", "page"}}
	perBatch := map[int]int{}
	for i, f := range res.Faults {
		s.AddRow(float64(i), float64(res.FaultBatch[i]), float64(f.Page))
		perBatch[res.FaultBatch[i]]++
	}
	a.Series = append(a.Series, s)

	t := &report.Table{Title: "Figure 5: batch sizes", Headers: []string{"batch", "faults"}}
	maxFaults := 0
	for b := 0; b < len(res.Batches); b++ {
		t.AddRow(b, perBatch[b])
		if perBatch[b] > maxFaults {
			maxFaults = perBatch[b]
		}
	}
	a.Tables = append(a.Tables, t)

	a.Notef("paper: a single warp fills the 256-fault batch size limit via prefetch; measured max batch %d", maxFaults)
	a.Notef("paper: faults beyond the limit are dropped and re-fault; measured %d re-faults", res.DeviceStats.Refaults)
	return a, nil
}
