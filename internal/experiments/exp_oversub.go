package experiments

import (
	"guvm/internal/report"
	"guvm/internal/stats"
	"guvm/internal/workloads"
)

// Fig12 reproduces Figure 12: sgemm with a problem size exceeding GPU
// memory, prefetching off. Claims: many early batches complete without
// eviction (memory not yet full); once memory fills, batches carrying
// evictions pay markedly more (failed allocation + writeback + restart +
// population).
func Fig12() (*Artifact, error) {
	a := &Artifact{ID: "fig12", Title: "sgemm under oversubscription and eviction"}
	cfg := noPrefetch(baseConfig())
	cfg.Driver.GPUMemBytes = 24 << 20 // sgemm 2048: 48 MB working set -> 200%
	res, err := run(cfg, workloads.NewSGEMM(2048))
	if err != nil {
		return nil, err
	}

	s := &report.Series{
		Title:   "fig12",
		Columns: []string{"batch_id", "batch_us", "migrated_KB", "evictions"},
	}
	var evictless, evicting []float64
	firstEvict := -1
	for _, b := range res.Batches {
		s.AddRow(float64(b.ID), us(b.Duration()), float64(b.BytesMigrated)/1024, float64(b.Evictions))
		if b.Evictions == 0 {
			evictless = append(evictless, us(b.Duration()))
		} else {
			evicting = append(evicting, us(b.Duration()))
			if firstEvict < 0 {
				firstEvict = b.ID
			}
		}
	}
	a.Series = append(a.Series, s)

	se, sn := stats.Summarize(evicting), stats.Summarize(evictless)
	t := &report.Table{
		Title:   "Figure 12: batch cost by eviction presence",
		Headers: []string{"group", "batches", "mean_us", "max_us"},
	}
	t.AddRow("no-eviction", sn.N, sn.Mean, sn.Max)
	t.AddRow("evicting", se.N, se.Mean, se.Max)
	a.Tables = append(a.Tables, t)

	a.Notef("paper: many batches execute before memory fills; measured first eviction at batch %d of %d", firstEvict, len(res.Batches))
	a.Notef("paper: eviction batches carry greater overhead; measured mean %.0fus evicting vs %.0fus without (%.1fx)",
		se.Mean, sn.Mean, se.Mean/sn.Mean)
	return a, nil
}

// Fig13 reproduces Figure 13: stream under oversubscription shows multiple
// cost "levels" for the same eviction count. Claim: the upper level pays
// unmap_mapping_range (block still CPU-mapped on first GPU touch) plus the
// eviction; the lower level re-fetches previously evicted blocks, which
// are NOT remapped to the CPU, so the unmap cost vanishes.
func Fig13() (*Artifact, error) {
	a := &Artifact{ID: "fig13", Title: "stream oversubscription: eviction cost levels"}
	cfg := noPrefetch(baseConfig())
	cfg.Driver.GPUMemBytes = 40 << 20 // 3 x 16 MB arrays = 48 MB -> 120%
	w := workloads.NewStream(16<<20, 160)
	w.Iterations = 2 // second pass re-faults evicted blocks sans unmap
	res, err := run(cfg, w)
	if err != nil {
		return nil, err
	}

	s := &report.Series{
		Title:   "fig13",
		Columns: []string{"batch_id", "batch_us", "evictions", "unmap_pages"},
	}
	// Group by eviction count and split by unmap presence.
	var keys []int
	var durations []float64
	withUnmap := map[int][]float64{}
	sansUnmap := map[int][]float64{}
	for _, b := range res.Batches {
		s.AddRow(float64(b.ID), us(b.Duration()), float64(b.Evictions), float64(b.UnmapPages))
		keys = append(keys, b.Evictions)
		durations = append(durations, us(b.Duration()))
		if b.UnmapPages > 0 {
			withUnmap[b.Evictions] = append(withUnmap[b.Evictions], us(b.Duration()))
		} else {
			sansUnmap[b.Evictions] = append(sansUnmap[b.Evictions], us(b.Duration()))
		}
	}
	a.Series = append(a.Series, s)

	order, _ := stats.GroupBy(keys, durations)
	t := &report.Table{
		Title:   "Figure 13: cost levels per eviction count",
		Headers: []string{"evictions", "with_unmap_mean_us", "n", "sans_unmap_mean_us", "n", "level_gap_us"},
	}
	levels := 0
	for _, k := range order {
		wu := stats.Summarize(withUnmap[k])
		su := stats.Summarize(sansUnmap[k])
		gap := wu.Mean - su.Mean
		t.AddRow(k, wu.Mean, wu.N, su.Mean, su.N, gap)
		if wu.N > 0 && su.N > 0 && gap > 0 {
			levels++
		}
	}
	a.Tables = append(a.Tables, t)
	a.Notef("paper: same-eviction-count batches form levels; the lower level has near-zero unmap cost; measured %d eviction counts exhibiting both levels with the unmap level costlier", levels)
	return a, nil
}
