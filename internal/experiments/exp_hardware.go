package experiments

import (
	"guvm/internal/report"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

// AblHardware sweeps the two GPU fault-generation constraints the paper
// reverse-engineers in §3 — the per-µTLB outstanding-fault limit (56 on
// Volta) and the per-SM fault-rate throttle — quantifying how hardware
// generosity would change driver workloads. This is the sensitivity
// analysis behind the paper's observation that "the number of total
// faults available per batch is limited by ... the limitations on total
// fault generation", and behind related work (Kim et al.) that enlarges
// fault capacity in simulation.
func AblHardware() (*Artifact, error) {
	a := &Artifact{ID: "abl-hardware", Title: "GPU fault-generation constraint sensitivity"}

	mk := func() workloads.Workload { return workloads.NewRegular(64<<20, 160) }

	// Sweep 1: µTLB outstanding-fault capacity.
	t1 := &report.Table{
		Title:   "µTLB outstanding-fault limit (regular, no prefetch)",
		Headers: []string{"utlb_limit", "kernel_ms", "batches", "avg_unique_per_batch"},
	}
	uniqueAt := map[int]float64{}
	for _, limit := range []int{14, 28, 56, 112, 224} {
		cfg := noPrefetch(baseConfig())
		cfg.GPU.MaxFaultsPerUTLB = limit
		cfg.Driver.BatchSize = 1024
		res, err := run(cfg, mk())
		if err != nil {
			return nil, err
		}
		var uniq float64
		for _, b := range res.Batches {
			uniq += float64(b.UniquePages)
		}
		avg := uniq / float64(len(res.Batches))
		uniqueAt[limit] = avg
		t1.AddRow(limit, ms(res.KernelTime), len(res.Batches), avg)
	}
	a.Tables = append(a.Tables, t1)

	// Sweep 2: SM fault-rate throttle gap, on the single-warp Listing-1
	// microbenchmark where the throttle (not the µTLB) is the binding
	// constraint on fault issue.
	t2 := &report.Table{
		Title:   "SM fault-rate throttle (Listing-1 vecadd, single warp)",
		Headers: []string{"throttle_gap_ns", "kernel_us", "batches"},
	}
	var kernels []float64
	for _, gap := range []sim.Time{125, 500, 2000, 8000} {
		cfg := noPrefetch(baseConfig())
		cfg.GPU.FaultThrottleGap = gap * sim.Nanosecond
		res, err := run(cfg, workloads.NewVecAddPaper())
		if err != nil {
			return nil, err
		}
		t2.AddRow(int64(gap), us(res.KernelTime), len(res.Batches))
		kernels = append(kernels, us(res.KernelTime))
	}
	a.Tables = append(a.Tables, t2)

	a.Notef("paper §3: fault generation is hardware-bounded; a µTLB limit of 14 caps unique faults per batch at %.0f vs %.0f at the Volta limit of 56 (batch cap 1024)",
		uniqueAt[14], uniqueAt[56])
	a.Notef("the SM throttle governs single-warp fault issue: 125ns -> 8us gap slows the Listing-1 kernel %.0fus -> %.0fus",
		kernels[0], kernels[3])
	return a, nil
}
