package experiments

import (
	"strings"
	"testing"
)

func TestRegistryWellFormed(t *testing.T) {
	gens := All()
	if len(gens) != 28 {
		t.Fatalf("registry has %d experiments, want 28 (tables+figures, breakdown, architectures, 6 ablations, multi-GPU extension)", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if g.ID == "" || g.Title == "" || g.Run == nil {
			t.Fatalf("incomplete generator %+v", g)
		}
		if seen[g.ID] {
			t.Fatalf("duplicate experiment id %q", g.ID)
		}
		seen[g.ID] = true
	}
	if _, ok := Find("table2"); !ok {
		t.Fatal("Find failed for table2")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find matched unknown id")
	}
}

// TestFastExperiments runs the cheap experiments end-to-end and checks
// their key paper claims hold in the output.
func TestFastExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}

	t.Run("fig03", func(t *testing.T) {
		a, err := Fig03()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tables) == 0 || len(a.Series) == 0 {
			t.Fatal("missing output")
		}
		// First batch must be 56 faults per the µTLB limit.
		if a.Tables[0].Rows[0][1] != "56" {
			t.Fatalf("first batch = %s, want 56", a.Tables[0].Rows[0][1])
		}
		for _, n := range a.Notes {
			if strings.Contains(n, "violations measured: true") {
				t.Fatal("scoreboard ordering violated")
			}
		}
	})

	t.Run("fig05", func(t *testing.T) {
		a, err := Fig05()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range a.Notes {
			if strings.Contains(n, "measured max batch 256") {
				found = true
			}
		}
		if !found {
			t.Fatalf("prefetch batch did not hit the 256 limit: %v", a.Notes)
		}
	})

	t.Run("fig13", func(t *testing.T) {
		a, err := Fig13()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tables) == 0 {
			t.Fatal("no level table")
		}
		// At least one eviction count must exhibit both cost levels.
		found := false
		for _, n := range a.Notes {
			if strings.Contains(n, "exhibiting both levels") && !strings.Contains(n, "measured 0 ") {
				found = true
			}
		}
		if !found {
			t.Fatalf("no eviction cost levels: %v", a.Notes)
		}
	})

	t.Run("fig14", func(t *testing.T) {
		a, err := Fig14()
		if err != nil {
			t.Fatal(err)
		}
		var reduction string
		for _, row := range a.Tables[0].Rows {
			if row[0] == "batch_reduction_pct" {
				reduction = row[1]
			}
		}
		if reduction == "" {
			t.Fatal("no batch reduction metric")
		}
	})

	t.Run("fig16", func(t *testing.T) {
		a, err := Fig16()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Series) != 2 {
			t.Fatalf("case study series = %d, want profile+faults", len(a.Series))
		}
		if len(a.Series[1].Rows) == 0 {
			t.Fatal("no fault-behaviour rows")
		}
	})
}

// TestExperimentsDeterministic verifies that re-running an experiment
// yields identical notes (the simulator is seed-stable).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	a, err := Fig05()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig05()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Notes) != len(b.Notes) {
		t.Fatal("note count differs between runs")
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			t.Fatalf("note %d differs:\n%s\n%s", i, a.Notes[i], b.Notes[i])
		}
	}
}

// TestAllExperimentsProduceOutput runs every generator — all paper
// figures/tables, the ablations, and the multi-GPU extension — and checks
// each emits well-formed artifacts. This is the end-to-end guard on the
// reproduction harness (~30s).
func TestAllExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	ResetCache()
	for _, g := range All() {
		g := g
		t.Run(g.ID, func(t *testing.T) {
			a, err := g.Run()
			if err != nil {
				t.Fatal(err)
			}
			if a.ID != g.ID {
				t.Fatalf("artifact id %q != generator id %q", a.ID, g.ID)
			}
			if len(a.Tables)+len(a.Series) == 0 {
				t.Fatal("no tables or series")
			}
			if len(a.Notes) == 0 {
				t.Fatal("no observations")
			}
			for _, tb := range a.Tables {
				if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("empty table %q", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Fatalf("table %q: row width %d != header %d",
							tb.Title, len(row), len(tb.Headers))
					}
				}
			}
			for _, s := range a.Series {
				if len(s.Columns) == 0 {
					t.Fatalf("series %q has no columns", s.Title)
				}
				for _, row := range s.Rows {
					if len(row) != len(s.Columns) {
						t.Fatalf("series %q: row width mismatch", s.Title)
					}
				}
			}
		})
	}
}
