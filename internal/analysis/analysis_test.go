package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"guvm/internal/gpu"
	"guvm/internal/trace"
)

func TestInterArrival(t *testing.T) {
	faults := []gpu.Fault{{Time: 100}, {Time: 150}, {Time: 300}}
	s := InterArrival(faults)
	if s.N != 2 || s.Min != 50 || s.Max != 150 {
		t.Fatalf("summary = %+v", s)
	}
	if InterArrival(nil).N != 0 || InterArrival(faults[:1]).N != 0 {
		t.Fatal("degenerate inputs not zero")
	}
	// Out-of-order (interleaved µTLB streams) clamps to zero, no panic.
	s2 := InterArrival([]gpu.Fault{{Time: 200}, {Time: 100}})
	if s2.Min != 0 {
		t.Fatalf("negative gap not clamped: %+v", s2)
	}
}

func TestServiceGaps(t *testing.T) {
	batches := []trace.BatchRecord{
		{Start: 0, End: 100},
		{Start: 150, End: 300},
		{Start: 300, End: 400}, // back-to-back
	}
	s := ServiceGaps(batches)
	if s.N != 2 || s.Max != 50 || s.Min != 0 {
		t.Fatalf("gaps = %+v", s)
	}
}

func TestDuplicates(t *testing.T) {
	batches := []trace.BatchRecord{
		{RawFaults: 100, UniquePages: 60, Type1Dups: 30, Type2Dups: 10},
		{RawFaults: 100, UniquePages: 100},
	}
	d := Duplicates(batches)
	if d.Raw != 200 || d.Unique != 160 || d.Type1 != 30 || d.Type2 != 10 {
		t.Fatalf("breakdown = %+v", d)
	}
	if math.Abs(d.DupPercent-20) > 1e-9 {
		t.Fatalf("dup%% = %v", d.DupPercent)
	}
}

func TestGiniExtremes(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Fatalf("balanced gini = %v", g)
	}
	// All mass on one element approaches (n-1)/n.
	g := Gini([]float64{0, 0, 0, 100})
	if math.Abs(g-0.75) > 1e-9 {
		t.Fatalf("concentrated gini = %v, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate gini not zero")
	}
}

// Property: Gini is in [0, 1) and scale-invariant.
func TestGiniProperties(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		k := float64(scale%9) + 1
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = k * float64(r)
		}
		g1, g2 := Gini(xs), Gini(ys)
		if g1 < -1e-9 || g1 >= 1 {
			return false
		}
		return math.Abs(g1-g2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVABlockImbalance(t *testing.T) {
	balanced := []trace.BatchRecord{{VABlockFaults: []uint16{4, 4, 4, 4}}}
	skewed := []trace.BatchRecord{{VABlockFaults: []uint16{1, 1, 1, 200}}}
	if gb, gs := VABlockImbalance(balanced), VABlockImbalance(skewed); gb >= gs {
		t.Fatalf("balanced gini %v >= skewed %v", gb, gs)
	}
}

func TestResidencyTimeline(t *testing.T) {
	batches := []trace.BatchRecord{
		{End: 10, BytesMigrated: 1000},
		{End: 20, BytesMigrated: 500, EvictedBytes: 200},
		{End: 30, EvictedBytes: 1300},
	}
	pts := ResidencyTimeline(batches)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	want := []int64{1000, 1300, 0}
	for i, w := range want {
		if pts[i].Bytes != w {
			t.Fatalf("point %d = %d, want %d", i, pts[i].Bytes, w)
		}
	}
}

func TestSegmentPhasesDetectsShift(t *testing.T) {
	var batches []trace.BatchRecord
	for i := 0; i < 20; i++ {
		batches = append(batches, trace.BatchRecord{RawFaults: 250})
	}
	for i := 0; i < 20; i++ {
		batches = append(batches, trace.BatchRecord{RawFaults: 40})
	}
	phases := SegmentPhases(batches, 5, 0.5)
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2: %+v", len(phases), phases)
	}
	if phases[0].LastBatch != 19 || phases[1].FirstBatch != 20 {
		t.Fatalf("boundary wrong: %+v", phases)
	}
	if phases[0].MeanFaults < 200 || phases[1].MeanFaults > 60 {
		t.Fatalf("phase means wrong: %+v", phases)
	}
}

func TestSegmentPhasesUniformSeries(t *testing.T) {
	var batches []trace.BatchRecord
	for i := 0; i < 50; i++ {
		batches = append(batches, trace.BatchRecord{RawFaults: 100 + i%3})
	}
	phases := SegmentPhases(batches, 5, 0.5)
	if len(phases) != 1 {
		t.Fatalf("uniform series split into %d phases", len(phases))
	}
	if SegmentPhases(nil, 5, 0.5) != nil {
		t.Fatal("empty series not nil")
	}
}

// Property: phases tile the batch range exactly.
func TestSegmentPhasesTile(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		batches := make([]trace.BatchRecord, len(sizes))
		for i, s := range sizes {
			batches[i].RawFaults = int(s)
		}
		phases := SegmentPhases(batches, 3, 0.5)
		if phases[0].FirstBatch != 0 {
			return false
		}
		for i := 1; i < len(phases); i++ {
			if phases[i].FirstBatch != phases[i-1].LastBatch+1 {
				return false
			}
		}
		return phases[len(phases)-1].LastBatch == len(batches)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShares(t *testing.T) {
	batches := []trace.BatchRecord{{
		Start: 0, End: 1000,
		TFetch: 200, TTransfer: 100, TUnmap: 300, TReplay: 100,
	}}
	s := Shares(batches)
	if math.Abs(s.Fetch-0.2) > 1e-9 || math.Abs(s.Transfer-0.1) > 1e-9 ||
		math.Abs(s.Unmap-0.3) > 1e-9 {
		t.Fatalf("shares = %+v", s)
	}
	if math.Abs(s.Other-0.3) > 1e-9 {
		t.Fatalf("other = %v, want 0.3", s.Other)
	}
	if Shares(nil) != (CostShares{}) {
		t.Fatal("empty shares not zero")
	}
}
