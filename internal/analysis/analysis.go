// Package analysis post-processes driver telemetry the way the paper's
// evaluation scripts do: fault inter-arrival behaviour, batch service
// gaps, duplicate breakdowns, residency timelines, workload-imbalance
// metrics, and phase segmentation of batch-size series.
package analysis

import (
	"math"
	"sort"

	"guvm/internal/gpu"
	"guvm/internal/sim"
	"guvm/internal/stats"
	"guvm/internal/trace"
)

// InterArrival summarizes the gaps between consecutive fault arrivals —
// the Figure 4 "faults happen in rapid succession" measurement. Faults
// must be in arrival order (as fetched).
func InterArrival(faults []gpu.Fault) stats.Summary {
	if len(faults) < 2 {
		return stats.Summary{}
	}
	gaps := make([]float64, 0, len(faults)-1)
	for i := 1; i < len(faults); i++ {
		d := faults[i].Time - faults[i-1].Time
		if d < 0 {
			d = 0 // fetched order can interleave µTLB streams
		}
		gaps = append(gaps, float64(d))
	}
	return stats.Summarize(gaps)
}

// ServiceGaps summarizes the idle gaps between consecutive batches (end
// of one to start of the next): driver sleep plus interrupt and wakeup
// latency.
func ServiceGaps(batches []trace.BatchRecord) stats.Summary {
	if len(batches) < 2 {
		return stats.Summary{}
	}
	gaps := make([]float64, 0, len(batches)-1)
	for i := 1; i < len(batches); i++ {
		g := batches[i].Start - batches[i-1].End
		if g < 0 {
			g = 0
		}
		gaps = append(gaps, float64(g))
	}
	return stats.Summarize(gaps)
}

// DupBreakdown aggregates duplicate-fault composition over a run.
type DupBreakdown struct {
	Raw        int
	Unique     int
	Type1      int // same-µTLB duplicates
	Type2      int // cross-µTLB duplicates
	DupPercent float64
}

// Duplicates computes the run-wide duplicate breakdown (Figure 8's
// aggregate view).
func Duplicates(batches []trace.BatchRecord) DupBreakdown {
	var d DupBreakdown
	for i := range batches {
		b := &batches[i]
		d.Raw += b.RawFaults
		d.Unique += b.UniquePages
		d.Type1 += b.Type1Dups
		d.Type2 += b.Type2Dups
	}
	if d.Raw > 0 {
		d.DupPercent = 100 * float64(d.Type1+d.Type2) / float64(d.Raw)
	}
	return d
}

// Gini computes the Gini coefficient of a non-negative sample: 0 = fully
// balanced, ->1 = concentrated. Table 3's faults-per-VABlock imbalance —
// the reason per-VABlock driver parallelism load-balances poorly — is one
// number here.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += float64(i+1) * x
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// VABlockImbalance returns the Gini coefficient of per-VABlock fault
// counts pooled over all batches.
func VABlockImbalance(batches []trace.BatchRecord) float64 {
	var xs []float64
	for i := range batches {
		for _, c := range batches[i].VABlockFaults {
			xs = append(xs, float64(c))
		}
	}
	return Gini(xs)
}

// ResidencyPoint is one step of the residency timeline.
type ResidencyPoint struct {
	Time  sim.Time
	Bytes int64 // net resident managed bytes (migrated in - evicted)
}

// ResidencyTimeline reconstructs net GPU residency over time from batch
// records (the fill-then-steady-state curve behind Figures 12/16/17).
func ResidencyTimeline(batches []trace.BatchRecord) []ResidencyPoint {
	pts := make([]ResidencyPoint, 0, len(batches))
	var cur int64
	for i := range batches {
		b := &batches[i]
		cur += int64(b.BytesMigrated) - int64(b.EvictedBytes)
		pts = append(pts, ResidencyPoint{Time: b.End, Bytes: cur})
	}
	return pts
}

// Phase is a contiguous run of batches with similar size.
type Phase struct {
	FirstBatch, LastBatch int
	MeanFaults            float64
}

// SegmentPhases splits a batch series into phases wherever the trailing
// window mean of raw batch size departs from the phase's opening window
// mean by more than relThreshold (e.g. 0.5 for 50%). Comparing window
// means (not single batches) keeps oscillating-but-stationary series —
// common when large and small batches alternate — in one phase. sgemm's
// "changes and phases of the batching behavior over time" (Figure 8)
// segment cleanly; stream yields a single phase.
func SegmentPhases(batches []trace.BatchRecord, window int, relThreshold float64) []Phase {
	n := len(batches)
	if n == 0 {
		return nil
	}
	if window < 1 {
		window = 1
	}
	// rolling[i] = mean of raw faults over batches (i-window, i].
	rolling := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(batches[i].RawFaults)
		if i >= window {
			sum -= float64(batches[i-window].RawFaults)
		}
		span := i + 1
		if span > window {
			span = window
		}
		rolling[i] = sum / float64(span)
	}
	meanOf := func(lo, hi int) float64 { // inclusive
		var s float64
		for i := lo; i <= hi; i++ {
			s += float64(batches[i].RawFaults)
		}
		return s / float64(hi-lo+1)
	}
	var phases []Phase
	start := 0
	baseline := rolling[min(n-1, window-1)]
	for i := 1; i < n; i++ {
		if i-start < window {
			continue // window must refill with in-phase batches
		}
		if math.Abs(rolling[i]-baseline)/math.Max(baseline, 1) > relThreshold {
			// Locate the changepoint: the largest consecutive jump
			// within the trailing window.
			cut := i - window + 1
			if cut <= start {
				cut = start + 1
			}
			best := cut
			var bestJump float64
			for j := cut; j <= i; j++ {
				jump := math.Abs(float64(batches[j].RawFaults) - float64(batches[j-1].RawFaults))
				if jump > bestJump {
					bestJump = jump
					best = j
				}
			}
			cut = best
			phases = append(phases, Phase{FirstBatch: start, LastBatch: cut - 1, MeanFaults: meanOf(start, cut-1)})
			start = cut
			end := start + window - 1
			if end >= n {
				end = n - 1
			}
			baseline = meanOf(start, end)
		}
	}
	phases = append(phases, Phase{FirstBatch: start, LastBatch: n - 1, MeanFaults: meanOf(start, n-1)})
	return phases
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CostShares decomposes total batch time into component shares.
type CostShares struct {
	Fetch, Dedup, BlockMgmt, Populate, PageTable float64
	DMAMap, Unmap, Transfer, Evict, Replay       float64
	Other                                        float64
}

// Shares computes run-wide time shares per servicing component — the
// "where does batch time actually go" summary behind §4/§5.
func Shares(batches []trace.BatchRecord) CostShares {
	var s CostShares
	var total float64
	add := func(dst *float64, t sim.Time) {
		*dst += float64(t)
	}
	for i := range batches {
		b := &batches[i]
		total += float64(b.Duration())
		add(&s.Fetch, b.TFetch)
		add(&s.Dedup, b.TDedup)
		add(&s.BlockMgmt, b.TBlockMgmt)
		add(&s.Populate, b.TPopulate)
		add(&s.PageTable, b.TPageTable)
		add(&s.DMAMap, b.TDMAMap)
		add(&s.Unmap, b.TUnmap)
		add(&s.Transfer, b.TTransfer)
		add(&s.Evict, b.TEvict)
		add(&s.Replay, b.TReplay)
	}
	if total == 0 {
		return CostShares{}
	}
	known := 0.0
	for _, p := range []*float64{&s.Fetch, &s.Dedup, &s.BlockMgmt, &s.Populate,
		&s.PageTable, &s.DMAMap, &s.Unmap, &s.Transfer, &s.Evict, &s.Replay} {
		*p /= total
		known += *p
	}
	s.Other = 1 - known
	if s.Other < 0 {
		s.Other = 0
	}
	return s
}
