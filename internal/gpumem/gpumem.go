// Package gpumem models the GPU physical memory allocator behind the UVM
// driver: device memory carved into 2 MB chunks (the granularity at which
// UVM obtains memory from the nvidia resource manager and at which it
// evicts, §2.2). The driver maps VABlocks onto chunks; this package owns
// the pool, the free list, and the usage accounting.
package gpumem

import (
	"fmt"

	"guvm/internal/mem"
)

// ChunkID identifies one 2 MB physical chunk.
type ChunkID int

// Stats describes allocator activity.
type Stats struct {
	Allocs       int
	Frees        int
	FailedAllocs int
	PeakInUse    int
}

// Allocator hands out 2 MB chunks from a fixed-size pool. Chunks are
// recycled LIFO (hot chunks first), matching the resource manager's
// behaviour closely enough for cost purposes. The zero value is unusable;
// construct with New.
type Allocator struct {
	capacity int
	free     []ChunkID
	// ChunkIDs are dense 0..capacity-1, so ownership is a flat slice
	// indexed by chunk plus a liveness bitmap — no per-lookup hashing on
	// the eviction and audit paths.
	owner []mem.VABlockID // backing VABlock per chunk, valid while live
	live  []uint64        // liveness bitmap, one bit per chunk
	stats Stats
	// manager tags which layer owns the mapping state over this pool
	// (ArchitectureInfo.MappingOwner): "host-driver" for the paper's
	// design, "device" for on-device page management. Accounting only —
	// the pool mechanics are identical either way.
	manager string
}

func (a *Allocator) isLive(id ChunkID) bool {
	return a.live[id>>6]&(1<<(uint(id)&63)) != 0
}

// New builds an allocator over capacityBytes of device memory. It panics
// if the capacity cannot hold at least one chunk.
func New(capacityBytes uint64) *Allocator {
	n := int(capacityBytes / mem.VABlockSize)
	if n < 1 {
		panic(fmt.Sprintf("gpumem: capacity %d below one chunk", capacityBytes))
	}
	a := &Allocator{
		capacity: n,
		free:     make([]ChunkID, 0, n),
		owner:    make([]mem.VABlockID, n),
		live:     make([]uint64, (n+63)/64),
	}
	// Stack the free list so chunk 0 pops first.
	for i := n - 1; i >= 0; i-- {
		a.free = append(a.free, ChunkID(i))
	}
	return a
}

// SetManager tags the layer that owns mapping state over this pool.
func (a *Allocator) SetManager(m string) { a.manager = m }

// Manager returns the mapping-state owner tag ("host-driver" when unset).
func (a *Allocator) Manager() string {
	if a.manager == "" {
		return "host-driver"
	}
	return a.manager
}

// Capacity returns the total chunk count.
func (a *Allocator) Capacity() int { return a.capacity }

// InUse returns the live chunk count.
func (a *Allocator) InUse() int { return a.capacity - len(a.free) }

// Free returns the available chunk count.
func (a *Allocator) Free() int { return len(a.free) }

// Full reports whether no chunks remain.
func (a *Allocator) Full() bool { return len(a.free) == 0 }

// Stats returns a copy of the allocator statistics.
func (a *Allocator) Stats() Stats { return a.stats }

// Alloc assigns a chunk to back the given VABlock. It reports failure
// (and counts it — UVM's eviction path begins with a failed allocation)
// when the pool is exhausted.
func (a *Allocator) Alloc(block mem.VABlockID) (ChunkID, bool) {
	if len(a.free) == 0 {
		a.stats.FailedAllocs++
		return -1, false
	}
	id := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.owner[id] = block
	a.live[id>>6] |= 1 << (uint(id) & 63)
	a.stats.Allocs++
	if inUse := a.InUse(); inUse > a.stats.PeakInUse {
		a.stats.PeakInUse = inUse
	}
	return id, true
}

// Release returns a chunk to the pool. It panics on double free or on a
// chunk the allocator never issued — both driver bugs.
func (a *Allocator) Release(id ChunkID) {
	if id < 0 || int(id) >= a.capacity {
		panic(fmt.Sprintf("gpumem: release of invalid chunk %d", id))
	}
	if !a.isLive(id) {
		panic(fmt.Sprintf("gpumem: double free of chunk %d", id))
	}
	a.live[id>>6] &^= 1 << (uint(id) & 63)
	a.free = append(a.free, id)
	a.stats.Frees++
}

// Owner returns the VABlock a live chunk backs.
func (a *Allocator) Owner(id ChunkID) (mem.VABlockID, bool) {
	if id < 0 || int(id) >= a.capacity || !a.isLive(id) {
		return 0, false
	}
	return a.owner[id], true
}
