package gpumem

import (
	"testing"
	"testing/quick"

	"guvm/internal/mem"
)

func TestAllocatorBasics(t *testing.T) {
	a := New(8 << 20) // 4 chunks
	if a.Capacity() != 4 || a.Free() != 4 || a.InUse() != 0 {
		t.Fatalf("fresh allocator: cap=%d free=%d inuse=%d", a.Capacity(), a.Free(), a.InUse())
	}
	ids := map[ChunkID]bool{}
	for i := 0; i < 4; i++ {
		id, ok := a.Alloc(mem.VABlockID(i))
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if ids[id] {
			t.Fatalf("duplicate chunk %d", id)
		}
		ids[id] = true
	}
	if !a.Full() {
		t.Fatal("allocator not full after 4 allocs")
	}
	if _, ok := a.Alloc(9); ok {
		t.Fatal("alloc succeeded on full pool")
	}
	if a.Stats().FailedAllocs != 1 {
		t.Fatalf("failed allocs = %d", a.Stats().FailedAllocs)
	}
}

func TestAllocatorOwnerAndRelease(t *testing.T) {
	a := New(4 << 20)
	id, _ := a.Alloc(mem.VABlockID(7))
	if b, ok := a.Owner(id); !ok || b != 7 {
		t.Fatalf("owner = %d,%v", b, ok)
	}
	a.Release(id)
	if _, ok := a.Owner(id); ok {
		t.Fatal("released chunk still owned")
	}
	if a.InUse() != 0 {
		t.Fatal("in-use after release")
	}
	// The chunk is reusable.
	id2, ok := a.Alloc(8)
	if !ok || id2 != id {
		t.Fatalf("LIFO reuse: got %d,%v want %d", id2, ok, id)
	}
}

func TestAllocatorPanics(t *testing.T) {
	a := New(4 << 20)
	id, _ := a.Alloc(1)
	a.Release(id)
	for _, fn := range []func(){
		func() { a.Release(id) },          // double free
		func() { a.Release(ChunkID(99)) }, // out of range
		func() { New(1 << 20) },           // sub-chunk capacity
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPeakTracking(t *testing.T) {
	a := New(16 << 20) // 8 chunks
	var ids []ChunkID
	for i := 0; i < 6; i++ {
		id, _ := a.Alloc(mem.VABlockID(i))
		ids = append(ids, id)
	}
	for _, id := range ids[:4] {
		a.Release(id)
	}
	a.Alloc(100)
	if a.Stats().PeakInUse != 6 {
		t.Fatalf("peak = %d, want 6", a.Stats().PeakInUse)
	}
}

// Property: InUse + Free == Capacity under any alloc/release sequence, and
// no chunk is ever handed out twice concurrently.
func TestAllocatorInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		a := New(32 << 20) // 16 chunks
		var live []ChunkID
		for i, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				idx := int(op) % len(live)
				a.Release(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			} else {
				if id, ok := a.Alloc(mem.VABlockID(i)); ok {
					for _, l := range live {
						if l == id {
							return false // double-issued
						}
					}
					live = append(live, id)
				}
			}
			if a.InUse()+a.Free() != a.Capacity() {
				return false
			}
			if a.InUse() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
