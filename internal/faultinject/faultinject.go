// Package faultinject is the simulator's seeded, deterministic
// fault-injection subsystem. It lets experiments controllably stress the
// degradation behaviours the paper studies only at their onset —
// fault-buffer pressure, migration stalls, host memory exhaustion — and
// turns failure scenarios into first-class, regression-testable
// experiments: the same seed and the same injection configuration always
// produce the same injected faults, the same retries and the same
// telemetry.
//
// Three injection categories are modeled, each with its own independent
// RNG stream derived from the seed (so enabling one category never
// perturbs another's draw sequence):
//
//   - BufferDrop: an arriving fault-buffer record is dropped as if the
//     circular buffer had overflowed. Hardware-style replay retry
//     re-emits the record after a delay, up to a bounded budget; records
//     that exhaust it are recovered by the driver's next fault replay.
//   - Migrate: one DMA/migration transfer attempt fails transiently. The
//     driver retries with exponential backoff in virtual time; exhausting
//     the budget is an unrecoverable uvm.ErrMigrationFailed.
//   - HostAlloc: a host-OS page allocation (population) request fails.
//     The driver degrades gracefully — shrinking its effective batch size
//     and forcing eviction pressure — and retries instead of aborting.
//
// A nil *Injector is valid and injects nothing, so model code can hold an
// optional injector without guarding every call site.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"guvm/internal/sim"
)

// Per-category seed salts: distinct odd constants so the streams derived
// from one user seed are unrelated (sim.RNG is a SplitMix64 generator; any
// distinct non-zero salt decorrelates the sequences).
const (
	saltBufferDrop = 0x9e3779b97f4a7c15
	saltMigrate    = 0xbf58476d1ce4e5b9
	saltHostAlloc  = 0x94d049bb133111eb
)

// Config holds the injection knobs. The zero value (all rates zero)
// disables injection entirely: no RNG draws happen and the simulation is
// bit-identical to one without an injector.
type Config struct {
	// Seed derives every category's deterministic RNG stream.
	Seed uint64

	// BufferDropRate is the probability in [0, 1] that a fault record
	// arriving at the GPU fault buffer is dropped as if the buffer had
	// overflowed.
	BufferDropRate float64
	// BufferDropRetries is the hardware-style re-emission budget per
	// dropped record. A record that exhausts it stays lost until the
	// next driver fault replay re-faults the access.
	BufferDropRetries int
	// BufferRetryDelay is the virtual-time delay before a dropped
	// record's re-emission attempt.
	BufferRetryDelay sim.Time

	// MigrateFailRate is the probability in [0, 1] that one
	// DMA/migration transfer attempt fails transiently.
	MigrateFailRate float64
	// MigrateMaxRetries bounds the retry attempts per migration; a
	// migration that fails MigrateMaxRetries+1 times is unrecoverable.
	MigrateMaxRetries int
	// MigrateBackoff is the virtual-time backoff charged before the
	// first retry; it doubles on every further attempt.
	MigrateBackoff sim.Time

	// HostAllocFailRate is the probability in [0, 1] that a host-OS page
	// allocation (population) request fails.
	HostAllocFailRate float64
	// HostAllocMaxRetries bounds the driver's degrade-and-retry attempts
	// per allocation request.
	HostAllocMaxRetries int
}

// DefaultConfig returns an inert configuration (all rates zero) with
// sensible retry budgets and delays, so callers only need to raise the
// rate of the category they want to stress.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		BufferDropRetries:   3,
		BufferRetryDelay:    5 * sim.Microsecond,
		MigrateMaxRetries:   4,
		MigrateBackoff:      10 * sim.Microsecond,
		HostAllocMaxRetries: 6,
	}
}

// Enabled reports whether any category can inject.
func (c Config) Enabled() bool {
	return c.BufferDropRate > 0 || c.MigrateFailRate > 0 || c.HostAllocFailRate > 0
}

// Validate checks the configuration for values injection cannot run with.
func (c Config) Validate() error {
	check := func(name string, rate float64) error {
		if rate < 0 || rate > 1 {
			return fmt.Errorf("faultinject: %s = %v, need in [0, 1]", name, rate)
		}
		return nil
	}
	if err := check("BufferDropRate", c.BufferDropRate); err != nil {
		return err
	}
	if err := check("MigrateFailRate", c.MigrateFailRate); err != nil {
		return err
	}
	if err := check("HostAllocFailRate", c.HostAllocFailRate); err != nil {
		return err
	}
	switch {
	case c.BufferDropRetries < 0:
		return fmt.Errorf("faultinject: BufferDropRetries = %d, need >= 0", c.BufferDropRetries)
	case c.MigrateMaxRetries < 0:
		return fmt.Errorf("faultinject: MigrateMaxRetries = %d, need >= 0", c.MigrateMaxRetries)
	case c.HostAllocMaxRetries < 0:
		return fmt.Errorf("faultinject: HostAllocMaxRetries = %d, need >= 0", c.HostAllocMaxRetries)
	case c.BufferRetryDelay < 0:
		return fmt.Errorf("faultinject: BufferRetryDelay = %d, need >= 0", c.BufferRetryDelay)
	case c.MigrateBackoff < 0:
		return fmt.Errorf("faultinject: MigrateBackoff = %d, need >= 0", c.MigrateBackoff)
	}
	return nil
}

// Category identifies one injection category in the counter API.
type Category uint8

const (
	// BufferDrop is the fault-buffer record drop category.
	BufferDrop Category = iota
	// Migrate is the transient DMA/migration failure category.
	Migrate
	// HostAlloc is the host-OS allocation failure category.
	HostAlloc
	numCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case BufferDrop:
		return "buffer-drop"
	case Migrate:
		return "migrate"
	case HostAlloc:
		return "host-alloc"
	}
	return "unknown"
}

// Counters aggregates one category's injection outcomes.
type Counters struct {
	// Injected counts faults injected (individual failed attempts).
	Injected uint64
	// Retried counts retry attempts performed after an injection.
	Retried uint64
	// Recovered counts operations that eventually succeeded after at
	// least one injected failure.
	Recovered uint64
	// Unrecovered counts operations that exhausted their retry budget.
	Unrecovered uint64
}

// Stats is the full per-category counter set.
type Stats struct {
	BufferDrop Counters
	Migrate    Counters
	HostAlloc  Counters
}

// Of returns the counters of one category.
func (s Stats) Of(c Category) Counters {
	switch c {
	case BufferDrop:
		return s.BufferDrop
	case Migrate:
		return s.Migrate
	case HostAlloc:
		return s.HostAlloc
	}
	return Counters{}
}

// TotalInjected sums injections across categories.
func (s Stats) TotalInjected() uint64 {
	return s.BufferDrop.Injected + s.Migrate.Injected + s.HostAlloc.Injected
}

// counterCell is the internal atomic representation of one category's
// counters. The RNG-drawing decision methods stay simulation-goroutine
// only (they consume a deterministic stream), but outcome reporting
// (Note*) and reading (Stats) arrive from worker pools — the parallel
// experiment harness and the sweepd service layer — so the counters
// themselves must be safe under concurrent access.
type counterCell struct {
	injected, retried, recovered, unrecovered atomic.Uint64
}

// load materializes the exported plain-value view.
func (c *counterCell) load() Counters {
	return Counters{
		Injected:    c.injected.Load(),
		Retried:     c.retried.Load(),
		Recovered:   c.recovered.Load(),
		Unrecovered: c.unrecovered.Load(),
	}
}

// Injector draws injection decisions from seeded per-category RNG streams
// and accounts their outcomes. All methods are nil-receiver safe: a nil
// Injector never injects and counts nothing. The decision methods
// (ShouldDropFault, HostAllocFails, MigrateFailures) consume per-category
// RNG streams and must stay on the simulation goroutine; the Note*
// reporters and Stats are safe from any goroutine.
type Injector struct {
	cfg      Config
	rng      [numCategories]*sim.RNG
	counters [numCategories]counterCell
}

// New builds an injector. The returned injector is inert (but non-nil)
// when no rate is set, so wiring it unconditionally costs nothing.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{cfg: cfg}
	in.rng[BufferDrop] = sim.NewRNG(cfg.Seed ^ saltBufferDrop)
	in.rng[Migrate] = sim.NewRNG(cfg.Seed ^ saltMigrate)
	in.rng[HostAlloc] = sim.NewRNG(cfg.Seed ^ saltHostAlloc)
	return in, nil
}

// Config returns the injector's configuration (zero value on nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Enabled reports whether any category can inject.
func (in *Injector) Enabled() bool { return in != nil && in.cfg.Enabled() }

// Stats returns a copy of the per-category counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		BufferDrop: in.counters[BufferDrop].load(),
		Migrate:    in.counters[Migrate].load(),
		HostAlloc:  in.counters[HostAlloc].load(),
	}
}

// ShouldDropFault decides whether the next fault-buffer write is dropped,
// counting an injection when it is. Zero-rate configurations perform no
// RNG draw, keeping the stream untouched.
func (in *Injector) ShouldDropFault() bool {
	if in == nil || in.cfg.BufferDropRate <= 0 {
		return false
	}
	if in.rng[BufferDrop].Float64() < in.cfg.BufferDropRate {
		in.counters[BufferDrop].injected.Add(1)
		return true
	}
	return false
}

// BufferRetryBudget returns the re-emission budget for a dropped record.
func (in *Injector) BufferRetryBudget() int {
	if in == nil {
		return 0
	}
	return in.cfg.BufferDropRetries
}

// BufferRetryDelay returns the delay before one re-emission attempt.
func (in *Injector) BufferRetryDelay() sim.Time {
	if in == nil {
		return 0
	}
	return in.cfg.BufferRetryDelay
}

// HostAllocFails decides whether one host allocation attempt fails,
// counting an injection when it does.
func (in *Injector) HostAllocFails() bool {
	if in == nil || in.cfg.HostAllocFailRate <= 0 {
		return false
	}
	if in.rng[HostAlloc].Float64() < in.cfg.HostAllocFailRate {
		in.counters[HostAlloc].injected.Add(1)
		return true
	}
	return false
}

// HostAllocRetryBudget returns the degrade-and-retry budget per request.
func (in *Injector) HostAllocRetryBudget() int {
	if in == nil {
		return 0
	}
	return in.cfg.HostAllocMaxRetries
}

// MigrateFailures draws one migration's injected-failure plan: how many
// transfer attempts fail before one succeeds, and whether the whole
// retry budget was exhausted (fatal). All Migrate-category accounting
// happens here.
func (in *Injector) MigrateFailures() (failures int, fatal bool) {
	if in == nil || in.cfg.MigrateFailRate <= 0 {
		return 0, false
	}
	for attempt := 0; attempt <= in.cfg.MigrateMaxRetries; attempt++ {
		if in.rng[Migrate].Float64() >= in.cfg.MigrateFailRate {
			if failures > 0 {
				in.counters[Migrate].recovered.Add(1)
			}
			return failures, false
		}
		in.counters[Migrate].injected.Add(1)
		failures++
		if attempt < in.cfg.MigrateMaxRetries {
			in.counters[Migrate].retried.Add(1)
		}
	}
	in.counters[Migrate].unrecovered.Add(1)
	return failures, true
}

// MigrateBackoffFor returns the exponential virtual-time backoff charged
// before retry i (0-based): MigrateBackoff << i.
func (in *Injector) MigrateBackoffFor(i int) sim.Time {
	if in == nil {
		return 0
	}
	return in.cfg.MigrateBackoff << uint(i)
}

// NoteRetried counts one retry attempt in category c. BufferDrop and
// HostAlloc retries are driven by the device and driver respectively, so
// those layers report the outcomes; Migrate accounts internally in
// MigrateFailures. Safe from any goroutine.
func (in *Injector) NoteRetried(c Category) {
	if in != nil {
		in.counters[c].retried.Add(1)
	}
}

// NoteRecovered counts one operation that succeeded after injection.
// Safe from any goroutine.
func (in *Injector) NoteRecovered(c Category) {
	if in != nil {
		in.counters[c].recovered.Add(1)
	}
}

// NoteUnrecovered counts one operation that exhausted its retry budget.
// Safe from any goroutine.
func (in *Injector) NoteUnrecovered(c Category) {
	if in != nil {
		in.counters[c].unrecovered.Add(1)
	}
}
