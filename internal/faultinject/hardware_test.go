package faultinject

import (
	"testing"

	"guvm/internal/sim"
)

func TestHardwareConfigValidate(t *testing.T) {
	base := DefaultHardwareConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	nan := 0.0
	nan /= nan
	bad := []func(*HardwareConfig){
		func(c *HardwareConfig) { c.LinkDegradeRate = -0.1 },
		func(c *HardwareConfig) { c.LinkDegradeRate = 1.5 },
		func(c *HardwareConfig) { c.LinkDegradeRate = nan },
		func(c *HardwareConfig) { c.LinkFlapRate = 2 },
		func(c *HardwareConfig) { c.FlapDropRate = -1 },
		func(c *HardwareConfig) { c.LinkDegradeRate = 0.5; c.EpochLength = 0 },
		func(c *HardwareConfig) { c.LinkFlapRate = 0.5; c.EpochLength = -1 },
		func(c *HardwareConfig) { c.LinkDegradeRate = 0.5; c.DegradedBandwidthFactor = 0 },
		func(c *HardwareConfig) { c.LinkDegradeRate = 0.5; c.DegradedBandwidthFactor = 1.5 },
		func(c *HardwareConfig) { c.LinkDegradeRate = 0.5; c.DegradedBandwidthFactor = nan },
		func(c *HardwareConfig) { c.LinkRetryLimit = -1 },
		func(c *HardwareConfig) { c.LinkRetryBackoff = -1 },
		func(c *HardwareConfig) { c.KillDevice = -1 },
		func(c *HardwareConfig) { c.KillBatch = -1 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated, want error", i, c)
		}
		if _, err := NewHardware(c); err == nil {
			t.Errorf("case %d: NewHardware accepted invalid config", i)
		}
	}
}

func TestHardwareEnabled(t *testing.T) {
	if (HardwareConfig{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if DefaultHardwareConfig().Enabled() {
		t.Fatal("default (inert) config reports enabled")
	}
	for _, mutate := range []func(*HardwareConfig){
		func(c *HardwareConfig) { c.LinkDegradeRate = 0.1 },
		func(c *HardwareConfig) { c.LinkFlapRate = 0.1 },
		func(c *HardwareConfig) { c.KillBatch = 3 },
	} {
		c := DefaultHardwareConfig()
		mutate(&c)
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}

// Same seed → identical schedule; draws are stateless, so query order and
// repetition change nothing.
func TestHardwareDrawDeterminism(t *testing.T) {
	cfg := DefaultHardwareConfig()
	cfg.LinkDegradeRate = 0.3
	cfg.LinkFlapRate = 0.2
	a, _ := NewHardware(cfg)
	b, _ := NewHardware(cfg)

	type verdict struct{ deg, flap bool }
	forward := make([]verdict, 200)
	for e := 0; e < 200; e++ {
		deg, flap := a.LinkEpochDraws(1, int64(e))
		forward[e] = verdict{deg, flap}
	}
	// Query b backwards, twice, and expect the identical schedule.
	for pass := 0; pass < 2; pass++ {
		for e := 199; e >= 0; e-- {
			deg, flap := b.LinkEpochDraws(1, int64(e))
			if (verdict{deg, flap}) != forward[e] {
				t.Fatalf("pass %d epoch %d: draws (%v,%v) != first-pass %+v",
					pass, e, deg, flap, forward[e])
			}
		}
	}

	// A different seed must give a different schedule somewhere.
	cfg2 := cfg
	cfg2.Seed = 99
	c, _ := NewHardware(cfg2)
	same := true
	for e := 0; e < 200; e++ {
		deg, flap := c.LinkEpochDraws(1, int64(e))
		if (verdict{deg, flap}) != forward[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 99 produced identical 200-epoch schedules")
	}

	// Distinct links must be decorrelated under the same seed.
	same = true
	for e := 0; e < 200; e++ {
		deg, flap := a.LinkEpochDraws(2, int64(e))
		if (verdict{deg, flap}) != forward[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("links 1 and 2 drew identical 200-epoch schedules")
	}
}

func TestHardwareZeroRatesDrawNothing(t *testing.T) {
	hw, err := NewHardware(DefaultHardwareConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(0); e < 50; e++ {
		if deg, flap := hw.LinkEpochDraws(0, e); deg || flap {
			t.Fatalf("epoch %d: zero-rate draw returned (%v, %v)", e, deg, flap)
		}
	}
	if hw.TransferDrops(0, 7) {
		t.Fatal("zero-rate TransferDrops dropped")
	}
	if st := hw.Stats(); st != (HardwareStats{}) {
		t.Fatalf("stats = %+v, want all zero", st)
	}
}

func TestHardwareTransferDropCounting(t *testing.T) {
	cfg := DefaultHardwareConfig()
	cfg.LinkFlapRate = 1
	cfg.FlapDropRate = 1
	hw, _ := NewHardware(cfg)
	for i := uint64(1); i <= 3; i++ {
		if !hw.TransferDrops(0, i) {
			t.Fatalf("op %d: drop rate 1 did not drop", i)
		}
	}
	hw.NoteTransferRetried()
	hw.NoteTransferRetried()
	hw.NoteTransferUnrecovered()
	hw.NoteTransferRecovered()
	hw.NoteDeviceKilled()
	st := hw.Stats()
	if st.LinkTransfer.Injected != 3 || st.LinkTransfer.Retried != 2 ||
		st.LinkTransfer.Unrecovered != 1 || st.LinkTransfer.Recovered != 1 {
		t.Fatalf("link-transfer counters = %+v", st.LinkTransfer)
	}
	if st.DevicesKilled != 1 {
		t.Fatalf("DevicesKilled = %d, want 1", st.DevicesKilled)
	}
}

func TestHardwareEpochHealthCounts(t *testing.T) {
	cfg := DefaultHardwareConfig()
	cfg.LinkDegradeRate = 0.4
	cfg.LinkFlapRate = 0.3
	hw, _ := NewHardware(cfg)
	now := 99 * cfg.EpochLength // epochs 0..99 inclusive
	healthy, degraded, flapping := hw.EpochHealthCounts(0, now)
	if healthy+degraded+flapping != 100 {
		t.Fatalf("epoch counts %d+%d+%d != 100", healthy, degraded, flapping)
	}
	// Cross-check against the raw draws with flapping precedence.
	var wantH, wantD, wantF int64
	for e := int64(0); e < 100; e++ {
		deg, flap := hw.LinkEpochDraws(0, e)
		switch {
		case flap:
			wantF++
		case deg:
			wantD++
		default:
			wantH++
		}
	}
	if healthy != wantH || degraded != wantD || flapping != wantF {
		t.Fatalf("counts (%d,%d,%d) != raw draws (%d,%d,%d)",
			healthy, degraded, flapping, wantH, wantD, wantF)
	}
}

// Every decision and reporting method must be safe on a nil injector —
// that is the disabled-wiring contract.
func TestHardwareNilReceiverSafe(t *testing.T) {
	var hw *HardwareInjector
	if hw.Enabled() {
		t.Fatal("nil injector enabled")
	}
	if deg, flap := hw.LinkEpochDraws(0, 5); deg || flap {
		t.Fatal("nil injector drew a fault")
	}
	if hw.TransferDrops(0, 1) {
		t.Fatal("nil injector dropped a transfer")
	}
	if hw.EpochOf(sim.Time(1e9)) != 0 {
		t.Fatal("nil EpochOf != 0")
	}
	if hw.DegradedFactor() != 1 {
		t.Fatal("nil DegradedFactor != 1")
	}
	if hw.RetryLimit() != 0 || hw.RetryBackoffFor(3) != 0 {
		t.Fatal("nil retry knobs nonzero")
	}
	h, d, f := hw.EpochHealthCounts(0, sim.Time(1e9))
	if h != 0 || d != 0 || f != 0 {
		t.Fatal("nil EpochHealthCounts nonzero")
	}
	hw.NoteTransferRetried()
	hw.NoteTransferRecovered()
	hw.NoteTransferUnrecovered()
	hw.NoteDeviceKilled()
	if st := hw.Stats(); st != (HardwareStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if cfg := hw.Config(); cfg != (HardwareConfig{}) {
		t.Fatalf("nil config = %+v", cfg)
	}
}
