package faultinject

import (
	"reflect"
	"testing"

	"guvm/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"drop rate > 1", func(c *Config) { c.BufferDropRate = 1.5 }},
		{"negative drop rate", func(c *Config) { c.BufferDropRate = -0.1 }},
		{"migrate rate > 1", func(c *Config) { c.MigrateFailRate = 2 }},
		{"host rate > 1", func(c *Config) { c.HostAllocFailRate = 1.01 }},
		{"negative drop retries", func(c *Config) { c.BufferDropRetries = -1 }},
		{"negative migrate retries", func(c *Config) { c.MigrateMaxRetries = -1 }},
		{"negative host retries", func(c *Config) { c.HostAllocMaxRetries = -2 }},
		{"negative retry delay", func(c *Config) { c.BufferRetryDelay = -1 }},
		{"negative backoff", func(c *Config) { c.MigrateBackoff = -5 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted bad config", tc.name)
		}
	}
}

func TestEnabled(t *testing.T) {
	if DefaultConfig().Enabled() {
		t.Fatal("default (all-zero-rate) config reports enabled")
	}
	cfg := DefaultConfig()
	cfg.MigrateFailRate = 0.01
	if !cfg.Enabled() {
		t.Fatal("non-zero rate reports disabled")
	}
	var nilInj *Injector
	if nilInj.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.ShouldDropFault() || in.HostAllocFails() {
		t.Fatal("nil injector injected")
	}
	if f, fatal := in.MigrateFailures(); f != 0 || fatal {
		t.Fatal("nil injector planned migration failures")
	}
	if in.BufferRetryBudget() != 0 || in.BufferRetryDelay() != 0 ||
		in.HostAllocRetryBudget() != 0 || in.MigrateBackoffFor(3) != 0 {
		t.Fatal("nil injector returned non-zero budgets")
	}
	in.NoteRetried(BufferDrop)
	in.NoteRecovered(Migrate)
	in.NoteUnrecovered(HostAlloc)
	if in.Stats() != (Stats{}) {
		t.Fatal("nil injector accumulated stats")
	}
}

func TestZeroRateDrawsNothing(t *testing.T) {
	// A zero-rate category must not consume RNG state, so running with an
	// inert injector is bit-identical to running with none.
	in, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if in.ShouldDropFault() || in.HostAllocFails() {
			t.Fatal("zero-rate injector injected")
		}
		if f, _ := in.MigrateFailures(); f != 0 {
			t.Fatal("zero-rate injector planned failures")
		}
	}
	if in.Stats() != (Stats{}) {
		t.Fatalf("zero-rate injector counted: %+v", in.Stats())
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.BufferDropRate = 0.3
	cfg.MigrateFailRate = 0.25
	cfg.HostAllocFailRate = 0.2
	run := func() ([]bool, []int, Stats) {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var drops []bool
		var migs []int
		for i := 0; i < 500; i++ {
			drops = append(drops, in.ShouldDropFault())
			f, _ := in.MigrateFailures()
			migs = append(migs, f)
			in.HostAllocFails()
		}
		return drops, migs, in.Stats()
	}
	d1, m1, s1 := run()
	d2, m2, s2 := run()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(m1, m2) || s1 != s2 {
		t.Fatal("same seed+config produced diverging injection sequences")
	}
}

func TestCategoryStreamsIndependent(t *testing.T) {
	// Drawing from one category must not shift another category's stream.
	cfg := DefaultConfig()
	cfg.BufferDropRate = 0.5
	cfg.MigrateFailRate = 0.5
	a, _ := New(cfg)
	b, _ := New(cfg)
	// a interleaves migrate draws; b does not.
	var da, db []bool
	for i := 0; i < 200; i++ {
		da = append(da, a.ShouldDropFault())
		a.MigrateFailures()
	}
	for i := 0; i < 200; i++ {
		db = append(db, b.ShouldDropFault())
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatal("migrate draws perturbed the buffer-drop stream")
	}
}

func TestMigrateFailuresAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateFailRate = 1.0 // every attempt fails: always fatal
	cfg.MigrateMaxRetries = 3
	in, _ := New(cfg)
	f, fatal := in.MigrateFailures()
	if !fatal {
		t.Fatal("rate-1.0 migration was not fatal")
	}
	if f != 4 { // initial attempt + 3 retries
		t.Fatalf("failures = %d, want 4", f)
	}
	s := in.Stats().Migrate
	if s.Injected != 4 || s.Retried != 3 || s.Unrecovered != 1 || s.Recovered != 0 {
		t.Fatalf("counters = %+v, want {4 3 0 1}", s)
	}
}

func TestMigrateRecoveredCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateFailRate = 0.5
	cfg.MigrateMaxRetries = 20 // virtually never fatal at rate 0.5
	in, _ := New(cfg)
	sawRecovery := false
	for i := 0; i < 200; i++ {
		f, fatal := in.MigrateFailures()
		if fatal {
			t.Fatal("fatal at rate 0.5 with 20 retries (p = 2^-21 per op)")
		}
		if f > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatal("200 ops at rate 0.5 injected nothing")
	}
	s := in.Stats().Migrate
	if s.Recovered == 0 || s.Injected == 0 {
		t.Fatalf("recovery not counted: %+v", s)
	}
	if s.Injected != s.Retried { // every non-fatal failure is retried
		t.Fatalf("injected (%d) != retried (%d) though nothing was fatal", s.Injected, s.Retried)
	}
}

func TestMigrateBackoffDoubles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateBackoff = 10 * sim.Microsecond
	in, _ := New(cfg)
	for i := 0; i < 4; i++ {
		want := cfg.MigrateBackoff << uint(i)
		if got := in.MigrateBackoffFor(i); got != want {
			t.Fatalf("backoff[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestNoteCounters(t *testing.T) {
	in, _ := New(DefaultConfig())
	in.NoteRetried(BufferDrop)
	in.NoteRetried(BufferDrop)
	in.NoteRecovered(BufferDrop)
	in.NoteUnrecovered(HostAlloc)
	s := in.Stats()
	if s.BufferDrop.Retried != 2 || s.BufferDrop.Recovered != 1 {
		t.Fatalf("buffer-drop counters = %+v", s.BufferDrop)
	}
	if s.HostAlloc.Unrecovered != 1 {
		t.Fatalf("host-alloc counters = %+v", s.HostAlloc)
	}
	if s.Of(BufferDrop) != s.BufferDrop || s.Of(Migrate) != s.Migrate {
		t.Fatal("Stats.Of disagrees with fields")
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		BufferDrop:    "buffer-drop",
		Migrate:       "migrate",
		HostAlloc:     "host-alloc",
		Category(200): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
