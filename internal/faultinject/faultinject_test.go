package faultinject

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"guvm/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"drop rate > 1", func(c *Config) { c.BufferDropRate = 1.5 }},
		{"negative drop rate", func(c *Config) { c.BufferDropRate = -0.1 }},
		{"migrate rate > 1", func(c *Config) { c.MigrateFailRate = 2 }},
		{"host rate > 1", func(c *Config) { c.HostAllocFailRate = 1.01 }},
		{"negative drop retries", func(c *Config) { c.BufferDropRetries = -1 }},
		{"negative migrate retries", func(c *Config) { c.MigrateMaxRetries = -1 }},
		{"negative host retries", func(c *Config) { c.HostAllocMaxRetries = -2 }},
		{"negative retry delay", func(c *Config) { c.BufferRetryDelay = -1 }},
		{"negative backoff", func(c *Config) { c.MigrateBackoff = -5 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted bad config", tc.name)
		}
	}
}

func TestEnabled(t *testing.T) {
	if DefaultConfig().Enabled() {
		t.Fatal("default (all-zero-rate) config reports enabled")
	}
	cfg := DefaultConfig()
	cfg.MigrateFailRate = 0.01
	if !cfg.Enabled() {
		t.Fatal("non-zero rate reports disabled")
	}
	var nilInj *Injector
	if nilInj.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.ShouldDropFault() || in.HostAllocFails() {
		t.Fatal("nil injector injected")
	}
	if f, fatal := in.MigrateFailures(); f != 0 || fatal {
		t.Fatal("nil injector planned migration failures")
	}
	if in.BufferRetryBudget() != 0 || in.BufferRetryDelay() != 0 ||
		in.HostAllocRetryBudget() != 0 || in.MigrateBackoffFor(3) != 0 {
		t.Fatal("nil injector returned non-zero budgets")
	}
	in.NoteRetried(BufferDrop)
	in.NoteRecovered(Migrate)
	in.NoteUnrecovered(HostAlloc)
	if in.Stats() != (Stats{}) {
		t.Fatal("nil injector accumulated stats")
	}
}

func TestZeroRateDrawsNothing(t *testing.T) {
	// A zero-rate category must not consume RNG state, so running with an
	// inert injector is bit-identical to running with none.
	in, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if in.ShouldDropFault() || in.HostAllocFails() {
			t.Fatal("zero-rate injector injected")
		}
		if f, _ := in.MigrateFailures(); f != 0 {
			t.Fatal("zero-rate injector planned failures")
		}
	}
	if in.Stats() != (Stats{}) {
		t.Fatalf("zero-rate injector counted: %+v", in.Stats())
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.BufferDropRate = 0.3
	cfg.MigrateFailRate = 0.25
	cfg.HostAllocFailRate = 0.2
	run := func() ([]bool, []int, Stats) {
		in, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var drops []bool
		var migs []int
		for i := 0; i < 500; i++ {
			drops = append(drops, in.ShouldDropFault())
			f, _ := in.MigrateFailures()
			migs = append(migs, f)
			in.HostAllocFails()
		}
		return drops, migs, in.Stats()
	}
	d1, m1, s1 := run()
	d2, m2, s2 := run()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(m1, m2) || s1 != s2 {
		t.Fatal("same seed+config produced diverging injection sequences")
	}
}

func TestCategoryStreamsIndependent(t *testing.T) {
	// Drawing from one category must not shift another category's stream.
	cfg := DefaultConfig()
	cfg.BufferDropRate = 0.5
	cfg.MigrateFailRate = 0.5
	a, _ := New(cfg)
	b, _ := New(cfg)
	// a interleaves migrate draws; b does not.
	var da, db []bool
	for i := 0; i < 200; i++ {
		da = append(da, a.ShouldDropFault())
		a.MigrateFailures()
	}
	for i := 0; i < 200; i++ {
		db = append(db, b.ShouldDropFault())
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatal("migrate draws perturbed the buffer-drop stream")
	}
}

func TestMigrateFailuresAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateFailRate = 1.0 // every attempt fails: always fatal
	cfg.MigrateMaxRetries = 3
	in, _ := New(cfg)
	f, fatal := in.MigrateFailures()
	if !fatal {
		t.Fatal("rate-1.0 migration was not fatal")
	}
	if f != 4 { // initial attempt + 3 retries
		t.Fatalf("failures = %d, want 4", f)
	}
	s := in.Stats().Migrate
	if s.Injected != 4 || s.Retried != 3 || s.Unrecovered != 1 || s.Recovered != 0 {
		t.Fatalf("counters = %+v, want {4 3 0 1}", s)
	}
}

func TestMigrateRecoveredCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateFailRate = 0.5
	cfg.MigrateMaxRetries = 20 // virtually never fatal at rate 0.5
	in, _ := New(cfg)
	sawRecovery := false
	for i := 0; i < 200; i++ {
		f, fatal := in.MigrateFailures()
		if fatal {
			t.Fatal("fatal at rate 0.5 with 20 retries (p = 2^-21 per op)")
		}
		if f > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatal("200 ops at rate 0.5 injected nothing")
	}
	s := in.Stats().Migrate
	if s.Recovered == 0 || s.Injected == 0 {
		t.Fatalf("recovery not counted: %+v", s)
	}
	if s.Injected != s.Retried { // every non-fatal failure is retried
		t.Fatalf("injected (%d) != retried (%d) though nothing was fatal", s.Injected, s.Retried)
	}
}

func TestMigrateBackoffDoubles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrateBackoff = 10 * sim.Microsecond
	in, _ := New(cfg)
	for i := 0; i < 4; i++ {
		want := cfg.MigrateBackoff << uint(i)
		if got := in.MigrateBackoffFor(i); got != want {
			t.Fatalf("backoff[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestNoteCounters(t *testing.T) {
	in, _ := New(DefaultConfig())
	in.NoteRetried(BufferDrop)
	in.NoteRetried(BufferDrop)
	in.NoteRecovered(BufferDrop)
	in.NoteUnrecovered(HostAlloc)
	s := in.Stats()
	if s.BufferDrop.Retried != 2 || s.BufferDrop.Recovered != 1 {
		t.Fatalf("buffer-drop counters = %+v", s.BufferDrop)
	}
	if s.HostAlloc.Unrecovered != 1 {
		t.Fatalf("host-alloc counters = %+v", s.HostAlloc)
	}
	if s.Of(BufferDrop) != s.BufferDrop || s.Of(Migrate) != s.Migrate {
		t.Fatal("Stats.Of disagrees with fields")
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		BufferDrop:    "buffer-drop",
		Migrate:       "migrate",
		HostAlloc:     "host-alloc",
		Category(200): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

// TestInjectorConcurrentCounters hammers the outcome reporters and Stats
// from many goroutines at once. Under -race (scripts/check.sh runs the
// suite that way) this is the regression test for the plain-uint64
// counters the injector used before the sweepd service layer started
// reporting outcomes from worker pools; the final tallies must also be
// exact, since atomic increments cannot lose updates.
func TestInjectorConcurrentCounters(t *testing.T) {
	const (
		goroutines = 15 // divisible by numCategories for exact tallies
		iters      = 500
	)
	in, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := Category(g % int(numCategories))
			for i := 0; i < iters; i++ {
				in.NoteRetried(c)
				in.NoteRecovered(c)
				if i%5 == 0 {
					in.NoteUnrecovered(c)
				}
				if i%7 == 0 {
					_ = in.Stats() // concurrent reader
				}
			}
		}(g)
	}
	wg.Wait()

	s := in.Stats()
	perCat := uint64(goroutines / int(numCategories) * iters)
	for _, c := range []Category{BufferDrop, Migrate, HostAlloc} {
		got := s.Of(c)
		if got.Retried != perCat || got.Recovered != perCat {
			t.Errorf("%s: retried/recovered = %d/%d, want %d/%d",
				c, got.Retried, got.Recovered, perCat, perCat)
		}
		if want := perCat / 5; got.Unrecovered != want {
			t.Errorf("%s: unrecovered = %d, want %d", c, got.Unrecovered, want)
		}
	}
}

// TestServiceInjectorDeterminism checks the service-layer contract: the
// same (seed, point digest, attempt) always draws the same verdict, the
// fail limit guarantees an uninjected attempt for bounded retry budgets,
// and decisions are independent of call order (worker interleaving).
func TestServiceInjectorDeterminism(t *testing.T) {
	cfg := ServiceConfig{
		Seed:           7,
		PointFailRate:  1,
		PointFailLimit: 2,
		SlowPointRate:  1,
		SlowPointDelay: 123 * time.Millisecond,
	}
	a, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewService(cfg)

	points := []uint64{0xdeadbeef, 0x12345678, 0xfeedface}
	// Draw in forward order on a, reverse order on b: verdicts must agree.
	type verdict struct {
		fail  bool
		delay time.Duration
	}
	got := map[[2]uint64]verdict{}
	for _, p := range points {
		for attempt := 0; attempt < 4; attempt++ {
			f, d := a.PointAttempt(p, attempt)
			got[[2]uint64{p, uint64(attempt)}] = verdict{f, d}
			if attempt < cfg.PointFailLimit && !f {
				t.Errorf("point %x attempt %d: not failed despite rate 1 under limit", p, attempt)
			}
			if attempt >= cfg.PointFailLimit && f {
				t.Errorf("point %x attempt %d: failed past PointFailLimit", p, attempt)
			}
			if d != cfg.SlowPointDelay {
				t.Errorf("point %x attempt %d: delay %v, want %v", p, attempt, d, cfg.SlowPointDelay)
			}
		}
	}
	for i := len(points) - 1; i >= 0; i-- {
		for attempt := 3; attempt >= 0; attempt-- {
			f, d := b.PointAttempt(points[i], attempt)
			want := got[[2]uint64{points[i], uint64(attempt)}]
			if f != want.fail || d != want.delay {
				t.Errorf("point %x attempt %d: order-dependent verdict (%v,%v) vs (%v,%v)",
					points[i], attempt, f, d, want.fail, want.delay)
			}
		}
	}

	st := a.Stats()
	if want := uint64(len(points) * cfg.PointFailLimit); st.FailedAttempts != want {
		t.Errorf("FailedAttempts = %d, want %d", st.FailedAttempts, want)
	}
	if want := uint64(len(points) * 4); st.SlowedAttempts != want {
		t.Errorf("SlowedAttempts = %d, want %d", st.SlowedAttempts, want)
	}

	// Nil and inert injectors never inject.
	var nilInj *ServiceInjector
	if f, d := nilInj.PointAttempt(1, 0); f || d != 0 {
		t.Error("nil injector injected")
	}
	inert, _ := NewService(ServiceConfig{Seed: 9})
	if inert.Enabled() {
		t.Error("zero-rate config reports Enabled")
	}
	if f, d := inert.PointAttempt(1, 0); f || d != 0 {
		t.Error("inert injector injected")
	}
}

// TestServiceConfigValidate rejects out-of-range service injection knobs.
func TestServiceConfigValidate(t *testing.T) {
	bad := []ServiceConfig{
		{PointFailRate: -0.1},
		{PointFailRate: 1.5},
		{SlowPointRate: 2},
		{PointFailLimit: -1},
		{SlowPointDelay: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := NewService(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := NewService(ServiceConfig{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
