package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"

	"guvm/internal/sim"
)

// Service-layer injection: where the core Injector perturbs the *model*
// (fault buffers, migrations, host allocations) inside one simulation,
// the ServiceInjector perturbs the *experiment service* around it — the
// sweepd workers that run sweep points. It can make a point attempt fail
// before the simulation starts (a crashed worker) or stall for a fixed
// wall-clock delay (a slow point), which is how the service's retry,
// backoff and timeout envelope is exercised deterministically in tests
// and chaos harnesses.
//
// Decisions are keyed by (point config digest, attempt index) through an
// independent SplitMix64 draw rather than a shared sequential stream, so
// they are reproducible no matter how a worker pool interleaves points —
// the same point at the same attempt always gets the same verdict.
// Service injection never touches the simulation itself: a point that
// eventually runs produces the exact same state digest as one that was
// never injected against, and the chaos harness asserts exactly that.

// Per-decision seed salts (distinct odd constants, like the core
// injector's category salts).
const (
	saltPointFail = 0xd6e8feb86659fd93
	saltPointSlow = 0x8a5cd789635d2dff
)

// ServiceConfig holds the service-layer injection knobs. The zero value
// (all rates zero) injects nothing.
type ServiceConfig struct {
	// Seed derives every decision; decisions also fold in the point's
	// config digest and the attempt index.
	Seed uint64

	// PointFailRate is the probability in [0, 1] that one attempt to run
	// a sweep point fails before the simulation starts, as if the worker
	// had crashed.
	PointFailRate float64
	// PointFailLimit bounds injected failures to attempt indices below
	// it, so a bounded retry budget can still succeed: with limit L, the
	// L-th retry is guaranteed uninjected. 0 means every attempt is
	// eligible.
	PointFailLimit int

	// SlowPointRate is the probability in [0, 1] that one attempt stalls
	// for SlowPointDelay of wall-clock time before the simulation starts
	// (exercising the per-point timeout).
	SlowPointRate float64
	// SlowPointDelay is the stall charged to a slow attempt.
	SlowPointDelay time.Duration
}

// Enabled reports whether any service-layer category can inject.
func (c ServiceConfig) Enabled() bool {
	return c.PointFailRate > 0 || c.SlowPointRate > 0
}

// Validate checks the configuration for values injection cannot run with.
func (c ServiceConfig) Validate() error {
	switch {
	case c.PointFailRate < 0 || c.PointFailRate > 1:
		return fmt.Errorf("faultinject: PointFailRate = %v, need in [0, 1]", c.PointFailRate)
	case c.SlowPointRate < 0 || c.SlowPointRate > 1:
		return fmt.Errorf("faultinject: SlowPointRate = %v, need in [0, 1]", c.SlowPointRate)
	case c.PointFailLimit < 0:
		return fmt.Errorf("faultinject: PointFailLimit = %d, need >= 0", c.PointFailLimit)
	case c.SlowPointDelay < 0:
		return fmt.Errorf("faultinject: SlowPointDelay = %v, need >= 0", c.SlowPointDelay)
	}
	return nil
}

// ServiceStats aggregates service-layer injection outcomes.
type ServiceStats struct {
	// FailedAttempts counts point attempts injected to fail.
	FailedAttempts uint64
	// SlowedAttempts counts point attempts injected to stall.
	SlowedAttempts uint64
}

// ServiceInjector makes deterministic service-layer injection decisions.
// All methods are nil-receiver safe and safe from any goroutine.
type ServiceInjector struct {
	cfg    ServiceConfig
	failed atomic.Uint64
	slowed atomic.Uint64
}

// NewService builds a service-layer injector. The returned injector is
// inert (but non-nil) when no rate is set.
func NewService(cfg ServiceConfig) (*ServiceInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ServiceInjector{cfg: cfg}, nil
}

// Config returns the injector's configuration (zero value on nil).
func (si *ServiceInjector) Config() ServiceConfig {
	if si == nil {
		return ServiceConfig{}
	}
	return si.cfg
}

// Enabled reports whether any category can inject.
func (si *ServiceInjector) Enabled() bool { return si != nil && si.cfg.Enabled() }

// Stats returns a copy of the outcome counters.
func (si *ServiceInjector) Stats() ServiceStats {
	if si == nil {
		return ServiceStats{}
	}
	return ServiceStats{
		FailedAttempts: si.failed.Load(),
		SlowedAttempts: si.slowed.Load(),
	}
}

// PointAttempt draws the injection plan for one sweep-point attempt:
// whether the attempt fails as a crashed worker, and how long it stalls
// first. Keyed by (pointDigest, attempt), so a retried point gets an
// independent — but reproducible — verdict per attempt.
func (si *ServiceInjector) PointAttempt(pointDigest uint64, attempt int) (fail bool, delay time.Duration) {
	if si == nil {
		return false, 0
	}
	if si.cfg.SlowPointRate > 0 && draw(si.cfg.Seed^saltPointSlow, pointDigest, attempt) < si.cfg.SlowPointRate {
		si.slowed.Add(1)
		delay = si.cfg.SlowPointDelay
	}
	if si.cfg.PointFailRate > 0 && (si.cfg.PointFailLimit == 0 || attempt < si.cfg.PointFailLimit) &&
		draw(si.cfg.Seed^saltPointFail, pointDigest, attempt) < si.cfg.PointFailRate {
		si.failed.Add(1)
		fail = true
	}
	return fail, delay
}

// draw maps (seed, pointDigest, attempt) to an independent uniform value
// in [0, 1) through a freshly seeded SplitMix64 stream.
func draw(seed, pointDigest uint64, attempt int) float64 {
	return sim.NewRNG(seed ^ pointDigest ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15).Float64()
}
