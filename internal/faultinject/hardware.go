package faultinject

// hardware.go — the hardware fault domain. Where the core Injector
// perturbs the *software* fault path (buffer drops, migration stalls,
// allocation failures) and the ServiceInjector perturbs the experiment
// service around the simulator, the HardwareInjector degrades the
// *platform itself*: interconnect links lose bandwidth or flap, and a
// device can die mid-run. The UVM stack must then reroute, retry and
// re-home pages — the degraded-mode regimes a real deployment sees.
//
// Determinism contract (the same one ServiceInjector obeys): every
// decision is a stateless hash draw keyed by identity, never a shared
// sequential stream. Link health is drawn per (link, epoch) — sim time
// is cut into fixed-length epochs and each (link, epoch) pair gets an
// independent, reproducible verdict no matter when or how often it is
// queried. Per-transfer flap drops are keyed by (link, op sequence
// number), which the engine's deterministic event order makes stable
// across runs. Zero-rate configurations perform no draws at all.

import (
	"fmt"
	"math"
	"sync/atomic"

	"guvm/internal/sim"
)

// Per-decision seed salts (distinct odd constants, like the core
// injector's category salts).
const (
	saltLinkDegrade = 0xc2b2ae3d27d4eb4f
	saltLinkFlap    = 0x165667b19e3779f9
	saltLinkDrop    = 0x27d4eb2f165667c5
)

// HardwareConfig holds the hardware fault-domain knobs. The zero value
// (all rates zero, no kill scheduled) injects nothing.
type HardwareConfig struct {
	// Seed derives every decision; decisions also fold in the link ID
	// and the epoch (or op sequence) they apply to.
	Seed uint64

	// EpochLength is the virtual-time length of one link-health epoch.
	// Each link redraws its health state at every epoch boundary.
	EpochLength sim.Time

	// LinkDegradeRate is the probability in [0, 1] that a (link, epoch)
	// pair runs at degraded bandwidth.
	LinkDegradeRate float64
	// DegradedBandwidthFactor multiplies the link bandwidth during a
	// degraded epoch (0 < factor <= 1; the paper-testbed default models
	// a throttled x4 lane at 0.25).
	DegradedBandwidthFactor float64

	// LinkFlapRate is the probability in [0, 1] that a (link, epoch)
	// pair is flapping: transfers run at full bandwidth but each
	// operation may be dropped after carrying its bytes.
	LinkFlapRate float64
	// FlapDropRate is the probability in [0, 1] that one transfer
	// operation fails during a flapping epoch.
	FlapDropRate float64

	// LinkRetryLimit bounds the driver's transfer retries after a flap
	// drop; exhausting it is a fatal link failure.
	LinkRetryLimit int
	// LinkRetryBackoff is the virtual-time backoff charged before the
	// first retry; it doubles on every further attempt.
	LinkRetryBackoff sim.Time

	// KillDevice is the index of the device to kill when KillBatch
	// fires (0 in single-device systems).
	KillDevice int
	// KillBatch kills the device after it completes this many fault
	// batches (a 1-based count, so 1 kills after the first batch);
	// zero disables device death.
	KillBatch int
}

// DefaultHardwareConfig returns an inert configuration (all rates zero,
// no kill) with sensible epoch, factor and retry defaults, so callers
// only need to raise the rate of the regime they want to stress.
func DefaultHardwareConfig() HardwareConfig {
	return HardwareConfig{
		Seed:                    1,
		EpochLength:             100 * sim.Microsecond,
		DegradedBandwidthFactor: 0.25,
		FlapDropRate:            0.5,
		LinkRetryLimit:          6,
		LinkRetryBackoff:        5 * sim.Microsecond,
	}
}

// Enabled reports whether any hardware fault can occur.
func (c HardwareConfig) Enabled() bool {
	return c.LinkDegradeRate > 0 || c.LinkFlapRate > 0 || c.KillBatch > 0
}

// Validate checks the configuration for values the domain cannot run
// with.
func (c HardwareConfig) Validate() error {
	check := func(name string, rate float64) error {
		if math.IsNaN(rate) || rate < 0 || rate > 1 {
			return fmt.Errorf("faultinject: %s = %v, need in [0, 1]", name, rate)
		}
		return nil
	}
	if err := check("LinkDegradeRate", c.LinkDegradeRate); err != nil {
		return err
	}
	if err := check("LinkFlapRate", c.LinkFlapRate); err != nil {
		return err
	}
	if err := check("FlapDropRate", c.FlapDropRate); err != nil {
		return err
	}
	switch {
	case (c.LinkDegradeRate > 0 || c.LinkFlapRate > 0) && c.EpochLength <= 0:
		return fmt.Errorf("faultinject: EpochLength = %v, need > 0 with link fault rates set", c.EpochLength)
	case c.LinkDegradeRate > 0 &&
		(math.IsNaN(c.DegradedBandwidthFactor) || c.DegradedBandwidthFactor <= 0 || c.DegradedBandwidthFactor > 1):
		return fmt.Errorf("faultinject: DegradedBandwidthFactor = %v, need in (0, 1]", c.DegradedBandwidthFactor)
	case c.LinkRetryLimit < 0:
		return fmt.Errorf("faultinject: LinkRetryLimit = %d, need >= 0", c.LinkRetryLimit)
	case c.LinkRetryBackoff < 0:
		return fmt.Errorf("faultinject: LinkRetryBackoff = %v, need >= 0", c.LinkRetryBackoff)
	case c.KillDevice < 0:
		return fmt.Errorf("faultinject: KillDevice = %d, need >= 0", c.KillDevice)
	case c.KillBatch < 0:
		return fmt.Errorf("faultinject: KillBatch = %d, need >= 0 (0 disables)", c.KillBatch)
	}
	return nil
}

// HardwareStats aggregates hardware fault-domain outcomes.
type HardwareStats struct {
	// LinkTransfer counts flap-dropped transfer operations and their
	// retry outcomes (the link-transfer category).
	LinkTransfer Counters
	// DevicesKilled counts devices killed by the kill schedule.
	DevicesKilled uint64
}

// HardwareInjector makes deterministic hardware fault decisions. The
// decision methods draw stateless per-identity hashes, so they are safe
// to call in any order and any number of times; the Note* reporters and
// Stats are safe from any goroutine. All methods are nil-receiver safe.
type HardwareInjector struct {
	cfg      HardwareConfig
	transfer counterCell
	killed   atomic.Uint64
}

// NewHardware builds a hardware injector. The returned injector is
// inert (but non-nil) when no rate is set and no kill is scheduled.
func NewHardware(cfg HardwareConfig) (*HardwareInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HardwareInjector{cfg: cfg}, nil
}

// Config returns the injector's configuration (zero value on nil).
func (hw *HardwareInjector) Config() HardwareConfig {
	if hw == nil {
		return HardwareConfig{}
	}
	return hw.cfg
}

// Enabled reports whether any hardware fault can occur.
func (hw *HardwareInjector) Enabled() bool { return hw != nil && hw.cfg.Enabled() }

// Stats returns a copy of the outcome counters.
func (hw *HardwareInjector) Stats() HardwareStats {
	if hw == nil {
		return HardwareStats{}
	}
	return HardwareStats{
		LinkTransfer:  hw.transfer.load(),
		DevicesKilled: hw.killed.Load(),
	}
}

// EpochOf maps a virtual time to its health epoch (0 when epochs are
// not configured).
func (hw *HardwareInjector) EpochOf(now sim.Time) int64 {
	if hw == nil || hw.cfg.EpochLength <= 0 {
		return 0
	}
	return int64(now / hw.cfg.EpochLength)
}

// hwKey folds a link ID and an epoch (or op sequence) into one decision
// key; distinct odd multipliers keep nearby identities decorrelated.
func hwKey(link int, n int64) uint64 {
	return (uint64(link)+1)*0x9e3779b97f4a7c15 ^ (uint64(n)+1)*0xbf58476d1ce4e5b9
}

// LinkEpochDraws returns the health verdicts for one (link, epoch)
// pair: whether the epoch is degraded and whether it is flapping. Both
// can be true; the link model gives flapping precedence. Zero-rate
// categories perform no draw.
func (hw *HardwareInjector) LinkEpochDraws(link int, epoch int64) (degraded, flapping bool) {
	if hw == nil {
		return false, false
	}
	key := hwKey(link, epoch)
	if hw.cfg.LinkDegradeRate > 0 {
		degraded = draw(hw.cfg.Seed^saltLinkDegrade, key, 0) < hw.cfg.LinkDegradeRate
	}
	if hw.cfg.LinkFlapRate > 0 {
		flapping = draw(hw.cfg.Seed^saltLinkFlap, key, 0) < hw.cfg.LinkFlapRate
	}
	return degraded, flapping
}

// TransferDrops decides whether one transfer operation on a flapping
// link fails, counting an injection when it does. Keyed by the link's
// per-operation sequence number, which deterministic event ordering
// makes reproducible.
func (hw *HardwareInjector) TransferDrops(link int, opSeq uint64) bool {
	if hw == nil || hw.cfg.FlapDropRate <= 0 {
		return false
	}
	if draw(hw.cfg.Seed^saltLinkDrop, hwKey(link, int64(opSeq)), 0) < hw.cfg.FlapDropRate {
		hw.transfer.injected.Add(1)
		return true
	}
	return false
}

// DegradedFactor returns the bandwidth multiplier for degraded epochs.
func (hw *HardwareInjector) DegradedFactor() float64 {
	if hw == nil || hw.cfg.DegradedBandwidthFactor <= 0 {
		return 1
	}
	return hw.cfg.DegradedBandwidthFactor
}

// RetryLimit returns the transfer retry budget after a flap drop.
func (hw *HardwareInjector) RetryLimit() int {
	if hw == nil {
		return 0
	}
	return hw.cfg.LinkRetryLimit
}

// RetryBackoffFor returns the exponential virtual-time backoff charged
// before retry i (0-based): LinkRetryBackoff << i.
func (hw *HardwareInjector) RetryBackoffFor(i int) sim.Time {
	if hw == nil {
		return 0
	}
	return hw.cfg.LinkRetryBackoff << uint(i)
}

// NoteTransferRetried counts one transfer retry after a flap drop.
// Safe from any goroutine.
func (hw *HardwareInjector) NoteTransferRetried() {
	if hw != nil {
		hw.transfer.retried.Add(1)
	}
}

// NoteTransferRecovered counts one transfer that succeeded after at
// least one flap drop. Safe from any goroutine.
func (hw *HardwareInjector) NoteTransferRecovered() {
	if hw != nil {
		hw.transfer.recovered.Add(1)
	}
}

// NoteTransferUnrecovered counts one transfer that exhausted its retry
// budget. Safe from any goroutine.
func (hw *HardwareInjector) NoteTransferUnrecovered() {
	if hw != nil {
		hw.transfer.unrecovered.Add(1)
	}
}

// NoteDeviceKilled counts one device death. Safe from any goroutine.
func (hw *HardwareInjector) NoteDeviceKilled() {
	if hw != nil {
		hw.killed.Add(1)
	}
}

// EpochHealthCounts replays the health schedule of one link up to (and
// including) the epoch containing now, returning how many epochs were
// healthy, degraded, and flapping. The draws are stateless, so this is
// a pure function of (seed, link, now) — observability gauges call it
// at sample points without perturbing any stream.
func (hw *HardwareInjector) EpochHealthCounts(link int, now sim.Time) (healthy, degraded, flapping int64) {
	if hw == nil || hw.cfg.EpochLength <= 0 {
		return 0, 0, 0
	}
	last := hw.EpochOf(now)
	for e := int64(0); e <= last; e++ {
		deg, flap := hw.LinkEpochDraws(link, e)
		switch {
		case flap:
			flapping++
		case deg:
			degraded++
		default:
			healthy++
		}
	}
	return healthy, degraded, flapping
}
