package sweepd

import (
	"fmt"
	"strings"

	"guvm"
	"guvm/internal/digest"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// JobSpec is the wire-format sweep request: one workload crossed with
// lists of driver knobs. Empty lists fall back to single-point defaults,
// so the minimal useful job is just {"workload":"stream"}.
type JobSpec struct {
	Workload string `json:"workload"`
	MB       uint64 `json:"mb,omitempty"`
	N        int    `json:"n,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`

	Batches  []int    `json:"batches,omitempty"`
	CapsMB   []int    `json:"caps_mb,omitempty"`
	Evict    []string `json:"evict,omitempty"`
	Prefetch []string `json:"prefetch,omitempty"`
	Sizing   []string `json:"batch_sizing,omitempty"`
	Arch     []string `json:"arch,omitempty"`

	// DeadlineMS bounds the whole job in wall-clock milliseconds;
	// 0 uses the service default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// defaultPolicies supplies the per-dimension values a JobSpec omits;
// empty fields fall back to the historical defaults (lru, tree, fixed,
// host-driven). Set once at daemon startup, before jobs are admitted.
var defaultPolicies uvm.PolicySelection

// SetDefaultPolicies installs daemon-wide default policies applied to
// every JobSpec dimension the client leaves empty, mirroring
// experiments.SetPolicies. Names are validated against the registry so
// the daemon rejects a bad default — with the valid options — at
// startup, never at job admission.
func SetDefaultPolicies(p uvm.PolicySelection) error {
	var probe uvm.Config
	if err := p.Apply(&probe); err != nil {
		return err
	}
	defaultPolicies = p
	return nil
}

// orDefault picks the first non-empty value.
func orDefault(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

func (js *JobSpec) normalize() {
	if js.MB == 0 {
		js.MB = 64
	}
	if js.N == 0 {
		js.N = 3072
	}
	if js.Seed == 0 {
		js.Seed = 11
	}
	if len(js.Batches) == 0 {
		js.Batches = []int{256}
	}
	if len(js.CapsMB) == 0 {
		js.CapsMB = []int{64}
	}
	if len(js.Evict) == 0 {
		js.Evict = []string{orDefault(defaultPolicies.Eviction, "lru")}
	}
	if len(js.Prefetch) == 0 {
		js.Prefetch = []string{orDefault(defaultPolicies.Prefetch, "tree")}
	}
	if len(js.Sizing) == 0 {
		js.Sizing = []string{orDefault(defaultPolicies.BatchSizing, "fixed")}
	}
	if len(js.Arch) == 0 {
		js.Arch = []string{orDefault(defaultPolicies.Architecture, "host-driven")}
	}
}

// Points validates the spec and expands its grid in deterministic order
// (batches x caps x prefetch x evict x sizing, matching uvmsweep). Every
// policy name is checked against the registry and the workload against
// the catalog before any simulation runs, so a bad spec is rejected at
// admission with a client error, never mid-sweep.
func (js JobSpec) Points() ([]PointConfig, error) {
	js.normalize()
	if _, err := workloads.ByName(js.Workload, js.MB, js.N, js.Seed); err != nil {
		return nil, err
	}
	for _, bs := range js.Batches {
		if bs <= 0 {
			return nil, fmt.Errorf("sweepd: batch size %d out of range", bs)
		}
	}
	for _, c := range js.CapsMB {
		if c <= 0 {
			return nil, fmt.Errorf("sweepd: capacity %d MiB out of range", c)
		}
	}
	var pts []PointConfig
	for _, bs := range js.Batches {
		for _, capMB := range js.CapsMB {
			for _, pf := range js.Prefetch {
				// Legacy aliases (on/off), as in uvmsweep.
				pfName := uvm.NormalizePrefetch(pf)
				for _, ev := range js.Evict {
					for _, sz := range js.Sizing {
						for _, ar := range js.Arch {
							sel := uvm.PolicySelection{
								Eviction:     strings.TrimSpace(ev),
								Prefetch:     pfName,
								BatchSizing:  strings.TrimSpace(sz),
								Architecture: strings.TrimSpace(ar),
							}
							var probe uvm.Config
							if err := sel.Apply(&probe); err != nil {
								return nil, err
							}
							pts = append(pts, PointConfig{
								Workload:  js.Workload,
								MB:        js.MB,
								N:         js.N,
								Seed:      js.Seed,
								BatchSize: bs,
								CapMB:     capMB,
								Evict:     sel.Eviction,
								Prefetch:  sel.Prefetch,
								Sizing:    sel.BatchSizing,
								Arch:      sel.Architecture,
							})
						}
					}
				}
			}
		}
	}
	return pts, nil
}

// PointConfig is one fully-resolved grid point — the unit of caching.
// Two specs that expand to the same point share one digest and therefore
// one cached result.
type PointConfig struct {
	Workload  string `json:"workload"`
	MB        uint64 `json:"mb"`
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
	BatchSize int    `json:"batch_size"`
	CapMB     int    `json:"cap_mb"`
	Evict     string `json:"evict"`
	Prefetch  string `json:"prefetch"`
	Sizing    string `json:"batch_sizing"`
	Arch      string `json:"arch"`
}

// digestVersion is folded into every config digest. Bump it whenever the
// simulation or the artifact schema changes meaning, so stale cached
// results from an older binary are never served as current.
// v2: PointConfig gained the architecture dimension.
const digestVersion = 2

// Digest is the content address of this point: FNV-1a over the version
// tag and every field, in declaration order.
func (p PointConfig) Digest() uint64 {
	return digest.New().
		Int(digestVersion).
		String(p.Workload).
		Uint64(p.MB).
		Int(p.N).
		Uint64(p.Seed).
		Int(p.BatchSize).
		Int(p.CapMB).
		String(p.Evict).
		String(p.Prefetch).
		String(p.Sizing).
		String(p.Arch).
		Sum()
}

// PointRow is the per-point result streamed to clients and persisted as
// the cached artifact. Digests are hex strings because JSON numbers lose
// precision above 2^53.
type PointRow struct {
	ConfigDigest string      `json:"config_digest"`
	StateDigest  string      `json:"state_digest,omitempty"`
	Point        PointConfig `json:"point"`

	KernelMS        float64 `json:"kernel_ms"`
	BatchMS         float64 `json:"batch_ms"`
	Batches         int     `json:"batches"`
	Faults          int     `json:"faults"`
	Evictions       int     `json:"evictions"`
	MigratedMB      float64 `json:"migrated_mb"`
	PrefetchedPages int     `json:"prefetched_pages"`

	// Cached marks a row served from the result store rather than a fresh
	// simulation. Stripped before persisting, so artifacts are identical
	// however they were produced.
	Cached bool `json:"cached,omitempty"`
	// Attempts counts simulation attempts (1 = first try succeeded).
	Attempts int `json:"attempts,omitempty"`
	// Error is set instead of a result when every attempt failed.
	Error string `json:"error,omitempty"`
}

// SimulatePoint runs one grid point to completion and returns its result
// row plus the simulator's final state digest. The invariant auditor is
// always on so the digest exists; it is the bit-identity witness cached
// results are compared against.
func SimulatePoint(pc PointConfig) (PointRow, uint64, error) {
	mk, err := workloads.ByName(pc.Workload, pc.MB, pc.N, pc.Seed)
	if err != nil {
		return PointRow{}, 0, err
	}
	cfg := guvm.DefaultConfig()
	cfg.Driver.BatchSize = pc.BatchSize
	cfg.Driver.GPUMemBytes = uint64(pc.CapMB) << 20
	cfg.Policies = uvm.PolicySelection{
		Eviction:     pc.Evict,
		Prefetch:     pc.Prefetch,
		BatchSizing:  pc.Sizing,
		Architecture: pc.Arch,
	}
	cfg.Audit.Enabled = true
	cfg.Audit.Interval = 8
	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		return PointRow{}, 0, err
	}
	res, err := s.Run(mk())
	if err != nil {
		return PointRow{}, 0, fmt.Errorf("sweepd: %s bs=%d cap=%d: %w", pc.Workload, pc.BatchSize, pc.CapMB, err)
	}
	state := res.Audit.FinalDigest
	row := PointRow{
		ConfigDigest:    fmt.Sprintf("%016x", pc.Digest()),
		StateDigest:     fmt.Sprintf("%016x", state),
		Point:           pc,
		KernelMS:        res.KernelTime.Millis(),
		BatchMS:         res.BatchTime().Millis(),
		Batches:         len(res.Batches),
		Faults:          res.DriverStats.TotalFaults,
		Evictions:       res.DriverStats.Evictions,
		MigratedMB:      float64(res.BytesMigrated()) / (1 << 20),
		PrefetchedPages: res.DriverStats.PrefetchedPages,
	}
	return row, state, nil
}
