// Package sweepd is a long-running, crash-safe sweep service: clients
// submit sweep-grid jobs over HTTP, points fan out across the
// experiments worker pool, and per-point results stream back as they
// complete. Around that core sits a robustness envelope:
//
//   - per-job wall-clock deadlines and per-point timeouts, with bounded
//     retry under deterministic exponential backoff + jitter;
//   - admission control and load shedding — a bounded job queue and a
//     point-backlog circuit breaker, surfaced as typed errors that the
//     HTTP layer maps to 429/503;
//   - a crash-safe content-addressed result store (see the store
//     subpackage): every finished point is journaled before the job
//     advances, so a SIGKILL loses at most in-flight points, and a
//     restarted service replays the journal, resumes incomplete jobs,
//     and serves already-computed points from cache bit-identically;
//   - graceful drain on SIGTERM: in-flight points finish, queued work
//     is journaled for the next incarnation, nothing new is admitted.
package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"guvm/internal/experiments"
	"guvm/internal/faultinject"
	"guvm/internal/obs"
	"guvm/internal/sim"
	"guvm/internal/sweepd/store"
)

// Config tunes the service's robustness envelope. The zero value of any
// field falls back to the DefaultConfig value.
type Config struct {
	// Workers is the sweep-point worker pool width.
	Workers int
	// QueueCap bounds jobs admitted but not yet running; Submit returns
	// ErrQueueFull beyond it.
	QueueCap int
	// MaxPointsPerJob bounds one job's expanded grid.
	MaxPointsPerJob int
	// BreakerHigh/BreakerLow are the point-backlog watermarks: the
	// circuit breaker opens at >= BreakerHigh outstanding points and
	// closes again only once the backlog drains to <= BreakerLow.
	BreakerHigh int
	BreakerLow  int
	// JobDeadline bounds a job's wall-clock run unless the spec carries
	// its own deadline_ms.
	JobDeadline time.Duration
	// PointTimeout bounds one simulation attempt; a timed-out attempt is
	// abandoned and retried.
	PointTimeout time.Duration
	// PointRetries is the number of retries after the first attempt.
	PointRetries int
	// RetryBase/RetryMax shape the exponential backoff between attempts.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed keys the deterministic backoff jitter.
	Seed uint64
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Workers:         runtime.GOMAXPROCS(0),
		QueueCap:        8,
		MaxPointsPerJob: 4096,
		BreakerHigh:     1024,
		BreakerLow:      256,
		JobDeadline:     10 * time.Minute,
		PointTimeout:    time.Minute,
		PointRetries:    3,
		RetryBase:       50 * time.Millisecond,
		RetryMax:        2 * time.Second,
		Seed:            1,
	}
}

func (c *Config) sanitize() {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.MaxPointsPerJob <= 0 {
		c.MaxPointsPerJob = d.MaxPointsPerJob
	}
	if c.BreakerHigh <= 0 {
		c.BreakerHigh = d.BreakerHigh
	}
	if c.BreakerLow <= 0 || c.BreakerLow >= c.BreakerHigh {
		c.BreakerLow = c.BreakerHigh / 4
	}
	if c.JobDeadline <= 0 {
		c.JobDeadline = d.JobDeadline
	}
	if c.PointTimeout <= 0 {
		c.PointTimeout = d.PointTimeout
	}
	if c.PointRetries < 0 {
		c.PointRetries = d.PointRetries
	}
	if c.RetryBase <= 0 {
		c.RetryBase = d.RetryBase
	}
	if c.RetryMax < c.RetryBase {
		c.RetryMax = d.RetryMax
	}
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed"
	JobInterrupted JobState = "interrupted" // drained mid-run; resumable after restart
)

// Job is the service-internal job record. All fields are guarded by
// Service.mu after construction.
type Job struct {
	id        string
	spec      JobSpec
	points    []PointConfig
	state     JobState
	errMsg    string
	rows      []PointRow
	cached    int
	failed    int
	recovered bool
	created   time.Time
	started   time.Time
	finished  time.Time
	// changed is closed and replaced on every row append and state
	// change; result streamers wait on it instead of polling.
	changed chan struct{}
}

// notifyLocked wakes every streamer waiting for this job to advance.
// Callers hold Service.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// JobView is the client-facing job snapshot.
type JobView struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Points    int      `json:"points"`
	Completed int      `json:"completed"`
	Cached    int      `json:"cached"`
	Failed    int      `json:"failed"`
	Recovered bool     `json:"recovered,omitempty"`
	Error     string   `json:"error,omitempty"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

// Health is the load-shedding state exposed by /sweep/healthz.
type Health struct {
	Draining      bool `json:"draining"`
	BreakerOpen   bool `json:"breaker_open"`
	QueueDepth    int  `json:"queue_depth"`
	BacklogPoints int  `json:"backlog_points"`
	StorePoints   int  `json:"store_points"`
}

// Service is the sweep daemon core. One runner goroutine executes jobs
// in admission order; each job's points fan out on the experiments
// worker pool and collect in grid order, so a job's result stream is
// deterministic at any worker count.
type Service struct {
	cfg Config
	st  *store.Store
	o   *obs.Observer
	inj *faultinject.ServiceInjector

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wake       chan struct{}
	runnerWG   sync.WaitGroup
	// bg tracks attempt goroutines, including ones abandoned by a point
	// timeout; Drain waits for them (bounded by its context) so no
	// simulation outlives the drain unnoticed.
	bg sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job
	pending  []*Job
	backlog  int // points admitted but not yet collected
	breaker  bool
	draining bool
	started  bool
	nextID   int

	mJobsAccepted  *obs.Metric
	mJobsShed      *obs.Metric
	mJobsDone      *obs.Metric
	mJobsFailed    *obs.Metric
	mPointsSim     *obs.Metric
	mPointsCached  *obs.Metric
	mPointsFailed  *obs.Metric
	mRetries       *obs.Metric
	mBreakerOpened *obs.Metric
	mBreakerClosed *obs.Metric
	hQueueWait     *obs.Metric
	hPointMS       *obs.Metric
	hJobMS         *obs.Metric

	// Optional wall-clock tracer (SetTracer): job spans on lane 1, point
	// spans on lane 2. Written only on the runner goroutine.
	tr *obs.Tracer
	t0 time.Time
	// samples counts publish points for the observer's optional sampler
	// (runner goroutine only).
	samples int
}

// New wires a service over an opened result store. o hosts the service's
// metrics and has its status function replaced with the job table; pass
// nil to use a private observer (tests). inj may be nil (no injection).
// Call Resume with the store's recovery report, then Start.
func New(st *store.Store, o *obs.Observer, inj *faultinject.ServiceInjector, cfg Config) *Service {
	cfg.sanitize()
	if o == nil {
		o = obs.New(obs.Config{SampleInterval: 1})
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		st:         st,
		o:          o,
		inj:        inj,
		rootCtx:    ctx,
		rootCancel: cancel,
		wake:       make(chan struct{}, 1),
		jobs:       make(map[string]*Job),
		t0:         time.Now(),
	}
	r := o.Registry
	s.mJobsAccepted = r.Counter("sweepd_jobs_accepted_total", "Jobs admitted to the queue")
	s.mJobsShed = r.Counter("sweepd_jobs_shed_total", "Jobs rejected by queue, breaker, or drain")
	s.mJobsDone = r.Counter("sweepd_jobs_completed_total", "Jobs finished with every point succeeded")
	s.mJobsFailed = r.Counter("sweepd_jobs_failed_total", "Jobs finished with failed points or a blown deadline")
	s.mPointsSim = r.Counter("sweepd_points_simulated_total", "Points answered by fresh simulation")
	s.mPointsCached = r.Counter("sweepd_points_cached_total", "Points answered from the result store")
	s.mPointsFailed = r.Counter("sweepd_points_failed_total", "Points that exhausted every retry")
	s.mRetries = r.Counter("sweepd_point_retries_total", "Point attempts retried after failure or timeout")
	s.mBreakerOpened = r.Counter("sweepd_breaker_opened_total", "Circuit-breaker open transitions")
	s.mBreakerClosed = r.Counter("sweepd_breaker_closed_total", "Circuit-breaker close transitions")
	r.Func("sweepd_queue_depth", "Jobs admitted but not yet running", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.pending))
	})
	r.Func("sweepd_backlog_points", "Points admitted but not yet collected", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.backlog)
	})
	r.Func("sweepd_breaker_open", "1 while the backlog circuit breaker is shedding", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.breaker {
			return 1
		}
		return 0
	})
	r.Func("sweepd_draining", "1 once drain has begun", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return 1
		}
		return 0
	})
	s.hQueueWait = r.Histogram("sweepd_job_queue_wait_ms", "Queue wait before a job starts (ms)",
		[]float64{1, 10, 100, 1000, 10000, 60000})
	s.hPointMS = r.Histogram("sweepd_point_ms", "Per-point completion latency including retries (ms)",
		[]float64{1, 5, 25, 100, 500, 2500, 10000})
	s.hJobMS = r.Histogram("sweepd_job_ms", "Job run time from start to terminal state (ms)",
		[]float64{10, 100, 1000, 10000, 60000, 300000})
	o.SetStatusFunc(func() any {
		return map[string]any{
			"health": s.Health(),
			"jobs":   s.Jobs(),
		}
	})
	return s
}

// Start launches the runner goroutine. Safe to call once; later calls
// are no-ops.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	s.runnerWG.Add(1)
	go s.run()
}

// Submit validates and admits one job, journaling it before
// acknowledging so an accepted job survives a crash. Shedding returns
// ErrDraining, ErrQueueFull, or ErrBreakerOpen; spec problems return a
// plain validation error.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	pts, err := spec.Points()
	if err != nil {
		return JobView{}, err
	}
	if len(pts) > s.cfg.MaxPointsPerJob {
		return JobView{}, fmt.Errorf("%w: %d > %d", ErrTooManyPoints, len(pts), s.cfg.MaxPointsPerJob)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return JobView{}, err
	}

	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.mJobsShed.Inc()
		return JobView{}, ErrDraining
	case len(s.pending) >= s.cfg.QueueCap:
		s.mu.Unlock()
		s.mJobsShed.Inc()
		return JobView{}, fmt.Errorf("%w (%d queued)", ErrQueueFull, s.cfg.QueueCap)
	case s.breaker:
		s.mu.Unlock()
		s.mJobsShed.Inc()
		return JobView{}, fmt.Errorf("%w (%d points outstanding)", ErrBreakerOpen, s.backlog)
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	if err := s.st.BeginJob(id, raw); err != nil {
		s.mu.Unlock()
		return JobView{}, fmt.Errorf("sweepd: journal admission: %w", err)
	}
	j := &Job{
		id:      id,
		spec:    spec,
		points:  pts,
		state:   JobQueued,
		created: time.Now(),
		changed: make(chan struct{}),
	}
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.pending = append(s.pending, j)
	s.backlog += len(pts)
	s.updateBreakerLocked()
	v := s.viewLocked(j)
	s.mu.Unlock()

	s.mJobsAccepted.Inc()
	s.wakeRunner()
	return v, nil
}

// Resume re-enqueues jobs recovered from the journal after a crash,
// keeping their original IDs. Recovered jobs bypass admission control —
// they were admitted in a previous life — and are not re-journaled.
// Points already in the store complete as cache hits, so a resumed job
// redoes only the work the crash actually lost. Returns the number of
// jobs resumed plus per-record errors for unparseable specs.
func (s *Service) Resume(recs []store.JobRecord) (int, []error) {
	var errs []error
	n := 0
	for _, rec := range recs {
		var spec JobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			errs = append(errs, fmt.Errorf("sweepd: resume %s: %w", rec.ID, err))
			continue
		}
		pts, err := spec.Points()
		if err != nil {
			errs = append(errs, fmt.Errorf("sweepd: resume %s: %w", rec.ID, err))
			continue
		}
		s.mu.Lock()
		if _, dup := s.jobs[rec.ID]; dup {
			s.mu.Unlock()
			continue
		}
		// Keep fresh IDs past every recovered one.
		if num, ok := strings.CutPrefix(rec.ID, "job-"); ok {
			if v, err := strconv.Atoi(num); err == nil && v > s.nextID {
				s.nextID = v
			}
		}
		j := &Job{
			id:        rec.ID,
			spec:      spec,
			points:    pts,
			state:     JobQueued,
			recovered: true,
			created:   time.Now(),
			changed:   make(chan struct{}),
		}
		s.jobs[rec.ID] = j
		s.order = append(s.order, j)
		s.pending = append(s.pending, j)
		s.backlog += len(pts)
		s.updateBreakerLocked()
		s.mu.Unlock()
		n++
	}
	s.wakeRunner()
	return n, errs
}

// Drain stops admitting work, cancels point scheduling, waits (bounded
// by ctx) for in-flight attempts to finish, and marks unfinished jobs
// interrupted. The journal already holds every unfinished job, so the
// next incarnation resumes them. Safe to call more than once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.rootCancel()

	done := make(chan struct{})
	go func() {
		s.runnerWG.Wait()
		s.bg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("sweepd: drain timed out: %w", ctx.Err())
	}

	s.mu.Lock()
	for _, j := range s.order {
		if j.state == JobQueued || j.state == JobRunning {
			j.state = JobInterrupted
			if j.errMsg == "" {
				j.errMsg = "interrupted by drain; resumable from the journal"
			}
			j.notifyLocked()
		}
	}
	s.pending = nil
	s.mu.Unlock()
	return err
}

// Job returns a snapshot of one job.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	return s.viewLocked(j), nil
}

// Jobs returns snapshots of every job in admission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, s.viewLocked(j))
	}
	return out
}

// Health reports the shedding state.
func (s *Service) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Health{
		Draining:      s.draining,
		BreakerOpen:   s.breaker,
		QueueDepth:    len(s.pending),
		BacklogPoints: s.backlog,
		StorePoints:   s.st.Len(),
	}
}

func (s *Service) viewLocked(j *Job) JobView {
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Points:    len(j.points),
		Completed: len(j.rows),
		Cached:    j.cached,
		Failed:    j.failed,
		Recovered: j.recovered,
		Error:     j.errMsg,
	}
	switch {
	case !j.finished.IsZero():
		v.ElapsedMS = j.finished.Sub(j.started).Seconds() * 1000
	case !j.started.IsZero():
		v.ElapsedMS = time.Since(j.started).Seconds() * 1000
	}
	return v
}

// rowsSince returns j's rows from index from on, the channel that will
// close on the next change, and whether the job is terminal — one lock
// acquisition, so streamers never miss an append between read and wait.
func (s *Service) rowsSince(j *Job, from int) ([]PointRow, chan struct{}, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rows []PointRow
	if from < len(j.rows) {
		rows = append(rows, j.rows[from:]...)
	}
	terminal := j.state == JobDone || j.state == JobFailed || j.state == JobInterrupted
	return rows, j.changed, terminal
}

func (s *Service) lookupJob(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Service) wakeRunner() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// updateBreakerLocked moves the circuit breaker across its hysteresis
// band: open at >= BreakerHigh outstanding points, closed again only at
// <= BreakerLow, so admission does not flap around one threshold. Each
// transition bumps its counter, so a scrape distinguishes "opened once
// under a burst" from "flapping" even when samples straddle the episode.
func (s *Service) updateBreakerLocked() {
	if !s.breaker && s.backlog >= s.cfg.BreakerHigh {
		s.breaker = true
		s.mBreakerOpened.Inc()
	} else if s.breaker && s.backlog <= s.cfg.BreakerLow {
		s.breaker = false
		s.mBreakerClosed.Inc()
	}
}

// NoteRecovery exposes one restart's journal-recovery outcome as gauges
// (recovered points, torn bytes dropped, incomplete jobs found, jobs
// re-enqueued), so a scrape can tell a clean start from a crash
// recovery. Call once, before Start.
func (s *Service) NoteRecovery(rec *store.Recovery, resumed int) {
	r := s.o.Registry
	r.Gauge("sweepd_wal_recovered_points", "Cached points replayed from the journal at startup").
		Set(float64(rec.Points))
	r.Gauge("sweepd_wal_truncated_bytes", "Torn journal bytes dropped by recovery at startup").
		Set(float64(rec.TruncatedBytes))
	r.Gauge("sweepd_wal_incomplete_jobs", "Unfinished jobs found in the journal at startup").
		Set(float64(len(rec.IncompleteJobs)))
	r.Gauge("sweepd_jobs_resumed", "Incomplete jobs re-enqueued at startup").
		Set(float64(resumed))
}

// SetTracer attaches a wall-clock tracer: one span per job on lane 1 and
// one per collected point on lane 2, timed relative to t0. Must be
// called before Start — the runner goroutine reads the tracer unlocked.
func (s *Service) SetTracer(tr *obs.Tracer, t0 time.Time) {
	s.tr = tr
	s.t0 = t0
	if tr != nil {
		tr.Lanes = map[int]string{1: "jobs", 2: "points"}
	}
}

// publish refreshes the /metrics and /status snapshots and, when the
// observer carries a sampler, appends to the metric time series on the
// sampler's interval (the series' time axis is wall-clock ns since
// service start). Only the runner goroutine (and Start, before the
// runner exists) calls it: histograms and the sampler are not safe to
// read while another goroutine observes, so the service keeps the
// registry's single-publisher discipline.
func (s *Service) publish() {
	s.o.Publish()
	if sm := s.o.Sampler; sm != nil {
		if s.samples%sm.Interval == 0 {
			sm.Sample(sim.Time(time.Since(s.t0).Nanoseconds()), s.samples)
		}
		s.samples++
	}
}

// run is the runner goroutine: jobs execute one at a time in admission
// order (points within a job already saturate the worker pool).
func (s *Service) run() {
	defer s.runnerWG.Done()
	s.publish()
	for {
		s.mu.Lock()
		var j *Job
		if len(s.pending) > 0 {
			j = s.pending[0]
			s.pending = s.pending[1:]
		}
		s.mu.Unlock()
		if j == nil {
			select {
			case <-s.wake:
				continue
			case <-s.rootCtx.Done():
				return
			}
		}
		if s.rootCtx.Err() != nil {
			// Put it back so Drain marks it interrupted.
			s.mu.Lock()
			s.pending = append([]*Job{j}, s.pending...)
			s.mu.Unlock()
			return
		}
		s.runJob(j)
	}
}

func (s *Service) runJob(j *Job) {
	deadline := s.cfg.JobDeadline
	if j.spec.DeadlineMS > 0 {
		deadline = time.Duration(j.spec.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.rootCtx, deadline)
	defer cancel()

	now := time.Now()
	s.mu.Lock()
	j.state = JobRunning
	j.started = now
	j.notifyLocked()
	s.mu.Unlock()
	s.hQueueWait.Observe(now.Sub(j.created).Seconds() * 1000)
	s.publish()

	err := experiments.ForEachOrdered(ctx, len(j.points), s.cfg.Workers, func(i int) pointOutcome {
		return s.runPoint(ctx, j.points[i])
	}, func(i int, o pointOutcome) {
		row := o.row
		if o.err != nil {
			row = PointRow{
				ConfigDigest: fmt.Sprintf("%016x", j.points[i].Digest()),
				Point:        j.points[i],
				Attempts:     o.attempts,
				Error:        o.err.Error(),
			}
		}
		s.mu.Lock()
		s.backlog--
		s.updateBreakerLocked()
		j.rows = append(j.rows, row)
		switch {
		case o.err != nil:
			j.failed++
		case row.Cached:
			j.cached++
		}
		j.notifyLocked()
		s.mu.Unlock()
		switch {
		case o.err != nil:
			s.mPointsFailed.Inc()
		case row.Cached:
			s.mPointsCached.Inc()
		default:
			s.mPointsSim.Inc()
		}
		s.hPointMS.Observe(o.elapsed.Seconds() * 1000)
		if s.tr != nil {
			end := sim.Time(time.Since(s.t0).Nanoseconds())
			start := end - sim.Time(o.elapsed.Nanoseconds())
			if start < 0 {
				start = 0
			}
			s.tr.Add(2, "point", fmt.Sprintf("%s #%d", j.id, i), start, end-start, i)
		}
		s.publish()
	})

	fin := time.Now()
	s.mu.Lock()
	j.finished = fin
	// Points never scheduled still leave the backlog now.
	s.backlog -= len(j.points) - len(j.rows)
	s.updateBreakerLocked()
	switch {
	case err == nil && j.failed == 0:
		j.state = JobDone
	case s.rootCtx.Err() != nil:
		j.state = JobInterrupted
		j.errMsg = fmt.Sprintf("interrupted by drain after %d of %d points; resumable from the journal",
			len(j.rows), len(j.points))
	case ctx.Err() != nil:
		// The job deadline fired — whether it stopped the feeder (err)
		// or just killed in-flight attempts, the verdict is the same.
		j.state = JobFailed
		j.errMsg = fmt.Sprintf("job deadline (%v) exceeded after %d of %d points", deadline, len(j.rows), len(j.points))
	default:
		j.state = JobFailed
		j.errMsg = fmt.Sprintf("%d of %d points failed", j.failed, len(j.points))
	}
	state := j.state
	j.notifyLocked()
	s.mu.Unlock()

	switch state {
	case JobDone:
		// Journal completion last: a crash between the final point commit
		// and this record re-runs the job, which replays entirely from
		// cache — slower than skipping, but never wrong. Failed jobs stay
		// unfinished in the journal on purpose, so a restart retries them.
		if ferr := s.st.FinishJob(j.id); ferr != nil {
			s.mu.Lock()
			j.errMsg = "completed, but journaling the finish failed: " + ferr.Error()
			s.mu.Unlock()
		}
		s.mJobsDone.Inc()
	case JobFailed:
		s.mJobsFailed.Inc()
	}
	s.hJobMS.Observe(fin.Sub(j.started).Seconds() * 1000)
	if s.tr != nil {
		start := sim.Time(j.started.Sub(s.t0).Nanoseconds())
		if start < 0 {
			start = 0
		}
		s.tr.Add(1, "job", fmt.Sprintf("%s (%s)", j.id, state), start,
			sim.Time(fin.Sub(j.started).Nanoseconds()), len(j.rows))
	}
	s.publish()
}

type pointOutcome struct {
	row      PointRow
	err      error
	attempts int
	elapsed  time.Duration
}

// runPoint resolves one grid point: cache lookup first, then up to
// 1+PointRetries simulation attempts under the per-point timeout, with
// deterministic backoff between attempts. A success is committed to the
// store before it is reported, so a reported row is always durable.
func (s *Service) runPoint(ctx context.Context, pc PointConfig) pointOutcome {
	start := time.Now()
	dg := pc.Digest()
	if _, art, ok := s.st.Lookup(dg); ok {
		var row PointRow
		if err := json.Unmarshal(art, &row); err == nil && row.Error == "" {
			row.Cached = true
			return pointOutcome{row: row, elapsed: time.Since(start)}
		}
		// Unreadable artifact: degrade to a miss and re-simulate.
	}
	var lastErr error
	for attempt := 0; attempt <= s.cfg.PointRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return pointOutcome{err: err, attempts: attempt, elapsed: time.Since(start)}
		}
		if attempt > 0 {
			s.mRetries.Inc()
			if err := sleepCtx(ctx, backoffFor(s.cfg.Seed, dg, attempt, s.cfg.RetryBase, s.cfg.RetryMax)); err != nil {
				return pointOutcome{err: err, attempts: attempt, elapsed: time.Since(start)}
			}
		}
		row, state, err := s.attempt(ctx, pc, dg, attempt)
		if err == nil {
			row.Attempts = attempt + 1
			// Persist the pure simulation result: runtime metadata
			// (Cached, Attempts) is stripped so the artifact is a
			// function of the point config alone, bit-identical however
			// many retries this run needed.
			persist := row
			persist.Cached = false
			persist.Attempts = 0
			art, cerr := json.Marshal(persist)
			if cerr == nil {
				cerr = s.st.Commit(dg, state, art)
			}
			if cerr != nil {
				lastErr = fmt.Errorf("sweepd: persist point: %w", cerr)
				continue // a result we cannot make durable is a failed attempt
			}
			return pointOutcome{row: row, attempts: attempt + 1, elapsed: time.Since(start)}
		}
		lastErr = err
	}
	return pointOutcome{
		err:      fmt.Errorf("sweepd: %d attempts exhausted, last: %w", s.cfg.PointRetries+1, lastErr),
		attempts: s.cfg.PointRetries + 1,
		elapsed:  time.Since(start),
	}
}

// attempt runs one simulation attempt in a goroutine so the worker can
// abandon it at the point timeout. The abandoned goroutine finishes its
// (side-effect-free) simulation and exits; s.bg tracks it so Drain can
// wait for stragglers. The fault injector's verdict is drawn before the
// goroutine starts: injected failures and slowdowns are deterministic
// per (point, attempt), never dependent on scheduling.
func (s *Service) attempt(ctx context.Context, pc PointConfig, dg uint64, attempt int) (PointRow, uint64, error) {
	fail, delay := s.inj.PointAttempt(dg, attempt)
	type result struct {
		row   PointRow
		state uint64
		err   error
	}
	ch := make(chan result, 1)
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		if delay > 0 {
			if err := sleepCtx(ctx, delay); err != nil {
				ch <- result{err: err}
				return
			}
		}
		if fail {
			ch <- result{err: ErrInjectedFailure}
			return
		}
		row, state, err := SimulatePoint(pc)
		ch <- result{row: row, state: state, err: err}
	}()
	t := time.NewTimer(s.cfg.PointTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.row, r.state, r.err
	case <-t.C:
		return PointRow{}, 0, fmt.Errorf("%w (%v)", ErrPointTimeout, s.cfg.PointTimeout)
	case <-ctx.Done():
		return PointRow{}, 0, ctx.Err()
	}
}
