package sweepd

import (
	"context"
	"time"

	"guvm/internal/sim"
)

// saltBackoff decorrelates the jitter stream from the fault injector's
// draws, which hash the same (seed, digest, attempt) tuple.
const saltBackoff = 0x94d049bb133111eb

// backoffFor returns the pause before retry attempt (attempt >= 1) of the
// point with the given digest: exponential base<<(attempt-1) capped at
// max, plus jitter in [0, base) drawn from a splitmix64 hash of (seed,
// digest, attempt). Hash-keyed jitter — rather than a shared RNG stream —
// makes the schedule a pure function of the tuple, so it is reproducible
// across runs and indifferent to the order concurrent points interleave.
func backoffFor(seed, pointDigest uint64, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt-1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	r := sim.NewRNG(seed ^ pointDigest ^ (uint64(attempt)+1)*saltBackoff)
	return d + time.Duration(r.Uint64n(uint64(base)))
}

// sleepCtx waits d or until ctx is done, returning ctx.Err() when cut
// short so callers abandon the retry loop promptly on drain or deadline.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
