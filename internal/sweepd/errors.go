package sweepd

import "errors"

// Typed admission and execution errors. The HTTP layer maps these onto
// status codes (429 for back-pressure, 503 for lifecycle), so clients can
// distinguish "retry later" from "give up" without parsing messages.
var (
	// ErrQueueFull is returned by Submit when the bounded job queue is at
	// capacity. Clients should back off and retry.
	ErrQueueFull = errors.New("sweepd: job queue full")

	// ErrBreakerOpen is returned by Submit while the point-backlog circuit
	// breaker is open (backlog crossed the high watermark and has not yet
	// fallen back below the low watermark).
	ErrBreakerOpen = errors.New("sweepd: circuit breaker open: point backlog over watermark")

	// ErrDraining is returned by Submit once Drain has begun; the service
	// finishes in-flight work but accepts nothing new.
	ErrDraining = errors.New("sweepd: draining, new jobs rejected")

	// ErrUnknownJob is returned by lookups for a job ID this service has
	// never seen.
	ErrUnknownJob = errors.New("sweepd: unknown job")

	// ErrPointTimeout wraps a point attempt that exceeded the per-point
	// timeout; the attempt is abandoned and retried with backoff.
	ErrPointTimeout = errors.New("sweepd: point attempt timed out")

	// ErrInjectedFailure marks an attempt killed by the service-layer fault
	// injector (chaos testing); it is retried like any worker crash.
	ErrInjectedFailure = errors.New("sweepd: injected worker failure")

	// ErrTooManyPoints rejects a job whose expanded grid exceeds
	// Config.MaxPointsPerJob.
	ErrTooManyPoints = errors.New("sweepd: grid exceeds per-job point limit")
)
