package sweepd

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// maxSpecBytes bounds a job-spec request body; a spec is a few lists of
// small scalars, so anything larger is hostile or broken.
const maxSpecBytes = 1 << 20

// Mount registers the sweep API on mux (designed for obs.Serve's mount
// callbacks, so the sweep API shares the observability server):
//
//	POST /sweep/jobs              submit a JobSpec, 202 + JobView
//	GET  /sweep/jobs              list jobs
//	GET  /sweep/jobs/{id}         one job's status
//	GET  /sweep/jobs/{id}/results NDJSON result stream (live until terminal)
//	GET  /sweep/healthz           load-shedding state; 503 while draining
//
// Shedding maps typed errors onto status codes: ErrQueueFull and
// ErrBreakerOpen become 429 with Retry-After, ErrDraining becomes 503.
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/sweep/jobs", s.handleJobs)
	mux.HandleFunc("/sweep/jobs/", s.handleJob)
	mux.HandleFunc("/sweep/healthz", s.handleHealth)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	case http.MethodPost:
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		v, err := s.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, v)
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrBreakerOpen):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/sweep/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	switch sub {
	case "":
		v, err := s.Job(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	case "results":
		s.streamResults(w, r, id)
	default:
		writeErr(w, http.StatusNotFound, ErrUnknownJob)
	}
}

// streamResults writes one JSON row per line as points complete,
// flushing after every batch, and returns when the job reaches a
// terminal state or the client goes away. Rows arrive in grid order —
// the stream is a deterministic prefix of the full sweep at any moment.
func (s *Service) streamResults(w http.ResponseWriter, r *http.Request, id string) {
	j := s.lookupJob(id)
	if j == nil {
		writeErr(w, http.StatusNotFound, ErrUnknownJob)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		rows, changed, terminal := s.rowsSince(j, sent)
		for i := range rows {
			if err := enc.Encode(&rows[i]); err != nil {
				return
			}
			sent++
		}
		if len(rows) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
