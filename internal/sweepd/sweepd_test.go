package sweepd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"guvm/internal/faultinject"
	"guvm/internal/sweepd/store"
)

// testConfig keeps unit-test sweeps fast: tiny backoff, generous
// timeouts, a small pool.
func testConfig() Config {
	return Config{
		Workers:      4,
		QueueCap:     8,
		JobDeadline:  30 * time.Second,
		PointTimeout: 10 * time.Second,
		PointRetries: 3,
		RetryBase:    time.Millisecond,
		RetryMax:     5 * time.Millisecond,
		Seed:         1,
	}
}

// smallSpec is a 4-point grid over a 1 MiB stream workload.
func smallSpec() JobSpec {
	return JobSpec{
		Workload: "stream",
		MB:       1,
		Batches:  []int{128, 256},
		CapsMB:   []int{2, 32},
	}
}

func newTestService(t *testing.T, cfg Config, inj *faultinject.ServiceInjector) *Service {
	t.Helper()
	st, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(st, nil, inj, cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// waitState polls until the job reaches a terminal state and returns its
// final view.
func waitState(t *testing.T, s *Service, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		switch v.State {
		case JobDone, JobFailed, JobInterrupted:
			if v.State != want {
				t.Fatalf("job %s finished %s (%s), want %s", id, v.State, v.Error, want)
			}
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func rowsOf(s *Service, id string) []PointRow {
	j := s.lookupJob(id)
	rows, _, _ := s.rowsSince(j, 0)
	return rows
}

// TestSubmitAndComplete runs one small job and checks the result stream
// is the full grid, in grid order, with state digests that match fresh
// out-of-service simulations.
func TestSubmitAndComplete(t *testing.T) {
	s := newTestService(t, testConfig(), nil)
	v, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v.Points != 4 {
		t.Fatalf("points = %d, want 4", v.Points)
	}
	fin := waitState(t, s, v.ID, JobDone)
	if fin.Completed != 4 || fin.Failed != 0 || fin.Cached != 0 {
		t.Fatalf("final view = %+v", fin)
	}
	pts, _ := smallSpec().Points()
	rows := rowsOf(s, v.ID)
	for i, row := range rows {
		if row.Point != pts[i] {
			t.Fatalf("row %d out of grid order: got %+v want %+v", i, row.Point, pts[i])
		}
		fresh, state, err := SimulatePoint(pts[i])
		if err != nil {
			t.Fatal(err)
		}
		if row.StateDigest != fmt.Sprintf("%016x", state) {
			t.Fatalf("row %d state digest %s != fresh %016x", i, row.StateDigest, state)
		}
		if row.KernelMS != fresh.KernelMS || row.Faults != fresh.Faults {
			t.Fatalf("row %d diverged from fresh sim: %+v vs %+v", i, row, fresh)
		}
	}
}

// TestCacheHitBitIdentical resubmits the same grid and requires every
// point to come from the store with digests and payloads identical to
// the first run — and zero new simulations.
func TestCacheHitBitIdentical(t *testing.T) {
	s := newTestService(t, testConfig(), nil)
	v1, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v1.ID, JobDone)
	simsBefore := s.mPointsSim.Value()

	v2, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, v2.ID, JobDone)
	if fin.Cached != 4 {
		t.Fatalf("cached = %d, want 4", fin.Cached)
	}
	if got := s.mPointsSim.Value(); got != simsBefore {
		t.Fatalf("cache hits still simulated: %v -> %v", simsBefore, got)
	}
	first, second := rowsOf(s, v1.ID), rowsOf(s, v2.ID)
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("row %d not marked cached", i)
		}
		a, b := first[i], second[i]
		a.Cached, b.Cached = false, false
		a.Attempts, b.Attempts = 0, 0
		if a != b {
			t.Fatalf("cached row %d differs from original:\n  %+v\n  %+v", i, a, b)
		}
	}
}

// TestRetryRecovers injects failures on every point's first two attempts
// and checks bounded retry rides them out.
func TestRetryRecovers(t *testing.T) {
	inj, err := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		PointFailRate:  1.0,
		PointFailLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, testConfig(), inj)
	v, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, JobDone)
	for i, row := range rowsOf(s, v.ID) {
		if row.Attempts != 3 {
			t.Fatalf("row %d attempts = %d, want 3 (two injected failures)", i, row.Attempts)
		}
	}
	if got := s.mRetries.Value(); got != 8 {
		t.Fatalf("retries counter = %v, want 8 (2 x 4 points)", got)
	}
}

// TestRetryExhaustion makes every attempt fail: the job must finish
// JobFailed with per-row errors naming the injected failure, not hang.
func TestRetryExhaustion(t *testing.T) {
	inj, err := faultinject.NewService(faultinject.ServiceConfig{
		Seed:          7,
		PointFailRate: 1.0, // no limit: every attempt dies
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.PointRetries = 1
	s := newTestService(t, cfg, inj)
	v, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, v.ID, JobFailed)
	if fin.Failed != 4 {
		t.Fatalf("failed = %d, want 4", fin.Failed)
	}
	for i, row := range rowsOf(s, v.ID) {
		if !strings.Contains(row.Error, "injected worker failure") || row.Attempts != 2 {
			t.Fatalf("row %d = %+v, want 2 attempts ending in injected failure", i, row)
		}
	}
}

// TestPointTimeout stalls every attempt past the per-point timeout with
// zero retries: the point must fail with ErrPointTimeout, and Drain must
// still collect the abandoned attempt goroutines.
func TestPointTimeout(t *testing.T) {
	inj, err := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		SlowPointRate:  1.0,
		SlowPointDelay: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.PointTimeout = 30 * time.Millisecond
	cfg.PointRetries = 0
	s := newTestService(t, cfg, inj)
	v, err := s.Submit(JobSpec{Workload: "stream", MB: 1})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, v.ID, JobFailed)
	if fin.Failed != 1 {
		t.Fatalf("failed = %d, want 1", fin.Failed)
	}
	if row := rowsOf(s, v.ID)[0]; !strings.Contains(row.Error, "timed out") {
		t.Fatalf("row error = %q, want point timeout", row.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after abandoned attempts: %v", err)
	}
}

// TestOverloadShedding fills the job queue behind a stalled runner and
// checks the typed-error ladder: accepted, then ErrQueueFull, then (for
// a backlog past the high watermark) ErrBreakerOpen — and that draining
// leaks no goroutines.
func TestOverloadShedding(t *testing.T) {
	inj, err := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		SlowPointRate:  1.0,
		SlowPointDelay: time.Minute, // stall every attempt; drain cancels the sleep
	})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	cfg := testConfig()
	cfg.Workers = 2
	cfg.QueueCap = 2
	cfg.BreakerHigh = 6
	cfg.BreakerLow = 2
	s := newTestService(t, cfg, inj)

	one := JobSpec{Workload: "stream", MB: 1} // 1 point each
	if _, err := s.Submit(one); err != nil {
		t.Fatalf("job 1 (running): %v", err)
	}
	// Give the runner a moment to pop job 1 off the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Health().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never picked up job 1")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(one); err != nil {
		t.Fatalf("job 2 (queued): %v", err)
	}
	if _, err := s.Submit(smallSpec()); err != nil { // 4 points: backlog 1+1+4 = 6 >= high
		t.Fatalf("job 3 (queued): %v", err)
	}
	if _, err := s.Submit(one); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("job 4 = %v, want ErrQueueFull", err)
	}
	h := s.Health()
	if !h.BreakerOpen || h.BacklogPoints != 6 {
		t.Fatalf("health = %+v, want open breaker at backlog 6", h)
	}
	// Queue drained below cap would still hit the breaker: prove the
	// breaker check is reachable by draining one queue slot... the queue
	// is still full here, so the queue error wins; what must hold is that
	// shedding never admits: accepted stays at 3.
	if got := s.mJobsAccepted.Value(); got != 3 {
		t.Fatalf("accepted = %v, want 3", got)
	}
	if got := s.mJobsShed.Value(); got != 1 {
		t.Fatalf("shed = %v, want 1", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Submit(one); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
	// Every job the service accepted must be terminal now.
	for _, v := range s.Jobs() {
		if v.State != JobInterrupted && v.State != JobFailed && v.State != JobDone {
			t.Fatalf("job %s left %s after drain", v.ID, v.State)
		}
	}
	// No goroutine leaks: workers, runner, and abandoned attempts all
	// exit. Allow scheduler slack.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d -> %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBreakerSheds opens the breaker with a big queued backlog while the
// queue itself still has room, and checks Submit reports ErrBreakerOpen.
func TestBreakerSheds(t *testing.T) {
	inj, _ := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		SlowPointRate:  1.0,
		SlowPointDelay: time.Minute,
	})
	cfg := testConfig()
	cfg.QueueCap = 16
	cfg.BreakerHigh = 4
	cfg.BreakerLow = 1
	s := newTestService(t, cfg, inj)
	if _, err := s.Submit(smallSpec()); err != nil { // 4 points -> backlog at high watermark
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Workload: "stream", MB: 1}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("submit = %v, want ErrBreakerOpen", err)
	}
}

// TestJobDeadline gives a stalled job a 30ms deadline and requires a
// JobFailed verdict that names the deadline, with the backlog released.
func TestJobDeadline(t *testing.T) {
	inj, _ := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		SlowPointRate:  1.0,
		SlowPointDelay: time.Minute,
	})
	s := newTestService(t, testConfig(), inj)
	v, err := s.Submit(JobSpec{Workload: "stream", MB: 1, DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, v.ID, JobFailed)
	if !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("error = %q, want deadline verdict", fin.Error)
	}
	if h := s.Health(); h.BacklogPoints != 0 {
		t.Fatalf("backlog not released: %+v", h)
	}
}

// TestResumeRecoveredJob journals a job, "crashes" (reopens the store),
// resumes it on a fresh service, and checks it completes under its
// original ID with fresh IDs numbered past it.
func TestResumeRecoveredJob(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BeginJob("job-7", []byte(`{"workload":"stream","mb":1}`)); err != nil {
		t.Fatal(err)
	}
	st.Close() // crash boundary: admitted, never run

	st2, rec, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(rec.IncompleteJobs) != 1 {
		t.Fatalf("incomplete jobs = %+v", rec.IncompleteJobs)
	}
	s := New(st2, nil, nil, testConfig())
	n, errs := s.Resume(rec.IncompleteJobs)
	if n != 1 || len(errs) != 0 {
		t.Fatalf("resume = %d jobs, errs %v", n, errs)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	fin := waitState(t, s, "job-7", JobDone)
	if !fin.Recovered {
		t.Fatal("resumed job not flagged recovered")
	}
	v, err := s.Submit(JobSpec{Workload: "stream", MB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-8" {
		t.Fatalf("fresh ID after resume = %s, want job-8", v.ID)
	}
}

// TestBadSpecRejected exercises admission validation.
func TestBadSpecRejected(t *testing.T) {
	s := newTestService(t, testConfig(), nil)
	for _, spec := range []JobSpec{
		{Workload: "no-such-workload"},
		{Workload: "stream", Evict: []string{"no-such-policy"}},
		{Workload: "stream", Batches: []int{-1}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Fatalf("spec %+v admitted", spec)
		}
	}
	cfg := testConfig()
	cfg.MaxPointsPerJob = 2
	s2 := newTestService(t, cfg, nil)
	if _, err := s2.Submit(smallSpec()); !errors.Is(err, ErrTooManyPoints) {
		t.Fatalf("oversize grid = %v, want ErrTooManyPoints", err)
	}
}

// TestBackoffDeterministic pins the retry schedule to (seed, digest,
// attempt) alone.
func TestBackoffDeterministic(t *testing.T) {
	for attempt := 1; attempt <= 4; attempt++ {
		a := backoffFor(1, 42, attempt, 50*time.Millisecond, 2*time.Second)
		b := backoffFor(1, 42, attempt, 50*time.Millisecond, 2*time.Second)
		if a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
		lo := 50 * time.Millisecond << uint(attempt-1)
		if lo > 2*time.Second {
			lo = 2 * time.Second
		}
		if a < lo || a >= lo+50*time.Millisecond {
			t.Fatalf("attempt %d backoff %v outside [%v, %v)", attempt, a, lo, lo+50*time.Millisecond)
		}
	}
	if x, y := backoffFor(1, 42, 1, 50*time.Millisecond, time.Second), backoffFor(1, 43, 1, 50*time.Millisecond, time.Second); x == y {
		t.Fatalf("different digests share jitter %v", x)
	}
}
