package sweepd

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"guvm/internal/faultinject"
	"guvm/internal/sweepd/store"
)

func newHTTPService(t *testing.T, cfg Config, inj *faultinject.ServiceInjector) (*Service, *httptest.Server) {
	t.Helper()
	st, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(st, nil, inj, cfg)
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return s, srv
}

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/sweep/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// TestHTTPSubmitStatusAndStream drives the whole client surface: submit
// (202), poll status, stream every NDJSON row, list jobs, healthz.
func TestHTTPSubmitStatusAndStream(t *testing.T) {
	s, srv := newHTTPService(t, testConfig(), nil)
	resp, body := postJob(t, srv, `{"workload":"stream","mb":1,"caps_mb":[2,32]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Points != 2 {
		t.Fatalf("submit view = %+v", v)
	}

	// The stream stays open until the job is terminal and carries every
	// row exactly once, in grid order.
	res, err := http.Get(srv.URL + "/sweep/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var rows []PointRow
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		var row PointRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 2 {
		t.Fatalf("streamed %d rows, want 2", len(rows))
	}
	if rows[0].Point.CapMB != 2 || rows[1].Point.CapMB != 32 {
		t.Fatalf("rows out of grid order: %+v", rows)
	}

	res2, err := http.Get(srv.URL + "/sweep/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var fin JobView
	json.NewDecoder(res2.Body).Decode(&fin)
	res2.Body.Close()
	if fin.State != JobDone || fin.Completed != 2 {
		t.Fatalf("final status = %+v", fin)
	}

	res3, err := http.Get(srv.URL + "/sweep/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobView
	json.NewDecoder(res3.Body).Decode(&list)
	res3.Body.Close()
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("job list = %+v", list)
	}

	res4, err := http.Get(srv.URL + "/sweep/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res4.Body.Close()
	if res4.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", res4.StatusCode)
	}
	_ = s
}

// TestHTTPErrorMapping checks the status-code ladder: 400 for bad specs,
// 404 for unknown jobs, 429 + Retry-After under back-pressure, 503 (and
// failing healthz) once draining.
func TestHTTPErrorMapping(t *testing.T) {
	inj, _ := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		SlowPointRate:  1.0,
		SlowPointDelay: time.Minute,
	})
	cfg := testConfig()
	cfg.QueueCap = 1
	s, srv := newHTTPService(t, cfg, inj)

	if resp, body := postJob(t, srv, `{"workload":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload = %d %s", resp.StatusCode, body)
	}
	if resp, body := postJob(t, srv, `{"workload":"stream","bogus_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d %s", resp.StatusCode, body)
	}
	if resp, _ := http.Get(srv.URL + "/sweep/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// Stall the runner, fill the one queue slot, then overflow it.
	if resp, body := postJob(t, srv, `{"workload":"stream","mb":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 = %d %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Health().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never started job 1")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, body := postJob(t, srv, `{"workload":"stream","mb":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 = %d %s", resp.StatusCode, body)
	}
	resp, body := postJob(t, srv, `{"workload":"stream","mb":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("429 body = %s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, body2 := postJob(t, srv, `{"workload":"stream","mb":1}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d %s", resp2.StatusCode, body2)
	}
	resp3, err := http.Get(srv.URL + "/sweep/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d", resp3.StatusCode)
	}
}

// TestHTTPStreamFollowsLiveJob opens the result stream while the job is
// still running and checks rows arrive incrementally, then the stream
// closes on the terminal state.
func TestHTTPStreamFollowsLiveJob(t *testing.T) {
	inj, _ := faultinject.NewService(faultinject.ServiceConfig{
		Seed:           7,
		SlowPointRate:  1.0,
		SlowPointDelay: 50 * time.Millisecond,
	})
	s, srv := newHTTPService(t, testConfig(), inj)
	resp, body := postJob(t, srv, `{"workload":"stream","mb":1,"caps_mb":[2,32],"batches":[128,256]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var v JobView
	json.Unmarshal(body, &v)

	res, err := http.Get(srv.URL + "/sweep/jobs/" + v.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	n := 0
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		n++
	}
	if n != 4 {
		t.Fatalf("live stream delivered %d rows, want 4", n)
	}
	fin, err := s.Job(v.ID)
	if err != nil || fin.State != JobDone {
		t.Fatalf("job after stream = %+v, %v", fin, err)
	}
}
