// Package store is sweepd's crash-safe, content-addressed result store.
//
// Completed sweep points are keyed by their config digest (an FNV-1a
// fold of every knob that determines the simulation) and committed in
// two steps: the point's artifact (the result row JSON) is written to a
// temporary file, fsynced and atomically renamed into place, and only
// then is the point recorded in an append-only write-ahead journal
// ("journal.wal") with its state digest and a per-record checksum. The
// ordering makes the WAL the source of truth: a record in the journal
// implies its artifact is durable, so a recovery scan after SIGKILL can
// trust every intact record, drop a torn tail (a half-written final
// record is truncated away), and resume a sweep grid from the last
// durable point. The journal also records job submission and completion,
// so incomplete jobs are re-runnable after a crash with their finished
// points served from cache — bit-identically, since the artifact carries
// the simulation's state digest.
//
// Layout under the store directory:
//
//	journal.wal     append-only journal (text records, checksummed)
//	points/<d>.json one artifact per completed point, d = %016x digest
//
// Journal record grammar (one record per line; crc is the FNV-1a digest
// of the line up to and including the last payload field):
//
//	P <config-digest> <state-digest> <artifact> <crc>   point committed
//	J <job-id> <hex-spec> <crc>                         job submitted
//	D <job-id> <crc>                                    job completed
package store

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"guvm/internal/digest"
)

// Point is the journal metadata of one committed sweep point.
type Point struct {
	// ConfigDigest content-addresses the point: every knob that
	// determines the simulation folds into it.
	ConfigDigest uint64
	// StateDigest is the simulator's final state digest for this config —
	// the bit-identity witness a cached result is verified against.
	StateDigest uint64
	// Artifact is the file name of the result row under points/.
	Artifact string
}

// JobRecord is the journal metadata of one submitted job.
type JobRecord struct {
	ID   string
	Spec []byte
	Done bool
}

// Recovery reports what Open reconstructed from the journal.
type Recovery struct {
	// Points is the number of durable points recovered.
	Points int
	// IncompleteJobs holds every job with a submission record but no
	// completion record, in submission order — the work a restarted
	// daemon must resume.
	IncompleteJobs []JobRecord
	// TruncatedBytes counts journal bytes dropped as a torn tail (a
	// record cut short by a crash mid-append). Zero on a clean journal.
	TruncatedBytes int64
}

// Store is the on-disk result store. All methods are safe for concurrent
// use.
type Store struct {
	dir string

	mu     sync.Mutex
	wal    *os.File
	points map[uint64]Point
	jobs   map[string]*JobRecord
	order  []string // job IDs in submission order
}

const (
	journalName = "journal.wal"
	pointsDir   = "points"
)

// Open opens (creating if needed) the store at dir, replays the journal,
// and truncates any torn tail so subsequent appends extend a clean log.
func Open(dir string) (*Store, *Recovery, error) {
	if err := os.MkdirAll(filepath.Join(dir, pointsDir), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:    dir,
		points: make(map[uint64]Point),
		jobs:   make(map[string]*JobRecord),
	}
	rec, err := s.replay()
	if err != nil {
		return nil, nil, err
	}
	wal, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open journal: %w", err)
	}
	s.wal = wal
	return s, rec, nil
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, journalName) }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// replay scans the journal, loads intact records, and truncates the file
// at the first torn or corrupt record (everything after an unreadable
// record is untrusted — the append-only discipline means nothing valid
// can follow it).
func (s *Store) replay() (*Recovery, error) {
	rec := &Recovery{}
	data, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read journal: %w", err)
	}

	// A record is only trusted when newline-terminated AND checksummed: a
	// crash mid-append leaves either a partial line (no newline) or a
	// line whose checksum cannot match. Either way the scan stops there
	// and the tail is truncated, so appends always extend a clean log.
	var good int64 // byte offset past the last intact record
	rest := data
	for {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail: final record never got its newline
		}
		if err := s.applyRecord(string(rest[:nl])); err != nil {
			break // corrupt tail: stop trusting the log here
		}
		good += int64(nl) + 1
		rest = rest[nl+1:]
	}
	if good < int64(len(data)) {
		rec.TruncatedBytes = int64(len(data)) - good
		if err := os.Truncate(s.journalPath(), good); err != nil {
			return nil, fmt.Errorf("store: truncate torn journal tail: %w", err)
		}
	}

	rec.Points = len(s.points)
	for _, id := range s.order {
		if j := s.jobs[id]; !j.Done {
			rec.IncompleteJobs = append(rec.IncompleteJobs, *j)
		}
	}
	return rec, nil
}

// applyRecord parses and applies one journal line, verifying its
// checksum. An error means the record (and everything after it) must be
// discarded.
func (s *Store) applyRecord(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("store: short record")
	}
	payload, crcField := fields[:len(fields)-1], fields[len(fields)-1]
	wantCRC, err := strconv.ParseUint(crcField, 16, 64)
	if err != nil {
		return fmt.Errorf("store: bad checksum field: %w", err)
	}
	if lineCRC(payload) != wantCRC {
		return fmt.Errorf("store: checksum mismatch")
	}
	switch payload[0] {
	case "P":
		if len(payload) != 4 {
			return fmt.Errorf("store: malformed point record")
		}
		cfg, err1 := strconv.ParseUint(payload[1], 16, 64)
		st, err2 := strconv.ParseUint(payload[2], 16, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("store: malformed point digests")
		}
		// The commit protocol renames the artifact before appending the
		// record, so it must exist; a missing artifact means the record
		// cannot be served and is dropped rather than trusted.
		art := payload[3]
		if _, err := os.Stat(filepath.Join(s.dir, pointsDir, art)); err != nil {
			return fmt.Errorf("store: point record without artifact: %w", err)
		}
		s.points[cfg] = Point{ConfigDigest: cfg, StateDigest: st, Artifact: art}
	case "J":
		if len(payload) != 3 {
			return fmt.Errorf("store: malformed job record")
		}
		spec, err := hex.DecodeString(payload[2])
		if err != nil {
			return fmt.Errorf("store: malformed job spec: %w", err)
		}
		id := payload[1]
		if _, ok := s.jobs[id]; !ok {
			s.order = append(s.order, id)
		}
		s.jobs[id] = &JobRecord{ID: id, Spec: spec}
	case "D":
		if len(payload) != 2 {
			return fmt.Errorf("store: malformed job-done record")
		}
		if j, ok := s.jobs[payload[1]]; ok {
			j.Done = true
		}
	default:
		return fmt.Errorf("store: unknown record kind %q", payload[0])
	}
	return nil
}

// lineCRC folds the payload fields into the record checksum.
func lineCRC(fields []string) uint64 {
	h := digest.New()
	for _, f := range fields {
		h = h.String(f)
	}
	return h.Sum()
}

// append writes one checksummed record and fsyncs the journal, so a
// record returned from append survives SIGKILL.
func (s *Store) append(fields ...string) error {
	line := strings.Join(fields, " ") + " " + fmt.Sprintf("%016x", lineCRC(fields)) + "\n"
	if _, err := s.wal.WriteString(line); err != nil {
		return fmt.Errorf("store: append journal: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: sync journal: %w", err)
	}
	return nil
}

// Lookup returns the journal metadata and artifact bytes of a committed
// point, or ok=false on a cache miss. A point whose artifact has gone
// unreadable (external interference) degrades to a miss rather than an
// error — the caller re-simulates and recommits.
func (s *Store) Lookup(configDigest uint64) (Point, []byte, bool) {
	s.mu.Lock()
	p, ok := s.points[configDigest]
	s.mu.Unlock()
	if !ok {
		return Point{}, nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, pointsDir, p.Artifact))
	if err != nil {
		s.mu.Lock()
		delete(s.points, configDigest)
		s.mu.Unlock()
		return Point{}, nil, false
	}
	return p, b, true
}

// Commit makes one completed point durable: artifact first (temp file,
// fsync, atomic rename), then the journal record. Committing an
// already-present digest is an idempotent no-op, so concurrent jobs
// racing on a shared point are harmless.
func (s *Store) Commit(configDigest, stateDigest uint64, artifact []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.points[configDigest]; ok {
		return nil
	}
	name := fmt.Sprintf("%016x.json", configDigest)
	final := filepath.Join(s.dir, pointsDir, name)
	tmp, err := os.CreateTemp(filepath.Join(s.dir, pointsDir), "tmp-*")
	if err != nil {
		return fmt.Errorf("store: artifact temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(artifact); err != nil {
		tmp.Close()
		return fmt.Errorf("store: artifact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: artifact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: artifact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: artifact rename: %w", err)
	}
	if err := s.append("P", fmt.Sprintf("%016x", configDigest), fmt.Sprintf("%016x", stateDigest), name); err != nil {
		return err
	}
	s.points[configDigest] = Point{ConfigDigest: configDigest, StateDigest: stateDigest, Artifact: name}
	return nil
}

// BeginJob journals a job submission so a crash before completion leaves
// a resumable record. Re-beginning a known job (a recovered resubmission)
// is a no-op.
func (s *Store) BeginJob(id string, spec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return nil
	}
	if err := s.append("J", id, hex.EncodeToString(spec)); err != nil {
		return err
	}
	s.jobs[id] = &JobRecord{ID: id, Spec: spec}
	s.order = append(s.order, id)
	return nil
}

// FinishJob journals a job completion.
func (s *Store) FinishJob(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("store: finish unknown job %q", id)
	}
	if j.Done {
		return nil
	}
	if err := s.append("D", id); err != nil {
		return err
	}
	j.Done = true
	return nil
}

// Len returns the number of committed points.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Points returns the committed point metadata, sorted by config digest.
func (s *Store) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, 0, len(s.points))
	for _, p := range s.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ConfigDigest < out[j].ConfigDigest })
	return out
}

// Close flushes and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}
