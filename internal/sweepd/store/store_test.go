package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

// TestCommitLookupRoundTrip commits points and jobs, closes, reopens, and
// requires every digest and artifact back bit-identically.
func TestCommitLookupRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir)
	if rec.Points != 0 || len(rec.IncompleteJobs) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh store recovery = %+v", rec)
	}

	if err := s.BeginJob("job-1", []byte(`{"workload":"stream"}`)); err != nil {
		t.Fatal(err)
	}
	arts := map[uint64][]byte{}
	for i := uint64(1); i <= 5; i++ {
		art := []byte(fmt.Sprintf(`{"point":%d}`, i))
		arts[i] = art
		if err := s.Commit(i, i*100, art); err != nil {
			t.Fatal(err)
		}
	}
	// Idempotent re-commit must not duplicate.
	if err := s.Commit(3, 300, []byte("ignored")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if err := s.FinishJob("job-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginJob("job-2", []byte(`{"workload":"sgemm"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := mustOpen(t, dir)
	defer s2.Close()
	if rec2.Points != 5 || rec2.TruncatedBytes != 0 {
		t.Fatalf("reopen recovery = %+v", rec2)
	}
	if len(rec2.IncompleteJobs) != 1 || rec2.IncompleteJobs[0].ID != "job-2" {
		t.Fatalf("incomplete jobs = %+v", rec2.IncompleteJobs)
	}
	if string(rec2.IncompleteJobs[0].Spec) != `{"workload":"sgemm"}` {
		t.Fatalf("recovered spec = %q", rec2.IncompleteJobs[0].Spec)
	}
	for i := uint64(1); i <= 5; i++ {
		p, art, ok := s2.Lookup(i)
		if !ok {
			t.Fatalf("point %d lost across reopen", i)
		}
		if p.StateDigest != i*100 {
			t.Fatalf("point %d state digest = %d", i, p.StateDigest)
		}
		if string(art) != string(arts[i]) {
			t.Fatalf("point %d artifact = %q, want %q", i, art, arts[i])
		}
	}
	if _, _, ok := s2.Lookup(99); ok {
		t.Fatal("lookup of uncommitted digest hit")
	}
}

// TestTornTailRecovery cuts the journal mid-record (simulating SIGKILL
// during an append) and checks that recovery keeps every record before
// the tear, drops the tear, and leaves the journal appendable.
func TestTornTailRecovery(t *testing.T) {
	for _, cut := range []int{1, 7, 20} { // bytes to slice off the tail
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s, _ := mustOpen(t, dir)
			if err := s.BeginJob("job-1", []byte("{}")); err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= 3; i++ {
				if err := s.Commit(i, i, []byte("{}")); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			j := filepath.Join(dir, journalName)
			b, err := os.ReadFile(j)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(j, b[:len(b)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			s2, rec := mustOpen(t, dir)
			if rec.TruncatedBytes == 0 {
				t.Fatal("torn tail not detected")
			}
			if rec.Points != 2 {
				t.Fatalf("recovered %d points, want 2 (last record torn)", rec.Points)
			}
			if len(rec.IncompleteJobs) != 1 {
				t.Fatalf("incomplete jobs = %+v", rec.IncompleteJobs)
			}
			// The log must be cleanly appendable after truncation: commit
			// the torn point again and reopen once more.
			if err := s2.Commit(3, 3, []byte("{}")); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3, rec3 := mustOpen(t, dir)
			defer s3.Close()
			if rec3.Points != 3 || rec3.TruncatedBytes != 0 {
				t.Fatalf("post-repair recovery = %+v", rec3)
			}
		})
	}
}

// TestCorruptRecordStopsReplay flips a byte mid-journal: everything
// before the corruption is kept, everything after is untrusted.
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	for i := uint64(1); i <= 3; i++ {
		if err := s.Commit(i, i, []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	j := filepath.Join(dir, journalName)
	b, _ := os.ReadFile(j)
	lines := strings.SplitAfter(string(b), "\n")
	lines[1] = strings.Replace(lines[1], "P", "X", 1) // corrupt record 2
	os.WriteFile(j, []byte(strings.Join(lines, "")), 0o644)

	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if rec.Points != 1 {
		t.Fatalf("recovered %d points, want 1", rec.Points)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
}

// TestMissingArtifactDegradesToMiss deletes a committed artifact behind
// the store's back: Lookup must miss (so the caller re-simulates) rather
// than serve garbage or error.
func TestMissingArtifactDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	defer s.Close()
	if err := s.Commit(7, 700, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, pointsDir, "0000000000000007.json"))
	if _, _, ok := s.Lookup(7); ok {
		t.Fatal("lookup served a point with no artifact")
	}
	// And the miss is recommittable.
	if err := s.Commit(7, 700, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Lookup(7); !ok {
		t.Fatal("recommit after degraded miss not served")
	}
}

// TestConcurrentCommits hammers Commit/Lookup/BeginJob from many
// goroutines (run under -race by scripts/check.sh) and verifies every
// point survives a reopen.
func TestConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	const goroutines = 8
	const per = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d := uint64(g*per + i + 1)
				if err := s.Commit(d, d*2, []byte(fmt.Sprintf(`{"d":%d}`, d))); err != nil {
					t.Errorf("commit %d: %v", d, err)
					return
				}
				if _, _, ok := s.Lookup(d); !ok {
					t.Errorf("lookup %d missed after commit", d)
					return
				}
				if i%10 == 0 {
					if err := s.BeginJob(fmt.Sprintf("job-%d-%d", g, i), []byte("{}")); err != nil {
						t.Errorf("begin job: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()

	s2, rec := mustOpen(t, dir)
	defer s2.Close()
	if want := goroutines * per; rec.Points != want {
		t.Fatalf("recovered %d points, want %d", rec.Points, want)
	}
}
