package digest

import "testing"

// TestKnownVector pins FNV-1a against the classic reference values so the
// constants can never silently drift.
func TestKnownVector(t *testing.T) {
	// FNV-1a("a") = 0xaf63dc4c8601ec8c
	if got := New().Byte('a').Sum(); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("fnv1a(a) = %#x", got)
	}
	// FNV-1a("") is the offset basis.
	if got := New().Sum(); got != 14695981039346656037 {
		t.Fatalf("fnv1a() = %#x", got)
	}
}

func TestOrderSensitivity(t *testing.T) {
	a := New().Uint64(1).Uint64(2).Sum()
	b := New().Uint64(2).Uint64(1).Sum()
	if a == b {
		t.Fatal("digest is order-insensitive")
	}
}

func TestLengthPrefixDisambiguates(t *testing.T) {
	// Words([1]) ++ Words([]) must differ from Words([]) ++ Words([1]).
	a := New().Words([]uint64{1}).Words(nil).Sum()
	b := New().Words(nil).Words([]uint64{1}).Sum()
	if a == b {
		t.Fatal("length prefix does not disambiguate concatenation")
	}
}

func TestCombine(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Fatal("Combine is order-insensitive")
	}
	if Combine() != New().Sum() {
		t.Fatal("empty Combine should be the offset basis")
	}
}

func TestScalarEncodings(t *testing.T) {
	if New().Bool(true).Sum() == New().Bool(false).Sum() {
		t.Fatal("bool encoding collapses")
	}
	if New().Int(-1).Sum() == New().Int(1).Sum() {
		t.Fatal("int encoding collapses sign")
	}
	if New().Float64(1.5).Sum() == New().Float64(2.5).Sum() {
		t.Fatal("float encoding collapses")
	}
	if New().String("ab").Sum() == New().String("ba").Sum() {
		t.Fatal("string encoding is order-insensitive")
	}
}
