// Package digest provides the canonical FNV-1a state hashing the audit
// subsystem builds on. Every model (driver, GPU, host OS, link) folds its
// canonical state into a Hash; two runs of the same configuration must
// produce identical digests batch-by-batch, which is what the determinism
// verifier checks. FNV-1a is used because the digests are cheap integrity
// fingerprints, not cryptographic commitments.
package digest

import "math"

// FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is an FNV-1a 64-bit accumulator. The zero value is NOT a valid
// start state; begin with New.
type Hash uint64

// New returns the FNV-1a offset basis.
func New() Hash { return offset64 }

// Byte folds one byte into the hash.
func (h Hash) Byte(b byte) Hash { return (h ^ Hash(b)) * prime64 }

// Uint64 folds v little-endian byte by byte.
func (h Hash) Uint64(v uint64) Hash {
	for i := 0; i < 8; i++ {
		h = h.Byte(byte(v))
		v >>= 8
	}
	return h
}

// Int folds a signed integer.
func (h Hash) Int(v int) Hash { return h.Uint64(uint64(int64(v))) }

// Int64 folds a signed 64-bit integer (e.g. virtual timestamps).
func (h Hash) Int64(v int64) Hash { return h.Uint64(uint64(v)) }

// Bool folds a boolean as one byte.
func (h Hash) Bool(v bool) Hash {
	if v {
		return h.Byte(1)
	}
	return h.Byte(0)
}

// Float64 folds a float's raw IEEE-754 bits, which is exact and
// deterministic across runs.
func (h Hash) Float64(v float64) Hash {
	return h.Uint64(math.Float64bits(v))
}

// Words folds a slice of machine words (e.g. a PageSet's backing array).
func (h Hash) Words(ws []uint64) Hash {
	h = h.Int(len(ws))
	for _, w := range ws {
		h = h.Uint64(w)
	}
	return h
}

// String folds a length-prefixed string.
func (h Hash) String(s string) Hash {
	h = h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h = h.Byte(s[i])
	}
	return h
}

// Sum returns the accumulated digest.
func (h Hash) Sum() uint64 { return uint64(h) }

// Combine folds several already-computed digests into one summary value,
// order-sensitively. Used to collapse per-component digests into the
// combined per-snapshot digest.
func Combine(parts ...uint64) uint64 {
	h := New()
	for _, p := range parts {
		h = h.Uint64(p)
	}
	return h.Sum()
}
