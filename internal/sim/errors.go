package sim

import (
	"errors"
	"fmt"
)

// ErrLivelock is the sentinel matched by errors.Is when a watchdog aborts a
// run: either the MaxEvents backstop or the no-progress (stalled virtual
// clock) detector fired. The concrete error is always a *LivelockError
// carrying the diagnostic.
var ErrLivelock = errors.New("sim: livelock")

// LivelockError is the structured diagnostic produced when the engine
// watchdog terminates a run instead of letting it spin forever.
type LivelockError struct {
	// Reason names the watchdog that fired.
	Reason string
	// At is the virtual time at which the run was aborted.
	At Time
	// Executed is how many events had been dispatched.
	Executed uint64
	// Pending is how many events were still queued.
	Pending int
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: livelock: %s (virtual time %d ns, %d events executed, %d pending)",
		e.Reason, e.At, e.Executed, e.Pending)
}

// Unwrap lets errors.Is(err, ErrLivelock) match.
func (e *LivelockError) Unwrap() error { return ErrLivelock }
