package sim

import (
	"errors"
	"fmt"
)

// ErrLivelock is the sentinel matched by errors.Is when a watchdog aborts a
// run: either the MaxEvents backstop or the no-progress (stalled virtual
// clock) detector fired. The concrete error is always a *LivelockError
// carrying the diagnostic.
var ErrLivelock = errors.New("sim: livelock")

// LivelockError is the structured diagnostic produced when the engine
// watchdog terminates a run instead of letting it spin forever.
type LivelockError struct {
	// Reason names the watchdog that fired.
	Reason string
	// At is the virtual time at which the run was aborted.
	At Time
	// Executed is how many events had been dispatched.
	Executed uint64
	// Pending is how many events were still queued.
	Pending int
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: livelock: %s (virtual time %d ns, %d events executed, %d pending)",
		e.Reason, e.At, e.Executed, e.Pending)
}

// Unwrap lets errors.Is(err, ErrLivelock) match.
func (e *LivelockError) Unwrap() error { return ErrLivelock }

// ErrCallbackPanic is the sentinel matched by errors.Is when an event
// callback panicked. The concrete error is always a *CallbackPanicError
// carrying the recovered value and the dispatch context.
var ErrCallbackPanic = errors.New("sim: callback panic")

// CallbackPanicError is the structured diagnostic produced when an event
// callback panics. The engine recovers the panic, records this error as
// the run's terminal error, and returns it from Run — a model bug aborts
// one simulation, not the whole process.
type CallbackPanicError struct {
	// Value is the recovered panic value.
	Value any
	// At is the virtual time of the panicking event.
	At Time
	// Executed is how many events had been dispatched, inclusive.
	Executed uint64
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *CallbackPanicError) Error() string {
	return fmt.Sprintf("sim: event callback panicked at virtual time %d ns (event %d): %v",
		e.At, e.Executed, e.Value)
}

// Unwrap lets errors.Is(err, ErrCallbackPanic) match.
func (e *CallbackPanicError) Unwrap() error { return ErrCallbackPanic }
