package sim

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// refHeap is the pre-calendar-queue binary heap, kept verbatim as the
// ordering oracle: the calendar queue must pop in exactly this heap's
// (at, seq) order on every schedule stream.
type refHeap []*event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// drive pushes/pops both queues in lockstep and fails on the first
// divergence in (at, seq) pop order. Interleaved pops exercise the scan
// head's forward walk and rewind paths the way a live engine does.
func drive(t *testing.T, rng *rand.Rand, ops int) {
	t.Helper()
	var cq calQueue
	var rh refHeap
	var seq uint64
	now := Time(0)
	push := func(at Time) {
		if at < now {
			at = now
		}
		seq++
		cq.Push(&event{at: at, seq: seq})
		heap.Push(&rh, &event{at: at, seq: seq})
	}
	pop := func() {
		want := heap.Pop(&rh).(*event)
		got := cq.PopMin()
		if got == nil {
			t.Fatalf("calQueue empty, refHeap has (at=%d, seq=%d)", want.at, want.seq)
		}
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop order diverged: calQueue (at=%d, seq=%d), refHeap (at=%d, seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
		if got.at > now {
			now = got.at
		}
	}
	for i := 0; i < ops; i++ {
		if rh.Len() > 0 && rng.Intn(2) == 0 {
			pop()
			continue
		}
		// Delay mixture: zero-delay ties, tight clusters, millisecond
		// jumps, and rare far-future outliers (resize + direct-search
		// paths).
		var d Time
		switch rng.Intn(10) {
		case 0:
			d = 0
		case 1, 2, 3, 4:
			d = Time(rng.Intn(2000))
		case 5, 6, 7:
			d = Time(rng.Intn(int(Millisecond)))
		case 8:
			d = Time(rng.Intn(int(Second)))
		default:
			d = MaxTime - now - Time(rng.Intn(1000)) // saturation region
		}
		push(now + d)
	}
	for rh.Len() > 0 {
		pop()
	}
	if cq.PopMin() != nil {
		t.Fatal("calQueue non-empty after refHeap drained")
	}
}

// TestCalQueueMatchesHeapOrder is the side-by-side property test: on
// randomized schedule streams the calendar queue and the binary-heap
// oracle must agree on every single pop.
func TestCalQueueMatchesHeapOrder(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		drive(t, rng, 2000)
	}
}

// TestCalQueueZeroDelayFIFO pins the tie-break contract in isolation:
// events at one instant pop in scheduling order.
func TestCalQueueZeroDelayFIFO(t *testing.T) {
	var cq calQueue
	const n = 100
	for i := 1; i <= n; i++ {
		cq.Push(&event{at: 42, seq: uint64(i)})
	}
	for i := 1; i <= n; i++ {
		ev := cq.PopMin()
		if ev == nil || ev.seq != uint64(i) {
			t.Fatalf("tie-break broken at pop %d: got %+v", i, ev)
		}
	}
}

// TestCalQueuePopMinUntil checks the deadline-bounded pop: events past
// the deadline stay queued and pop later in order.
func TestCalQueuePopMinUntil(t *testing.T) {
	var cq calQueue
	times := []Time{5, 10, 10, 3 * Millisecond, MaxTime}
	for i, at := range times {
		cq.Push(&event{at: at, seq: uint64(i + 1)})
	}
	var got []Time
	for {
		ev := cq.PopMinUntil(Millisecond)
		if ev == nil {
			break
		}
		got = append(got, ev.at)
	}
	if len(got) != 3 || got[0] != 5 || got[1] != 10 || got[2] != 10 {
		t.Fatalf("PopMinUntil(1ms) returned %v, want [5 10 10]", got)
	}
	if cq.size != 2 {
		t.Fatalf("events past deadline must stay queued: size %d, want 2", cq.size)
	}
	if ev := cq.PopMin(); ev == nil || ev.at != 3*Millisecond {
		t.Fatalf("post-deadline pop got %+v, want at=3ms", ev)
	}
	if ev := cq.PopMin(); ev == nil || ev.at != MaxTime {
		t.Fatalf("final pop got %+v, want at=MaxTime", ev)
	}
}

// TestScheduleOverflowSaturates is the regression test for the
// time-overflow bug: now+delay wrapping negative used to clamp the
// event to the present, firing a far-future event immediately. It must
// saturate at MaxTime and stay pending past any finite deadline.
func TestScheduleOverflowSaturates(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10 {
		t.Fatalf("clock at %d, want 10", e.Now())
	}

	fired := false
	near := false
	e.Schedule(MaxTime, func() { fired = true }) // now+MaxTime overflows
	e.Schedule(Microsecond, func() { near = true })
	if _, err := e.RunUntil(e.Now() + Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("overflowed far-future event fired within a 1s horizon")
	}
	if !near {
		t.Fatal("near event did not fire")
	}
	if e.Pending() != 1 {
		t.Fatalf("saturated event must stay pending: Pending() = %d", e.Pending())
	}

	// The saturated event still fires eventually, at the end of time.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("saturated event never fired on an unbounded run")
	}
	if e.Now() != MaxTime {
		t.Fatalf("clock at %d, want MaxTime", e.Now())
	}
	if MaxTime != Time(math.MaxInt64) {
		t.Fatal("MaxTime must be the maximum Time")
	}
}

// TestEventFreeListBounded is the regression test for the free-list
// leak: after a run with a huge pending peak, the recycle list must not
// retain more than maxFreeEvents structs.
func TestEventFreeListBounded(t *testing.T) {
	e := NewEngine()
	const n = 8 * maxFreeEvents
	for i := 0; i < n; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.Pending() != n {
		t.Fatalf("Pending() = %d, want %d", e.Pending(), n)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.free) > maxFreeEvents {
		t.Fatalf("free list holds %d events after the run, cap is %d", len(e.free), maxFreeEvents)
	}
}

// TestScheduleArgOrdering checks that arg-carrying events share the
// same (at, seq) ordering and panic isolation as closure events.
func TestScheduleArgOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleArg(5, func(v any) { order = append(order, v.(int)) }, 1)
	e.Schedule(5, func() { order = append(order, 2) })
	e.ScheduleArg(0, func(v any) { order = append(order, v.(int)) }, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("dispatch order %v, want [0 1 2]", order)
	}

	e2 := NewEngine()
	e2.ScheduleArg(0, func(any) { panic("boom") }, nil)
	if _, err := e2.Run(); err == nil {
		t.Fatal("panic in arg callback must surface as the run error")
	}
}
