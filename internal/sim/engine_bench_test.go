package sim

import "testing"

// BenchmarkEngineDispatch measures the steady-state cost of the engine's
// schedule/pop/dispatch cycle with a realistic number of outstanding
// events. Each op is one event dispatch; -benchmem exposes the per-event
// allocation behaviour the event free list is meant to eliminate.
func BenchmarkEngineDispatch(b *testing.B) {
	const outstanding = 64
	e := NewEngine()
	remaining := b.N
	tick := func(self *func()) func() {
		return func() {
			if remaining <= 0 {
				return
			}
			remaining--
			e.Schedule(Microsecond, *self)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < outstanding; i++ {
		var fn func()
		fn = tick(&fn)
		e.Schedule(Time(i), fn)
	}
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
