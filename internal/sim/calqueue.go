package sim

// calqueue.go — the engine's event queue: a calendar queue (R. Brown,
// CACM 1988) replacing the earlier container/heap binary heap. Events
// hash into a ring of time buckets by their timestamp; push is an
// append, pop consumes the head bucket and walks forward. With the
// bucket width adapted to the observed event spacing, both operations
// are O(1) amortized and touch contiguous memory, where the binary heap
// paid O(log n) pointer-chasing sift operations on every dispatch.
//
// Ordering contract: PopMin returns events in strictly ascending
// (at, seq) order — exactly the binary heap's comparator, so the FIFO
// tie-break at equal timestamps (and therefore every digest golden) is
// preserved bit for bit. The property test in calqueue_test.go and the
// FuzzEventQueueOrder target run this queue side by side with a
// container/heap reference on randomized schedule streams to prove it.
//
// Two engine-specific facts keep the structure simple:
//
//   - Timestamps never run backwards past the scan head: Engine.At
//     clamps to now, and now only advances to popped event times. A
//     push may still land behind the head when the head skipped over
//     empty buckets, so Push rewinds the head to the event's bucket —
//     a pure scan-position reset, never a correctness hazard.
//   - The engine's traffic is burst-heavy: replay wakes and batch
//     completions schedule hundreds of events for one instant. The
//     head bucket is therefore consumed through a sorted run (see
//     ready below) so a k-event burst costs one O(k log k) sort and k
//     O(1) pops instead of k O(k) bucket rescans.

import "slices"

type calQueue struct {
	// buckets is the ring; len is a power of two.
	buckets [][]*event
	mask    uint64 // len(buckets) - 1
	shift   uint   // log2 of the bucket width in virtual nanoseconds
	// cur is the scan head as an absolute bucket ordinal (time >> shift,
	// monotonic except for Push rewinds); cur&mask indexes the ring.
	// A ring slot holds events of every "year" that hashes to it; the
	// head-bucket extraction admits only those whose ordinal equals cur.
	cur  uint64
	size int
	// ready is the head bucket's current-year events, extracted and
	// sorted the first time the scan head lands on the bucket, then
	// consumed in order from readyPos. The entries are pointer-free
	// (at, seq, slab index) keys, so sorting and insertion never incur
	// GC write barriers and comparisons never chase a pointer; the
	// events themselves sit in slab. A push into the head window inserts
	// its key at the sorted position — for the dominant same-instant
	// burst traffic that position is the end of the run, an O(1) append,
	// because the new event carries the globally largest seq. readyOrd
	// is the bucket ordinal ready serves; while readyOrd == cur the run
	// is the sole authority for the window and the ring slot holds no
	// cur-year events.
	ready    []readyKey
	readyPos int
	slab     []*event
	readyOrd uint64
	// cnt is resize scratch (per-bucket occupancy counts), reused so
	// redistribution costs a bounded number of allocations.
	cnt []int
}

const (
	calMinBuckets = 16
	// calMaxShift bounds the bucket width at ~1 ms. One far-future
	// outlier (e.g. a saturated overflow timestamp) must not widen the
	// buckets until every near event collapses into one slot.
	calMaxShift     = 20
	calInitialShift = 10 // 1 µs buckets until the first resize measures real spacing
)

// readyNone marks the ready run as serving no bucket; every real
// ordinal is at most 2^63 >> shift.
const readyNone = ^uint64(0)

func (q *calQueue) init() {
	q.buckets = make([][]*event, calMinBuckets)
	q.mask = calMinBuckets - 1
	q.shift = calInitialShift
	q.readyOrd = readyNone
}

// less orders events by (at, seq) — the total dispatch order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// readyKey is one ready-run entry: an event's ordering key plus its
// slot in the slab. No pointers, so sorts and inserts are barrier-free.
type readyKey struct {
	at  Time
	seq uint64
	idx int32
}

func keyLess(a, b readyKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func cmpReadyKey(a, b readyKey) int {
	switch {
	case keyLess(a, b):
		return -1
	case keyLess(b, a):
		return 1
	}
	return 0
}

// Push inserts an event.
func (q *calQueue) Push(ev *event) {
	if q.buckets == nil {
		q.init()
	}
	bn := uint64(ev.at) >> q.shift
	if q.size == 0 {
		q.cur = bn
	} else if bn < q.cur {
		// Rewind: the head had skipped past this bucket. The ready run
		// (if any) belongs to a later bucket now, so its events go back
		// to their ring slot.
		q.flushReady()
		q.cur = bn
	}
	q.size++
	if bn == q.cur && q.readyOrd == q.cur {
		// The head bucket is already extracted: the sorted run is the
		// sole authority for this window.
		q.insertReady(ev)
		return
	}
	idx := bn & q.mask
	q.buckets[idx] = append(q.buckets[idx], ev)
	if q.size > 2*len(q.buckets) {
		// Quadruple so redistributions stay rare: the ring reaches any
		// population in log4 growth steps instead of log2.
		q.resize(len(q.buckets) * 4)
	}
}

// insertReady places an event into the active sorted run. The search
// runs over the unconsumed tail only; same-instant burst pushes land at
// the very end (their seq is the global maximum), making the memmove a
// no-op.
func (q *calQueue) insertReady(ev *event) {
	q.slab = append(q.slab, ev)
	k := readyKey{at: ev.at, seq: ev.seq, idx: int32(len(q.slab) - 1)}
	lo, hi := q.readyPos, len(q.ready)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keyLess(q.ready[mid], k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.ready = append(q.ready, readyKey{})
	copy(q.ready[lo+1:], q.ready[lo:])
	q.ready[lo] = k
	// Compact the consumed prefix occasionally so a long same-window
	// push/pop chain cannot grow the run without bound.
	if q.readyPos > 1024 && q.readyPos > len(q.ready)/2 {
		n := copy(q.ready, q.ready[q.readyPos:])
		q.ready = q.ready[:n]
		q.readyPos = 0
	}
}

// flushReady returns the ready run's unconsumed events to their ring
// slot and invalidates the run. Order within a slot is irrelevant.
func (q *calQueue) flushReady() {
	if q.readyOrd == readyNone {
		return
	}
	if q.readyPos < len(q.ready) {
		idx := q.readyOrd & q.mask
		for _, k := range q.ready[q.readyPos:] {
			q.buckets[idx] = append(q.buckets[idx], q.slab[k.idx])
		}
	}
	q.ready = q.ready[:0]
	q.readyPos = 0
	for i := range q.slab {
		q.slab[i] = nil
	}
	q.slab = q.slab[:0]
	q.readyOrd = readyNone
}

// PopMin removes and returns the minimum (at, seq) event, or nil when
// the queue is empty.
func (q *calQueue) PopMin() *event {
	return q.popMin(false, 0)
}

// PopMinUntil removes and returns the minimum event if its timestamp is
// <= deadline, or nil otherwise (the event stays queued). The scan
// stops as soon as the head's window passes the deadline, so a distant
// deadline miss costs a bounded walk instead of a full search.
func (q *calQueue) PopMinUntil(deadline Time) *event {
	return q.popMin(true, deadline)
}

func (q *calQueue) popMin(bounded bool, deadline Time) *event {
	if q.size == 0 {
		return nil
	}
	for scanned := 0; ; scanned++ {
		if q.readyPos < len(q.ready) && q.readyOrd == q.cur {
			// The run head is the global minimum: every event outside
			// the run has a bucket ordinal >= cur and so a timestamp
			// beyond this bucket's window.
			k := q.ready[q.readyPos]
			if bounded && k.at > deadline {
				return nil
			}
			q.readyPos++
			ev := q.slab[k.idx]
			if q.readyPos == len(q.ready) {
				// Window drained; recycle the run and slab storage.
				q.ready = q.ready[:0]
				q.readyPos = 0
				q.slab = q.slab[:0]
			}
			q.size--
			q.maybeShrink()
			return ev
		}
		if bounded && q.cur<<q.shift > uint64(deadline) {
			// Every remaining event sits at or beyond the head window,
			// all past the deadline.
			return nil
		}
		// Extract the head bucket's current-year events into the ready
		// run; events of other "years" sharing the slot stay behind.
		b := q.buckets[q.cur&q.mask]
		kept := b[:0]
		for _, ev := range b {
			if uint64(ev.at)>>q.shift == q.cur {
				q.slab = append(q.slab, ev)
				q.ready = append(q.ready, readyKey{at: ev.at, seq: ev.seq, idx: int32(len(q.slab) - 1)})
			} else {
				kept = append(kept, ev)
			}
		}
		if len(kept) < len(b) {
			for i := len(kept); i < len(b); i++ {
				b[i] = nil
			}
			q.buckets[q.cur&q.mask] = kept
			slices.SortFunc(q.ready, cmpReadyKey)
			q.readyPos = 0
			q.readyOrd = q.cur
			continue
		}
		if scanned >= len(q.buckets) {
			// A full rotation found nothing: the next event is more
			// than a whole ring ahead. Locate the global minimum
			// directly and jump the head to it.
			return q.popGlobalMin(bounded, deadline)
		}
		q.cur++
	}
}

// maybeShrink shrinks the ring with hysteresis: only once it is 8x
// oversized, and then down by 4x, so a population oscillating around a
// threshold cannot thrash grow/shrink redistributions.
func (q *calQueue) maybeShrink() {
	if q.size < len(q.buckets)/8 && len(q.buckets) > calMinBuckets {
		n := len(q.buckets) / 4
		if n < calMinBuckets {
			n = calMinBuckets
		}
		q.resize(n)
	}
}

// popGlobalMin scans every bucket for the global minimum event — the
// slow path taken only after a time jump larger than the whole ring.
// The ready run is always empty here: popMin reaches this point only
// after draining it and finding the head bucket empty.
func (q *calQueue) popGlobalMin(bounded bool, deadline Time) *event {
	bi, ei := -1, -1
	var min *event
	for i := range q.buckets {
		for j, ev := range q.buckets[i] {
			if min == nil || less(ev, min) {
				min, bi, ei = ev, i, j
			}
		}
	}
	q.cur = uint64(min.at) >> q.shift
	q.readyOrd = readyNone
	if bounded && min.at > deadline {
		return nil
	}
	return q.take(uint64(bi), ei)
}

// take removes bucket[idx][i] by swap-with-last — order within a bucket
// is irrelevant before extraction.
func (q *calQueue) take(idx uint64, i int) *event {
	b := q.buckets[idx]
	ev := b[i]
	last := len(b) - 1
	b[i] = b[last]
	b[last] = nil
	q.buckets[idx] = b[:last]
	q.size--
	q.maybeShrink()
	return ev
}

// resize rebuilds the ring with n buckets (a power of two), re-adapting
// the bucket width to the current event population: width ≈ the mean
// gap between the earliest and latest queued events, so the steady
// state carries about one event per bucket. Deterministic — it depends
// only on the queued events, never on wall-clock state.
func (q *calQueue) resize(n int) {
	q.flushReady() // redistribute from the ring alone
	old := q.buckets
	if q.size > 1 {
		var minAt, maxAt Time
		first := true
		for _, b := range old {
			for _, ev := range b {
				if first {
					minAt, maxAt = ev.at, ev.at
					first = false
					continue
				}
				if ev.at < minAt {
					minAt = ev.at
				}
				if ev.at > maxAt {
					maxAt = ev.at
				}
			}
		}
		gap := (uint64(maxAt) - uint64(minAt)) / uint64(q.size)
		shift := uint(0)
		for shift < calMaxShift && 1<<(shift+1) <= gap {
			shift++
		}
		q.shift = shift
	}
	q.mask = uint64(n) - 1
	// Carve the new bucket slices out of one arena: count occupancy per
	// new bucket, then hand each bucket an exact-capacity (plus small
	// headroom) window. Rebuilding every bucket via bare append used to
	// dominate the queue's allocation profile.
	if cap(q.cnt) < n {
		q.cnt = make([]int, n)
	} else {
		q.cnt = q.cnt[:n]
		clear(q.cnt)
	}
	for _, b := range old {
		for _, ev := range b {
			q.cnt[(uint64(ev.at)>>q.shift)&q.mask]++
		}
	}
	const pad = 4 // free slots per bucket before a post-resize push reallocates
	arena := make([]*event, q.size+pad*n)
	q.buckets = make([][]*event, n)
	off := 0
	for i := 0; i < n; i++ {
		c := q.cnt[i] + pad
		q.buckets[i] = arena[off : off : off+c]
		off += c
	}
	var minAt Time
	first := true
	for _, b := range old {
		for _, ev := range b {
			idx := (uint64(ev.at) >> q.shift) & q.mask
			q.buckets[idx] = append(q.buckets[idx], ev)
			if first || ev.at < minAt {
				minAt = ev.at
				first = false
			}
		}
	}
	if !first {
		q.cur = uint64(minAt) >> q.shift
	}
}
