// Package sim provides a small deterministic discrete-event simulation
// engine. Time is measured in integer nanoseconds of virtual time. Events
// scheduled for the same instant fire in FIFO order of scheduling, which
// makes every simulation built on the engine fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
)

// Time is virtual simulation time in nanoseconds.
type Time int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executive. The zero value is ready
// to use at virtual time zero.
type Engine struct {
	pq      eventHeap
	now     Time
	seq     uint64
	stopped bool
	err     error
	// executed counts events that have been dispatched, for diagnostics.
	executed uint64
	// stall counts consecutive events dispatched without the virtual
	// clock advancing, for the no-progress watchdog.
	stall uint64
	// MaxEvents, when non-zero, aborts Run after that many events as a
	// runaway-simulation backstop. The run ends with an ErrLivelock-
	// wrapped *LivelockError.
	MaxEvents uint64
	// MaxStallEvents, when non-zero, aborts Run once that many
	// consecutive events execute at the same virtual instant — a model
	// rescheduling itself with zero delay never advances the clock, and
	// this watchdog catches it long before MaxEvents would.
	MaxStallEvents uint64
	// free recycles dispatched event structs so steady-state scheduling
	// allocates nothing. It grows to the peak number of pending events.
	free []*event
	// OnEvent, when set, observes every dispatched event just before its
	// callback runs. Observers must not schedule events or mutate model
	// state; the hook exists for tracing and costs nothing when nil.
	OnEvent func(at Time)
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.pq) }

// Executed reports how many events have been dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule enqueues fn to run after delay. A negative delay is treated as
// zero: the event runs at the current instant, after events already queued
// for that instant.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At enqueues fn to run at absolute virtual time t. Times in the past are
// clamped to the present.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = t, e.seq, fn
	} else {
		ev = &event{at: t, seq: e.seq, fn: fn}
	}
	heap.Push(&e.pq, ev)
}

// recycle returns a popped event to the free list. The callback reference
// is dropped so recycled events never pin dead closures.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Fail records err as the run's terminal error and stops the dispatch
// loop. The first error wins; later calls only stop the loop. Models use
// it to surface unrecoverable conditions from inside event callbacks,
// where no return path to the Run caller exists.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
}

// Err returns the terminal error recorded by Fail or a watchdog, if any.
func (e *Engine) Err() error { return e.err }

// dispatch runs one popped event, enforcing the livelock watchdogs. It
// reports false when a watchdog aborted the run (the event is not
// executed).
func (e *Engine) dispatch(ev *event) bool {
	if ev.at > e.now {
		e.stall = 0
	} else {
		e.stall++
		if e.MaxStallEvents != 0 && e.stall > e.MaxStallEvents {
			e.Fail(&LivelockError{
				Reason:   fmt.Sprintf("virtual clock stalled for %d consecutive events", e.stall),
				At:       e.now,
				Executed: e.executed,
				Pending:  len(e.pq) + 1,
			})
			return false
		}
	}
	e.now = ev.at
	e.executed++
	if e.MaxEvents != 0 && e.executed > e.MaxEvents {
		e.Fail(&LivelockError{
			Reason:   fmt.Sprintf("MaxEvents (%d) exceeded", e.MaxEvents),
			At:       e.now,
			Executed: e.executed,
			Pending:  len(e.pq) + 1,
		})
		return false
	}
	if e.OnEvent != nil {
		e.OnEvent(e.now)
	}
	e.runCallback(ev.fn)
	return true
}

// runCallback executes one event callback, converting a panic into the
// run's terminal *CallbackPanicError instead of unwinding through Run.
func (e *Engine) runCallback(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			e.Fail(&CallbackPanicError{
				Value:    r,
				At:       e.now,
				Executed: e.executed,
				Stack:    string(debug.Stack()),
			})
		}
	}()
	fn()
}

// Run dispatches events in timestamp order until the queue drains, Stop or
// Fail is called, or a watchdog fires. It returns the final virtual time
// and the terminal error, if any; a run that already failed returns its
// error without dispatching further events.
func (e *Engine) Run() (Time, error) {
	if e.err != nil {
		return e.now, e.err
	}
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		ev := heap.Pop(&e.pq).(*event)
		ok := e.dispatch(ev)
		e.recycle(ev)
		if !ok {
			break
		}
	}
	return e.now, e.err
}

// RunUntil dispatches events with timestamps <= deadline and then returns.
// Events beyond the deadline remain queued; the clock is left at the later
// of its current value and the deadline. A run aborted by Fail or a
// watchdog leaves the clock at the failure instant instead, so failure
// diagnostics (e.g. LivelockError.At) and Now agree.
func (e *Engine) RunUntil(deadline Time) (Time, error) {
	if e.err != nil {
		return e.now, e.err
	}
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped && e.pq[0].at <= deadline {
		ev := heap.Pop(&e.pq).(*event)
		ok := e.dispatch(ev)
		e.recycle(ev)
		if !ok {
			break
		}
	}
	if e.err == nil && e.now < deadline {
		e.now = deadline
	}
	return e.now, e.err
}
