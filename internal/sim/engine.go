// Package sim provides a small deterministic discrete-event simulation
// engine. Time is measured in integer nanoseconds of virtual time. Events
// scheduled for the same instant fire in FIFO order of scheduling, which
// makes every simulation built on the engine fully reproducible.
package sim

import (
	"fmt"
	"math"
	"runtime/debug"
)

// Time is virtual simulation time in nanoseconds.
type Time int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000

	// MaxTime is the end of virtual time. Schedule saturates here when
	// now+delay would overflow, so a "practically never" delay stays in
	// the far future instead of wrapping negative and firing at once.
	MaxTime Time = math.MaxInt64
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// event is one scheduled callback: either a plain closure fn, or an
// arg-carrying pair (afn, arg) — the allocation-free form hot paths use
// so that scheduling needs no per-event closure.
type event struct {
	at  Time
	seq uint64
	fn  func()
	afn func(any)
	arg any
}

// maxFreeEvents bounds the event free list across runs. Within a run
// the list grows to the peak Pending() so steady-state scheduling
// allocates nothing; it used to stay at that peak forever, pinning one
// large job's worth of memory for the life of a long-running process
// (e.g. sweepd). Run and RunUntil now decay it back to this bound on
// exit, reallocating the backing array so the old peak is collectable.
const maxFreeEvents = 1024

// Engine is a discrete-event simulation executive. The zero value is ready
// to use at virtual time zero.
type Engine struct {
	q       calQueue
	now     Time
	seq     uint64
	stopped bool
	err     error
	// executed counts events that have been dispatched, for diagnostics.
	executed uint64
	// stall counts consecutive events dispatched without the virtual
	// clock advancing, for the no-progress watchdog.
	stall uint64
	// MaxEvents, when non-zero, aborts Run after that many events as a
	// runaway-simulation backstop. The run ends with an ErrLivelock-
	// wrapped *LivelockError.
	MaxEvents uint64
	// MaxStallEvents, when non-zero, aborts Run once that many
	// consecutive events execute at the same virtual instant — a model
	// rescheduling itself with zero delay never advances the clock, and
	// this watchdog catches it long before MaxEvents would.
	MaxStallEvents uint64
	// free recycles dispatched event structs so steady-state scheduling
	// allocates nothing. Bounded by maxFreeEvents.
	free []*event
	// OnEvent, when set, observes every dispatched event just before its
	// callback runs. Observers must not schedule events or mutate model
	// state; the hook exists for tracing and costs nothing when nil.
	OnEvent func(at Time)
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return e.q.size }

// Executed reports how many events have been dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule enqueues fn to run after delay. A negative delay is treated as
// zero: the event runs at the current instant, after events already queued
// for that instant. A delay so large that now+delay overflows saturates
// at MaxTime instead of wrapping.
func (e *Engine) Schedule(delay Time, fn func()) {
	e.At(e.deadline(delay), fn)
}

// ScheduleArg enqueues fn(arg) to run after delay, with the same delay
// semantics as Schedule. Passing the argument through the event instead
// of a closure lets hot paths schedule without allocating.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) {
	e.AtArg(e.deadline(delay), fn, arg)
}

// deadline converts a relative delay to an absolute time, clamping
// negative delays to zero and saturating overflow at MaxTime.
func (e *Engine) deadline(delay Time) Time {
	if delay < 0 {
		delay = 0
	}
	t := e.now + delay
	if t < e.now { // signed overflow: now + delay wrapped
		t = MaxTime
	}
	return t
}

// At enqueues fn to run at absolute virtual time t. Times in the past are
// clamped to the present.
func (e *Engine) At(t Time, fn func()) {
	ev := e.newEvent(t)
	ev.fn = fn
	e.q.Push(ev)
}

// AtArg enqueues fn(arg) to run at absolute virtual time t, clamped like At.
func (e *Engine) AtArg(t Time, fn func(any), arg any) {
	ev := e.newEvent(t)
	ev.afn = fn
	ev.arg = arg
	e.q.Push(ev)
}

// newEvent takes an event struct from the free list (or allocates one)
// and stamps it with the clamped time and the next sequence number.
func (e *Engine) newEvent(t Time) *event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq = t, e.seq
	return ev
}

// recycle returns a popped event to the free list. The callback and
// argument references are dropped so recycled events never pin dead
// closures.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// trimFree decays the free list to maxFreeEvents at a run boundary,
// moving the survivors to a right-sized backing array so the large
// one — grown to the run's peak Pending() — becomes garbage.
func (e *Engine) trimFree() {
	if len(e.free) <= maxFreeEvents {
		return
	}
	kept := make([]*event, maxFreeEvents)
	copy(kept, e.free)
	e.free = kept
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Fail records err as the run's terminal error and stops the dispatch
// loop. The first error wins; later calls only stop the loop. Models use
// it to surface unrecoverable conditions from inside event callbacks,
// where no return path to the Run caller exists.
func (e *Engine) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.stopped = true
}

// Err returns the terminal error recorded by Fail or a watchdog, if any.
func (e *Engine) Err() error { return e.err }

// dispatch runs one popped event, enforcing the livelock watchdogs. It
// reports false when a watchdog aborted the run (the event is not
// executed).
func (e *Engine) dispatch(ev *event) bool {
	if ev.at > e.now {
		e.stall = 0
	} else {
		e.stall++
		if e.MaxStallEvents != 0 && e.stall > e.MaxStallEvents {
			e.Fail(&LivelockError{
				Reason:   fmt.Sprintf("virtual clock stalled for %d consecutive events", e.stall),
				At:       e.now,
				Executed: e.executed,
				Pending:  e.q.size + 1,
			})
			return false
		}
	}
	e.now = ev.at
	e.executed++
	if e.MaxEvents != 0 && e.executed > e.MaxEvents {
		e.Fail(&LivelockError{
			Reason:   fmt.Sprintf("MaxEvents (%d) exceeded", e.MaxEvents),
			At:       e.now,
			Executed: e.executed,
			Pending:  e.q.size + 1,
		})
		return false
	}
	if e.OnEvent != nil {
		e.OnEvent(e.now)
	}
	e.runCallback(ev)
	return true
}

// runCallback executes one event callback, converting a panic into the
// run's terminal *CallbackPanicError instead of unwinding through Run.
func (e *Engine) runCallback(ev *event) {
	defer func() {
		if r := recover(); r != nil {
			e.Fail(&CallbackPanicError{
				Value:    r,
				At:       e.now,
				Executed: e.executed,
				Stack:    string(debug.Stack()),
			})
		}
	}()
	if ev.afn != nil {
		ev.afn(ev.arg)
		return
	}
	ev.fn()
}

// Run dispatches events in timestamp order until the queue drains, Stop or
// Fail is called, or a watchdog fires. It returns the final virtual time
// and the terminal error, if any; a run that already failed returns its
// error without dispatching further events.
func (e *Engine) Run() (Time, error) {
	if e.err != nil {
		return e.now, e.err
	}
	e.stopped = false
	for !e.stopped {
		ev := e.q.PopMin()
		if ev == nil {
			break
		}
		ok := e.dispatch(ev)
		e.recycle(ev)
		if !ok {
			break
		}
	}
	e.trimFree()
	return e.now, e.err
}

// RunUntil dispatches events with timestamps <= deadline and then returns.
// Events beyond the deadline remain queued; the clock is left at the later
// of its current value and the deadline. A run aborted by Fail or a
// watchdog leaves the clock at the failure instant instead, so failure
// diagnostics (e.g. LivelockError.At) and Now agree.
func (e *Engine) RunUntil(deadline Time) (Time, error) {
	if e.err != nil {
		return e.now, e.err
	}
	e.stopped = false
	for !e.stopped {
		ev := e.q.PopMinUntil(deadline)
		if ev == nil {
			break
		}
		ok := e.dispatch(ev)
		e.recycle(ev)
		if !ok {
			break
		}
	}
	e.trimFree()
	if e.err == nil && e.now < deadline {
		e.now = deadline
	}
	return e.now, e.err
}
