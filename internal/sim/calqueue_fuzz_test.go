package sim

import (
	"container/heap"
	"testing"
)

// FuzzEventQueueOrder drives the calendar queue and the retired
// binary-heap oracle in lockstep over a fuzzer-chosen stream of
// (op, delay) records and fails on the first divergence in (at, seq)
// pop order — the property the whole engine swap rests on, explored
// beyond the fixed seeds of TestCalQueueMatchesHeapOrder.
//
// Input encoding: consecutive 3-byte records. Byte 0 selects the op
// (odd = pop when non-empty, even = push) and the push's delay scale;
// bytes 1-2 are a big-endian 16-bit raw delay. Scales cover zero-delay
// ties, tight clusters, µs/ms jumps (bucket-width adaptation and
// resize), and the MaxTime saturation region (direct-search fallback).
func FuzzEventQueueOrder(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{
		0x02, 0x00, 0x07, // push +7
		0x02, 0x00, 0x07, // push tie
		0x01, 0x00, 0x00, // pop
		0x06, 0x03, 0xe8, // push +1000µs
		0x08, 0x00, 0x10, // push near-MaxTime
		0x01, 0x00, 0x00, // pop
	})
	f.Add([]byte{
		0x04, 0xff, 0xff, // push far (resize pressure)
		0x00, 0x00, 0x00, // push tie at now
		0x00, 0x00, 0x00,
		0x01, 0x00, 0x00,
		0x01, 0x00, 0x00,
		0x01, 0x00, 0x00,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		var cq calQueue
		var rh refHeap
		var seq uint64
		now := Time(0)
		pop := func() {
			want := heap.Pop(&rh).(*event)
			got := cq.PopMin()
			if got == nil {
				t.Fatalf("calQueue empty, refHeap has (at=%d, seq=%d)", want.at, want.seq)
			}
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("pop order diverged: calQueue (at=%d, seq=%d), refHeap (at=%d, seq=%d)",
					got.at, got.seq, want.at, want.seq)
			}
			if got.at > now {
				now = got.at
			}
		}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i]
			raw := Time(uint64(data[i+1])<<8 | uint64(data[i+2]))
			if op&1 == 1 && rh.Len() > 0 {
				pop()
				continue
			}
			var d Time
			switch (op >> 1) % 5 {
			case 0:
				d = 0
			case 1:
				d = raw
			case 2:
				d = raw * Microsecond
			case 3:
				d = raw * Millisecond
			case 4:
				d = MaxTime - now - raw // saturation region
			}
			at := now + d
			if at < now {
				at = now
			}
			seq++
			cq.Push(&event{at: at, seq: seq})
			heap.Push(&rh, &event{at: at, seq: seq})
		}
		for rh.Len() > 0 {
			pop()
		}
		if cq.PopMin() != nil {
			t.Fatal("calQueue non-empty after refHeap drained")
		}
	})
}
