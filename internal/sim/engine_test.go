package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: got[%d]=%d", i, got[i])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
		e.Schedule(0, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 3 || times[0] != 10 || times[1] != 10 || times[2] != 15 {
		t.Fatalf("nested times = %v, want [10 10 15]", times)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(100, func() {
		e.Schedule(-50, func() {
			ran = true
			if e.Now() != 100 {
				t.Errorf("negative delay ran at %d, want 100", e.Now())
			}
		})
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestEngineAtClampsPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		e.At(10, func() {
			if e.Now() != 100 {
				t.Errorf("past At ran at %d, want clamp to 100", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for i := 1; i <= 5; i++ {
		tt := Time(i * 10)
		e.Schedule(tt, func() { got = append(got, tt) })
	}
	e.RunUntil(30)
	if len(got) != 3 {
		t.Fatalf("RunUntil(30) executed %d events, want 3", len(got))
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("resumed Run executed %d total, want 5", len(got))
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("idle RunUntil left clock at %d, want 500", e.Now())
	}
}

// Regression: RunUntil used to advance the clock to the deadline even
// after Fail or a watchdog aborted dispatch mid-run, so the failure
// diagnostics (LivelockError.At) and the engine clock disagreed.
func TestEngineRunUntilFailureLeavesClockAtFailureInstant(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	e.Schedule(100, func() { e.Fail(boom) })
	now, err := e.RunUntil(1000)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if now != 100 || e.Now() != 100 {
		t.Fatalf("clock = %d (returned %d), want 100 (failure instant)", e.Now(), now)
	}
}

func TestEngineRunUntilWatchdogLeavesClockAtStallInstant(t *testing.T) {
	e := NewEngine()
	e.MaxStallEvents = 20
	var spin func()
	spin = func() { e.Schedule(0, spin) } // never advances the clock
	e.Schedule(40, spin)
	now, err := e.RunUntil(1000)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("err %T is not *LivelockError", err)
	}
	if now != 40 || le.At != now {
		t.Fatalf("clock = %d, LivelockError.At = %d; want both 40 (stall instant)", now, le.At)
	}
}

func TestEngineMaxEventsBackstop(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	_, err := e.Run()
	if err == nil {
		t.Fatal("expected error from MaxEvents backstop")
	}
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("err %T is not *LivelockError", err)
	}
	if le.Executed != 11 {
		t.Fatalf("diagnostic executed = %d, want 11", le.Executed)
	}
	if le.Pending == 0 {
		t.Fatal("diagnostic lost pending-event count")
	}
	// A failed engine stays failed: a second Run dispatches nothing.
	before := e.Executed()
	if _, err2 := e.Run(); err2 == nil || e.Executed() != before {
		t.Fatal("failed engine resumed dispatching")
	}
}

func TestEngineStallWatchdog(t *testing.T) {
	e := NewEngine()
	e.MaxStallEvents = 50
	var spin func()
	spin = func() { e.Schedule(0, spin) } // never advances the clock
	e.Schedule(5, spin)
	_, err := e.Run()
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("err = %v, want ErrLivelock", err)
	}
	if e.Now() != 5 {
		t.Fatalf("aborted at %d, want 5 (stall instant)", e.Now())
	}
}

func TestEngineStallWatchdogResetsOnProgress(t *testing.T) {
	e := NewEngine()
	e.MaxStallEvents = 10
	// 8 same-instant events per tick, across 100 ticks: never trips.
	for tick := 1; tick <= 100; tick++ {
		for i := 0; i < 8; i++ {
			e.Schedule(Time(tick), func() {})
		}
	}
	if _, err := e.Run(); err != nil {
		t.Fatalf("watchdog fired on advancing clock: %v", err)
	}
}

func TestEngineFailStopsRun(t *testing.T) {
	e := NewEngine()
	boom := errors.New("boom")
	ran := 0
	e.Schedule(1, func() { ran++; e.Fail(boom) })
	e.Schedule(2, func() { ran++ })
	_, err := e.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Fail, want 1", ran)
	}
	if e.Err() == nil {
		t.Fatal("Err() lost the failure")
	}
	// First error wins.
	e.Fail(errors.New("later"))
	if !errors.Is(e.Err(), boom) {
		t.Fatal("later Fail overwrote first error")
	}
}

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
	if Millisecond.Micros() != 1000 {
		t.Errorf("Millisecond.Micros() = %v", Millisecond.Micros())
	}
	if (2 * Second).Millis() != 2000 {
		t.Errorf("(2s).Millis() = %v", (2 * Second).Millis())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs matched %d/1000 draws", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGPanicsOnBadArgs(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Intn(-3) },
		func() { r.Uint64n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestEngineMonotonicDispatch(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
