package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestEnginePanicIsolated: a panicking callback must not unwind through
// Run — the engine converts it into the run's terminal error.
func TestEnginePanicIsolated(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.At(10, func() { panic("model bug") })
	e.At(20, func() { t.Error("event after panic must not run") })

	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped Run: %v", r)
		}
	}()
	at, err := e.Run()
	if err == nil {
		t.Fatal("panicking run returned nil error")
	}
	if !errors.Is(err, ErrCallbackPanic) {
		t.Fatalf("error does not match ErrCallbackPanic: %v", err)
	}
	if at != 10 {
		t.Fatalf("run ended at virtual time %d, want 10 (the panicking event)", at)
	}
}

// TestEnginePanicDiagnostics: the structured error carries the recovered
// value, dispatch position and a stack trace.
func TestEnginePanicDiagnostics(t *testing.T) {
	e := NewEngine()
	e.At(3, func() {})
	e.At(7, func() { panic("boom at seven") })
	_, err := e.Run()

	var pe *CallbackPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("terminal error is %T, want *CallbackPanicError", err)
	}
	if pe.Value != "boom at seven" {
		t.Fatalf("recovered value %v, want the panic argument", pe.Value)
	}
	if pe.At != 7 {
		t.Fatalf("At = %d, want 7", pe.At)
	}
	if pe.Executed != 2 {
		t.Fatalf("Executed = %d, want 2 (the panicking event, inclusive)", pe.Executed)
	}
	if !strings.Contains(pe.Stack, "goroutine") {
		t.Fatal("Stack does not look like a captured stack trace")
	}
	if !strings.Contains(pe.Error(), "boom at seven") {
		t.Fatalf("message omits the panic value: %s", pe.Error())
	}
}

// TestEnginePanicFirstErrorWins: a panic after an explicit Fail must not
// displace the recorded terminal error, and vice versa.
func TestEnginePanicFirstErrorWins(t *testing.T) {
	sentinel := errors.New("model failure")
	e := NewEngine()
	e.At(1, func() {
		e.Fail(sentinel)
		panic("panic after fail")
	})
	_, err := e.Run()
	if err != sentinel {
		t.Fatalf("terminal error %v, want the first Fail", err)
	}
}

// TestEnginePanicTerminalAcrossRuns: once a run died to a panic, further
// Run calls return the same error without dispatching anything.
func TestEnginePanicTerminalAcrossRuns(t *testing.T) {
	e := NewEngine()
	e.At(1, func() { panic("dead") })
	e.At(2, func() {})
	_, first := e.Run()
	if first == nil {
		t.Fatal("expected a terminal error")
	}
	ran := false
	e.At(3, func() { ran = true })
	_, again := e.Run()
	if again != first {
		t.Fatalf("re-Run returned %v, want the original terminal error", again)
	}
	if ran {
		t.Fatal("failed engine dispatched new events")
	}
	if err := e.Err(); err != first {
		t.Fatalf("Err() = %v, want the terminal error", err)
	}
}

// TestEngineRunUntilPanicIsolated: the bounded dispatch loop recovers
// panics the same way Run does.
func TestEngineRunUntilPanicIsolated(t *testing.T) {
	e := NewEngine()
	e.At(4, func() { panic("bounded boom") })
	e.At(50, func() {})
	_, err := e.RunUntil(10)
	if !errors.Is(err, ErrCallbackPanic) {
		t.Fatalf("RunUntil error %v, want ErrCallbackPanic", err)
	}
}
