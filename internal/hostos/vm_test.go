package hostos

import (
	"testing"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

func TestTouchCPUTracksPagesAndThreads(t *testing.T) {
	vm := NewVM(DefaultCostModel())
	b := mem.VABlockID(3)
	vm.TouchCPU(b, 0, 0)
	vm.TouchCPU(b, 1, 0)
	vm.TouchCPU(b, 1, 5) // same page, second thread
	if got := vm.CPUMappedPages(b); got != 2 {
		t.Fatalf("CPUMappedPages = %d, want 2", got)
	}
	if got := vm.TouchingThreads(b); got != 2 {
		t.Fatalf("TouchingThreads = %d, want 2", got)
	}
	if vm.CPUMappedPages(mem.VABlockID(9)) != 0 {
		t.Fatal("untouched block reports mapped pages")
	}
}

func TestUnmapMappingRangeCostAndClear(t *testing.T) {
	vm := NewVM(DefaultCostModel())
	b := mem.VABlockID(1)
	for i := 0; i < 100; i++ {
		vm.TouchCPU(b, i, 0)
	}
	cost, n := vm.UnmapMappingRange(b)
	if n != 100 {
		t.Fatalf("unmapped %d pages, want 100", n)
	}
	cm := DefaultCostModel()
	want := cm.UnmapBase + 100*cm.UnmapPerPage
	if cost != want {
		t.Fatalf("single-thread cost = %d, want %d", cost, want)
	}
	// Second unmap is free: mappings are gone.
	cost2, n2 := vm.UnmapMappingRange(b)
	if cost2 != 0 || n2 != 0 {
		t.Fatalf("re-unmap cost = %d/%d, want 0/0", cost2, n2)
	}
	st := vm.Stats()
	if st.UnmapCalls != 1 || st.PagesUnmapped != 100 || st.UnmapTime != want {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnmapMultithreadedAmplification(t *testing.T) {
	// The same mapping touched by many CPU threads must cost more to
	// unmap (TLB shootdowns) — the Figure 11 mechanism.
	single := NewVM(DefaultCostModel())
	multi := NewVM(DefaultCostModel())
	b := mem.VABlockID(0)
	for i := 0; i < 512; i++ {
		single.TouchCPU(b, i, 0)
		multi.TouchCPU(b, i, i%32)
	}
	cs, _ := single.UnmapMappingRange(b)
	cm, _ := multi.UnmapMappingRange(b)
	if cm <= cs {
		t.Fatalf("multithreaded unmap (%d) not costlier than single (%d)", cm, cs)
	}
	ratio := float64(cm) / float64(cs)
	want := 1 + DefaultCostModel().UnmapThreadFactor*31
	if ratio < 0.9*want || ratio > 1.1*want {
		t.Fatalf("32-thread amplification ratio = %.2f, want ~%.2f", ratio, want)
	}
}

func TestPopulateCost(t *testing.T) {
	cmod := DefaultCostModel()
	vm := NewVM(cmod)
	cost, err := vm.Populate(512)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 512*cmod.PopulatePerPage {
		t.Fatalf("populate cost = %d", cost)
	}
	if vm.Stats().PagesPopulated != 512 {
		t.Fatalf("stats pages populated = %d", vm.Stats().PagesPopulated)
	}
}

func TestMapDMAMapsWholeBlock(t *testing.T) {
	vm := NewVM(DefaultCostModel())
	b := mem.VABlockID(7)
	cost := vm.MapDMA(b)
	if cost <= 0 {
		t.Fatal("MapDMA cost not positive")
	}
	for i := 0; i < mem.PagesPerVABlock; i++ {
		if !vm.HasDMA(b.PageAt(i)) {
			t.Fatalf("page %d of block lacks DMA mapping", i)
		}
	}
	if vm.HasDMA(mem.VABlockID(8).PageAt(0)) {
		t.Fatal("unrelated page has DMA mapping")
	}
	if vm.Stats().DMAPagesMapped != mem.PagesPerVABlock {
		t.Fatalf("stats DMA pages = %d", vm.Stats().DMAPagesMapped)
	}
}

func TestMapDMAFirstBlockCostlierThanDense(t *testing.T) {
	// Tree growth makes some MapDMA calls spike (Figure 14): mapping a
	// far-away block after many near ones allocates fresh interior nodes.
	vm := NewVM(DefaultCostModel())
	first := vm.MapDMA(mem.VABlockID(0))
	second := vm.MapDMA(mem.VABlockID(1))
	if first <= second {
		t.Fatalf("first MapDMA (%d) should exceed adjacent second (%d): tree growth", first, second)
	}
	far := vm.MapDMA(mem.VABlockID(1 << 20))
	if far <= second {
		t.Fatalf("far MapDMA (%d) should exceed dense-adjacent (%d)", far, second)
	}
}

func TestStatsAccumulate(t *testing.T) {
	vm := NewVM(DefaultCostModel())
	vm.MapDMA(mem.VABlockID(0))
	vm.Populate(10)
	vm.TouchCPU(mem.VABlockID(0), 0, 0)
	vm.UnmapMappingRange(mem.VABlockID(0))
	st := vm.Stats()
	if st.DMAMapTime <= 0 || st.PopulateTime <= 0 || st.UnmapTime <= 0 {
		t.Fatalf("stats times not accumulated: %+v", st)
	}
	if st.RadixNodes <= 0 {
		t.Fatalf("no radix nodes recorded: %+v", st)
	}
}

func TestUnmapCostScalesWithPages(t *testing.T) {
	vm := NewVM(DefaultCostModel())
	costs := make([]sim.Time, 0, 3)
	for i, n := range []int{10, 100, 500} {
		b := mem.VABlockID(i)
		for p := 0; p < n; p++ {
			vm.TouchCPU(b, p, 0)
		}
		c, _ := vm.UnmapMappingRange(b)
		costs = append(costs, c)
	}
	if !(costs[0] < costs[1] && costs[1] < costs[2]) {
		t.Fatalf("unmap cost not monotone in pages: %v", costs)
	}
}
