package hostos

import (
	"fmt"

	"guvm/internal/faultinject"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// CostModel holds the virtual-time costs of host OS operations on the UVM
// fault path. Defaults are calibrated so the paper's shape results hold
// (see DESIGN.md §5); they are not claimed to match the authors' testbed.
type CostModel struct {
	// UnmapBase is the fixed cost of one unmap_mapping_range() call.
	UnmapBase sim.Time
	// UnmapPerPage is the additional cost per CPU-resident page unmapped
	// (PTE teardown plus dirty-page/cache work).
	UnmapPerPage sim.Time
	// UnmapThreadFactor scales unmap cost with the number of additional
	// CPU threads whose TLBs may cache the mapping: every extra thread
	// adds this fraction of the base+per-page cost (IPI shootdowns,
	// cross-core cache traffic). This is the mechanism behind Figure 11's
	// single- vs multi-threaded HPGMG gap.
	UnmapThreadFactor float64
	// PopulatePerPage is the cost of zero-filling one newly allocated
	// page ("page population" in §5.1).
	PopulatePerPage sim.Time
	// DMAMapPerPage is the cost of creating one page's DMA mapping to
	// the GPU (IOMMU/PTE work, excluding radix-tree bookkeeping).
	DMAMapPerPage sim.Time
	// DMAMapPerNode is the cost per radix-tree node allocated while
	// storing the reverse DMA mapping; tree growth makes first-touch
	// batches intermittently expensive (Figure 14).
	DMAMapPerNode sim.Time
}

// DefaultCostModel returns the calibrated host-OS cost constants.
func DefaultCostModel() CostModel {
	return CostModel{
		UnmapBase:         8 * sim.Microsecond,
		UnmapPerPage:      600 * sim.Nanosecond,
		UnmapThreadFactor: 0.20,
		PopulatePerPage:   250 * sim.Nanosecond,
		DMAMapPerPage:     250 * sim.Nanosecond,
		DMAMapPerNode:     1200 * sim.Nanosecond,
	}
}

// Stats aggregates host-OS work performed, for EXPERIMENTS.md reporting.
type Stats struct {
	UnmapCalls     int
	PagesUnmapped  int
	PagesPopulated int
	DMAPagesMapped int
	RadixNodes     int
	// PopulateFailures counts Populate calls that failed by injection.
	PopulateFailures int
	UnmapTime        sim.Time
	PopulateTime     sim.Time
	DMAMapTime       sim.Time
}

type blockMapping struct {
	pages   mem.PageSet // pages with live CPU PTEs
	threads uint64      // bitmask of CPU threads that touched the mapping
}

// VM models the host virtual-memory subsystem for one process: which pages
// hold live CPU mappings, which CPU threads touched them, and the radix
// tree of reverse DMA mappings. All methods return the virtual-time cost
// of the operation; the caller (the UVM driver model) advances the clock.
type VM struct {
	cost CostModel
	// mapped is the per-VABlock CPU-mapping directory — a sparse
	// two-level structure rather than a map, for the same reason as the
	// driver's block directory: CPUMappedPages sits on every block's
	// service path and must stay an array probe at GB-scale VA spans.
	mapped  mem.BlockDir[*blockMapping]
	dma     RadixTree
	dmaNext uint64
	stats   Stats
	inj     *faultinject.Injector
}

// NewVM returns a host VM model using the given cost constants.
func NewVM(cost CostModel) *VM {
	return &VM{cost: cost}
}

// Stats returns a copy of the accumulated host-OS statistics.
func (vm *VM) Stats() Stats { return vm.stats }

// SetInjector attaches a fault injector. A nil injector (the default)
// disables injection.
func (vm *VM) SetInjector(in *faultinject.Injector) { vm.inj = in }

// TouchCPU records that CPU thread `thread` wrote page index pageIdx of
// block: a host PTE now exists, so a later GPU fault in the block must pay
// unmap_mapping_range. This models application host-side initialization
// (e.g. OpenMP-parallel data init in HPGMG).
func (vm *VM) TouchCPU(block mem.VABlockID, pageIdx, thread int) {
	bm := vm.mapped.Lookup(block)
	if bm == nil {
		bm = &blockMapping{}
		vm.mapped.Set(block, bm)
	}
	bm.pages.Set(pageIdx)
	bm.threads |= 1 << (uint(thread) & 63)
}

// CPUMappedPages returns how many pages of block hold live CPU mappings.
func (vm *VM) CPUMappedPages(block mem.VABlockID) int {
	if bm := vm.mapped.Lookup(block); bm != nil {
		return bm.pages.Count()
	}
	return 0
}

// TouchingThreads returns how many distinct CPU threads touched block.
func (vm *VM) TouchingThreads(block mem.VABlockID) int {
	if bm := vm.mapped.Lookup(block); bm != nil {
		n := 0
		for m := bm.threads; m != 0; m &= m - 1 {
			n++
		}
		return n
	}
	return 0
}

// UnmapMappingRange tears down all live CPU mappings within block, as the
// driver does when the GPU touches a VABlock partially resident on the
// host. It returns the virtual-time cost and the number of pages unmapped;
// a block with no live mappings costs nothing (the paper's Figure 13
// "lower level": a block evicted and re-fetched pays no unmap).
func (vm *VM) UnmapMappingRange(block mem.VABlockID) (cost sim.Time, unmapped int) {
	bm := vm.mapped.Lookup(block)
	if bm == nil || !bm.pages.Any() {
		return 0, 0
	}
	unmapped = bm.pages.Count()
	threads := vm.TouchingThreads(block)
	base := vm.cost.UnmapBase + sim.Time(unmapped)*vm.cost.UnmapPerPage
	scale := 1 + vm.cost.UnmapThreadFactor*float64(threads-1)
	cost = sim.Time(float64(base) * scale)
	bm.pages.Reset()
	bm.threads = 0
	vm.stats.UnmapCalls++
	vm.stats.PagesUnmapped += unmapped
	vm.stats.UnmapTime += cost
	return cost, unmapped
}

// Populate allocates and zero-fills n pages, returning the virtual-time
// cost. With fault injection enabled the allocation can fail with an
// error wrapping ErrAllocFailed; the caller is expected to shed memory
// pressure (evict, shrink batches) and retry.
func (vm *VM) Populate(n int) (sim.Time, error) {
	if vm.inj.HostAllocFails() {
		vm.stats.PopulateFailures++
		return 0, fmt.Errorf("hostos: populating %d pages: %w", n, ErrAllocFailed)
	}
	cost := sim.Time(n) * vm.cost.PopulatePerPage
	vm.stats.PagesPopulated += n
	vm.stats.PopulateTime += cost
	return cost, nil
}

// MapDMA creates DMA mappings for every page of block and stores the
// reverse mappings in the radix tree, returning the total cost. The driver
// performs this for the whole 2 MB region on first GPU touch (§5.2).
func (vm *VM) MapDMA(block mem.VABlockID) sim.Time {
	var cost sim.Time
	first := uint64(block.FirstPage())
	for i := 0; i < mem.PagesPerVABlock; i++ {
		vm.dmaNext += mem.PageSize
		newNodes := vm.dma.Insert(first+uint64(i), vm.dmaNext)
		cost += vm.cost.DMAMapPerPage + sim.Time(newNodes)*vm.cost.DMAMapPerNode
		vm.stats.RadixNodes += newNodes
	}
	vm.stats.DMAPagesMapped += mem.PagesPerVABlock
	vm.stats.DMAMapTime += cost
	return cost
}

// HasDMA reports whether page p has a live DMA mapping.
func (vm *VM) HasDMA(p mem.PageID) bool {
	_, ok := vm.dma.Lookup(uint64(p))
	return ok
}

// DMATreeNodes returns the current radix-tree node count.
func (vm *VM) DMATreeNodes() int { return vm.dma.Nodes() }
