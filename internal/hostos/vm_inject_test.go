package hostos

import (
	"errors"
	"testing"

	"guvm/internal/faultinject"
)

func TestPopulateInjectedFailure(t *testing.T) {
	cfg := faultinject.DefaultConfig()
	cfg.HostAllocFailRate = 1.0
	in, err := faultinject.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(DefaultCostModel())
	vm.SetInjector(in)
	cost, err := vm.Populate(64)
	if !errors.Is(err, ErrAllocFailed) {
		t.Fatalf("err = %v, want ErrAllocFailed", err)
	}
	if cost != 0 {
		t.Fatalf("failed populate charged %d ns", cost)
	}
	st := vm.Stats()
	if st.PopulateFailures != 1 || st.PagesPopulated != 0 {
		t.Fatalf("stats after failure = %+v", st)
	}
	if in.Stats().HostAlloc.Injected != 1 {
		t.Fatalf("injector counters = %+v", in.Stats().HostAlloc)
	}
}

func TestPopulateNilInjectorNeverFails(t *testing.T) {
	vm := NewVM(DefaultCostModel())
	for i := 0; i < 100; i++ {
		if _, err := vm.Populate(10); err != nil {
			t.Fatalf("uninjected populate failed: %v", err)
		}
	}
}
