package hostos

import (
	"fmt"
	"strings"

	"guvm/internal/digest"
	"guvm/internal/mem"
)

// MappingAudit is the audit view of one VABlock's live CPU mappings.
type MappingAudit struct {
	Block mem.VABlockID
	// Pages marks the pages holding live CPU PTEs.
	Pages mem.PageSet
	// Threads is the bitmask of CPU threads that touched the mapping.
	Threads uint64
}

// AuditState is the canonical snapshot of the host VM model: every block
// with live CPU mappings (ascending block order), the radix-tree shape,
// and the accumulated statistics.
type AuditState struct {
	Mappings   []MappingAudit
	RadixNodes int
	DMANext    uint64
	Stats      Stats
}

// MappedPages returns a copy of the live-CPU-mapping page set of block.
func (vm *VM) MappedPages(block mem.VABlockID) mem.PageSet {
	if bm := vm.mapped.Lookup(block); bm != nil {
		return bm.pages
	}
	return mem.PageSet{}
}

// AuditState captures the canonical state of the host VM for auditing.
func (vm *VM) AuditState() AuditState {
	st := AuditState{
		RadixNodes: vm.dma.Nodes(),
		DMANext:    vm.dmaNext,
		Stats:      vm.stats,
	}
	// BlockDir ranges in ascending block order — the canonical order the
	// former sorted-keys walk produced. Blocks whose mappings were fully
	// torn down stay in the directory but are skipped, as before.
	vm.mapped.Range(func(b mem.VABlockID, bm *blockMapping) bool {
		if bm.pages.Any() {
			st.Mappings = append(st.Mappings, MappingAudit{
				Block:   b,
				Pages:   bm.pages,
				Threads: bm.threads,
			})
		}
		return true
	})
	return st
}

// Digest returns the FNV-1a digest of the canonical host VM state. Two
// runs of the same configuration must produce identical digests at every
// batch boundary.
func (vm *VM) Digest() uint64 {
	st := vm.AuditState()
	h := digest.New()
	h = h.Int(len(st.Mappings))
	for i := range st.Mappings {
		m := &st.Mappings[i]
		h = h.Uint64(uint64(m.Block))
		h = h.Words(m.Pages[:])
		h = h.Uint64(m.Threads)
	}
	h = h.Int(st.RadixNodes)
	h = h.Uint64(st.DMANext)
	s := st.Stats
	h = h.Int(s.UnmapCalls).Int(s.PagesUnmapped).Int(s.PagesPopulated)
	h = h.Int(s.DMAPagesMapped).Int(s.RadixNodes).Int(s.PopulateFailures)
	h = h.Int64(int64(s.UnmapTime)).Int64(int64(s.PopulateTime)).Int64(int64(s.DMAMapTime))
	return h.Sum()
}

// Dump renders the audit state for divergence diagnostics.
func (st AuditState) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostos: %d mapped blocks, %d radix nodes, stats %+v\n",
		len(st.Mappings), st.RadixNodes, st.Stats)
	for i := range st.Mappings {
		m := &st.Mappings[i]
		fmt.Fprintf(&b, "  block %d: %d CPU-mapped pages, threads %#x\n",
			m.Block, m.Pages.Count(), m.Threads)
	}
	return b.String()
}
