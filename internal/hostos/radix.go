// Package hostos models the host operating system components that sit on
// the UVM fault path: the virtual-memory subsystem whose
// unmap_mapping_range() the driver invokes when the GPU touches a VABlock
// partially resident on the CPU, page population (zero-filling), and the
// radix tree in which the driver stores reverse DMA address mappings.
//
// The paper (§4.4, §5.2) identifies these host components as significant,
// cross-implementation costs: they will be paid by any HMM backend, not
// just NVIDIA's driver. We therefore model them as a separate substrate
// with their own cost accounting.
package hostos

// Radix tree parameters mirroring the mainline Linux implementation
// (RADIX_TREE_MAP_SHIFT = 6 on 64-bit kernels).
const (
	radixShift  = 6
	radixFanout = 1 << radixShift // 64 slots per node
	radixMask   = radixFanout - 1
)

type radixNode struct {
	slots  [radixFanout]any // child *radixNode or leaf value
	count  int              // occupied slots
	offset int              // slot index in parent (for delete path)
	parent *radixNode
}

// RadixTree is a Linux-style radix tree keyed by uint64 (page indices in
// the driver's usage) storing uint64 values (DMA addresses). The driver
// charges time per node allocated, so Insert reports allocations.
//
// The zero value is an empty tree.
type RadixTree struct {
	root   *radixNode
	height int // number of levels; key space covered = 64^height
	size   int
	nodes  int // live node count, for diagnostics and cost modeling
}

// Size returns the number of stored keys.
func (t *RadixTree) Size() int { return t.size }

// Nodes returns the number of live interior/leaf nodes.
func (t *RadixTree) Nodes() int { return t.nodes }

// Height returns the current tree height in levels.
func (t *RadixTree) Height() int { return t.height }

// maxKey returns the largest key representable at the current height.
func (t *RadixTree) maxKey() uint64 {
	if t.height == 0 {
		return 0
	}
	if t.height*radixShift >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(t.height*radixShift)) - 1
}

// Insert stores value under key, replacing any previous value. It returns
// the number of radix nodes newly allocated, which the UVM driver model
// converts into DMA-mapping setup time (the Figure 14 "GPU state
// initialization" cost is dominated by this radix-tree work).
func (t *RadixTree) Insert(key, value uint64) (newNodes int) {
	// Grow the tree until the key fits.
	if t.root == nil {
		t.root = &radixNode{}
		t.nodes++
		newNodes++
		t.height = 1
	}
	for key > t.maxKey() {
		newRoot := &radixNode{}
		t.nodes++
		newNodes++
		newRoot.slots[0] = t.root
		newRoot.count = 1
		t.root.parent = newRoot
		t.root.offset = 0
		t.root = newRoot
		t.height++
	}
	n := t.root
	for level := t.height - 1; level > 0; level-- {
		idx := int(key>>(uint(level)*radixShift)) & radixMask
		child, ok := n.slots[idx].(*radixNode)
		if !ok {
			if n.slots[idx] == nil {
				n.count++
			}
			child = &radixNode{parent: n, offset: idx}
			t.nodes++
			newNodes++
			n.slots[idx] = child
		}
		n = child
	}
	idx := int(key) & radixMask
	if n.slots[idx] == nil {
		n.count++
		t.size++
	}
	n.slots[idx] = value
	return newNodes
}

// Lookup returns the value stored under key, if any.
func (t *RadixTree) Lookup(key uint64) (uint64, bool) {
	if t.root == nil || key > t.maxKey() {
		return 0, false
	}
	n := t.root
	for level := t.height - 1; level > 0; level-- {
		idx := int(key>>(uint(level)*radixShift)) & radixMask
		child, ok := n.slots[idx].(*radixNode)
		if !ok {
			return 0, false
		}
		n = child
	}
	v, ok := n.slots[int(key)&radixMask].(uint64)
	return v, ok
}

// Delete removes key and returns whether it was present. Empty nodes are
// freed bottom-up, as the kernel does.
func (t *RadixTree) Delete(key uint64) bool {
	if t.root == nil || key > t.maxKey() {
		return false
	}
	n := t.root
	for level := t.height - 1; level > 0; level-- {
		idx := int(key>>(uint(level)*radixShift)) & radixMask
		child, ok := n.slots[idx].(*radixNode)
		if !ok {
			return false
		}
		n = child
	}
	idx := int(key) & radixMask
	if _, ok := n.slots[idx].(uint64); !ok {
		return false
	}
	n.slots[idx] = nil
	n.count--
	t.size--
	// Free empty nodes up the spine.
	for n != nil && n.count == 0 && n != t.root {
		parent := n.parent
		parent.slots[n.offset] = nil
		parent.count--
		t.nodes--
		n = parent
	}
	if t.size == 0 && t.root != nil {
		t.root = nil
		t.nodes = 0
		t.height = 0
	}
	return true
}
