package hostos

import "errors"

// ErrAllocFailed is the sentinel matched by errors.Is when a host page
// allocation (population) request fails — in the model, only via fault
// injection. The UVM driver reacts by degrading gracefully (shrinking its
// batch, forcing eviction pressure) and retrying rather than aborting.
var ErrAllocFailed = errors.New("hostos: page allocation failed")
