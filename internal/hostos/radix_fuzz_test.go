package hostos

import (
	"encoding/binary"
	"testing"
)

// FuzzRadixTree drives the radix tree through an arbitrary op sequence and
// cross-checks it against a map oracle, asserting the structural
// invariants (size, node count, height/keyspace consistency) that the
// driver's DMA-mapping cost model and the new error paths rely on.
//
// The input encodes operations as 9-byte records: 1 op byte (insert /
// lookup / delete, mod 3) followed by an 8-byte little-endian key. Keys
// are folded into a few density classes so inserts actually collide with
// deletes instead of scattering across the 64-bit space.
func FuzzRadixTree(f *testing.F) {
	rec := func(op byte, key uint64) []byte {
		b := make([]byte, 9)
		b[0] = op
		binary.LittleEndian.PutUint64(b[1:], key)
		return b
	}
	cat := func(rs ...[]byte) []byte {
		var out []byte
		for _, r := range rs {
			out = append(out, r...)
		}
		return out
	}
	// Seed corpus: the shapes that exercise every structural transition.
	f.Add(cat(rec(0, 0)))                                        // single key 0
	f.Add(cat(rec(0, 0), rec(2, 0)))                             // insert then delete to empty
	f.Add(cat(rec(0, 5), rec(0, 5)))                             // overwrite same key
	f.Add(cat(rec(0, 1), rec(0, 1<<30)))                         // forces root growth
	f.Add(cat(rec(0, 1<<62), rec(1, 1<<62), rec(2, 1<<62)))      // near max height
	f.Add(cat(rec(0, 63), rec(0, 64), rec(2, 63), rec(1, 64)))   // node-boundary keys
	f.Add(cat(rec(0, 7), rec(0, 7+64), rec(2, 7), rec(2, 7+64))) // free spine bottom-up
	f.Add(cat(rec(1, 99), rec(2, 99)))                           // lookup/delete on empty tree

	f.Fuzz(func(t *testing.T, data []byte) {
		var tree RadixTree
		oracle := make(map[uint64]uint64)
		var nextVal uint64
		for len(data) >= 9 {
			op := data[0] % 3
			key := binary.LittleEndian.Uint64(data[1:9])
			// Fold most keys into a dense window so ops collide; keep
			// every 4th key raw to still probe tree growth.
			if key%4 != 0 {
				key %= 4096
			}
			data = data[9:]
			switch op {
			case 0:
				nextVal++
				newNodes := tree.Insert(key, nextVal)
				if newNodes < 0 {
					t.Fatalf("Insert(%d) allocated %d nodes", key, newNodes)
				}
				oracle[key] = nextVal
			case 1:
				v, ok := tree.Lookup(key)
				wantV, wantOK := oracle[key]
				if ok != wantOK || (ok && v != wantV) {
					t.Fatalf("Lookup(%d) = %d,%v; oracle %d,%v", key, v, ok, wantV, wantOK)
				}
			case 2:
				ok := tree.Delete(key)
				_, wantOK := oracle[key]
				if ok != wantOK {
					t.Fatalf("Delete(%d) = %v, oracle has key: %v", key, ok, wantOK)
				}
				delete(oracle, key)
			}
			// Structural invariants after every op.
			if tree.Size() != len(oracle) {
				t.Fatalf("Size = %d, oracle holds %d", tree.Size(), len(oracle))
			}
			if tree.Size() == 0 && tree.Nodes() != 0 {
				t.Fatalf("empty tree retains %d nodes", tree.Nodes())
			}
			if tree.Size() > 0 && tree.Nodes() < tree.Height() {
				t.Fatalf("nodes (%d) < height (%d): broken spine", tree.Nodes(), tree.Height())
			}
		}
		// Final sweep: every oracle key must still resolve.
		for k, want := range oracle {
			if v, ok := tree.Lookup(k); !ok || v != want {
				t.Fatalf("post-run Lookup(%d) = %d,%v, want %d,true", k, v, ok, want)
			}
		}
	})
}
