package hostos

import (
	"testing"
	"testing/quick"
)

func TestRadixInsertLookup(t *testing.T) {
	var tr RadixTree
	keys := []uint64{0, 1, 63, 64, 4095, 4096, 1 << 20, 1 << 40, ^uint64(0)}
	for i, k := range keys {
		tr.Insert(k, uint64(i)*10)
	}
	if tr.Size() != len(keys) {
		t.Fatalf("size = %d, want %d", tr.Size(), len(keys))
	}
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != uint64(i)*10 {
			t.Fatalf("Lookup(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Lookup(2); ok {
		t.Fatal("found absent key")
	}
}

func TestRadixReplace(t *testing.T) {
	var tr RadixTree
	tr.Insert(100, 1)
	n := tr.Insert(100, 2)
	if n != 0 {
		t.Fatalf("replacing insert allocated %d nodes", n)
	}
	if tr.Size() != 1 {
		t.Fatalf("size = %d after replace", tr.Size())
	}
	v, _ := tr.Lookup(100)
	if v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestRadixGrowthAllocatesNodes(t *testing.T) {
	var tr RadixTree
	n1 := tr.Insert(0, 1) // root only
	if n1 != 1 {
		t.Fatalf("first insert allocated %d nodes, want 1", n1)
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	// Key 64 forces a second level.
	n2 := tr.Insert(64, 2)
	if n2 < 2 { // new root + leaf node for slot 1
		t.Fatalf("growth insert allocated %d nodes, want >= 2", n2)
	}
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2", tr.Height())
	}
	// Both keys still reachable after growth.
	if v, ok := tr.Lookup(0); !ok || v != 1 {
		t.Fatal("key 0 lost after growth")
	}
	if v, ok := tr.Lookup(64); !ok || v != 2 {
		t.Fatal("key 64 missing")
	}
}

func TestRadixDenseInsertAmortizesNodes(t *testing.T) {
	var tr RadixTree
	total := 0
	for i := uint64(0); i < 4096; i++ {
		total += tr.Insert(i, i)
	}
	// 4096 keys over fanout-64 leaves: 64 leaf nodes + interior; far
	// fewer nodes than keys — dense DMA mappings amortize tree work.
	if total >= 200 {
		t.Fatalf("dense insert allocated %d nodes, want < 200", total)
	}
	if tr.Size() != 4096 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestRadixDelete(t *testing.T) {
	var tr RadixTree
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i*1000, i)
	}
	if !tr.Delete(5000) {
		t.Fatal("Delete existing returned false")
	}
	if tr.Delete(5000) {
		t.Fatal("double Delete returned true")
	}
	if _, ok := tr.Lookup(5000); ok {
		t.Fatal("deleted key still present")
	}
	if tr.Size() != 99 {
		t.Fatalf("size = %d, want 99", tr.Size())
	}
	for i := uint64(0); i < 100; i++ {
		if i == 5 {
			continue
		}
		if v, ok := tr.Lookup(i * 1000); !ok || v != i {
			t.Fatalf("key %d lost after unrelated delete", i*1000)
		}
	}
}

func TestRadixDeleteAllFreesTree(t *testing.T) {
	var tr RadixTree
	for i := uint64(0); i < 500; i++ {
		tr.Insert(i*77, i)
	}
	for i := uint64(0); i < 500; i++ {
		if !tr.Delete(i * 77) {
			t.Fatalf("Delete(%d) failed", i*77)
		}
	}
	if tr.Size() != 0 || tr.Nodes() != 0 || tr.Height() != 0 {
		t.Fatalf("tree not freed: size=%d nodes=%d height=%d",
			tr.Size(), tr.Nodes(), tr.Height())
	}
}

func TestRadixDeleteAbsent(t *testing.T) {
	var tr RadixTree
	if tr.Delete(1) {
		t.Fatal("Delete on empty tree returned true")
	}
	tr.Insert(1, 1)
	if tr.Delete(1 << 30) {
		t.Fatal("Delete of out-of-range key returned true")
	}
}

// Property: tree behaves like a map for any insert/delete sequence.
func TestRadixMatchesMap(t *testing.T) {
	type op struct {
		Key    uint16
		Val    uint64
		Delete bool
	}
	f := func(ops []op) bool {
		var tr RadixTree
		ref := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key)
			if o.Delete {
				want := false
				if _, ok := ref[k]; ok {
					want = true
					delete(ref, k)
				}
				if tr.Delete(k) != want {
					return false
				}
			} else {
				tr.Insert(k, o.Val)
				ref[k] = o.Val
			}
		}
		if tr.Size() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: node count never goes negative and size tracks inserts minus
// deletes exactly.
func TestRadixNodeAccounting(t *testing.T) {
	f := func(keys []uint32) bool {
		var tr RadixTree
		seen := map[uint64]bool{}
		for _, k := range keys {
			tr.Insert(uint64(k), 1)
			seen[uint64(k)] = true
			if tr.Nodes() < 0 || tr.Size() != len(seen) {
				return false
			}
		}
		for k := range seen {
			tr.Delete(k)
			if tr.Nodes() < 0 {
				return false
			}
		}
		return tr.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
