package obs

// flags.go — the shared CLI flag surface of the obs layer. Every CLI in
// cmd/ registers the same five flags through RegisterFlags, so the flag
// names, defaults and help text cannot drift between tools (they had:
// faultviz lacked -metrics-addr and sweepd lacked -trace-out before this
// helper). The artifact-writing tails of the CLIs are shared here too.

import (
	"flag"
	"os"
)

// Flags holds the parsed common observability flags.
type Flags struct {
	// TraceOut writes a Chrome trace_event JSON of recorded spans.
	TraceOut string
	// MetricsCSV/MetricsJSON write the sampled metric time series.
	MetricsCSV  string
	MetricsJSON string
	// MetricsInterval samples every Nth batch (or sweep point / harness
	// unit for the wall-clock CLIs).
	MetricsInterval int
	// MetricsAddr serves the live endpoints (/metrics, /status, pprof).
	MetricsAddr string
}

// RegisterFlags registers the shared obs flag set on fs and returns the
// destination struct (read after fs.Parse).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write a Chrome trace_event JSON of recorded spans to this file")
	fs.StringVar(&f.MetricsCSV, "metrics-csv", "",
		"write the sampled metric time series as CSV to this file")
	fs.StringVar(&f.MetricsJSON, "metrics-json", "",
		"write the sampled metric time series as JSON to this file")
	fs.IntVar(&f.MetricsInterval, "metrics-interval", 1,
		"sample metrics every Nth batch/point (with -metrics-csv/-metrics-json/-metrics-addr)")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve live /metrics, /status and pprof on this address (e.g. 127.0.0.1:9090; port 0 picks one)")
	return f
}

// SamplingRequested reports whether any flag needs the metrics sampler
// or registry publishing.
func (f *Flags) SamplingRequested() bool {
	return f.MetricsCSV != "" || f.MetricsJSON != "" || f.MetricsAddr != ""
}

// SeriesRequested reports whether a sampled time-series file was asked
// for (CSV or JSON).
func (f *Flags) SeriesRequested() bool {
	return f.MetricsCSV != "" || f.MetricsJSON != ""
}

// SampleEvery returns the sampling interval clamped to at least 1, so a
// stray -metrics-interval 0 cannot disable a sampler the other flags
// asked for.
func (f *Flags) SampleEvery() int {
	if f.MetricsInterval < 1 {
		return 1
	}
	return f.MetricsInterval
}

// Apply folds the flags into an obs simulation config: -trace-out turns
// on span tracing, and any metrics output enables sampling at the
// configured interval.
func (f *Flags) Apply(cfg *Config) {
	if f.TraceOut != "" {
		cfg.Trace = true
	}
	if f.SamplingRequested() {
		cfg.SampleInterval = f.SampleEvery()
	}
}

// WriteArtifacts writes whichever outputs the flags requested from the
// given tracer and sampler (either may be nil when its flag is unset).
// logf, when non-nil, receives one progress line per file written —
// CLIs pass fmt.Printf so the messages land on stdout as before.
func (f *Flags) WriteArtifacts(tr *Tracer, sm *Sampler, logf func(format string, args ...any) (int, error)) error {
	if logf == nil {
		logf = func(string, ...any) (int, error) { return 0, nil }
	}
	if f.TraceOut != "" {
		if err := writeTo(f.TraceOut, func(w *os.File) error {
			return WriteChromeTrace(w, tr)
		}); err != nil {
			return err
		}
		logf("wrote %d trace spans to %s\n", len(tr.Spans()), f.TraceOut)
	}
	if f.MetricsCSV != "" {
		if err := writeTo(f.MetricsCSV, func(w *os.File) error {
			return sm.WriteCSV(w)
		}); err != nil {
			return err
		}
		logf("wrote %d metric samples to %s\n", len(sm.Rows()), f.MetricsCSV)
	}
	if f.MetricsJSON != "" {
		if err := writeTo(f.MetricsJSON, func(w *os.File) error {
			return sm.WriteJSON(w)
		}); err != nil {
			return err
		}
		logf("wrote %d metric samples to %s\n", len(sm.Rows()), f.MetricsJSON)
	}
	return nil
}

// ProfileFlags holds the simulator CLIs' profiler flags (-profile,
// -profile-dir). Harness CLIs (uvmsweep, paperfigs, sweepd) do not run a
// single simulation, so they skip these.
type ProfileFlags struct {
	// Profile enables the fault-lifecycle attribution profiler; the
	// breakdown table prints to stdout after the run.
	Profile bool
	// ProfileDir additionally writes breakdown.csv, lifecycle.csv,
	// batches.csv and heat.csv into the directory (implies -profile).
	ProfileDir string
}

// RegisterProfileFlags registers the profiler flag pair on fs.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.BoolVar(&p.Profile, "profile", false,
		"attach the fault-lifecycle profiler and print the batch-time breakdown after the run")
	fs.StringVar(&p.ProfileDir, "profile-dir", "",
		"write profiler artifacts (breakdown/lifecycle/batches/heat CSVs) into this directory (implies -profile)")
	return p
}

// Enabled reports whether the profiler was requested.
func (p *ProfileFlags) Enabled() bool { return p.Profile || p.ProfileDir != "" }

// Apply folds the flags into an obs simulation config.
func (p *ProfileFlags) Apply(cfg *Config) {
	if p.Enabled() {
		cfg.Profile = true
	}
}

// profileArtifacts maps the artifact file names written into
// -profile-dir to their writers.
var profileArtifacts = []struct {
	name  string
	write func(*Profiler, *os.File) error
}{
	{"breakdown.csv", func(p *Profiler, w *os.File) error { return p.WriteBreakdownCSV(w) }},
	{"lifecycle.csv", func(p *Profiler, w *os.File) error { return p.WriteLifecycleCSV(w) }},
	{"batches.csv", func(p *Profiler, w *os.File) error { return p.WriteBatchesCSV(w) }},
	{"heat.csv", func(p *Profiler, w *os.File) error { return p.WriteHeatCSV(w) }},
}

// WriteArtifacts writes the profiler CSV set into ProfileDir (creating
// it), if one was requested. logf as in Flags.WriteArtifacts.
func (p *ProfileFlags) WriteArtifacts(prof *Profiler, logf func(format string, args ...any) (int, error)) error {
	if p.ProfileDir == "" || prof == nil {
		return nil
	}
	if logf == nil {
		logf = func(string, ...any) (int, error) { return 0, nil }
	}
	if err := os.MkdirAll(p.ProfileDir, 0o755); err != nil {
		return err
	}
	for _, a := range profileArtifacts {
		path := p.ProfileDir + string(os.PathSeparator) + a.name
		if err := writeTo(path, func(w *os.File) error { return a.write(prof, w) }); err != nil {
			return err
		}
		logf("wrote profile artifact %s\n", path)
	}
	return nil
}

// writeTo creates path, runs fn, and closes — surfacing the first error
// (including Close, which reports delayed write failures).
func writeTo(path string, fn func(*os.File) error) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
