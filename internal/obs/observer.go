package obs

import (
	"encoding/json"
	"sync/atomic"

	"guvm/internal/sim"
	"guvm/internal/trace"
)

// Config enables and tunes the observability layer. The zero value
// attaches nothing and leaves the simulation entirely uninstrumented.
type Config struct {
	// Trace collects sim-time phase spans for Chrome trace export.
	Trace bool
	// EngineEvents additionally marks every engine dispatch in the trace
	// (capped at Tracer.EngineEventCap; requires Trace).
	EngineEvents bool
	// SampleInterval samples the metrics registry every N batches into
	// the time series (0 disables sampling).
	SampleInterval int
	// Profile attaches the fault-lifecycle attribution profiler
	// (profiler.go): per-stage latency histograms, batch critical paths,
	// and per-VABlock heat accounting. Combines with Trace (block-step
	// spans) and SampleInterval (stage totals in the time series).
	Profile bool
}

// Active reports whether an observer should be attached at all.
func (c Config) Active() bool { return c.Trace || c.SampleInterval > 0 || c.Profile }

// Observer bundles one simulation's observability state: the span tracer,
// the metrics registry, and the sim-time sampler. All observation happens
// at batch boundaries on the simulation goroutine; HTTP handlers read
// only atomically published renderings.
//
// A nil *Observer is valid and observes nothing.
type Observer struct {
	cfg Config

	Tracer   *Tracer
	Registry *Registry
	Sampler  *Sampler
	// Profiler is the fault-lifecycle attribution profiler (nil unless
	// Config.Profile); guvm attaches it to the driver's profiler seam.
	Profiler *Profiler

	batchDur *Metric // histogram of batch durations in microseconds

	// statusFn builds the /status payload; evaluated at publish points on
	// the simulation goroutine. statusJSON holds its last rendering.
	statusFn   func() any
	statusJSON atomic.Pointer[[]byte]
}

// New builds an observer for one simulation.
func New(cfg Config) *Observer {
	o := &Observer{cfg: cfg, Registry: NewRegistry()}
	if cfg.Trace {
		o.Tracer = NewTracer()
	}
	if cfg.SampleInterval > 0 {
		o.Sampler = NewSampler(o.Registry, cfg.SampleInterval)
	}
	if cfg.Profile {
		o.Profiler = NewProfiler(o.Tracer, o.Registry)
	}
	o.batchDur = o.Registry.Histogram("guvm_batch_duration_us",
		"Fault-batch service duration in virtual microseconds",
		[]float64{50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000})
	return o
}

// Config returns the observer's configuration (zero value on nil).
func (o *Observer) Config() Config {
	if o == nil {
		return Config{}
	}
	return o.cfg
}

// SetBatchSetupCost anchors the phase decomposition (the batch record
// carries every phase timer except the fixed batch-open cost).
func (o *Observer) SetBatchSetupCost(t sim.Time) {
	if o != nil && o.Tracer != nil {
		o.Tracer.BatchSetup = t
	}
}

// SetStatusFunc registers the /status payload builder, evaluated at every
// publish point on the simulation goroutine.
func (o *Observer) SetStatusFunc(fn func() any) {
	if o != nil {
		o.statusFn = fn
	}
}

// OnBatch observes one completed batch: derive its spans, feed the batch
// histogram, and sample/publish on the configured interval. Called on the
// simulation goroutine from the driver's batch-observer hook.
func (o *Observer) OnBatch(id int, rec *trace.BatchRecord) {
	if o == nil {
		return
	}
	o.Tracer.AddBatch(rec)
	o.batchDur.Observe(rec.Duration().Micros())
	if o.Sampler != nil && id%o.Sampler.Interval == 0 {
		o.Sampler.Sample(rec.End, id)
		o.Publish()
	}
}

// OnKernel records one completed GPU kernel phase in the trace.
func (o *Observer) OnKernel(phase int, start, dur sim.Time) {
	if o == nil {
		return
	}
	o.Tracer.AddKernel(phase, start, dur)
}

// NoteEvent marks one engine dispatch in the trace (opt-in, capped).
func (o *Observer) NoteEvent(at sim.Time) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.AddInstant("dispatch", at)
}

// Publish renders the registry and status payload for concurrent readers
// (the live HTTP endpoints). Simulation goroutine only.
func (o *Observer) Publish() {
	if o == nil {
		return
	}
	o.Registry.Publish()
	if o.statusFn != nil {
		if b, err := json.Marshal(o.statusFn()); err == nil {
			o.statusJSON.Store(&b)
		}
	}
}

// Status returns the last published /status JSON (nil if never
// published). Safe from any goroutine.
func (o *Observer) Status() []byte {
	if o == nil {
		return nil
	}
	if p := o.statusJSON.Load(); p != nil {
		return *p
	}
	return nil
}
