package obs

import (
	"fmt"
	"io"
	"sort"

	"guvm/internal/sim"
)

// WriteChromeTrace renders the tracer's spans as Chrome trace_event JSON
// (the JSON Object Format), loadable in chrome://tracing and Perfetto.
// Timestamps are microseconds with nanosecond precision (three decimals),
// matching the engine's integer-nanosecond clock exactly.
//
// The output is deterministic: spans render in (lane, start, insertion)
// order with fixed formatting, so identical simulations produce
// byte-identical traces (the vecadd golden-file test pins this).
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := append([]Span(nil), t.Spans()...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Lane != spans[j].Lane {
			return spans[i].Lane < spans[j].Lane
		}
		return spans[i].Start < spans[j].Start
	})

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	// Process/thread name metadata so Perfetto labels the lanes.
	if err := emit(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"guvm"}}`); err != nil {
		return err
	}
	names := LaneNames
	if t.Lanes != nil {
		names = t.Lanes
	}
	lanes := make([]int, 0, len(names))
	for lane := range names {
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)
	for _, lane := range lanes {
		if err := emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`,
			lane, names[lane]); err != nil {
			return err
		}
	}

	for i := range spans {
		s := &spans[i]
		if err := emit(`{"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"cat":"%s","name":"%s","args":{"batch":%d}}`,
			s.Lane, microString(s.Start), microString(s.Dur), s.Cat, s.Name, s.Batch); err != nil {
			return err
		}
	}
	for _, in := range t.Instants() {
		if err := emit(`{"ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","name":"%s"}`,
			LaneEngine, microString(in.At), in.Name); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// microString formats an integer-nanosecond time as microseconds with
// exactly three decimals — deterministic, no floating point involved.
func microString(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, t/1000, t%1000)
}
