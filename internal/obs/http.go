package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DefaultShutdownTimeout bounds how long Close waits for in-flight
// requests before falling back to a hard close.
const DefaultShutdownTimeout = 5 * time.Second

// Server is the opt-in live inspection endpoint: Prometheus-format
// /metrics, a JSON /status (alias /progress), and net/http/pprof for
// profiling the harness process itself. Handlers only read atomically
// published snapshots, so serving never races (or perturbs) the
// simulation goroutine.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves o's published state in
// a background goroutine until Close or Shutdown. Additional subsystems
// (the sweepd service, for one) mount their handlers on the same mux by
// passing mount callbacks; each runs once against the mux before the
// server starts.
func Serve(addr string, o *Observer, mounts ...func(*http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		b := o.Registry.Published()
		if b == nil {
			http.Error(w, "no sample published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(b)
	})
	status := func(w http.ResponseWriter, _ *http.Request) {
		b := o.Status()
		if b == nil {
			http.Error(w, `{"error":"no status published yet"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	}
	mux.HandleFunc("/status", status)
	mux.HandleFunc("/progress", status)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, mount := range mounts {
		mount(mux)
	}

	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting new connections and waits up to timeout for
// in-flight requests to finish; connections still open after the
// deadline (a stuck client, an abandoned stream) are closed hard so
// shutdown is always bounded. The returned error reports the graceful
// phase: nil when every request drained in time.
func (s *Server) Shutdown(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close() // deadline expired: sever the stragglers
		return fmt.Errorf("obs: graceful shutdown incomplete: %w", err)
	}
	return nil
}

// Close stops the server, draining in-flight requests for up to
// DefaultShutdownTimeout before closing hard.
func (s *Server) Close() error { return s.Shutdown(DefaultShutdownTimeout) }
