package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live inspection endpoint: Prometheus-format
// /metrics, a JSON /status (alias /progress), and net/http/pprof for
// profiling the harness process itself. Handlers only read atomically
// published snapshots, so serving never races (or perturbs) the
// simulation goroutine.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves o's published state in
// a background goroutine until Close.
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		b := o.Registry.Published()
		if b == nil {
			http.Error(w, "no sample published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(b)
	})
	status := func(w http.ResponseWriter, _ *http.Request) {
		b := o.Status()
		if b == nil {
			http.Error(w, `{"error":"no status published yet"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	}
	mux.HandleFunc("/status", status)
	mux.HandleFunc("/progress", status)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
