package obs

import (
	"math"
	"strings"
	"testing"
)

// The profiler's breakdown CSVs embed formatValue(Quantile(...)) directly,
// so every edge case here is a byte-determinism contract, not a numerics
// nicety: an empty or single-observation histogram must render a stable
// finite string, never "NaN".

func newHist(t *testing.T) *Metric {
	t.Helper()
	r := NewRegistry()
	return r.Histogram("test_hist", "test histogram", []float64{1, 5, 10, 100})
}

func TestQuantileEmptyHistogram(t *testing.T) {
	m := newHist(t)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := m.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s := formatValue(m.Quantile(0.5)); s != "0" {
		t.Fatalf("empty histogram renders %q, want \"0\"", s)
	}
	if m.Min() != 0 || m.Max() != 0 || m.Sum() != 0 || m.Count() != 0 {
		t.Fatal("empty histogram accessors must all report 0")
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	m := newHist(t)
	m.Observe(7.25)
	// A single observation is known exactly (it is the sum); every
	// quantile must report it rather than a bucket bound.
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := m.Quantile(q); got != 7.25 {
			t.Fatalf("single-observation Quantile(%v) = %v, want 7.25", q, got)
		}
	}
	if s := formatValue(m.Quantile(0.5)); s != "7.25" {
		t.Fatalf("single observation renders %q, want \"7.25\"", s)
	}
}

func TestQuantileBucketResolution(t *testing.T) {
	m := newHist(t)
	// 4 observations in the <=1 bucket, 4 in <=10, 2 in the overflow.
	for i := 0; i < 4; i++ {
		m.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		m.Observe(8)
	}
	m.Observe(500)
	m.Observe(900)
	if got := m.Quantile(0.25); got != 1 {
		t.Fatalf("p25 = %v, want bucket bound 1", got)
	}
	if got := m.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %v, want bucket bound 10", got)
	}
	// Rank in the +Inf overflow bucket resolves to the observed max so
	// the estimate stays finite.
	if got := m.Quantile(0.99); got != 900 {
		t.Fatalf("p99 = %v, want observed max 900", got)
	}
	if got := m.Quantile(0); got != 0.5 {
		t.Fatalf("q<=0 = %v, want observed min 0.5", got)
	}
	if got := m.Quantile(1); got != 900 {
		t.Fatalf("q>=1 = %v, want observed max 900", got)
	}
}

func TestQuantileClampsToObservedRange(t *testing.T) {
	m := newHist(t)
	// Both observations land in the <=100 bucket; its bound (100) far
	// exceeds the observed max, and the estimate must clamp to it.
	m.Observe(12)
	m.Observe(13)
	if got := m.Quantile(0.95); got != 13 {
		t.Fatalf("p95 = %v, want clamped max 13", got)
	}
	if got := m.Quantile(0.01); got != 13 {
		t.Fatalf("p01 = %v, want bucket estimate clamped to max 13", got)
	}
	if got := m.Quantile(0); got != 12 {
		t.Fatalf("q<=0 = %v, want observed min 12", got)
	}
}

func TestObserveIgnoresNaN(t *testing.T) {
	m := newHist(t)
	m.Observe(math.NaN())
	if m.Count() != 0 {
		t.Fatalf("NaN observation counted: count = %d", m.Count())
	}
	m.Observe(3)
	m.Observe(math.NaN())
	if m.Count() != 2-1 || math.IsNaN(m.Sum()) {
		t.Fatalf("NaN poisoned the histogram: count %d sum %v", m.Count(), m.Sum())
	}
	if got := m.Quantile(0.5); got != 3 {
		t.Fatalf("post-NaN quantile = %v, want 3", got)
	}
}

func TestQuantileNilAndWrongKind(t *testing.T) {
	var nilM *Metric
	if nilM.Quantile(0.5) != 0 || nilM.Min() != 0 || nilM.Max() != 0 {
		t.Fatal("nil metric must report 0")
	}
	r := NewRegistry()
	c := r.Counter("test_counter", "")
	if c.Quantile(0.5) != 0 {
		t.Fatal("counter Quantile must report 0")
	}
}

func TestHistogramExportNeverNaN(t *testing.T) {
	r := NewRegistry()
	m := r.Histogram("h", "help", []float64{1, 10})
	m.Observe(math.NaN())
	var buf writerBuf
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(buf), "NaN") {
		t.Fatalf("exposition contains NaN:\n%s", string(buf))
	}
}
