// Package obs is the simulator's observability layer: a deterministic
// sim-time span tracer (exported as Chrome trace_event JSON), a metrics
// registry unifying the counter sets scattered across the driver, GPU,
// host OS, interconnect and fault-injection models, a sim-time sampler
// that turns the registry into a time series, and opt-in live HTTP
// inspection endpoints (Prometheus /metrics, JSON /status, pprof).
//
// The layer is provably inert: every entry point is nil-receiver safe and
// allocation-free when observability is disabled, and when enabled it
// only *reads* model state at batch boundaries — it never schedules
// events, never draws from any RNG, and never mutates the models, so
// enabling it cannot perturb simulation results (the digest-equality
// regression tests at the repository root pin this contract).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// MetricKind distinguishes the registry's metric flavours.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing atomic counter, safe to
	// increment from any goroutine (harness-level metrics).
	KindCounter MetricKind = iota
	// KindGauge is an atomic last-value gauge.
	KindGauge
	// KindFunc is a pull gauge: its value is read from a callback at
	// sample time, on the simulation goroutine only. Model counters
	// (uvm.Stats, gpu.Stats, ...) are exported this way so the hot path
	// carries no instrumentation writes at all.
	KindFunc
	// KindHistogram is a fixed-bucket histogram observed on the
	// simulation goroutine only.
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	}
	return "gauge"
}

// Metric is one registered metric. The concrete behaviour depends on Kind.
type Metric struct {
	name string
	help string
	kind MetricKind

	// counter/gauge storage (atomic; gauge stores float64 bits).
	bits atomic.Uint64
	// fn is the pull callback for KindFunc.
	fn func() float64
	// histogram storage (sim goroutine only).
	bounds []float64 // upper bucket bounds, ascending
	counts []uint64  // one per bound, plus implicit +Inf via total
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// Name returns the metric's registered name.
func (m *Metric) Name() string { return m.name }

// Inc adds one to a counter. Nil-safe no-op on other kinds.
func (m *Metric) Inc() { m.Add(1) }

// Add adds n to a counter. Nil-safe.
func (m *Metric) Add(n uint64) {
	if m == nil || m.kind != KindCounter {
		return
	}
	m.bits.Add(n)
}

// Set stores a gauge value. Nil-safe.
func (m *Metric) Set(v float64) {
	if m == nil || m.kind != KindGauge {
		return
	}
	m.bits.Store(math.Float64bits(v))
}

// Observe records one histogram sample. Nil-safe. Simulation goroutine
// only — histograms are not concurrency-safe by design (the sim thread is
// the only writer, and rendering happens there too). NaN observations are
// dropped: one NaN would poison the running sum and turn every derived
// export (sum, mean, quantiles) non-deterministic garbage.
func (m *Metric) Observe(v float64) {
	if m == nil || m.kind != KindHistogram || math.IsNaN(v) {
		return
	}
	if m.total == 0 || v < m.min {
		m.min = v
	}
	if m.total == 0 || v > m.max {
		m.max = v
	}
	m.total++
	m.sum += v
	for i, b := range m.bounds {
		if v <= b {
			m.counts[i]++
			return
		}
	}
}

// Count returns the histogram's observation count (0 on other kinds).
func (m *Metric) Count() uint64 {
	if m == nil || m.kind != KindHistogram {
		return 0
	}
	return m.total
}

// Sum returns the histogram's observation sum (0 on other kinds).
func (m *Metric) Sum() float64 {
	if m == nil || m.kind != KindHistogram {
		return 0
	}
	return m.sum
}

// Min returns the smallest observation (0 when empty).
func (m *Metric) Min() float64 {
	if m == nil || m.kind != KindHistogram || m.total == 0 {
		return 0
	}
	return m.min
}

// Max returns the largest observation (0 when empty).
func (m *Metric) Max() float64 {
	if m == nil || m.kind != KindHistogram || m.total == 0 {
		return 0
	}
	return m.max
}

// Quantile returns a deterministic quantile estimate from the bucket
// counts. The edge cases are pinned so derived CSV exports stay
// byte-stable: an empty histogram reports 0 (never NaN), a
// single-observation histogram reports that exact value, and q outside
// (0,1) clamps to the observed min/max. Interior quantiles resolve to the
// upper bound of the bucket holding the rank (the conventional
// fixed-bucket estimate), with ranks landing in the +Inf overflow bucket
// reporting the observed max so the estimate is always finite.
func (m *Metric) Quantile(q float64) float64 {
	if m == nil || m.kind != KindHistogram || m.total == 0 {
		return 0
	}
	if m.total == 1 {
		return m.sum
	}
	if math.IsNaN(q) || q <= 0 {
		return m.min
	}
	if q >= 1 {
		return m.max
	}
	rank := uint64(math.Ceil(q * float64(m.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, b := range m.bounds {
		cum += m.counts[i]
		if cum >= rank {
			if b > m.max {
				return m.max
			}
			return b
		}
	}
	return m.max
}

// Value reads the metric's scalar value (histograms report their sample
// count). KindFunc values must only be read on the simulation goroutine.
func (m *Metric) Value() float64 {
	if m == nil {
		return 0
	}
	switch m.kind {
	case KindCounter:
		return float64(m.bits.Load())
	case KindGauge:
		return math.Float64frombits(m.bits.Load())
	case KindFunc:
		if m.fn == nil {
			return 0
		}
		return m.fn()
	case KindHistogram:
		return float64(m.total)
	}
	return 0
}

// Registry holds a deterministic, insertion-ordered set of metrics. A nil
// *Registry is valid: every method no-ops (returning nil metrics, which
// are themselves nil-safe), so disabled observability costs only nil
// checks.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*Metric
	order  []*Metric

	// published is the last rendered Prometheus exposition, stored
	// atomically so HTTP handlers never race the simulation goroutine.
	published atomic.Pointer[[]byte]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Metric)}
}

// register adds (or returns the existing) metric under name.
func (r *Registry) register(name, help string, kind MetricKind) *Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := &Metric{name: name, help: help, kind: kind}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or fetches) an atomic counter.
func (r *Registry) Counter(name, help string) *Metric {
	return r.register(name, help, KindCounter)
}

// Gauge registers (or fetches) an atomic gauge.
func (r *Registry) Gauge(name, help string) *Metric {
	return r.register(name, help, KindGauge)
}

// Func registers a pull gauge whose value is fn(), evaluated at sample
// time on the simulation goroutine. Re-registering a name keeps the first
// callback.
func (r *Registry) Func(name, help string, fn func() float64) *Metric {
	m := r.register(name, help, KindFunc)
	if m != nil && m.fn == nil {
		m.fn = fn
	}
	return m
}

// Histogram registers a fixed-bucket histogram with the given ascending
// upper bounds (an implicit +Inf bucket is always appended on render).
func (r *Registry) Histogram(name, help string, bounds []float64) *Metric {
	m := r.register(name, help, KindHistogram)
	if m != nil && m.bounds == nil {
		m.bounds = append([]float64(nil), bounds...)
		sort.Float64s(m.bounds)
		m.counts = make([]uint64, len(m.bounds))
	}
	return m
}

// snapshotMetrics copies the ordered metric list (registration is rare;
// sampling is frequent).
func (r *Registry) snapshotMetrics() []*Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Metric(nil), r.order...)
}

// ScalarNames returns the names of all non-histogram metrics in
// registration order — the sampler's column set.
func (r *Registry) ScalarNames() []string {
	var names []string
	for _, m := range r.snapshotMetrics() {
		if m.kind != KindHistogram {
			names = append(names, m.name)
		}
	}
	return names
}

// ScalarValues reads all non-histogram metric values in registration
// order. Simulation goroutine only (KindFunc callbacks read model state).
func (r *Registry) ScalarValues() []float64 {
	var vals []float64
	for _, m := range r.snapshotMetrics() {
		if m.kind != KindHistogram {
			vals = append(vals, m.Value())
		}
	}
	return vals
}

// formatValue renders a float64 the same way every time (shortest
// round-trip form), keeping all registry output deterministic.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Simulation goroutine only (pull gauges and histograms are
// read); HTTP handlers must serve Published() instead.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshotMetrics() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		if m.kind == KindHistogram {
			var cum uint64
			for i, b := range m.bounds {
				cum += m.counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
					m.name, formatValue(b), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				m.name, m.total, m.name, formatValue(m.sum), m.name, m.total); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.Value())); err != nil {
			return err
		}
	}
	return nil
}

// Publish renders the current exposition and stores it for concurrent
// readers (the HTTP /metrics handler). Simulation goroutine only.
func (r *Registry) Publish() {
	if r == nil {
		return
	}
	var buf writerBuf
	_ = r.WritePrometheus(&buf)
	b := []byte(buf)
	r.published.Store(&b)
}

// Published returns the last rendered exposition (nil if never published).
// Safe from any goroutine.
func (r *Registry) Published() []byte {
	if r == nil {
		return nil
	}
	if p := r.published.Load(); p != nil {
		return *p
	}
	return nil
}

// writerBuf is a minimal append-only io.Writer.
type writerBuf []byte

func (b *writerBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
