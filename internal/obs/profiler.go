package obs

// profiler.go — the fault-lifecycle attribution profiler: the obs-side
// implementation of the driver's uvm.PipelineProfiler seam. It turns the
// pipeline's stage events into
//
//   - per-fault lifecycle latency histograms over the mark grammar
//     arrival → buffered → fetched → batched → deduped → serviced →
//     replayed (DESIGN.md §14 defines each mark),
//   - a paper-style batch-time breakdown attributing every batch's
//     virtual time across the stage graph (setup/fetch/dedup/replay plus
//     the service-phase component timers),
//   - per-batch critical-path records (serial block-cost sum vs the
//     actual service window, and the most expensive VABlock with its
//     step decomposition),
//   - per-VABlock/per-page heat accounting, and
//   - optional Chrome-trace block-step spans (LaneBlocks).
//
// Everything is deterministic sim-time arithmetic: no wall clock, no
// maps on the record path (the heat directory is a mem.BlockDir), no
// randomness, and no reads of model state beyond the hook arguments —
// the same zero-perturbation contract as the rest of the obs layer,
// pinned by the digest-equality tests at the repository root.

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// Lifecycle stage indexes (one latency histogram each). The names are
// the transitions of the mark grammar, in order.
const (
	lifeArrivalToBuffered  = iota // GMMU latency + injected re-deliveries
	lifeBufferedToFetched         // wait in the fault buffer
	lifeFetchedToBatched          // wait for the batch to finish forming
	lifeBatchedToDeduped          // dedup stage (batch-wide, per fault)
	lifeDedupedToServiced         // wait for the fault's VABlock to finish
	lifeServicedToReplayed        // wait for batch replay
	numLifecycle
)

var lifecycleNames = [numLifecycle]string{
	"arrival_to_buffered",
	"buffered_to_fetched",
	"fetched_to_batched",
	"batched_to_deduped",
	"deduped_to_serviced",
	"serviced_to_replayed",
}

// Batch-time attribution stage indexes. The first twelve cover every
// nanosecond of every batch: the top-level phases plus the service
// window's component timers, with "service_other" as the explicit
// residual (worker synchronization and, under parallel service, the
// double-counted overlap is *not* folded in — components are charged at
// their serial cost, matching the tracer's detail lane).
const (
	stageSetup = iota
	stageFetch
	stageDedup
	stageBlockMgmt
	stageDMAMap
	stageUnmap
	stagePopulate
	stageTransfer
	stagePageTable
	stageEvict
	stageReplay
	stageOther
	numStages
)

var stageNames = [numStages]string{
	"batch_setup",
	"fetch",
	"dedup",
	"block_mgmt",
	"dma_map",
	"unmap",
	"populate",
	"transfer",
	"page_table",
	"evict",
	"replay",
	"service_other",
}

// lifeStat accumulates one lifecycle transition exactly (count/sum/min/
// max in integer nanoseconds) alongside its registry histogram (µs).
type lifeStat struct {
	count    uint64
	sum      sim.Time
	min, max sim.Time
	hist     *Metric
}

func (s *lifeStat) observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if s.count == 0 || d > s.max {
		s.max = d
	}
	s.count++
	s.sum += d
	s.hist.Observe(d.Micros())
}

// stageStat accumulates one attribution stage: total virtual time, the
// number of batches that spent anything there, and a per-batch
// histogram (µs).
type stageStat struct {
	total   sim.Time
	batches uint64
	hist    *Metric
}

func (s *stageStat) observe(d sim.Time) {
	if d <= 0 {
		return
	}
	s.total += d
	s.batches++
	s.hist.Observe(d.Micros())
}

// blockRec is one serviced VABlock within the current batch. The
// service-stage (non-eager) records form an ascending prefix — the
// dedup stage sorts pages, so per-fault lookup is a binary search, not
// a map.
type blockRec struct {
	bid    mem.VABlockID
	steps  [maxBlockSteps]sim.Time
	total  sim.Time
	endOff sim.Time // serial end offset within the service window
	pages  int
	eager  bool
}

// maxBlockSteps bounds the per-block step decomposition the profiler
// retains. Architectures declare their own block-step pipelines
// (uvm.ArchitectureInfo.BlockSteps); steps past the cap are dropped.
const maxBlockSteps = 8

// defaultStepLabels matches the host-driven block-step pipeline, used
// until SetBlockStepLabels installs the selected architecture's
// contract.
var defaultStepLabels = []string{"residency", "prefetch_plan", "populate", "transfer"}

// BatchProfile is one batch's retained critical-path record.
type BatchProfile struct {
	ID     int
	Start  sim.Time
	End    sim.Time
	Faults int
	Blocks int
	// SerialNS is the serial sum of per-block costs; ServiceNS is the
	// batch's actual service window (the parallel makespan under
	// ServiceWorkers > 1). SerialNS/ServiceNS is the achieved speedup.
	SerialNS  sim.Time
	ServiceNS sim.Time
	// CritBlock is the most expensive VABlock of the batch (the one a
	// parallel service cannot shrink below), with its cost and step
	// decomposition. Ties resolve to the earliest serviced block.
	CritBlock mem.VABlockID
	CritCost  sim.Time
	CritSteps [maxBlockSteps]sim.Time
}

// blockHeat is the per-VABlock heat account. pageCounts is indexed by
// page-in-block; a uint32 per page bounds the footprint at 2 KB per
// touched block.
type blockHeat struct {
	faults     uint64
	services   uint64
	eager      uint64
	cost       sim.Time
	pagesSeen  int
	pageCounts [mem.PagesPerVABlock]uint32
}

// Profiler implements uvm.PipelineProfiler. Construct with NewProfiler
// and attach via Driver.SetProfiler (guvm wires this when
// obs.Config.Profile is set). A nil *Profiler is valid and records
// nothing, but the driver seam is cheaper: leave it unattached instead.
type Profiler struct {
	tracer *Tracer
	reg    *Registry

	life   [numLifecycle]lifeStat
	stages [numStages]stageStat

	// stepLabels is the per-block step label contract in force — the
	// selected architecture's declared block-step names, underscored.
	stepLabels []string

	batches []BatchProfile
	heat    mem.BlockDir[*blockHeat]

	faultsTracked uint64

	// Pooled per-batch scratch, valid between BeginBatch and EndBatch.
	curStart   sim.Time
	curEntered sim.Time
	fetchAt    []sim.Time   // per-fault fetch-completion time, batch order
	pages      []mem.PageID // per-fault page, batch order
	blocks     []blockRec
	nFaulted   int      // non-eager prefix length of blocks
	serial     sim.Time // running serial block-cost layout cursor
}

// NewProfiler builds a profiler registering its histograms and totals
// on reg and, when tracer is non-nil, emitting LaneBlocks step spans.
func NewProfiler(tracer *Tracer, reg *Registry) *Profiler {
	p := &Profiler{tracer: tracer, reg: reg, stepLabels: defaultStepLabels}
	lifeBounds := []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	for i := range p.life {
		p.life[i].hist = reg.Histogram(
			"guvm_prof_lifecycle_"+lifecycleNames[i]+"_us",
			"Per-fault lifecycle latency ("+lifecycleNames[i]+") in virtual microseconds",
			lifeBounds)
	}
	stageBounds := []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}
	for i := range p.stages {
		p.stages[i].hist = reg.Histogram(
			"guvm_prof_stage_"+stageNames[i]+"_us",
			"Per-batch time attributed to the "+stageNames[i]+" stage in virtual microseconds",
			stageBounds)
	}
	// Scalar totals ride the sampler's column set (histograms do not),
	// so the breakdown is also a deterministic time series.
	for i := range p.stages {
		st := &p.stages[i]
		reg.Func("guvm_prof_stage_"+stageNames[i]+"_ns_total",
			"Total virtual time attributed to the "+stageNames[i]+" stage (ns)",
			func() float64 { return float64(st.total) })
	}
	reg.Func("guvm_prof_faults_tracked",
		"Faults with complete lifecycle attribution",
		func() float64 { return float64(p.faultsTracked) })
	return p
}

// FetchInstallment implements uvm.PipelineProfiler: the first two
// lifecycle transitions are fully known per fault as soon as its drain
// installment completes.
func (p *Profiler) FetchInstallment(done sim.Time, faults []gpu.Fault) {
	for i := range faults {
		f := &faults[i]
		p.life[lifeArrivalToBuffered].observe(f.Time - f.Issued)
		p.life[lifeBufferedToFetched].observe(done - f.Time)
		p.fetchAt = append(p.fetchAt, done)
	}
}

// BeginBatch implements uvm.PipelineProfiler: anchor the batch window
// and copy the per-fault pages (the faults slice is driver scratch).
func (p *Profiler) BeginBatch(start, entered sim.Time, faults []gpu.Fault) {
	p.curStart = start
	p.curEntered = entered
	if len(p.fetchAt) != len(faults) {
		// Defensive: an installment was missed (cannot happen in the
		// driver pipeline). Re-anchor so attribution stays well-formed.
		p.fetchAt = p.fetchAt[:0]
		for range faults {
			p.fetchAt = append(p.fetchAt, entered)
		}
	}
	p.pages = p.pages[:0]
	for i := range faults {
		p.life[lifeFetchedToBatched].observe(entered - p.fetchAt[i])
		p.pages = append(p.pages, faults[i].Page)
	}
}

// SetBlockStepLabels installs the selected architecture's block-step
// label contract (uvm.ArchitectureInfo.BlockSteps). Dashes become
// underscores to match the metric/CSV naming style; labels past
// maxBlockSteps are dropped. Call before the run; guvm wires this from
// the driver's architecture.
func (p *Profiler) SetBlockStepLabels(labels []string) {
	if p == nil || len(labels) == 0 {
		return
	}
	out := make([]string, 0, min(len(labels), maxBlockSteps))
	for _, l := range labels {
		if len(out) == maxBlockSteps {
			break
		}
		out = append(out, strings.ReplaceAll(l, "-", "_"))
	}
	p.stepLabels = out
}

// BlockServiced implements uvm.PipelineProfiler: record the block's
// step decomposition and lay it out on the serial service cursor. steps
// is driver-owned scratch in the architecture's declared step order;
// it is copied here.
func (p *Profiler) BlockServiced(bid mem.VABlockID, pages int, eager bool, steps []sim.Time, total sim.Time) {
	p.serial += total
	if !eager && p.nFaulted == len(p.blocks) {
		p.nFaulted++
	}
	rec := blockRec{bid: bid, total: total, endOff: p.serial, pages: pages, eager: eager}
	copy(rec.steps[:min(len(steps), maxBlockSteps)], steps)
	p.blocks = append(p.blocks, rec)
}

// EndBatch implements uvm.PipelineProfiler: fold the completed record
// into the breakdown, finish the per-fault lifecycle, account heat,
// retain the critical-path record, and emit trace spans.
func (p *Profiler) EndBatch(id int, rec *trace.BatchRecord) {
	dur := rec.Duration()
	setup := p.curEntered - p.curStart - rec.TFetch
	service := dur - setup - rec.TFetch - rec.TDedup - rec.TReplay
	if service < 0 {
		setup += service
		service = 0
	}
	detail := rec.TBlockMgmt + rec.TDMAMap + rec.TUnmap + rec.TPopulate +
		rec.TTransfer + rec.TPageTable + rec.TEvict
	other := service - detail
	if other < 0 {
		other = 0
	}
	p.stages[stageSetup].observe(setup)
	p.stages[stageFetch].observe(rec.TFetch)
	p.stages[stageDedup].observe(rec.TDedup)
	p.stages[stageBlockMgmt].observe(rec.TBlockMgmt)
	p.stages[stageDMAMap].observe(rec.TDMAMap)
	p.stages[stageUnmap].observe(rec.TUnmap)
	p.stages[stagePopulate].observe(rec.TPopulate)
	p.stages[stageTransfer].observe(rec.TTransfer)
	p.stages[stagePageTable].observe(rec.TPageTable)
	p.stages[stageEvict].observe(rec.TEvict)
	p.stages[stageReplay].observe(rec.TReplay)
	p.stages[stageOther].observe(other)

	// Per-fault lifecycle completion. A fault is "serviced" when its
	// VABlock's serial layout slot ends (clamped into the service
	// window: under parallel service the serial layout can overflow
	// it); stale-filtered faults are serviced at dedup end.
	dedupEnd := p.curEntered + rec.TDedup
	replayStart := rec.End - rec.TReplay
	faulted := p.blocks[:p.nFaulted]
	for _, pg := range p.pages {
		bid := pg.VABlock()
		servicedAt := dedupEnd
		i := sort.Search(len(faulted), func(i int) bool { return faulted[i].bid >= bid })
		if i < len(faulted) && faulted[i].bid == bid {
			servicedAt = dedupEnd + faulted[i].endOff
			if servicedAt > replayStart {
				servicedAt = replayStart
			}
		}
		p.life[lifeBatchedToDeduped].observe(rec.TDedup)
		p.life[lifeDedupedToServiced].observe(servicedAt - dedupEnd)
		p.life[lifeServicedToReplayed].observe(rec.End - servicedAt)
		// Per-page heat: every raw fault heats its page.
		h := p.heatFor(bid)
		h.faults++
		idx := pg.IndexInBlock()
		if h.pageCounts[idx] == 0 {
			h.pagesSeen++
		}
		h.pageCounts[idx]++
	}
	p.faultsTracked += uint64(len(p.pages))

	// Per-block heat and the batch's critical path.
	var crit *blockRec
	for i := range p.blocks {
		b := &p.blocks[i]
		h := p.heatFor(b.bid)
		h.services++
		h.cost += b.total
		if b.eager {
			h.eager++
		}
		if crit == nil || b.total > crit.total {
			crit = b
		}
	}
	bp := BatchProfile{
		ID: id, Start: rec.Start, End: rec.End,
		Faults: len(p.pages), Blocks: len(p.blocks),
		SerialNS: p.serial, ServiceNS: service,
	}
	if crit != nil {
		bp.CritBlock = crit.bid
		bp.CritCost = crit.total
		bp.CritSteps = crit.steps
	}
	p.batches = append(p.batches, bp)

	// Chrome-trace block steps: serial layout from dedup end, one span
	// per non-zero step plus the fixed per-block management charge.
	if p.tracer != nil {
		cursor := dedupEnd
		for i := range p.blocks {
			b := &p.blocks[i]
			var stepsSum sim.Time
			for _, s := range b.steps {
				stepsSum += s
			}
			if mgmt := b.total - stepsSum; mgmt > 0 {
				p.tracer.Add(LaneBlocks, "block", "block_mgmt", cursor, mgmt, id)
				cursor += mgmt
			}
			for s, d := range b.steps {
				if d <= 0 || s >= len(p.stepLabels) {
					continue
				}
				p.tracer.Add(LaneBlocks, "block", p.stepLabels[s], cursor, d, id)
				cursor += d
			}
		}
	}

	// Reset the pooled batch scratch.
	p.fetchAt = p.fetchAt[:0]
	p.pages = p.pages[:0]
	p.blocks = p.blocks[:0]
	p.nFaulted = 0
	p.serial = 0
}

// heatFor returns (creating on first touch) the block's heat account.
func (p *Profiler) heatFor(bid mem.VABlockID) *blockHeat {
	if h := p.heat.Lookup(bid); h != nil {
		return h
	}
	h := &blockHeat{}
	p.heat.Set(bid, h)
	return h
}

// Batches returns the retained per-batch critical-path records.
func (p *Profiler) Batches() []BatchProfile {
	if p == nil {
		return nil
	}
	return p.batches
}

// BreakdownRow is one stage of the batch-time breakdown table.
type BreakdownRow struct {
	Stage    string
	TotalNS  int64
	SharePct float64
	Batches  uint64
	P50US    float64
	P95US    float64
}

// BreakdownRows returns the paper-style batch-time breakdown: for every
// attribution stage, its total virtual time, share of all attributed
// time, batches touched, and per-batch p50/p95. Rows are in fixed stage
// order; shares sum to 100 (up to rounding) whenever any time was
// attributed.
func (p *Profiler) BreakdownRows() []BreakdownRow {
	if p == nil {
		return nil
	}
	var sum sim.Time
	for i := range p.stages {
		sum += p.stages[i].total
	}
	rows := make([]BreakdownRow, 0, numStages)
	for i := range p.stages {
		st := &p.stages[i]
		share := 0.0
		if sum > 0 {
			share = 100 * float64(st.total) / float64(sum)
		}
		rows = append(rows, BreakdownRow{
			Stage:    stageNames[i],
			TotalNS:  int64(st.total),
			SharePct: share,
			Batches:  st.batches,
			P50US:    st.hist.Quantile(0.50),
			P95US:    st.hist.Quantile(0.95),
		})
	}
	return rows
}

// WriteBreakdownCSV writes the batch-time breakdown table. Byte-
// deterministic for a given simulation (integer totals, fixed-precision
// shares, quantiles through the registry's stable formatter).
func (p *Profiler) WriteBreakdownCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "stage,total_ns,share_pct,batches,p50_us,p95_us\n"); err != nil {
		return err
	}
	for _, r := range p.BreakdownRows() {
		if _, err := fmt.Fprintf(w, "%s,%d,%.2f,%d,%s,%s\n",
			r.Stage, r.TotalNS, r.SharePct, r.Batches,
			formatValue(r.P50US), formatValue(r.P95US)); err != nil {
			return err
		}
	}
	return nil
}

// WriteLifecycleCSV writes the per-fault lifecycle latency summary, one
// row per mark transition.
func (p *Profiler) WriteLifecycleCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "stage,faults,total_ns,min_ns,max_ns,p50_us,p95_us\n"); err != nil {
		return err
	}
	for i := range p.life {
		s := &p.life[i]
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%s,%s\n",
			lifecycleNames[i], s.count, int64(s.sum), int64(s.min), int64(s.max),
			formatValue(s.hist.Quantile(0.50)), formatValue(s.hist.Quantile(0.95))); err != nil {
			return err
		}
	}
	return nil
}

// WriteBatchesCSV writes one critical-path row per batch. The per-step
// columns follow the installed block-step label contract, so the header
// adapts to the selected architecture.
func (p *Profiler) WriteBatchesCSV(w io.Writer) error {
	var hdr strings.Builder
	hdr.WriteString("batch,start_ns,end_ns,faults,blocks,serial_ns,service_ns,crit_block,crit_cost_ns")
	for _, l := range p.stepLabels {
		hdr.WriteString(",crit_" + l + "_ns")
	}
	hdr.WriteString("\n")
	if _, err := io.WriteString(w, hdr.String()); err != nil {
		return err
	}
	for i := range p.batches {
		b := &p.batches[i]
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d",
			b.ID, int64(b.Start), int64(b.End), b.Faults, b.Blocks,
			int64(b.SerialNS), int64(b.ServiceNS),
			uint64(b.CritBlock), int64(b.CritCost)); err != nil {
			return err
		}
		for s := range p.stepLabels {
			if _, err := fmt.Fprintf(w, ",%d", int64(b.CritSteps[s])); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteHeatCSV writes the per-VABlock heat accounts in ascending block
// order: raw fault count, service passes (eager counted separately),
// total service cost, distinct pages faulted, and the hottest page.
func (p *Profiler) WriteHeatCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "block,faults,services,eager_services,cost_ns,pages_touched,hot_page,hot_count\n"); err != nil {
		return err
	}
	var werr error
	p.heat.Range(func(bid mem.VABlockID, h *blockHeat) bool {
		hotIdx, hotCount := 0, uint32(0)
		for i, c := range h.pageCounts {
			if c > hotCount {
				hotIdx, hotCount = i, c
			}
		}
		_, werr = fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			uint64(bid), h.faults, h.services, h.eager, int64(h.cost),
			h.pagesSeen, hotIdx, hotCount)
		return werr == nil
	})
	return werr
}

// BreakdownTable renders the breakdown as an aligned text table (the
// CLI's -profile stdout report).
func (p *Profiler) BreakdownTable() string {
	var buf writerBuf
	fmt.Fprintf(&buf, "%-14s %14s %9s %8s %10s %10s\n",
		"stage", "total_ns", "share", "batches", "p50_us", "p95_us")
	for _, r := range p.BreakdownRows() {
		fmt.Fprintf(&buf, "%-14s %14d %8.2f%% %8d %10s %10s\n",
			r.Stage, r.TotalNS, r.SharePct, r.Batches,
			formatValue(r.P50US), formatValue(r.P95US))
	}
	return string(buf)
}
