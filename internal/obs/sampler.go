package obs

import (
	"fmt"
	"io"

	"guvm/internal/sim"
)

// SampleRow is one deterministic sim-time sample of every scalar metric.
type SampleRow struct {
	At    sim.Time
	Batch int
	Vals  []float64
}

// Sampler snapshots the registry's scalar metrics at batch boundaries
// into a time series. Sampling happens on the simulation goroutine (pull
// gauges read model state), keyed by virtual time, so the series is
// bit-identical across runs of the same configuration.
type Sampler struct {
	reg *Registry
	// Interval samples every Nth batch (1 = every batch).
	Interval int

	cols []string
	rows []SampleRow
}

// NewSampler returns a sampler over reg with the given batch interval.
func NewSampler(reg *Registry, interval int) *Sampler {
	if interval < 1 {
		interval = 1
	}
	return &Sampler{reg: reg, Interval: interval}
}

// Sample records one row at virtual time now, tagged with the batch ID.
// The column set is frozen at the first sample.
func (s *Sampler) Sample(now sim.Time, batch int) {
	if s == nil {
		return
	}
	if s.cols == nil {
		s.cols = s.reg.ScalarNames()
	}
	s.rows = append(s.rows, SampleRow{At: now, Batch: batch, Vals: s.reg.ScalarValues()})
}

// Rows returns the collected series (nil-safe).
func (s *Sampler) Rows() []SampleRow {
	if s == nil {
		return nil
	}
	return s.rows
}

// Columns returns the frozen column names (nil-safe).
func (s *Sampler) Columns() []string {
	if s == nil {
		return nil
	}
	return s.cols
}

// WriteCSV streams the series as CSV: time_ns,batch,<metric...>.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "time_ns,batch"); err != nil {
		return err
	}
	for _, c := range s.Columns() {
		if _, err := io.WriteString(w, ","+c); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i := range s.Rows() {
		r := &s.rows[i]
		if _, err := fmt.Fprintf(w, "%d,%d", r.At, r.Batch); err != nil {
			return err
		}
		for _, v := range r.Vals {
			if _, err := io.WriteString(w, ","+formatValue(v)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON streams the series as one JSON object with a columns array
// and a rows array, rendered with the registry's deterministic value
// formatting.
func (s *Sampler) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"columns\":[\"time_ns\",\"batch\""); err != nil {
		return err
	}
	for _, c := range s.Columns() {
		if _, err := fmt.Fprintf(w, ",%q", c); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "],\"rows\":[\n"); err != nil {
		return err
	}
	for i := range s.Rows() {
		r := &s.rows[i]
		sep := ",\n"
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s[%d,%d", sep, r.At, r.Batch); err != nil {
			return err
		}
		for _, v := range r.Vals {
			if _, err := io.WriteString(w, ","+formatValue(v)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "]"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
