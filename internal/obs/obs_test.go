package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"guvm/internal/sim"
	"guvm/internal/trace"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Add(LanePhase, "c", "n", 0, 1, 0)
	tr.AddInstant("e", 0)
	tr.AddBatch(&trace.BatchRecord{End: 10})
	tr.AddKernel(0, 0, 5)
	if tr.Spans() != nil || tr.Instants() != nil {
		t.Fatal("nil tracer recorded something")
	}

	var reg *Registry
	reg.Counter("c", "h").Inc()
	reg.Gauge("g", "h").Set(1)
	reg.Func("f", "h", func() float64 { return 1 })
	reg.Histogram("hst", "h", []float64{1}).Observe(0.5)
	reg.Publish()
	if reg.Published() != nil || reg.ScalarNames() != nil {
		t.Fatal("nil registry produced output")
	}

	var o *Observer
	o.OnBatch(0, &trace.BatchRecord{End: 10})
	o.NoteEvent(0)
	o.Publish()
	if o.Status() != nil || o.Config().Active() {
		t.Fatal("nil observer produced output")
	}
}

func TestRegistryRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("guvm_test_total", "a counter")
	c.Add(3)
	reg.Gauge("guvm_test_gauge", "a gauge").Set(2.5)
	reg.Func("guvm_test_func", "a pull gauge", func() float64 { return 7 })
	h := reg.Histogram("guvm_test_hist", "a histogram", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE guvm_test_total counter",
		"guvm_test_total 3",
		"guvm_test_gauge 2.5",
		"guvm_test_func 7",
		`guvm_test_hist_bucket{le="1"} 1`,
		`guvm_test_hist_bucket{le="10"} 2`,
		`guvm_test_hist_bucket{le="+Inf"} 3`,
		"guvm_test_hist_sum 105.5",
		"guvm_test_hist_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Render twice: byte-identical (deterministic ordering + formatting).
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

// TestAddBatchPartition pins the acceptance contract: the LanePhase spans
// of a batch sum exactly to End-Start, and the detail spans cover the
// serial service time.
func TestAddBatchPartition(t *testing.T) {
	tr := NewTracer()
	tr.BatchSetup = 30_000
	rec := &trace.BatchRecord{
		ID:         4,
		Start:      1_000_000,
		End:        1_500_000,
		TFetch:     80_000,
		TDedup:     20_000,
		TReplay:    40_000,
		TBlockMgmt: 60_000,
		TDMAMap:    50_000,
		TUnmap:     30_000,
		TPopulate:  40_000,
		TTransfer:  120_000,
		TPageTable: 10_000,
		TEvict:     20_000,
	}
	tr.AddBatch(rec)

	var phaseSum, detailSum sim.Time
	for _, s := range tr.Spans() {
		switch s.Lane {
		case LanePhase:
			phaseSum += s.Dur
		case LaneDetail:
			detailSum += s.Dur
		}
	}
	if phaseSum != rec.Duration() {
		t.Fatalf("phase spans sum to %d, want End-Start = %d", phaseSum, rec.Duration())
	}
	// service = 500000 - 30000 - 80000 - 20000 - 40000 = 330000, and the
	// component timers sum to 330000 exactly, so no residual span.
	if detailSum != 330_000 {
		t.Fatalf("detail spans sum to %d, want 330000", detailSum)
	}
	for _, s := range tr.Spans() {
		if s.Name == "service_other" {
			t.Fatal("unexpected residual span for an exactly-covered service phase")
		}
	}
}

func TestChromeTraceLoads(t *testing.T) {
	tr := NewTracer()
	tr.BatchSetup = 10
	tr.AddBatch(&trace.BatchRecord{ID: 0, Start: 0, End: 100, TFetch: 20, TDedup: 10, TReplay: 30, TTransfer: 40})
	tr.AddKernel(0, 0, 500)
	tr.AddInstant("dispatch", 7)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var xs, ms, is int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			xs++
		case "M":
			ms++
		case "i":
			is++
		}
	}
	if xs == 0 || ms == 0 || is != 1 {
		t.Fatalf("event mix: %d complete, %d metadata, %d instant", xs, ms, is)
	}
}

func TestMicroString(t *testing.T) {
	for _, tc := range []struct {
		ns   sim.Time
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{1234567, "1234.567"}, {-1500, "-1.500"},
	} {
		if got := microString(tc.ns); got != tc.want {
			t.Errorf("microString(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestSamplerSeries(t *testing.T) {
	reg := NewRegistry()
	n := 0.0
	reg.Func("guvm_n", "test", func() float64 { n++; return n })
	s := NewSampler(reg, 1)
	s.Sample(100, 0)
	s.Sample(200, 1)

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,batch,guvm_n\n100,0,1\n200,1,2\n"
	if csv.String() != want {
		t.Fatalf("CSV = %q, want %q", csv.String(), want)
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("series JSON invalid: %v\n%s", err, js.String())
	}
	if len(doc.Columns) != 3 || len(doc.Rows) != 2 || doc.Rows[1][2] != 2 {
		t.Fatalf("series JSON shape wrong: %+v", doc)
	}
}

func TestObserverSamplesAndPublishes(t *testing.T) {
	o := New(Config{Trace: true, SampleInterval: 2})
	o.SetBatchSetupCost(10)
	o.Registry.Counter("guvm_obs_test_total", "test").Add(5)
	o.SetStatusFunc(func() any { return map[string]int{"done": 1} })

	for id := 0; id < 4; id++ {
		start := sim.Time(id * 1000)
		o.OnBatch(id, &trace.BatchRecord{ID: id, Start: start, End: start + 500, TFetch: 100, TReplay: 50})
	}
	if got := len(o.Sampler.Rows()); got != 2 {
		t.Fatalf("sampled %d rows at interval 2 over 4 batches, want 2", got)
	}
	if !strings.Contains(string(o.Registry.Published()), "guvm_obs_test_total 5") {
		t.Fatalf("published exposition missing counter:\n%s", o.Registry.Published())
	}
	if !strings.Contains(string(o.Status()), `"done":1`) {
		t.Fatalf("published status = %s", o.Status())
	}
	if len(o.Tracer.Spans()) == 0 {
		t.Fatal("tracing enabled but no spans recorded")
	}
}

func TestServeEndpoints(t *testing.T) {
	o := New(Config{SampleInterval: 1})
	o.Registry.Counter("guvm_live_total", "test").Add(9)
	o.SetStatusFunc(func() any { return map[string]string{"state": "running"} })
	o.Publish()

	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		c := http.Client{Timeout: 5 * time.Second}
		resp, err := c.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "guvm_live_total 9") {
		t.Fatalf("/metrics -> %d %q", code, body)
	}
	if code, body := get("/status"); code != 200 || !strings.Contains(body, `"state":"running"`) {
		t.Fatalf("/status -> %d %q", code, body)
	}
	if code, _ := get("/progress"); code != 200 {
		t.Fatalf("/progress -> %d", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline -> %d", code)
	}
}

// TestServeMountsAndShutdown checks the two service-layer seams on the
// live endpoint: extra subsystems mount handlers on the shared mux, and
// shutdown is graceful but deadline-bounded — an in-flight request
// drains cleanly, while a stuck one is severed instead of hanging Close
// forever.
func TestServeMountsAndShutdown(t *testing.T) {
	o := New(Config{SampleInterval: 1})
	o.Publish()

	release := make(chan struct{})
	started := make(chan struct{}, 2)
	srv, err := Serve("127.0.0.1:0", o, func(mux *http.ServeMux) {
		mux.HandleFunc("/extra", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, "mounted")
		})
		mux.HandleFunc("/stuck", func(w http.ResponseWriter, _ *http.Request) {
			started <- struct{}{}
			<-release // holds the connection past the shutdown deadline
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + srv.Addr() + "/extra")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "mounted" {
		t.Fatalf("/extra body = %q", b)
	}

	// A request stuck in a handler must not hold Shutdown past its
	// deadline: the graceful phase reports the failure and the connection
	// is closed hard.
	done := make(chan error, 1)
	go func() {
		_, err := http.Get("http://" + srv.Addr() + "/stuck")
		done <- err
	}()
	<-started
	start := time.Now()
	if err := srv.Shutdown(100 * time.Millisecond); err == nil {
		t.Fatal("Shutdown reported clean drain with a stuck request")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v, want deadline-bounded", elapsed)
	}
	close(release)
	<-done // the severed client errors out rather than hanging

	// Clean path: no in-flight work, shutdown drains immediately.
	srv2, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("idle Close: %v", err)
	}
}
