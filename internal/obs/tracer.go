package obs

import (
	"guvm/internal/sim"
	"guvm/internal/trace"
)

// Lanes are the tracer's fixed thread rows in the exported Chrome trace.
// Each lane holds non-overlapping spans so timelines render cleanly.
const (
	// LaneBatch holds one umbrella span per fault batch.
	LaneBatch = 1
	// LanePhase holds the top-level batch phase decomposition; per batch
	// these spans exactly partition [Start, End].
	LanePhase = 2
	// LaneDetail decomposes the service phase into the paper's timer
	// components (block management, DMA map, unmap, populate, transfer,
	// page table, evict).
	LaneDetail = 3
	// LaneKernel holds one span per GPU kernel phase.
	LaneKernel = 4
	// LaneEngine holds per-event instant marks from the simulation engine
	// (opt-in, capped).
	LaneEngine = 5
	// LaneBlocks holds the profiler's per-VABlock step decomposition of
	// each batch's service window (opt-in: requires Trace and Profile).
	// Step spans are laid out serially in pipeline order, so with
	// ServiceWorkers > 1 the lane, like LaneDetail, can overflow the
	// batch window — the work is real, just overlapped.
	LaneBlocks = 6
)

// LaneNames maps lanes to the thread names written into the trace.
var LaneNames = map[int]string{
	LaneBatch:  "batches",
	LanePhase:  "batch phases",
	LaneDetail: "service detail",
	LaneKernel: "kernels",
	LaneEngine: "engine events",
	LaneBlocks: "block steps",
}

// Span is one completed sim-time interval.
type Span struct {
	Name  string
	Cat   string
	Lane  int
	Start sim.Time
	Dur   sim.Time
	// Batch is the owning batch ID, or -1 for non-batch spans.
	Batch int
}

// Instant is a zero-duration engine mark.
type Instant struct {
	Name string
	At   sim.Time
}

// Tracer accumulates deterministic sim-time spans. A nil *Tracer is valid
// and records nothing, so call sites need no guards.
type Tracer struct {
	spans    []Span
	instants []Instant

	// BatchSetup is the driver's fixed batch-open cost, needed to anchor
	// the phase decomposition (it is the only phase component the batch
	// record does not carry explicitly).
	BatchSetup sim.Time
	// EngineEventCap bounds recorded engine instants (0 = default).
	EngineEventCap int
	// Lanes, when non-nil, overrides LaneNames in the exported trace —
	// harness traces (e.g. paperfigs) use one named lane per experiment
	// instead of the simulator's fixed rows.
	Lanes map[int]string
}

// DefaultEngineEventCap bounds per-event engine marks so a long run
// cannot balloon the trace.
const DefaultEngineEventCap = 100_000

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{EngineEventCap: DefaultEngineEventCap} }

// Add records one span. Nil-safe.
func (t *Tracer) Add(lane int, cat, name string, start, dur sim.Time, batch int) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Name: name, Cat: cat, Lane: lane, Start: start, Dur: dur, Batch: batch})
}

// AddInstant records one engine event mark, up to the cap. Nil-safe.
func (t *Tracer) AddInstant(name string, at sim.Time) {
	if t == nil {
		return
	}
	cap := t.EngineEventCap
	if cap <= 0 {
		cap = DefaultEngineEventCap
	}
	if len(t.instants) >= cap {
		return
	}
	t.instants = append(t.instants, Instant{Name: name, At: at})
}

// Spans returns the recorded spans (nil-safe).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Instants returns the recorded engine marks (nil-safe).
func (t *Tracer) Instants() []Instant {
	if t == nil {
		return nil
	}
	return t.instants
}

// AddBatch derives the batch's span set from its completed record: an
// umbrella span, the top-level phase partition of [Start, End], and the
// service-phase detail decomposition. Phase names follow the paper's
// instrumented-driver timers (DESIGN.md §9 maps them).
//
// The top-level phases always sum exactly to End-Start: the service span
// is computed as the remainder after setup, fetch, dedup and replay, which
// by construction equals the batch's block-service makespan. The detail
// lane lays the per-component timers out sequentially inside the service
// window; with ServiceWorkers > 1 their serial sum can exceed the parallel
// makespan, in which case the detail lane intentionally overflows the
// batch window (the components are real work, just overlapped).
func (t *Tracer) AddBatch(rec *trace.BatchRecord) {
	if t == nil {
		return
	}
	dur := rec.Duration()
	t.Add(LaneBatch, "batch", "batch", rec.Start, dur, rec.ID)

	setup := t.BatchSetup
	service := dur - setup - rec.TFetch - rec.TDedup - rec.TReplay
	if service < 0 {
		// Defensive: a record not produced by the driver pipeline. Fold
		// the deficit into the setup span so the partition still sums.
		setup += service
		service = 0
	}
	cursor := rec.Start
	phase := func(name string, d sim.Time) {
		if d <= 0 {
			return
		}
		t.Add(LanePhase, "driver", name, cursor, d, rec.ID)
		cursor += d
	}
	phase("batch_setup", setup)
	phase("fetch", rec.TFetch)
	phase("dedup", rec.TDedup)
	phase("service", service)
	phase("replay", rec.TReplay)

	detail := rec.Start + setup + rec.TFetch + rec.TDedup
	var detailSum sim.Time
	sub := func(name string, d sim.Time) {
		if d <= 0 {
			return
		}
		t.Add(LaneDetail, "service", name, detail, d, rec.ID)
		detail += d
		detailSum += d
	}
	sub("block_mgmt", rec.TBlockMgmt)
	sub("dma_map", rec.TDMAMap)
	sub("unmap", rec.TUnmap)
	sub("populate", rec.TPopulate)
	sub("transfer", rec.TTransfer)
	sub("page_table", rec.TPageTable)
	sub("evict", rec.TEvict)
	// Any service time the component timers do not cover (e.g. worker
	// synchronization) renders as an explicit residual, never silence.
	if rest := service - detailSum; rest > 0 {
		sub("service_other", rest)
	}
}

// AddKernel records one GPU kernel phase span. Nil-safe.
func (t *Tracer) AddKernel(phase int, start, dur sim.Time) {
	if t == nil {
		return
	}
	t.Add(LaneKernel, "gpu", "kernel", start, dur, phase)
}
