package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !approx(s.StdDev, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("min/max/sum = %v/%v/%v", s.Min, s.Max, s.Sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatal("empty Summarize not zero")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !approx(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("Mean wrong")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	f := FitLine(xs, ys)
	if !approx(f.Slope, 3, 1e-9) || !approx(f.Intercept, 7, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
	if !approx(f.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	f := FitLine(xs, ys)
	if f.Slope < 1.8 || f.Slope > 2.2 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if f := FitLine([]float64{5, 5, 5}, []float64{1, 2, 3}); f.Slope != 0 {
		t.Error("constant-x fit should be zero")
	}
	if f := FitLine([]float64{1}, []float64{1}); f.Slope != 0 {
		t.Error("single-point fit should be zero")
	}
}

func TestFitLinePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitLine([]float64{1, 2}, []float64{1})
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 9.9, 10, 11, -5}
	h := NewHistogram(xs, 0, 10, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram total = %d, want %d", total, len(xs))
	}
	// -5 clamps to bin 0; 10 and 11 clamp to bin 4.
	if h.Counts[0] != 3 { // 0, 1, -5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9; 10 and 11 clamp into the top bin
		t.Errorf("bin4 = %d", h.Counts[4])
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(nil, 0, 1, 0)
}

func TestGroupBy(t *testing.T) {
	order, groups := GroupBy([]int{2, 1, 2, 3, 1}, []float64{10, 20, 30, 40, 50})
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if len(groups[2]) != 2 || groups[2][0] != 10 || groups[2][1] != 30 {
		t.Fatalf("groups[2] = %v", groups[2])
	}
	if len(groups[3]) != 1 || groups[3][0] != 40 {
		t.Fatalf("groups[3] = %v", groups[3])
	}
}

func TestGroupByPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GroupBy([]int{1}, []float64{1, 2})
}

// Property: Min <= Mean <= Max and StdDev >= 0 for any non-empty input.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FitLine on exactly linear data recovers the line.
func TestFitLineRecoversLine(t *testing.T) {
	f := func(slope, intercept int8) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = float64(slope)*x + float64(intercept)
		}
		fit := FitLine(xs, ys)
		return approx(fit.Slope, float64(slope), 1e-6) &&
			approx(fit.Intercept, float64(intercept), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitPlaneExact(t *testing.T) {
	// y = 2*x1 + 5*x2 + 3
	var x1, x2, ys []float64
	for i := 0; i < 20; i++ {
		a := float64(i % 7)
		b := float64((i * 3) % 5)
		x1 = append(x1, a)
		x2 = append(x2, b)
		ys = append(ys, 2*a+5*b+3)
	}
	f := FitPlane(x1, x2, ys)
	if !approx(f.B1, 2, 1e-6) || !approx(f.B2, 5, 1e-6) || !approx(f.Intercept, 3, 1e-6) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitPlaneDegenerate(t *testing.T) {
	// x2 constant: singular system -> zero fit.
	f := FitPlane([]float64{1, 2, 3}, []float64{5, 5, 5}, []float64{1, 2, 3})
	if f.B1 != 0 || f.B2 != 0 {
		t.Fatalf("degenerate fit = %+v", f)
	}
	if f2 := FitPlane([]float64{1}, []float64{1}, []float64{1}); f2.B1 != 0 {
		t.Fatal("tiny input fit not zero")
	}
}

func TestFitPlanePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitPlane([]float64{1, 2}, []float64{1}, []float64{1, 2})
}

// Property: FitPlane recovers random planes from noiseless samples.
func TestFitPlaneRecovers(t *testing.T) {
	f := func(b1, b2, c int8) bool {
		var x1, x2, ys []float64
		for i := 0; i < 30; i++ {
			a := float64(i % 6)
			b := float64((i*7 + 2) % 11)
			x1 = append(x1, a)
			x2 = append(x2, b)
			ys = append(ys, float64(b1)*a+float64(b2)*b+float64(c))
		}
		fit := FitPlane(x1, x2, ys)
		return approx(fit.B1, float64(b1), 1e-5) && approx(fit.B2, float64(b2), 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
