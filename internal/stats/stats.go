// Package stats provides the small statistical toolkit the experiment
// harness uses to turn batch telemetry into the paper's tables and figures:
// summary statistics, least-squares fits, histograms, and percentiles.
package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics reported in the paper's tables
// (e.g. Table 2 and Table 3 report Avg/Std. Dev./Min./Max.).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	// Population standard deviation: the paper reports spread over the
	// full set of observed batches, not a sample estimate.
	s.StdDev = math.Sqrt(ss / float64(s.N))
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit is a least-squares line y = Slope*x + Intercept, with the
// coefficient of determination R2. Figure 6 reports such best fits of batch
// time against migrated bytes.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine computes the least-squares fit of ys against xs. It panics if the
// slices differ in length, and returns a zero fit for fewer than two points
// or degenerate (constant-x) input.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLine length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}
	}
	f := LinearFit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot > 0 {
		var ssRes float64
		for i := range xs {
			r := ys[i] - (f.Slope*xs[i] + f.Intercept)
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/ssTot
	}
	return f
}

// Fit2 is a least-squares plane y = B1*x1 + B2*x2 + Intercept.
type Fit2 struct {
	B1, B2    float64
	Intercept float64
}

// FitPlane solves the two-predictor least-squares problem by normal
// equations. Figure 10's analysis uses it to separate the per-byte and
// per-VABlock components of batch cost. Degenerate systems return a zero
// fit. It panics on length mismatch.
func FitPlane(x1, x2, ys []float64) Fit2 {
	if len(x1) != len(ys) || len(x2) != len(ys) {
		panic("stats: FitPlane length mismatch")
	}
	n := float64(len(ys))
	if len(ys) < 3 {
		return Fit2{}
	}
	var s1, s2, sy, s11, s22, s12, s1y, s2y float64
	for i := range ys {
		s1 += x1[i]
		s2 += x2[i]
		sy += ys[i]
		s11 += x1[i] * x1[i]
		s22 += x2[i] * x2[i]
		s12 += x1[i] * x2[i]
		s1y += x1[i] * ys[i]
		s2y += x2[i] * ys[i]
	}
	// Solve the 3x3 normal equations via Cramer's rule:
	// | s11 s12 s1 | |B1|   |s1y|
	// | s12 s22 s2 | |B2| = |s2y|
	// | s1  s2  n  | |I |   |sy |
	det := s11*(s22*n-s2*s2) - s12*(s12*n-s2*s1) + s1*(s12*s2-s22*s1)
	if det == 0 {
		return Fit2{}
	}
	d1 := s1y*(s22*n-s2*s2) - s12*(s2y*n-s2*sy) + s1*(s2y*s2-s22*sy)
	d2 := s11*(s2y*n-s2*sy) - s1y*(s12*n-s2*s1) + s1*(s12*sy-s2y*s1)
	d3 := s11*(s22*sy-s2*s2y) - s12*(s12*sy-s1*s2y) + s1y*(s12*s2-s22*s1)
	return Fit2{B1: d1 / det, B2: d2 / det, Intercept: d3 / det}
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram buckets xs into nbins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with nbins bins. Values outside
// [min, max] clamp to the edge bins. It panics for nbins < 1.
func NewHistogram(xs []float64, min, max float64, nbins int) Histogram {
	if nbins < 1 {
		panic("stats: NewHistogram with nbins < 1")
	}
	h := Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - min) / width)
		}
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}

// GroupBy buckets values by an integer key, preserving insertion order of
// first appearance. The experiment harness uses it to group batch records
// (e.g. by eviction count for Figure 13's cost levels).
func GroupBy(keys []int, values []float64) (order []int, groups map[int][]float64) {
	if len(keys) != len(values) {
		panic("stats: GroupBy length mismatch")
	}
	groups = make(map[int][]float64)
	for i, k := range keys {
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], values[i])
	}
	return order, groups
}
