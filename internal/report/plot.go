package report

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIPlot renders a scatter of (x, y) pairs from two series columns as a
// terminal plot — the quick-look view `paperfigs -v` and faultviz use so
// figure shapes are inspectable without leaving the shell.
func (s *Series) ASCIIPlot(xCol, yCol string, width, height int) string {
	xi, yi := -1, -1
	for i, c := range s.Columns {
		if c == xCol {
			xi = i
		}
		if c == yCol {
			yi = i
		}
	}
	if xi < 0 || yi < 0 {
		return fmt.Sprintf("(no columns %q/%q in series %q)\n", xCol, yCol, s.Title)
	}
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(s.Rows) == 0 {
		return "(empty series)\n"
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, row := range s.Rows {
		x, y := row[xi], row[yi]
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	counts := make([][]int, height)
	for r := range counts {
		counts[r] = make([]int, width)
	}
	for _, row := range s.Rows {
		cx := int((row[xi] - minX) / (maxX - minX) * float64(width-1))
		cy := int((row[yi] - minY) / (maxY - minY) * float64(height-1))
		counts[height-1-cy][cx]++
	}
	const shades = ".:*#@"
	for r := 0; r < height; r++ {
		for c := 0; c < width; c++ {
			n := counts[r][c]
			if n == 0 {
				continue
			}
			idx := n - 1
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			grid[r][c] = shades[idx]
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s vs %s\n", s.Title, yCol, xCol)
	fmt.Fprintf(&sb, "%11.4g +%s\n", maxY, strings.Repeat("-", width))
	for r := 0; r < height; r++ {
		fmt.Fprintf(&sb, "%11s |%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%11.4g +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%12s%-.4g%*s%.4g\n", "", minX, width-8, "", maxX)
	return sb.String()
}
