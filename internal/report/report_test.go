package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 10)
	out := tb.String()
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("x,y", `quote"d`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"quote""d"`) {
		t.Errorf("quote cell not escaped: %s", csv)
	}
}

func TestSeriesCSVAndPreview(t *testing.T) {
	s := Series{Title: "S", Columns: []string{"x", "y"}}
	for i := 0; i < 10; i++ {
		s.AddRow(float64(i), float64(i*i))
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,y\n0,0\n1,1\n") {
		t.Errorf("csv head wrong: %s", csv[:30])
	}
	prev := s.Preview(3)
	if !strings.Contains(prev, "7 more rows") {
		t.Errorf("preview truncation note missing:\n%s", prev)
	}
}

func TestSeriesAddRowCopies(t *testing.T) {
	s := Series{Columns: []string{"x"}}
	buf := []float64{1}
	s.AddRow(buf...)
	buf[0] = 99
	if s.Rows[0][0] != 1 {
		t.Fatal("AddRow aliased caller slice")
	}
}

func TestASCIIPlotRendersPoints(t *testing.T) {
	s := Series{Title: "demo", Columns: []string{"x", "y"}}
	for i := 0; i < 20; i++ {
		s.AddRow(float64(i), float64(i*i))
	}
	out := s.ASCIIPlot("x", "y", 40, 10)
	if !strings.Contains(out, "demo: y vs x") {
		t.Fatalf("missing title:\n%s", out)
	}
	marks := strings.Count(out, ".") + strings.Count(out, ":") +
		strings.Count(out, "*") + strings.Count(out, "#") + strings.Count(out, "@")
	if marks < 10 {
		t.Fatalf("too few plotted marks (%d):\n%s", marks, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 14 { // title + top axis + 10 rows + bottom axis + x labels
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestASCIIPlotDegenerate(t *testing.T) {
	s := Series{Title: "d", Columns: []string{"x", "y"}}
	if out := s.ASCIIPlot("x", "y", 20, 5); !strings.Contains(out, "empty series") {
		t.Fatalf("empty series output: %s", out)
	}
	s.AddRow(1, 1)
	// Single point: ranges degenerate, must not panic.
	out := s.ASCIIPlot("x", "y", 20, 5)
	if !strings.Contains(out, "d: y vs x") {
		t.Fatalf("single point plot broken:\n%s", out)
	}
	if out := s.ASCIIPlot("nope", "y", 20, 5); !strings.Contains(out, "no columns") {
		t.Fatalf("missing-column message wrong: %s", out)
	}
}

func TestASCIIPlotDensityShading(t *testing.T) {
	s := Series{Title: "dense", Columns: []string{"x", "y"}}
	for i := 0; i < 100; i++ {
		s.AddRow(0, 0) // all points in one cell
	}
	s.AddRow(10, 10) // stretch the range
	out := s.ASCIIPlot("x", "y", 10, 5)
	if !strings.Contains(out, "@") {
		t.Fatalf("hot cell not shaded densest:\n%s", out)
	}
}
