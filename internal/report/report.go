// Package report renders experiment output: aligned ASCII tables matching
// the paper's table layout, and CSV series for figure data.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

// Series is numeric figure data: named columns over rows of float64.
type Series struct {
	Title   string
	Columns []string
	Rows    [][]float64
}

// AddRow appends one data point.
func (s *Series) AddRow(vals ...float64) {
	row := make([]float64, len(vals))
	copy(row, vals)
	s.Rows = append(s.Rows, row)
}

// CSV renders the series as comma-separated values.
func (s *Series) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, s.Columns)
	for _, row := range s.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%g", v)
		}
		writeCSVRow(&sb, cells)
	}
	return sb.String()
}

// Preview renders the first n rows as an aligned table for terminals.
func (s *Series) Preview(n int) string {
	t := Table{Title: s.Title, Headers: s.Columns}
	for i, row := range s.Rows {
		if i >= n {
			break
		}
		cells := make([]interface{}, len(row))
		for j, v := range row {
			cells[j] = fmt.Sprintf("%g", v)
		}
		t.AddRow(cells...)
	}
	out := t.String()
	if len(s.Rows) > n {
		out += fmt.Sprintf("... (%d more rows)\n", len(s.Rows)-n)
	}
	return out
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
}
