package gpu

import (
	"fmt"
	"strings"

	"guvm/internal/digest"
	"guvm/internal/mem"
)

// AuditState is the canonical snapshot of the device model: fault-buffer
// occupancy, per-µTLB pending/deferred/stalled populations, kernel
// progress, and the accumulated statistics. At a clean end of run every
// occupancy field must be zero — a non-empty µTLB after the queue drained
// means a lost fault.
type AuditState struct {
	BufferLen int
	Running   bool
	// LiveBlocks counts thread blocks resident on SMs; NextBlock is the
	// grid launch cursor.
	LiveBlocks int
	NextBlock  int
	NextWarpID int
	// Per-µTLB occupancy, indexed by µTLB id.
	PendingPerUTLB  []int
	PrefetchPerUTLB []int
	DeferredPerUTLB []int
	StalledPerUTLB  []int
	// PendingPages flattens every pending fault page (replayable then
	// prefetch, per µTLB, in insertion order) so digests see the exact
	// outstanding-fault population, not just its size.
	PendingPages []mem.PageID
	// Killed reports catastrophic device loss (Device.Kill).
	Killed bool
	Stats  Stats
}

// TotalPending sums outstanding fault entries across µTLBs.
func (st *AuditState) TotalPending() int {
	n := 0
	for i := range st.PendingPerUTLB {
		n += st.PendingPerUTLB[i] + st.PrefetchPerUTLB[i] + st.DeferredPerUTLB[i]
	}
	return n
}

// AuditState captures the canonical device state for auditing.
func (d *Device) AuditState() AuditState {
	st := AuditState{
		BufferLen:  d.Buffer.Len(),
		Running:    d.launched,
		LiveBlocks: d.liveBlocks,
		NextBlock:  d.nextBlock,
		NextWarpID: d.nextWarpID,
		Killed:     d.killed,
		Stats:      d.stats,
	}
	for _, u := range d.utlbs {
		st.PendingPerUTLB = append(st.PendingPerUTLB, len(u.pending))
		st.PrefetchPerUTLB = append(st.PrefetchPerUTLB, len(u.prefetchPending))
		st.DeferredPerUTLB = append(st.DeferredPerUTLB, len(u.deferred))
		st.StalledPerUTLB = append(st.StalledPerUTLB, len(u.stalled))
		st.PendingPages = append(st.PendingPages, u.order...)
		st.PendingPages = append(st.PendingPages, u.prefetchOrder...)
	}
	return st
}

// Digest returns the FNV-1a digest of the canonical device state.
func (d *Device) Digest() uint64 {
	st := d.AuditState()
	h := digest.New()
	h = h.Int(st.BufferLen).Bool(st.Running)
	h = h.Int(st.LiveBlocks).Int(st.NextBlock).Int(st.NextWarpID)
	for i := range st.PendingPerUTLB {
		h = h.Int(st.PendingPerUTLB[i]).Int(st.PrefetchPerUTLB[i])
		h = h.Int(st.DeferredPerUTLB[i]).Int(st.StalledPerUTLB[i])
	}
	h = h.Int(len(st.PendingPages))
	for _, p := range st.PendingPages {
		h = h.Uint64(uint64(p))
	}
	s := st.Stats
	h = h.Int(s.FaultsEmitted).Int(s.DupFaults).Int(s.Refaults)
	h = h.Int(s.ThrottleStalls).Int(s.UTLBFullStalls).Int(s.BlocksCompleted)
	h = h.Int(s.InjectedDrops).Int(s.InjectedDropRetries).Int(s.InjectedDropsLost)
	// Architecture telemetry folds in only when non-zero, keeping the
	// default host-driven digests bit-identical to their goldens.
	if s.RemoteAccesses != 0 || s.CounterNotices != 0 {
		h = h.Int(s.RemoteAccesses).Int(s.CounterNotices)
	}
	// A killed device folds the flag in; live devices keep their
	// historical digests bit-identical.
	if st.Killed {
		h = h.Bool(true)
	}
	return h.Sum()
}

// Dump renders the audit state for divergence diagnostics.
func (st AuditState) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gpu: buffer %d, running %v, live blocks %d (next %d), stats %+v\n",
		st.BufferLen, st.Running, st.LiveBlocks, st.NextBlock, st.Stats)
	for i := range st.PendingPerUTLB {
		if st.PendingPerUTLB[i]+st.PrefetchPerUTLB[i]+st.DeferredPerUTLB[i]+st.StalledPerUTLB[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  utlb %d: %d pending, %d prefetch, %d deferred, %d stalled warps\n",
			i, st.PendingPerUTLB[i], st.PrefetchPerUTLB[i], st.DeferredPerUTLB[i], st.StalledPerUTLB[i])
	}
	return b.String()
}
