package gpu

import (
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// Fault is one entry of the GPU fault buffer: the metadata the GMMU writes
// and the instrumented driver of the paper logs per fault (timestamp, SM of
// origin, µTLB, page, access type).
type Fault struct {
	Time sim.Time // arrival time in the fault buffer
	// Issued is when the GMMU observed the faulting access — before the
	// GMMU latency and any injected-drop re-deliveries that delay Time.
	// The lifecycle profiler's "arrival" mark; never hashed by audits.
	Issued sim.Time
	Page   mem.PageID
	SM     int
	UTLB   int
	Warp   int // global warp id
	Block  int // thread block index
	Kind   AccessKind
	// Dup marks a hardware-visible duplicate: a fault written while the
	// same page already had a pending entry in the same µTLB.
	Dup bool
}

// FaultBuffer is the circular buffer in GPU memory that the GMMU fills and
// the host driver drains (§2.1). The driver configures its size; overflow
// drops fault records (the underlying accesses re-fault at the next
// replay, so nothing is lost except work).
type FaultBuffer struct {
	entries  []Fault
	capacity int
	// Dropped counts hardware-overflow drops (buffer full).
	Dropped int
	// Flushed counts records discarded by buffer flushes before replay.
	Flushed int
	// Pushed counts all records ever written.
	Pushed int
}

// NewFaultBuffer returns a buffer holding up to capacity entries.
func NewFaultBuffer(capacity int) *FaultBuffer {
	if capacity < 1 {
		panic("gpu: fault buffer capacity must be positive")
	}
	return &FaultBuffer{capacity: capacity}
}

// Len returns the number of buffered faults.
func (b *FaultBuffer) Len() int { return len(b.entries) }

// Push appends a fault record. It reports false on overflow.
func (b *FaultBuffer) Push(f Fault) bool {
	if len(b.entries) >= b.capacity {
		b.Dropped++
		return false
	}
	b.entries = append(b.entries, f)
	b.Pushed++
	return true
}

// Fetch removes and returns up to max faults in arrival order. This is the
// driver's batch-formation read: "read faults until the batch size limit
// is reached or no faults remain" (§2.2).
func (b *FaultBuffer) Fetch(max int) []Fault {
	n := len(b.entries)
	if n > max {
		n = max
	}
	out := make([]Fault, n)
	copy(out, b.entries[:n])
	b.entries = append(b.entries[:0], b.entries[n:]...)
	return out
}

// Flush discards all buffered faults, returning how many were dropped. The
// driver flushes before each replay; dropped non-duplicates re-fault.
func (b *FaultBuffer) Flush() int {
	n := len(b.entries)
	b.entries = b.entries[:0]
	b.Flushed += n
	return n
}
