// Package gpu models the device side of the UVM system: streaming
// multiprocessors executing warp programs, the per-µTLB outstanding-fault
// limit, the per-SM fault-rate throttle, the GMMU fault buffer, and fault
// replay. The model reproduces the paper's §3 fault-generation mechanics:
// reads issue faults without blocking, scoreboard dependencies serialize
// dependent stores behind loads, a µTLB holds at most 56 outstanding
// faults, and software prefetch instructions bypass both limits.
package gpu

import (
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// AccessKind classifies a memory access and the fault it may raise.
type AccessKind uint8

const (
	// AccessRead is a global load (LDG): non-blocking until a dependent
	// instruction needs the destination register.
	AccessRead AccessKind = iota
	// AccessWrite is a global store (STG): issued only after its operand
	// registers are ready (the Listing 2 scoreboard stall).
	AccessWrite
	// AccessPrefetch is a prefetch.global.L2-style access: it uses no
	// scoreboard register and bypasses the µTLB outstanding-fault limit
	// and the SM fault-rate throttle (§3.2, Figure 5).
	AccessPrefetch
	// AccessNotify is not a memory access but a counter-threshold
	// crossing surfaced to the driver through the fault buffer
	// (access-counter architecture). No µTLB entry is made and no access
	// waits on its replay.
	AccessNotify
)

// String returns a short name for the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessPrefetch:
		return "prefetch"
	case AccessNotify:
		return "notify"
	}
	return "unknown"
}

// OpKind identifies a warp program operation.
type OpKind uint8

const (
	// OpRead loads the given pages, setting scoreboard register Dst.
	OpRead OpKind = iota
	// OpWrite stores to the given pages after registers Deps are ready.
	OpWrite
	// OpPrefetch prefetches the given pages with no scoreboard use.
	OpPrefetch
	// OpCompute occupies the warp for Dur after Deps are ready.
	OpCompute
)

// Op is one operation of a warp program. Memory operations are modeled at
// page granularity: Pages lists the distinct pages the warp's (coalesced)
// lanes touch in this instruction.
type Op struct {
	Kind  OpKind
	Pages []mem.PageID
	Dst   int   // scoreboard register written by OpRead; ignored otherwise
	Deps  []int // registers that must be ready before OpWrite/OpCompute issue
	Dur   sim.Time
}

// Program is the instruction stream of one warp.
type Program []Op

// Read builds an OpRead touching pages, writing scoreboard register dst.
func Read(dst int, pages ...mem.PageID) Op {
	return Op{Kind: OpRead, Dst: dst, Pages: pages}
}

// Write builds an OpWrite touching pages after deps are ready.
func Write(deps []int, pages ...mem.PageID) Op {
	return Op{Kind: OpWrite, Deps: deps, Pages: pages}
}

// Prefetch builds an OpPrefetch touching pages.
func Prefetch(pages ...mem.PageID) Op {
	return Op{Kind: OpPrefetch, Pages: pages}
}

// Compute builds an OpCompute lasting dur after deps are ready.
func Compute(dur sim.Time, deps ...int) Op {
	return Op{Kind: OpCompute, Dur: dur, Deps: deps}
}

// PageRange returns the pages [first, first+n).
func PageRange(first mem.PageID, n int) []mem.PageID {
	pages := make([]mem.PageID, n)
	for i := range pages {
		pages[i] = first + mem.PageID(i)
	}
	return pages
}

// Kernel is a grid of thread blocks. BlockProgram is called lazily, once
// per launched block, so large grids need not materialize up front.
type Kernel struct {
	NumBlocks    int
	BlockProgram func(block int) []Program
}
