package gpu

import "guvm/internal/mem"

// AccessCounters is the GPU's per-VABlock access-counter facility. Real
// NVIDIA hardware since Volta carries such counters; the paper's related
// work (Ganguly et al.) calls them "existing but sparsely utilized" and
// the paper itself notes the LRU evictor is blind because "the UVM driver
// has no information about page hits" (§5.4). The device increments a
// block's counter on every *resident* (non-faulting) access; the driver
// may read and clear them to make hit-aware policy decisions.
type AccessCounters struct {
	counts map[mem.VABlockID]uint64
	// Granularity rounds page accesses to counter buckets; the paper's
	// hardware aggregates at large granularity. We count per VABlock.
	enabled bool
	// threshold, when non-zero, makes recordRemote report the exact
	// access on which a block's counter crosses it (the access-counter
	// architecture's migration trigger).
	threshold uint64
}

// NewAccessCounters returns a disabled counter bank (matching the real
// driver, which leaves the feature off by default).
func NewAccessCounters() *AccessCounters {
	return &AccessCounters{counts: make(map[mem.VABlockID]uint64)}
}

// Enable turns counting on.
func (c *AccessCounters) Enable() { c.enabled = true }

// Enabled reports whether counting is on.
func (c *AccessCounters) Enabled() bool { return c.enabled }

// record notes one resident access to page p.
func (c *AccessCounters) record(p mem.PageID) {
	if !c.enabled {
		return
	}
	c.counts[p.VABlock()]++
}

// SetThreshold arms the crossing signal recordRemote reports (0 disarms).
func (c *AccessCounters) SetThreshold(t uint64) { c.threshold = t }

// recordRemote notes one remote (host-memory) access to page p and
// reports whether the block's counter crossed the armed threshold on
// exactly this access — true at most once per Clear cycle.
func (c *AccessCounters) recordRemote(p mem.PageID) bool {
	if !c.enabled {
		return false
	}
	b := p.VABlock()
	c.counts[b]++
	return c.threshold > 0 && c.counts[b] == c.threshold
}

// Read returns the counter for a block.
func (c *AccessCounters) Read(b mem.VABlockID) uint64 { return c.counts[b] }

// Clear zeroes one block's counter (the driver clears on eviction).
func (c *AccessCounters) Clear(b mem.VABlockID) { delete(c.counts, b) }

// Total returns the summed counters (diagnostics).
func (c *AccessCounters) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}
