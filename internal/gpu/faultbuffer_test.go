package gpu

import (
	"testing"
	"testing/quick"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

func TestFaultBufferPushFetch(t *testing.T) {
	b := NewFaultBuffer(10)
	for i := 0; i < 5; i++ {
		if !b.Push(Fault{Page: mem.PageID(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.Len() != 5 {
		t.Fatalf("len = %d", b.Len())
	}
	got := b.Fetch(3)
	if len(got) != 3 || got[0].Page != 0 || got[2].Page != 2 {
		t.Fatalf("fetch = %v", got)
	}
	if b.Len() != 2 {
		t.Fatalf("len after fetch = %d", b.Len())
	}
	rest := b.Fetch(100)
	if len(rest) != 2 || rest[0].Page != 3 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestFaultBufferOverflowDrops(t *testing.T) {
	b := NewFaultBuffer(2)
	b.Push(Fault{Page: 1})
	b.Push(Fault{Page: 2})
	if b.Push(Fault{Page: 3}) {
		t.Fatal("push beyond capacity succeeded")
	}
	if b.Dropped != 1 {
		t.Fatalf("Dropped = %d", b.Dropped)
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestFaultBufferFlush(t *testing.T) {
	b := NewFaultBuffer(10)
	for i := 0; i < 7; i++ {
		b.Push(Fault{Page: mem.PageID(i)})
	}
	if n := b.Flush(); n != 7 {
		t.Fatalf("Flush = %d", n)
	}
	if b.Len() != 0 || b.Flushed != 7 {
		t.Fatalf("post-flush state: len=%d flushed=%d", b.Len(), b.Flushed)
	}
	if n := b.Flush(); n != 0 {
		t.Fatalf("empty Flush = %d", n)
	}
}

func TestFaultBufferPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFaultBuffer(0)
}

// Property: FIFO order is preserved across arbitrary push/fetch sequences.
func TestFaultBufferFIFO(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewFaultBuffer(1 << 16)
		nextIn := 0
		nextOut := 0
		for _, o := range ops {
			if o%3 == 0 {
				got := b.Fetch(int(o%7) + 1)
				for _, ft := range got {
					if ft.Page != mem.PageID(nextOut) {
						return false
					}
					nextOut++
				}
			} else {
				b.Push(Fault{Page: mem.PageID(nextIn)})
				nextIn++
			}
		}
		return b.Len() == nextIn-nextOut
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pushed - Flushed - Dropped - fetched = Len.
func TestFaultBufferAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewFaultBuffer(32)
		fetched := 0
		for i, o := range ops {
			switch o % 4 {
			case 0:
				fetched += len(b.Fetch(3))
			case 1:
				b.Flush()
			default:
				b.Push(Fault{Page: mem.PageID(i)})
			}
		}
		return b.Pushed-b.Flushed-fetched == b.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" ||
		AccessPrefetch.String() != "prefetch" {
		t.Fatal("AccessKind strings wrong")
	}
	if AccessKind(99).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestPageRange(t *testing.T) {
	pr := PageRange(10, 3)
	if len(pr) != 3 || pr[0] != 10 || pr[2] != 12 {
		t.Fatalf("PageRange = %v", pr)
	}
	if len(PageRange(0, 0)) != 0 {
		t.Fatal("empty PageRange not empty")
	}
}

func TestOpConstructors(t *testing.T) {
	r := Read(2, 5, 6)
	if r.Kind != OpRead || r.Dst != 2 || len(r.Pages) != 2 {
		t.Fatalf("Read = %+v", r)
	}
	w := Write([]int{1, 2}, 9)
	if w.Kind != OpWrite || len(w.Deps) != 2 || w.Pages[0] != 9 {
		t.Fatalf("Write = %+v", w)
	}
	p := Prefetch(1, 2, 3)
	if p.Kind != OpPrefetch || len(p.Pages) != 3 {
		t.Fatalf("Prefetch = %+v", p)
	}
	c := Compute(100, 1)
	if c.Kind != OpCompute || c.Dur != 100 || c.Deps[0] != 1 {
		t.Fatalf("Compute = %+v", c)
	}
}

func TestAccessCountersDisabledByDefault(t *testing.T) {
	c := NewAccessCounters()
	c.record(mem.PageID(5))
	if c.Total() != 0 || c.Enabled() {
		t.Fatal("disabled counters recorded accesses")
	}
	c.Enable()
	c.record(mem.PageID(5))
	c.record(mem.PageID(6))              // same VABlock
	c.record(mem.VABlockID(3).PageAt(0)) // another block
	if got := c.Read(mem.PageID(5).VABlock()); got != 2 {
		t.Fatalf("block count = %d, want 2", got)
	}
	if c.Total() != 3 {
		t.Fatalf("total = %d, want 3", c.Total())
	}
	c.Clear(mem.PageID(5).VABlock())
	if c.Read(mem.PageID(5).VABlock()) != 0 || c.Total() != 1 {
		t.Fatal("Clear wrong")
	}
}

func TestDeviceCountsResidentAccesses(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	dev.Counters.Enable()
	for i := mem.PageID(0); i < 8; i++ {
		f.resident[i] = true
	}
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{Read(0, PageRange(0, 8)...), Read(1, PageRange(0, 8)...)}}
	}}, func() {})
	run(t, eng)
	if got := dev.Counters.Read(0); got != 16 {
		t.Fatalf("counter = %d, want 16 (two passes over 8 resident pages)", got)
	}
}

func TestDeviceCountsExcludeFaults(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	dev.Counters.Enable()
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{Read(0, PageRange(0, 8)...)}}
	}}, func() {})
	run(t, eng)
	// First touches fault; the only counted accesses would be re-reads,
	// which this kernel doesn't perform.
	if got := dev.Counters.Total(); got != 0 {
		t.Fatalf("counters = %d, want 0 for all-faulting kernel", got)
	}
}
