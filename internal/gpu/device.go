package gpu

import (
	"fmt"

	"guvm/internal/faultinject"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// Config describes the modeled GPU. Defaults follow the paper's testbed, a
// Titan V (Volta, 80 SMs), with the µTLB and throttling behaviour the
// paper derives experimentally in §3.
type Config struct {
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SMsPerUTLB is how many adjacent SMs share one µTLB ("adjacent SMs
	// share a µTLB", §4.2).
	SMsPerUTLB int
	// MaxFaultsPerUTLB is the maximum outstanding replayable faults per
	// µTLB; the paper measures 56 on Volta (§3.2).
	MaxFaultsPerUTLB int
	// FaultThrottleGap is the minimum interval between fault issues from
	// one SM (the far-fault rate-limiting mechanism, §3.2).
	FaultThrottleGap sim.Time
	// GMMULatency is the delay from fault generation to its record
	// landing in the fault buffer.
	GMMULatency sim.Time
	// InterruptLatency is the delay from buffer write to driver wakeup.
	InterruptLatency sim.Time
	// FaultBufferEntries sizes the circular fault buffer.
	FaultBufferEntries int
	// MaxBlocksPerSM bounds concurrently resident thread blocks per SM.
	MaxBlocksPerSM int
	// OpIssueTime is the pipeline cost of issuing one warp operation.
	OpIssueTime sim.Time
	// MemLatency is the latency of a non-faulting global memory access.
	MemLatency sim.Time
	// RemoteAccessLatency is the latency of a non-faulting access to a
	// remote-mapped page: the data is fetched from host memory across the
	// link (access-counter architecture).
	RemoteAccessLatency sim.Time
	// DirectNotifyLatency replaces InterruptLatency when the fault
	// observer runs on-device (SetDirectObservation): the delay from a
	// buffer write to the page-management unit noticing it.
	DirectNotifyLatency sim.Time
}

// DefaultTitanV returns the paper-testbed GPU profile.
func DefaultTitanV() Config {
	return Config{
		NumSMs:              80,
		SMsPerUTLB:          2,
		MaxFaultsPerUTLB:    56,
		FaultThrottleGap:    500 * sim.Nanosecond,
		GMMULatency:         1 * sim.Microsecond,
		InterruptLatency:    2 * sim.Microsecond,
		FaultBufferEntries:  8192,
		MaxBlocksPerSM:      2,
		OpIssueTime:         20 * sim.Nanosecond,
		MemLatency:          400 * sim.Nanosecond,
		RemoteAccessLatency: 1200 * sim.Nanosecond,
		DirectNotifyLatency: 250 * sim.Nanosecond,
	}
}

// Validate checks the configuration for values the model cannot run with.
func (c Config) Validate() error {
	switch {
	case c.NumSMs < 1:
		return fmt.Errorf("gpu: NumSMs = %d, need >= 1", c.NumSMs)
	case c.SMsPerUTLB < 1:
		return fmt.Errorf("gpu: SMsPerUTLB = %d, need >= 1", c.SMsPerUTLB)
	case c.MaxFaultsPerUTLB < 1:
		return fmt.Errorf("gpu: MaxFaultsPerUTLB = %d, need >= 1", c.MaxFaultsPerUTLB)
	case c.FaultBufferEntries < 1:
		return fmt.Errorf("gpu: FaultBufferEntries = %d, need >= 1", c.FaultBufferEntries)
	case c.MaxBlocksPerSM < 1:
		return fmt.Errorf("gpu: MaxBlocksPerSM = %d, need >= 1", c.MaxBlocksPerSM)
	}
	return nil
}

// ResidencyChecker answers whether a page is resident in GPU memory. The
// UVM driver model implements it; the device consults it on every access.
type ResidencyChecker interface {
	IsResidentOnGPU(p mem.PageID) bool
}

// RemoteChecker extends a ResidencyChecker with remote-mapping state: a
// page may be GPU-accessible across the link while its data stays in
// host memory (the access-counter architecture). RemoteMappingActive
// gates installation — when it reports false at construction the device
// never consults the check, keeping the access hot path the historical
// resident-or-fault two-way split.
type RemoteChecker interface {
	ResidencyChecker
	IsRemoteOnGPU(p mem.PageID) bool
	RemoteMappingActive() bool
}

// Stats aggregates device-side fault accounting.
type Stats struct {
	FaultsEmitted   int // fault records written to the buffer
	DupFaults       int // records written while the page was already pending
	Refaults        int // accesses re-faulted after an unserviced replay
	ThrottleStalls  int // issue attempts delayed by the SM rate throttle
	UTLBFullStalls  int // warp stalls on µTLB capacity
	BlocksCompleted int

	// Fault-injection telemetry (zero unless an injector is attached).
	InjectedDrops       int // delivery attempts dropped by injection
	InjectedDropRetries int // hardware re-emissions after an injected drop
	InjectedDropsLost   int // drops whose re-emission budget ran out

	// Architecture telemetry (zero under the default host-driven arch).
	RemoteAccesses int // accesses satisfied from host memory via remote mapping
	CounterNotices int // notification faults emitted on counter threshold crossings
}

// access is one outstanding page access by one warp. Instances are
// pooled on the Device free list: an access is recycled exactly where
// its lifecycle ends (warp.satisfy), never while a faultEntry waiter
// list or the replay recheck buffer can still reach it.
type access struct {
	warp *warp
	page mem.PageID
	kind AccessKind
	reg  int // destination scoreboard register for reads, else -1
}

// satisfyAccFn is the arg-carrying completion callback for a memory
// access. A top-level func(any) lets the hot issue/recheck paths
// schedule completions through ScheduleArg with zero closures.
func satisfyAccFn(v any) {
	a := v.(*access)
	a.warp.satisfy(a)
}

// deliverEv is a pooled in-flight fault-record delivery (emitFault ->
// deliver after the GMMU latency). Injection retries reschedule the
// same struct with attempt incremented, so one logical record costs one
// allocation at most, usually none.
type deliverEv struct {
	d       *Device
	f       Fault
	attempt int
}

func deliverFn(v any) {
	de := v.(*deliverEv)
	de.d.deliver(de)
}

// emitEv is a pooled deferred fault emission: the re-fault path's
// throttle-paced hop before emitFault. Kept as its own event so the
// refault chain stays two events (pace, then deliver) — the engine
// sequence numbers, and therefore the digests, depend on it.
type emitEv struct {
	d    *Device
	page mem.PageID
	w    *warp
	kind AccessKind
}

func emitFn(v any) {
	ee := v.(*emitEv)
	d := ee.d
	d.emitFault(ee.page, ee.w, ee.kind, false)
	d.emitFree = append(d.emitFree, ee)
}

// faultEntry is a pending µTLB fault: the page plus all accesses waiting
// on it from this µTLB's SMs.
type faultEntry struct {
	page      mem.PageID
	firstWarp int
	waiters   []*access
}

// utlb models one µTLB shared by a group of adjacent SMs.
type utlb struct {
	id  int
	dev *Device
	// pending are replayable fault entries, capped at MaxFaultsPerUTLB.
	pending map[mem.PageID]*faultEntry
	order   []mem.PageID // insertion order of pending, for determinism
	// prefetchPending tracks prefetch faults, which bypass the cap.
	prefetchPending map[mem.PageID]*faultEntry
	prefetchOrder   []mem.PageID
	// stalled warps wait for µTLB capacity.
	stalled []*warp
	// deferred accesses re-fault after a replay found no capacity.
	deferred []*access
}

func newUTLB(id int, dev *Device) *utlb {
	return &utlb{
		id:              id,
		dev:             dev,
		pending:         make(map[mem.PageID]*faultEntry),
		prefetchPending: make(map[mem.PageID]*faultEntry),
	}
}

// smState models one streaming multiprocessor.
type smState struct {
	id          int
	dev         *Device
	utlb        *utlb
	nextFaultOK sim.Time // throttle: earliest next fault issue
	live        int      // resident blocks
}

// blockRun tracks a launched thread block.
type blockRun struct {
	index     int
	sm        *smState
	warps     []*warp
	remaining int
}

// warp executes one warp program as a little state machine driven by
// engine events.
type warp struct {
	dev   *Device
	sm    *smState
	block *blockRun
	id    int

	prog   Program
	pc     int
	opPage int // progress within the current op's page list

	regOut      map[int]int // register -> outstanding loads
	outstanding int         // unsatisfied accesses in flight

	waitingRegs   bool
	inFlight      bool // a continuation event is scheduled
	finishedIssue bool
	completed     bool

	// cont and wakeFn are the warp's two callbacks, bound once at warp
	// creation so every schedule/wake reuses them instead of allocating
	// a fresh closure or method value per event.
	cont   func()
	wakeFn func()
}

// Device is the modeled GPU.
type Device struct {
	cfg Config
	eng *sim.Engine
	res ResidencyChecker

	Buffer *FaultBuffer
	utlbs  []*utlb
	sms    []*smState

	onInterrupt func()
	// notifyLat is the buffer-write -> observer-wakeup delay in force:
	// InterruptLatency by default, DirectNotifyLatency after
	// SetDirectObservation (gpu-driven architecture).
	notifyLat sim.Time
	// remote, when installed from a RemoteChecker, reports remote-mapped
	// pages; nil keeps the access path the two-way resident/fault split.
	remote func(p mem.PageID) bool

	kernel     Kernel
	nextBlock  int
	liveBlocks int
	launched   bool
	doneCb     func()

	// Counters is the per-VABlock access-counter bank (disabled unless
	// the driver enables it).
	Counters *AccessCounters

	inj        *faultinject.Injector
	nextWarpID int
	killed     bool
	stats      Stats

	// Free lists for the per-event hot-path records. Recycling them (plus
	// the arg-carrying schedule callbacks above) is what keeps the
	// device's steady-state event traffic allocation-free.
	accFree    []*access
	feFree     []*faultEntry
	delivFree  []*deliverEv
	emitFree   []*emitEv
	recheckBuf []*access // replay scratch, reused across replays
}

func (d *Device) newAccess() *access {
	if n := len(d.accFree); n > 0 {
		a := d.accFree[n-1]
		d.accFree = d.accFree[:n-1]
		return a
	}
	return &access{}
}

func (d *Device) newFaultEntry() *faultEntry {
	if n := len(d.feFree); n > 0 {
		e := d.feFree[n-1]
		d.feFree = d.feFree[:n-1]
		return e
	}
	return &faultEntry{}
}

func (d *Device) freeFaultEntry(e *faultEntry) {
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	d.feFree = append(d.feFree, e)
}

func (d *Device) newDeliverEv() *deliverEv {
	if n := len(d.delivFree); n > 0 {
		de := d.delivFree[n-1]
		d.delivFree = d.delivFree[:n-1]
		return de
	}
	return &deliverEv{d: d}
}

func (d *Device) newEmitEv() *emitEv {
	if n := len(d.emitFree); n > 0 {
		ee := d.emitFree[n-1]
		d.emitFree = d.emitFree[:n-1]
		return ee
	}
	return &emitEv{d: d}
}

// NewDevice builds a device on the given engine with the given residency
// oracle. An invalid configuration is an error.
func NewDevice(cfg Config, eng *sim.Engine, res ResidencyChecker) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:       cfg,
		eng:       eng,
		res:       res,
		Buffer:    NewFaultBuffer(cfg.FaultBufferEntries),
		Counters:  NewAccessCounters(),
		notifyLat: cfg.InterruptLatency,
	}
	if rc, ok := res.(RemoteChecker); ok && rc.RemoteMappingActive() {
		d.remote = rc.IsRemoteOnGPU
	}
	numUTLBs := (cfg.NumSMs + cfg.SMsPerUTLB - 1) / cfg.SMsPerUTLB
	d.utlbs = make([]*utlb, numUTLBs)
	for i := range d.utlbs {
		d.utlbs[i] = newUTLB(i, d)
	}
	d.sms = make([]*smState, cfg.NumSMs)
	for i := range d.sms {
		d.sms[i] = &smState{id: i, dev: d, utlb: d.utlbs[i/cfg.SMsPerUTLB]}
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a copy of the device statistics.
func (d *Device) Stats() Stats { return d.stats }

// SetInterruptHandler registers the driver's wakeup callback, invoked
// InterruptLatency after the fault buffer transitions empty -> non-empty.
func (d *Device) SetInterruptHandler(fn func()) { d.onInterrupt = fn }

// SetInjector attaches a fault injector to the fault-delivery path. A nil
// injector (the default) disables injection.
func (d *Device) SetInjector(in *faultinject.Injector) { d.inj = in }

// SetDirectObservation switches fault-observer wakeup to the on-device
// path: notifications fire DirectNotifyLatency after a buffer write
// instead of crossing PCIe at InterruptLatency (gpu-driven architecture).
func (d *Device) SetDirectObservation() {
	if lat := d.cfg.DirectNotifyLatency; lat > 0 {
		d.notifyLat = lat
	}
}

// LaunchKernel starts a kernel; done is called when every block retires.
// Only one kernel may run at a time.
func (d *Device) LaunchKernel(k Kernel, done func()) error {
	if d.killed {
		return ErrDeviceDead
	}
	if d.launched {
		return ErrKernelRunning
	}
	if k.NumBlocks < 0 {
		return fmt.Errorf("gpu: %d blocks: %w", k.NumBlocks, ErrBadKernel)
	}
	d.kernel = k
	d.nextBlock = 0
	d.liveBlocks = 0
	d.launched = true
	d.doneCb = done
	if k.NumBlocks == 0 {
		d.finishKernel()
		return nil
	}
	// Fill every SM up to its resident-block limit, round-robin, the way
	// a real grid launch distributes blocks.
	for slot := 0; slot < d.cfg.MaxBlocksPerSM; slot++ {
		for _, s := range d.sms {
			if d.nextBlock >= k.NumBlocks {
				return nil
			}
			d.startBlock(s)
		}
	}
	return nil
}

func (d *Device) startBlock(s *smState) {
	idx := d.nextBlock
	d.nextBlock++
	d.liveBlocks++
	s.live++
	progs := d.kernel.BlockProgram(idx)
	br := &blockRun{index: idx, sm: s, remaining: len(progs)}
	for _, p := range progs {
		w := &warp{
			dev:    d,
			sm:     s,
			block:  br,
			id:     d.nextWarpID,
			prog:   p,
			regOut: make(map[int]int),
		}
		d.nextWarpID++
		w.cont = func() {
			w.inFlight = false
			w.run()
		}
		w.wakeFn = w.wake
		br.warps = append(br.warps, w)
	}
	if len(br.warps) == 0 {
		d.blockFinished(br)
		return
	}
	for _, w := range br.warps {
		// cont is run() behind an inFlight clear; inFlight is false at
		// launch, so this is the plain initial run.
		d.eng.Schedule(0, w.cont)
	}
}

func (d *Device) blockFinished(br *blockRun) {
	d.stats.BlocksCompleted++
	d.liveBlocks--
	br.sm.live--
	if d.nextBlock < d.kernel.NumBlocks {
		d.startBlock(br.sm)
		return
	}
	if d.liveBlocks == 0 {
		d.finishKernel()
	}
}

func (d *Device) finishKernel() {
	d.launched = false
	if cb := d.doneCb; cb != nil {
		d.doneCb = nil
		cb()
	}
}

// Running reports whether a kernel is in flight.
func (d *Device) Running() bool { return d.launched }

// Kill simulates catastrophic device loss (falling off the bus): the
// running kernel is abandoned without its completion callback, the fault
// buffer and every µTLB are cleared, and all future warp activity,
// fault deliveries, replays, and launches become no-ops. In-flight
// engine events referencing the device land on these guards and expire
// harmlessly. Kill is idempotent.
func (d *Device) Kill() {
	if d.killed {
		return
	}
	d.killed = true
	d.launched = false
	d.doneCb = nil
	d.liveBlocks = 0
	d.Buffer.Flush()
	for _, u := range d.utlbs {
		clear(u.pending)
		u.order = u.order[:0]
		clear(u.prefetchPending)
		u.prefetchOrder = u.prefetchOrder[:0]
		u.stalled = nil
		u.deferred = nil
	}
	for _, s := range d.sms {
		s.live = 0
	}
}

// Killed reports whether the device has been killed.
func (d *Device) Killed() bool { return d.killed }

// emitFault writes a fault record into the buffer after the GMMU latency
// and raises the interrupt line on an empty->non-empty transition.
func (d *Device) emitFault(page mem.PageID, w *warp, kind AccessKind, dup bool) {
	de := d.newDeliverEv()
	de.f = Fault{
		Issued: d.eng.Now(),
		Page:   page,
		SM:     w.sm.id,
		UTLB:   w.sm.utlb.id,
		Warp:   w.id,
		Block:  w.block.index,
		Kind:   kind,
		Dup:    dup,
	}
	de.attempt = 0
	d.eng.ScheduleArg(d.cfg.GMMULatency, deliverFn, de)
}

// deliver lands one fault record in the buffer. With fault injection
// enabled the write can be dropped as if the buffer had overflowed; the
// hardware then re-emits the record after a delay, up to the configured
// budget. A record that exhausts its budget stays lost until the driver's
// next fault replay re-checks the µTLB's pending entries (the software
// safety net real GPUs rely on for dropped faults).
func (d *Device) deliver(de *deliverEv) {
	if d.killed {
		d.delivFree = append(d.delivFree, de)
		return
	}
	if d.inj.ShouldDropFault() {
		d.stats.InjectedDrops++
		if de.attempt < d.inj.BufferRetryBudget() {
			d.inj.NoteRetried(faultinject.BufferDrop)
			d.stats.InjectedDropRetries++
			delay := d.inj.BufferRetryDelay()
			if delay <= 0 {
				delay = d.cfg.GMMULatency
			}
			de.attempt++
			d.eng.ScheduleArg(delay, deliverFn, de)
		} else {
			// Budget exhausted: the record is lost. If a later batch
			// replays, the waiting access re-faults (software recovery);
			// otherwise the run surfaces a stall diagnostic.
			d.inj.NoteUnrecovered(faultinject.BufferDrop)
			d.stats.InjectedDropsLost++
			d.delivFree = append(d.delivFree, de)
		}
		return
	}
	if de.attempt > 0 {
		d.inj.NoteRecovered(faultinject.BufferDrop)
	}
	f := de.f
	d.delivFree = append(d.delivFree, de)
	f.Time = d.eng.Now()
	wasEmpty := d.Buffer.Len() == 0
	if !d.Buffer.Push(f) {
		return
	}
	d.stats.FaultsEmitted++
	if f.Dup {
		d.stats.DupFaults++
	}
	if wasEmpty && d.onInterrupt != nil {
		d.eng.Schedule(d.notifyLat, d.onInterrupt)
	}
}

// Replay clears all µTLB fault entries and re-checks every waiting access,
// as a driver-issued fault replay does: serviced pages complete, while
// unserviced accesses re-fault (§4.2).
func (d *Device) Replay() {
	if d.killed {
		return
	}
	rechecks := d.recheckBuf[:0]
	for _, u := range d.utlbs {
		for _, page := range u.order {
			e := u.pending[page]
			rechecks = append(rechecks, e.waiters...)
			d.freeFaultEntry(e)
		}
		for _, page := range u.prefetchOrder {
			e := u.prefetchPending[page]
			rechecks = append(rechecks, e.waiters...)
			d.freeFaultEntry(e)
		}
		clear(u.pending)
		u.order = u.order[:0]
		clear(u.prefetchPending)
		u.prefetchOrder = u.prefetchOrder[:0]
		// Deferred re-faults from the previous replay go first.
		rechecks = append(rechecks, u.deferred...)
		u.deferred = u.deferred[:0]
	}
	for _, acc := range rechecks {
		d.recheck(acc)
	}
	for i := range rechecks {
		rechecks[i] = nil
	}
	d.recheckBuf = rechecks[:0]
	// Capacity freed: wake warps stalled on full µTLBs.
	for _, u := range d.utlbs {
		stalled := u.stalled
		u.stalled = u.stalled[:0]
		for _, w := range stalled {
			d.eng.Schedule(0, w.wakeFn)
		}
	}
}

// recheck resolves one access after a replay: satisfy if now resident or
// remote-mapped, otherwise re-fault.
func (d *Device) recheck(acc *access) {
	if d.res.IsResidentOnGPU(acc.page) {
		d.eng.ScheduleArg(d.cfg.MemLatency, satisfyAccFn, acc)
		return
	}
	if d.remote != nil && d.remote(acc.page) {
		d.recordRemote(acc.page, acc.warp)
		d.eng.ScheduleArg(d.cfg.RemoteAccessLatency, satisfyAccFn, acc)
		return
	}
	d.stats.Refaults++
	d.refault(acc)
}

// recordRemote notes one access satisfied through a remote mapping and,
// exactly when the block's counter crosses the threshold, emits a
// notification fault so the driver's next batch observes the crossing
// and promotes the block. No µTLB entry is made — nothing waits on a
// notification fault.
func (d *Device) recordRemote(page mem.PageID, w *warp) {
	d.stats.RemoteAccesses++
	if d.Counters.recordRemote(page) {
		d.stats.CounterNotices++
		d.emitFault(page, w, AccessNotify, false)
	}
}

// refault re-inserts an access's fault after an unserviced replay. The
// µTLB slot is claimed immediately; the fault record emission is paced by
// the SM throttle like any other fault (prefetch re-faults stay exempt).
// Capacity overflow defers the access to the next replay.
func (d *Device) refault(acc *access) {
	u := acc.warp.sm.utlb
	w := acc.warp
	if acc.kind == AccessPrefetch {
		if e, ok := u.prefetchPending[acc.page]; ok {
			e.waiters = append(e.waiters, acc)
			return
		}
		u.prefetchPending[acc.page] = d.pendFaultEntry(acc, w)
		u.prefetchOrder = append(u.prefetchOrder, acc.page)
		d.emitFault(acc.page, w, acc.kind, false)
		return
	}
	if e, ok := u.pending[acc.page]; ok {
		e.waiters = append(e.waiters, acc)
		return
	}
	if len(u.pending) >= d.cfg.MaxFaultsPerUTLB {
		u.deferred = append(u.deferred, acc)
		return
	}
	u.pending[acc.page] = d.pendFaultEntry(acc, w)
	u.order = append(u.order, acc.page)
	delay := w.sm.reserveThrottleSlot()
	if delay == 0 {
		d.emitFault(acc.page, w, acc.kind, false)
		return
	}
	ee := d.newEmitEv()
	ee.page, ee.w, ee.kind = acc.page, w, acc.kind
	d.eng.ScheduleArg(delay, emitFn, ee)
}

// pendFaultEntry builds a pooled pending-fault entry with acc as its
// first waiter.
func (d *Device) pendFaultEntry(acc *access, w *warp) *faultEntry {
	e := d.newFaultEntry()
	e.page, e.firstWarp = acc.page, w.id
	e.waiters = append(e.waiters, acc)
	return e
}

// ---- warp execution ----

func (w *warp) schedule(delay sim.Time) {
	w.inFlight = true
	w.dev.eng.Schedule(delay, w.cont)
}

// wake resumes a warp parked on a scoreboard or µTLB stall.
func (w *warp) wake() {
	if !w.inFlight && !w.finishedIssue && !w.dev.killed {
		w.run()
	}
}

func (w *warp) depsReady(deps []int) bool {
	for _, r := range deps {
		if w.regOut[r] > 0 {
			return false
		}
	}
	return true
}

type issueResult uint8

const (
	issueOK issueResult = iota
	issueStallUTLB
	issueThrottled
)

// run advances the warp program until it blocks or retires.
func (w *warp) run() {
	if w.inFlight || w.finishedIssue || w.dev.killed {
		return
	}
	for w.pc < len(w.prog) {
		op := &w.prog[w.pc]
		switch op.Kind {
		case OpCompute:
			if !w.depsReady(op.Deps) {
				w.waitingRegs = true
				return
			}
			w.pc++
			w.schedule(op.Dur)
			return
		case OpRead, OpWrite, OpPrefetch:
			if op.Kind == OpWrite && !w.depsReady(op.Deps) {
				// Scoreboard stall: the STG cannot issue (and so
				// cannot fault) until its operand loads complete.
				w.waitingRegs = true
				return
			}
			for w.opPage < len(op.Pages) {
				switch w.issue(op.Pages[w.opPage], op) {
				case issueStallUTLB:
					return // resumed by wake() at replay
				case issueThrottled:
					return // retry already scheduled
				}
				w.opPage++
			}
			w.opPage = 0
			w.pc++
			w.schedule(w.dev.cfg.OpIssueTime)
			return
		default:
			// Reachable through user-supplied custom workloads, so this
			// surfaces as the run's terminal error instead of a panic.
			w.dev.eng.Fail(fmt.Errorf("gpu: warp %d pc %d: unknown op kind %d: %w",
				w.id, w.pc, op.Kind, ErrBadProgram))
			return
		}
	}
	w.finishedIssue = true
	w.maybeComplete()
}

// issue performs one page access of the current op.
func (w *warp) issue(page mem.PageID, op *Op) issueResult {
	d := w.dev
	kind := accessKindOf(op.Kind)
	if d.res.IsResidentOnGPU(page) {
		d.Counters.record(page)
		acc := w.track(page, kind, op)
		d.eng.ScheduleArg(d.cfg.MemLatency, satisfyAccFn, acc)
		return issueOK
	}
	if d.remote != nil && d.remote(page) {
		// Remote-mapped: the access reaches host memory across the link
		// without faulting (access-counter architecture).
		d.recordRemote(page, w)
		acc := w.track(page, kind, op)
		d.eng.ScheduleArg(d.cfg.RemoteAccessLatency, satisfyAccFn, acc)
		return issueOK
	}
	u := w.sm.utlb
	if kind == AccessPrefetch {
		// Prefetch faults bypass the µTLB cap and the throttle.
		acc := w.track(page, kind, op)
		if e, ok := u.prefetchPending[page]; ok {
			e.waiters = append(e.waiters, acc)
			if e.firstWarp != w.id {
				d.emitFault(page, w, kind, true)
			}
			return issueOK
		}
		u.prefetchPending[page] = d.pendFaultEntry(acc, w)
		u.prefetchOrder = append(u.prefetchOrder, page)
		d.emitFault(page, w, kind, false)
		return issueOK
	}
	if e, ok := u.pending[page]; ok {
		// Same page already pending in this µTLB: join the entry. A
		// different warp issuing the same fault writes a duplicate
		// record (type-1 duplicate, §4.2).
		acc := w.track(page, kind, op)
		e.waiters = append(e.waiters, acc)
		if e.firstWarp != w.id {
			d.emitFault(page, w, kind, true)
		}
		return issueOK
	}
	if len(u.pending) >= d.cfg.MaxFaultsPerUTLB {
		d.stats.UTLBFullStalls++
		u.stalled = append(u.stalled, w)
		return issueStallUTLB
	}
	if wait := w.sm.throttleDelay(); wait > 0 {
		d.stats.ThrottleStalls++
		w.schedule(wait)
		return issueThrottled
	}
	acc := w.track(page, kind, op)
	u.pending[page] = d.pendFaultEntry(acc, w)
	u.order = append(u.order, page)
	w.sm.chargeThrottle()
	d.emitFault(page, w, kind, false)
	return issueOK
}

func accessKindOf(k OpKind) AccessKind {
	switch k {
	case OpRead:
		return AccessRead
	case OpWrite:
		return AccessWrite
	case OpPrefetch:
		return AccessPrefetch
	}
	panic("gpu: not a memory op")
}

// track registers an outstanding access on a pooled record.
func (w *warp) track(page mem.PageID, kind AccessKind, op *Op) *access {
	reg := -1
	if op.Kind == OpRead {
		reg = op.Dst
		w.regOut[reg]++
	}
	w.outstanding++
	acc := w.dev.newAccess()
	acc.warp, acc.page, acc.kind, acc.reg = w, page, kind, reg
	return acc
}

// satisfy completes an access: data arrived (or the store landed). This
// is the end of the access's lifecycle, so the record returns to the
// device pool here (skipped on a killed device, where pools are dead
// weight anyway).
func (w *warp) satisfy(acc *access) {
	if w.dev.killed {
		return
	}
	w.outstanding--
	reg := acc.reg
	acc.warp = nil
	w.dev.accFree = append(w.dev.accFree, acc)
	if reg >= 0 {
		w.regOut[reg]--
		if w.regOut[reg] == 0 && w.waitingRegs {
			w.waitingRegs = false
			w.dev.eng.Schedule(0, w.wakeFn)
		}
	}
	w.maybeComplete()
}

func (w *warp) maybeComplete() {
	if w.finishedIssue && w.outstanding == 0 && !w.completed {
		w.completed = true
		br := w.block
		br.remaining--
		if br.remaining == 0 {
			w.dev.blockFinished(br)
		}
	}
}

func (s *smState) throttleDelay() sim.Time {
	now := s.dev.eng.Now()
	if now < s.nextFaultOK {
		return s.nextFaultOK - now
	}
	return 0
}

func (s *smState) chargeThrottle() {
	s.nextFaultOK = s.dev.eng.Now() + s.dev.cfg.FaultThrottleGap
}

// reserveThrottleSlot books the SM's next fault-issue slot and returns how
// long from now it is. Used by the re-fault path, which paces emissions
// without re-running the warp.
func (s *smState) reserveThrottleSlot() sim.Time {
	now := s.dev.eng.Now()
	start := now
	if s.nextFaultOK > start {
		start = s.nextFaultOK
	}
	s.nextFaultOK = start + s.dev.cfg.FaultThrottleGap
	return start - now
}
