package gpu

import (
	"testing"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

// fakeDriver is a minimal fault servicer used to exercise the device in
// isolation: it marks every fetched page resident after a fixed service
// time, flushes the buffer, and issues a replay — the core driver loop.
type fakeDriver struct {
	eng         *sim.Engine
	dev         *Device
	resident    map[mem.PageID]bool
	batchSize   int
	serviceTime sim.Time
	drainDelay  sim.Time // models "read faults until none remain" draining
	batches     [][]Fault
	sleeping    bool
}

func newFakeDriver(eng *sim.Engine, cfg Config) (*fakeDriver, *Device) {
	f := &fakeDriver{
		eng:         eng,
		resident:    make(map[mem.PageID]bool),
		batchSize:   256,
		serviceTime: 50 * sim.Microsecond,
		drainDelay:  30 * sim.Microsecond,
		sleeping:    true,
	}
	dev, err := NewDevice(cfg, eng, f)
	if err != nil {
		panic(err)
	}
	dev.SetInterruptHandler(f.wake)
	f.dev = dev
	return f, dev
}

func (f *fakeDriver) IsResidentOnGPU(p mem.PageID) bool { return f.resident[p] }

func (f *fakeDriver) wake() {
	if !f.sleeping {
		return
	}
	f.sleeping = false
	f.loop()
}

func (f *fakeDriver) loop() {
	// Emulate the driver's fetch loop draining the buffer while the GPU
	// is still inserting faults: wait for generation to stall, then read.
	f.eng.Schedule(f.drainDelay, func() {
		faults := f.dev.Buffer.Fetch(f.batchSize)
		if len(faults) == 0 {
			f.sleeping = true
			return
		}
		f.batches = append(f.batches, faults)
		f.eng.Schedule(f.serviceTime, func() {
			for _, ft := range faults {
				f.resident[ft.Page] = true
			}
			f.dev.Buffer.Flush()
			f.dev.Replay()
			f.loop()
		})
	})
}

// smallConfig is a 2-SM device for focused tests.
func smallConfig() Config {
	c := DefaultTitanV()
	c.NumSMs = 2
	return c
}

func run(t *testing.T, eng *sim.Engine) sim.Time {
	t.Helper()
	eng.MaxEvents = 50_000_000
	end, err := eng.Run()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return end
}

// listing1Kernel reproduces the paper's Listing 1: one 32-thread warp,
// each thread touching a distinct page, three iterations of c = a + b.
func listing1Kernel(aBase, bBase, cBase mem.PageID) Kernel {
	var prog Program
	for iter := 0; iter < 3; iter++ {
		off := mem.PageID(iter * 32)
		prog = append(prog,
			Read(0, PageRange(aBase+off, 32)...),
			Read(1, PageRange(bBase+off, 32)...),
			Write([]int{0, 1}, PageRange(cBase+off, 32)...),
		)
	}
	return Kernel{NumBlocks: 1, BlockProgram: func(int) []Program { return []Program{prog} }}
}

func TestListing1FirstBatchIs56Faults(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	done := false
	dev.LaunchKernel(listing1Kernel(0, 10000, 20000), func() { done = true })
	run(t, eng)
	if !done {
		t.Fatal("kernel never completed")
	}
	if len(f.batches) == 0 {
		t.Fatal("no batches")
	}
	// §3.2: the µTLB limit of 56 caps the first batch (32 A-reads + 24
	// B-reads).
	if got := len(f.batches[0]); got != 56 {
		t.Fatalf("first batch = %d faults, want 56", got)
	}
	for _, ft := range f.batches[0] {
		if ft.Kind != AccessRead {
			t.Fatalf("first batch contains %v fault, want reads only", ft.Kind)
		}
	}
}

func TestListing1WritesAfterAllReads(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	dev.LaunchKernel(listing1Kernel(0, 10000, 20000), func() {})
	run(t, eng)
	// Scoreboard rule: within each iteration, no write fault may appear
	// in any batch before every read fault of that iteration appeared.
	readsSeen, writesSeen := 0, 0
	for _, b := range f.batches {
		for _, ft := range b {
			switch ft.Kind {
			case AccessRead:
				readsSeen++
				if writesSeen > 0 && readsSeen <= 64*(writesSeen/32+1) && writesSeen%32 != 0 {
					// Interleaving inside an iteration is impossible;
					// handled by the stronger per-batch check below.
					t.Fatalf("read after partial writes: reads=%d writes=%d", readsSeen, writesSeen)
				}
			case AccessWrite:
				writesSeen++
				if readsSeen < 64*(writesSeen/32+boolToInt(writesSeen%32 != 0)) {
					t.Fatalf("write fault before its 64 reads: reads=%d writes=%d", readsSeen, writesSeen)
				}
			}
		}
	}
	if writesSeen != 96 {
		t.Fatalf("total write faults = %d, want 96", writesSeen)
	}
	if readsSeen < 192 {
		t.Fatalf("total read faults = %d, want >= 192", readsSeen)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestPrefetchFillsFullBatch(t *testing.T) {
	// §3.2/Figure 5: prefetch instructions escape the µTLB limit and
	// throttle; a single warp fills the 256-fault batch limit.
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	prog := Program{
		Prefetch(PageRange(0, 256)...),
		Prefetch(PageRange(1000, 256)...),
		Prefetch(PageRange(2000, 256)...),
	}
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{prog}
	}}, func() {})
	run(t, eng)
	if len(f.batches) == 0 {
		t.Fatal("no batches")
	}
	if got := len(f.batches[0]); got != 256 {
		t.Fatalf("first prefetch batch = %d faults, want 256 (batch limit)", got)
	}
	// The overflow faults were flushed and re-faulted; everything still
	// completes.
	if dev.Stats().Refaults == 0 {
		t.Fatal("expected flushed prefetch faults to re-fault")
	}
}

func TestReadsDontBlockWithoutDependency(t *testing.T) {
	// Two independent reads of 20 pages each: all 40 faults must be
	// outstanding before any servicing (non-blocking loads).
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	f.serviceTime = 10 * sim.Millisecond // let all faults accumulate
	prog := Program{
		Read(0, PageRange(0, 20)...),
		Read(1, PageRange(100, 20)...),
	}
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{prog}
	}}, func() {})
	run(t, eng)
	if got := len(f.batches[0]); got != 40 {
		t.Fatalf("first batch = %d, want 40 (both reads outstanding)", got)
	}
}

func TestUTLBCapacityStallsWarp(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	// One warp reading 100 distinct pages: 56 fault, then stall.
	prog := Program{Read(0, PageRange(0, 100)...)}
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{prog}
	}}, func() {})
	run(t, eng)
	if got := len(f.batches[0]); got != 56 {
		t.Fatalf("first batch = %d, want 56", got)
	}
	if dev.Stats().UTLBFullStalls == 0 {
		t.Fatal("no µTLB-full stalls recorded")
	}
	// Remaining 44 pages fault after the first replay.
	if got := len(f.batches[1]); got != 44 {
		t.Fatalf("second batch = %d, want 44", got)
	}
}

func TestThrottleSpacesFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultThrottleGap = 5 * sim.Microsecond
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, cfg)
	f.serviceTime = sim.Millisecond
	prog := Program{Read(0, PageRange(0, 10)...)}
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{prog}
	}}, func() {})
	run(t, eng)
	var all []Fault
	for _, b := range f.batches {
		all = append(all, b...)
	}
	if len(all) < 10 {
		t.Fatalf("saw %d faults, want >= 10", len(all))
	}
	for i := 1; i < 10; i++ {
		gap := all[i].Time - all[i-1].Time
		if gap < cfg.FaultThrottleGap {
			t.Fatalf("fault gap %d < throttle %d", gap, cfg.FaultThrottleGap)
		}
	}
}

func TestDuplicateFaultsAcrossWarpsSameUTLB(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	// Two warps in one block read the same pages: second warp's faults
	// are hardware-visible duplicates.
	shared := PageRange(0, 8)
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{
			{Read(0, shared...)},
			{Read(0, shared...)},
		}
	}}, func() {})
	run(t, eng)
	dups := 0
	for _, b := range f.batches {
		for _, ft := range b {
			if ft.Dup {
				dups++
			}
		}
	}
	if dups == 0 {
		t.Fatal("no duplicate faults recorded for shared pages")
	}
	// Some dup records may be flushed before the driver reads them, so
	// the emission count is an upper bound on the observed count.
	if dev.Stats().DupFaults < dups {
		t.Fatalf("stats dup count %d < observed %d", dev.Stats().DupFaults, dups)
	}
}

func TestCrossUTLBDuplicatesAreSeparateEntries(t *testing.T) {
	// Blocks on different SMs (different µTLBs) faulting the same page
	// produce two non-dup records — type-2 duplicates are only visible
	// to the driver, not the hardware.
	cfg := smallConfig()
	cfg.SMsPerUTLB = 1 // 2 SMs, 2 µTLBs
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, cfg)
	shared := PageRange(0, 4)
	dev.LaunchKernel(Kernel{NumBlocks: 2, BlockProgram: func(int) []Program {
		return []Program{{Read(0, shared...)}}
	}}, func() {})
	run(t, eng)
	perPage := map[mem.PageID]int{}
	for _, b := range f.batches {
		for _, ft := range b {
			if ft.Dup {
				t.Fatal("cross-µTLB fault marked as hardware dup")
			}
			perPage[ft.Page]++
		}
	}
	for _, p := range shared {
		if perPage[p] != 2 {
			t.Fatalf("page %d seen %d times, want 2 (one per µTLB)", p, perPage[p])
		}
	}
}

func TestKernelCompletesAllBlocks(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	done := false
	nblocks := 17
	dev.LaunchKernel(Kernel{NumBlocks: nblocks, BlockProgram: func(b int) []Program {
		return []Program{{Read(0, PageRange(mem.PageID(b*64), 16)...)}}
	}}, func() { done = true })
	run(t, eng)
	if !done {
		t.Fatal("kernel incomplete")
	}
	if dev.Stats().BlocksCompleted != nblocks {
		t.Fatalf("blocks completed = %d, want %d", dev.Stats().BlocksCompleted, nblocks)
	}
	if dev.Running() {
		t.Fatal("device still running after completion")
	}
}

func TestEmptyKernelCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	done := false
	dev.LaunchKernel(Kernel{NumBlocks: 0, BlockProgram: nil}, func() { done = true })
	if !done {
		t.Fatal("empty kernel did not complete synchronously")
	}
}

func TestResidentAccessesNeverFault(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	for i := mem.PageID(0); i < 64; i++ {
		f.resident[i] = true
	}
	done := false
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{Read(0, PageRange(0, 64)...), Write([]int{0}, PageRange(0, 64)...)}}
	}}, func() { done = true })
	end := run(t, eng)
	if !done {
		t.Fatal("kernel incomplete")
	}
	if dev.Stats().FaultsEmitted != 0 {
		t.Fatalf("emitted %d faults for resident data", dev.Stats().FaultsEmitted)
	}
	if end > sim.Millisecond {
		t.Fatalf("in-core kernel took %v ns, want fast path", end)
	}
}

func TestComputeOpDelaysCompletion(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	var finish sim.Time
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{Compute(3 * sim.Millisecond)}}
	}}, func() { finish = eng.Now() })
	run(t, eng)
	if finish < 3*sim.Millisecond {
		t.Fatalf("compute kernel finished at %d, want >= 3ms", finish)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultTitanV()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.SMsPerUTLB = 0 },
		func(c *Config) { c.MaxFaultsPerUTLB = 0 },
		func(c *Config) { c.FaultBufferEntries = 0 },
		func(c *Config) { c.MaxBlocksPerSM = 0 },
	}
	for i, mut := range bad {
		c := DefaultTitanV()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFaultsRecordSMOfOrigin(t *testing.T) {
	cfg := DefaultTitanV()
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, cfg)
	// 80 blocks, one per SM, each faulting distinct pages.
	dev.LaunchKernel(Kernel{NumBlocks: 80, BlockProgram: func(b int) []Program {
		return []Program{{Read(0, PageRange(mem.PageID(b*1000), 4)...)}}
	}}, func() {})
	run(t, eng)
	sms := map[int]bool{}
	for _, b := range f.batches {
		for _, ft := range b {
			sms[ft.SM] = true
			if ft.UTLB != ft.SM/cfg.SMsPerUTLB {
				t.Fatalf("fault UTLB %d inconsistent with SM %d", ft.UTLB, ft.SM)
			}
		}
	}
	if len(sms) != 80 {
		t.Fatalf("faults from %d SMs, want 80", len(sms))
	}
}
