package gpu

import "errors"

// ErrKernelRunning is returned by LaunchKernel while a kernel is already
// in flight; the device models one kernel at a time.
var ErrKernelRunning = errors.New("gpu: kernel already running")

// ErrBadKernel is returned by LaunchKernel for an unusable kernel
// description (e.g. a negative block count).
var ErrBadKernel = errors.New("gpu: invalid kernel")

// ErrDeviceDead is returned by LaunchKernel after Kill: a dead device
// accepts no more work.
var ErrDeviceDead = errors.New("gpu: device is dead")

// ErrBadProgram is the sentinel for a malformed warp program discovered
// during execution (an unknown op kind). It surfaces through the engine's
// terminal error, since warps run inside event callbacks.
var ErrBadProgram = errors.New("gpu: invalid warp program")
