package gpu

import (
	"errors"
	"testing"

	"guvm/internal/faultinject"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// TestHWBufferOverflowRecovers drives more faults than the hardware fault
// buffer holds: overflow records drop, the accesses stay pending in µTLBs,
// and the post-replay re-fault path eventually services everything.
func TestHWBufferOverflowRecovers(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultBufferEntries = 16 // tiny HW buffer
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, cfg)
	f.batchSize = 16
	done := false
	// 2 blocks x 40 pages: far beyond the 16-entry buffer.
	dev.LaunchKernel(Kernel{NumBlocks: 2, BlockProgram: func(b int) []Program {
		return []Program{{Read(0, PageRange(mem.PageID(b*1000), 40)...)}}
	}}, func() { done = true })
	run(t, eng)
	if !done {
		t.Fatal("kernel never completed after buffer overflow")
	}
	if dev.Buffer.Dropped == 0 {
		t.Fatal("no hardware drops despite tiny buffer")
	}
	for p := mem.PageID(0); p < 40; p++ {
		if !f.resident[p] || !f.resident[1000+p] {
			t.Fatalf("page %d never serviced", p)
		}
	}
}

// TestDeferredRefaultPath fills a µTLB beyond capacity with waiting
// accesses so that replay-time re-faults overflow and defer to the next
// replay — and the kernel still finishes.
func TestDeferredRefaultPath(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSMs = 2
	cfg.SMsPerUTLB = 2 // single µTLB
	cfg.MaxFaultsPerUTLB = 8
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, cfg)
	// Service only 2 pages per batch: most rechecks re-fault, exceeding
	// the 8-entry µTLB, so some defer.
	f.batchSize = 2
	done := false
	dev.LaunchKernel(Kernel{NumBlocks: 2, BlockProgram: func(b int) []Program {
		return []Program{{Read(0, PageRange(mem.PageID(b*100), 8)...)}}
	}}, func() { done = true })
	run(t, eng)
	if !done {
		t.Fatal("kernel never completed through deferred re-faults")
	}
	if dev.Stats().Refaults == 0 {
		t.Fatal("no re-faults recorded")
	}
}

// TestMaxBlocksPerSMScheduling verifies that at most MaxBlocksPerSM blocks
// occupy one SM concurrently and queued blocks run as predecessors retire.
func TestMaxBlocksPerSMScheduling(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSMs = 1
	cfg.MaxBlocksPerSM = 2
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, cfg)
	const nblocks = 7
	done := false
	dev.LaunchKernel(Kernel{NumBlocks: nblocks, BlockProgram: func(b int) []Program {
		return []Program{{Compute(10 * sim.Microsecond)}}
	}}, func() { done = true })
	// Every block computes 10us on one SM with 2 slots: makespan is
	// ceil(7/2)*10us = 40us if exactly 2 run concurrently.
	end := run(t, eng)
	if !done {
		t.Fatal("kernel incomplete")
	}
	if end < 40*sim.Microsecond {
		t.Fatalf("7 blocks at 2/SM finished at %v, want >= 40us (slot-limited)", end)
	}
	if end > 80*sim.Microsecond {
		t.Fatalf("finished at %v, want < 80us (parallel within slots)", end)
	}
}

// TestPrefetchFaultJoinsAreDups ensures two warps prefetching the same
// pages share pending entries, with the joiner emitting a dup record.
func TestPrefetchFaultJoinsAreDups(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	shared := PageRange(0, 16)
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{
			{Prefetch(shared...)},
			{Prefetch(shared...)},
		}
	}}, func() {})
	run(t, eng)
	dups := 0
	for _, b := range f.batches {
		for _, ft := range b {
			if ft.Dup {
				if ft.Kind != AccessPrefetch {
					t.Fatalf("dup of kind %v, want prefetch", ft.Kind)
				}
				dups++
			}
		}
	}
	if dups == 0 && dev.Stats().DupFaults == 0 {
		t.Fatal("no duplicate prefetch records")
	}
}

// TestWarpWriteWithoutDepsDoesNotStall confirms Write(nil, ...) issues
// immediately (stores without operand dependencies).
func TestWarpWriteWithoutDepsDoesNotStall(t *testing.T) {
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	f.serviceTime = 10 * sim.Millisecond
	dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{
			Read(0, PageRange(0, 4)...),
			Write(nil, PageRange(100, 4)...), // no deps: issues with reads outstanding
		}}
	}}, func() {})
	run(t, eng)
	if len(f.batches) == 0 {
		t.Fatal("no batches")
	}
	// Both reads and writes must appear in the first batch: the write
	// did not wait for the reads.
	kinds := map[AccessKind]int{}
	for _, ft := range f.batches[0] {
		kinds[ft.Kind]++
	}
	if kinds[AccessRead] != 4 || kinds[AccessWrite] != 4 {
		t.Fatalf("first batch kinds = %v, want 4 reads + 4 writes", kinds)
	}
}

// TestLaunchWhileRunningFails documents the single-kernel constraint.
func TestLaunchWhileRunningFails(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	if err := dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{Compute(sim.Millisecond)}}
	}}, func() {}); err != nil {
		t.Fatalf("first launch: %v", err)
	}
	err := dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return nil
	}}, func() {})
	if !errors.Is(err, ErrKernelRunning) {
		t.Fatalf("second launch err = %v, want ErrKernelRunning", err)
	}
}

// TestNegativeBlockCountFails documents kernel validation.
func TestNegativeBlockCountFails(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	err := dev.LaunchKernel(Kernel{NumBlocks: -1}, func() {})
	if !errors.Is(err, ErrBadKernel) {
		t.Fatalf("err = %v, want ErrBadKernel", err)
	}
}

// TestBadProgramFailsRun documents that a malformed warp program surfaces
// as the run's terminal error, not a panic: custom workloads can contain
// arbitrary op kinds.
func TestBadProgramFailsRun(t *testing.T) {
	eng := sim.NewEngine()
	_, dev := newFakeDriver(eng, smallConfig())
	if err := dev.LaunchKernel(Kernel{NumBlocks: 1, BlockProgram: func(int) []Program {
		return []Program{{Op{Kind: OpKind(99)}}}
	}}, func() {}); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if _, err := eng.Run(); !errors.Is(err, ErrBadProgram) {
		t.Fatalf("run err = %v, want ErrBadProgram", err)
	}
}

// TestInjectedDropRecoversByRetry drives faults through an injector that
// drops the first delivery attempt: hardware-style re-emission must land
// every record and the kernel must still complete, with recovery counted.
func TestInjectedDropRecoversByRetry(t *testing.T) {
	icfg := faultinject.DefaultConfig()
	icfg.BufferDropRate = 0.4
	icfg.BufferDropRetries = 8 // deep budget: every drop recovers by retry
	in, err := faultinject.New(icfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f, dev := newFakeDriver(eng, smallConfig())
	dev.SetInjector(in)
	done := false
	if err := dev.LaunchKernel(Kernel{NumBlocks: 2, BlockProgram: func(b int) []Program {
		return []Program{{Read(0, PageRange(mem.PageID(b*1000), 40)...)}}
	}}, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	run(t, eng)
	if !done {
		t.Fatal("kernel never completed under injected drops")
	}
	st := in.Stats().BufferDrop
	if st.Injected == 0 || st.Retried == 0 || st.Recovered == 0 {
		t.Fatalf("drop counters = %+v, want injections, retries and recoveries", st)
	}
	for p := mem.PageID(0); p < 40; p++ {
		if !f.resident[p] || !f.resident[1000+p] {
			t.Fatalf("page %d never serviced", p)
		}
	}
}
