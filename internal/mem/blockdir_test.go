package mem

import (
	"math/rand"
	"testing"
)

func TestBlockDirBasics(t *testing.T) {
	var d BlockDir[int]
	if d.Len() != 0 {
		t.Fatalf("fresh Len = %d", d.Len())
	}
	if v := d.Lookup(7); v != 0 {
		t.Fatalf("Lookup on empty = %d", v)
	}
	if _, ok := d.Get(7); ok {
		t.Fatal("Get on empty reported present")
	}

	d.Set(7, 70)
	d.Set(0, 1)
	d.Set(7, 71) // overwrite must not bump Len
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if v := d.Lookup(7); v != 71 {
		t.Fatalf("Lookup(7) = %d, want 71", v)
	}

	// Cross-segment IDs, including far-apart segments leaving nil gaps.
	d.Set(blockDirSegSize-1, 2)
	d.Set(blockDirSegSize, 3)
	d.Set(100*blockDirSegSize+5, 4)
	if v := d.Lookup(100*blockDirSegSize + 5); v != 4 {
		t.Fatalf("far segment Lookup = %d", v)
	}
	// A present entry must not leak to its neighbours.
	if _, ok := d.Get(100*blockDirSegSize + 4); ok {
		t.Fatal("neighbour of far entry reported present")
	}

	d.Delete(7)
	d.Delete(7) // double delete is a no-op
	if _, ok := d.Get(7); ok {
		t.Fatal("deleted entry still present")
	}
	if d.Len() != 4 {
		t.Fatalf("Len after delete = %d, want 4", d.Len())
	}
}

func TestBlockDirRangeAscending(t *testing.T) {
	var d BlockDir[int]
	rng := rand.New(rand.NewSource(42))
	want := map[VABlockID]int{}
	for i := 0; i < 500; i++ {
		id := VABlockID(rng.Intn(10 * blockDirSegSize))
		want[id] = i
		d.Set(id, i)
	}
	if d.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(want))
	}
	var prev VABlockID
	n := 0
	d.Range(func(id VABlockID, v int) bool {
		if n > 0 && id <= prev {
			t.Fatalf("Range out of order: %d after %d", id, prev)
		}
		if want[id] != v {
			t.Fatalf("Range(%d) = %d, want %d", id, v, want[id])
		}
		prev = id
		n++
		return true
	})
	if n != len(want) {
		t.Fatalf("Range visited %d entries, want %d", n, len(want))
	}

	// Early stop.
	n = 0
	d.Range(func(VABlockID, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stopped Range visited %d, want 3", n)
	}
}
