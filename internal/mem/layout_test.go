package mem

import (
	"testing"
	"testing/quick"
)

func TestGranularityConstants(t *testing.T) {
	if PagesPerVABlock != 512 {
		t.Errorf("PagesPerVABlock = %d, want 512", PagesPerVABlock)
	}
	if PagesPerRegion != 16 {
		t.Errorf("PagesPerRegion = %d, want 16", PagesPerRegion)
	}
	if RegionsPerBlock != 32 {
		t.Errorf("RegionsPerBlock = %d, want 32", RegionsPerBlock)
	}
}

func TestPageAndBlockArithmetic(t *testing.T) {
	a := Addr(5*VABlockSize + 37*PageSize + 123)
	p := PageOf(a)
	if p.Addr() != Addr(5*VABlockSize+37*PageSize) {
		t.Errorf("page base = %v", p.Addr())
	}
	if p.VABlock() != 5 {
		t.Errorf("VABlock = %d, want 5", p.VABlock())
	}
	if p.IndexInBlock() != 37 {
		t.Errorf("IndexInBlock = %d, want 37", p.IndexInBlock())
	}
	if p.Region() != 37/16 {
		t.Errorf("Region = %d, want %d", p.Region(), 37/16)
	}
	if VABlockOf(a) != 5 {
		t.Errorf("VABlockOf = %d, want 5", VABlockOf(a))
	}
	b := VABlockID(5)
	if b.PageAt(37) != p {
		t.Errorf("PageAt(37) = %d, want %d", b.PageAt(37), p)
	}
	if b.FirstPage() != PageID(5*512) {
		t.Errorf("FirstPage = %d", b.FirstPage())
	}
	if b.Addr() != Addr(5*VABlockSize) {
		t.Errorf("block addr = %v", b.Addr())
	}
}

func TestPageAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VABlockID(0).PageAt(512)
}

func TestAlignUp(t *testing.T) {
	cases := []struct{ n, align, want uint64 }{
		{0, 4096, 0},
		{1, 4096, 4096},
		{4096, 4096, 4096},
		{4097, 4096, 8192},
		{VABlockSize - 1, VABlockSize, VABlockSize},
	}
	for _, c := range cases {
		if got := AlignUp(c.n, c.align); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.n, c.align, got, c.want)
		}
	}
}

func TestSpan(t *testing.T) {
	s := Span{First: 100, Count: 8}
	if !s.Contains(100) || !s.Contains(107) || s.Contains(108) || s.Contains(99) {
		t.Error("Contains boundary behaviour wrong")
	}
	if s.Bytes() != 8*PageSize {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	if s.End() != 108 {
		t.Errorf("End = %d", s.End())
	}
}

func TestCoalescePages(t *testing.T) {
	pages := []PageID{1, 2, 3, 7, 8, 20}
	spans := CoalescePages(pages)
	want := []Span{{1, 3}, {7, 2}, {20, 1}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v, want %v", spans, want)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("spans = %v, want %v", spans, want)
		}
	}
	if CoalescePages(nil) != nil {
		t.Error("CoalescePages(nil) != nil")
	}
	one := CoalescePages([]PageID{42})
	if len(one) != 1 || one[0] != (Span{42, 1}) {
		t.Errorf("single page: %v", one)
	}
}

// Property: coalesced spans exactly cover the input pages.
func TestCoalesceCoversInput(t *testing.T) {
	f := func(raw []uint16) bool {
		// Build a sorted, distinct page list.
		seen := map[PageID]bool{}
		for _, r := range raw {
			seen[PageID(r)] = true
		}
		var pages []PageID
		for p := PageID(0); p < 1<<16; p++ {
			if seen[p] {
				pages = append(pages, p)
			}
		}
		spans := CoalescePages(pages)
		total := 0
		for _, s := range spans {
			total += s.Count
			for p := s.First; p < s.End(); p++ {
				if !seen[p] {
					return false
				}
			}
		}
		return total == len(pages)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPageSetBasics(t *testing.T) {
	var s PageSet
	if s.Any() || s.Count() != 0 {
		t.Fatal("zero PageSet not empty")
	}
	s.Set(0)
	s.Set(511)
	s.Set(64)
	if !s.Has(0) || !s.Has(511) || !s.Has(64) || s.Has(1) {
		t.Fatal("Set/Has wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	idx := s.Indices(nil)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 511 {
		t.Fatalf("Indices = %v", idx)
	}
}

func TestPageSetFullAndSetAll(t *testing.T) {
	var s PageSet
	s.SetAll()
	if !s.Full() || s.Count() != 512 {
		t.Fatal("SetAll not full")
	}
	s.Clear(200)
	if s.Full() {
		t.Fatal("Full after Clear")
	}
	s.Reset()
	if s.Any() {
		t.Fatal("Reset not empty")
	}
}

func TestPageSetUnionSubtract(t *testing.T) {
	var a, b PageSet
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	a.Union(&b)
	if a.Count() != 3 || !a.Has(3) {
		t.Fatal("Union wrong")
	}
	a.Subtract(&b)
	if a.Count() != 1 || !a.Has(1) {
		t.Fatal("Subtract wrong")
	}
}

func TestPageSetCountRange(t *testing.T) {
	var s PageSet
	for i := 10; i < 30; i++ {
		s.Set(i)
	}
	if got := s.CountRange(0, 512); got != 20 {
		t.Errorf("CountRange full = %d", got)
	}
	if got := s.CountRange(15, 25); got != 10 {
		t.Errorf("CountRange(15,25) = %d", got)
	}
	if got := s.CountRange(30, 40); got != 0 {
		t.Errorf("CountRange empty = %d", got)
	}
}

// Property: Count equals number of distinct indices set.
func TestPageSetCountMatchesDistinct(t *testing.T) {
	f := func(raw []uint16) bool {
		var s PageSet
		distinct := map[int]bool{}
		for _, r := range raw {
			i := int(r) % 512
			s.Set(i)
			distinct[i] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Indices returns ascending order matching Has.
func TestPageSetIndicesSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		var s PageSet
		for _, r := range raw {
			s.Set(int(r) % 512)
		}
		idx := s.Indices(nil)
		for i, v := range idx {
			if !s.Has(v) {
				return false
			}
			if i > 0 && idx[i-1] >= v {
				return false
			}
		}
		return len(idx) == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
