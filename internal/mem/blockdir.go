package mem

// blockdir.go — BlockDir, a sparse two-level directory keyed by
// VABlockID. The driver and host-OS models used flat Go maps for their
// per-VABlock state; at the paper's real evaluation scale (a 12 GB
// working set is ~6k VABlocks, a multi-GB oversubscription sweep many
// more) every hot-path residency probe paid a hash and the per-block
// structures churned the map. BlockDir replaces that with an index
// split: the low blockDirSegBits bits select a slot inside a fixed
// 512-entry segment (1 GiB of VA), the high bits select the segment in
// a top-level slice that grows to the highest segment touched and
// stays nil everywhere else. Lookups are two array indexes; iteration
// is naturally in ascending VABlockID order, which is exactly the
// order the audit digests require.
import "math/bits"

type BlockDir[T any] struct {
	segs []*blockDirSeg[T]
	n    int
}

const (
	// blockDirSegBits gives 512 blocks (1 GiB of virtual address
	// space) per segment.
	blockDirSegBits = 9
	blockDirSegSize = 1 << blockDirSegBits
	blockDirSegMask = blockDirSegSize - 1
)

type blockDirSeg[T any] struct {
	used  [blockDirSegSize / 64]uint64
	items [blockDirSegSize]T
}

// Len returns the number of populated entries.
func (d *BlockDir[T]) Len() int { return d.n }

// Lookup returns the entry for id, or T's zero value when absent — the
// convenient form when T is a pointer type.
func (d *BlockDir[T]) Lookup(id VABlockID) T {
	si := int(id >> blockDirSegBits)
	if si < 0 || si >= len(d.segs) {
		var zero T
		return zero
	}
	s := d.segs[si]
	if s == nil {
		var zero T
		return zero
	}
	o := int(id) & blockDirSegMask
	if s.used[o>>6]&(1<<(o&63)) == 0 {
		var zero T
		return zero
	}
	return s.items[o]
}

// Get returns the entry for id and whether it is populated.
func (d *BlockDir[T]) Get(id VABlockID) (T, bool) {
	si := int(id >> blockDirSegBits)
	if si < 0 || si >= len(d.segs) {
		var zero T
		return zero, false
	}
	s := d.segs[si]
	if s == nil {
		var zero T
		return zero, false
	}
	o := int(id) & blockDirSegMask
	if s.used[o>>6]&(1<<(o&63)) == 0 {
		var zero T
		return zero, false
	}
	return s.items[o], true
}

// Set stores v as the entry for id, creating its segment on demand.
func (d *BlockDir[T]) Set(id VABlockID, v T) {
	si := int(id >> blockDirSegBits)
	if si < 0 {
		panic("mem: negative VABlockID in BlockDir")
	}
	for si >= len(d.segs) {
		d.segs = append(d.segs, nil)
	}
	s := d.segs[si]
	if s == nil {
		s = &blockDirSeg[T]{}
		d.segs[si] = s
	}
	o := int(id) & blockDirSegMask
	if s.used[o>>6]&(1<<(o&63)) == 0 {
		s.used[o>>6] |= 1 << (o & 63)
		d.n++
	}
	s.items[o] = v
}

// Delete removes the entry for id, if present.
func (d *BlockDir[T]) Delete(id VABlockID) {
	si := int(id >> blockDirSegBits)
	if si < 0 || si >= len(d.segs) {
		return
	}
	s := d.segs[si]
	if s == nil {
		return
	}
	o := int(id) & blockDirSegMask
	if s.used[o>>6]&(1<<(o&63)) == 0 {
		return
	}
	s.used[o>>6] &^= 1 << (o & 63)
	var zero T
	s.items[o] = zero
	d.n--
}

// Range calls fn for every populated entry in ascending VABlockID order,
// stopping early if fn returns false. fn must not mutate the directory.
func (d *BlockDir[T]) Range(fn func(id VABlockID, v T) bool) {
	for si, s := range d.segs {
		if s == nil {
			continue
		}
		base := VABlockID(si << blockDirSegBits)
		for wi, w := range s.used {
			for w != 0 {
				o := wi<<6 + bits.TrailingZeros64(w)
				if !fn(base+VABlockID(o), s.items[o]) {
					return
				}
				w &= w - 1
			}
		}
	}
}
