package mem

import "math/bits"

// PageSet is a fixed 512-bit set tracking per-page state within one VABlock
// (residency, dirtiness, CPU mappings, ...). The zero value is empty.
type PageSet [PagesPerVABlock / 64]uint64

// Set marks page index i.
func (s *PageSet) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks page index i.
func (s *PageSet) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether page index i is marked.
func (s *PageSet) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of marked pages.
func (s *PageSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountRange returns the number of marked pages with index in [lo, hi).
func (s *PageSet) CountRange(lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if s.Has(i) {
			n++
		}
	}
	return n
}

// Reset clears all pages.
func (s *PageSet) Reset() { *s = PageSet{} }

// Any reports whether at least one page is marked.
func (s *PageSet) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Full reports whether all 512 pages are marked.
func (s *PageSet) Full() bool { return s.Count() == PagesPerVABlock }

// SetAll marks all 512 pages.
func (s *PageSet) SetAll() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// Union merges o into s.
func (s *PageSet) Union(o *PageSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

// Subtract clears every page marked in o.
func (s *PageSet) Subtract(o *PageSet) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// Pages appends the PageIDs of all marked pages of block b, ascending, to
// dst and returns it — Indices fused with VABlockID.PageAt for hot paths
// that stage page lists into reusable buffers.
func (s *PageSet) Pages(dst []PageID, b VABlockID) []PageID {
	for wi, w := range s {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, b.PageAt(wi*64+bit))
			w &^= 1 << uint(bit)
		}
	}
	return dst
}

// Indices appends the indices of all marked pages, ascending, to dst and
// returns it.
func (s *PageSet) Indices(dst []int) []int {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*64+b)
			w &^= 1 << uint(b)
		}
	}
	return dst
}
