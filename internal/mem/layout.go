// Package mem defines the address-space arithmetic shared by the GPU, the
// UVM driver, and the host OS models: 4 KB base pages (the x86 host page
// size UVM adopts), 64 KB prefetch regions (the Power9-emulating upgrade
// granularity), and 2 MB virtual address blocks (VABlocks), the driver's
// unit of management and eviction.
package mem

import "fmt"

// Fundamental granularities of the UVM system on x86 hosts.
const (
	PageSize    = 4 << 10  // 4 KB: host OS page, fault granularity
	RegionSize  = 64 << 10 // 64 KB: prefetch upgrade region
	VABlockSize = 2 << 20  // 2 MB: driver management/eviction unit

	PagesPerRegion  = RegionSize / PageSize    // 16
	PagesPerVABlock = VABlockSize / PageSize   // 512
	RegionsPerBlock = VABlockSize / RegionSize // 32
	PageShift       = 12
	RegionShift     = 16
	VABlockShift    = 21
)

// Addr is a byte address in the unified virtual address space.
type Addr uint64

// PageID identifies a 4 KB page (address >> 12).
type PageID uint64

// VABlockID identifies a 2 MB VABlock (address >> 21).
type VABlockID uint64

// PageOf returns the page containing a.
func PageOf(a Addr) PageID { return PageID(a >> PageShift) }

// VABlockOf returns the VABlock containing a.
func VABlockOf(a Addr) VABlockID { return VABlockID(a >> VABlockShift) }

// Addr returns the base address of page p.
func (p PageID) Addr() Addr { return Addr(p) << PageShift }

// VABlock returns the VABlock containing page p.
func (p PageID) VABlock() VABlockID { return VABlockID(p >> (VABlockShift - PageShift)) }

// IndexInBlock returns p's index within its VABlock, in [0, 512).
func (p PageID) IndexInBlock() int { return int(p) & (PagesPerVABlock - 1) }

// Region returns the index of p's 64 KB region within its VABlock, in [0, 32).
func (p PageID) Region() int { return p.IndexInBlock() / PagesPerRegion }

// Addr returns the base address of VABlock b.
func (b VABlockID) Addr() Addr { return Addr(b) << VABlockShift }

// FirstPage returns the first page of VABlock b.
func (b VABlockID) FirstPage() PageID { return PageID(b) << (VABlockShift - PageShift) }

// PageAt returns the idx-th page of VABlock b. It panics if idx is outside
// [0, PagesPerVABlock).
func (b VABlockID) PageAt(idx int) PageID {
	if idx < 0 || idx >= PagesPerVABlock {
		panic(fmt.Sprintf("mem: page index %d outside VABlock", idx))
	}
	return b.FirstPage() + PageID(idx)
}

// String renders an address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// AlignUp rounds n up to the next multiple of align (a power of two).
func AlignUp(n, align uint64) uint64 {
	return (n + align - 1) &^ (align - 1)
}

// Span is a contiguous range of pages [First, First+Count).
type Span struct {
	First PageID
	Count int
}

// Contains reports whether p lies within the span.
func (s Span) Contains(p PageID) bool {
	return p >= s.First && p < s.First+PageID(s.Count)
}

// Bytes returns the span size in bytes.
func (s Span) Bytes() uint64 { return uint64(s.Count) * PageSize }

// End returns the first page after the span.
func (s Span) End() PageID { return s.First + PageID(s.Count) }

// CoalescePages groups a sorted slice of distinct pages into maximal
// contiguous spans. The driver uses this to batch copy-engine transfers:
// contiguous pages move as one DMA operation.
func CoalescePages(pages []PageID) []Span {
	if len(pages) == 0 {
		return nil
	}
	return CoalescePagesInto(make([]Span, 0, 8), pages)
}

// CoalescePagesInto is CoalescePages appending into dst, so hot paths can
// reuse a scratch buffer instead of allocating per call.
func CoalescePagesInto(dst []Span, pages []PageID) []Span {
	if len(pages) == 0 {
		return dst
	}
	cur := Span{First: pages[0], Count: 1}
	for _, p := range pages[1:] {
		if p == cur.First+PageID(cur.Count) {
			cur.Count++
			continue
		}
		dst = append(dst, cur)
		cur = Span{First: p, Count: 1}
	}
	return append(dst, cur)
}
