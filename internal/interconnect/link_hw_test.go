package interconnect

import (
	"errors"
	"math"
	"testing"

	"guvm/internal/faultinject"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

func TestNewLinkValidationEdgeCases(t *testing.T) {
	for _, cfg := range []Config{
		{BandwidthBytesPerSec: math.NaN(), OpLatency: 0, CopyEngines: 1},
		{BandwidthBytesPerSec: math.Inf(1), OpLatency: 0, CopyEngines: 1},
		{BandwidthBytesPerSec: math.Inf(-1), OpLatency: 0, CopyEngines: 1},
		{BandwidthBytesPerSec: 1e9, OpLatency: -1, CopyEngines: 1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(%+v) did not panic", cfg)
				}
			}()
			NewLink(cfg)
		}()
	}
	good := DefaultPCIe3x16()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// hwLink builds a link wired to a hardware domain and a settable clock.
func hwLink(t *testing.T, cfg faultinject.HardwareConfig) (*Link, *sim.Time) {
	t.Helper()
	hw, err := faultinject.NewHardware(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := new(sim.Time)
	l := NewLink(DefaultPCIe3x16())
	l.SetHardware(hw, 0, func() sim.Time { return *now })
	return l, now
}

// findEpoch scans for an epoch whose health matches want, and positions
// the clock inside it.
func findEpoch(t *testing.T, l *Link, now *sim.Time, epochLen sim.Time, want Health) {
	t.Helper()
	for e := sim.Time(0); e < 10_000; e++ {
		*now = e * epochLen
		if l.Health() == want {
			return
		}
	}
	t.Fatalf("no %v epoch in 10000 draws", want)
}

// Degraded epochs must slow the link: the same spans cost strictly more
// than on a healthy epoch, and monotonically more for more bytes.
func TestDegradedBandwidthCost(t *testing.T) {
	cfg := faultinject.DefaultHardwareConfig()
	cfg.LinkDegradeRate = 0.5
	l, now := hwLink(t, cfg)

	spans := []mem.Span{{First: 0, Count: 64}}
	findEpoch(t, l, now, cfg.EpochLength, Healthy)
	healthy := l.TransferSpans(spans, true)
	findEpoch(t, l, now, cfg.EpochLength, Degraded)
	degraded := l.TransferSpans(spans, true)
	if degraded <= healthy {
		t.Fatalf("degraded cost %d <= healthy cost %d", degraded, healthy)
	}
	// Factor 0.25 → bandwidth time ×4 (plus unchanged op latency).
	more := l.TransferSpans([]mem.Span{{First: 0, Count: 128}}, true)
	if more <= degraded {
		t.Fatalf("degraded cost not monotone in bytes: %d <= %d", more, degraded)
	}
	if l.Stats().DegradedOps != 2 {
		t.Fatalf("DegradedOps = %d, want 2", l.Stats().DegradedOps)
	}
}

// A dead link refuses AttemptSpans at no cost but still carries the
// guaranteed path (re-homing uses it).
func TestDeadLinkRefusesAttempts(t *testing.T) {
	cfg := faultinject.DefaultHardwareConfig()
	cfg.LinkFlapRate = 0.5 // any enabled regime
	l, _ := hwLink(t, cfg)
	l.Kill()
	if !l.Dead() || l.Health() != Dead {
		t.Fatalf("health = %v after Kill", l.Health())
	}
	cost, err := l.AttemptSpans([]mem.Span{{First: 0, Count: 4}}, true)
	if !errors.Is(err, ErrLinkDown) || cost != 0 {
		t.Fatalf("AttemptSpans on dead link = (%d, %v), want (0, ErrLinkDown)", cost, err)
	}
	if l.Stats().Ops != 0 {
		t.Fatalf("refused attempt accrued %d ops", l.Stats().Ops)
	}
	drain := l.TransferSpans([]mem.Span{{First: 0, Count: 4}}, false)
	if drain <= 0 {
		t.Fatal("guaranteed drain on dead link cost nothing")
	}
	if st := l.Stats(); st.BytesToHost != 4*mem.PageSize {
		t.Fatalf("drain bytes not accounted: %+v", st)
	}
}

// A flapping link with drop rate 1 charges the bytes, then fails.
func TestFlappingLinkDropsAfterCharging(t *testing.T) {
	cfg := faultinject.DefaultHardwareConfig()
	cfg.LinkFlapRate = 1
	cfg.FlapDropRate = 1
	l, _ := hwLink(t, cfg)
	if l.Health() != Flapping {
		t.Fatalf("health = %v, want flapping", l.Health())
	}
	cost, err := l.AttemptSpans([]mem.Span{{First: 0, Count: 8}}, true)
	if !errors.Is(err, ErrLinkFlapped) {
		t.Fatalf("err = %v, want ErrLinkFlapped", err)
	}
	if cost <= 0 {
		t.Fatal("dropped attempt cost nothing — bytes must be charged before the drop")
	}
	st := l.Stats()
	if st.FlapDrops != 1 || st.BytesToGPU != 8*mem.PageSize {
		t.Fatalf("stats = %+v", st)
	}
	// The guaranteed path on the same link never drops.
	if c := l.TransferSpans([]mem.Span{{First: 0, Count: 8}}, true); c <= 0 {
		t.Fatal("guaranteed transfer on flapping link failed")
	}
}

// Flapping takes precedence over degraded when an epoch draws both.
func TestFlapPrecedesDegraded(t *testing.T) {
	cfg := faultinject.DefaultHardwareConfig()
	cfg.LinkDegradeRate = 1
	cfg.LinkFlapRate = 1
	l, _ := hwLink(t, cfg)
	if l.Health() != Flapping {
		t.Fatalf("health = %v, want flapping over degraded", l.Health())
	}
}

// Digest must be stable across pure health-state transitions (no
// transfers), and must change once hw-visible activity differs.
func TestLinkDigestAcrossHealthTransitions(t *testing.T) {
	cfg := faultinject.DefaultHardwareConfig()
	cfg.LinkDegradeRate = 0.5
	l, now := hwLink(t, cfg)
	d0 := l.Digest()
	for e := sim.Time(0); e < 50; e++ {
		*now = e * cfg.EpochLength
		_ = l.Health()
		if got := l.Digest(); got != d0 {
			t.Fatalf("digest changed (%#x -> %#x) from health queries alone at epoch %d", d0, got, e)
		}
	}
	findEpoch(t, l, now, cfg.EpochLength, Degraded)
	l.TransferSpans([]mem.Span{{First: 0, Count: 1}}, true)
	if l.Digest() == d0 {
		t.Fatal("digest unchanged after a degraded transfer")
	}
}

// Two identically-seeded links replay identical schedules and digests;
// a link without a hardware domain digests exactly like the historical
// model after the same traffic.
func TestLinkDigestDeterminismAndGating(t *testing.T) {
	cfg := faultinject.DefaultHardwareConfig()
	cfg.LinkFlapRate = 0.3
	cfg.FlapDropRate = 0.5
	run := func() uint64 {
		l, now := hwLink(t, cfg)
		for e := sim.Time(0); e < 40; e++ {
			*now = e * cfg.EpochLength
			l.AttemptSpans([]mem.Span{{First: 0, Count: 4}}, true)
		}
		return l.Digest()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed link digests differ: %#x != %#x", a, b)
	}

	plain := NewLink(DefaultPCIe3x16())
	wired, _ := hwLink(t, faultinject.DefaultHardwareConfig()) // inert rates
	spans := []mem.Span{{First: 0, Count: 16}}
	cp := plain.TransferSpans(spans, true)
	cw := wired.TransferSpans(spans, true)
	if cp != cw {
		t.Fatalf("inert hw domain changed transfer cost: %d != %d", cw, cp)
	}
	// The wired link's digest folds hw fields in; the plain one must
	// keep the historical layout (gating is on attachment, not traffic).
	if plain.Stats() != wired.Stats() {
		t.Fatalf("stats diverged: %+v != %+v", plain.Stats(), wired.Stats())
	}
}
