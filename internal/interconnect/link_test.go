package interconnect

import (
	"testing"
	"testing/quick"

	"guvm/internal/mem"
	"guvm/internal/sim"
)

func TestTransferBytesCost(t *testing.T) {
	l := NewLink(Config{BandwidthBytesPerSec: 1e9, OpLatency: 1000, CopyEngines: 1})
	// 1 GB/s → 1 byte/ns; 4096 bytes = 4096 ns + 1000 ns latency.
	got := l.TransferBytes(4096, true)
	if got != 5096 {
		t.Fatalf("cost = %d, want 5096", got)
	}
	st := l.Stats()
	if st.BytesToGPU != 4096 || st.Ops != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransferSpansCoalescingCheaper(t *testing.T) {
	cfg := DefaultPCIe3x16()
	l1 := NewLink(cfg)
	l2 := NewLink(cfg)
	// Same total bytes: one 64-page span vs 64 single-page spans.
	one := []mem.Span{{First: 0, Count: 64}}
	var many []mem.Span
	for i := 0; i < 64; i++ {
		many = append(many, mem.Span{First: mem.PageID(i * 2), Count: 1})
	}
	c1 := l1.TransferSpans(one, true)
	c2 := l2.TransferSpans(many, true)
	if c1 >= c2 {
		t.Fatalf("contiguous transfer (%d) not cheaper than scattered (%d)", c1, c2)
	}
	if l1.Stats().BytesToGPU != l2.Stats().BytesToGPU {
		t.Fatal("byte accounting differs")
	}
}

func TestTransferDirectionAccounting(t *testing.T) {
	l := NewLink(DefaultPCIe3x16())
	l.TransferSpans([]mem.Span{{First: 0, Count: 10}}, true)
	l.TransferSpans([]mem.Span{{First: 0, Count: 5}}, false)
	st := l.Stats()
	if st.BytesToGPU != 10*mem.PageSize || st.BytesToHost != 5*mem.PageSize {
		t.Fatalf("direction accounting wrong: %+v", st)
	}
}

func TestNewLinkValidation(t *testing.T) {
	for _, cfg := range []Config{
		{BandwidthBytesPerSec: 0, CopyEngines: 1},
		{BandwidthBytesPerSec: -1, CopyEngines: 1},
		{BandwidthBytesPerSec: 1e9, CopyEngines: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLink(%+v) did not panic", cfg)
				}
			}()
			NewLink(cfg)
		}()
	}
}

func TestEmptyTransferCostsNothing(t *testing.T) {
	l := NewLink(DefaultPCIe3x16())
	if got := l.TransferSpans(nil, true); got != 0 {
		t.Fatalf("empty transfer cost = %d", got)
	}
}

// Property: cost is monotone in bytes and always at least OpLatency for a
// non-empty transfer.
func TestTransferMonotone(t *testing.T) {
	l := NewLink(DefaultPCIe3x16())
	f := func(a, b uint16) bool {
		x, y := uint64(a)+1, uint64(b)+1
		if x > y {
			x, y = y, x
		}
		cx := l.TransferBytes(x*mem.PageSize, true)
		cy := l.TransferBytes(y*mem.PageSize, true)
		return cx <= cy && cx >= sim.Time(4*sim.Microsecond)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: span transfer cost equals sum of per-span costs.
func TestSpanCostAdditive(t *testing.T) {
	f := func(counts []uint8) bool {
		spans := make([]mem.Span, 0, len(counts))
		next := mem.PageID(0)
		for _, c := range counts {
			n := int(c%32) + 1
			spans = append(spans, mem.Span{First: next, Count: n})
			next += mem.PageID(n + 2)
		}
		whole := NewLink(DefaultPCIe3x16())
		parts := NewLink(DefaultPCIe3x16())
		cw := whole.TransferSpans(spans, true)
		var cp sim.Time
		for _, s := range spans {
			cp += parts.TransferSpans([]mem.Span{s}, true)
		}
		diff := cw - cp
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Time(len(spans)) // integer rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
