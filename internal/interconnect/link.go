// Package interconnect models the host-device link (PCIe on the paper's
// testbed) and the GPU copy engines that move pages across it. Transfers
// are charged per-DMA-operation latency plus bandwidth time; contiguous
// pages coalesce into single operations, as the real driver arranges.
package interconnect

import (
	"fmt"

	"guvm/internal/digest"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// Config describes a link and its copy engines.
type Config struct {
	// BandwidthBytesPerSec is the sustained link bandwidth. The paper's
	// Titan V is PCIe 3.0 x16 (~12 GB/s effective).
	BandwidthBytesPerSec float64
	// OpLatency is the fixed setup latency per DMA operation.
	OpLatency sim.Time
	// CopyEngines is the number of hardware copy engines; the driver
	// model issues one VABlock's transfer per engine command.
	CopyEngines int
}

// DefaultPCIe3x16 returns the paper-testbed link profile.
func DefaultPCIe3x16() Config {
	return Config{
		BandwidthBytesPerSec: 12e9,
		OpLatency:            1 * sim.Microsecond,
		CopyEngines:          4,
	}
}

// Stats accumulates transfer accounting.
type Stats struct {
	Ops          int
	BytesToGPU   uint64
	BytesToHost  uint64
	TransferTime sim.Time
}

// Link computes virtual-time costs for data movement. The driver model
// executes transfers synchronously within batch servicing (the paper shows
// the driver waits for copies before replay), so Link only needs cost
// arithmetic, not queueing.
type Link struct {
	cfg   Config
	stats Stats
}

// NewLink returns a link with the given configuration. A non-positive
// bandwidth or engine count panics: the simulation would divide by zero.
func NewLink(cfg Config) *Link {
	if cfg.BandwidthBytesPerSec <= 0 {
		panic("interconnect: non-positive bandwidth")
	}
	if cfg.CopyEngines <= 0 {
		panic("interconnect: need at least one copy engine")
	}
	return &Link{cfg: cfg}
}

// Stats returns a copy of the accumulated transfer statistics.
func (l *Link) Stats() Stats { return l.stats }

// AuditState returns the canonical link state: the stats are the whole
// state, since the link is a pure cost model.
func (l *Link) AuditState() Stats { return l.stats }

// Digest returns the FNV-1a digest of the canonical link state.
func (l *Link) Digest() uint64 {
	h := digest.New()
	h = h.Int(l.stats.Ops)
	h = h.Uint64(l.stats.BytesToGPU).Uint64(l.stats.BytesToHost)
	h = h.Int64(int64(l.stats.TransferTime))
	return h.Sum()
}

// Dump renders the audit state for divergence diagnostics.
func (s Stats) Dump() string {
	return fmt.Sprintf("link: %d ops, %d B to GPU, %d B to host, %v busy\n",
		s.Ops, s.BytesToGPU, s.BytesToHost, s.TransferTime)
}

// bytesTime converts a byte count to pure bandwidth time.
func (l *Link) bytesTime(bytes uint64) sim.Time {
	return sim.Time(float64(bytes) / l.cfg.BandwidthBytesPerSec * float64(sim.Second))
}

// TransferSpans charges a host→GPU (toGPU=true) or GPU→host migration of
// the given page spans and returns its cost. Each span is one DMA
// operation: per-op latency plus bandwidth time.
func (l *Link) TransferSpans(spans []mem.Span, toGPU bool) sim.Time {
	var total sim.Time
	var bytes uint64
	for _, s := range spans {
		total += l.cfg.OpLatency + l.bytesTime(s.Bytes())
		bytes += s.Bytes()
	}
	l.stats.Ops += len(spans)
	if toGPU {
		l.stats.BytesToGPU += bytes
	} else {
		l.stats.BytesToHost += bytes
	}
	l.stats.TransferTime += total
	return total
}

// TransferBytes charges one contiguous bulk copy (the explicit
// cudaMemcpy-style baseline in Figure 1).
func (l *Link) TransferBytes(bytes uint64, toGPU bool) sim.Time {
	cost := l.cfg.OpLatency + l.bytesTime(bytes)
	l.stats.Ops++
	if toGPU {
		l.stats.BytesToGPU += bytes
	} else {
		l.stats.BytesToHost += bytes
	}
	l.stats.TransferTime += cost
	return cost
}
