// Package interconnect models the host-device link (PCIe on the paper's
// testbed) and the GPU copy engines that move pages across it. Transfers
// are charged per-DMA-operation latency plus bandwidth time; contiguous
// pages coalesce into single operations, as the real driver arranges.
//
// With a hardware fault domain attached (SetHardware), the link also
// models degraded-mode operation: a seeded, sim-time epoch schedule puts
// the link in one of four health states — healthy, degraded-bandwidth
// (transfers slow down), flapping (operations can drop after carrying
// their bytes), or dead (a killed device's link refuses all traffic).
// Without a hardware domain the link behaves, bit for bit, exactly as it
// always has.
package interconnect

import (
	"errors"
	"fmt"
	"math"

	"guvm/internal/digest"
	"guvm/internal/faultinject"
	"guvm/internal/mem"
	"guvm/internal/sim"
)

// Config describes a link and its copy engines.
type Config struct {
	// BandwidthBytesPerSec is the sustained link bandwidth. The paper's
	// Titan V is PCIe 3.0 x16 (~12 GB/s effective).
	BandwidthBytesPerSec float64
	// OpLatency is the fixed setup latency per DMA operation.
	OpLatency sim.Time
	// CopyEngines is the number of hardware copy engines; the driver
	// model issues one VABlock's transfer per engine command.
	CopyEngines int
}

// DefaultPCIe3x16 returns the paper-testbed link profile.
func DefaultPCIe3x16() Config {
	return Config{
		BandwidthBytesPerSec: 12e9,
		OpLatency:            1 * sim.Microsecond,
		CopyEngines:          4,
	}
}

// Validate checks the configuration for values the cost model cannot
// run with: a zero, negative or non-finite bandwidth divides by zero or
// overflows the virtual clock, and the latency and engine count must be
// physical.
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.BandwidthBytesPerSec) || math.IsInf(c.BandwidthBytesPerSec, 0):
		return fmt.Errorf("interconnect: BandwidthBytesPerSec = %v, need finite", c.BandwidthBytesPerSec)
	case c.BandwidthBytesPerSec <= 0:
		return fmt.Errorf("interconnect: BandwidthBytesPerSec = %v, need > 0", c.BandwidthBytesPerSec)
	case c.OpLatency < 0:
		return fmt.Errorf("interconnect: OpLatency = %v, need >= 0", c.OpLatency)
	case c.CopyEngines < 1:
		return fmt.Errorf("interconnect: CopyEngines = %d, need >= 1", c.CopyEngines)
	}
	return nil
}

// Health is a link's current fault-domain state.
type Health uint8

const (
	// Healthy: full bandwidth, no drops.
	Healthy Health = iota
	// Degraded: transfers run at the hardware domain's reduced
	// bandwidth factor.
	Degraded
	// Flapping: full bandwidth, but each operation may drop after
	// carrying its bytes (the caller retries).
	Flapping
	// Dead: the device behind the link was killed; all traffic is
	// refused.
	Dead
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Flapping:
		return "flapping"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// ErrLinkDown is returned by AttemptSpans on a dead link: the transfer
// was refused and no cost accrued.
var ErrLinkDown = errors.New("interconnect: link down")

// ErrLinkFlapped is returned by AttemptSpans when a flapping link
// dropped the operation. The bytes were carried (and charged) before
// the drop, as on a real link whose completion was lost; the caller
// retries with backoff.
var ErrLinkFlapped = errors.New("interconnect: transfer dropped by flapping link")

// Stats accumulates transfer accounting.
type Stats struct {
	Ops          int
	BytesToGPU   uint64
	BytesToHost  uint64
	TransferTime sim.Time
	// DegradedOps counts operations carried during degraded epochs;
	// FlapDrops counts operations dropped by a flapping link. Both stay
	// zero without a hardware fault domain.
	DegradedOps int
	FlapDrops   int
}

// Link computes virtual-time costs for data movement. The driver model
// executes transfers synchronously within batch servicing (the paper shows
// the driver waits for copies before replay), so Link only needs cost
// arithmetic, not queueing.
type Link struct {
	cfg   Config
	stats Stats

	// Hardware fault domain (nil in the default, always-healthy
	// wiring): hw draws the health schedule, id names this link in the
	// draws, now reads the virtual clock for epoch lookup.
	hw  *faultinject.HardwareInjector
	id  int
	now func() sim.Time
	// dead latches after Kill; opSeq sequences AttemptSpans operations
	// for per-op flap draws.
	dead  bool
	opSeq uint64
}

// NewLink returns a link with the given configuration. An invalid
// configuration panics: the simulation would divide by zero.
func NewLink(cfg Config) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Link{cfg: cfg}
}

// SetHardware attaches a hardware fault domain: hw draws this link's
// health schedule under identity id, and now supplies the virtual clock.
func (l *Link) SetHardware(hw *faultinject.HardwareInjector, id int, now func() sim.Time) {
	l.hw = hw
	l.id = id
	l.now = now
}

// Kill marks the link dead (its device was killed); every later
// AttemptSpans fails with ErrLinkDown.
func (l *Link) Kill() { l.dead = true }

// Dead reports whether the link was killed.
func (l *Link) Dead() bool { return l.dead }

// Health returns the link's current fault-domain state. Without a
// hardware domain the link is always healthy; with one, the state is a
// stateless per-(link, epoch) draw, so querying it never perturbs any
// stream. Flapping takes precedence over degraded when an epoch draws
// both.
func (l *Link) Health() Health {
	if l.dead {
		return Dead
	}
	if l.hw == nil || l.now == nil {
		return Healthy
	}
	degraded, flapping := l.hw.LinkEpochDraws(l.id, l.hw.EpochOf(l.now()))
	switch {
	case flapping:
		return Flapping
	case degraded:
		return Degraded
	}
	return Healthy
}

// Stats returns a copy of the accumulated transfer statistics.
func (l *Link) Stats() Stats { return l.stats }

// AuditState returns the canonical link state: the stats are the whole
// state, since the link is a pure cost model.
func (l *Link) AuditState() Stats { return l.stats }

// Digest returns the FNV-1a digest of the canonical link state. The
// hardware-domain fields are folded in only when a domain is attached,
// so default-wiring digests are unchanged from the pre-fault-domain
// model.
func (l *Link) Digest() uint64 {
	h := digest.New()
	h = h.Int(l.stats.Ops)
	h = h.Uint64(l.stats.BytesToGPU).Uint64(l.stats.BytesToHost)
	h = h.Int64(int64(l.stats.TransferTime))
	if l.hw != nil {
		h = h.Int(l.stats.DegradedOps).Int(l.stats.FlapDrops)
		h = h.Uint64(l.opSeq).Bool(l.dead)
	}
	return h.Sum()
}

// Dump renders the audit state for divergence diagnostics.
func (s Stats) Dump() string {
	out := fmt.Sprintf("link: %d ops, %d B to GPU, %d B to host, %v busy\n",
		s.Ops, s.BytesToGPU, s.BytesToHost, s.TransferTime)
	if s.DegradedOps > 0 || s.FlapDrops > 0 {
		out += fmt.Sprintf("link-hw: %d degraded ops, %d flap drops\n", s.DegradedOps, s.FlapDrops)
	}
	return out
}

// bytesTimeAt converts a byte count to pure bandwidth time under the
// given health state (degraded epochs run at the reduced factor).
func (l *Link) bytesTimeAt(bytes uint64, h Health) sim.Time {
	bw := l.cfg.BandwidthBytesPerSec
	if h == Degraded {
		bw *= l.hw.DegradedFactor()
	}
	return sim.Time(float64(bytes) / bw * float64(sim.Second))
}

// carrySpans charges the spans at the given health state and accounts
// the bytes. The carry itself never fails — drop decisions are layered
// on top by AttemptSpans.
func (l *Link) carrySpans(spans []mem.Span, toGPU bool, h Health) sim.Time {
	var total sim.Time
	var bytes uint64
	for _, s := range spans {
		total += l.cfg.OpLatency + l.bytesTimeAt(s.Bytes(), h)
		bytes += s.Bytes()
	}
	l.stats.Ops += len(spans)
	if h == Degraded {
		l.stats.DegradedOps += len(spans)
	}
	if toGPU {
		l.stats.BytesToGPU += bytes
	} else {
		l.stats.BytesToHost += bytes
	}
	l.stats.TransferTime += total
	return total
}

// TransferSpans charges a host→GPU (toGPU=true) or GPU→host migration of
// the given page spans and returns its cost. Each span is one DMA
// operation: per-op latency plus bandwidth time (reduced during
// degraded epochs). The transfer always completes — it is the
// guaranteed-delivery path, used for default wiring and for emergency
// drains such as dead-device page re-homing.
func (l *Link) TransferSpans(spans []mem.Span, toGPU bool) sim.Time {
	h := l.Health()
	if h == Dead || h == Flapping {
		// Guaranteed delivery ignores drop regimes: carry at full
		// bandwidth.
		h = Healthy
	}
	return l.carrySpans(spans, toGPU, h)
}

// AttemptSpans is the fallible transfer path: a dead link refuses the
// operation outright (no cost), and a flapping link carries the bytes —
// charging the full cost — but may then drop the operation, returning
// ErrLinkFlapped for the caller to retry. Healthy and degraded epochs
// behave like TransferSpans.
func (l *Link) AttemptSpans(spans []mem.Span, toGPU bool) (sim.Time, error) {
	if l.dead {
		return 0, ErrLinkDown
	}
	h := l.Health()
	cost := l.carrySpans(spans, toGPU, h)
	if h == Flapping {
		l.opSeq++
		if l.hw.TransferDrops(l.id, l.opSeq) {
			l.stats.FlapDrops++
			return cost, ErrLinkFlapped
		}
	}
	return cost, nil
}

// TransferBytes charges one contiguous bulk copy (the explicit
// cudaMemcpy-style baseline in Figure 1).
func (l *Link) TransferBytes(bytes uint64, toGPU bool) sim.Time {
	h := l.Health()
	if h == Dead || h == Flapping {
		h = Healthy
	}
	cost := l.cfg.OpLatency + l.bytesTimeAt(bytes, h)
	l.stats.Ops++
	if h == Degraded {
		l.stats.DegradedOps++
	}
	if toGPU {
		l.stats.BytesToGPU += bytes
	} else {
		l.stats.BytesToHost += bytes
	}
	l.stats.TransferTime += cost
	return cost
}
