package guvm_test

import (
	"testing"

	"guvm"

	"guvm/internal/experiments"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

// ---- One benchmark per paper table and figure. ----
//
// Each iteration regenerates the artifact from scratch (the shared
// workload cache is reset), so the reported ns/op is the cost of
// reproducing that table or figure end-to-end. The artifact itself — the
// same rows/series the paper reports — is written by cmd/paperfigs.
//
// ResetCache clears ALL cross-experiment memo state by contract: every
// package-level cache in internal/experiments must be a single-flight
// memo cell wired into it (DESIGN.md §6.1), so cold-cache timings here
// cannot silently become warm-cache ones when a new cache is added.

func mustBenchSim(b *testing.B, cfg guvm.SystemConfig) *guvm.Simulator {
	b.Helper()
	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	g, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		a, err := g.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Notes) == 0 {
			b.Fatal("experiment produced no observations")
		}
	}
}

func BenchmarkFig01AccessLatency(b *testing.B)    { benchExperiment(b, "fig01") }
func BenchmarkFig03VecaddBatches(b *testing.B)    { benchExperiment(b, "fig03") }
func BenchmarkFig04FaultTimestamps(b *testing.B)  { benchExperiment(b, "fig04") }
func BenchmarkFig05PrefetchBatch(b *testing.B)    { benchExperiment(b, "fig05") }
func BenchmarkTable2PerSMStats(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig06BatchCostFit(b *testing.B)     { benchExperiment(b, "fig06") }
func BenchmarkFig07TransferFraction(b *testing.B) { benchExperiment(b, "fig07") }
func BenchmarkFig08DedupSeries(b *testing.B)      { benchExperiment(b, "fig08") }
func BenchmarkFig09BatchSizeSweep(b *testing.B)   { benchExperiment(b, "fig09") }
func BenchmarkTable3VABlockStats(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig10VABlockCost(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11UnmapThreads(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12SgemmEviction(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13EvictionLevels(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14Prefetch(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15CombinedProfile(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkTable4PrefetchSpeedup(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig16GaussSeidelStudy(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17HPGMGStudy(b *testing.B)       { benchExperiment(b, "fig17") }

// §6-proposal ablation experiments (see internal/experiments).
func BenchmarkAblParallelServicing(b *testing.B)  { benchExperiment(b, "abl-parallel") }
func BenchmarkAblAdaptiveBatch(b *testing.B)      { benchExperiment(b, "abl-adaptive") }
func BenchmarkAblAsyncUnmap(b *testing.B)         { benchExperiment(b, "abl-asyncunmap") }
func BenchmarkAblCrossBlockPrefetch(b *testing.B) { benchExperiment(b, "abl-xblock") }
func BenchmarkAblEvictionPolicy(b *testing.B)     { benchExperiment(b, "abl-eviction") }
func BenchmarkAblHardwareLimits(b *testing.B)     { benchExperiment(b, "abl-hardware") }
func BenchmarkExtMultiGPU(b *testing.B)           { benchExperiment(b, "ext-multigpu") }

// ---- Ablation benches for the design choices DESIGN.md calls out. ----

// BenchmarkAblationBatchSize times one fault-heavy GEMM per driver batch
// size limit: the Figure 9 knob in isolation.
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, bs := range []int{64, 256, 1024, 4096} {
		b.Run(itoa(bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := guvm.DefaultConfig()
				cfg.Driver.PrefetchEnabled = false
				cfg.Driver.Upgrade64K = false
				cfg.Driver.BatchSize = bs
				w := workloads.NewSGEMM(1024)
				w.Tile = 512
				w.ChunkPages = 32
				w.ComputePerChunk = 10 * sim.Microsecond
				res, err := mustBenchSim(b, cfg).Run(w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KernelTime.Millis(), "kernel-ms")
				b.ReportMetric(float64(len(res.Batches)), "batches")
			}
		})
	}
}

// BenchmarkAblationPrefetchThreshold times the density prefetcher's
// occupancy threshold (UVM default 0.51).
func BenchmarkAblationPrefetchThreshold(b *testing.B) {
	for _, th := range []float64{0.25, 0.51, 0.75} {
		b.Run(ftoa(th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := guvm.DefaultConfig()
				cfg.Driver.PrefetchThreshold = th
				res, err := mustBenchSim(b, cfg).Run(workloads.NewStream(32<<20, 24))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KernelTime.Millis(), "kernel-ms")
				b.ReportMetric(float64(res.DriverStats.PrefetchedPages), "prefetched")
			}
		})
	}
}

// BenchmarkAblationUnmapThreads times the host-OS unmap amplification by
// CPU thread count (Figure 11's knob in isolation).
func BenchmarkAblationUnmapThreads(b *testing.B) {
	for _, threads := range []int{1, 8, 32} {
		b.Run(itoa(threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := guvm.DefaultConfig()
				res, err := mustBenchSim(b, cfg).Run(workloads.NewHPGMG(32<<20, threads))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KernelTime.Millis(), "kernel-ms")
				b.ReportMetric(float64(res.HostStats.UnmapTime)/1e6, "unmap-ms")
			}
		})
	}
}

// BenchmarkAblationEvictionExclusion times the same-batch eviction
// exclusion heuristic's scenario: heavy thrash where victims must be
// chosen among recently serviced blocks.
func BenchmarkAblationEvictionExclusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := guvm.DefaultConfig()
		cfg.Driver.GPUMemBytes = 16 << 20
		cfg.Driver.PrefetchEnabled = false
		cfg.Driver.Upgrade64K = false
		s := workloads.NewStream(16<<20, 24)
		s.Iterations = 2
		res, err := mustBenchSim(b, cfg).Run(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DriverStats.Evictions), "evictions")
	}
}

// ---- Substrate micro-benchmarks (allocation behaviour via -benchmem). ----

// BenchmarkSimulatorStream is the end-to-end simulator throughput
// reference: one full 3x16 MB triad under default policies.
func BenchmarkSimulatorStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := mustBenchSim(b, guvm.DefaultConfig()).Run(workloads.NewStream(16<<20, 24))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DriverStats.TotalFaults), "faults")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	n := int(f*100 + 0.5)
	return itoa(n/100) + "p" + itoa(n%100)
}
