package guvm

import (
	"fmt"

	"guvm/internal/audit"
	"guvm/internal/faultinject"
	"guvm/internal/gpu"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/trace"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// MultiSimulator wires several GPUs onto one host: each device has its own
// driver state, memory and PCIe link, but all drivers contend for the one
// host fault-servicing slot (the paper's client-server architecture, §2.1,
// where the serial host driver services every client). This is the
// "interactions among multiple devices" follow-on the paper positions
// itself as the foundation for.
type MultiSimulator struct {
	Config   SystemConfig
	Engine   *sim.Engine
	Devices  []*gpu.Device
	Drivers  []*uvm.Driver
	HostVM   *hostos.VM
	Arbiter  *uvm.Arbiter
	Injector *faultinject.Injector
	// HW is the shared hardware fault-domain injector (nil unless
	// SystemConfig.HW enables a fault regime). Link-health draws stay
	// independent per device: each decision folds in the link index.
	HW       *faultinject.HardwareInjector
	Auditors []*audit.Auditor

	used bool
}

// NewMultiSimulator builds an n-device simulator. The host VM is shared
// (one OS); links are per-device (separate PCIe slots). All devices share
// one injector, so injection decisions stay deterministic under the
// engine's global event order.
func NewMultiSimulator(cfg SystemConfig, n int) (*MultiSimulator, error) {
	if n < 1 {
		return nil, fmt.Errorf("guvm: %d devices, need at least one", n)
	}
	if err := cfg.Policies.Apply(&cfg.Driver); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	eng.MaxEvents = cfg.MaxEvents
	eng.MaxStallEvents = cfg.MaxStallEvents
	vm := hostos.NewVM(cfg.Host)
	arb := uvm.NewArbiter(eng)
	inj, err := faultinject.New(cfg.Inject)
	if err != nil {
		return nil, err
	}
	m := &MultiSimulator{
		Config:   cfg,
		Engine:   eng,
		HostVM:   vm,
		Arbiter:  arb,
		Injector: inj,
	}
	if cfg.HW.Enabled() {
		hw, err := faultinject.NewHardware(cfg.HW)
		if err != nil {
			return nil, err
		}
		if cfg.HW.KillBatch > 0 && cfg.HW.KillDevice >= n {
			return nil, fmt.Errorf("guvm: HW.KillDevice = %d, system has %d devices",
				cfg.HW.KillDevice, n)
		}
		m.HW = hw
	}
	for i := 0; i < n; i++ {
		link := interconnect.NewLink(cfg.Link)
		drv, err := uvm.NewDriver(cfg.Driver, eng, vm, link)
		if err != nil {
			return nil, err
		}
		drv.Collector.KeepFaults = cfg.KeepFaults
		drv.Collector.KeepSpans = cfg.KeepSpans
		dev, err := gpu.NewDevice(cfg.GPU, eng, drv)
		if err != nil {
			return nil, err
		}
		drv.Attach(dev)
		drv.SetArbiter(arb)
		drv.SetInjector(inj)
		dev.SetInjector(inj)
		if m.HW != nil {
			link.SetHardware(m.HW, i, eng.Now)
			drv.SetHardware(m.HW)
		}
		if cfg.Audit.Active() {
			// Every driver aliases the one host VM, the one injector and
			// the one hardware domain, so the per-device checks that
			// reconcile against them are disabled.
			a := audit.New(cfg.Audit,
				audit.Options{SharedHost: true, SharedInjector: true, SharedHardware: true},
				eng, drv, dev, vm, inj)
			a.SetHardware(m.HW)
			a.Attach()
			m.Auditors = append(m.Auditors, a)
		}
		m.Drivers = append(m.Drivers, drv)
		m.Devices = append(m.Devices, dev)
	}
	if m.HW != nil && cfg.HW.KillBatch > 0 {
		// Device-death schedule: kill the victim after it completes the
		// configured number of batches; surviving devices keep running
		// and the arbiter ledger records the recovery for the audit.
		victim, kill := cfg.HW.KillDevice, cfg.HW.KillBatch
		drv, dev := m.Drivers[victim], m.Devices[victim]
		drv.AddBatchObserver(func(id int, _ *trace.BatchRecord) {
			if id+1 != kill {
				return
			}
			dev.Kill()
			rep := drv.RehomeToHost()
			m.HW.NoteDeviceKilled()
			drv.Link().Kill()
			arb.NoteRehome(uvm.RehomeRecord{
				Device: victim,
				Batch:  kill,
				Blocks: rep.Blocks,
				Pages:  rep.Pages,
				Bytes:  rep.Bytes,
				At:     eng.Now(),
			})
			eng.Schedule(rep.Cost, func() {})
		})
	}
	return m, nil
}

// RunConcurrent executes workload i on device i, all starting at virtual
// time zero, and returns one Result per device. Like Simulator, a
// MultiSimulator is single-shot.
func (m *MultiSimulator) RunConcurrent(ws []workloads.Workload) ([]*Result, error) {
	if m.used {
		return nil, fmt.Errorf("guvm: MultiSimulator already ran: %w", ErrSimulatorReused)
	}
	m.used = true
	if len(ws) != len(m.Devices) {
		return nil, fmt.Errorf("guvm: %d workloads for %d devices", len(ws), len(m.Devices))
	}

	kernelTimes := make([]sim.Time, len(ws))
	basesPer := make([][]mem.Addr, len(ws))
	var runErr error

	for i, w := range ws {
		i, w := i, w
		drv, dev := m.Drivers[i], m.Devices[i]
		allocs := w.Allocs()
		bases := make([]mem.Addr, len(allocs))
		for j, a := range allocs {
			if a.Bytes == 0 {
				return nil, fmt.Errorf("guvm: workload %q allocation %d is empty", w.Name(), j)
			}
			var opts []uvm.AllocOption
			if a.HostInit {
				opts = append(opts, uvm.WithHostInit(a.HostThreads))
			}
			bases[j] = drv.Alloc(a.Bytes, opts...)
		}
		basesPer[i] = bases
		phases := w.Phases(bases)

		var runPhase func(p int)
		runPhase = func(p int) {
			if p >= len(phases) {
				return
			}
			ph := phases[p]
			for _, ht := range ph.HostTouches {
				drv.TouchHost(ht.Base, ht.Bytes, ht.Threads)
			}
			if ph.Kernel.NumBlocks == 0 {
				runPhase(p + 1)
				return
			}
			if m.Config.Driver.AsyncUnmap {
				drv.PreUnmapAllocations()
			}
			start := m.Engine.Now()
			err := dev.LaunchKernel(ph.Kernel, func() {
				kernelTimes[i] += m.Engine.Now() - start
				runPhase(p + 1)
			})
			if err != nil {
				m.Engine.Fail(fmt.Errorf("guvm: device %d phase %d: %w", i, p, err))
			}
		}
		m.Engine.Schedule(0, func() { runPhase(0) })
	}

	var engErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("guvm: simulation panicked: %v", r)
			}
		}()
		_, engErr = m.Engine.Run()
	}()
	failure := runErr
	if failure == nil {
		failure = engErr
	}
	if failure == nil {
		for i, dev := range m.Devices {
			if dev.Running() {
				failure = fmt.Errorf("guvm: device %d kernel incomplete at virtual time %d ns with no pending events: %w",
					i, m.Engine.Now(), ErrStalled)
				break
			}
		}
	}
	auditReps := make([]*audit.Report, len(ws))
	for i, a := range m.Auditors {
		auditReps[i] = a.Finish(failure)
	}
	if failure != nil {
		return nil, failure
	}

	results := make([]*Result, len(ws))
	var auditErr error
	for i := range ws {
		col := m.Drivers[i].Collector
		results[i] = &Result{
			Workload:     ws[i].Name(),
			KernelTime:   kernelTimes[i],
			TotalTime:    m.Engine.Now(),
			Batches:      col.Batches,
			Faults:       col.Faults,
			FaultBatch:   col.FaultBatch,
			Bases:        basesPer[i],
			DriverStats:  m.Drivers[i].Stats(),
			DeviceStats:  m.Devices[i].Stats(),
			HostStats:    m.HostVM.Stats(),
			LinkStats:    m.Drivers[i].Link().Stats(),
			InjectStats:  m.Injector.Stats(),
			HWStats:      m.HW.Stats(),
			DeviceFailed: m.Drivers[i].Dead(),
			Audit:        auditReps[i],
		}
		if err := auditReps[i].Err(); err != nil && auditErr == nil {
			auditErr = fmt.Errorf("guvm: device %d run completed but failed its audit: %w", i, err)
		}
	}
	if auditErr != nil {
		return results, auditErr
	}
	return results, nil
}
