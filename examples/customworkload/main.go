// Custom workload: implement the workloads.Workload interface from scratch
// — a pointer-chasing graph traversal with a host phase between passes —
// and run it under UVM. This is the extension point downstream users adopt
// the library for.
package main

import (
	"fmt"
	"log"

	"guvm"
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

// graphWalk models an irregular BFS-like traversal: each block chases a
// pseudo-random chain through a large node array, with one page fault per
// hop — the worst case for demand paging and the reason graph codes drove
// much of the UVM-optimization literature.
type graphWalk struct {
	nodesBytes uint64
	walkers    int
	hops       int
	seed       uint64
}

func (g *graphWalk) Name() string { return "graph-walk" }

func (g *graphWalk) Allocs() []workloads.Alloc {
	return []workloads.Alloc{
		{Name: "nodes", Bytes: g.nodesBytes, HostInit: true, HostThreads: 8},
	}
}

func (g *graphWalk) Phases(bases []mem.Addr) []workloads.Phase {
	first := mem.PageOf(bases[0])
	totalPages := g.nodesBytes / mem.PageSize
	kernel := gpu.Kernel{
		NumBlocks: g.walkers,
		BlockProgram: func(blk int) []gpu.Program {
			rng := sim.NewRNG(g.seed + uint64(blk)*7919)
			var prog gpu.Program
			for hop := 0; hop < g.hops; hop++ {
				// Each hop's load feeds the next hop's address:
				// a true dependent chain.
				page := first + mem.PageID(rng.Uint64n(totalPages))
				prog = append(prog,
					gpu.Read(0, page),
					gpu.Compute(2*sim.Microsecond, 0),
				)
			}
			return []gpu.Program{prog}
		},
	}
	return []workloads.Phase{
		{Name: "pass1", Kernel: kernel},
		// Host updates frontier data between passes, restoring CPU
		// mappings on part of the array.
		{Name: "host-frontier", HostTouches: []workloads.HostTouch{
			{Base: bases[0], Bytes: g.nodesBytes / 4, Threads: 8},
		}},
		{Name: "pass2", Kernel: kernel},
	}
}

func main() {
	w := func() workloads.Workload {
		return &graphWalk{nodesBytes: 96 << 20, walkers: 64, hops: 200, seed: 1}
	}

	runCase := func(label string, pf bool, capMB uint64) *guvm.Result {
		cfg := guvm.DefaultConfig()
		cfg.Driver.PrefetchEnabled = pf
		cfg.Driver.Upgrade64K = pf
		cfg.Driver.GPUMemBytes = capMB << 20
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(w())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s kernel %7.1f ms  batches %4d  migrated %6.1f MiB  evictions %3d\n",
			label, res.KernelTime.Millis(), len(res.Batches),
			float64(res.BytesMigrated())/(1<<20), res.DriverStats.Evictions)
		return res
	}

	fmt.Println("-- in-core (256 MB GPU): prefetching trades traffic for batches --")
	runCase("demand, in-core", false, 256)
	runCase("prefetch, in-core", true, 256)

	fmt.Println("\n-- oversubscribed (64 MB GPU, 96 MB graph): the §5.3 pathology --")
	runCase("demand, oversubscribed", false, 64)
	runCase("prefetch, oversubscribed", true, 64)

	fmt.Println("\nIrregular access + oversubscription is where prefetching hurts:")
	fmt.Println("64 KB regions prefetched around single-page hops must be evicted")
	fmt.Println("again, paying migration twice — the paper's §5.3 interplay and the")
	fmt.Println("reason graph codes drove so much UVM-optimization work.")
}
