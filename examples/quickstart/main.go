// Quickstart: run one workload under simulated UVM demand paging and read
// the batch telemetry — the minimal use of the guvm public API.
package main

import (
	"fmt"
	"log"

	"guvm"
	"guvm/internal/workloads"
)

func main() {
	// A Titan-V-like GPU with a scaled 256 MB capacity (see DESIGN.md).
	cfg := guvm.DefaultConfig()

	// The BabelStream triad over three 32 MB arrays, host-initialized —
	// the canonical memory-bound UVM workload.
	w := workloads.NewStream(32<<20, 24)

	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:   %s\n", res.Workload)
	fmt.Printf("kernel:     %.2f ms of virtual time\n", res.KernelTime.Millis())
	fmt.Printf("batches:    %d fault batches, %.2f ms total\n",
		len(res.Batches), res.BatchTime().Millis())
	fmt.Printf("migrated:   %.1f MiB over the interconnect\n",
		float64(res.BytesMigrated())/(1<<20))
	fmt.Printf("prefetched: %d pages by the density prefetcher\n",
		res.DriverStats.PrefetchedPages)

	// Per-batch records carry the paper's instrumented timers: here,
	// how much of each batch went to the host OS vs the copy engines.
	var unmap, transfer, total float64
	for _, b := range res.Batches {
		unmap += float64(b.TUnmap)
		transfer += float64(b.TTransfer)
		total += float64(b.Duration())
	}
	fmt.Printf("cost split: %.0f%% CPU unmapping, %.0f%% data transfer, %.0f%% other driver work\n",
		100*unmap/total, 100*transfer/total, 100*(total-unmap-transfer)/total)
}
