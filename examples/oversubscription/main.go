// Oversubscription: run the same stencil workload at increasing ratios of
// working set to GPU memory and watch eviction take over the batch
// profile — the §5.1 phenomenon, including the Figure 13 cost levels.
package main

import (
	"fmt"
	"log"

	"guvm"
	"guvm/internal/stats"
	"guvm/internal/workloads"
)

func main() {
	// Grid: 3072^2 floats = 36 MB.
	const gridN = 3072
	w := func() *workloads.GaussSeidel { return workloads.NewGaussSeidel(gridN, 3) }
	gridMB := w().GridBytes() >> 20

	fmt.Println("capacity  ratio  batches  evictions  kernel_ms  mean_evict_batch_us  mean_plain_batch_us")
	for _, capMB := range []uint64{64, 40, 32, 24} {
		cfg := guvm.DefaultConfig()
		cfg.Driver.GPUMemBytes = capMB << 20
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(w())
		if err != nil {
			log.Fatal(err)
		}
		var evicting, plain []float64
		for _, b := range res.Batches {
			if b.Evictions > 0 {
				evicting = append(evicting, b.Duration().Micros())
			} else {
				plain = append(plain, b.Duration().Micros())
			}
		}
		fmt.Printf("%5dMB  %4.0f%%  %7d  %9d  %9.1f  %19.1f  %19.1f\n",
			capMB, 100*float64(gridMB)/float64(capMB), len(res.Batches),
			res.DriverStats.Evictions, res.KernelTime.Millis(),
			stats.Mean(evicting), stats.Mean(plain))
	}
	fmt.Println("\nEviction batches pay allocation failure + writeback + restart;")
	fmt.Println("blocks evicted once and re-fetched skip the CPU unmap cost (Fig 13).")
}
