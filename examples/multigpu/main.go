// Multi-GPU: several devices share the one host fault-servicing driver
// (the paper's client-server architecture). Fault-bound workloads on every
// GPU queue behind each other at the host — per-device performance decays
// as devices are added, even though each GPU has its own memory and link.
package main

import (
	"fmt"
	"log"

	"guvm"
	"guvm/internal/workloads"
)

func main() {
	mk := func() workloads.Workload {
		s := workloads.NewStream(16<<20, 24)
		s.ComputePerChunk = 0 // fault-bound
		return s
	}

	fmt.Println("devices  per-dev_kernel_ms  slowdown  queue_waits  total_queue_ms")
	var solo float64
	for _, n := range []int{1, 2, 3, 4} {
		m, err := guvm.NewMultiSimulator(guvm.DefaultConfig(), n)
		if err != nil {
			log.Fatal(err)
		}
		ws := make([]workloads.Workload, n)
		for i := range ws {
			ws[i] = mk()
		}
		results, err := m.RunConcurrent(ws)
		if err != nil {
			log.Fatal(err)
		}
		var kernel float64
		for _, r := range results {
			kernel += r.KernelTime.Millis()
		}
		kernel /= float64(n)
		if n == 1 {
			solo = kernel
		}
		st := m.Arbiter.Stats()
		fmt.Printf("%7d  %17.1f  %7.2fx  %11d  %14.1f\n",
			n, kernel, kernel/solo, st.Queued, st.TotalWait.Millis())
	}
	fmt.Println("\nThe host driver is serial (§6); every added GPU queues its batches")
	fmt.Println("behind the others'. Combine with -workers (see abl-parallel) to")
	fmt.Println("explore how much driver parallelism recovers.")
}
