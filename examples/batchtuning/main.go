// Batch tuning: sweep the driver's fault batch size limit (UVM defaults to
// 256) and the prefetch threshold on a fault-heavy GEMM — the §4.2 / §5.2
// policy knobs a driver engineer would actually turn.
package main

import (
	"fmt"
	"log"

	"guvm"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

func gemm() *workloads.GEMM {
	w := workloads.NewSGEMM(2048)
	w.Tile = 512
	w.ChunkPages = 32
	w.ComputePerChunk = 10 * sim.Microsecond
	return w
}

func main() {
	fmt.Println("-- fault batch size sweep (prefetch off) --")
	fmt.Println("batch_size  batches  kernel_ms  dups_per_batch")
	for _, bs := range []int{64, 128, 256, 512, 1024, 2048} {
		cfg := guvm.DefaultConfig()
		cfg.Driver.PrefetchEnabled = false
		cfg.Driver.Upgrade64K = false
		cfg.Driver.BatchSize = bs
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(gemm())
		if err != nil {
			log.Fatal(err)
		}
		dups := 0
		for _, b := range res.Batches {
			dups += b.DupFaults()
		}
		fmt.Printf("%10d  %7d  %9.1f  %14.1f\n",
			bs, len(res.Batches), res.KernelTime.Millis(),
			float64(dups)/float64(len(res.Batches)))
	}

	fmt.Println("\n-- prefetch threshold sweep (density prefetcher) --")
	fmt.Println("threshold  batches  kernel_ms  prefetched_pages")
	for _, th := range []float64{0.25, 0.51, 0.75, 1.0} {
		cfg := guvm.DefaultConfig()
		cfg.Driver.PrefetchThreshold = th
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(gemm())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.2f  %7d  %9.1f  %16d\n",
			th, len(res.Batches), res.KernelTime.Millis(),
			res.DriverStats.PrefetchedPages)
	}
}
