package guvm

import (
	"errors"
	"testing"
	"testing/quick"

	"guvm/internal/audit"
	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

// fuzzWorkload builds a random but deterministic workload from fuzz bytes:
// a mix of reads, writes, prefetches and computes over a few allocations.
type fuzzWorkload struct {
	seed   uint64
	blocks int
	ops    int
}

func (f *fuzzWorkload) Name() string { return "fuzz" }

func (f *fuzzWorkload) Allocs() []workloads.Alloc {
	return []workloads.Alloc{
		{Name: "a", Bytes: 8 << 20, HostInit: true, HostThreads: 3},
		{Name: "b", Bytes: 4 << 20},
	}
}

func (f *fuzzWorkload) Phases(bases []mem.Addr) []workloads.Phase {
	totalA := mem.PageID((8 << 20) / mem.PageSize)
	totalB := mem.PageID((4 << 20) / mem.PageSize)
	seed := f.seed
	kernel := gpu.Kernel{
		NumBlocks: f.blocks,
		BlockProgram: func(blk int) []gpu.Program {
			rng := sim.NewRNG(seed + uint64(blk)*131)
			var prog gpu.Program
			for i := 0; i < f.ops; i++ {
				base, total := mem.PageOf(bases[0]), totalA
				if rng.Intn(3) == 0 {
					base, total = mem.PageOf(bases[1]), totalB
				}
				first := base + mem.PageID(rng.Uint64n(uint64(total)))
				n := rng.Intn(8) + 1
				if first+mem.PageID(n) > base+total {
					n = int(base + total - first)
				}
				pages := gpu.PageRange(first, n)
				switch rng.Intn(4) {
				case 0:
					prog = append(prog, gpu.Read(rng.Intn(3), pages...))
				case 1:
					prog = append(prog, gpu.Write(nil, pages...))
				case 2:
					prog = append(prog, gpu.Prefetch(pages...))
				case 3:
					prog = append(prog, gpu.Compute(sim.Time(rng.Intn(2000)), rng.Intn(3)))
				}
			}
			return []gpu.Program{prog}
		},
	}
	return []workloads.Phase{{Name: "fuzz", Kernel: kernel}}
}

// fuzzConfig is the shared profile for the invariant fuzzers: a small GPU
// so a few VABlocks of data already exercise eviction, with the auditor
// checking every batch.
func fuzzConfig(oversub, prefetch bool) SystemConfig {
	cfg := DefaultConfig()
	cfg.GPU.NumSMs = 4
	cfg.Driver.PrefetchEnabled = prefetch
	cfg.Driver.Upgrade64K = prefetch
	if oversub {
		cfg.Driver.GPUMemBytes = 4 << 20 // 2 chunks vs 12 MB of data
	} else {
		cfg.Driver.GPUMemBytes = 64 << 20
	}
	cfg.Audit.Enabled = true
	cfg.Audit.Interval = 1
	return cfg
}

// runInvariantChecked executes one fuzz workload with the auditor on and
// reports any failure — simulation error, audit violation, or an audit
// that silently observed nothing.
func runInvariantChecked(cfg SystemConfig, w workloads.Workload) error {
	s, err := NewSimulator(cfg)
	if err != nil {
		return err
	}
	res, err := s.Run(w)
	if err != nil {
		return err
	}
	if res.Audit == nil {
		return errors.New("audit enabled but no report attached")
	}
	if res.Audit.BatchesAudited != len(res.Batches) {
		return errors.New("auditor missed batch boundaries")
	}
	if len(res.Batches) > 0 && res.Audit.ChecksRun == 0 {
		return errors.New("auditor ran no checks")
	}
	return nil
}

// TestSystemInvariantsUnderRandomWorkloads drives random op mixes through
// the full stack — including oversubscription — with the runtime auditor
// checking every invariant at every batch boundary. The invariant
// catalogue itself lives in internal/audit; this test's job is to hit it
// with adversarial workloads.
func TestSystemInvariantsUnderRandomWorkloads(t *testing.T) {
	check := func(seed uint64, oversub, prefetch bool) bool {
		cfg := fuzzConfig(oversub, prefetch)
		w := &fuzzWorkload{seed: seed, blocks: 4, ops: 30}
		if err := runInvariantChecked(cfg, w); err != nil {
			t.Logf("seed %d oversub=%v prefetch=%v: %v", seed, oversub, prefetch, err)
			return false
		}
		return true
	}
	f := func(seed uint16, oversub, prefetch bool) bool {
		return check(uint64(seed), oversub, prefetch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOversubscribedFuzzCompletes pins a few known-hard seeds at heavy
// oversubscription with prefetch on (the most entangled configuration).
func TestOversubscribedFuzzCompletes(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		cfg := fuzzConfig(true, true)
		w := &fuzzWorkload{seed: seed, blocks: 6, ops: 40}
		if err := runInvariantChecked(cfg, w); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// FuzzSystemInvariants is the coverage-guided variant: the fuzzer mutates
// the workload seed, shape and configuration bits, and the auditor decides
// whether the resulting run obeyed every system invariant. Any
// ViolationError (or crash) is a finding.
func FuzzSystemInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(30), false, false)
	f.Add(uint64(7), uint8(4), uint8(30), false, true)
	f.Add(uint64(42), uint8(6), uint8(40), true, true)
	f.Add(uint64(1234), uint8(6), uint8(40), true, false)
	f.Add(uint64(99999), uint8(2), uint8(10), true, true)
	f.Fuzz(func(t *testing.T, seed uint64, blocks, ops uint8, oversub, prefetch bool) {
		// Clamp the shape so a single input stays sub-second.
		nb := int(blocks)%8 + 1
		no := int(ops)%48 + 1
		cfg := fuzzConfig(oversub, prefetch)
		w := &fuzzWorkload{seed: seed, blocks: nb, ops: no}
		if err := runInvariantChecked(cfg, w); err != nil {
			if errors.Is(err, audit.ErrViolation) {
				t.Fatalf("invariant violated: %v", err)
			}
			t.Fatalf("run failed: %v", err)
		}
	})
}
