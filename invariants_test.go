package guvm

import (
	"testing"
	"testing/quick"

	"guvm/internal/gpu"
	"guvm/internal/mem"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

// fuzzWorkload builds a random but deterministic workload from fuzz bytes:
// a mix of reads, writes, prefetches and computes over a few allocations.
type fuzzWorkload struct {
	seed   uint64
	blocks int
	ops    int
}

func (f *fuzzWorkload) Name() string { return "fuzz" }

func (f *fuzzWorkload) Allocs() []workloads.Alloc {
	return []workloads.Alloc{
		{Name: "a", Bytes: 8 << 20, HostInit: true, HostThreads: 3},
		{Name: "b", Bytes: 4 << 20},
	}
}

func (f *fuzzWorkload) Phases(bases []mem.Addr) []workloads.Phase {
	totalA := mem.PageID((8 << 20) / mem.PageSize)
	totalB := mem.PageID((4 << 20) / mem.PageSize)
	seed := f.seed
	kernel := gpu.Kernel{
		NumBlocks: f.blocks,
		BlockProgram: func(blk int) []gpu.Program {
			rng := sim.NewRNG(seed + uint64(blk)*131)
			var prog gpu.Program
			for i := 0; i < f.ops; i++ {
				base, total := mem.PageOf(bases[0]), totalA
				if rng.Intn(3) == 0 {
					base, total = mem.PageOf(bases[1]), totalB
				}
				first := base + mem.PageID(rng.Uint64n(uint64(total)))
				n := rng.Intn(8) + 1
				if first+mem.PageID(n) > base+total {
					n = int(base + total - first)
				}
				pages := gpu.PageRange(first, n)
				switch rng.Intn(4) {
				case 0:
					prog = append(prog, gpu.Read(rng.Intn(3), pages...))
				case 1:
					prog = append(prog, gpu.Write(nil, pages...))
				case 2:
					prog = append(prog, gpu.Prefetch(pages...))
				case 3:
					prog = append(prog, gpu.Compute(sim.Time(rng.Intn(2000)), rng.Intn(3)))
				}
			}
			return []gpu.Program{prog}
		},
	}
	return []workloads.Phase{{Name: "fuzz", Kernel: kernel}}
}

// TestSystemInvariantsUnderRandomWorkloads drives random op mixes through
// the full stack — including oversubscription — and checks the global
// invariants that define a correct UVM implementation.
func TestSystemInvariantsUnderRandomWorkloads(t *testing.T) {
	check := func(seed uint64, oversub, prefetch bool) bool {
		cfg := DefaultConfig()
		cfg.GPU.NumSMs = 4
		cfg.Driver.PrefetchEnabled = prefetch
		cfg.Driver.Upgrade64K = prefetch
		if oversub {
			cfg.Driver.GPUMemBytes = 4 << 20 // 2 chunks vs 12 MB of data
		} else {
			cfg.Driver.GPUMemBytes = 64 << 20
		}
		w := &fuzzWorkload{seed: seed, blocks: 4, ops: 30}
		s, err := NewSimulator(cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		res, err := s.Run(w)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}

		// Invariant 1: the kernel completed (Run returned) and time
		// advanced.
		if res.TotalTime <= 0 {
			t.Logf("seed %d: no time advanced", seed)
			return false
		}
		// Invariant 2: capacity was never exceeded.
		capBlocks := int(cfg.Driver.GPUMemBytes / mem.VABlockSize)
		if res.DriverStats.Evictions == 0 && oversub {
			// Possible only if the random ops stayed within capacity —
			// acceptable, not a failure.
			_ = capBlocks
		}
		// Invariant 3: batch records are monotone, with consistent
		// accounting.
		var prevStart sim.Time
		for _, b := range res.Batches {
			if b.Start < prevStart || b.End < b.Start {
				t.Logf("seed %d: batch %d interval wrong", seed, b.ID)
				return false
			}
			prevStart = b.Start
			if b.UniquePages+b.DupFaults() != b.RawFaults {
				t.Logf("seed %d: batch %d fault accounting wrong", seed, b.ID)
				return false
			}
			if b.PagesMigrated < 0 || b.BytesMigrated != uint64(b.PagesMigrated)*mem.PageSize {
				t.Logf("seed %d: batch %d migration accounting wrong", seed, b.ID)
				return false
			}
		}
		// Invariant 4: migrated >= unique non-stale pages serviced (no
		// faulted page left unserviced).
		if res.DriverStats.MigratedPages == 0 && res.DriverStats.TotalFaults > res.DriverStats.StaleFaults {
			t.Logf("seed %d: faults without migration", seed)
			return false
		}
		// Invariant 5: link accounting matches batch totals plus
		// eviction writebacks.
		var batchBytes uint64
		for _, b := range res.Batches {
			batchBytes += b.BytesMigrated
		}
		if res.LinkStats.BytesToGPU != batchBytes {
			t.Logf("seed %d: link %d != batches %d", seed, res.LinkStats.BytesToGPU, batchBytes)
			return false
		}
		return true
	}
	f := func(seed uint16, oversub, prefetch bool) bool {
		return check(uint64(seed), oversub, prefetch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOversubscribedFuzzCompletes pins a few known-hard seeds at heavy
// oversubscription with prefetch on (the most entangled configuration).
func TestOversubscribedFuzzCompletes(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234, 99999} {
		cfg := DefaultConfig()
		cfg.GPU.NumSMs = 4
		cfg.Driver.GPUMemBytes = 4 << 20
		w := &fuzzWorkload{seed: seed, blocks: 6, ops: 40}
		s, err := NewSimulator(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := s.Run(w)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.DriverStats.Evictions == 0 {
			t.Logf("seed %d: no evictions (small footprint roll)", seed)
		}
	}
}
