// Package guvm is a discrete-event simulation of the NVIDIA Unified
// Virtual Memory (UVM) system, reproducing the system under study in
// Allen & Ge, "In-Depth Analyses of Unified Virtual Memory System for GPU
// Accelerated Computing" (SC '21). It models the full fault path: GPU
// fault generation (SMs, µTLBs, throttling, the fault buffer), the UVM
// driver (fault batching, VABlock servicing, duplicate handling, density
// prefetching, LRU eviction), the host OS costs on the fault path
// (unmap_mapping_range, page population, radix-tree DMA bookkeeping), and
// the PCIe interconnect.
//
// Quick start:
//
//	sim, err := guvm.NewSimulator(guvm.DefaultConfig())
//	res, err := sim.Run(workloads.NewStream(64<<20, 128))
//	// res.Batches holds per-batch telemetry; res.KernelTime the GPU time.
//
// One Simulator runs one workload; create a fresh Simulator per run.
package guvm

import (
	"errors"
	"fmt"

	"guvm/internal/audit"
	"guvm/internal/faultinject"
	"guvm/internal/gpu"
	"guvm/internal/hostos"
	"guvm/internal/interconnect"
	"guvm/internal/mem"
	"guvm/internal/obs"
	"guvm/internal/sim"
	"guvm/internal/trace"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// ErrStalled is the sentinel for a run that drained its event queue with
// the kernel still incomplete: some fault was lost and never recovered
// (reachable only under fault injection, e.g. dropped fault records whose
// re-emission budget ran out with no later replay to re-fault them).
var ErrStalled = errors.New("guvm: simulation stalled")

// ErrSimulatorReused is the sentinel matched by errors.Is when a
// single-shot Simulator or MultiSimulator is run a second time.
var ErrSimulatorReused = errors.New("guvm: simulator is single-shot; create a new one per run")

// SystemConfig assembles the configuration of every modeled component.
type SystemConfig struct {
	GPU    gpu.Config
	Driver uvm.Config
	Host   hostos.CostModel
	Link   interconnect.Config
	// MaxEvents bounds the simulation as a livelock backstop.
	MaxEvents uint64
	// MaxStallEvents aborts the run once this many consecutive events
	// execute without the virtual clock advancing — a no-progress
	// watchdog that catches zero-delay scheduling loops long before
	// MaxEvents would. Zero disables it.
	MaxStallEvents uint64
	// Inject configures the deterministic fault-injection layer. The
	// zero value (all rates zero) disables injection and leaves every
	// simulation output bit-identical to an injector-free run.
	Inject faultinject.Config
	// HW configures the hardware fault domain: link degradation and
	// flapping, and scheduled device death. The zero value disables the
	// domain entirely and leaves every simulation output bit-identical
	// to a domain-free run.
	HW faultinject.HardwareConfig
	// KeepFaults retains every fetched fault record in the result
	// (needed by fault-timeline experiments; memory-heavy).
	KeepFaults bool
	// KeepSpans retains per-batch serviced page spans.
	KeepSpans bool
	// Audit configures the runtime invariant auditor. The zero value
	// attaches no auditor and leaves the run unobserved.
	Audit audit.Config
	// Obs configures the observability layer (span tracing, metrics
	// sampling). The zero value attaches nothing: no observer hooks, no
	// instrumentation, zero cost on the fault-service path.
	Obs obs.Config
	// Policies selects the driver's eviction/prefetch/batch-sizing
	// policies and its architecture (the stage graph itself) by registry
	// name (see uvm.Policies for the catalog), overriding the
	// corresponding Driver knobs. Empty fields leave the knobs untouched;
	// an unregistered name makes NewSimulator return an error wrapping
	// uvm.ErrUnknownPolicy.
	Policies uvm.PolicySelection
}

// DefaultConfig returns the experiment-scale profile: a Titan-V-like GPU
// with a scaled 256 MB memory capacity so oversubscription studies run in
// seconds (see DESIGN.md §1 on scaling).
func DefaultConfig() SystemConfig {
	return SystemConfig{
		GPU:            gpu.DefaultTitanV(),
		Driver:         uvm.DefaultConfig(),
		Host:           hostos.DefaultCostModel(),
		Link:           interconnect.DefaultPCIe3x16(),
		MaxEvents:      500_000_000,
		MaxStallEvents: 2_000_000,
		Inject:         faultinject.DefaultConfig(),
		HW:             faultinject.DefaultHardwareConfig(),
	}
}

// TitanVConfig returns the full paper-testbed profile with 12 GB of GPU
// memory. Workload footprints must be scaled up accordingly.
func TitanVConfig() SystemConfig {
	c := DefaultConfig()
	c.Driver.GPUMemBytes = 12 << 30
	return c
}

// Result is the outcome of one workload run.
type Result struct {
	Workload string
	// KernelTime is the summed duration of all GPU phases (the "Kernel"
	// column of Table 4).
	KernelTime sim.Time
	// TotalTime is the end-to-end virtual time including host phases
	// and trailing driver work.
	TotalTime sim.Time
	// Batches is the per-batch telemetry (aliases the collector's
	// records).
	Batches []trace.BatchRecord
	// Faults holds every fetched fault when KeepFaults was set, with
	// FaultBatch mapping each to its batch ID.
	Faults     []gpu.Fault
	FaultBatch []int
	// Bases are the allocation base addresses, in workload Allocs order.
	Bases []mem.Addr

	DriverStats uvm.Stats
	DeviceStats gpu.Stats
	HostStats   hostos.Stats
	LinkStats   interconnect.Stats
	// InjectStats holds the per-category injected/retried/recovered/
	// unrecovered counters (all zero when injection is disabled).
	InjectStats faultinject.Stats
	// HWStats holds the hardware fault-domain counters (all zero when
	// the domain is disabled).
	HWStats faultinject.HardwareStats
	// DeviceFailed reports that the hardware fault domain killed the
	// device mid-run; the driver re-homed every resident page to the
	// host (DriverStats.RehomedPages) and the workload was truncated.
	DeviceFailed bool
	// Audit is the invariant auditor's report (nil unless
	// SystemConfig.Audit is active).
	Audit *audit.Report
}

// BatchTime sums all batch durations.
func (r *Result) BatchTime() sim.Time {
	var t sim.Time
	for i := range r.Batches {
		t += r.Batches[i].Duration()
	}
	return t
}

// BytesMigrated sums to-GPU migration volume.
func (r *Result) BytesMigrated() uint64 {
	var n uint64
	for i := range r.Batches {
		n += r.Batches[i].BytesMigrated
	}
	return n
}

// Simulator wires one GPU, one driver, the host OS and the link onto a
// shared discrete-event engine.
type Simulator struct {
	Config   SystemConfig
	Engine   *sim.Engine
	Device   *gpu.Device
	Driver   *uvm.Driver
	HostVM   *hostos.VM
	Injector *faultinject.Injector
	// HW is the hardware fault-domain injector (nil unless
	// SystemConfig.HW enables a fault regime).
	HW      *faultinject.HardwareInjector
	Auditor *audit.Auditor
	// Obs is the attached observer (nil unless SystemConfig.Obs is
	// active). A nil observer is safe to call everywhere.
	Obs *obs.Observer

	used bool
}

// NewSimulator builds a simulator. An invalid component or injection
// configuration is an error.
func NewSimulator(cfg SystemConfig) (*Simulator, error) {
	if err := cfg.Policies.Apply(&cfg.Driver); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	eng.MaxEvents = cfg.MaxEvents
	eng.MaxStallEvents = cfg.MaxStallEvents
	vm := hostos.NewVM(cfg.Host)
	link := interconnect.NewLink(cfg.Link)
	drv, err := uvm.NewDriver(cfg.Driver, eng, vm, link)
	if err != nil {
		return nil, err
	}
	drv.Collector.KeepFaults = cfg.KeepFaults
	drv.Collector.KeepSpans = cfg.KeepSpans
	dev, err := gpu.NewDevice(cfg.GPU, eng, drv)
	if err != nil {
		return nil, err
	}
	drv.Attach(dev)
	inj, err := faultinject.New(cfg.Inject)
	if err != nil {
		return nil, err
	}
	drv.SetInjector(inj)
	dev.SetInjector(inj)
	s := &Simulator{
		Config:   cfg,
		Engine:   eng,
		Device:   dev,
		Driver:   drv,
		HostVM:   vm,
		Injector: inj,
	}
	if cfg.HW.Enabled() {
		hw, err := faultinject.NewHardware(cfg.HW)
		if err != nil {
			return nil, err
		}
		if cfg.HW.KillBatch > 0 && cfg.HW.KillDevice != 0 {
			return nil, fmt.Errorf("guvm: HW.KillDevice = %d, single-GPU system has only device 0",
				cfg.HW.KillDevice)
		}
		s.HW = hw
		link.SetHardware(hw, 0, eng.Now)
		drv.SetHardware(hw)
	}
	if cfg.Audit.Active() {
		s.Auditor = audit.New(cfg.Audit, audit.Options{}, eng, drv, dev, vm, inj)
		s.Auditor.SetHardware(s.HW)
		s.Auditor.Attach()
	}
	if s.HW != nil && cfg.HW.KillBatch > 0 {
		// Device-death schedule: after the configured batch completes
		// (observers run with the service slot released), kill the
		// device, re-home its pages, then declare the link dead. The
		// drain cost is scheduled so total time covers the recovery.
		kill := cfg.HW.KillBatch
		drv.AddBatchObserver(func(id int, _ *trace.BatchRecord) {
			if id+1 != kill {
				return
			}
			dev.Kill()
			rep := drv.RehomeToHost()
			s.HW.NoteDeviceKilled()
			drv.Link().Kill()
			eng.Schedule(rep.Cost, func() {})
		})
	}
	if cfg.Obs.Active() {
		s.Obs = obs.New(cfg.Obs)
		// The driver's effective costs can differ from cfg.Driver (the
		// selected architecture may rewrite its cost model).
		s.Obs.SetBatchSetupCost(drv.Config().Costs.BatchSetup)
		s.registerMetrics()
		if s.Obs.Profiler != nil {
			// The profiler hooks run inside the pipeline, before the
			// batch observers — its metrics are current when OnBatch
			// samples the registry. Its per-step attribution follows the
			// architecture's declared block-step label contract.
			s.Obs.Profiler.SetBlockStepLabels(drv.Architecture().BlockSteps)
			drv.SetProfiler(s.Obs.Profiler)
		}
		drv.AddBatchObserver(s.Obs.OnBatch)
		if cfg.Obs.Trace && cfg.Obs.EngineEvents {
			eng.OnEvent = s.Obs.NoteEvent
		}
	}
	return s, nil
}

// registerMetrics exposes every subsystem's counters as pull gauges over
// the live component state. The functions run only at sample points on the
// simulation goroutine (Stats() returns copies), so registration adds no
// instrumentation to the fault-service hot path.
func (s *Simulator) registerMetrics() {
	r := s.Obs.Registry
	r.Func("guvm_sim_time_ns", "Current virtual time in nanoseconds",
		func() float64 { return float64(s.Engine.Now()) })
	r.Func("guvm_engine_events_total", "Events dispatched by the simulation engine",
		func() float64 { return float64(s.Engine.Executed()) })

	r.Func("guvm_driver_batches_total", "Fault batches serviced",
		func() float64 { return float64(s.Driver.Stats().Batches) })
	r.Func("guvm_driver_faults_total", "Fault records fetched across batches",
		func() float64 { return float64(s.Driver.Stats().TotalFaults) })
	r.Func("guvm_driver_stale_faults_total", "Fetched faults already resident (stale duplicates)",
		func() float64 { return float64(s.Driver.Stats().StaleFaults) })
	r.Func("guvm_driver_evictions_total", "VABlock evictions under memory pressure",
		func() float64 { return float64(s.Driver.Stats().Evictions) })
	r.Func("guvm_driver_prefetched_pages_total", "Pages migrated by density prefetching",
		func() float64 { return float64(s.Driver.Stats().PrefetchedPages) })
	r.Func("guvm_driver_migrated_pages_total", "Pages migrated to the GPU on the fault path",
		func() float64 { return float64(s.Driver.Stats().MigratedPages) })
	r.Func("guvm_driver_wakeups_total", "Driver wakeups from fault-buffer interrupts",
		func() float64 { return float64(s.Driver.Stats().WakeUps) })
	r.Func("guvm_driver_batch_shrinks_total", "Effective-batch halvings under host allocation pressure",
		func() float64 { return float64(s.Driver.Stats().BatchShrinks) })

	r.Func("guvm_gpu_faults_emitted_total", "Fault records written to the fault buffer",
		func() float64 { return float64(s.Device.Stats().FaultsEmitted) })
	r.Func("guvm_gpu_dup_faults_total", "Fault records emitted while the page was already pending",
		func() float64 { return float64(s.Device.Stats().DupFaults) })
	r.Func("guvm_gpu_refaults_total", "Accesses re-faulted after an unserviced replay",
		func() float64 { return float64(s.Device.Stats().Refaults) })
	r.Func("guvm_gpu_throttle_stalls_total", "Issue attempts delayed by the SM rate throttle",
		func() float64 { return float64(s.Device.Stats().ThrottleStalls) })
	r.Func("guvm_gpu_utlb_full_stalls_total", "Warp stalls on µTLB capacity",
		func() float64 { return float64(s.Device.Stats().UTLBFullStalls) })
	r.Func("guvm_gpu_blocks_completed_total", "Thread blocks retired",
		func() float64 { return float64(s.Device.Stats().BlocksCompleted) })

	r.Func("guvm_host_unmap_calls_total", "unmap_mapping_range invocations",
		func() float64 { return float64(s.HostVM.Stats().UnmapCalls) })
	r.Func("guvm_host_pages_unmapped_total", "CPU PTEs torn down",
		func() float64 { return float64(s.HostVM.Stats().PagesUnmapped) })
	r.Func("guvm_host_pages_populated_total", "Host pages populated on the fault path",
		func() float64 { return float64(s.HostVM.Stats().PagesPopulated) })
	r.Func("guvm_host_dma_pages_mapped_total", "Reverse-DMA pages tracked in the radix tree",
		func() float64 { return float64(s.HostVM.Stats().DMAPagesMapped) })
	r.Func("guvm_host_radix_nodes", "Radix-tree nodes currently allocated",
		func() float64 { return float64(s.HostVM.Stats().RadixNodes) })

	r.Func("guvm_link_ops_total", "Interconnect transfer operations",
		func() float64 { return float64(s.Driver.Link().Stats().Ops) })
	r.Func("guvm_link_bytes_to_gpu_total", "Bytes moved host-to-GPU",
		func() float64 { return float64(s.Driver.Link().Stats().BytesToGPU) })
	r.Func("guvm_link_bytes_to_host_total", "Bytes moved GPU-to-host",
		func() float64 { return float64(s.Driver.Link().Stats().BytesToHost) })

	if s.HW != nil {
		r.Func("guvm_hw_link_health", "Current link health (0 healthy, 1 degraded, 2 flapping, 3 dead)",
			func() float64 { return float64(s.Driver.Link().Health()) })
		r.Func("guvm_hw_degraded_epochs_total", "Link-health epochs drawn degraded so far",
			func() float64 {
				_, deg, _ := s.HW.EpochHealthCounts(0, s.Engine.Now())
				return float64(deg)
			})
		r.Func("guvm_hw_flapping_epochs_total", "Link-health epochs drawn flapping so far",
			func() float64 {
				_, _, flap := s.HW.EpochHealthCounts(0, s.Engine.Now())
				return float64(flap)
			})
		r.Func("guvm_hw_link_retries_total", "Transfer operations re-carried after injected drops",
			func() float64 { return float64(s.Driver.Stats().HWLinkRetries) })
		r.Func("guvm_hw_degraded_shrinks_total", "Batch halvings by the degraded-aware sizer",
			func() float64 { return float64(s.Driver.Stats().DegradedShrinks) })
		r.Func("guvm_hw_rehomed_pages_total", "Pages re-homed to the host after device death",
			func() float64 { return float64(s.Driver.Stats().RehomedPages) })
		r.Func("guvm_hw_devices_killed_total", "Devices killed by the fault schedule",
			func() float64 { return float64(s.HW.Stats().DevicesKilled) })
		r.Func("guvm_hw_transfer_injected_total", "Injected link-transfer drops",
			func() float64 { return float64(s.HW.Stats().LinkTransfer.Injected) })
		r.Func("guvm_hw_transfer_recovered_total", "Transfers recovered after injected drops",
			func() float64 { return float64(s.HW.Stats().LinkTransfer.Recovered) })
		r.Func("guvm_hw_transfer_unrecovered_total", "Transfers that exhausted their retry budget",
			func() float64 { return float64(s.HW.Stats().LinkTransfer.Unrecovered) })
	}

	for _, cat := range []struct {
		name string
		get  func() faultinject.Counters
	}{
		{"buffer_drop", func() faultinject.Counters { return s.Injector.Stats().BufferDrop }},
		{"migrate", func() faultinject.Counters { return s.Injector.Stats().Migrate }},
		{"host_alloc", func() faultinject.Counters { return s.Injector.Stats().HostAlloc }},
	} {
		c := cat
		r.Func("guvm_inject_"+c.name+"_injected_total", "Faults injected in category "+c.name,
			func() float64 { return float64(c.get().Injected) })
		r.Func("guvm_inject_"+c.name+"_retried_total", "Retries after injection in category "+c.name,
			func() float64 { return float64(c.get().Retried) })
		r.Func("guvm_inject_"+c.name+"_recovered_total", "Operations recovered after injection in category "+c.name,
			func() float64 { return float64(c.get().Recovered) })
		r.Func("guvm_inject_"+c.name+"_unrecovered_total", "Operations that exhausted retries in category "+c.name,
			func() float64 { return float64(c.get().Unrecovered) })
	}
}

// Run executes the workload under UVM demand paging and returns its
// telemetry. A Simulator is single-shot: a second Run returns an error.
func (s *Simulator) Run(w workloads.Workload) (*Result, error) {
	return s.run(w, false)
}

// RunExplicit executes the workload under explicit (cudaMemcpy-style)
// management: every allocation is bulk-copied to the GPU before the first
// kernel, so no faults occur. This is the Figure 1 baseline.
func (s *Simulator) RunExplicit(w workloads.Workload) (*Result, error) {
	return s.run(w, true)
}

func (s *Simulator) run(w workloads.Workload, explicit bool) (*Result, error) {
	if s.used {
		return nil, fmt.Errorf("guvm: Simulator already ran: %w", ErrSimulatorReused)
	}
	s.used = true

	allocs := w.Allocs()
	bases := make([]mem.Addr, len(allocs))
	var totalBytes uint64
	for i, a := range allocs {
		if a.Bytes == 0 {
			return nil, fmt.Errorf("guvm: workload %q allocation %d is empty", w.Name(), i)
		}
		var opts []uvm.AllocOption
		if a.HostInit && !explicit {
			opts = append(opts, uvm.WithHostInit(a.HostThreads))
		}
		bases[i] = s.Driver.Alloc(a.Bytes, opts...)
		totalBytes += a.Bytes
	}
	if explicit && totalBytes > s.Config.Driver.GPUMemBytes {
		return nil, fmt.Errorf("guvm: explicit management cannot oversubscribe: need %d bytes, capacity %d",
			totalBytes, s.Config.Driver.GPUMemBytes)
	}

	phases := w.Phases(bases)
	var kernelTime sim.Time
	var runErr error

	if s.Obs != nil {
		name := w.Name()
		s.Obs.SetStatusFunc(func() any {
			return map[string]any{
				"workload":    name,
				"sim_time_ns": int64(s.Engine.Now()),
				"batches":     s.Driver.Stats().Batches,
				"faults":      s.Driver.Stats().TotalFaults,
				"events":      s.Engine.Executed(),
			}
		})
	}

	var runPhase func(i int)
	runPhase = func(i int) {
		if i >= len(phases) {
			return
		}
		ph := phases[i]
		for _, ht := range ph.HostTouches {
			if !explicit {
				s.Driver.TouchHost(ht.Base, ht.Bytes, ht.Threads)
			}
		}
		if ph.Kernel.NumBlocks == 0 {
			runPhase(i + 1)
			return
		}
		if s.Config.Driver.AsyncUnmap && !explicit {
			// §6 extension: unmap CPU mappings preemptively as the
			// application shifts to GPU compute, overlapping launch.
			s.Driver.PreUnmapAllocations()
		}
		start := s.Engine.Now()
		err := s.Device.LaunchKernel(ph.Kernel, func() {
			kernelTime += s.Engine.Now() - start
			s.Obs.OnKernel(i, start, s.Engine.Now()-start)
			runPhase(i + 1)
		})
		if err != nil {
			s.Engine.Fail(fmt.Errorf("guvm: phase %d: %w", i, err))
		}
	}

	s.Engine.Schedule(0, func() {
		if explicit {
			var copyCost sim.Time
			for i, a := range allocs {
				c, err := s.Driver.ExplicitCopyToGPU(bases[i], a.Bytes)
				if err != nil {
					s.Engine.Fail(fmt.Errorf("guvm: allocation %d: %w", i, err))
					return
				}
				copyCost += c
			}
			s.Engine.Schedule(copyCost, func() { runPhase(0) })
			return
		}
		runPhase(0)
	})

	var engErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("guvm: simulation panicked: %v", r)
			}
		}()
		_, engErr = s.Engine.Run()
	}()
	failure := runErr
	if failure == nil {
		failure = engErr
	}
	if failure == nil && s.Device.Running() {
		// The event queue drained with the kernel incomplete: a fault
		// was lost for good (injected drops past their retry budget with
		// no later replay). Surface a typed diagnostic, not a hang.
		failure = fmt.Errorf("guvm: kernel incomplete at virtual time %d ns with no pending events: %w",
			s.Engine.Now(), ErrStalled)
	}
	var auditRep *audit.Report
	if s.Auditor != nil {
		auditRep = s.Auditor.Finish(failure)
	}
	// Final publish so live endpoints and exports see end-of-run state
	// even when the run finished between sample points.
	s.Obs.Publish()
	if failure != nil {
		return nil, failure
	}

	col := s.Driver.Collector
	res := &Result{
		Workload:     w.Name(),
		KernelTime:   kernelTime,
		TotalTime:    s.Engine.Now(),
		Batches:      col.Batches,
		Faults:       col.Faults,
		FaultBatch:   col.FaultBatch,
		Bases:        bases,
		DriverStats:  s.Driver.Stats(),
		DeviceStats:  s.Device.Stats(),
		HostStats:    s.HostVM.Stats(),
		LinkStats:    s.Driver.Link().Stats(),
		InjectStats:  s.Injector.Stats(),
		HWStats:      s.HW.Stats(),
		DeviceFailed: s.Driver.Dead(),
		Audit:        auditRep,
	}
	if err := auditRep.Err(); err != nil {
		// End-of-run checks failed on an otherwise clean run: hand back
		// the telemetry (the report pinpoints the violation) plus the
		// typed error.
		return res, fmt.Errorf("guvm: run completed but failed its audit: %w", err)
	}
	return res, nil
}
