package guvm_test

import (
	"fmt"

	"guvm"
	"guvm/internal/workloads"
)

// Example runs the smallest possible simulation: the paper's Listing-1
// vector addition under demand paging, then prints the µTLB-limited first
// batch size the paper's Figure 3 shows.
func Example() {
	cfg := guvm.DefaultConfig()
	cfg.Driver.PrefetchEnabled = false
	cfg.Driver.Upgrade64K = false

	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	res, err := s.Run(workloads.NewVecAddPaper())
	if err != nil {
		panic(err)
	}
	fmt.Printf("first batch: %d faults\n", res.Batches[0].RawFaults)
	// Output:
	// first batch: 56 faults
}

// ExampleSimulator_RunExplicit contrasts UVM demand paging with explicit
// (cudaMemcpy-style) management on the same workload.
func ExampleSimulator_RunExplicit() {
	mk := func() workloads.Workload {
		s := workloads.NewStream(8<<20, 16)
		s.ComputePerChunk = 0
		return s
	}
	cfg := guvm.DefaultConfig()
	uvmSim, err := guvm.NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	uvmRes, err := uvmSim.Run(mk())
	if err != nil {
		panic(err)
	}
	expSim, err := guvm.NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	expRes, err := expSim.RunExplicit(mk())
	if err != nil {
		panic(err)
	}
	fmt.Printf("explicit batches: %d\n", len(expRes.Batches))
	fmt.Printf("uvm slower: %v\n", uvmRes.KernelTime > expRes.KernelTime)
	// Output:
	// explicit batches: 0
	// uvm slower: true
}

// ExampleNewMultiSimulator shows two GPUs contending for the shared host
// fault-servicing driver.
func ExampleNewMultiSimulator() {
	m, err := guvm.NewMultiSimulator(guvm.DefaultConfig(), 2)
	if err != nil {
		panic(err)
	}
	results, err := m.RunConcurrent([]workloads.Workload{
		workloads.NewStream(4<<20, 8),
		workloads.NewStream(4<<20, 8),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("devices: %d\n", len(results))
	fmt.Printf("contention observed: %v\n", m.Arbiter.Stats().Queued > 0)
	// Output:
	// devices: 2
	// contention observed: true
}
