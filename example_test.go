package guvm_test

import (
	"fmt"

	"guvm"
	"guvm/internal/workloads"
)

// Example runs the smallest possible simulation: the paper's Listing-1
// vector addition under demand paging, then prints the µTLB-limited first
// batch size the paper's Figure 3 shows.
func Example() {
	cfg := guvm.DefaultConfig()
	cfg.Driver.PrefetchEnabled = false
	cfg.Driver.Upgrade64K = false

	res, err := guvm.NewSimulator(cfg).Run(workloads.NewVecAddPaper())
	if err != nil {
		panic(err)
	}
	fmt.Printf("first batch: %d faults\n", res.Batches[0].RawFaults)
	// Output:
	// first batch: 56 faults
}

// ExampleSimulator_RunExplicit contrasts UVM demand paging with explicit
// (cudaMemcpy-style) management on the same workload.
func ExampleSimulator_RunExplicit() {
	mk := func() workloads.Workload {
		s := workloads.NewStream(8<<20, 16)
		s.ComputePerChunk = 0
		return s
	}
	cfg := guvm.DefaultConfig()
	uvmRes, err := guvm.NewSimulator(cfg).Run(mk())
	if err != nil {
		panic(err)
	}
	expRes, err := guvm.NewSimulator(cfg).RunExplicit(mk())
	if err != nil {
		panic(err)
	}
	fmt.Printf("explicit batches: %d\n", len(expRes.Batches))
	fmt.Printf("uvm slower: %v\n", uvmRes.KernelTime > expRes.KernelTime)
	// Output:
	// explicit batches: 0
	// uvm slower: true
}

// ExampleNewMultiSimulator shows two GPUs contending for the shared host
// fault-servicing driver.
func ExampleNewMultiSimulator() {
	m := guvm.NewMultiSimulator(guvm.DefaultConfig(), 2)
	results, err := m.RunConcurrent([]workloads.Workload{
		workloads.NewStream(4<<20, 8),
		workloads.NewStream(4<<20, 8),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("devices: %d\n", len(results))
	fmt.Printf("contention observed: %v\n", m.Arbiter.Stats().Queued > 0)
	// Output:
	// devices: 2
	// contention observed: true
}
