GO ?= go

.PHONY: all build test check bench benchjson figs

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: vet + build + race-enabled tests.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path microbenchmarks -> BENCH_pr3.json (measured vs baseline).
benchjson:
	./scripts/bench.sh

figs:
	$(GO) run ./cmd/paperfigs -out results
