GO ?= go

.PHONY: all build test check bench figs

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-merge gate: vet + build + race-enabled tests.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

figs:
	$(GO) run ./cmd/paperfigs -out results
