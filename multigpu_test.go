package guvm

import (
	"errors"
	"testing"

	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

func mustMulti(t *testing.T, cfg SystemConfig, n int) *MultiSimulator {
	t.Helper()
	m, err := NewMultiSimulator(cfg, n)
	if err != nil {
		t.Fatalf("NewMultiSimulator: %v", err)
	}
	return m
}

func TestMultiSimulatorSingleDeviceMatchesSolo(t *testing.T) {
	cfg := testConfig()
	mk := func() workloads.Workload { return workloads.NewStream(8<<20, 16) }

	solo := mustRun(t, cfg, mk())
	multi, err := mustMulti(t, cfg, 1).RunConcurrent([]workloads.Workload{mk()})
	if err != nil {
		t.Fatal(err)
	}
	// One device behind an uncontended arbiter behaves like the solo
	// simulator.
	if multi[0].KernelTime != solo.KernelTime {
		t.Fatalf("1-device multi kernel %v != solo %v", multi[0].KernelTime, solo.KernelTime)
	}
	if len(multi[0].Batches) != len(solo.Batches) {
		t.Fatalf("batch count %d != %d", len(multi[0].Batches), len(solo.Batches))
	}
}

func TestMultiSimulatorInterference(t *testing.T) {
	cfg := testConfig()
	mk := func() workloads.Workload {
		s := workloads.NewStream(8<<20, 16)
		s.ComputePerChunk = 0 // fault-bound: maximal driver pressure
		return s
	}
	solo := mustRun(t, cfg, mk())

	m := mustMulti(t, cfg, 2)
	results, err := m.RunConcurrent([]workloads.Workload{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	// The shared host driver serializes servicing: each device's kernel
	// slows down versus running alone.
	for i, r := range results {
		if r.KernelTime <= solo.KernelTime {
			t.Fatalf("device %d kernel %v not slower than solo %v under contention",
				i, r.KernelTime, solo.KernelTime)
		}
	}
	if m.Arbiter.Stats().Queued == 0 {
		t.Fatal("no arbiter contention recorded")
	}
	if m.Arbiter.Stats().TotalWait <= 0 {
		t.Fatal("no queueing delay recorded")
	}
}

func TestMultiSimulatorIndependentResidency(t *testing.T) {
	cfg := testConfig()
	m := mustMulti(t, cfg, 2)
	ws := []workloads.Workload{
		workloads.NewStream(4<<20, 8),
		workloads.NewRegular(8<<20, 16),
	}
	results, err := m.RunConcurrent(ws)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Workload != "stream" || results[1].Workload != "regular" {
		t.Fatalf("workload attribution wrong: %s/%s", results[0].Workload, results[1].Workload)
	}
	// Each device migrated its own working set.
	if results[0].LinkStats.BytesToGPU != 3*(4<<20) {
		t.Fatalf("device 0 migrated %d", results[0].LinkStats.BytesToGPU)
	}
	if results[1].LinkStats.BytesToGPU != 8<<20 {
		t.Fatalf("device 1 migrated %d", results[1].LinkStats.BytesToGPU)
	}
}

func TestMultiSimulatorValidation(t *testing.T) {
	cfg := testConfig()
	m := mustMulti(t, cfg, 2)
	if _, err := m.RunConcurrent([]workloads.Workload{workloads.NewStream(4<<20, 8)}); err == nil {
		t.Fatal("mismatched workload count accepted")
	}
	m2 := mustMulti(t, cfg, 1)
	if _, err := m2.RunConcurrent([]workloads.Workload{workloads.NewStream(4<<20, 8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.RunConcurrent([]workloads.Workload{workloads.NewStream(4<<20, 8)}); err == nil {
		t.Fatal("second RunConcurrent accepted")
	}
	if _, err := NewMultiSimulator(cfg, 0); err == nil {
		t.Fatal("0 devices accepted")
	}
}

// TestMultiSimulatorNamedPolicies drives the shared-arbiter path through a
// named policy combination (fifo eviction + cross-block prefetch +
// adaptive batch sizing) on two contending devices, and requires two runs
// to produce bit-identical per-device digest streams: the staged pipeline
// stays deterministic when the Arbiter serializes it and every §6
// extension is selected by registry name.
func TestMultiSimulatorNamedPolicies(t *testing.T) {
	cfg := testConfig()
	cfg.Driver.GPUMemBytes = 6 << 20 // 8 MB stream: eviction active per device
	cfg.Policies = uvm.PolicySelection{
		Eviction:    "fifo",
		Prefetch:    "cross-block",
		BatchSizing: "adaptive",
	}
	cfg.Audit.Enabled = true
	cfg.Audit.Interval = 1

	runOnce := func() []*Result {
		m := mustMulti(t, cfg, 2)
		// The selection must land on every driver's resolved config.
		for i, d := range m.Drivers {
			if got := d.Config().Eviction; got != uvm.EvictFIFO {
				t.Fatalf("driver %d eviction = %q, want fifo", i, got)
			}
			if !d.Config().AdaptiveBatch || d.Config().CrossBlockPrefetch < 1 {
				t.Fatalf("driver %d policies not applied: %+v", i, d.Config())
			}
		}
		rs, err := m.RunConcurrent([]workloads.Workload{
			workloads.NewStream(8<<20, 16),
			workloads.NewStream(8<<20, 16),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i].DriverStats.Evictions == 0 {
			t.Fatalf("device %d: no evictions — the fifo policy never ran", i)
		}
		as, bs := a[i].Audit.Snapshots, b[i].Audit.Snapshots
		if len(as) == 0 || len(as) != len(bs) {
			t.Fatalf("device %d: snapshot streams %d vs %d", i, len(as), len(bs))
		}
		for j := range as {
			if as[j].Combined != bs[j].Combined {
				t.Fatalf("device %d: digest diverged at batch %d: %016x vs %016x",
					i, as[j].Batch, as[j].Combined, bs[j].Combined)
			}
		}
		if a[i].Audit.FinalDigest != b[i].Audit.FinalDigest {
			t.Fatalf("device %d: final digests differ", i)
		}
	}
}

// TestMultiSimulatorRejectsUnknownPolicy mirrors the single-GPU
// constructor: an unregistered policy name fails fast with the typed
// registry error before any device is built.
func TestMultiSimulatorRejectsUnknownPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.Policies.Eviction = "clock"
	if _, err := NewMultiSimulator(cfg, 2); !errors.Is(err, uvm.ErrUnknownPolicy) {
		t.Fatalf("err = %v, want ErrUnknownPolicy", err)
	}
}

func TestMultiSimulatorDeterministic(t *testing.T) {
	cfg := testConfig()
	runOnce := func() []*Result {
		m := mustMulti(t, cfg, 2)
		rs, err := m.RunConcurrent([]workloads.Workload{
			workloads.NewStream(4<<20, 8),
			workloads.NewStream(4<<20, 8),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i].KernelTime != b[i].KernelTime || len(a[i].Batches) != len(b[i].Batches) {
			t.Fatalf("device %d nondeterministic", i)
		}
	}
}
