package guvm

// hwfault_test.go — system-level tests of the hardware fault domain:
// degraded/flapping links survive audited runs deterministically, device
// death re-homes every resident page (the page-conservation drill), and
// identical seeds replay identical recoveries digest for digest.

import (
	"errors"
	"testing"

	"guvm/internal/faultinject"
	"guvm/internal/workloads"
)

// hwTestConfig is testConfig with audit enabled and an epoch short
// enough that fault-regime transitions happen many times per run.
func hwTestConfig() SystemConfig {
	cfg := testConfig()
	cfg.Audit.Enabled = true
	cfg.HW = faultinject.DefaultHardwareConfig()
	cfg.HW.EpochLength = cfg.HW.EpochLength / 4
	return cfg
}

func TestSimulatorReuseSentinel(t *testing.T) {
	cfg := testConfig()
	s := mustSim(t, cfg)
	if _, err := s.Run(workloads.NewStream(4<<20, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(workloads.NewStream(4<<20, 8)); !errors.Is(err, ErrSimulatorReused) {
		t.Fatalf("second Run err = %v, want ErrSimulatorReused", err)
	}

	m := mustMulti(t, cfg, 1)
	if _, err := m.RunConcurrent([]workloads.Workload{workloads.NewStream(4<<20, 8)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunConcurrent([]workloads.Workload{workloads.NewStream(4<<20, 8)}); !errors.Is(err, ErrSimulatorReused) {
		t.Fatalf("second RunConcurrent err = %v, want ErrSimulatorReused", err)
	}
}

// A run under link degradation and flapping completes audit-clean, with
// the retry ledgers agreeing across layers.
func TestDegradedLinkAuditedRun(t *testing.T) {
	cfg := hwTestConfig()
	cfg.HW.LinkDegradeRate = 0.4
	cfg.HW.LinkFlapRate = 0.3

	res := mustRun(t, cfg, workloads.NewStream(8<<20, 16))
	if res.LinkStats.DegradedOps == 0 {
		t.Fatal("no degraded operations recorded — fault regime never engaged")
	}
	n := res.HWStats.LinkTransfer
	if n.Injected == 0 {
		t.Fatal("no transfer drops injected at flap rate 0.3")
	}
	if uint64(res.DriverStats.HWLinkRetries) != n.Injected {
		t.Fatalf("driver re-carries %d != injected drops %d",
			res.DriverStats.HWLinkRetries, n.Injected)
	}
	if n.Unrecovered != 0 {
		t.Fatalf("%d transfers unrecovered under default retry budget", n.Unrecovered)
	}
	if res.DeviceFailed {
		t.Fatal("DeviceFailed with no kill scheduled")
	}
}

// Two runs with the same seed must produce identical per-batch digest
// streams even while the link degrades and flaps.
func TestDegradedLinkDeterminism(t *testing.T) {
	cfg := hwTestConfig()
	cfg.HW.LinkDegradeRate = 0.4
	cfg.HW.LinkFlapRate = 0.3
	rep, err := VerifyDeterminism(cfg, workloads.NewStream(8<<20, 16))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("degraded-mode divergence at batch %d:\n%s\n%s",
			rep.FirstDivergentBatch, rep.A.Dump, rep.B.Dump)
	}
}

// The single-device death drill: kill mid-run, expect a truncated but
// audit-clean run with every resident page re-homed.
func TestSingleDeviceKillRehomesPages(t *testing.T) {
	cfg := hwTestConfig()
	cfg.HW.KillBatch = 3

	res := mustRun(t, cfg, workloads.NewStream(8<<20, 16))
	if !res.DeviceFailed {
		t.Fatal("DeviceFailed = false after scheduled kill")
	}
	st := res.DriverStats
	if st.ResidentAtKill == 0 {
		t.Fatal("nothing resident at kill — drill exercised nothing")
	}
	if st.RehomedPages != st.ResidentAtKill {
		t.Fatalf("re-homed %d pages, %d were resident at kill", st.RehomedPages, st.ResidentAtKill)
	}
	if res.HWStats.DevicesKilled != 1 {
		t.Fatalf("DevicesKilled = %d, want 1", res.HWStats.DevicesKilled)
	}
	if got := len(res.Batches); got != 3 {
		t.Fatalf("serviced %d batches, want exactly 3 before the kill", got)
	}
	if err := res.Audit.Err(); err != nil {
		t.Fatalf("audit violation: %v", err)
	}
}

// A kill schedule for a device the system does not have is a
// construction error, not a silent no-op.
func TestKillDeviceValidation(t *testing.T) {
	cfg := testConfig()
	cfg.HW.KillBatch = 1
	cfg.HW.KillDevice = 1
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("NewSimulator accepted KillDevice=1 on a single-GPU system")
	}
	cfg.HW.KillDevice = 2
	if _, err := NewMultiSimulator(cfg, 2); err == nil {
		t.Fatal("NewMultiSimulator accepted KillDevice=2 with 2 devices")
	}
	cfg.HW.KillDevice = 1
	if _, err := NewMultiSimulator(cfg, 2); err != nil {
		t.Fatalf("NewMultiSimulator rejected valid kill schedule: %v", err)
	}
}

// The multi-GPU chaos drill: two devices share the host; device 1 dies
// after its Nth batch. The survivor must complete untouched, the victim
// must conserve every page, the arbiter must carry the recovery record,
// and identical seeds must replay the whole failure bit-identically.
func TestMultiGPUDeviceDeathDrill(t *testing.T) {
	mkCfg := func() SystemConfig {
		cfg := hwTestConfig()
		cfg.HW.KillDevice = 1
		cfg.HW.KillBatch = 3
		return cfg
	}
	mkWs := func() []workloads.Workload {
		return []workloads.Workload{
			workloads.NewStream(8<<20, 16),
			workloads.NewStream(8<<20, 16),
		}
	}

	run := func() (*MultiSimulator, []*Result) {
		t.Helper()
		m := mustMulti(t, mkCfg(), 2)
		results, err := m.RunConcurrent(mkWs())
		if err != nil {
			t.Fatalf("drill run: %v", err)
		}
		return m, results
	}

	m, results := run()
	survivor, victim := results[0], results[1]
	if survivor.DeviceFailed {
		t.Fatal("survivor marked failed")
	}
	if victim.DeviceFailed != true {
		t.Fatal("victim not marked failed")
	}
	if survivor.KernelTime <= 0 || len(survivor.Batches) <= len(victim.Batches) {
		t.Fatalf("survivor did not outlive the victim: %d vs %d batches",
			len(survivor.Batches), len(victim.Batches))
	}
	st := victim.DriverStats
	if st.ResidentAtKill == 0 || st.RehomedPages != st.ResidentAtKill {
		t.Fatalf("page conservation: re-homed %d, resident at kill %d",
			st.RehomedPages, st.ResidentAtKill)
	}
	for i, r := range results {
		if err := r.Audit.Err(); err != nil {
			t.Fatalf("device %d audit violation: %v", i, err)
		}
	}
	recs := m.Arbiter.Rehomes()
	if len(recs) != 1 {
		t.Fatalf("arbiter recorded %d re-homings, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Device != 1 || rec.Batch != 3 || rec.Pages != st.RehomedPages || rec.Bytes != st.RehomedBytes {
		t.Fatalf("arbiter record %+v disagrees with driver stats %+v", rec, st)
	}

	// Same seed, second run: the recovery must replay digest-identical.
	_, again := run()
	for i := range results {
		d1 := results[i].Audit.FinalDigest
		d2 := again[i].Audit.FinalDigest
		if d1 != d2 {
			t.Fatalf("device %d final digest %#x != repeat run %#x", i, d1, d2)
		}
	}
}

// The degraded-aware sizing policy must engage (shrink the batch) while
// the link is unhealthy and stay selectable through the registry.
func TestDegradedAwareBatchSizing(t *testing.T) {
	cfg := hwTestConfig()
	cfg.HW.LinkDegradeRate = 1 // every epoch degraded
	cfg.Policies.BatchSizing = "degraded-aware"

	res := mustRun(t, cfg, workloads.NewStream(8<<20, 16))
	if res.DriverStats.DegradedShrinks == 0 {
		t.Fatal("degraded-aware sizer never shrank on an always-degraded link")
	}

	// The same policy on a healthy link behaves like plain adaptive:
	// no degraded shrinks.
	cfg2 := hwTestConfig()
	cfg2.HW.LinkFlapRate = 0.0
	cfg2.HW.LinkDegradeRate = 0.0
	cfg2.HW.KillBatch = 0
	cfg2.Policies.BatchSizing = "degraded-aware"
	// HW disabled entirely: the policy still validates and runs.
	res2 := mustRun(t, cfg2, workloads.NewStream(8<<20, 16))
	if res2.DriverStats.DegradedShrinks != 0 {
		t.Fatalf("%d degraded shrinks on a healthy link", res2.DriverStats.DegradedShrinks)
	}
}
