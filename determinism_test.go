package guvm

import (
	"testing"

	"guvm/internal/audit"
	"guvm/internal/workloads"
)

// fig08Workload is the stream benchmark Figure 8 profiles, scaled to a
// test-sized footprint.
func fig08Workload() workloads.Workload { return workloads.NewStream(16<<20, 24) }

// TestVerifyDeterminismMatches runs the Figure-8 stream workload twice
// under one configuration and requires bit-identical per-batch state
// digests: the simulator must be deterministic.
func TestVerifyDeterminismMatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Driver.GPUMemBytes = 64 << 20
	rep, err := VerifyDeterminism(cfg, fig08Workload())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("runs diverged at batch %d:\nA: %+v\nB: %+v",
			rep.FirstDivergentBatch, rep.A, rep.B)
	}
	if rep.Compared == 0 {
		t.Fatal("no snapshots compared — the workload produced no batches")
	}
	if rep.FirstDivergentBatch != -1 {
		t.Fatalf("matching report carries divergent batch %d", rep.FirstDivergentBatch)
	}
}

// TestVerifyDeterminismUnderEviction repeats the check in the most
// state-entangled regime: oversubscribed, with eviction and prefetching
// both active.
func TestVerifyDeterminismUnderEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Driver.GPUMemBytes = 12 << 20 // 3x16 MB stream -> 400% oversubscribed
	rep, err := VerifyDeterminism(cfg, fig08Workload())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("oversubscribed runs diverged at batch %d", rep.FirstDivergentBatch)
	}
}

// auditedSnapshots runs one workload with per-batch snapshots on and
// returns the digest stream.
func auditedSnapshots(t *testing.T, cfg SystemConfig) []audit.Snapshot {
	t.Helper()
	cfg.Audit.Interval = 1
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fig08Workload())
	if err != nil {
		t.Fatal(err)
	}
	return res.Audit.Snapshots
}

// TestCompareSnapshotsDetectsPerturbation is the negative control for the
// determinism verifier: two runs that genuinely differ (the second's
// fault batch size is halved, changing batching from the first batch on)
// must be reported as divergent, with the first differing batch index.
func TestCompareSnapshotsDetectsPerturbation(t *testing.T) {
	base := DefaultConfig()
	base.Driver.GPUMemBytes = 64 << 20

	perturbed := base
	perturbed.Driver.BatchSize = base.Driver.BatchSize / 2

	a := auditedSnapshots(t, base)
	b := auditedSnapshots(t, perturbed)

	rep := audit.CompareSnapshots(a, b)
	if rep.Match {
		t.Fatal("perturbed run (half batch size) reported as identical")
	}
	if rep.FirstDivergentBatch < 0 {
		t.Fatalf("divergent report has no divergent batch: %+v", rep)
	}
}
