package guvm

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guvm/internal/audit"
	"guvm/internal/workloads"
)

var updateGoldens = flag.Bool("update-goldens", false,
	"rewrite testdata/digests_*.golden from the current pipeline instead of comparing")

// fig08Workload is the stream benchmark Figure 8 profiles, scaled to a
// test-sized footprint.
func fig08Workload() workloads.Workload { return workloads.NewStream(16<<20, 24) }

// TestVerifyDeterminismMatches runs the Figure-8 stream workload twice
// under one configuration and requires bit-identical per-batch state
// digests: the simulator must be deterministic.
func TestVerifyDeterminismMatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Driver.GPUMemBytes = 64 << 20
	rep, err := VerifyDeterminism(cfg, fig08Workload())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("runs diverged at batch %d:\nA: %+v\nB: %+v",
			rep.FirstDivergentBatch, rep.A, rep.B)
	}
	if rep.Compared == 0 {
		t.Fatal("no snapshots compared — the workload produced no batches")
	}
	if rep.FirstDivergentBatch != -1 {
		t.Fatalf("matching report carries divergent batch %d", rep.FirstDivergentBatch)
	}
}

// TestVerifyDeterminismUnderEviction repeats the check in the most
// state-entangled regime: oversubscribed, with eviction and prefetching
// both active.
func TestVerifyDeterminismUnderEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Driver.GPUMemBytes = 12 << 20 // 3x16 MB stream -> 400% oversubscribed
	rep, err := VerifyDeterminism(cfg, fig08Workload())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("oversubscribed runs diverged at batch %d", rep.FirstDivergentBatch)
	}
}

// auditedSnapshots runs one workload with per-batch snapshots on and
// returns the digest stream.
func auditedSnapshots(t *testing.T, cfg SystemConfig) []audit.Snapshot {
	t.Helper()
	cfg.Audit.Interval = 1
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(fig08Workload())
	if err != nil {
		t.Fatal(err)
	}
	return res.Audit.Snapshots
}

// TestCompareSnapshotsDetectsPerturbation is the negative control for the
// determinism verifier: two runs that genuinely differ (the second's
// fault batch size is halved, changing batching from the first batch on)
// must be reported as divergent, with the first differing batch index.
func TestCompareSnapshotsDetectsPerturbation(t *testing.T) {
	base := DefaultConfig()
	base.Driver.GPUMemBytes = 64 << 20

	perturbed := base
	perturbed.Driver.BatchSize = base.Driver.BatchSize / 2

	a := auditedSnapshots(t, base)
	b := auditedSnapshots(t, perturbed)

	rep := audit.CompareSnapshots(a, b)
	if rep.Match {
		t.Fatal("perturbed run (half batch size) reported as identical")
	}
	if rep.FirstDivergentBatch < 0 {
		t.Fatalf("divergent report has no divergent batch: %+v", rep)
	}
}

// goldenDigestCases are the four frozen reference workloads whose
// per-batch state digests were captured from the pre-pipeline (PR-4)
// driver. They cover the paper's main regimes: first-touch streaming
// (vecadd), oversubscription with heavy eviction (stream at 4x capacity),
// duplicate-heavy tiled reuse under eviction (sgemm), and multithreaded
// host-initialized phases exercising the unmap path (hpgmg).
func goldenDigestCases() []struct {
	name string
	cfg  SystemConfig
	mk   func() workloads.Workload
} {
	base := func() SystemConfig {
		cfg := DefaultConfig()
		cfg.Audit.Interval = 1
		return cfg
	}
	vecadd := base()
	stream := base()
	stream.Driver.GPUMemBytes = 12 << 20 // 3x16 MB stream -> 400% oversubscribed
	sgemm := base()
	sgemm.Driver.GPUMemBytes = 8 << 20 // 12 MB footprint -> eviction under reuse
	hpgmg := base()
	return []struct {
		name string
		cfg  SystemConfig
		mk   func() workloads.Workload
	}{
		{"vecadd", vecadd, func() workloads.Workload { return workloads.NewVecAddPaper() }},
		{"stream", stream, func() workloads.Workload { return workloads.NewStream(16<<20, 24) }},
		{"sgemm", sgemm, func() workloads.Workload { return workloads.NewSGEMM(1024) }},
		{"hpgmg", hpgmg, func() workloads.Workload { return workloads.NewHPGMG(16<<20, 4) }},
	}
}

// formatDigestGolden renders one digest snapshot stream in the frozen
// golden format: one line per audited batch with every component digest,
// so a divergence pinpoints both the batch and the subsystem.
func formatDigestGolden(name string, snaps []audit.Snapshot, final uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# per-batch state digests: %s (batch driver device host link combined)\n", name)
	for _, s := range snaps {
		fmt.Fprintf(&b, "%d %016x %016x %016x %016x %016x\n",
			s.Batch, s.Driver, s.Device, s.Host, s.Link, s.Combined)
	}
	fmt.Fprintf(&b, "final %016x\n", final)
	return b.String()
}

// TestBatchDigestGoldens locks the servicing pipeline to the digest
// streams frozen before the driver was decomposed into staged batch
// processing: for each golden workload, every per-batch state digest
// (driver, device, host VM, link, combined) must be byte-identical to the
// pre-refactor monolith's. Regenerate with -update-goldens only for a
// deliberate, explained behaviour change.
func TestBatchDigestGoldens(t *testing.T) {
	for _, tc := range goldenDigestCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSimulator(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(tc.mk())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Audit.Snapshots) == 0 {
				t.Fatal("no digest snapshots — the workload produced no batches")
			}
			got := formatDigestGolden(tc.name, res.Audit.Snapshots, res.Audit.FinalDigest)
			path := filepath.Join("testdata", "digests_"+tc.name+".golden")
			if *updateGoldens {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d batches)", path, len(res.Audit.Snapshots))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens to freeze): %v", err)
			}
			if got != string(want) {
				gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if gl[i] != wl[i] {
						t.Fatalf("digest stream diverged from pre-refactor golden at line %d:\ngot:  %s\nwant: %s",
							i+1, gl[i], wl[i])
					}
				}
				t.Fatalf("digest stream length differs: got %d lines, want %d", len(gl), len(wl))
			}
		})
	}
}
