package guvm

import (
	"testing"

	"guvm/internal/mem"
	"guvm/internal/workloads"
)

// testConfig shrinks the default profile for fast integration tests.
func testConfig() SystemConfig {
	cfg := DefaultConfig()
	cfg.GPU.NumSMs = 8
	cfg.Driver.GPUMemBytes = 64 << 20
	return cfg
}

func mustSim(t *testing.T, cfg SystemConfig) *Simulator {
	t.Helper()
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	return s
}

func mustRun(t *testing.T, cfg SystemConfig, w workloads.Workload) *Result {
	t.Helper()
	res, err := mustSim(t, cfg).Run(w)
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return res
}

func TestSimulatorRunsEveryWorkload(t *testing.T) {
	cfg := testConfig()
	for _, w := range []workloads.Workload{
		workloads.NewVecAddPaper(),
		workloads.NewVecAddPrefetch(),
		workloads.NewRegular(16<<20, 16),
		workloads.NewRandom(16<<20, 16, 40, 9),
		workloads.NewStream(8<<20, 16),
		workloads.NewSGEMM(1024),
		workloads.NewFFT(1<<20, 8),
		workloads.NewGaussSeidel(1024, 2),
		workloads.NewHPGMG(16<<20, 2),
	} {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			res := mustRun(t, cfg, w)
			if len(res.Batches) == 0 {
				t.Fatal("no batches")
			}
			if res.KernelTime <= 0 {
				t.Fatal("no kernel time")
			}
			if res.BytesMigrated() == 0 {
				t.Fatal("no data migrated")
			}
			// Batch time is contained within total time.
			if res.BatchTime() > res.TotalTime {
				t.Fatalf("batch time %d > total %d", res.BatchTime(), res.TotalTime)
			}
		})
	}
}

func TestSimulatorSingleShot(t *testing.T) {
	s := mustSim(t, testConfig())
	if _, err := s.Run(workloads.NewStream(4<<20, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(workloads.NewStream(4<<20, 8)); err == nil {
		t.Fatal("second Run on same Simulator succeeded")
	}
}

func TestExplicitManagementFaultFree(t *testing.T) {
	cfg := testConfig()
	res, err := mustSim(t, cfg).RunExplicit(workloads.NewStream(8<<20, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 0 {
		t.Fatalf("explicit run produced %d fault batches", len(res.Batches))
	}
	if res.DeviceStats.FaultsEmitted != 0 {
		t.Fatalf("explicit run emitted %d faults", res.DeviceStats.FaultsEmitted)
	}
	if res.LinkStats.BytesToGPU != 3*(8<<20) {
		t.Fatalf("explicit copied %d bytes, want %d", res.LinkStats.BytesToGPU, 3*(8<<20))
	}
}

func TestExplicitRefusesOversubscription(t *testing.T) {
	cfg := testConfig()
	cfg.Driver.GPUMemBytes = 8 << 20
	if _, err := mustSim(t, cfg).RunExplicit(workloads.NewStream(8<<20, 16)); err == nil {
		t.Fatal("explicit oversubscription accepted")
	}
}

func TestUVMSlowerThanExplicit(t *testing.T) {
	// Figure 1: transparent paging costs at least an order of magnitude
	// in access latency over explicit bulk copies. Use a memory-bound
	// stream (no compute pacing) so the comparison isolates paging cost.
	cfg := testConfig()
	w := func() workloads.Workload {
		s := workloads.NewStream(16<<20, 16)
		s.ComputePerChunk = 0
		return s
	}
	uvmRes := mustRun(t, cfg, w())
	expRes, err := mustSim(t, cfg).RunExplicit(w())
	if err != nil {
		t.Fatal(err)
	}
	if uvmRes.KernelTime < 5*expRes.KernelTime {
		t.Fatalf("UVM kernel %v not >= 5x explicit kernel %v",
			uvmRes.KernelTime, expRes.KernelTime)
	}
}

func TestOversubscribedStreamEvicts(t *testing.T) {
	cfg := testConfig()
	cfg.Driver.GPUMemBytes = 32 << 20
	// 3 x 16 MB arrays = 48 MB working set on a 32 MB GPU.
	res := mustRun(t, cfg, workloads.NewStream(16<<20, 16))
	if res.DriverStats.Evictions == 0 {
		t.Fatal("no evictions at 150% working set")
	}
}

func TestPrefetchSpeedsUpStream(t *testing.T) {
	mk := func() workloads.Workload {
		s := workloads.NewStream(16<<20, 16)
		s.ComputePerChunk = 0
		return s
	}
	cfg := testConfig()
	on := mustRun(t, cfg, mk())
	cfgOff := testConfig()
	cfgOff.Driver.PrefetchEnabled = false
	cfgOff.Driver.Upgrade64K = false
	off := mustRun(t, cfgOff, mk())
	if on.KernelTime >= off.KernelTime {
		t.Fatalf("prefetch kernel %v not faster than no-prefetch %v",
			on.KernelTime, off.KernelTime)
	}
	if len(on.Batches)*2 > len(off.Batches) {
		t.Fatalf("prefetch batches %d not <1/2 of no-prefetch %d",
			len(on.Batches), len(off.Batches))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := testConfig()
	a := mustRun(t, cfg, workloads.NewSGEMM(1024))
	b := mustRun(t, cfg, workloads.NewSGEMM(1024))
	if a.KernelTime != b.KernelTime || a.TotalTime != b.TotalTime {
		t.Fatalf("nondeterministic timing: %v/%v vs %v/%v",
			a.KernelTime, a.TotalTime, b.KernelTime, b.TotalTime)
	}
	if len(a.Batches) != len(b.Batches) {
		t.Fatalf("nondeterministic batch count: %d vs %d", len(a.Batches), len(b.Batches))
	}
	for i := range a.Batches {
		if a.Batches[i].RawFaults != b.Batches[i].RawFaults ||
			a.Batches[i].Duration() != b.Batches[i].Duration() {
			t.Fatalf("batch %d differs between runs", i)
		}
	}
}

func TestKeepFaultsPopulatesResult(t *testing.T) {
	cfg := testConfig()
	cfg.KeepFaults = true
	res := mustRun(t, cfg, workloads.NewVecAddPaper())
	if len(res.Faults) == 0 {
		t.Fatal("KeepFaults produced no fault records")
	}
	if len(res.Faults) != len(res.FaultBatch) {
		t.Fatal("fault/batch arrays misaligned")
	}
}

func TestListing1EndToEnd(t *testing.T) {
	// The §3.2 microbenchmark through the whole stack: 56-fault first
	// batch, read faults strictly before the iteration's write faults.
	cfg := DefaultConfig() // full 80-SM GPU; single warp uses one SM
	cfg.KeepFaults = true
	res := mustRun(t, cfg, workloads.NewVecAddPaper())
	if res.Batches[0].RawFaults != 56 {
		t.Fatalf("first batch = %d faults, want 56", res.Batches[0].RawFaults)
	}
}

func TestBatchRecordsInternallyConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.Driver.GPUMemBytes = 16 << 20
	res := mustRun(t, cfg, workloads.NewGaussSeidel(1448, 3)) // ~8 MB grid
	prev := res.Batches[0].Start
	for _, b := range res.Batches {
		if b.Start < prev {
			t.Fatalf("batch %d starts before predecessor", b.ID)
		}
		prev = b.Start
		if b.End <= b.Start {
			t.Fatalf("batch %d empty interval", b.ID)
		}
		if b.UniquePages+b.DupFaults() != b.RawFaults {
			t.Fatalf("batch %d: unique %d + dups %d != raw %d",
				b.ID, b.UniquePages, b.DupFaults(), b.RawFaults)
		}
		if b.PagesMigrated > 0 && b.BytesMigrated != uint64(b.PagesMigrated)*mem.PageSize {
			t.Fatalf("batch %d: bytes/pages mismatch", b.ID)
		}
		var smSum int
		for _, c := range b.FaultsPerSM {
			smSum += int(c)
		}
		if smSum != b.RawFaults {
			t.Fatalf("batch %d: per-SM counts sum %d != raw %d", b.ID, smSum, b.RawFaults)
		}
		var blkSum int
		for _, c := range b.VABlockFaults {
			blkSum += int(c)
		}
		if blkSum != b.RawFaults {
			t.Fatalf("batch %d: per-block counts sum %d != raw %d", b.ID, blkSum, b.RawFaults)
		}
	}
}

func TestHostStatsReported(t *testing.T) {
	cfg := testConfig()
	res := mustRun(t, cfg, workloads.NewHPGMG(16<<20, 4))
	if res.HostStats.UnmapCalls == 0 {
		t.Fatal("no unmap calls for host-initialized HPGMG")
	}
	if res.HostStats.DMAPagesMapped == 0 {
		t.Fatal("no DMA pages mapped")
	}
	if res.LinkStats.BytesToGPU == 0 {
		t.Fatal("no link traffic")
	}
}

func TestCoalescedVecaddNeedsTwoFaultRounds(t *testing.T) {
	// §3.2: "A coalescing version of the vector addition code implies
	// that each faulting warp (or block) requires at least two full
	// fault batches to complete its work, despite having the data
	// requirements available upfront." Reads must be serviced (round 1)
	// before the dependent writes can even fault (round 2).
	cfg := DefaultConfig()
	cfg.KeepFaults = true
	cfg.Driver.PrefetchEnabled = false
	cfg.Driver.Upgrade64K = false
	res := mustRun(t, cfg, workloads.NewVecAddCoalesced())
	if len(res.Batches) < 2 {
		t.Fatalf("only %d batches; coalesced vecadd needs >= 2 rounds", len(res.Batches))
	}
	// No write fault may share a batch with (or precede) the read
	// faults of its warp's slice.
	firstWriteBatch := -1
	lastReadBatch := -1
	for i, f := range res.Faults {
		switch f.Kind.String() {
		case "write":
			if firstWriteBatch < 0 {
				firstWriteBatch = res.FaultBatch[i]
			}
		case "read":
			lastReadBatch = res.FaultBatch[i]
		}
	}
	if firstWriteBatch < 1 {
		t.Fatalf("first write fault in batch %d; want a later round than reads", firstWriteBatch)
	}
	_ = lastReadBatch
}
