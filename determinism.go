package guvm

import (
	"fmt"

	"guvm/internal/audit"
	"guvm/internal/workloads"
)

// VerifyDeterminism runs the same workload twice under the same
// configuration, snapshotting every model's state digest at every batch
// boundary, and compares the two snapshot streams. A correct simulator is
// bit-deterministic, so the report must match; a divergence pinpoints the
// first batch whose state differed, with full state dumps of both sides
// for diagnosis.
//
// The workload's Phases method must be reusable (every bundled workload
// builds fresh seeded RNGs per call). The passed configuration's audit
// settings are overridden: snapshots every batch, dumps retained.
func VerifyDeterminism(cfg SystemConfig, w workloads.Workload) (*audit.DeterminismReport, error) {
	cfg.Audit.Interval = 1
	cfg.Audit.KeepDumps = true

	one := func(label string) (*audit.Report, error) {
		s, err := NewSimulator(cfg)
		if err != nil {
			return nil, fmt.Errorf("guvm: determinism %s run: %w", label, err)
		}
		res, err := s.Run(w)
		if err != nil {
			return nil, fmt.Errorf("guvm: determinism %s run: %w", label, err)
		}
		return res.Audit, nil
	}

	first, err := one("first")
	if err != nil {
		return nil, err
	}
	second, err := one("second")
	if err != nil {
		return nil, err
	}
	rep := audit.CompareSnapshots(first.Snapshots, second.Snapshots)
	return &rep, nil
}
