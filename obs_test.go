package guvm

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"guvm/internal/audit"
	"guvm/internal/obs"
	"guvm/internal/sim"
	"guvm/internal/workloads"
)

var updateObsGolden = flag.Bool("update-obs-golden", false, "rewrite the testdata obs goldens (vecadd trace JSON, vecadd breakdown CSV) from the current build")

// obsTestConfig is the audited vecadd configuration shared by the
// observability tests and the golden trace; it matches uvmsim's defaults
// (`uvmsim -workload vecadd -audit`) so the CI golden check can regenerate
// the file through the CLI.
func obsTestConfig() SystemConfig {
	cfg := DefaultConfig()
	cfg.Audit.Enabled = true
	cfg.Audit.Interval = 1
	return cfg
}

func runVecAdd(t *testing.T, cfg SystemConfig) (*Simulator, *Result) {
	t.Helper()
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workloads.NewVecAddPaper())
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestObsDigestsUnchanged is the zero-perturbation regression: full
// observability (tracing, engine events, per-batch sampling) must leave
// every per-batch state digest and the final digest byte-identical to an
// unobserved run.
func TestObsDigestsUnchanged(t *testing.T) {
	off := obsTestConfig()
	on := obsTestConfig()
	on.Obs = obs.Config{Trace: true, EngineEvents: true, SampleInterval: 1, Profile: true}

	_, resOff := runVecAdd(t, off)
	_, resOn := runVecAdd(t, on)

	rep := audit.CompareSnapshots(resOff.Audit.Snapshots, resOn.Audit.Snapshots)
	if !rep.Match {
		t.Fatalf("observability perturbed the simulation: first divergent batch %d (%d compared)",
			rep.FirstDivergentBatch, rep.Compared)
	}
	if len(resOff.Audit.Snapshots) != len(resOn.Audit.Snapshots) {
		t.Fatalf("snapshot count differs: %d without obs, %d with",
			len(resOff.Audit.Snapshots), len(resOn.Audit.Snapshots))
	}
	if resOff.Audit.FinalDigest != resOn.Audit.FinalDigest {
		t.Fatalf("final digest differs: %016x without obs, %016x with",
			resOff.Audit.FinalDigest, resOn.Audit.FinalDigest)
	}
	if resOff.TotalTime != resOn.TotalTime {
		t.Fatalf("total time differs: %d vs %d", resOff.TotalTime, resOn.TotalTime)
	}
}

// TestObsPhaseSpansPartitionBatches verifies the acceptance contract on a
// real run: for every batch, the LanePhase spans sum exactly to End-Start
// and tile the window without gaps or overlap.
func TestObsPhaseSpansPartitionBatches(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Obs.Trace = true
	s, res := runVecAdd(t, cfg)

	byBatch := make(map[int][]obs.Span)
	for _, sp := range s.Obs.Tracer.Spans() {
		if sp.Lane == obs.LanePhase {
			byBatch[sp.Batch] = append(byBatch[sp.Batch], sp)
		}
	}
	if len(byBatch) != len(res.Batches) {
		t.Fatalf("phase spans cover %d batches, want %d", len(byBatch), len(res.Batches))
	}
	for i := range res.Batches {
		b := &res.Batches[i]
		spans := byBatch[b.ID]
		if len(spans) == 0 {
			t.Fatalf("batch %d has no phase spans", b.ID)
		}
		cursor := b.Start
		var sum sim.Time
		for _, sp := range spans {
			if sp.Start != cursor {
				t.Fatalf("batch %d: span %q starts at %d, want contiguous %d", b.ID, sp.Name, sp.Start, cursor)
			}
			cursor += sp.Dur
			sum += sp.Dur
		}
		if sum != b.Duration() {
			t.Fatalf("batch %d: phase spans sum to %d, want End-Start = %d", b.ID, sum, b.Duration())
		}
	}
}

// TestObsGoldenTrace pins the Chrome trace JSON for the audited vecadd run
// byte-for-byte. Regenerate with:
//
//	go test -run TestObsGoldenTrace -update-obs-golden
func TestObsGoldenTrace(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Obs.Trace = true
	s, _ := runVecAdd(t, cfg)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, s.Obs.Tracer); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "vecadd_trace.golden.json")
	if *updateObsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-obs-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverges from %s (%d bytes got, %d want); regenerate with -update-obs-golden if the change is intended",
			golden, buf.Len(), len(want))
	}
}

// TestObsGoldenBreakdown pins the profiler's batch-time breakdown CSV for
// the audited vecadd run byte-for-byte — the same bytes `uvmsim -workload
// vecadd -audit -profile-dir DIR` writes to DIR/breakdown.csv, so CI can
// cross-check the golden through the CLI. Regenerate with:
//
//	go test -run TestObsGoldenBreakdown -update-obs-golden
func TestObsGoldenBreakdown(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Obs.Profile = true
	s, _ := runVecAdd(t, cfg)

	var buf bytes.Buffer
	if err := s.Obs.Profiler.WriteBreakdownCSV(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "vecadd_breakdown.golden.csv")
	if *updateObsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-obs-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("breakdown diverges from %s:\ngot:\n%swant:\n%s(regenerate with -update-obs-golden if the change is intended)",
			golden, buf.String(), want)
	}
}

// TestObsProfilerLifecycleCoversFaults checks the profiler's basic
// accounting on a real run: every raw fault is tracked through all six
// lifecycle transitions, and the per-batch profiles cover every batch.
func TestObsProfilerLifecycleCoversFaults(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Obs.Profile = true
	s, res := runVecAdd(t, cfg)
	p := s.Obs.Profiler

	var buf bytes.Buffer
	if err := p.WriteLifecycleCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := res.DriverStats.TotalFaults
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		if i == 0 {
			continue // header
		}
		fields := bytes.Split(line, []byte(","))
		if string(fields[1]) != fmt.Sprint(want) {
			t.Errorf("lifecycle stage %s tracked %s faults, want %d", fields[0], fields[1], want)
		}
	}
	if got := len(p.Batches()); got != len(res.Batches) {
		t.Fatalf("profiler recorded %d batch profiles, want %d", got, len(res.Batches))
	}
}

// TestObsSamplerDeterministic pins that two identical observed runs
// produce byte-identical metric series.
func TestObsSamplerDeterministic(t *testing.T) {
	series := func() string {
		cfg := obsTestConfig()
		cfg.Obs.SampleInterval = 1
		s, _ := runVecAdd(t, cfg)
		var buf bytes.Buffer
		if err := s.Obs.Sampler.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := series(), series()
	if a != b {
		t.Fatal("two identical runs produced different metric series")
	}
	if len(a) == 0 {
		t.Fatal("empty metric series")
	}
}
