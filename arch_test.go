package guvm

// arch_test.go — the architecture seam's system-level contract: an
// unknown -arch name is rejected with the valid options, the default
// host-driven entry is bit-identical to leaving the architecture unset,
// and the two alternative architectures are deterministic and pass the
// invariant auditor under oversubscription.

import (
	"errors"
	"strings"
	"testing"

	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

// TestUnknownArchitectureRejected requires the construction-time error
// for an unregistered architecture to carry the registered options, so a
// CLI typo surfaces every valid -arch value.
func TestUnknownArchitectureRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policies.Architecture = "speculative"
	_, err := NewSimulator(cfg)
	if err == nil {
		t.Fatal("unknown architecture accepted")
	}
	var upe *uvm.UnknownPolicyError
	if !errors.As(err, &upe) {
		t.Fatalf("error is %T, want *uvm.UnknownPolicyError: %v", err, err)
	}
	if upe.Kind != uvm.KindArchitecture {
		t.Fatalf("error kind %q, want %q", upe.Kind, uvm.KindArchitecture)
	}
	for _, name := range []string{"host-driven", "gpu-driven", "access-counter"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not name the valid option %q", err, name)
		}
	}
}

// TestHostDrivenMatchesDefault runs each golden workload with the
// architecture explicitly set to host-driven and requires the digest
// stream to be bit-identical to the unset default: selecting the paper's
// architecture by name must be a no-op.
func TestHostDrivenMatchesDefault(t *testing.T) {
	for _, tc := range goldenDigestCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(arch string) string {
				cfg := tc.cfg
				cfg.Policies.Architecture = arch
				s, err := NewSimulator(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(tc.mk())
				if err != nil {
					t.Fatal(err)
				}
				return formatDigestGolden(tc.name, res.Audit.Snapshots, res.Audit.FinalDigest)
			}
			if got, want := run("host-driven"), run(""); got != want {
				t.Fatalf("explicit host-driven diverges from the default architecture:\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestAlternativeArchitecturesDeterministic requires the gpu-driven and
// access-counter pipelines to produce bit-identical per-batch state
// digests across two same-seed runs, like the host-driven default.
func TestAlternativeArchitecturesDeterministic(t *testing.T) {
	for _, arch := range []string{"gpu-driven", "access-counter"} {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Driver.GPUMemBytes = 64 << 20
			cfg.Policies.Architecture = arch
			rep, err := VerifyDeterminism(cfg, fig08Workload())
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Match {
				t.Fatalf("%s runs diverged at batch %d", arch, rep.FirstDivergentBatch)
			}
			if rep.Compared == 0 {
				t.Fatal("no snapshots compared — the workload produced no batches")
			}
		})
	}
}

// TestAlternativeArchitecturesPassAudit runs the oversubscribed stream
// workload (heavy eviction) under both alternative architectures with
// the invariant auditor on every batch: the lifted stage graphs must
// uphold the same residency/accounting invariants as the default.
func TestAlternativeArchitecturesPassAudit(t *testing.T) {
	for _, arch := range []string{"gpu-driven", "access-counter"} {
		arch := arch
		t.Run(arch, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Driver.GPUMemBytes = 12 << 20 // 3x16 MB stream -> 400% oversubscribed
			cfg.Policies.Architecture = arch
			cfg.Audit.Enabled = true
			cfg.Audit.Interval = 1
			s, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(workloads.NewStream(16<<20, 24))
			if err != nil {
				t.Fatal(err)
			}
			if res.Audit == nil || res.Audit.BatchesAudited == 0 {
				t.Fatal("auditor did not run")
			}
			if n := len(res.Audit.Violations); n != 0 {
				t.Fatalf("%s: %d invariant violations, first: %+v", arch, n, res.Audit.Violations[0])
			}
		})
	}
}
