// Command uvmsweep runs a driver-policy parameter grid over one workload
// and emits a CSV of outcomes — the bulk-experimentation companion to
// uvmsim. Sweeps cover batch size, prefetching, capacity (oversubscription
// ratio), and eviction policy.
//
// Grid points run on a worker pool (-jobs, default GOMAXPROCS); each
// point drives its own simulation engine and rows are emitted in grid
// order, so the CSV is byte-identical at any -jobs value.
//
// Usage:
//
//	uvmsweep -workload gauss-seidel -n 3072 > sweep.csv
//	uvmsweep -workload stream -mb 16 -batches 128,256,1024 -caps 24,32,64 -jobs 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"guvm"
	"guvm/internal/experiments"
	"guvm/internal/obs"
	"guvm/internal/sim"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		name    = flag.String("workload", "gauss-seidel", "workload to sweep")
		mb      = flag.Uint64("mb", 64, "footprint knob in MiB")
		n       = flag.Int("n", 3072, "problem dimension for gemm/gauss-seidel/spmv")
		seed    = flag.Uint64("seed", 11, "workload seed")
		batches = flag.String("batches", "256", "comma-separated batch size limits")
		caps    = flag.String("caps", "32,64,256", "comma-separated GPU capacities in MiB")
		// Shared sweep policy flag block: comma lists per registry dimension
		// (-prefetch/-evict/-batch-sizing/-arch) plus -list-policies.
		plf     = uvm.RegisterPolicyListFlags(flag.CommandLine)
		auditOn = flag.Bool("audit", false, "run the invariant auditor on every sweep point; a violation names the failing point and exits non-zero")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "number of sweep points to run concurrently")
		// Shared obs flag set: -trace-out records one wall-clock span per
		// grid point; the metrics flags publish/sample sweep progress.
		ofl = obs.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	// Graceful drain: SIGINT/SIGTERM stops feeding new grid points to the
	// pool; in-flight points finish and their rows are still emitted, so
	// the partial CSV is always a clean prefix of the full sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if plf.HandleList(os.Stdout) {
		return
	}

	mk, err := workloads.ByName(*name, *mb, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", err)
		os.Exit(2)
	}
	batchList, err := parseIntList(*batches)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", err)
		os.Exit(2)
	}
	capList, err := parseIntList(*caps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", err)
		os.Exit(2)
	}
	// Expand the grid up front (Selections validates every policy name
	// against the registry before any simulation runs — an unknown name is
	// rejected with the valid options), then fan the independent points
	// out on the pool. Each point carries a named PolicySelection that
	// NewSimulator resolves onto the driver config.
	type point struct {
		bs, capMB int
		pols      uvm.PolicySelection
	}
	sels, err := plf.Selections()
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", err)
		os.Exit(2)
	}
	var grid []point
	for _, bs := range batchList {
		for _, capMB := range capList {
			for _, sel := range sels {
				grid = append(grid, point{bs, capMB, sel})
			}
		}
	}

	// Opt-in live progress endpoint and sampled progress series. Counters
	// advance only in the ordered collect callback (main goroutine), so
	// publishing never races the worker pool and the CSV stays
	// byte-identical at any -jobs value. The sampled series is keyed by
	// completed-point count (not wall time), so -metrics-csv/-metrics-json
	// are deterministic too.
	var prog *obs.Observer
	done := 0
	faults := 0
	if ofl.SamplingRequested() {
		prog = obs.New(obs.Config{SampleInterval: ofl.SampleEvery()})
		total := prog.Registry.Gauge("guvm_sweep_points_total", "Grid points in this sweep")
		total.Set(float64(len(grid)))
		prog.Registry.Func("guvm_sweep_points_done_total", "Grid points completed",
			func() float64 { return float64(done) })
		prog.Registry.Func("guvm_sweep_faults_total", "Faults across completed grid points",
			func() float64 { return float64(faults) })
		prog.SetStatusFunc(func() any {
			return map[string]any{"workload": *name, "points": len(grid), "done": done}
		})
		prog.Publish()
		if ofl.MetricsAddr != "" {
			srv, err := obs.Serve(ofl.MetricsAddr, prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", err)
				os.Exit(2)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "metrics: serving on %s\n", srv.Addr())
		}
	}
	// Optional harness trace: one wall-clock span per grid point on a
	// single lane, placed at [collection-elapsed, collection] relative to
	// program start (approximate for points that finished while an earlier
	// one was pending collection).
	var harness *obs.Tracer
	progStart := time.Now()
	if ofl.TraceOut != "" {
		harness = obs.NewTracer()
		harness.Lanes = map[int]string{1: "sweep points"}
	}

	type outcome struct {
		row     string
		faults  int
		elapsed time.Duration
		err     error
	}
	fmt.Println("workload,batch_size,cap_mb,prefetch,evict,batch_sizing,arch,kernel_ms,batch_ms,batches,faults,evictions,migrated_mb,prefetched_pages")
	runErr := experiments.ForEachOrdered(ctx, len(grid), *jobs, func(i int) outcome {
		pointStart := time.Now()
		p := grid[i]
		cfg := guvm.DefaultConfig()
		cfg.Driver.BatchSize = p.bs
		cfg.Driver.GPUMemBytes = uint64(p.capMB) << 20
		cfg.Policies = p.pols
		cfg.Audit.Enabled = *auditOn
		cfg.Audit.Interval = 1
		s, err := guvm.NewSimulator(cfg)
		if err != nil {
			return outcome{err: err}
		}
		res, err := s.Run(mk())
		if err != nil {
			return outcome{err: fmt.Errorf("%s bs=%d cap=%d: %w", *name, p.bs, p.capMB, err)}
		}
		return outcome{row: fmt.Sprintf("%s,%d,%d,%s,%s,%s,%s,%.3f,%.3f,%d,%d,%d,%.1f,%d",
			res.Workload, p.bs, p.capMB, p.pols.Prefetch, p.pols.Eviction, p.pols.BatchSizing, p.pols.Architecture,
			res.KernelTime.Millis(), res.BatchTime().Millis(),
			len(res.Batches), res.DriverStats.TotalFaults,
			res.DriverStats.Evictions,
			float64(res.BytesMigrated())/(1<<20),
			res.DriverStats.PrefetchedPages),
			faults:  res.DriverStats.TotalFaults,
			elapsed: time.Since(pointStart)}
	}, func(i int, o outcome) {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", o.err)
			os.Exit(1)
		}
		fmt.Println(o.row)
		done++
		faults += o.faults
		if harness != nil {
			end := sim.Time(time.Since(progStart).Nanoseconds())
			start := end - sim.Time(o.elapsed.Nanoseconds())
			if start < 0 {
				start = 0
			}
			p := grid[i]
			harness.Add(1, "point", fmt.Sprintf("bs=%d cap=%d %s/%s/%s/%s",
				p.bs, p.capMB, p.pols.Prefetch, p.pols.Eviction, p.pols.BatchSizing, p.pols.Architecture),
				start, end-start, i)
		}
		if prog != nil {
			if i%prog.Sampler.Interval == 0 {
				prog.Sampler.Sample(sim.Time(done), i)
			}
			prog.Publish()
		}
	})
	// Artifact tails go to stderr: stdout is the sweep CSV.
	logf := func(format string, a ...any) (int, error) {
		return fmt.Fprintf(os.Stderr, format, a...)
	}
	var sampler *obs.Sampler
	if prog != nil {
		sampler = prog.Sampler
	}
	if err := ofl.WriteArtifacts(harness, sampler, logf); err != nil {
		fmt.Fprintf(os.Stderr, "uvmsweep: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "uvmsweep: interrupted (%v): emitted %d of %d grid points\n",
			runErr, done, len(grid))
		os.Exit(130)
	}
}
