// Command paperfigs regenerates every table and figure of the paper's
// evaluation from the simulator, writing aligned tables, CSV series, and
// paper-vs-measured notes under an output directory.
//
// Experiments run on a worker pool (-jobs, default GOMAXPROCS): each
// generator drives its own simulation engine, and artifacts are collected
// in experiment order, so the written output is byte-identical at any
// -jobs value.
//
// Usage:
//
//	paperfigs [-out results] [-only fig09,table2] [-jobs 4] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"guvm/internal/experiments"
	"guvm/internal/obs"
	"guvm/internal/sim"
	"guvm/internal/uvm"
)

func main() {
	out := flag.String("out", "results", "output directory")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "number of experiments to run concurrently")
	verbose := flag.Bool("v", false, "print tables and notes to stdout")
	// Shared obs flag set: -trace-out records the wall-clock harness trace
	// (one lane per experiment); the metrics flags publish/sample harness
	// progress.
	ofl := obs.RegisterFlags(flag.CommandLine)
	// Shared policy flag block: overrides reach every experiment's base
	// profile (-evict/-prefetch-policy/-batch-sizing/-arch/-list-policies).
	pol := uvm.RegisterPolicyFlags(flag.CommandLine)
	flag.Parse()

	if pol.HandleList(os.Stdout) {
		return
	}

	// Graceful drain: SIGINT/SIGTERM stops scheduling new experiments;
	// in-flight generators finish and their artifacts are still written,
	// so the output directory and NOTES.md hold a clean prefix of the run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Overrides reach experiments through the shared base profile; an
	// experiment that ablates a policy dimension still sweeps it (the
	// ablation overwrites that field). Unknown names are rejected here,
	// with the valid options, before any simulation runs.
	if err := experiments.SetPolicies(pol.Selection()); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(2)
	}

	var gens []experiments.Generator
	if *only == "" {
		gens = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			g, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "paperfigs: unknown experiment %q\n", id)
				os.Exit(2)
			}
			gens = append(gens, g)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}

	// Optional harness trace: one wall-clock span per experiment, placed
	// at [collection-elapsed, collection] relative to program start. The
	// collect callback runs in experiment order on the main goroutine, so
	// span placement is approximate for experiments that finished while an
	// earlier one was still pending collection.
	var harness *obs.Tracer
	progStart := time.Now()
	if ofl.TraceOut != "" {
		harness = obs.NewTracer()
		harness.Lanes = map[int]string{}
	}

	// Opt-in harness progress metrics: counters advance only in the
	// ordered collect callback, keyed by completed-experiment count, so
	// the sampled series is deterministic at any -jobs value.
	var prog *obs.Observer
	doneCount := 0
	if ofl.SamplingRequested() {
		prog = obs.New(obs.Config{SampleInterval: ofl.SampleEvery()})
		total := prog.Registry.Gauge("guvm_experiments_total", "Experiments in this run")
		total.Set(float64(len(gens)))
		prog.Registry.Func("guvm_experiments_done_total", "Experiments completed",
			func() float64 { return float64(doneCount) })
		prog.SetStatusFunc(func() any {
			return map[string]any{"experiments": len(gens), "done": doneCount}
		})
		prog.Publish()
		if ofl.MetricsAddr != "" {
			srv, err := obs.Serve(ofl.MetricsAddr, prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
				os.Exit(2)
			}
			defer srv.Close()
			fmt.Printf("metrics: serving on %s\n", srv.Addr())
		}
	}

	var summary strings.Builder
	var failed []string
	interrupted := experiments.RunParallel(ctx, gens, *jobs, func(r experiments.RunResult) {
		fmt.Printf("== %s: %s\n", r.Gen.ID, r.Gen.Title)
		if harness != nil {
			end := sim.Time(time.Since(progStart).Nanoseconds())
			start := end - sim.Time(r.Elapsed.Nanoseconds())
			if start < 0 {
				start = 0
			}
			lane := r.Index + 1
			harness.Lanes[lane] = r.Gen.ID
			harness.Add(lane, "experiment", r.Gen.ID, start, end-start, r.Index)
		}
		doneCount++
		if prog != nil {
			if r.Index%prog.Sampler.Interval == 0 {
				prog.Sampler.Sample(sim.Time(doneCount), r.Index)
			}
			prog.Publish()
		}
		if r.Err != nil {
			// One broken experiment must not take down the sweep: record
			// it, keep going, and exit non-zero at the end.
			fmt.Fprintf(os.Stderr, "paperfigs: experiment %s failed: %v\n", r.Gen.ID, r.Err)
			fmt.Fprintf(&summary, "## %s — %s\n\n- FAILED: %v\n\n", r.Gen.ID, r.Gen.Title, r.Err)
			failed = append(failed, r.Gen.ID)
			return
		}
		a := r.Artifact
		dir := filepath.Join(*out, a.ID)
		if err := writeArtifact(dir, a, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(&summary, "## %s — %s\n\n", a.ID, a.Title)
		for _, n := range a.Notes {
			fmt.Fprintf(&summary, "- %s\n", n)
			if *verbose {
				fmt.Println("  " + n)
			}
		}
		summary.WriteString("\n")
		fmt.Printf("   wrote %s (%d tables, %d series) in %v\n",
			dir, len(a.Tables), len(a.Series), r.Elapsed.Round(time.Millisecond))
	})
	notesFile := filepath.Join(*out, "NOTES.md")
	if err := os.WriteFile(notesFile, []byte(summary.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== summary notes: %s\n", notesFile)
	var sampler *obs.Sampler
	if prog != nil {
		sampler = prog.Sampler
	}
	if err := ofl.WriteArtifacts(harness, sampler, fmt.Printf); err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "paperfigs: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
	if interrupted != nil {
		// Partial artifacts and NOTES.md were flushed above; report the
		// truncation and exit non-zero so callers never mistake a drained
		// run for a complete one.
		fmt.Fprintf(os.Stderr, "paperfigs: interrupted (%v): output holds a partial run\n", interrupted)
		os.Exit(130)
	}
}

// writeArtifact renders one artifact's tables and series under dir.
func writeArtifact(dir string, a *experiments.Artifact, verbose bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tb := range a.Tables {
		name := filepath.Join(dir, fmt.Sprintf("table%d.txt", i))
		if err := os.WriteFile(name, []byte(tb.String()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(name[:len(name)-4]+".csv", []byte(tb.CSV()), 0o644); err != nil {
			return err
		}
		if verbose {
			fmt.Println(tb.String())
		}
	}
	for _, s := range a.Series {
		name := filepath.Join(dir, s.Title+".csv")
		if err := os.WriteFile(name, []byte(s.CSV()), 0o644); err != nil {
			return err
		}
		if verbose && len(s.Columns) >= 2 && len(s.Rows) > 1 {
			// Quick-look shape check in the terminal.
			fmt.Println(s.ASCIIPlot(s.Columns[0], s.Columns[1], 64, 12))
		}
	}
	return nil
}
