// Command faultviz dumps per-fault timelines of the paper's §3
// microbenchmarks — the data behind Figures 3, 4 and 5 — so fault-buffer
// behaviour (µTLB limits, scoreboard stalls, prefetch bypass, batching)
// can be inspected fault by fault.
//
// Usage:
//
//	faultviz               # Listing-1 vector addition
//	faultviz -prefetch     # the prefetch-instruction variant (Figure 5)
package main

import (
	"flag"
	"fmt"
	"os"

	"guvm"
	"guvm/internal/mem"
	"guvm/internal/obs"
	"guvm/internal/uvm"
	"guvm/internal/workloads"
)

func main() {
	prefetch := flag.Bool("prefetch", false, "run the prefetch-instruction kernel (Figure 5)")
	auditOn := flag.Bool("audit", false, "run the invariant auditor alongside the simulation")
	ofl := obs.RegisterFlags(flag.CommandLine)
	pfl := obs.RegisterProfileFlags(flag.CommandLine)
	// Shared policy flag block (-evict/-prefetch-policy/-batch-sizing/
	// -arch/-list-policies); empty selections keep faultviz's raw-fault
	// defaults below.
	pol := uvm.RegisterPolicyFlags(flag.CommandLine)
	hwFault := flag.Bool("hw-fault", false, "enable the hardware fault domain (degraded/flapping link epochs at default rates)")
	hwKill := flag.Int("hw-kill-batch", 0, "kill the device after it completes this many fault batches (1-based; 0 disables)")
	flag.Parse()

	if pol.HandleList(os.Stdout) {
		return
	}

	cfg := guvm.DefaultConfig()
	cfg.Driver.PrefetchEnabled = false // expose raw fault mechanics
	cfg.Driver.Upgrade64K = false
	cfg.KeepFaults = true
	cfg.Audit.Enabled = *auditOn
	cfg.Audit.Interval = 1
	ofl.Apply(&cfg.Obs)
	pfl.Apply(&cfg.Obs)
	cfg.Policies = pol.Selection()
	if *hwFault {
		cfg.HW.LinkDegradeRate = 0.2
		cfg.HW.LinkFlapRate = 0.1
	}
	cfg.HW.KillBatch = *hwKill

	var w workloads.Workload
	if *prefetch {
		w = workloads.NewVecAddPrefetch()
	} else {
		w = workloads.NewVecAddPaper()
	}

	s, err := guvm.NewSimulator(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
		os.Exit(1)
	}
	if ofl.MetricsAddr != "" {
		srv, err := obs.Serve(ofl.MetricsAddr, s.Obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: serving on %s\n", srv.Addr())
	}
	res, err := s.Run(w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
		os.Exit(1)
	}

	vector := func(p mem.PageID) (string, mem.PageID) {
		names := []string{"a", "b", "c"}
		for i := len(res.Bases) - 1; i >= 0; i-- {
			if p >= mem.PageOf(res.Bases[i]) {
				return names[i], p - mem.PageOf(res.Bases[i])
			}
		}
		return "?", p
	}

	fmt.Println("idx  batch  time_us   vec  page  kind      sm  utlb  dup")
	for i, f := range res.Faults {
		v, off := vector(f.Page)
		fmt.Printf("%-4d %-6d %9.2f %4s %5d  %-8s %3d %5d  %v\n",
			i, res.FaultBatch[i], f.Time.Micros(), v, off, f.Kind, f.SM, f.UTLB, f.Dup)
	}

	fmt.Println()
	fmt.Println("batch  faults  dur_us")
	for _, b := range res.Batches {
		fmt.Printf("%-6d %-7d %7.1f\n", b.ID, b.RawFaults, b.Duration().Micros())
	}
	fmt.Printf("\nkernel %.1f us, %d batches, %d faults fetched, %d re-faults\n",
		res.KernelTime.Micros(), len(res.Batches),
		res.DriverStats.TotalFaults, res.DeviceStats.Refaults)

	if cfg.HW.Enabled() {
		fmt.Printf("hw faults: %d injected transfer drops, %d link retries, %d degraded ops\n",
			res.HWStats.LinkTransfer.Injected, res.DriverStats.HWLinkRetries,
			res.LinkStats.DegradedOps)
		if res.DeviceFailed {
			fmt.Printf("device killed after batch %d: re-homed %d pages (%d VABlocks) to host\n",
				cfg.HW.KillBatch, res.DriverStats.RehomedPages, res.DriverStats.RehomedBlocks)
		}
	}

	// s.Obs is nil unless some obs flag made the config Active; with it
	// nil there are no artifacts to write.
	if s.Obs != nil {
		if pfl.Enabled() {
			fmt.Printf("\nbatch-time breakdown (profiler)\n%s", s.Obs.Profiler.BreakdownTable())
		}
		if err := ofl.WriteArtifacts(s.Obs.Tracer, s.Obs.Sampler, fmt.Printf); err != nil {
			fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
			os.Exit(1)
		}
		if err := pfl.WriteArtifacts(s.Obs.Profiler, fmt.Printf); err != nil {
			fmt.Fprintf(os.Stderr, "faultviz: %v\n", err)
			os.Exit(1)
		}
	}
}
