package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"guvm/internal/sweepd"
)

// daemon wraps one sweepd process under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	mu   sync.Mutex
	buf  strings.Builder
	done chan struct{} // closed once stderr hits EOF (process gone)
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func (d *daemon) stderr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.buf.String()
}

// wait blocks until the stderr pipe drains (so no reads race Wait's
// pipe close) and then reaps the process.
func (d *daemon) wait() error {
	<-d.done
	return d.cmd.Wait()
}

// startDaemon launches the prebuilt binary and scrapes the bound address
// from its "sweepd: serving on ..." stderr line.
func startDaemon(t *testing.T, bin, storeDir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-store", storeDir, "-jobs", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, done: make(chan struct{})}
	addrc := make(chan string, 1)
	go func() {
		defer close(d.done)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.buf.WriteString(line + "\n")
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "sweepd: serving on "); ok {
				select {
				case addrc <- rest:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrc:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never announced its address; stderr:\n%s", d.stderr())
	}
	return d
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(b, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, b, err)
		}
	}
	return resp.StatusCode
}

// TestChaosKillAndRecover is the end-to-end crash drill against the real
// binary: start sweepd with slow-point injection (so the sweep has
// runway), submit a grid, SIGKILL the daemon mid-sweep, restart it on
// the same store, and require that
//
//   - the journal replays and the job resumes under its original ID,
//   - points finished before the kill come back as cache hits,
//   - every state digest equals a fresh in-process simulation — the
//     crash changed durability, never results.
func TestChaosKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "sweepd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	storeDir := filepath.Join(tmp, "store")

	// Phase 1: a daemon whose points each dawdle 300ms, so the kill lands
	// mid-sweep with certainty.
	d1 := startDaemon(t, bin, storeDir,
		"-inject-slow-rate", "1", "-inject-slow-delay", "300ms")
	defer d1.cmd.Process.Kill()

	spec := `{"workload":"stream","mb":1,"batches":[128,256],"caps_mb":[2,32]}` // 4 points
	resp, err := http.Post(d1.url("/sweep/jobs"), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var view sweepd.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || view.Points != 4 {
		t.Fatalf("submit = %d %+v", resp.StatusCode, view)
	}

	// Wait until at least one point is durable but the job is not done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v sweepd.JobView
		getJSON(t, d1.url("/sweep/jobs/"+view.ID), &v)
		if v.State == sweepd.JobDone {
			t.Fatal("job finished before the kill; slow injection did not bite")
		}
		if v.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no point completed; stderr:\n%s", d1.stderr())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// SIGKILL: no drain, no journal finish, no goodbye.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.wait()

	// Phase 2: restart on the same store, no injection.
	d2 := startDaemon(t, bin, storeDir)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		d2.wait()
	}()
	if !strings.Contains(d2.stderr(), "recovered") {
		t.Fatalf("restart did not report recovery; stderr:\n%s", d2.stderr())
	}

	// The killed job resumes under its original ID and completes.
	var fin sweepd.JobView
	deadline = time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, d2.url("/sweep/jobs/"+view.ID), &fin); code != http.StatusOK {
			t.Fatalf("job %s after restart: HTTP %d", view.ID, code)
		}
		if fin.State == sweepd.JobDone || fin.State == sweepd.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %s", fin.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fin.State != sweepd.JobDone {
		t.Fatalf("recovered job = %+v; stderr:\n%s", fin, d2.stderr())
	}
	if !fin.Recovered {
		t.Fatal("job not flagged recovered")
	}
	if fin.Cached < 1 {
		t.Fatalf("no cache hits after recovery (cached=%d): pre-kill work was lost", fin.Cached)
	}

	// Stream the full result set and hold every digest against a fresh
	// in-process simulation: cache hits must be bit-identical.
	res, err := http.Get(d2.url("/sweep/jobs/" + view.ID + "/results"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var rows []sweepd.PointRow
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		var row sweepd.PointRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 4 {
		t.Fatalf("streamed %d rows, want 4", len(rows))
	}
	for i, row := range rows {
		fresh, state, err := sweepd.SimulatePoint(row.Point)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%016x", state); row.StateDigest != want {
			t.Fatalf("row %d (cached=%v) state digest %s != fresh %s", i, row.Cached, row.StateDigest, want)
		}
		if row.KernelMS != fresh.KernelMS || row.Faults != fresh.Faults || row.Evictions != fresh.Evictions {
			t.Fatalf("row %d diverged from fresh sim:\n  %+v\n  %+v", i, row, fresh)
		}
	}

	// Graceful goodbye: SIGTERM must drain cleanly (exit 0).
	d2.cmd.Process.Signal(syscall.SIGTERM)
	if err := d2.wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, d2.stderr())
	}
	if !strings.Contains(d2.stderr(), "drained cleanly") {
		t.Fatalf("no clean-drain report; stderr:\n%s", d2.stderr())
	}
}
