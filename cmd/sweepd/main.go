// Command sweepd serves sweep-grid jobs over HTTP on top of a crash-safe
// result store. Clients POST JobSpecs to /sweep/jobs, stream NDJSON
// results from /sweep/jobs/{id}/results, and watch load-shedding state
// on /sweep/healthz; the obs endpoints (/metrics, /status, pprof) ride
// on the same mux.
//
// The daemon is built to be killed: every finished point is journaled
// before it is reported, so after a crash (SIGKILL included) a restart
// replays the write-ahead log, resumes incomplete jobs under their
// original IDs, and answers already-computed points from the store with
// bit-identical state digests. SIGTERM/SIGINT instead drain gracefully:
// in-flight points finish, queued jobs stay journaled for the next
// incarnation, and new submissions are shed with 503.
//
// The -inject-* flags enable deterministic service-layer fault injection
// (worker crashes, slow points) for chaos drills; they never perturb
// simulation results, only scheduling.
//
// Usage:
//
//	sweepd -addr 127.0.0.1:8080 -store /var/tmp/sweepd
//	curl -d '{"workload":"stream","mb":64,"caps_mb":[32,64]}' localhost:8080/sweep/jobs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"guvm/internal/faultinject"
	"guvm/internal/obs"
	"guvm/internal/sweepd"
	"guvm/internal/sweepd/store"
	"guvm/internal/uvm"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address for the sweep API and obs endpoints")
		storeDir     = flag.String("store", "sweepd-store", "result store directory (journal + artifacts)")
		jobs         = flag.Int("jobs", runtime.GOMAXPROCS(0), "sweep-point worker pool width")
		queueCap     = flag.Int("queue", 8, "max jobs admitted but not yet running")
		maxPoints    = flag.Int("max-points", 4096, "max grid points in one job")
		breakerHigh  = flag.Int("breaker-high", 1024, "point backlog that opens the circuit breaker")
		breakerLow   = flag.Int("breaker-low", 256, "point backlog that closes it again")
		jobDeadline  = flag.Duration("job-deadline", 10*time.Minute, "default per-job wall-clock deadline")
		pointTimeout = flag.Duration("point-timeout", time.Minute, "per-point attempt timeout")
		retries      = flag.Int("retries", 3, "retries per point after the first attempt")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain at shutdown")
		injSeed      = flag.Uint64("inject-seed", 1, "fault-injection seed")
		injFailRate  = flag.Float64("inject-fail-rate", 0, "probability an attempt is killed (chaos testing)")
		injFailLimit = flag.Int("inject-fail-limit", 0, "stop killing a point after this many attempts (0 = no limit)")
		injSlowRate  = flag.Float64("inject-slow-rate", 0, "probability an attempt is delayed (chaos testing)")
		injSlowDelay = flag.Duration("inject-slow-delay", 0, "delay applied to slowed attempts")
		// Shared obs flag set: -trace-out records wall-clock job/point
		// spans; the metrics flags sample the service registry at publish
		// points. -metrics-addr serves a second, obs-only endpoint (the
		// primary -addr always carries /metrics too).
		ofl = obs.RegisterFlags(flag.CommandLine)
		// Shared policy flag block: daemon-wide defaults applied to every
		// JobSpec dimension a client leaves empty.
		pol = uvm.RegisterPolicyFlags(flag.CommandLine)
	)
	flag.Parse()

	if pol.HandleList(os.Stdout) {
		return
	}
	if err := sweepd.SetDefaultPolicies(pol.Selection()); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(2)
	}

	var inj *faultinject.ServiceInjector
	if *injFailRate > 0 || *injSlowRate > 0 {
		var err error
		inj, err = faultinject.NewService(faultinject.ServiceConfig{
			Seed:           *injSeed,
			PointFailRate:  *injFailRate,
			PointFailLimit: *injFailLimit,
			SlowPointRate:  *injSlowRate,
			SlowPointDelay: *injSlowDelay,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "sweepd: fault injection armed (fail=%g limit=%d slow=%g/%v seed=%d)\n",
			*injFailRate, *injFailLimit, *injSlowRate, *injSlowDelay, *injSeed)
	}

	st, rec, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
	defer st.Close()
	if rec.TruncatedBytes > 0 {
		fmt.Fprintf(os.Stderr, "sweepd: journal recovery dropped %d torn byte(s)\n", rec.TruncatedBytes)
	}
	if rec.Points > 0 {
		fmt.Fprintf(os.Stderr, "sweepd: recovered %d cached point(s) from %s\n", rec.Points, *storeDir)
	}

	// The registry always exists; the sampler and tracer only when their
	// flags ask (a daemon's time series and span list grow unboundedly, so
	// they stay opt-in).
	var ocfg obs.Config
	ofl.Apply(&ocfg)
	o := obs.New(ocfg)
	svc := sweepd.New(st, o, inj, sweepd.Config{
		Workers:         *jobs,
		QueueCap:        *queueCap,
		MaxPointsPerJob: *maxPoints,
		BreakerHigh:     *breakerHigh,
		BreakerLow:      *breakerLow,
		JobDeadline:     *jobDeadline,
		PointTimeout:    *pointTimeout,
		PointRetries:    *retries,
		Seed:            *injSeed,
	})
	n, errs := svc.Resume(rec.IncompleteJobs)
	if n > 0 || len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "sweepd: resumed %d incomplete job(s) from the journal\n", n)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "sweepd: %v\n", e)
		}
	}
	svc.NoteRecovery(rec, n)
	if o.Tracer != nil {
		svc.SetTracer(o.Tracer, time.Now())
	}
	svc.Start()

	srv, err := obs.Serve(*addr, o, svc.Mount)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
	// The harness (and humans with -addr :0) scrape the bound address
	// from this line; keep its shape stable.
	fmt.Fprintf(os.Stderr, "sweepd: serving on %s\n", srv.Addr())
	if ofl.MetricsAddr != "" {
		msrv, err := obs.Serve(ofl.MetricsAddr, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving on %s\n", msrv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintf(os.Stderr, "sweepd: draining (up to %v)\n", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Drain(dctx)
	// Shut the listener down after the drain so /healthz answers 503 (not
	// connection refused) while in-flight points finish.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
	}
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: close store: %v\n", err)
	}
	// After the drain the runner is gone, so reading the tracer/sampler
	// here no longer races it. Artifact tails go to stderr like the rest
	// of the daemon's chatter.
	if err := ofl.WriteArtifacts(o.Tracer, o.Sampler, func(format string, a ...any) (int, error) {
		return fmt.Fprintf(os.Stderr, format, a...)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sweepd: drained cleanly")
}
